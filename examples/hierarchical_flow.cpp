// Hierarchical and parallel timing analysis (Fig. 1 of the paper):
// a top-level "SoC" instantiates the same "core" block several times.
// The core is analyzed once, its macro model is generated once, and the
// model is then reused for every instance — the analysis cost of the
// remaining instances collapses to the (much cheaper) model usage cost.
//
// Build & run:   ./build/examples/hierarchical_flow

#include <cstdio>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"
#include "util/instrument.hpp"

using namespace tmm;

int main() {
  const Library lib = generate_library();

  // The reusable "core" block.
  DesignGenConfig core_cfg;
  core_cfg.name = "core";
  core_cfg.seed = 7;
  core_cfg.num_data_inputs = 32;
  core_cfg.num_outputs = 32;
  core_cfg.num_flops = 200;
  core_cfg.levels = 9;
  core_cfg.gates_per_level = 160;
  const Design core = generate_design(lib, core_cfg);
  const TimingGraph flat = build_timing_graph(core);
  std::printf("core block: %zu pins (%zu graph arcs)\n", core.num_pins(),
              flat.num_live_arcs());

  // Train once on small designs, generate the core's macro model once.
  FlowConfig cfg;
  cfg.cppr = true;
  Framework framework(cfg);
  std::vector<Design> training;
  for (std::uint64_t seed : {21, 22}) {
    DesignGenConfig t;
    t.name = "t";
    t.name += std::to_string(seed);
    t.seed = seed;
    t.num_flops = 32;
    t.levels = 5;
    t.gates_per_level = 24;
    training.push_back(generate_design(lib, t));
  }
  framework.train(training);

  Stopwatch gen_sw;
  DesignResult result = framework.run_design(core);
  std::printf("macro model: %zu pins, %zu bytes, built in %.3f s "
              "(max boundary error %.4f ps)\n",
              result.gen.model_pins, result.model_file_bytes,
              gen_sw.seconds(), result.acc.max_err_ps);

  // Six instances of the core, each in a different boundary context.
  constexpr int kInstances = 6;
  Rng rng(42);
  std::vector<BoundaryConstraints> contexts;
  for (int i = 0; i < kInstances; ++i)
    contexts.push_back(random_constraints(core.primary_inputs().size(),
                                          core.primary_outputs().size(), {},
                                          rng));

  // Flat analysis of every instance vs macro-model reuse.
  Stopwatch flat_sw;
  Sta flat_sta(flat, {.cppr = true});
  std::vector<double> flat_wns;
  for (const auto& bc : contexts) {
    flat_sta.run(bc);
    flat_wns.push_back(flat_sta.worst_slack(kLate));
  }
  const double flat_seconds = flat_sw.seconds();

  Stopwatch macro_sw;
  Sta macro_sta(result.model.graph, {.cppr = true});
  std::vector<double> macro_wns;
  for (const auto& bc : contexts) {
    macro_sta.run(bc);
    macro_wns.push_back(macro_sta.worst_slack(kLate));
  }
  const double macro_seconds = macro_sw.seconds();

  std::printf("\n%-10s %-16s %-16s %-10s\n", "instance", "flat WNS (ps)",
              "macro WNS (ps)", "diff (ps)");
  for (int i = 0; i < kInstances; ++i)
    std::printf("core[%d]    %-16.3f %-16.3f %-10.4f\n", i, flat_wns[i],
                macro_wns[i], flat_wns[i] - macro_wns[i]);
  std::printf("\nanalysis runtime for %d instances: flat %.3f s, macro "
              "%.3f s (%.1fx faster)\n",
              kInstances, flat_seconds, macro_seconds,
              flat_seconds / std::max(1e-9, macro_seconds));
  return 0;
}
