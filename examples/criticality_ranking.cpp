// Regression mode (Section 5.3): "the GNN prediction ... could also be
// treated as a regression problem, i.e., timing sensitivities are set as
// training labels directly, and the framework could not only learn which
// pins are critical ... but also capture the relative criticality
// between pins."
//
// Trains the regression-mode framework, then on a held-out design ranks
// pins by predicted criticality and checks the ranking against the
// ground-truth TS (measured the expensive way): the top-ranked pins
// should concentrate the real sensitivity mass.
//
// Build & run:   ./build/examples/criticality_ranking

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"

using namespace tmm;

int main() {
  const Library lib = generate_library();
  auto make = [&](const char* name, std::uint64_t seed, std::size_t flops) {
    DesignGenConfig cfg;
    cfg.name = name;
    cfg.seed = seed;
    cfg.num_flops = flops;
    cfg.levels = 6;
    cfg.gates_per_level = 36;
    return generate_design(lib, cfg);
  };

  FlowConfig cfg;
  cfg.cppr = true;
  cfg.regression = true;
  Framework fw(cfg);
  std::vector<Design> training;
  training.push_back(make("t1", 61, 40));
  training.push_back(make("t2", 62, 56));
  const TrainingSummary sum = fw.train(training);
  std::printf("regression training: %zu pins, %zu with TS > 0, loss %.5f, "
              "TS scale (p95) %.3g\n",
              sum.labeled_pins, sum.positives, sum.report.final_loss,
              fw.ts_scale());

  // Held-out design: predicted criticality vs measured TS.
  const Design d = make("held_out", 63, 72);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const GnnGraph graph = GnnGraph::from_timing_graph(ilm.graph);
  const Matrix features = extract_features(ilm.graph, true);
  const auto predicted = fw.model().predict(graph, features);

  std::vector<bool> all(ilm.graph.num_nodes(), true);
  TsConfig ts_cfg;
  ts_cfg.num_constraint_sets = 2;
  const TsResult measured =
      evaluate_timing_sensitivity(ilm.graph, all, ts_cfg);

  // Rank live pins by predicted criticality.
  std::vector<NodeId> pins;
  double total_ts = 0.0;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead) continue;
    pins.push_back(n);
    total_ts += measured.ts[n];
  }
  std::sort(pins.begin(), pins.end(), [&](NodeId a, NodeId b) {
    return predicted[a] > predicted[b];
  });

  std::printf("\nheld-out design %s: %zu ILM pins, total measured TS mass "
              "%.3g\n",
              d.name().c_str(), pins.size(), total_ts);
  std::printf("%-24s %-18s %s\n", "top-k by prediction", "TS mass captured",
              "share");
  for (const double frac : {0.05, 0.10, 0.20, 0.50}) {
    const auto k = static_cast<std::size_t>(frac *
                                            static_cast<double>(pins.size()));
    double mass = 0.0;
    for (std::size_t i = 0; i < k; ++i) mass += measured.ts[pins[i]];
    std::printf("top %4.0f%% (%4zu pins)    %-18.3g %.1f%%\n", frac * 100.0,
                k, mass, total_ts > 0 ? 100.0 * mass / total_ts : 0.0);
  }
  std::printf("\nA useful regression model concentrates most of the TS mass "
              "in its top-ranked slice — relative criticality, not just a "
              "binary verdict.\n");
  return 0;
}
