// CPPR-aware macro modeling (Section 5.3): shows (a) how much pessimism
// common-path pessimism removal recovers on a clock-tree-heavy block,
// (b) that the generated macro model reproduces the CPPR-corrected
// slacks because the clock-network branch pins are kept, and (c) what
// happens if they are merged away (the ablation the is_CPPR feature
// exists to prevent).
//
// Build & run:   ./build/examples/cppr_macro

#include <cstdio>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"

using namespace tmm;

int main() {
  const Library lib = generate_library();

  DesignGenConfig cfg;
  cfg.name = "cppr_block";
  cfg.seed = 31;
  cfg.num_data_inputs = 16;
  cfg.num_outputs = 16;
  cfg.num_flops = 256;  // deep clock tree => long common paths
  cfg.clock_fanout = 2;
  cfg.levels = 7;
  cfg.gates_per_level = 80;
  const Design block = generate_design(lib, cfg);
  const TimingGraph flat = build_timing_graph(block);

  // (a) pessimism recovered by CPPR on the flat design.
  const BoundaryConstraints bc = nominal_constraints(
      block.primary_inputs().size(), block.primary_outputs().size(), 700.0);
  Sta with(flat, {.cppr = true});
  with.run(bc);
  Sta without(flat, {.cppr = false});
  without.run(bc);
  std::printf("flat design, clock period 700 ps:\n");
  std::printf("  worst setup slack without CPPR: %8.3f ps\n",
              without.worst_slack(kLate, false));
  std::printf("  worst setup slack with    CPPR: %8.3f ps\n",
              with.worst_slack(kLate, false));
  std::printf("  pessimism recovered           : %8.3f ps\n",
              with.worst_slack(kLate, false) - without.worst_slack(kLate, false));

  // (b) the macro model reproduces CPPR-corrected timing.
  FlowConfig fcfg;
  fcfg.cppr = true;
  fcfg.label_all_remained = true;  // no training needed for this demo
  Framework framework(fcfg);
  DesignResult result = framework.run_design(block);
  std::printf("\nmacro model (clock branch pins kept): %zu -> %zu pins, "
              "max boundary error %.4f ps\n",
              result.gen.ilm_pins, result.gen.model_pins,
              result.acc.max_err_ps);
  auto max_credit = [](const Sta& sta) {
    double credit = 0.0;
    for (const auto& c : sta.graph().checks()) {
      if (c.dead) continue;
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        credit = std::max(credit, sta.endpoint_credit(c.data, kLate, rf));
    }
    return credit;
  };

  Sta macro_sta(result.model.graph, {.cppr = true});
  macro_sta.run(bc);
  std::printf("  macro worst interface setup slack: %8.3f ps, max "
              "endpoint credit %.3f ps\n",
              macro_sta.worst_slack(kLate, false), max_credit(macro_sta));

  // (c) ablation: merge the clock network aggressively (drop the
  // protection) — the common points coarsen toward the clock root and
  // the pessimism credit collapses, which is exactly why multi-fan-out
  // clock pins are CPPR-crucial (the is_CPPR feature / labeling rule).
  {
    IlmResult ilm = extract_ilm(flat);
    std::vector<bool> keep(ilm.graph.num_nodes(), false);
    const FilterResult fr = filter_insensitive_pins(ilm.graph);
    for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
      keep[n] = fr.remained[n] && !ilm.graph.node(n).in_clock_network;
    merge_insensitive_pins(ilm.graph, keep);
    Sta ablated(ilm.graph, {.cppr = true});
    ablated.run(bc);
    std::printf("\nablation (clock branch pins merged): worst interface "
                "setup slack %8.3f ps, max endpoint credit %.3f ps "
                "(credit coarsened by %.3f ps)\n",
                ablated.worst_slack(kLate, false), max_credit(ablated),
                max_credit(macro_sta) - max_credit(ablated));
  }
  return 0;
}
