// Structural-Verilog chain of NAND-built 2:1 muxes selecting between a
// data input and the previous stage. Instantiates library cells
// directly (NAND2_X1 / INV_X1), so no cells are synthesized on import.
module mux_chain(input d0, input d1, input d2, input sel, output y);
  wire nsel;
  wire a0, b0, m0;
  wire a1, b1;

  INV_X1 u_inv (.A(sel), .Y(nsel));

  // m0 = sel ? d1 : d0
  NAND2_X1 u_a0 (.A(d0), .B(nsel), .Y(a0));
  NAND2_X1 u_b0 (.A(d1), .B(sel), .Y(b0));
  NAND2_X1 u_m0 (.A(a0), .B(b0), .Y(m0));

  // y = sel ? d2 : m0
  NAND2_X1 u_a1 (.A(m0), .B(nsel), .Y(a1));
  NAND2_X1 u_b1 (.A(d2), .B(sel), .Y(b1));
  NAND2_X1 u_y  (.A(a1), .B(b1), .Y(y));
endmodule
