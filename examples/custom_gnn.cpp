// Swapping the GNN engine (Section 5.1: "other existing GNN models such
// as GCN or even self-defined GNN models could also be embedded"):
// trains the pin classifier with GraphSAGE and with GCN on the same
// sensitivity data, compares their classification quality, and shows
// model persistence (train once, ship the weights, predict anywhere).
//
// Build & run:   ./build/examples/custom_gnn

#include <cstdio>
#include <sstream>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"

using namespace tmm;

namespace {

GraphSample make_sample(const TimingGraph& ilm, const SensitivityData& data,
                        bool cppr_feature) {
  GraphSample s;
  s.graph = GnnGraph::from_timing_graph(ilm);
  s.features = extract_features(ilm, cppr_feature);
  s.labels = data.labels;
  s.mask.assign(ilm.num_nodes(), 1);
  for (NodeId n = 0; n < ilm.num_nodes(); ++n)
    if (ilm.node(n).dead) s.mask[n] = 0;
  return s;
}

}  // namespace

int main() {
  const Library lib = generate_library();

  // Sensitivity data for two training designs and one held-out design.
  TrainingDataConfig data_cfg;
  data_cfg.ts.num_constraint_sets = 3;
  std::vector<TimingGraph> ilms;
  std::vector<SensitivityData> data;
  for (std::uint64_t seed : {51, 52, 53}) {
    DesignGenConfig cfg;
    cfg.name = "d";
    cfg.name += std::to_string(seed);
    cfg.seed = seed;
    cfg.num_flops = 48;
    cfg.levels = 6;
    cfg.gates_per_level = 40;
    const Design d = generate_design(lib, cfg);
    const TimingGraph flat = build_timing_graph(d);
    IlmResult ilm = extract_ilm(flat);
    data.push_back(generate_training_data(ilm.graph, data_cfg));
    ilms.push_back(std::move(ilm.graph));
    std::printf("design d%lu: %zu ILM pins, %zu timing-variant\n",
                static_cast<unsigned long>(seed),
                ilms.back().num_live_nodes(), data.back().positives);
  }

  std::vector<GraphSample> train_set;
  train_set.push_back(make_sample(ilms[0], data[0], true));
  train_set.push_back(make_sample(ilms[1], data[1], true));
  const GraphSample held_out = make_sample(ilms[2], data[2], true);

  for (GnnEngine engine : {GnnEngine::kGraphSage, GnnEngine::kGcn,
                           GnnEngine::kGraphSagePool}) {
    GnnModelConfig mcfg;
    mcfg.engine = engine;
    mcfg.input_dim = kNumFeaturesWithCppr;
    mcfg.hidden_dim = 32;
    mcfg.num_layers = 2;
    GnnModel model(mcfg);
    TrainConfig tcfg;
    tcfg.epochs = 200;
    const TrainReport rep = train_model(model, train_set, tcfg);

    const auto probs = model.predict(held_out.graph, held_out.features);
    const Confusion c =
        confusion_matrix(probs, held_out.labels, held_out.mask);
    const char* name = engine == GnnEngine::kGraphSage ? "GraphSAGE (mean)"
                       : engine == GnnEngine::kGcn     ? "GCN"
                                                       : "GraphSAGE (pool)";
    std::printf("\n%s: %zu epochs, loss %.4f, held-out design d53:\n", name,
                rep.epochs_run, rep.final_loss);
    std::printf("  accuracy %.3f  precision %.3f  recall %.3f  F1 %.3f\n",
                c.accuracy(), c.precision(), c.recall(), c.f1());

    // Persist + reload: identical predictions.
    std::stringstream ss;
    model.save(ss);
    GnnModel reloaded = GnnModel::load(ss);
    const auto probs2 = reloaded.predict(held_out.graph, held_out.features);
    double max_dev = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i)
      max_dev = std::max(max_dev,
                         static_cast<double>(std::abs(probs[i] - probs2[i])));
    std::printf("  save/load round trip: max probability deviation %.2g\n",
                max_dev);
  }
  return 0;
}
