// Quickstart: the whole pipeline on one small design, end to end.
//
//   1. generate a standard-cell library and a synthetic design;
//   2. train the GNN framework on a few small training designs;
//   3. generate a timing macro model for an unseen design;
//   4. validate the model against the flat design and write it to disk.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <fstream>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"

using namespace tmm;

int main() {
  // --- a library and some designs -----------------------------------
  const Library lib = generate_library();
  std::printf("library '%s' with %zu cells\n", lib.name().c_str(),
              lib.num_cells());

  std::vector<Design> training;
  for (std::uint64_t seed : {11, 12, 13}) {
    DesignGenConfig cfg;
    cfg.name = "train" + std::to_string(seed);
    cfg.seed = seed;
    cfg.num_data_inputs = 12;
    cfg.num_outputs = 12;
    cfg.num_flops = 40;
    cfg.levels = 6;
    cfg.gates_per_level = 30;
    training.push_back(generate_design(lib, cfg));
  }

  DesignGenConfig test_cfg;
  test_cfg.name = "block_under_test";
  test_cfg.seed = 99;
  test_cfg.num_data_inputs = 24;
  test_cfg.num_outputs = 24;
  test_cfg.num_flops = 120;
  test_cfg.levels = 8;
  test_cfg.gates_per_level = 90;
  const Design block = generate_design(lib, test_cfg);
  std::printf("block '%s': %zu pins, %zu cells, %zu nets\n",
              block.name().c_str(), block.num_pins(), block.num_gates(),
              block.num_nets());

  // --- stage 1+2: sensitivity data generation and GNN training ------
  FlowConfig cfg;
  cfg.cppr = true;  // CPPR timing mode, with the dedicated feature
  Framework framework(cfg);
  const TrainingSummary summary = framework.train(training);
  std::printf("trained on %zu designs: %zu labeled pins (%zu timing-"
              "variant), filter removed %.0f%% of pins, final loss %.4f\n",
              summary.designs, summary.labeled_pins, summary.positives,
              summary.mean_filtered_fraction * 100.0,
              summary.report.final_loss);

  // --- stage 3: macro model generation + validation ------------------
  const DesignResult result = framework.run_design(block);
  std::printf("\nmacro model for '%s':\n", block.name().c_str());
  std::printf("  ILM pins            : %zu\n", result.gen.ilm_pins);
  std::printf("  model pins          : %zu\n", result.gen.model_pins);
  std::printf("  model file size     : %zu bytes\n", result.model_file_bytes);
  std::printf("  GNN inference       : %.3f s\n", result.inference_seconds);
  std::printf("  generation runtime  : %.3f s\n",
              result.gen.generation_seconds);
  std::printf("  max boundary error  : %.4f ps over %zu constraint sets\n",
              result.acc.max_err_ps, result.acc.constraint_sets);
  std::printf("  avg boundary error  : %.4f ps\n", result.acc.avg_err_ps);

  // --- persist the model and use it stand-alone ----------------------
  {
    std::ofstream os("block_under_test.macro");
    write_macro_model(result.model, os);
  }
  std::ifstream is("block_under_test.macro");
  const MacroModel loaded = read_macro_model(is);
  Sta sta(loaded.graph, {.cppr = true});
  sta.run(nominal_constraints(block.primary_inputs().size(),
                              block.primary_outputs().size()));
  std::printf("\nreloaded '%s' from disk: worst setup slack %.2f ps, worst "
              "hold slack %.2f ps\n",
              loaded.design_name.c_str(), sta.worst_slack(kLate),
              sta.worst_slack(kEarly));
  std::remove("block_under_test.macro");
  return 0;
}
