#!/bin/sh
# tools/frontend_smoke.sh — real-circuit frontend end-to-end smoke.
#
#   tools/frontend_smoke.sh <path-to-tmm> [path-to-serve_loadgen]
#
# Drives every checked-in example through the whole pipeline:
# import (asserting byte-identical re-import), frontend lint, STA,
# flow (train + model straight from .blif/.v), pack, and — when a
# loadgen is given — a live serve loop whose responses the loadgen
# verifies bit-identical against the offline evaluator.
set -eu

TMM="$1"
LOADGEN="${2:-}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
EXAMPLES="$ROOT/examples/blif"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
fail() { echo "FRONTEND_SMOKE_FAIL: $*" >&2; exit 1; }

# Import every example twice: the second .dsn must be byte-identical
# (the acceptance bar for deterministic tech mapping).
for src in "$EXAMPLES"/*.blif "$EXAMPLES"/*.v; do
  base="$(basename "$src")"
  stem="${base%.*}"
  "$TMM" import "$src" --out "$DIR/$stem.dsn"
  "$TMM" import "$src" --out "$DIR/$stem.2.dsn"
  cmp "$DIR/$stem.dsn" "$DIR/$stem.2.dsn" \
    || fail "$base: re-import is not byte-identical"
  "$TMM" lint "$src" || fail "$base: frontend lint found errors"
  "$TMM" stats "$DIR/$stem.dsn" > /dev/null
  "$TMM" sta "$DIR/$stem.dsn" > /dev/null || fail "$base: STA failed"
done

# Full Fig. 4 flow straight over the sources (mixed BLIF + Verilog):
# train, model, evaluate, with checkpoints in $DIR/run.
"$TMM" flow "$DIR/run" "$EXAMPLES/cm_adder.blif" "$EXAMPLES/count8.blif" \
  "$EXAMPLES/mux_chain.v" > "$DIR/flow.txt" \
  || fail "flow over examples failed"
grep -q "0 failed" "$DIR/flow.txt" || fail "flow skipped a design"

# Pack one imported-circuit macro and (optionally) serve it live.
mkdir "$DIR/models"
"$TMM" pack "$DIR/run/out/count8.macro" --out "$DIR/models/count8.tmb" \
  || fail "pack of an imported-circuit macro failed"
"$TMM" lint "$DIR/models/count8.tmb" || fail "packed image lint failed"

if [ -n "$LOADGEN" ]; then
  SOCK="$DIR/tmm.sock"
  "$TMM" serve "$DIR/models" --socket "$SOCK" --threads 2 \
    > "$DIR/serve.txt" 2>&1 &
  SRV=$!
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
  [ -S "$SOCK" ] || fail "server never bound $SOCK"
  # The loadgen replays queries and compares every response against the
  # offline evaluator: serving an imported circuit is bit-identical.
  TMM_BENCH_JSON_DIR="$DIR" "$LOADGEN" --socket "$SOCK" \
    --model-dir "$DIR/models" --threads 2 --seconds 2 --warm-keys 4 \
    > "$DIR/loadgen.txt" || fail "loadgen found mismatching responses"
  kill -TERM "$SRV"
  wait "$SRV" || fail "server did not drain cleanly"
fi

echo "FRONTEND_SMOKE_OK"
