// serve_loadgen — open-loop load generator and correctness checker for
// `tmm serve` (docs/SERVING.md).
//
// Drives two sweeps against a running server and emits BENCH_serve.json:
//   cold: every request carries a unique constraint set (all cache
//         misses) — measures raw evaluation throughput;
//   warm: requests cycle through --warm-keys shared constraint sets
//         (cache hits after the first lap) — measures cached throughput.
//
// Every response is verified bit-identical against a local evaluation
// of the same packed model (the offline `tmm evaluate` path uses the
// same Sta engine), so the bench doubles as the end-to-end correctness
// gate the CI smoke job runs.
//
// Client robustness: connects and requests retry with capped
// exponential backoff + jitter on connection-refused, kShuttingDown
// and kOverloaded — the server's shed responses are flow control, not
// failures. Retries are counted in the JSON report
// (connect_retries / response_retries summaries).
//
// --soak S replaces the cold/warm sweeps with a saturation soak: each
// client pipelines --burst frames per write for S seconds, a mid-run
// kReload is fired at S/2 on its own connection, and the report gains
// p99/p99.9, the shed rate, and reload_swap_us — the zero-downtime
// hot-reload gate (shed responses are expected; malformed ones fail).
//
// Usage:
//   serve_loadgen (--socket path | --port N) --model-dir dir
//                 [--threads N] [--seconds S] [--qps Q] [--warm-keys K]
//                 [--seed S] [--no-verify] [--soak S] [--burst N]
//
// Exit codes: 0 all responses ok and bit-identical; 1 any error or
// mismatch (soak: any malformed response, bit mismatch, or failed
// reload); 2 bad usage.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/evaluator.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "sta/constraints.hpp"
#include "util/rng.hpp"

namespace {

using namespace tmm;

struct Options {
  std::string socket_path;
  int port = -1;
  std::string model_dir;
  std::size_t threads = 8;
  double seconds = 3.0;
  double qps = 0.0;  ///< 0 = closed loop
  std::size_t warm_keys = 16;
  std::uint64_t seed = 0x10ad;
  bool verify = true;
  double soak_seconds = 0.0;  ///< > 0 switches to the soak harness
  std::size_t burst = 8;      ///< pipelined frames per write in soak
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "serve_loadgen: %s\nusage: serve_loadgen (--socket path | "
               "--port N) --model-dir dir [--threads N] [--seconds S] "
               "[--qps Q] [--warm-keys K] [--seed S] [--no-verify] "
               "[--soak S] [--burst N]\n",
               msg.c_str());
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + a);
      return argv[++i];
    };
    if (a == "--socket")
      opt.socket_path = next();
    else if (a == "--port")
      opt.port = std::stoi(next());
    else if (a == "--model-dir")
      opt.model_dir = next();
    else if (a == "--threads")
      opt.threads = std::stoul(next());
    else if (a == "--seconds")
      opt.seconds = std::stod(next());
    else if (a == "--qps")
      opt.qps = std::stod(next());
    else if (a == "--warm-keys")
      opt.warm_keys = std::stoul(next());
    else if (a == "--seed")
      opt.seed = std::stoull(next());
    else if (a == "--no-verify")
      opt.verify = false;
    else if (a == "--soak")
      opt.soak_seconds = std::stod(next());
    else if (a == "--burst")
      opt.burst = std::stoul(next());
    else
      usage_error("unknown option " + a);
  }
  if (opt.socket_path.empty() && opt.port < 0)
    usage_error("--socket or --port is required");
  if (opt.model_dir.empty()) usage_error("--model-dir is required");
  if (opt.threads == 0) usage_error("--threads must be >= 1");
  if (opt.warm_keys == 0) usage_error("--warm-keys must be >= 1");
  if (opt.burst == 0) usage_error("--burst must be >= 1");
  return opt;
}

int connect_server(const Options& opt) {
  int fd = -1;
  if (!opt.socket_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

/// Client-wide retry tallies, surfaced as report summaries so a CI run
/// can see how hard the clients had to work to get their answers.
std::atomic<std::uint64_t> g_connect_retries{0};
std::atomic<std::uint64_t> g_response_retries{0};

/// Capped exponential backoff with full jitter: the n-th delay is
/// uniform in [cap_n/2, cap_n] where cap_n = min(base * 2^n, cap).
/// Shared by the connect-refused and the kShuttingDown/kOverloaded
/// retry paths so both decorrelate the same way under contention.
struct Backoff {
  explicit Backoff(Rng& rng, double base_s = 0.01, double cap_s = 0.5)
      : rng_(rng), base_s_(base_s), cap_s_(cap_s) {}

  void sleep_next() {
    cur_s_ = cur_s_ == 0.0 ? base_s_ : std::min(cur_s_ * 2.0, cap_s_);
    const double jittered = cur_s_ * rng_.uniform(0.5, 1.0);
    std::this_thread::sleep_for(std::chrono::duration<double>(jittered));
  }
  void reset() noexcept { cur_s_ = 0.0; }

 private:
  Rng& rng_;
  double base_s_;
  double cap_s_;
  double cur_s_ = 0.0;
};

/// connect_server with up to `attempts` tries, backing off between
/// them — rides out a server still binding or briefly refusing during
/// restart. -1 only after every attempt failed.
int connect_with_retry(const Options& opt, Rng& rng, int attempts = 8) {
  Backoff backoff(rng, /*base_s=*/0.05, /*cap_s=*/1.0);
  for (int attempt = 0;; ++attempt) {
    const int fd = connect_server(opt);
    if (fd >= 0) return fd;
    if (attempt + 1 >= attempts) return -1;
    g_connect_retries.fetch_add(1);
    backoff.sleep_next();
  }
}

/// The constraint set of logical key `key` for `entry`, derived purely
/// from (seed, key) so client threads and the verifier agree.
BoundaryConstraints make_constraints(const serve::RegistryEntry& entry,
                                     std::uint64_t seed, std::uint64_t key) {
  Rng rng(seed ^ (key * 0x9e3779b97f4a7c15ull) ^ 0x5eed);
  return random_constraints(entry.num_pis, entry.num_pos, {}, rng);
}

bool bit_identical(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct PhaseResult {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;      ///< non-ok responses + socket failures
  std::uint64_t mismatches = 0;  ///< responses not bit-identical
  std::uint64_t cache_hits = 0;  ///< server-reported
  double elapsed_s = 0.0;
  std::vector<double> latencies_us;  ///< one entry per request
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Run one sweep. `unique_keys` = 0 means every request gets a fresh
/// key (cold); otherwise keys cycle modulo unique_keys (warm).
PhaseResult run_phase(const Options& opt, const serve::ModelRegistry& registry,
                      serve::Evaluator* verifier, std::uint64_t key_base,
                      std::uint64_t unique_keys) {
  std::vector<const serve::RegistryEntry*> models;
  std::vector<std::string> names;
  for (const auto& [name, entry] : registry.entries()) {
    models.push_back(&entry);
    names.push_back(name);
  }

  std::atomic<std::uint64_t> next_index{0};
  std::atomic<std::uint64_t> errors{0}, mismatches{0}, hits{0}, done{0};
  std::vector<std::vector<double>> per_thread_lat(opt.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opt.seconds));

  auto client = [&](std::size_t tid) {
    Rng rng(opt.seed ^ (tid * 0x9e3779b9ull + 0xbac0ffull));
    int fd = connect_with_retry(opt, rng);
    if (fd < 0) {
      errors.fetch_add(1);
      return;
    }
    serve::Evaluator::Scratch scratch;
    BoundarySnapshot expected;
    std::string frame;
    while (std::chrono::steady_clock::now() < deadline) {
      const std::uint64_t index = next_index.fetch_add(1);
      if (opt.qps > 0) {
        // Open-loop pacing: request i fires at t0 + i/qps, regardless
        // of how long earlier requests took.
        const auto fire =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         static_cast<double>(index) / opt.qps));
        if (fire >= deadline) break;
        std::this_thread::sleep_until(fire);
      }
      const std::uint64_t key =
          unique_keys == 0 ? key_base + index
                           : key_base + (index % unique_keys);
      const std::size_t mi = static_cast<std::size_t>(
          (unique_keys == 0 ? index : key) % models.size());
      serve::Request req;
      req.request_id = index;
      req.model = names[mi];
      req.bc = make_constraints(*models[mi], opt.seed, key);

      // One logical request, up to kAttempts tries: socket failures
      // reconnect, kShuttingDown/kOverloaded back off and resend — the
      // server's shed answers are flow control, not failures. Latency
      // is end-to-end (first send to final answer, backoff included).
      const auto sent = std::chrono::steady_clock::now();
      constexpr int kAttempts = 5;
      Backoff backoff(rng);
      serve::Response resp;
      bool answered = false;
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        if (attempt > 0) {
          g_response_retries.fetch_add(1);
          backoff.sleep_next();
        }
        if (fd < 0) {
          fd = connect_with_retry(opt, rng, /*attempts=*/2);
          if (fd < 0) continue;
        }
        try {
          serve::write_frame(fd, serve::encode_request(req));
          if (!serve::read_frame(fd, frame)) {
            ::close(fd);  // server drained this connection under us
            fd = -1;
            continue;
          }
          resp = serve::decode_response(frame);
        } catch (const std::exception&) {
          if (fd >= 0) ::close(fd);
          fd = -1;
          continue;
        }
        if (resp.status == serve::ResponseStatus::kShuttingDown ||
            resp.status == serve::ResponseStatus::kOverloaded)
          continue;
        answered = true;
        break;
      }
      if (!answered) {
        errors.fetch_add(1);
        continue;
      }
      per_thread_lat[tid].push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - sent)
              .count());
      done.fetch_add(1);

      if (resp.status != serve::ResponseStatus::kOk ||
          resp.request_id != req.request_id) {
        errors.fetch_add(1);
        continue;
      }
      if (resp.cache_hit) hits.fetch_add(1);
      if (verifier != nullptr) {
        try {
          verifier->evaluate(req.model, req.bc, expected, scratch);
        } catch (const std::exception&) {
          errors.fetch_add(1);
          continue;
        }
        if (!bit_identical(resp.snap.slew, expected.slew) ||
            !bit_identical(resp.snap.at, expected.at) ||
            !bit_identical(resp.snap.rat, expected.rat) ||
            !bit_identical(resp.snap.slack, expected.slack))
          mismatches.fetch_add(1);
      }
    }
    if (fd >= 0) ::close(fd);
  };

  std::vector<std::thread> threads;
  threads.reserve(opt.threads);
  for (std::size_t t = 0; t < opt.threads; ++t)
    threads.emplace_back(client, t);
  for (std::thread& t : threads) t.join();

  PhaseResult res;
  res.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.requests = done.load();
  res.errors = errors.load();
  res.mismatches = mismatches.load();
  res.cache_hits = hits.load();
  for (const auto& lat : per_thread_lat)
    res.latencies_us.insert(res.latencies_us.end(), lat.begin(), lat.end());
  std::sort(res.latencies_us.begin(), res.latencies_us.end());
  return res;
}

void report_phase(bench::JsonReport& report, const char* impl,
                  PhaseResult& r) {
  const double qps =
      r.elapsed_s > 0 ? static_cast<double>(r.requests) / r.elapsed_s : 0.0;
  const double p50 = percentile(r.latencies_us, 0.50);
  const double p95 = percentile(r.latencies_us, 0.95);
  const double p99 = percentile(r.latencies_us, 0.99);
  std::printf("%-5s %8llu req in %6.2f s  (%8.1f qps)  p50 %8.1f us  p95 "
              "%8.1f us  p99 %8.1f us  %llu hit(s), %llu error(s), %llu "
              "mismatch(es)\n",
              impl, static_cast<unsigned long long>(r.requests),
              r.elapsed_s, qps, p50, p95, p99,
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.errors),
              static_cast<unsigned long long>(r.mismatches));
  report.add_row("all", impl,
                 {{"requests", static_cast<double>(r.requests)},
                  {"errors", static_cast<double>(r.errors)},
                  {"bit_mismatches", static_cast<double>(r.mismatches)},
                  {"cache_hits", static_cast<double>(r.cache_hits)},
                  {"elapsed_s", r.elapsed_s},
                  {"qps", qps},
                  {"latency_p50_us", p50},
                  {"latency_p95_us", p95},
                  {"latency_p99_us", p99}});
}

/// One-shot kStats query on a fresh connection; empty text on failure.
std::string fetch_stats_json(const Options& opt) {
  const int fd = connect_server(opt);
  if (fd < 0) return {};
  std::string text;
  try {
    serve::Request req;
    req.request_id = 1;
    req.kind = serve::RequestKind::kStats;
    serve::write_frame(fd, serve::encode_request(req));
    std::string frame;
    if (serve::read_frame(fd, frame)) {
      const serve::Response resp = serve::decode_response(frame);
      if (resp.status == serve::ResponseStatus::kOk && resp.admin)
        text = resp.text;
    }
  } catch (const std::exception&) {
    text.clear();
  }
  ::close(fd);
  return text;
}

/// Pull `key` out of the "10s" window of the "global" section of a
/// stats_json body. Anchor scan, not a JSON parser — the shape is
/// produced by ServeStats::stats_json and covered by its tests.
double stats_window_value(const std::string& json, const char* key) {
  const std::size_t g = json.find("\"global\"");
  if (g == std::string::npos) return -1.0;
  const std::size_t w = json.find("\"10s\"", g);
  if (w == std::string::npos) return -1.0;
  const std::size_t end = json.find('}', w);
  const std::string anchor = std::string("\"") + key + "\": ";
  const std::size_t k = json.find(anchor, w);
  if (k == std::string::npos || k > end) return -1.0;
  return std::strtod(json.c_str() + k + anchor.size(), nullptr);
}

/// Sample the server's windowed view right after a sweep: the last-10 s
/// window still holds the phase's traffic, so the server-side tail
/// (p99/p99.9) and cache hit-rate land in BENCH_serve.json next to the
/// client-side numbers. Returns false when the channel is unavailable.
bool report_stats_phase(bench::JsonReport& report, const char* impl,
                        const Options& opt) {
  const std::string json = fetch_stats_json(opt);
  if (json.empty()) {
    std::fprintf(stderr,
                 "serve_loadgen: stats channel unavailable after %s phase\n",
                 impl);
    return false;
  }
  const double qps = stats_window_value(json, "qps");
  const double p50 = stats_window_value(json, "p50_us");
  const double p99 = stats_window_value(json, "p99_us");
  const double p999 = stats_window_value(json, "p999_us");
  const double hit_rate = stats_window_value(json, "cache_hit_rate");
  const double err_rate = stats_window_value(json, "error_rate");
  std::printf("stats %-5s window 10s: %8.1f qps  p50 %8.1f us  p99 %8.1f us  "
              "p99.9 %8.1f us  hit-rate %.3f  error-rate %.3f\n",
              impl, qps, p50, p99, p999, hit_rate, err_rate);
  report.add_row("stats", impl,
                 {{"window_qps", qps},
                  {"window_p50_us", p50},
                  {"window_p99_us", p99},
                  {"window_p999_us", p999},
                  {"window_cache_hit_rate", hit_rate},
                  {"window_error_rate", err_rate}});
  return true;
}

// ---------------------------------------------------------------------
// Soak harness (--soak): hold saturation for a fixed duration with a
// hot reload in the middle, proving the swap drops nothing.

struct SoakResult {
  std::uint64_t responses = 0;   ///< frames received and decoded
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;        ///< kOverloaded + kShuttingDown
  std::uint64_t errors = 0;      ///< socket failures + unexpected statuses
  std::uint64_t malformed = 0;   ///< undecodable frames / wrong request_id
  std::uint64_t mismatches = 0;  ///< ok responses not bit-identical
  double elapsed_s = 0.0;
  bool reload_ok = false;
  double reload_swap_us = -1.0;
  std::vector<double> latencies_us;
};

/// Fire one kReload on its own connection and pull ok + swap_us out of
/// the JSON answer (anchor scan; the shape is produced by the server's
/// kReload branch and covered by its tests).
void fire_reload(const Options& opt, SoakResult& out) {
  Rng rng(opt.seed ^ 0x5e10adull);
  const int fd = connect_with_retry(opt, rng);
  if (fd < 0) return;
  try {
    serve::Request req;
    req.request_id = 1;
    req.kind = serve::RequestKind::kReload;
    serve::write_frame(fd, serve::encode_request(req));
    std::string frame;
    if (serve::read_frame(fd, frame)) {
      const serve::Response resp = serve::decode_response(frame);
      if (resp.status == serve::ResponseStatus::kOk && resp.admin) {
        out.reload_ok = resp.text.find("\"ok\": true") != std::string::npos;
        const std::string anchor = "\"swap_us\": ";
        const std::size_t k = resp.text.find(anchor);
        if (k != std::string::npos)
          out.reload_swap_us =
              std::strtod(resp.text.c_str() + k + anchor.size(), nullptr);
      }
    }
  } catch (const std::exception&) {
    // Leaves reload_ok false; the caller fails the run.
  }
  ::close(fd);
}

/// Saturation soak: every client pipelines `burst` cold (unique-key)
/// requests per round and only then reads the answers, so the server
/// sees threads*burst outstanding frames — enough pressure for the
/// admission controller to shed. Shed answers are counted, not
/// retried: the soak measures the server under sustained overload, and
/// a retry loop would throttle the very pressure it is applying
/// (run_phase covers the retry path). At half-time a kReload fires on
/// its own connection; every ok answer must still be bit-identical.
SoakResult run_soak(const Options& opt, const serve::ModelRegistry& registry,
                    serve::Evaluator* verifier) {
  std::vector<const serve::RegistryEntry*> models;
  std::vector<std::string> names;
  for (const auto& [name, entry] : registry.entries()) {
    models.push_back(&entry);
    names.push_back(name);
  }

  std::atomic<std::uint64_t> next_index{0};
  std::atomic<std::uint64_t> responses{0}, ok{0}, shed{0}, errors{0},
      malformed{0}, mismatches{0};
  std::vector<std::vector<double>> per_thread_lat(opt.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opt.soak_seconds));
  constexpr std::uint64_t kSoakKeyBase = 1ull << 24;  // disjoint from sweeps

  auto client = [&](std::size_t tid) {
    Rng rng(opt.seed ^ (tid * 0x9e3779b9ull) ^ 0x50a50aull);
    int fd = connect_with_retry(opt, rng);
    if (fd < 0) {
      errors.fetch_add(1);
      return;
    }
    serve::Evaluator::Scratch scratch;
    BoundarySnapshot expected;
    std::string frame;
    std::vector<serve::Request> burst(opt.burst);
    while (std::chrono::steady_clock::now() < deadline) {
      for (serve::Request& req : burst) {
        const std::uint64_t index = next_index.fetch_add(1);
        const std::size_t mi =
            static_cast<std::size_t>(index % models.size());
        req = serve::Request{};
        req.request_id = kSoakKeyBase + index;
        req.model = names[mi];
        req.bc = make_constraints(*models[mi], opt.seed, kSoakKeyBase + index);
      }
      const auto sent = std::chrono::steady_clock::now();
      try {
        // Write the whole burst before reading anything: the frames
        // queue server-side and the admission controller decides their
        // fate together.
        for (const serve::Request& req : burst)
          serve::write_frame(fd, serve::encode_request(req));
        for (std::size_t i = 0; i < burst.size(); ++i) {
          if (!serve::read_frame(fd, frame))
            throw std::runtime_error("connection closed mid-burst");
          per_thread_lat[tid].push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - sent)
                  .count());
          serve::Response resp;
          try {
            resp = serve::decode_response(frame);
          } catch (const std::exception&) {
            malformed.fetch_add(1);
            continue;
          }
          responses.fetch_add(1);
          if (resp.request_id != burst[i].request_id) {
            // In-order per connection is a protocol guarantee; a wrong
            // id means the server tore a response.
            malformed.fetch_add(1);
            continue;
          }
          if (resp.status == serve::ResponseStatus::kOverloaded ||
              resp.status == serve::ResponseStatus::kShuttingDown) {
            shed.fetch_add(1);
            continue;
          }
          if (resp.status != serve::ResponseStatus::kOk) {
            errors.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
          if (verifier != nullptr) {
            try {
              verifier->evaluate(burst[i].model, burst[i].bc, expected,
                                 scratch);
            } catch (const std::exception&) {
              errors.fetch_add(1);
              continue;
            }
            if (!bit_identical(resp.snap.slew, expected.slew) ||
                !bit_identical(resp.snap.at, expected.at) ||
                !bit_identical(resp.snap.rat, expected.rat) ||
                !bit_identical(resp.snap.slack, expected.slack))
              mismatches.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        errors.fetch_add(1);
        if (fd >= 0) ::close(fd);
        fd = connect_with_retry(opt, rng);
        if (fd < 0) return;
      }
    }
    if (fd >= 0) ::close(fd);
  };

  SoakResult res;
  std::thread reloader([&] {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(opt.soak_seconds / 2.0)));
    fire_reload(opt, res);
  });
  std::vector<std::thread> threads;
  threads.reserve(opt.threads);
  for (std::size_t t = 0; t < opt.threads; ++t)
    threads.emplace_back(client, t);
  for (std::thread& t : threads) t.join();
  reloader.join();

  res.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.responses = responses.load();
  res.ok = ok.load();
  res.shed = shed.load();
  res.errors = errors.load();
  res.malformed = malformed.load();
  res.mismatches = mismatches.load();
  for (const auto& lat : per_thread_lat)
    res.latencies_us.insert(res.latencies_us.end(), lat.begin(), lat.end());
  std::sort(res.latencies_us.begin(), res.latencies_us.end());
  return res;
}

void report_soak(bench::JsonReport& report, SoakResult& r) {
  const double qps =
      r.elapsed_s > 0 ? static_cast<double>(r.ok) / r.elapsed_s : 0.0;
  const double shed_rate =
      r.responses > 0
          ? static_cast<double>(r.shed) / static_cast<double>(r.responses)
          : 0.0;
  const double p50 = percentile(r.latencies_us, 0.50);
  const double p99 = percentile(r.latencies_us, 0.99);
  const double p999 = percentile(r.latencies_us, 0.999);
  std::printf(
      "soak  %8llu resp in %6.2f s  (%8.1f ok qps)  p50 %8.1f us  p99 "
      "%8.1f us  p99.9 %8.1f us  %llu shed (%.1f%%), %llu error(s), %llu "
      "malformed, %llu mismatch(es); reload %s swap %.0f us\n",
      static_cast<unsigned long long>(r.responses), r.elapsed_s, qps, p50,
      p99, p999, static_cast<unsigned long long>(r.shed), shed_rate * 100.0,
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.malformed),
      static_cast<unsigned long long>(r.mismatches),
      r.reload_ok ? "ok" : "FAILED", r.reload_swap_us);
  report.add_row("all", "soak",
                 {{"responses", static_cast<double>(r.responses)},
                  {"ok", static_cast<double>(r.ok)},
                  {"shed", static_cast<double>(r.shed)},
                  {"shed_rate", shed_rate},
                  {"errors", static_cast<double>(r.errors)},
                  {"malformed", static_cast<double>(r.malformed)},
                  {"bit_mismatches", static_cast<double>(r.mismatches)},
                  {"elapsed_s", r.elapsed_s},
                  {"qps", qps},
                  {"latency_p50_us", p50},
                  {"latency_p99_us", p99},
                  {"latency_p999_us", p999},
                  {"reload_ok", r.reload_ok ? 1.0 : 0.0},
                  {"reload_swap_us", r.reload_swap_us}});
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    serve::ModelRegistry registry;
    registry.load_directory(opt.model_dir);
    if (registry.size() == 0) {
      std::fprintf(stderr, "serve_loadgen: no .tmb models in %s\n",
                   opt.model_dir.c_str());
      return 2;
    }

    // Local reference evaluator: same packed models, same engine, same
    // default options as the server — the offline evaluate path.
    serve::Evaluator::Options eopt;
    eopt.cache_capacity = opt.warm_keys * 4 * registry.size();
    serve::Evaluator verifier(registry, eopt);

    {
      const int probe = connect_server(opt);
      if (probe < 0) {
        std::fprintf(stderr, "serve_loadgen: cannot connect to server\n");
        return 1;
      }
      ::close(probe);
    }

    bench::JsonReport report("serve");
    report.set_meta("threads", static_cast<double>(opt.threads));
    report.set_meta("seconds_per_phase", opt.seconds);
    report.set_meta("target_qps", opt.qps);
    report.set_meta("warm_keys", static_cast<double>(opt.warm_keys));
    report.set_meta("models", static_cast<double>(registry.size()));
    report.set_meta("verify", opt.verify ? 1.0 : 0.0);

    if (opt.soak_seconds > 0.0) {
      // Soak replaces the sweeps: saturation hold + mid-run reload.
      report.set_meta("soak_seconds", opt.soak_seconds);
      report.set_meta("burst", static_cast<double>(opt.burst));
      SoakResult soak =
          run_soak(opt, registry, opt.verify ? &verifier : nullptr);
      report_soak(report, soak);
      report_stats_phase(report, "soak", opt);
      report.set_summary("total_errors", static_cast<double>(soak.errors));
      report.set_summary("total_bit_mismatches",
                         static_cast<double>(soak.mismatches));
      report.set_summary("malformed", static_cast<double>(soak.malformed));
      report.set_summary("shed", static_cast<double>(soak.shed));
      report.set_summary("reload_ok", soak.reload_ok ? 1.0 : 0.0);
      report.set_summary("reload_swap_us", soak.reload_swap_us);
      report.set_summary("connect_retries",
                         static_cast<double>(g_connect_retries.load()));
      report.set_summary("response_retries",
                         static_cast<double>(g_response_retries.load()));
      report.write();
      if (soak.errors != 0 || soak.mismatches != 0 || soak.malformed != 0 ||
          !soak.reload_ok) {
        std::fprintf(stderr,
                     "serve_loadgen: SOAK FAILED: %llu error(s), %llu bit "
                     "mismatch(es), %llu malformed, reload %s\n",
                     static_cast<unsigned long long>(soak.errors),
                     static_cast<unsigned long long>(soak.mismatches),
                     static_cast<unsigned long long>(soak.malformed),
                     soak.reload_ok ? "ok" : "failed");
        return 1;
      }
      std::printf("serve_loadgen: soak ok — mid-run reload swapped in "
                  "%.0f us, %llu shed, every ok answer%s\n",
                  soak.reload_swap_us,
                  static_cast<unsigned long long>(soak.shed),
                  opt.verify ? " bit-identical to local evaluation" : "");
      return 0;
    }

    // Cold sweep: unique constraints per request, key space disjoint
    // from the warm phase so nothing is pre-cached.
    PhaseResult cold = run_phase(opt, registry,
                                 opt.verify ? &verifier : nullptr,
                                 /*key_base=*/1u << 20, /*unique_keys=*/0);
    report_phase(report, "cold", cold);
    bool stats_ok = report_stats_phase(report, "cold", opt);

    // Warm sweep: cycle a small key set; after the first lap every
    // request should hit the server's result cache.
    PhaseResult warm = run_phase(opt, registry,
                                 opt.verify ? &verifier : nullptr,
                                 /*key_base=*/0, opt.warm_keys);
    report_phase(report, "warm", warm);
    stats_ok = report_stats_phase(report, "warm", opt) && stats_ok;
    report.set_summary("stats_sampled", stats_ok ? 1.0 : 0.0);

    const std::uint64_t errors = cold.errors + warm.errors;
    const std::uint64_t mismatches = cold.mismatches + warm.mismatches;
    report.set_summary("total_errors", static_cast<double>(errors));
    report.set_summary("total_bit_mismatches",
                       static_cast<double>(mismatches));
    report.set_summary("warm_cache_hits",
                       static_cast<double>(warm.cache_hits));
    report.set_summary("connect_retries",
                       static_cast<double>(g_connect_retries.load()));
    report.set_summary("response_retries",
                       static_cast<double>(g_response_retries.load()));
    report.write();

    if (errors != 0 || mismatches != 0) {
      std::fprintf(stderr,
                   "serve_loadgen: FAILED: %llu error(s), %llu bit "
                   "mismatch(es)\n",
                   static_cast<unsigned long long>(errors),
                   static_cast<unsigned long long>(mismatches));
      return 1;
    }
    std::printf("serve_loadgen: all responses ok%s\n",
                opt.verify ? " and bit-identical to local evaluation" : "");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_loadgen: %s\n", e.what());
    return 1;
  }
}
