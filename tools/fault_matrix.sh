#!/bin/sh
# tools/fault_matrix.sh — deterministic fault-injection matrix.
#
#   tools/fault_matrix.sh <path-to-tmm> [path-to-serve_loadgen]
#
# For every registered fault site (`tmm fault-sites`) the matrix arms
# the site in throw mode against a command that reaches it and asserts
# the flow degrades cleanly: a structured "injected fault" diagnostic,
# an exit code in {1,2,3} (never a crash), and no torn temp files left
# in any checkpoint directory.  Persistence sites are additionally
# armed in kill mode (SIGKILL at the site); the interrupted flow must
# resume to outputs bit-identical to an uninterrupted baseline run.
set -eu

TMM="$1"
LOADGEN="${2:-}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
fail() { echo "FAULT_MATRIX_FAIL: $*" >&2; exit 1; }

# Small deterministic fixtures + an uninterrupted baseline flow run.
"$TMM" gen-design "$DIR/t1.dsn" --pins 1000 --seed 6 --name t1
"$TMM" gen-design "$DIR/t2.dsn" --pins 1200 --seed 7 --name t2
"$TMM" flow "$DIR/base" "$DIR/t1.dsn" "$DIR/t2.dsn" > /dev/null
mkdir "$DIR/models"
"$TMM" pack "$DIR/base/out/t1.macro" --out "$DIR/models/t1.tmb"

# Real-circuit fixture for the frontend sites (docs/FRONTEND.md).
cat > "$DIR/fe.blif" <<'EOF'
.model fe_majority
.inputs a b c
.outputs y
.names a b ab
11 1
.names a c ac
11 1
.names b c bc
11 1
.names ab ac bc y
1-- 1
-1- 1
--1 1
.end
EOF

"$TMM" fault-sites > "$DIR/sites.txt"
[ -s "$DIR/sites.txt" ] || fail "fault-site registry is empty"

# Map a site to a command line that reaches it on its first hit.  The
# checkpointed flow covers most sites; parser/engine sites get
# targeted commands.  $2 is a unique suffix for scratch outputs.
command_for() {
  case "$1" in
    netlist.read) echo "stats $DIR/t1.dsn" ;;
    sta.run)      echo "sta $DIR/t1.dsn" ;;
    gnn.train_epoch|gnn.save)
                  echo "train $DIR/m-$2.gnn $DIR/t1.dsn" ;;
    gnn.load)     echo "generate $DIR/base/model.gnn $DIR/t1.dsn $DIR/g-$2.macro" ;;
    macro.read)   echo "evaluate $DIR/t1.dsn $DIR/base/out/t1.macro" ;;
    serve.pack)   echo "pack $DIR/base/out/t1.macro --out $DIR/p-$2.tmb" ;;
    serve.load_model)
                  echo "serve $DIR/models --socket $DIR/s-$2.sock" ;;
    frontend.parse|frontend.map)
                  echo "import $DIR/fe.blif --out $DIR/fe-$2.dsn" ;;
    *)            echo "flow $DIR/run-$2 $DIR/t1.dsn $DIR/t2.dsn" ;;
  esac
}

n=0
while read -r site; do
  [ -n "$site" ] || continue
  case "$site" in
    serve.parse_request|serve.write_response)
      # Reached only inside a live server loop; exercised with a real
      # client (serve_loadgen) in tests/cli_test.sh.
      echo "  throw $site: covered by tests/cli_test.sh (needs a live client)"
      continue ;;
    serve.reload_open|serve.reload_swap|serve.reload_validate)
      # Reached only by a live reload; exercised in the dedicated
      # hot-reload rollback block below.
      continue ;;
  esac
  n=$((n + 1))
  cmd=$(command_for "$site" "$n")
  rc=0
  # shellcheck disable=SC2086
  TMM_FAULT="$site:1" "$TMM" $cmd > "$DIR/out-$n.txt" 2>&1 || rc=$?
  [ "$rc" -le 3 ] || fail "$site: exit code $rc looks like a crash"
  [ "$rc" -ne 0 ] || fail "$site: armed fault never reached by '$cmd'"
  grep -q "injected" "$DIR/out-$n.txt" \
    || fail "$site: no injected-fault diagnostic (rc=$rc)"
  if [ -d "$DIR/run-$n" ]; then
    [ "$(find "$DIR/run-$n" -name '*.tmp.*' | wc -l)" -eq 0 ] \
      || fail "$site: torn temp files left behind"
  fi
  echo "  throw $site: rc=$rc OK"
done < "$DIR/sites.txt"

# Hot-reload rollback: each serve.reload_* site fires mid-reload
# against a live server; the reload must report the injected failure,
# the previous generation must keep serving (bit-identically when a
# loadgen is provided), and a second reload — the fault is exactly-once
# — must swap cleanly before a clean exit-0 drain.
r=0
for site in serve.reload_open serve.reload_swap serve.reload_validate; do
  r=$((r + 1))
  SOCK="$DIR/reload-$r.sock"
  TMM_FAULT="$site:1" "$TMM" serve "$DIR/models" --socket "$SOCK" \
    --threads 1 > "$DIR/reload-serve-$r.txt" 2>&1 &
  SRV=$!
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
  [ -S "$SOCK" ] || fail "$site: server never bound $SOCK"
  "$TMM" stat --reload "$SOCK" > "$DIR/reload-$r.json" \
    || fail "$site: stat --reload failed"
  grep -q '"ok": false' "$DIR/reload-$r.json" \
    || fail "$site: injected reload did not report failure"
  grep -q "injected" "$DIR/reload-$r.json" \
    || fail "$site: no injected-fault diagnostic in reload answer"
  if [ -n "$LOADGEN" ]; then
    TMM_BENCH_JSON_DIR="$DIR" "$LOADGEN" --socket "$SOCK" \
      --model-dir "$DIR/models" --threads 2 --seconds 1 --warm-keys 2 \
      > "$DIR/reload-lg-$r.txt" \
      || fail "$site: old generation stopped serving bit-identically"
  fi
  "$TMM" stat --reload "$SOCK" > "$DIR/reload-retry-$r.json" \
    || fail "$site: post-fault reload failed"
  grep -q '"ok": true' "$DIR/reload-retry-$r.json" \
    || fail "$site: reload did not recover after the one-shot fault"
  kill -TERM "$SRV"
  rc=0
  wait "$SRV" || rc=$?
  [ "$rc" -eq 0 ] || fail "$site: server did not drain cleanly (rc=$rc)"
  echo "  throw $site: rollback kept serving, retry swapped OK"
done

# SIGKILL mid-persistence, then resume: the checkpoint protocol must
# reproduce the uninterrupted baseline bit-for-bit.
KILL_SITES="checkpoint.save_model checkpoint.save_sens \
            util.atomic_write util.atomic_rename"
k=0
for site in $KILL_SITES; do
  k=$((k + 1))
  run="$DIR/kill-$k"
  rc=0
  TMM_FAULT="$site:1:kill" "$TMM" flow "$run" "$DIR/t1.dsn" "$DIR/t2.dsn" \
    > /dev/null 2>&1 || rc=$?
  [ "$rc" -ge 128 ] || fail "$site: kill fault did not terminate the run (rc=$rc)"
  "$TMM" --resume "$run" flow "$DIR/t1.dsn" "$DIR/t2.dsn" > /dev/null \
    || fail "$site: resume after SIGKILL failed"
  cmp -s "$run/model.gnn" "$DIR/base/model.gnn" \
    || fail "$site: resumed model differs from baseline"
  for m in "$DIR/base/out/"*.macro; do
    cmp -s "$m" "$run/out/$(basename "$m")" \
      || fail "$site: resumed macro $(basename "$m") differs from baseline"
  done
  [ "$(find "$run" -name '*.tmp.*' | wc -l)" -eq 0 ] \
    || fail "$site: torn temp files survived resume"
  echo "  kill  $site: resume bit-identical OK"
done

# SIGKILL mid-parse on a real-circuit flow: the .blif enters the flow
# through the frontend; a kill inside the parser must leave the run
# directory resumable, and the resumed run must reproduce an
# uninterrupted BLIF baseline bit-for-bit (imports are deterministic,
# so the re-parse on resume regenerates identical designs).
"$TMM" flow "$DIR/fe-base" "$DIR/fe.blif" "$DIR/t1.dsn" > /dev/null
rc=0
TMM_FAULT="frontend.parse:1:kill" "$TMM" flow "$DIR/fe-kill" \
  "$DIR/fe.blif" "$DIR/t1.dsn" > /dev/null 2>&1 || rc=$?
[ "$rc" -ge 128 ] || fail "frontend.parse: kill fault did not terminate (rc=$rc)"
"$TMM" --resume "$DIR/fe-kill" flow "$DIR/fe.blif" "$DIR/t1.dsn" > /dev/null \
  || fail "frontend.parse: resume after mid-parse SIGKILL failed"
cmp -s "$DIR/fe-kill/model.gnn" "$DIR/fe-base/model.gnn" \
  || fail "frontend.parse: resumed model differs from BLIF baseline"
for m in "$DIR/fe-base/out/"*.macro; do
  cmp -s "$m" "$DIR/fe-kill/out/$(basename "$m")" \
    || fail "frontend.parse: resumed macro $(basename "$m") differs"
done
[ "$(find "$DIR/fe-kill" -name '*.tmp.*' | wc -l)" -eq 0 ] \
  || fail "frontend.parse: torn temp files survived resume"
echo "  kill  frontend.parse: flow over .blif resumed bit-identical OK"

echo "FAULT_MATRIX_OK"
