#!/bin/sh
# tools/check.sh — continuous static/dynamic analysis driver.
#
#   tools/check.sh [release] [sanitize] [tsan] [tidy] [threadsafety]
#                  [lockorder] [fault] [frontend]
#
# With no arguments all eight stages run:
#   release   Release build with -Werror (TMM_WERROR=ON) + full ctest.
#   sanitize  ASan+UBSan build (TMM_SANITIZE=address,undefined) + full
#             ctest; any sanitizer report fails the test.
#   tsan      TSan build (TMM_SANITIZE=thread) + the multi-threaded
#             incremental TS equivalence tests (the per-worker scratch
#             graph / engine reuse is the racy-by-construction surface),
#             the parallel STA + task-pool suites (levelized workers
#             over the shared SoA store, tests/test_sta_parallel.cpp)
#             and the serving-engine concurrency tests (shared registry
#             + sharded cache + socket server, tests/test_serve.cpp).
#   tidy      clang-tidy over src/ using the repo .clang-tidy config
#             (skipped with a notice when clang-tidy is not installed).
#             TIDY_BASE=<git-ref> restricts it to files changed since
#             that ref (used by CI on pull requests).
#   threadsafety
#             Clang build with -Werror=thread-safety over the
#             TMM_GUARDED_BY/TMM_REQUIRES annotations
#             (src/util/thread_annotations.hpp; skipped with a notice
#             when clang++ is not installed — GCC has no capability
#             analysis).
#   lockorder Debug build with the lock-order analyzer compiled into
#             util::Mutex (-DTMM_LOCKORDER=ON), running the analyzer
#             tests plus the concurrent serve/obs/fault suites, then
#             `tmm lint --concurrency` as the acyclic-hierarchy gate.
#   fault     Deterministic fault-injection matrix (tools/fault_matrix.sh):
#             every registered TMM_FAULT site is armed in throw mode
#             (clean skip-with-diagnostic, no torn files) and the
#             persistence sites in kill mode (SIGKILL + bit-identical
#             resume).
#   frontend  Real-circuit frontend smoke (tools/frontend_smoke.sh):
#             every examples/blif circuit imported (byte-identical
#             re-import), linted, timed, run through the flow, packed
#             and served bit-identically, plus the import-throughput
#             bench emitting BENCH_frontend.json.
#
# Build trees live in build-check-* so the developer build/ is never
# clobbered. Exit code is non-zero as soon as any stage fails.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
JOBS=$(nproc 2>/dev/null || echo 4)

run_release() {
  echo "== check: release (-Werror) =="
  cmake -S "$ROOT" -B "$ROOT/build-check-release" \
    -DCMAKE_BUILD_TYPE=Release -DTMM_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build "$ROOT/build-check-release" -j"$JOBS"
  ctest --test-dir "$ROOT/build-check-release" --output-on-failure -j"$JOBS"
}

run_sanitize() {
  echo "== check: ASan+UBSan =="
  cmake -S "$ROOT" -B "$ROOT/build-check-asan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTMM_WERROR=ON \
    -DTMM_SANITIZE=address,undefined >/dev/null
  cmake --build "$ROOT/build-check-asan" -j"$JOBS"
  # halt_on_error turns any UBSan finding into a test failure instead of
  # a log line; leak checking needs ptrace and is unavailable in some
  # containers, so tolerate LSan being absent.
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}" \
  ctest --test-dir "$ROOT/build-check-asan" --output-on-failure -j"$JOBS"
}

run_tsan() {
  echo "== check: TSan (parallel STA + incremental TS loop + serving engine) =="
  cmake -S "$ROOT" -B "$ROOT/build-check-tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTMM_WERROR=ON \
    -DTMM_SANITIZE=thread >/dev/null
  cmake --build "$ROOT/build-check-tsan" -j"$JOBS" --target tmm_tests
  TSAN_OPTIONS="halt_on_error=1" \
  "$ROOT/build-check-tsan/tests/tmm_tests" \
    --gtest_filter='StaIncremental.*:StaParallel.*:TaskPool.*:MergeDelta.*:TsIncremental.*:TsParallel.*:Server.*:ResultCache.*:Evaluator.*:FlightRecorder.*:SlidingWindow.*:ServeAdmin.*:Reload.*'
}

run_tidy() {
  echo "== check: clang-tidy =="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed — skipping the tidy stage"
    return 0
  fi
  # Reuse (or create) the release tree's compilation database.
  if [ ! -f "$ROOT/build-check-release/compile_commands.json" ]; then
    cmake -S "$ROOT" -B "$ROOT/build-check-release" \
      -DCMAKE_BUILD_TYPE=Release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  if [ -n "${TIDY_BASE:-}" ]; then
    files=$(cd "$ROOT" && git diff --name-only "$TIDY_BASE" -- 'src/*.cpp' \
              'src/**/*.cpp' | sed "s|^|$ROOT/|" | sort -u)
  else
    files=$(find "$ROOT/src" -name '*.cpp' | sort)
  fi
  if [ -z "$files" ]; then
    echo "no source files to tidy"
    return 0
  fi
  echo "$files" | xargs -P "$JOBS" -n 1 \
    clang-tidy -p "$ROOT/build-check-release" --quiet
}

run_threadsafety() {
  echo "== check: clang thread-safety analysis =="
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "clang++ not installed — skipping the thread-safety stage"
    return 0
  fi
  cmake -S "$ROOT" -B "$ROOT/build-check-threadsafety" \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=Release \
    -DTMM_THREAD_SAFETY=ON >/dev/null
  cmake --build "$ROOT/build-check-threadsafety" -j"$JOBS"
}

run_lockorder() {
  echo "== check: lock-order analyzer (Debug, tracking on) =="
  cmake -S "$ROOT" -B "$ROOT/build-check-lockorder" \
    -DCMAKE_BUILD_TYPE=Debug -DTMM_LOCKORDER=ON >/dev/null
  cmake --build "$ROOT/build-check-lockorder" -j"$JOBS" \
    --target tmm_tests tmm
  # Analyzer semantics plus the concurrent subsystems under live
  # acquisition tracking: any ordering violation a test provokes in
  # real mutexes fails the suite (the deliberate inversions in
  # LockOrder.* reset their observations).
  "$ROOT/build-check-lockorder/tests/tmm_tests" \
    --gtest_filter='LockOrder.*:TaskPool*:StaParallel*:Server*:ResultCache*:Evaluator*:Registry*:Reload*:Tmb*:Protocol*:Obs*:Fault*:ServeLint*:ServeStats*:ServeAdmin*:FlightRecorder*:SlidingWindow*:LatencyBuckets*'
  # Self-audit gate: dump the registered lock hierarchy and fail on any
  # cycle (exit 3).
  "$ROOT/build-check-lockorder/tools/tmm" lint --concurrency
}

run_fault() {
  echo "== check: fault-injection matrix =="
  # Reuse (or create) the release tree; the tmm binary drives the
  # matrix and serve_loadgen verifies the hot-reload rollback block.
  cmake -S "$ROOT" -B "$ROOT/build-check-release" \
    -DCMAKE_BUILD_TYPE=Release -DTMM_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build "$ROOT/build-check-release" -j"$JOBS" --target tmm serve_loadgen
  sh "$ROOT/tools/fault_matrix.sh" "$ROOT/build-check-release/tools/tmm" \
    "$ROOT/build-check-release/tools/serve_loadgen"
}

run_frontend() {
  echo "== check: real-circuit frontend smoke =="
  cmake -S "$ROOT" -B "$ROOT/build-check-release" \
    -DCMAKE_BUILD_TYPE=Release -DTMM_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build "$ROOT/build-check-release" -j"$JOBS" \
    --target tmm serve_loadgen bench_frontend
  sh "$ROOT/tools/frontend_smoke.sh" "$ROOT/build-check-release/tools/tmm" \
    "$ROOT/build-check-release/tools/serve_loadgen"
  # Import-throughput bench with machine-readable output (scaled down).
  bench_dir="$(mktemp -d)"
  ( cd "$bench_dir" && TMM_TEST_SCALE=10 \
      "$ROOT/build-check-release/bench/bench_frontend" )
  test -s "$bench_dir/BENCH_frontend.json"
  rm -rf "$bench_dir"
}

stages="${*:-release sanitize tsan tidy threadsafety lockorder fault frontend}"
for stage in $stages; do
  case "$stage" in
    release)      run_release ;;
    sanitize)     run_sanitize ;;
    tsan)         run_tsan ;;
    tidy)         run_tidy ;;
    threadsafety) run_threadsafety ;;
    lockorder)    run_lockorder ;;
    fault)        run_fault ;;
    frontend)     run_frontend ;;
    *) echo "unknown stage '$stage' (expected release|sanitize|tsan|tidy|threadsafety|lockorder|fault|frontend)" >&2
       exit 64 ;;
  esac
done
echo "CHECK_OK"
