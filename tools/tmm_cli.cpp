// tmm — command-line driver for the timing-macro-modeling framework.
//
// Global options (before or after the subcommand):
//   --trace <out.json>    write a Chrome trace of the run (load in
//                         chrome://tracing or https://ui.perfetto.dev)
//   --metrics <out.json>  dump the metrics-registry snapshot on exit
//   --resume <dir>        checkpoint/resume directory for `flow` and
//                         `train` (docs/ROBUSTNESS.md); re-running with
//                         the same directory resumes bit-identically
//
// Subcommands (everything uses the built-in generated NLDM library):
//   tmm gen-design <out.dsn> [--pins N] [--seed S] [--name X]
//   tmm import     <in.blif|in.v> [out.dsn] [--out out.dsn] [--lib L]
//                  [--top M] [--clock NET] [--name X]
//                  (real-circuit frontend, docs/FRONTEND.md: parse BLIF
//                  or structural Verilog, lint the flattened netlist
//                  (F001-F004), tech-map onto the generated library —
//                  `.names` nodes become on-demand NK* cells, latches
//                  become DFF_X1 — and write a .dsn; --lib is a library
//                  generator seed or generated-library name, default the
//                  built-in library. Importing the same file twice is
//                  byte-identical.)
//   tmm stats      <in.dsn>
//   tmm sta        <in.dsn> [--no-cppr] [--period PS] [--threads N]
//   tmm train      <out.gnn> <train1.dsn> [train2.dsn ...] [--no-cppr]
//                  [--regression] [--threads N]
//   tmm generate   <in.gnn> <in.dsn> <out.macro> [--no-cppr] [--threads N]
//   tmm evaluate   <in.dsn> <in.macro> [--no-cppr] [--sets K] [--threads N]
//   tmm flow       <run-dir> <design.dsn...> [--no-cppr] [--regression]
//                  [--threads N]
//                  (full pipeline with per-design isolation + resume;
//                  with --resume <dir>, the run-dir positional is
//                  omitted)
//   tmm pack       <in.macro...> [--out file.tmb]  (convert macro models
//                  to the binary serving format; docs/SERVING.md)
//   tmm serve      <model-dir> [--socket path | --port N] [--threads N]
//                  [--batch N] [--cache N] [--quantize Q] [--no-cppr]
//                  [--slow-ms X] [--slow-sample N] [--flight-records N]
//                  [--dump-dir D] [--max-inflight N]
//                  (serve every .tmb in model-dir; SIGTERM drains,
//                  SIGHUP hot-reloads the directory as a new generation
//                  with rollback on any failure; requests past the
//                  --max-inflight admission budget are shed with
//                  kOverloaded; requests slower than --slow-ms land in
//                  the slow log, any serve.* injected fault dumps the
//                  flight recorder into --dump-dir, default the model
//                  dir)
//   tmm stat       <endpoint> [--health | --flight | --reload]
//                  [--watch] [--interval S]
//                  (query a live server's admin channel: windowed stats
//                  JSON by default, or trigger a hot reload with
//                  --reload; endpoint is a unix socket path or a TCP
//                  port on 127.0.0.1. --watch reconnects with backoff
//                  when the server restarts)
//   tmm export-lib <out.lib> [--early]
//   tmm lint       <file...>  (.macro files are linted as macro models,
//                  .tmb files and model directories as serving artifacts,
//                  .blif/.v files through the frontend import lint
//                  (F001-F004, then design+graph lint when mappable),
//                  anything else as designs + their flat timing graphs)
//   tmm lint       --concurrency  (self-audit: exercise the lock-using
//                  subsystems, dump the lock hierarchy, fail on cycles)
//   tmm fault-sites           (list fault-injection sites; see
//                  docs/ROBUSTNESS.md and the TMM_FAULT env variable)
//
// --threads N on the analysis commands caps the STA/TS worker count
// (N >= 1); without it the count is automatic (TMM_THREADS when set,
// else hardware concurrency). On `serve` it sets the request worker
// count as before. Parallel analysis is bit-identical to serial
// (docs/PERFORMANCE.md).
//
// Exit codes: 0 success; 1 runtime failure; 2 configuration error
// (unrecognized/misplaced options, malformed TMM_FAULT, checkpoint
// fingerprint mismatch); 3 partial/degraded success (`flow`/`train`
// skipped or degraded some designs — and `lint` findings).

#include <cstdio>
#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/design_lint.hpp"
#include "analysis/graph_lint.hpp"
#include "analysis/model_lint.hpp"
#include "analysis/serve_lint.hpp"
#include "fault/fault.hpp"
#include "flow/flow_runner.hpp"
#include "flow/framework.hpp"
#include "frontend/elaborate.hpp"
#include "frontend/frontend.hpp"
#include "frontend/frontend_lint.hpp"
#include "gnn/graphsage.hpp"
#include "liberty/liberty_writer.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"
#include "netlist/netlist_io.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/reload.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "serve/tmb.hpp"
#include "util/lockorder.hpp"
#include "util/log.hpp"
#include "util/task_pool.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <thread>

namespace {

using namespace tmm;

const Library& default_library() {
  static const Library lib = generate_library();
  return lib;
}

/// Bad invocation (unknown/misplaced option): exit code 2, distinct
/// from runtime failures (1) and lint findings (3).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Args {
  std::vector<std::string> positional;
  bool cppr = true;
  bool regression = false;
  std::size_t pins = 5000;
  std::uint64_t seed = 1;
  std::string name = "design";
  double period = 1000.0;
  std::size_t sets = 4;
  bool early = false;
  /// True when --name was given explicitly (import: override the
  /// design name instead of keeping the top model's).
  bool name_given = false;
  // Frontend options (`tmm import` / `tmm flow`, docs/FRONTEND.md).
  std::string lib;    ///< library: generator seed or generated name
  std::string top;    ///< top model override
  std::string clock;  ///< clock net override
  /// Copied from GlobalOpts: checkpoint/resume directory.
  std::string resume_dir;
  // Serving options (`tmm pack` / `tmm serve`, docs/SERVING.md).
  std::string out;       ///< pack: output .tmb path
  std::string socket;    ///< serve: unix socket path
  int port = -1;         ///< serve: TCP port (0 = ephemeral)
  /// serve: request workers (default 4). For the analysis commands the
  /// default is unused — see sta_threads(); threads_given tells an
  /// explicit --threads apart from the serve default.
  std::size_t threads = 4;
  bool threads_given = false;
  std::size_t batch = 16;
  std::size_t cache = 4096;
  double quantize = 0.0;
  /// lint: concurrency self-audit (lock hierarchy dump + cycle gate).
  bool concurrency = false;
  // Live-telemetry options (`tmm serve` / `tmm stat`).
  double slow_ms = 0.0;          ///< serve: slow-log threshold (0 = off)
  std::size_t slow_sample = 1;   ///< serve: log every Nth slow request
  std::size_t flight_records = 256;  ///< serve: per-thread ring (0 = off)
  std::string dump_dir;          ///< serve: dump-on-fault directory
  std::size_t max_inflight = 0;  ///< serve: admission budget (0 = derived)
  bool health = false;           ///< stat: kHealth instead of kStats
  bool flight = false;           ///< stat: kFlightDump instead of kStats
  bool reload = false;           ///< stat: kReload (trigger a hot reload)
  bool watch = false;            ///< stat: repeat until interrupted
  double interval = 2.0;         ///< stat: --watch period, seconds
};

/// Options valid with every subcommand.
struct GlobalOpts {
  std::string trace_path;
  std::string metrics_path;
  std::string resume_dir;
};

/// Parse the arguments after the subcommand. Every option must be in
/// the subcommand's `allowed` list: `tmm lint --pins 5 x.dsn` is an
/// error, not a silently ignored flag.
Args parse(int argc, char** argv, int first, const std::string& cmd,
           const std::vector<std::string_view>& allowed, GlobalOpts& g) {
  Args args;
  static constexpr std::string_view kKnownFlags[] = {
      "--no-cppr", "--regression", "--pins",    "--seed",
      "--name",    "--period",     "--sets",    "--early",
      "--out",     "--socket",     "--port",    "--threads",
      "--batch",   "--cache",      "--quantize", "--concurrency",
      "--slow-ms", "--slow-sample", "--flight-records", "--dump-dir",
      "--health",  "--flight",     "--watch",   "--interval",
      "--max-inflight", "--reload", "--lib",    "--top",
      "--clock"};
  auto check_allowed = [&](std::string_view a) {
    if (std::find(allowed.begin(), allowed.end(), a) != allowed.end()) return;
    const bool known = std::find(std::begin(kKnownFlags), std::end(kKnownFlags),
                                 a) != std::end(kKnownFlags);
    if (known)
      throw UsageError("option " + std::string(a) +
                       " is not valid for subcommand '" + cmd + "'");
    throw UsageError("unknown option " + std::string(a));
  };
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw UsageError("missing value for " + a);
      return argv[++i];
    };
    if (a == "--trace") {
      g.trace_path = next();
      continue;
    }
    if (a == "--metrics") {
      g.metrics_path = next();
      continue;
    }
    if (a == "--resume") {
      g.resume_dir = next();
      continue;
    }
    if (a.rfind("--", 0) == 0) check_allowed(a);
    if (a == "--no-cppr")
      args.cppr = false;
    else if (a == "--regression")
      args.regression = true;
    else if (a == "--pins")
      args.pins = std::stoul(next());
    else if (a == "--seed")
      args.seed = std::stoull(next());
    else if (a == "--name") {
      args.name = next();
      args.name_given = true;
    }
    else if (a == "--period")
      args.period = std::stod(next());
    else if (a == "--sets")
      args.sets = std::stoul(next());
    else if (a == "--early")
      args.early = true;
    else if (a == "--out")
      args.out = next();
    else if (a == "--socket")
      args.socket = next();
    else if (a == "--port")
      args.port = std::stoi(next());
    else if (a == "--threads") {
      args.threads = std::stoul(next());
      args.threads_given = true;
      if (args.threads == 0)
        throw UsageError("--threads must be a positive integer");
    }
    else if (a == "--batch")
      args.batch = std::stoul(next());
    else if (a == "--cache")
      args.cache = std::stoul(next());
    else if (a == "--quantize")
      args.quantize = std::stod(next());
    else if (a == "--concurrency")
      args.concurrency = true;
    else if (a == "--slow-ms")
      args.slow_ms = std::stod(next());
    else if (a == "--slow-sample")
      args.slow_sample = std::stoul(next());
    else if (a == "--flight-records")
      args.flight_records = std::stoul(next());
    else if (a == "--dump-dir")
      args.dump_dir = next();
    else if (a == "--max-inflight")
      args.max_inflight = std::stoul(next());
    else if (a == "--reload")
      args.reload = true;
    else if (a == "--health")
      args.health = true;
    else if (a == "--flight")
      args.flight = true;
    else if (a == "--watch")
      args.watch = true;
    else if (a == "--interval")
      args.interval = std::stod(next());
    else if (a == "--lib")
      args.lib = next();
    else if (a == "--top")
      args.top = next();
    else if (a == "--clock")
      args.clock = next();
    else if (a.rfind("--", 0) == 0)
      throw UsageError("unknown option " + a);
    else
      args.positional.push_back(a);
  }
  args.resume_dir = g.resume_dir;
  return args;
}

/// Library generator seed behind a --lib value: empty = default, all
/// digits = an explicit seed, otherwise a generated-library name
/// ("tmm_nldm45" / "tmm_nldm45_s<seed>").
std::uint64_t lib_seed_from(const std::string& lib) {
  if (lib.empty()) return LibraryGenConfig{}.seed;
  if (std::all_of(lib.begin(), lib.end(),
                  [](unsigned char c) { return std::isdigit(c) != 0; }))
    return std::stoull(lib);
  LibraryGenConfig cfg;
  if (!library_config_for_name(lib, &cfg))
    throw UsageError("--lib must be a library generator seed or a "
                     "generated library name, got '" + lib + "'");
  return cfg.seed;
}

frontend::FrontendConfig frontend_config(const Args& args) {
  frontend::FrontendConfig cfg;
  cfg.lib_seed = lib_seed_from(args.lib);
  cfg.top = args.top;
  cfg.clock = args.clock;
  if (args.name_given) cfg.design_name = args.name;
  return cfg;
}

/// Load a design from any supported path: .blif/.v are imported
/// through the frontend (against the registry library for the default
/// seed), .dsn files read against the built-in library — or, when they
/// reference frontend-synthesized NK* cells, against the registry with
/// those cells re-synthesized from their names.
Design load_design(const std::string& path) {
  return frontend::load_design_any(path, {}, &default_library());
}

/// STA/TS worker count for the analysis commands: an explicit
/// --threads N wins, otherwise 0 = auto (TMM_THREADS when set, else
/// hardware concurrency — util::TaskPool::default_threads()).
std::size_t sta_threads(const Args& args) {
  return args.threads_given ? args.threads : 0;
}

int cmd_gen_design(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("gen-design: output path required");
  DesignGenConfig cfg;
  cfg.name = args.name;
  cfg.seed = args.seed;
  const double budget = static_cast<double>(args.pins) / 3.3;
  cfg.num_flops = std::max<std::size_t>(8, static_cast<std::size_t>(budget * 0.1));
  cfg.levels = 8;
  cfg.gates_per_level = std::max<std::size_t>(
      4, static_cast<std::size_t>(budget * 0.85) / cfg.levels);
  cfg.num_data_inputs =
      std::clamp<std::size_t>(static_cast<std::size_t>(budget / 60.0), 8, 256);
  cfg.num_outputs = cfg.num_data_inputs;
  const Design d = generate_design(default_library(), cfg);
  const std::size_t bytes = write_design_file(d, args.positional[0]);
  std::printf("wrote %s: %zu pins, %zu cells, %zu nets (%zu bytes)\n",
              args.positional[0].c_str(), d.num_pins(), d.num_gates(),
              d.num_nets(), bytes);
  return 0;
}

int cmd_import(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("import: <netlist.blif|netlist.v> required");
  if (args.positional.size() > 2)
    throw UsageError("import: expected <input> [output.dsn]");
  const std::string& in = args.positional[0];
  if (!frontend::is_frontend_path(in))
    throw UsageError("import: input must be a .blif or .v file, got '" + in +
                     "'");
  std::string out = args.out;
  if (out.empty() && args.positional.size() == 2) out = args.positional[1];
  if (!args.out.empty() && args.positional.size() == 2)
    throw UsageError("import: give either --out or an output positional");
  if (out.empty()) {
    // Default: input path with the extension swapped for .dsn.
    out = in;
    const std::size_t dot = out.rfind('.');
    if (dot != std::string::npos && out.find('/', dot) == std::string::npos)
      out.resize(dot);
    out += ".dsn";
  }
  frontend::ImportStats st;
  analysis::LintReport report;
  const Design d =
      frontend::import_file(in, frontend_config(args), &st, &report);
  const std::size_t bytes = write_design_file(d, out);
  std::printf("imported %s -> %s: %zu model(s), %zu primitive(s), "
              "%zu gates (%zu latches), %zu nets, %zu pins, library %s "
              "(+%zu cell(s) synthesized), clock %s (%zu bytes)\n",
              in.c_str(), out.c_str(), st.models, st.flat_prims, st.gates,
              st.latches, st.nets, st.pins, d.library().name().c_str(),
              st.cells_synthesized,
              st.clock.empty() ? "none" : st.clock.c_str(), bytes);
  if (report.warnings() > 0)
    std::fputs(report.to_string().c_str(), stdout);
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("stats: design path required");
  const Design d = load_design(args.positional[0]);
  std::size_t ffs = 0;
  for (GateId g = 0; g < d.num_gates(); ++g)
    if (d.library().cell(d.gate(g).cell).is_sequential) ++ffs;
  std::printf("design %s\n  pins  %zu\n  cells %zu (%zu flops)\n  nets  "
              "%zu\n  PIs   %zu\n  POs   %zu\n",
              d.name().c_str(), d.num_pins(), d.num_gates(), ffs,
              d.num_nets(), d.primary_inputs().size(),
              d.primary_outputs().size());
  return 0;
}

int cmd_sta(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("sta: design path required");
  const Design d = load_design(args.positional[0]);
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g, {.cppr = args.cppr, .threads = sta_threads(args)});
  sta.run(nominal_constraints(d.primary_inputs().size(),
                              d.primary_outputs().size(), args.period));
  std::printf("%s @ %.0f ps (CPPR %s):\n", d.name().c_str(), args.period,
              args.cppr ? "on" : "off");
  std::printf("  worst setup slack: %10.3f ps\n", sta.worst_slack(kLate));
  std::printf("  worst hold  slack: %10.3f ps\n", sta.worst_slack(kEarly));

  unsigned rf = kRise;
  const NodeId endpoint = sta.worst_endpoint(kLate, &rf);
  if (endpoint != kInvalidId) {
    std::printf("\n  critical setup path (endpoint %s, %s):\n",
                g.node(endpoint).name.c_str(), rf == kRise ? "rise" : "fall");
    const auto path = sta.worst_path(endpoint, kLate, rf);
    double prev = path.empty() ? 0.0 : path.front().at;
    for (const auto& step : path) {
      std::printf("    %-28s %c  at %9.3f ps  (+%7.3f)\n",
                  g.node(step.node).name.c_str(),
                  step.rf == kRise ? 'r' : 'f', step.at, step.at - prev);
      prev = step.at;
    }
  }
  return 0;
}

/// End-of-run degradation summary shared by `train` and `flow`
/// (docs/ROBUSTNESS.md): every skipped/degraded design with its
/// diagnostic, so partial results are never silently partial.
void print_degradation(const std::vector<DesignFailure>& failed,
                       const std::vector<std::string>& degraded) {
  for (const auto& f : failed)
    std::printf("  FAILED   %s: %s\n", f.design.c_str(), f.error.c_str());
  for (const auto& d : degraded)
    std::printf("  DEGRADED %s: conservative fallbacks applied\n", d.c_str());
}

int cmd_train(const Args& args) {
  if (args.positional.size() < 2)
    throw std::runtime_error("train: <out.gnn> <train.dsn...> required");
  FlowConfig cfg;
  cfg.cppr = args.cppr;
  cfg.cppr_feature = args.cppr;
  cfg.regression = args.regression;
  cfg.checkpoint_dir = args.resume_dir;
  cfg.threads = sta_threads(args);
  Framework fw(cfg);
  std::vector<Design> designs;
  for (std::size_t i = 1; i < args.positional.size(); ++i)
    designs.push_back(load_design(args.positional[i]));
  const TrainingSummary sum = fw.train(designs);
  std::printf("trained on %zu designs: %zu pins (%zu timing-variant), "
              "filter removed %.1f%%, %zu epochs, loss %.4f\n",
              sum.designs, sum.labeled_pins, sum.positives,
              sum.mean_filtered_fraction * 100.0, sum.report.epochs_run,
              sum.report.final_loss);
  if (sum.designs_from_checkpoint > 0 || sum.model_from_checkpoint)
    std::printf("resumed from %s: %zu design(s)%s restored\n",
                args.resume_dir.c_str(), sum.designs_from_checkpoint,
                sum.model_from_checkpoint ? " + model" : "");
  save_gnn_file(fw.model(), args.positional[0]);
  std::printf("model written to %s\n", args.positional[0].c_str());
  print_degradation(sum.failed, sum.degraded);
  return sum.failed.empty() && sum.degraded.empty() ? 0 : 3;
}

int cmd_flow(const Args& args) {
  std::string dir = args.resume_dir;
  std::size_t first_design = 0;
  if (dir.empty()) {
    if (args.positional.size() < 2)
      throw UsageError("flow: <run-dir> <design.dsn...> required "
                       "(or --resume <dir> plus designs)");
    dir = args.positional[0];
    first_design = 1;
  } else if (args.positional.empty()) {
    throw UsageError("flow: at least one design required");
  }
  FlowConfig cfg;
  cfg.cppr = args.cppr;
  cfg.cppr_feature = args.cppr;
  cfg.regression = args.regression;
  cfg.threads = sta_threads(args);
  std::vector<std::string> paths(args.positional.begin() +
                                     static_cast<std::ptrdiff_t>(first_design),
                                 args.positional.end());
  const flow::FlowRunReport report = flow::run_flow(
      paths, dir, cfg, default_library(), frontend_config(args));
  std::printf("flow: trained on %zu design(s)%s, %zu modeled, %zu failed\n",
              report.training.designs,
              report.training.designs_from_checkpoint > 0 ||
                      report.training.model_from_checkpoint
                  ? " (resumed)"
                  : "",
              report.completed.size(),
              report.failed.size() + report.training.failed.size());
  for (const auto& o : report.completed)
    std::printf("  OK       %s -> %s%s\n", o.design.c_str(),
                o.macro_path.c_str(), o.from_checkpoint ? " (resumed)" : "");
  print_degradation(report.training.failed, report.training.degraded);
  print_degradation(report.failed, {});
  return report.degraded() ? 3 : 0;
}

int cmd_fault_sites(const Args&) {
  for (const std::string_view site : fault::registered_sites())
    std::printf("%.*s\n", static_cast<int>(site.size()), site.data());
  return 0;
}

int cmd_generate(const Args& args) {
  if (args.positional.size() < 3)
    throw std::runtime_error("generate: <in.gnn> <in.dsn> <out.macro>");
  FlowConfig cfg;
  cfg.cppr = args.cppr;
  cfg.cppr_feature = args.cppr;
  cfg.regression = args.regression;
  cfg.threads = sta_threads(args);
  Framework fw(cfg);
  fw.set_model(load_gnn_file(args.positional[0]));
  const Design d = load_design(args.positional[1]);
  DesignResult r = fw.run_design(d);
  write_macro_model_file(r.model, args.positional[2]);
  std::printf("macro for %s: %zu -> %zu pins, %zu bytes, max boundary "
              "error %.4f ps (gen %.3f s)\n",
              d.name().c_str(), r.gen.ilm_pins, r.gen.model_pins,
              r.model_file_bytes, r.acc.max_err_ps,
              r.gen.generation_seconds);
  return 0;
}

int cmd_evaluate(const Args& args) {
  if (args.positional.size() < 2)
    throw std::runtime_error("evaluate: <in.dsn> <in.macro>");
  const Design d = load_design(args.positional[0]);
  std::ifstream is(args.positional[1]);
  if (!is) throw std::runtime_error("cannot open " + args.positional[1]);
  const MacroModel model = read_macro_model(is);
  const TimingGraph flat = build_timing_graph(d);
  Rng rng(0xC11);
  std::vector<BoundaryConstraints> sets;
  for (std::size_t i = 0; i < args.sets; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  Sta::Options sta_opt;
  sta_opt.cppr = args.cppr;
  sta_opt.threads = sta_threads(args);
  const AccuracyReport rep =
      evaluate_accuracy(flat, model.graph, sets, sta_opt);
  std::printf("%s vs %s over %zu constraint sets (CPPR %s):\n",
              args.positional[1].c_str(), d.name().c_str(), args.sets,
              args.cppr ? "on" : "off");
  std::printf("  max error %.4f ps, avg error %.4f ps, %zu values, "
              "%zu structural mismatches\n",
              rep.max_err_ps, rep.avg_err_ps, rep.compared_values,
              rep.structural_mismatches);
  return rep.structural_mismatches == 0 ? 0 : 2;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// `tmm lint --concurrency`: self-audit of the process's own lock
/// hierarchy. Exercises every concurrent subsystem the binary links
/// (metrics, trace, result cache, fault plan) so their acquisition
/// edges are observed, then dumps the registered classes + edges and
/// gates on the cycle verdict. In builds without acquisition tracking
/// the dump still lists every registered class; the report says so.
int lint_concurrency() {
  // obs.metrics.registry: registration + snapshot paths.
  obs::counter("lint.concurrency.probe").add();
  std::ostringstream sink;
  obs::write_metrics_json(sink);
  // obs.trace.registry -> obs.trace.buffer: the one intended nesting.
  obs::set_tracing_enabled(true);
  { obs::Span span("lint.concurrency"); }
  obs::trace_event_count();
  obs::set_tracing_enabled(false);
  // serve.cache.shard: lookup miss, insert, eviction-free stats sweep.
  serve::ResultCache cache(/*capacity=*/8, /*num_shards=*/2);
  BoundarySnapshot snap;
  cache.lookup("probe", snap);
  cache.insert("probe", snap);
  cache.stats();
  // util.taskpool.job -> util.taskpool.queue: a real multi-threaded
  // parallel_for on the shared pool, so both pool classes and their one
  // intended nesting are observed (the STA worker-dispatch path).
  {
    std::atomic<std::size_t> pool_sum{0};
    util::TaskPool::shared().parallel_for(
        64, 4, /*max_threads=*/0, [&](std::size_t b, std::size_t e) {
          pool_sum.fetch_add(e - b, std::memory_order_relaxed);
        });
    if (pool_sum.load() != 64)
      throw std::runtime_error("task pool self-check lost chunks");
  }
  // fault.plan: arm/disarm round trip (restores the disarmed state).
  if (fault::arm("sta.run", 1).ok()) fault::disarm();
  // fault.firehook: set + clear the fire observer.
  fault::set_fire_hook([](const char*) {});
  fault::set_fire_hook({});
  // obs.flightrec.registry: enable, record, drain, reset.
  obs::set_flight_recorder_enabled(true, /*per_thread_capacity=*/8);
  obs::FlightRecord rec;
  rec.set_model("probe");
  rec.set_status("ok");
  obs::flight_record(rec);
  obs::flight_snapshot();
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
  // serve.stats.slowlog: a slow request lands in the ring; the huge
  // sample keeps the probe out of stderr.
  serve::ServeStats stats({"probe"}, /*start_us=*/0,
                          {.slow_threshold_us = 1, .slow_sample = 1u << 30});
  serve::RequestTimings t;
  t.total_us = 5.0;
  stats.record(1'000'000, "probe", serve::ResponseStatus::kOk,
               /*cache_hit=*/false, serve::ShedKind::kNone, t,
               /*request_id=*/1);
  stats.stats_json(1'000'000);
  // serve.registry.reload -> serve.registry.generation: a reload pass
  // (here failing on a nonexistent directory — the rollback path takes
  // the same locks) plus a reader-side pin.
  serve::RegistryManager probe_manager("tmm-lint-concurrency-noexist");
  probe_manager.current();
  (void)probe_manager.reload();

  const bool acyclic = util::lockorder::write_report(std::cout);
  return acyclic ? 0 : 3;
}

int cmd_lint(const Args& args) {
  if (args.concurrency) {
    if (!args.positional.empty())
      throw UsageError("lint --concurrency takes no files");
    return lint_concurrency();
  }
  if (args.positional.empty())
    throw std::runtime_error("lint: at least one file required");
  std::size_t total_errors = 0;
  for (const std::string& path : args.positional) {
    analysis::LintReport report;
    if (std::filesystem::is_directory(path)) {
      report = analysis::lint_registry_dir(path);
    } else if (has_suffix(path, ".tmb")) {
      report = analysis::lint_tmb_file(path);
    } else if (has_suffix(path, ".macro")) {
      std::ifstream is(path);
      if (!is) throw std::runtime_error("cannot open " + path);
      const MacroModel model = read_macro_model(is);
      report = analysis::lint_model(model);
    } else if (frontend::is_frontend_path(path)) {
      // Frontend import lint: connectivity rules (F001-F004) against
      // source locations; when the netlist maps cleanly, the mapped
      // design and its timing graph are linted too.
      const frontend::FrontendConfig fcfg = frontend_config(args);
      const frontend::IrNetlist ir = frontend::parse_file(path);
      Library& flib = frontend::library_for_seed(fcfg.lib_seed);
      const frontend::FlatNetlist flat =
          frontend::elaborate(ir, flib, fcfg.top, &report);
      report.merge(frontend::lint_flat(flat, flib));
      if (report.errors() == 0) {
        const Design d = frontend::map_netlist(flat, flib, fcfg);
        report.merge(analysis::lint_design(d));
        report.merge(analysis::lint_graph(build_timing_graph(d)));
      }
    } else {
      const Design d = load_design(path);
      report = analysis::lint_design(d);
      report.merge(analysis::lint_graph(build_timing_graph(d)));
    }
    std::printf("%s: %zu diagnostic(s), %zu error(s), %zu warning(s)\n",
                path.c_str(), report.size(), report.errors(),
                report.warnings());
    if (!report.empty()) std::fputs(report.to_string().c_str(), stdout);
    total_errors += report.errors();
  }
  return total_errors == 0 ? 0 : 3;
}

int cmd_pack(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("pack: at least one .macro file required");
  if (!args.out.empty() && args.positional.size() > 1)
    throw UsageError("pack: --out is only valid with a single input");
  for (const std::string& path : args.positional) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open " + path);
    const MacroModel model = read_macro_model(is);
    std::string out = args.out;
    if (out.empty()) {
      out = path;
      const std::size_t dot = out.rfind('.');
      if (dot != std::string::npos && out.find('/', dot) == std::string::npos)
        out.resize(dot);
      out += ".tmb";
    }
    const std::size_t bytes = serve::write_tmb_file(model, out);
    std::printf("packed %s -> %s: %zu pins, %zu arcs, %zu bytes\n",
                path.c_str(), out.c_str(), model.num_pins(),
                model.num_arcs(), bytes);
  }
  return 0;
}

serve::Server* g_server = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

extern "C" void handle_reload_signal(int) {
  if (g_server != nullptr) g_server->request_reload();
}

int cmd_serve(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("serve: model directory required");
  const std::string& dir = args.positional[0];

  // Reloads are validated with the serving-artifact lint (S001–S003)
  // before the swap: a pack that fails lint never replaces a serving
  // generation. Startup is laxer (per-file isolation, degraded exit 3).
  serve::RegistryManager manager(dir, [](const std::string& d) {
    const analysis::LintReport report = analysis::lint_registry_dir(d);
    return report.errors() == 0 ? std::string() : report.to_string();
  });
  const std::size_t loaded = manager.load_initial();
  const std::shared_ptr<const serve::ModelRegistry> registry =
      manager.current();
  for (const auto& [name, entry] : registry->entries())
    std::printf("  model %-24s %u PIs, %u POs (%s)\n", name.c_str(),
                entry.num_pis, entry.num_pos, entry.path.c_str());
  for (const auto& f : registry->failures())
    std::printf("  FAILED   %s: %s\n", f.path.c_str(), f.error.c_str());

  serve::Evaluator::Options eopt;
  eopt.quantum_ps = args.quantize;
  eopt.cache_capacity = args.cache;
  eopt.sta.cppr = args.cppr;
  serve::Evaluator evaluator(manager, eopt);

  serve::ServerOptions sopt;
  if (!args.socket.empty())
    sopt.unix_path = args.socket;
  else if (args.port >= 0)
    sopt.tcp_port = args.port;
  else
    sopt.unix_path = dir + "/tmm.sock";  // default endpoint
  sopt.num_threads = static_cast<int>(args.threads);
  sopt.batch_max = static_cast<int>(args.batch);
  sopt.slow_threshold_us =
      static_cast<std::uint64_t>(args.slow_ms * 1000.0);
  sopt.slow_sample = static_cast<std::uint32_t>(args.slow_sample);
  sopt.flight_capacity = args.flight_records;
  sopt.dump_dir = args.dump_dir.empty() ? dir : args.dump_dir;
  sopt.max_inflight = args.max_inflight;
  serve::Server server(evaluator, sopt);
  server.start();

  g_server = &server;
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  std::signal(SIGHUP, handle_reload_signal);

  if (!sopt.unix_path.empty())
    std::printf("serving %zu model(s) on unix:%s (%zu threads, batch %zu, "
                "cache %zu)\n",
                loaded, sopt.unix_path.c_str(), args.threads, args.batch,
                args.cache);
  else
    std::printf("serving %zu model(s) on 127.0.0.1:%d (%zu threads, batch "
                "%zu, cache %zu)\n",
                loaded, server.bound_port(), args.threads, args.batch,
                args.cache);
  std::fflush(stdout);

  server.serve();
  g_server = nullptr;
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);

  const serve::Server::Stats st = server.stats();
  const serve::CacheStats cs = evaluator.cache_stats();
  const serve::RegistryManager::Counters rc = manager.counters();
  std::printf("drained: %llu connection(s), %llu request(s) (%llu ok, %llu "
              "error, %llu overloaded), %llu batch(es), %llu abort(s); cache "
              "%llu hit / %llu miss / %llu evicted (%.1f%% hit rate); "
              "generation %llu (%llu reload(s) ok, %llu failed)\n",
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.responses_ok),
              static_cast<unsigned long long>(st.request_errors),
              static_cast<unsigned long long>(st.shed_overload),
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.conn_aborts),
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions),
              cs.hit_rate() * 100.0,
              static_cast<unsigned long long>(rc.generation),
              static_cast<unsigned long long>(rc.reloads_ok),
              static_cast<unsigned long long>(rc.reload_failures));
  // Some models failed to load but the survivors served: degraded (3),
  // matching flow/train semantics.
  return registry->failures().empty() ? 0 : 3;
}

/// Connect to a server endpoint: an all-digits endpoint is a TCP port
/// on 127.0.0.1, anything else a unix socket path.
int connect_endpoint(const std::string& ep) {
  int fd = -1;
  const bool is_port =
      !ep.empty() && std::all_of(ep.begin(), ep.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
  if (!is_port) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("socket path too long: " + ep);
    std::strncpy(addr.sun_path, ep.c_str(), sizeof(addr.sun_path) - 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
  } else {
    int port = 0;
    try {
      port = std::stoi(ep);
    } catch (const std::exception&) {
      throw UsageError("stat: endpoint must be a socket path or port, got '" +
                       ep + "'");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
  }
  if (fd >= 0) ::close(fd);
  throw std::runtime_error("cannot connect to " + ep);
}

int cmd_stat(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error(
        "stat: server endpoint required (socket path or port)");
  if (static_cast<int>(args.health) + static_cast<int>(args.flight) +
          static_cast<int>(args.reload) >
      1)
    throw UsageError(
        "stat: --health, --flight and --reload are mutually exclusive");
  if (args.reload && args.watch)
    throw UsageError("stat: --reload cannot be combined with --watch");
  const serve::RequestKind kind = args.health ? serve::RequestKind::kHealth
                                 : args.flight ? serve::RequestKind::kFlightDump
                                 : args.reload ? serve::RequestKind::kReload
                                               : serve::RequestKind::kStats;
  std::string frame;
  std::uint64_t id = 1;
  int fd = -1;
  // --watch survives server restarts and generation swaps: on any
  // socket error the connection is re-established with doubling
  // backoff (0.1 s .. 5 s cap) instead of exiting on the first EOF.
  // A misspelled endpoint (UsageError) still fails immediately.
  double backoff_s = 0.1;
  int consecutive_failures = 0;
  constexpr int kMaxConsecutiveFailures = 60;
  for (;;) {
    try {
      if (fd < 0) fd = connect_endpoint(args.positional[0]);
      serve::Request req;
      req.request_id = id++;
      req.kind = kind;
      serve::write_frame(fd, serve::encode_request(req));
      if (!serve::read_frame(fd, frame))
        throw std::runtime_error("server closed the connection");
      const serve::Response resp = serve::decode_response(frame);
      if (resp.status != serve::ResponseStatus::kOk)
        throw std::runtime_error(
            std::string("server answered ") +
            serve::response_status_name(resp.status) +
            (resp.error.empty() ? "" : ": " + resp.error));
      std::fputs(resp.text.c_str(), stdout);
      std::fflush(stdout);
      backoff_s = 0.1;
      consecutive_failures = 0;
      if (!args.watch) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(args.interval, 0.1)));
    } catch (const UsageError&) {
      if (fd >= 0) ::close(fd);
      throw;
    } catch (const std::exception& e) {
      if (fd >= 0) ::close(fd);
      fd = -1;
      if (!args.watch || ++consecutive_failures > kMaxConsecutiveFailures)
        throw;
      std::fprintf(stderr, "tmm stat: %s; reconnecting in %.1fs\n", e.what(),
                   backoff_s);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2.0, 5.0);
    }
  }
  if (fd >= 0) ::close(fd);
  return 0;
}

int cmd_export_lib(const Args& args) {
  if (args.positional.empty())
    throw std::runtime_error("export-lib: output path required");
  std::ofstream os(args.positional[0]);
  LibertyWriteOptions opt;
  opt.el = args.early ? kEarly : kLate;
  const std::size_t bytes = write_liberty(default_library(), os, opt);
  std::printf("wrote %s (%s corner, %zu bytes, %zu cells)\n",
              args.positional[0].c_str(), args.early ? "early" : "late",
              bytes, default_library().num_cells());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: tmm [--trace out.json] [--metrics out.json] "
               "[--resume dir] "
               "<gen-design|import|stats|sta|train|generate|evaluate|flow|"
               "pack|serve|stat|export-lib|lint|fault-sites> "
               "[args...]  (see tools/tmm_cli.cpp header)\n");
  return 64;
}

struct Command {
  std::string_view name;
  int (*run)(const Args&);
  std::vector<std::string_view> allowed;
};

const Command kCommands[] = {
    {"gen-design", cmd_gen_design, {"--pins", "--seed", "--name"}},
    {"import", cmd_import,
     {"--out", "--lib", "--top", "--clock", "--name"}},
    {"stats", cmd_stats, {}},
    {"sta", cmd_sta, {"--no-cppr", "--period", "--threads"}},
    {"train", cmd_train, {"--no-cppr", "--regression", "--threads"}},
    {"generate", cmd_generate, {"--no-cppr", "--regression", "--threads"}},
    {"evaluate", cmd_evaluate, {"--no-cppr", "--sets", "--threads"}},
    {"flow", cmd_flow,
     {"--no-cppr", "--regression", "--threads", "--lib", "--top",
      "--clock"}},
    {"pack", cmd_pack, {"--out"}},
    {"serve", cmd_serve,
     {"--socket", "--port", "--threads", "--batch", "--cache", "--quantize",
      "--no-cppr", "--slow-ms", "--slow-sample", "--flight-records",
      "--dump-dir", "--max-inflight"}},
    {"stat", cmd_stat,
     {"--health", "--flight", "--reload", "--watch", "--interval"}},
    {"export-lib", cmd_export_lib, {"--early"}},
    {"lint", cmd_lint, {"--concurrency", "--lib", "--top", "--clock"}},
    {"fault-sites", cmd_fault_sites, {}},
};

/// Flush the requested observability outputs; never throws (a failed
/// dump must not change the subcommand's exit code).
void write_observability(const GlobalOpts& g) {
  if (!g.trace_path.empty() && !obs::write_chrome_trace_file(g.trace_path))
    std::fprintf(stderr, "tmm: cannot write trace to %s\n",
                 g.trace_path.c_str());
  if (!g.metrics_path.empty() &&
      !obs::write_metrics_json_file(g.metrics_path))
    std::fprintf(stderr, "tmm: cannot write metrics to %s\n",
                 g.metrics_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  GlobalOpts global;
  int first = 1;
  std::string cmd;
  try {
    // Arm the deterministic fault-injection harness before anything
    // else runs (docs/ROBUSTNESS.md); a malformed TMM_FAULT spec is a
    // configuration error (exit 2), never a silent no-op.
    if (const fault::Status s = fault::arm_from_env(); !s.ok())
      throw UsageError(s.message());
    // Same policy for TMM_THREADS: a malformed thread-count spec is a
    // configuration error up front, not a mid-run warning.
    {
      std::string terr;
      util::TaskPool::env_threads(&terr);
      if (!terr.empty()) throw UsageError(terr);
    }
    // Global options may precede the subcommand.
    while (first < argc && std::strncmp(argv[first], "--", 2) == 0) {
      const std::string a = argv[first];
      if (a == "--trace" || a == "--metrics" || a == "--resume") {
        if (first + 1 >= argc) throw UsageError("missing value for " + a);
        (a == "--trace"     ? global.trace_path
         : a == "--metrics" ? global.metrics_path
                            : global.resume_dir) = argv[first + 1];
        first += 2;
      } else {
        throw UsageError("unknown global option " + a);
      }
    }
    if (first >= argc) return usage();
    cmd = argv[first];
    const Command* command = nullptr;
    for (const Command& c : kCommands)
      if (c.name == cmd) command = &c;
    if (command == nullptr) return usage();

    const Args args =
        parse(argc, argv, first + 1, cmd, command->allowed, global);
    if (!global.trace_path.empty()) obs::set_tracing_enabled(true);
    log_info("tmm %s: starting (trace=%s, metrics=%s)", cmd.c_str(),
             global.trace_path.empty() ? "off" : global.trace_path.c_str(),
             global.metrics_path.empty() ? "off"
                                         : global.metrics_path.c_str());
    int rc = 0;
    std::exception_ptr err;
    {
      // Scope the top-level span so it is recorded (and therefore
      // exported) even when the subcommand throws.
      const std::string span_name = "tmm." + cmd;
      obs::Span span(span_name.c_str());
      obs::trace_rss_sample();
      try {
        rc = command->run(args);
      } catch (...) {
        err = std::current_exception();
      }
      obs::trace_rss_sample();
    }
    write_observability(global);
    if (err) std::rethrow_exception(err);
    return rc;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "tmm%s%s: %s\n", cmd.empty() ? "" : " ",
                 cmd.c_str(), e.what());
    return 2;
  } catch (const fault::FlowError& e) {
    std::fprintf(stderr, "tmm %s: %s\n", cmd.c_str(), e.what());
    // A config-class flow error (checkpoint fingerprint mismatch, bad
    // flow configuration) is the caller's mistake: exit 2, like usage
    // errors, so scripts can tell it from a runtime failure.
    return e.code() == fault::ErrorCode::kConfig ? 2 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tmm %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
