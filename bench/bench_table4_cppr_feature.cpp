// Reproduces Table 4: the effect of the CPPR-dedicated feature
// (is_CPPR). Two frameworks are trained — one on the 8 basic features
// ("Before"), one with the dedicated 9th feature ("After") — and both
// are compared against the iTimerM-like baseline on the TAU suites with
// CPPR, exactly the Difference/Ratio presentation of the paper.
//
// Expected shape: both variants match iTimerM's accuracy; the dedicated
// feature nudges the size ratio further in our favor.

#include <cstdio>

#include "bench_common.hpp"

using namespace tmm;
using namespace tmm::bench;

namespace {

struct Agg {
  std::vector<double> size_base, size_ours, gen_base, gen_ours;
  double err_diff = 0.0;
  double avg_diff = 0.0;
  std::size_t rows = 0;

  void add(const DesignResult& ours, const DesignResult& itm) {
    size_base.push_back(static_cast<double>(itm.model_file_bytes));
    size_ours.push_back(static_cast<double>(ours.model_file_bytes));
    gen_base.push_back(itm.gen.generation_seconds);
    gen_ours.push_back(ours.gen.generation_seconds);
    err_diff = std::max(err_diff, itm.acc.max_err_ps - ours.acc.max_err_ps);
    avg_diff += itm.acc.avg_err_ps - ours.acc.avg_err_ps;
    ++rows;
  }
};

}  // namespace

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 100);
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== Table 4: with vs without the CPPR-dedicated feature "
              "(CPPR mode, designs at 1/%zu TAU scale) ==\n",
              scale);

  Framework before([] {
    FlowConfig c;
    c.cppr = true;
    c.cppr_feature = false;
    return c;
  }());
  Framework after([] {
    FlowConfig c;
    c.cppr = true;
    c.cppr_feature = true;
    return c;
  }());
  JsonReport report("table4_cppr_feature");
  report.set_meta("scale", static_cast<double>(scale));
  report.set_meta("train_scale", static_cast<double>(train_scale));
  std::printf("-- training 'Before' (8 basic features)\n");
  report.add_training("before_basic_features",
                      train_framework(before, train_scale));
  std::printf("-- training 'After' (+ is_CPPR)\n");
  report.add_training("after_is_cppr", train_framework(after, train_scale));

  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);

  Agg agg16_before, agg16_after, agg17_before, agg17_after;
  for (std::size_t i = 0; i < 10; ++i) {
    const Design d = make_design(suite[i]);
    const bool tau16 = suite[i].name.find("_eval") != std::string::npos;
    std::fprintf(stderr, "# %s (%zu pins)\n", suite[i].name.c_str(),
                 d.num_pins());
    const DesignResult itm = after.run_itimerm(d);
    const DesignResult rb = before.run_design(d);
    const DesignResult ra = after.run_design(d);
    report.add_result(suite[i].name, "itimerm", itm);
    report.add_result(suite[i].name, "before_basic_features", rb);
    report.add_result(suite[i].name, "after_is_cppr", ra);
    (tau16 ? agg16_before : agg17_before).add(rb, itm);
    (tau16 ? agg16_after : agg17_after).add(ra, itm);
  }

  AsciiTable table({"Benchmark", "Variant", "Avg Err Diff (ps)",
                    "Max Err Diff (ps)", "Size Ratio", "Gen Ratio"});
  auto row = [&](const char* bench, const char* variant, const Agg& a) {
    table.add_row({bench, variant,
                   AsciiTable::num(a.avg_diff / std::max<std::size_t>(1, a.rows), 4),
                   AsciiTable::num(a.err_diff, 4),
                   AsciiTable::num(mean_ratio(a.size_base, a.size_ours), 3),
                   AsciiTable::num(mean_ratio(a.gen_base, a.gen_ours), 3)});
  };
  row("TAU2016", "Before (basic features)", agg16_before);
  row("TAU2016", "After  (+ is_CPPR)", agg16_after);
  table.add_separator();
  row("TAU2017", "Before (basic features)", agg17_before);
  row("TAU2017", "After  (+ is_CPPR)", agg17_after);
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper shape: error differences ~0 in both variants; the "
              "size ratio improves from ~1.06 to ~1.10-1.12 once the "
              "dedicated feature is added.\n");
  auto summarize = [&](const char* prefix, const Agg& a) {
    const double rows_d = static_cast<double>(std::max<std::size_t>(1, a.rows));
    report.set_summary(std::string(prefix) + "_avg_err_diff_ps",
                       a.avg_diff / rows_d);
    report.set_summary(std::string(prefix) + "_max_err_diff_ps", a.err_diff);
    report.set_summary(std::string(prefix) + "_size_ratio",
                       mean_ratio(a.size_base, a.size_ours));
    report.set_summary(std::string(prefix) + "_gen_ratio",
                       mean_ratio(a.gen_base, a.gen_ours));
  };
  summarize("tau16_before", agg16_before);
  summarize("tau16_after", agg16_after);
  summarize("tau17_before", agg17_before);
  summarize("tau17_after", agg17_after);
  report.write();
  return 0;
}
