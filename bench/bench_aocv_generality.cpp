// Generality of the framework across timing models (Sections 3.2 & 5.3):
// the paper argues the same TS-data + GNN pipeline applies unchanged to
// advanced delay models (AOCV/POCV/CCS) because the sensitivities are
// "adaptively evaluated depending on the given timing delay model".
//
// This bench exercises that claim with the built-in AOCV mode
// (depth-based derating): the full pipeline is re-run under AOCV —
// TS data generation, training, mode-aware merging — and compared
// against (a) the NLDM pipeline on NLDM timing and (b) a *mode-ignorant*
// model (generated for NLDM, analyzed under AOCV), which shows why the
// adaptive evaluation matters.

#include <cstdio>

#include "bench_common.hpp"
#include "macro/ilm.hpp"
#include "sensitivity/training_data.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 100);
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== AOCV generality: the pipeline under an advanced timing "
              "model (designs at 1/%zu TAU scale) ==\n",
              scale);

  AocvConfig aocv;
  aocv.enabled = true;

  FlowConfig nldm_cfg;
  nldm_cfg.cppr = true;
  Framework nldm(nldm_cfg);
  FlowConfig aocv_cfg = nldm_cfg;
  aocv_cfg.aocv = aocv;
  Framework aocv_fw(aocv_cfg);

  std::printf("-- training the NLDM pipeline\n");
  train_framework(nldm, train_scale);
  std::printf("-- training the AOCV pipeline (same code path, TS "
              "re-evaluated under the AOCV model)\n");
  train_framework(aocv_fw, train_scale);

  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);

  AsciiTable table({"Design", "Pipeline / analysis mode", "Max Err (ps)",
                    "Avg Err (ps)", "Size (KB)"});
  for (std::size_t i = 0; i < 4; ++i) {
    const Design d = make_design(suite[i]);
    std::fprintf(stderr, "# %s (%zu pins)\n", suite[i].name.c_str(),
                 d.num_pins());
    const DesignResult nldm_r = nldm.run_design(d);
    const DesignResult aocv_r = aocv_fw.run_design(d);

    // Mode-ignorant: the NLDM-generated model graph evaluated under AOCV.
    const TimingGraph flat = build_timing_graph(d);
    Rng rng(0xA0C5 + i);
    std::vector<BoundaryConstraints> sets;
    for (int k = 0; k < 3; ++k)
      sets.push_back(random_constraints(d.primary_inputs().size(),
                                        d.primary_outputs().size(), {}, rng));
    Sta::Options aopt;
    aopt.cppr = true;
    aopt.aocv = aocv;
    const AccuracyReport mismatched =
        evaluate_accuracy(flat, nldm_r.model.graph, sets, aopt);

    table.add_row({suite[i].name, "NLDM pipeline, NLDM analysis",
                   fmt_err(nldm_r.acc.max_err_ps),
                   fmt_err(nldm_r.acc.avg_err_ps),
                   fmt_size_kb(nldm_r.model_file_bytes)});
    table.add_row({suite[i].name, "AOCV pipeline, AOCV analysis",
                   fmt_err(aocv_r.acc.max_err_ps),
                   fmt_err(aocv_r.acc.avg_err_ps),
                   fmt_size_kb(aocv_r.model_file_bytes)});
    table.add_row({suite[i].name, "NLDM model under AOCV (mode-ignorant)",
                   fmt_err(mismatched.max_err_ps),
                   fmt_err(mismatched.avg_err_ps),
                   fmt_size_kb(nldm_r.model_file_bytes)});
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected shape: the AOCV pipeline matches the NLDM "
              "pipeline's sub-0.1 ps accuracy regime under its own model "
              "(no per-mode algorithm engineering), while the "
              "mode-ignorant model is off by whole picoseconds — the "
              "framework's generality claim in practice.\n");
  return 0;
}
