#pragma once
// Shared harness for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper on
// scaled-down synthetic TAU-style designs (see DESIGN.md for the
// substitution rationale). Scales are overridable via environment
// variables so the suite stays CI-friendly by default:
//   TMM_TEST_SCALE   divisor applied to TAU pin counts   (default per bench)
//   TMM_TRAIN_SCALE  divisor for the training designs    (default 10)

#include <cstdlib>
#include <string>
#include <vector>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"
#include "util/table.hpp"

namespace tmm::bench {

inline std::size_t env_scale(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Train a framework on the scaled training suite and report progress.
TrainingSummary train_framework(Framework& fw, std::size_t train_scale);

/// Per-design row data shared by Tables 3-5.
struct Row {
  std::string design;
  DesignResult result;
};

/// Generate the design for a suite entry.
Design make_design(const SuiteEntry& entry);

/// Format helpers for the table columns.
std::string fmt_err(double ps);
std::string fmt_size_kb(std::size_t bytes);
std::string fmt_seconds(double s);
std::string fmt_mb(std::size_t bytes);

/// Geometric-mean ratio of baseline/ours over rows (the paper's "Ratio"
/// summary lines).
double mean_ratio(const std::vector<double>& baseline,
                  const std::vector<double>& ours);

}  // namespace tmm::bench
