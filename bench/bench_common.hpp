#pragma once
// Shared harness for the table/figure reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper on
// scaled-down synthetic TAU-style designs (see DESIGN.md for the
// substitution rationale). Scales are overridable via environment
// variables so the suite stays CI-friendly by default:
//   TMM_TEST_SCALE   divisor applied to TAU pin counts   (default per bench)
//   TMM_TRAIN_SCALE  divisor for the training designs    (default 10)

#include <cstdlib>
#include <string>
#include <vector>

#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"
#include "util/table.hpp"

namespace tmm::bench {

inline std::size_t env_scale(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::atol(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

/// Train a framework on the scaled training suite and report progress.
TrainingSummary train_framework(Framework& fw, std::size_t train_scale);

/// Per-design row data shared by Tables 3-5.
struct Row {
  std::string design;
  DesignResult result;
};

/// Generate the design for a suite entry.
Design make_design(const SuiteEntry& entry);

/// Format helpers for the table columns.
std::string fmt_err(double ps);
std::string fmt_size_kb(std::size_t bytes);
std::string fmt_seconds(double s);
std::string fmt_mb(std::size_t bytes);

/// Geometric-mean ratio of baseline/ours over rows (the paper's "Ratio"
/// summary lines).
double mean_ratio(const std::vector<double>& baseline,
                  const std::vector<double>& ours);

/// Machine-readable companion to the ASCII tables. Each bench binary
/// accumulates its per-row numbers here and calls write(), producing
/// `BENCH_<name>.json` in the working directory (overridable with
/// TMM_BENCH_JSON_DIR) so CI and plotting scripts never have to scrape
/// the human-oriented table output. Schema: docs/OBSERVABILITY.md.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Run parameters (scale, train_scale, ...).
  void set_meta(const std::string& key, double value);

  /// Training-phase record; `label` distinguishes multiple trainings in
  /// one bench (e.g. Table 4's before/after variants).
  void add_training(const std::string& label, const TrainingSummary& sum);

  /// Full DesignResult row: accuracy, size, runtime, memory and the
  /// per-stage wall-clock breakdown.
  void add_result(const std::string& design, const std::string& impl,
                  const DesignResult& r);

  /// Free-form numeric row for benches without DesignResults (Table 2).
  void add_row(const std::string& design, const std::string& impl,
               std::vector<std::pair<std::string, double>> metrics);

  /// Cross-row aggregates (the "Ratio" lines).
  void set_summary(const std::string& key, double value);

  /// Write BENCH_<name>.json; returns false (with a log line) on I/O
  /// failure so a read-only CWD does not kill the bench itself.
  bool write() const;

 private:
  struct RowRec {
    std::string design;
    std::string impl;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<StageTiming> stages;
  };
  struct TrainingRec {
    std::string label;
    TrainingSummary sum;
  };

  std::string name_;
  std::vector<std::pair<std::string, double>> meta_;
  std::vector<TrainingRec> trainings_;
  std::vector<RowRec> rows_;
  std::vector<std::pair<std::string, double>> summary_;
};

}  // namespace tmm::bench
