// Reproduces Figure 7: the shielding effect — the slew difference (SD)
// between the t_min/t_max boundary propagations decays with logic depth,
// which is what makes the insensitive-pins filtering work.

#include <cstdio>

#include "bench_common.hpp"
#include "gnn/features.hpp"
#include "macro/ilm.hpp"
#include "sensitivity/filter.hpp"
#include "util/stats.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== Figure 7: slew difference vs logic depth (shielding "
              "effect) ==\n");

  const Library lib = generate_library();
  const auto suite = training_suite(lib, train_scale);
  const Design d = generate_design(lib, suite[1].cfg);  // systemcaes
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);

  const FilterResult fr = filter_insensitive_pins(ilm.graph);
  const auto levels = levels_from_pi(ilm.graph);

  int max_level = 0;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
    if (!ilm.graph.node(n).dead && levels[n] > max_level)
      max_level = levels[n];

  std::vector<RunningStats> per_level(static_cast<std::size_t>(max_level) + 1);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead || levels[n] < 0) continue;
    if (ilm.graph.node(n).in_clock_network) continue;  // constant slews
    per_level[static_cast<std::size_t>(levels[n])].add(fr.sd[n]);
  }

  std::printf("design %s (%zu ILM pins)\n\n", d.name().c_str(),
              ilm.graph.num_live_nodes());
  std::printf("%-6s %-8s %-12s %-12s bar (mean SD)\n", "level", "#pins",
              "mean SD(ps)", "max SD(ps)");
  double peak = 1e-9;
  for (const auto& s : per_level) peak = std::max(peak, s.mean());
  for (std::size_t l = 0; l < per_level.size(); ++l) {
    const auto& s = per_level[l];
    if (s.count() == 0) continue;
    const auto bar =
        static_cast<std::size_t>(s.mean() / peak * 48.0);
    std::printf("%-6zu %-8zu %-12.4f %-12.4f %s\n", l, s.count(), s.mean(),
                s.max(), std::string(bar, '#').c_str());
  }
  std::printf("\nPaper shape: SD is largest near the primary inputs and "
              "decays monotonically (on average) over a few levels — the "
              "shielding effect.\n");
  return 0;
}
