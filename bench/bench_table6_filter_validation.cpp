// Reproduces Table 6: validation of the insensitive-pins filtering.
// The training labels of ALL pins remained by the filter are set to 1
// (i.e. the whole remained set is kept; no GNN involved), and the
// resulting models are compared against the iTimerM-like reference.
//
// Expected shape: zero avg/max error differences (the filter does not
// degrade accuracy) at a model size ratio slightly above 1 (the filter
// keep-set is a bit larger than iTimerM's).

#include <cstdio>

#include "bench_common.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 100);
  std::printf("== Table 6: insensitive-pins filtering validation (designs "
              "at 1/%zu TAU scale) ==\n",
              scale);

  JsonReport report("table6_filter_validation");
  report.set_meta("scale", static_cast<double>(scale));

  FlowConfig cfg;
  cfg.cppr = true;
  cfg.label_all_remained = true;  // keep everything the filter remained
  Framework fw(cfg);

  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);

  AsciiTable table({"Benchmark", "Avg Err Diff (ps)", "Max Err Diff (ps)",
                    "Model Size Ratio"});
  for (int group = 0; group < 2; ++group) {
    const bool tau16 = group == 0;
    std::vector<double> size_base, size_ours;
    double err_diff = 0.0;
    double avg_diff = 0.0;
    std::size_t rows = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      const bool is16 = suite[i].name.find("_eval") != std::string::npos;
      if (is16 != tau16) continue;
      const Design d = make_design(suite[i]);
      std::fprintf(stderr, "# %s (%zu pins)\n", suite[i].name.c_str(),
                   d.num_pins());
      const DesignResult ours = fw.run_design(d);
      const DesignResult itm = fw.run_itimerm(d);
      report.add_result(suite[i].name, "filter_all_remained", ours);
      report.add_result(suite[i].name, "itimerm", itm);
      size_base.push_back(static_cast<double>(itm.model_file_bytes));
      size_ours.push_back(static_cast<double>(ours.model_file_bytes));
      err_diff = std::max(err_diff, itm.acc.max_err_ps - ours.acc.max_err_ps);
      avg_diff += itm.acc.avg_err_ps - ours.acc.avg_err_ps;
      ++rows;
    }
    table.add_row({tau16 ? "TAU2016" : "TAU2017",
                   AsciiTable::num(avg_diff /
                                       static_cast<double>(
                                           std::max<std::size_t>(1, rows)),
                                   4),
                   AsciiTable::num(err_diff, 4),
                   AsciiTable::num(mean_ratio(size_base, size_ours), 3)});
    const std::string prefix = tau16 ? "tau16" : "tau17";
    report.set_summary(
        prefix + "_avg_err_diff_ps",
        avg_diff / static_cast<double>(std::max<std::size_t>(1, rows)));
    report.set_summary(prefix + "_max_err_diff_ps", err_diff);
    report.set_summary(prefix + "_size_ratio",
                       mean_ratio(size_base, size_ours));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper shape: error differences 0.0000 on both suites; "
              "size ratios 1.040 (TAU2016) and 1.009 (TAU2017) — keeping "
              "every remained pin costs a little size but no accuracy.\n");
  report.write();
  return 0;
}
