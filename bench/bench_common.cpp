#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>

// Short git SHA of the checkout, stamped at configure time by
// bench/CMakeLists.txt; "unknown" outside a git checkout.
#ifndef TMM_GIT_SHA
#define TMM_GIT_SHA "unknown"
#endif

namespace tmm::bench {

TrainingSummary train_framework(Framework& fw, std::size_t train_scale) {
  const Library& lib = generate_library();  // only for suite signatures
  const auto suite = training_suite(lib, train_scale);
  static Library persistent_lib = generate_library();
  std::vector<Design> designs;
  designs.reserve(suite.size());
  for (const auto& entry : suite)
    designs.push_back(generate_design(persistent_lib, entry.cfg));
  std::printf("# training on %zu designs (scale 1/%zu)...\n", designs.size(),
              train_scale);
  const TrainingSummary sum = fw.train(designs);
  std::printf(
      "# trained: %zu pins labeled, %zu positives, filter removed %.1f%%, "
      "%zu epochs, loss %.4f, data-gen %.1fs, train %.1fs\n",
      sum.labeled_pins, sum.positives, sum.mean_filtered_fraction * 100.0,
      sum.report.epochs_run, sum.report.final_loss,
      sum.data_generation_seconds, sum.report.seconds);
  return sum;
}

Design make_design(const SuiteEntry& entry) {
  static Library lib = generate_library();
  return generate_design(lib, entry.cfg);
}

std::string fmt_err(double ps) { return AsciiTable::num(ps, 4); }

std::string fmt_size_kb(std::size_t bytes) {
  return AsciiTable::num(static_cast<double>(bytes) / 1024.0, 1);
}

std::string fmt_seconds(double s) { return AsciiTable::num(s, 3); }

std::string fmt_mb(std::size_t bytes) {
  return AsciiTable::num(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; clamp them so the file always parses.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_kv_object(std::ofstream& os,
                     const std::vector<std::pair<std::string, double>>& kv,
                     const char* indent) {
  os << "{";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    os << (i ? "," : "") << "\n" << indent << "  \""
       << json_escape(kv[i].first) << "\": " << json_num(kv[i].second);
  }
  if (!kv.empty()) os << "\n" << indent;
  os << "}";
}

void write_stages(std::ofstream& os, const std::vector<StageTiming>& stages,
                  const char* indent) {
  std::vector<std::pair<std::string, double>> kv;
  kv.reserve(stages.size());
  for (const auto& st : stages) kv.emplace_back(st.stage, st.seconds);
  write_kv_object(os, kv, indent);
}

}  // namespace

void JsonReport::set_meta(const std::string& key, double value) {
  meta_.emplace_back(key, value);
}

void JsonReport::add_training(const std::string& label,
                              const TrainingSummary& sum) {
  trainings_.push_back({label, sum});
}

void JsonReport::add_result(const std::string& design, const std::string& impl,
                            const DesignResult& r) {
  RowRec rec;
  rec.design = design;
  rec.impl = impl;
  rec.metrics = {
      {"avg_err_ps", r.acc.avg_err_ps},
      {"max_err_ps", r.acc.max_err_ps},
      {"compared_values", static_cast<double>(r.acc.compared_values)},
      {"structural_mismatches",
       static_cast<double>(r.acc.structural_mismatches)},
      {"model_file_bytes", static_cast<double>(r.model_file_bytes)},
      {"model_memory_bytes", static_cast<double>(r.model_memory_bytes)},
      {"generation_seconds", r.gen.generation_seconds},
      {"generation_peak_rss_bytes",
       static_cast<double>(r.gen.generation_peak_rss)},
      {"usage_seconds", r.acc.usage_seconds},
      {"usage_peak_rss_bytes", static_cast<double>(r.usage_peak_rss)},
      {"inference_seconds", r.inference_seconds},
      {"ilm_pins", static_cast<double>(r.gen.ilm_pins)},
      {"pins_kept", static_cast<double>(r.gen.pins_kept)},
      {"model_pins", static_cast<double>(r.gen.model_pins)},
  };
  rec.stages = r.stage_timings;
  rows_.push_back(std::move(rec));
}

void JsonReport::add_row(
    const std::string& design, const std::string& impl,
    std::vector<std::pair<std::string, double>> metrics) {
  rows_.push_back({design, impl, std::move(metrics), {}});
}

void JsonReport::set_summary(const std::string& key, double value) {
  summary_.emplace_back(key, value);
}

bool JsonReport::write() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("TMM_BENCH_JSON_DIR"))
    if (*dir) path = std::string(dir) + "/" + path;
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "# bench: cannot write %s\n", path.c_str());
    return false;
  }
  // Reproducibility metadata: which build produced this file, when, and
  // on how many cores — so archived BENCH_*.json files stay comparable.
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr)
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  os << "{\n  \"bench\": \"" << json_escape(name_)
     << "\",\n  \"environment\": {\n    \"git_sha\": \""
     << json_escape(TMM_GIT_SHA) << "\",\n    \"utc_timestamp\": \"" << stamp
     << "\",\n    \"host_cores\": " << std::thread::hardware_concurrency()
     << "\n  },\n  \"meta\": ";
  write_kv_object(os, meta_, "  ");
  os << ",\n  \"training\": [";
  for (std::size_t i = 0; i < trainings_.size(); ++i) {
    const TrainingRec& t = trainings_[i];
    os << (i ? "," : "") << "\n    {\n      \"label\": \""
       << json_escape(t.label) << "\",\n      \"designs\": "
       << t.sum.designs << ",\n      \"labeled_pins\": " << t.sum.labeled_pins
       << ",\n      \"positives\": " << t.sum.positives
       << ",\n      \"mean_filtered_fraction\": "
       << json_num(t.sum.mean_filtered_fraction)
       << ",\n      \"data_generation_seconds\": "
       << json_num(t.sum.data_generation_seconds)
       << ",\n      \"epochs_run\": " << t.sum.report.epochs_run
       << ",\n      \"final_loss\": " << json_num(t.sum.report.final_loss)
       << ",\n      \"train_seconds\": " << json_num(t.sum.report.seconds)
       << ",\n      \"stages\": ";
    write_stages(os, t.sum.stage_timings, "      ");
    os << "\n    }";
  }
  if (!trainings_.empty()) os << "\n  ";
  os << "],\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const RowRec& r = rows_[i];
    os << (i ? "," : "") << "\n    {\n      \"design\": \""
       << json_escape(r.design) << "\",\n      \"impl\": \""
       << json_escape(r.impl) << "\",\n      \"metrics\": ";
    write_kv_object(os, r.metrics, "      ");
    os << ",\n      \"stages\": ";
    write_stages(os, r.stages, "      ");
    os << "\n    }";
  }
  if (!rows_.empty()) os << "\n  ";
  os << "],\n  \"summary\": ";
  write_kv_object(os, summary_, "  ");
  os << "\n}\n";
  os.flush();
  if (!os) {
    std::fprintf(stderr, "# bench: error writing %s\n", path.c_str());
    return false;
  }
  std::printf("# wrote %s\n", path.c_str());
  return true;
}

double mean_ratio(const std::vector<double>& baseline,
                  const std::vector<double>& ours) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < std::min(baseline.size(), ours.size()); ++i) {
    if (ours[i] <= 0.0 || baseline[i] <= 0.0) continue;
    log_sum += std::log(baseline[i] / ours[i]);
    ++n;
  }
  return n == 0 ? 1.0 : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace tmm::bench
