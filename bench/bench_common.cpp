#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

namespace tmm::bench {

TrainingSummary train_framework(Framework& fw, std::size_t train_scale) {
  const Library& lib = generate_library();  // only for suite signatures
  const auto suite = training_suite(lib, train_scale);
  static Library persistent_lib = generate_library();
  std::vector<Design> designs;
  designs.reserve(suite.size());
  for (const auto& entry : suite)
    designs.push_back(generate_design(persistent_lib, entry.cfg));
  std::printf("# training on %zu designs (scale 1/%zu)...\n", designs.size(),
              train_scale);
  const TrainingSummary sum = fw.train(designs);
  std::printf(
      "# trained: %zu pins labeled, %zu positives, filter removed %.1f%%, "
      "%zu epochs, loss %.4f, data-gen %.1fs, train %.1fs\n",
      sum.labeled_pins, sum.positives, sum.mean_filtered_fraction * 100.0,
      sum.report.epochs_run, sum.report.final_loss,
      sum.data_generation_seconds, sum.report.seconds);
  return sum;
}

Design make_design(const SuiteEntry& entry) {
  static Library lib = generate_library();
  return generate_design(lib, entry.cfg);
}

std::string fmt_err(double ps) { return AsciiTable::num(ps, 4); }

std::string fmt_size_kb(std::size_t bytes) {
  return AsciiTable::num(static_cast<double>(bytes) / 1024.0, 1);
}

std::string fmt_seconds(double s) { return AsciiTable::num(s, 3); }

std::string fmt_mb(std::size_t bytes) {
  return AsciiTable::num(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

double mean_ratio(const std::vector<double>& baseline,
                  const std::vector<double>& ours) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < std::min(baseline.size(), ours.size()); ++i) {
    if (ours[i] <= 0.0 || baseline[i] <= 0.0) continue;
    log_sum += std::log(baseline[i] / ours[i]);
    ++n;
  }
  return n == 0 ? 1.0 : std::exp(log_sum / static_cast<double>(n));
}

}  // namespace tmm::bench
