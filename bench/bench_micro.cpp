// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate pieces: LUT lookup, full STA propagation (serial and
// level-parallel), the slew-only filter propagation, GraphSAGE
// inference, feature extraction, ILM extraction, merging and the
// incremental TS evaluation loop.
//
// Besides the google-benchmark entries, main() directly times the TS
// loop full vs incremental (`speedup_incremental`) and serial vs
// parallel full STA on a large synthetic design (`speedup_parallel`,
// with a bitwise serial/parallel comparison on the way) into the one
// BENCH_micro.json (CI asserts both stay >= 1 and zero mismatches).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "flow/framework.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design_gen.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sliding_window.hpp"
#include "obs/trace.hpp"
#include "sensitivity/ts_eval.hpp"
#include "util/instrument.hpp"

namespace {

using namespace tmm;

const Library& lib() {
  static const Library l = generate_library();
  return l;
}

const Design& design() {
  static const Design d = [] {
    DesignGenConfig cfg;
    cfg.name = "bench";
    cfg.seed = 77;
    cfg.num_data_inputs = 32;
    cfg.num_outputs = 32;
    cfg.num_flops = 120;
    cfg.levels = 8;
    cfg.gates_per_level = 120;
    return generate_design(lib(), cfg);
  }();
  return d;
}

const TimingGraph& flat_graph() {
  static const TimingGraph g = build_timing_graph(design());
  return g;
}

void BM_LutLookup(benchmark::State& state) {
  const Cell& cell = lib().cell(lib().cell_id("NAND2_X1"));
  const Lut& lut = cell.arcs[0].delay(kLate, kRise);
  double s = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.lookup(s, 4.0));
    s = s < 100 ? s + 0.37 : 1.0;
  }
}
BENCHMARK(BM_LutLookup);

void BM_BuildTimingGraph(benchmark::State& state) {
  for (auto _ : state) {
    TimingGraph g = build_timing_graph(design());
    benchmark::DoNotOptimize(g.num_nodes());
  }
}
BENCHMARK(BM_BuildTimingGraph)->Unit(benchmark::kMillisecond);

void BM_StaFullRun(benchmark::State& state) {
  const TimingGraph& g = flat_graph();
  Sta sta(g, {.cppr = state.range(0) != 0});
  const BoundaryConstraints bc = nominal_constraints(
      g.primary_inputs().size(), g.primary_outputs().size());
  for (auto _ : state) {
    sta.run(bc);
    benchmark::DoNotOptimize(sta.worst_slack(kLate));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_StaFullRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Levelized parallel full run at 1/2/4/8 threads on the bench design
// (parallel_min_nodes forced to 0 so even the Arg(1) row goes through
// the same dispatch). Results are bit-identical to BM_StaFullRun's.
void BM_StaParallelForward(benchmark::State& state) {
  const TimingGraph& g = flat_graph();
  Sta::Options opt;
  opt.cppr = true;
  opt.threads = static_cast<std::size_t>(state.range(0));
  opt.parallel_min_nodes = 0;
  Sta sta(g, opt);
  const BoundaryConstraints bc = nominal_constraints(
      g.primary_inputs().size(), g.primary_outputs().size());
  for (auto _ : state) {
    sta.run(bc);
    benchmark::DoNotOptimize(sta.worst_slack(kLate));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_StaParallelForward)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Observability overhead. Sta::run carries an obs::Span and two metric
// counters; BM_StaFullRun above therefore measures the
// instrumented-but-disabled path. The entries below isolate the obs
// primitives themselves: a disabled span must cost one predicted branch
// (compare BM_StaFullRun before/after instrumentation stays within
// noise, i.e. <1%), and an enabled span stays cheap enough for
// per-epoch / per-stage granularity.
void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::set_tracing_enabled(false);
  for (auto _ : state) {
    obs::Span span("bench.span");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::set_tracing_enabled(true);
  std::size_t since_reset = 0;
  for (auto _ : state) {
    {
      obs::Span span("bench.span");
      benchmark::DoNotOptimize(&span);
    }
    // Bound buffer growth; amortized over 64Ki spans the reset cost is
    // negligible next to the two clock reads per span.
    if (++since_reset == (1u << 16)) {
      since_reset = 0;
      obs::reset_trace();
    }
  }
  obs::set_tracing_enabled(false);
  obs::reset_trace();
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsCounter(benchmark::State& state) {
  static obs::Counter& c = obs::counter("bench.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_ObsCounter);

// Flight-recorder hot path (docs/OBSERVABILITY.md): disabled it is one
// relaxed load + branch (the permanently-instrumented serve contract);
// enabled, one seqlock-protected ring-slot write. The serving budget is
// < 100 ns/request enabled.
void BM_FlightRecordDisabled(benchmark::State& state) {
  obs::set_flight_recorder_enabled(false);
  obs::FlightRecord rec;
  rec.set_model("bench");
  rec.set_status("ok");
  for (auto _ : state) {
    obs::flight_record(rec);
    benchmark::DoNotOptimize(&rec);
  }
}
BENCHMARK(BM_FlightRecordDisabled);

void BM_FlightRecordEnabled(benchmark::State& state) {
  obs::set_flight_recorder_enabled(true, /*per_thread_capacity=*/256);
  obs::FlightRecord rec;
  rec.set_model("bench");
  rec.set_status("ok");
  rec.total_us = 12.5F;
  for (auto _ : state) {
    obs::flight_record(rec);
    benchmark::DoNotOptimize(&rec);
  }
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
}
BENCHMARK(BM_FlightRecordEnabled);

// One windowed observation: slot claim (usually an acquire load that
// matches) + bucket/count/sum relaxed adds — the per-request cost of
// ServeStats on top of the flight record.
void BM_WindowedHistogramObserve(benchmark::State& state) {
  static const std::vector<double> bounds = obs::log_spaced_bounds(1.0, 1e7, 5);
  obs::WindowedHistogram h(bounds);
  std::uint64_t now_us = 0;
  for (auto _ : state) {
    h.observe(now_us, 42.0);
    now_us += 7;  // ~140k observations per simulated second
    benchmark::DoNotOptimize(&h);
  }
}
BENCHMARK(BM_WindowedHistogramObserve);

void BM_StaFullRunTraced(benchmark::State& state) {
  const TimingGraph& g = flat_graph();
  Sta sta(g, {.cppr = false});
  const BoundaryConstraints bc = nominal_constraints(
      g.primary_inputs().size(), g.primary_outputs().size());
  obs::set_tracing_enabled(true);
  std::size_t since_reset = 0;
  for (auto _ : state) {
    sta.run(bc);
    benchmark::DoNotOptimize(sta.worst_slack(kLate));
    if (++since_reset == 4096) {
      since_reset = 0;
      obs::reset_trace();
    }
  }
  obs::set_tracing_enabled(false);
  obs::reset_trace();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes()));
}
BENCHMARK(BM_StaFullRunTraced)->Unit(benchmark::kMillisecond);

void BM_SlewOnlyPropagation(benchmark::State& state) {
  const TimingGraph& g = flat_graph();
  for (auto _ : state)
    benchmark::DoNotOptimize(propagate_slew_only(g, 10.0));
}
BENCHMARK(BM_SlewOnlyPropagation)->Unit(benchmark::kMillisecond);

void BM_IlmExtraction(benchmark::State& state) {
  const TimingGraph& g = flat_graph();
  for (auto _ : state) {
    IlmResult ilm = extract_ilm(g);
    benchmark::DoNotOptimize(ilm.graph.num_live_nodes());
  }
}
BENCHMARK(BM_IlmExtraction)->Unit(benchmark::kMillisecond);

void BM_InsensitiveFilter(benchmark::State& state) {
  static const IlmResult ilm = extract_ilm(flat_graph());
  for (auto _ : state) {
    FilterResult fr = filter_insensitive_pins(ilm.graph);
    benchmark::DoNotOptimize(fr.num_remained);
  }
}
BENCHMARK(BM_InsensitiveFilter)->Unit(benchmark::kMillisecond);

void BM_MergeInsensitivePins(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    IlmResult ilm = extract_ilm(flat_graph());
    std::vector<bool> keep(ilm.graph.num_nodes(), false);
    state.ResumeTiming();
    MergeStats stats = merge_insensitive_pins(ilm.graph, keep);
    benchmark::DoNotOptimize(stats.pins_removed);
  }
}
BENCHMARK(BM_MergeInsensitivePins)->Unit(benchmark::kMillisecond);

void BM_FeatureExtraction(benchmark::State& state) {
  static const IlmResult ilm = extract_ilm(flat_graph());
  for (auto _ : state) {
    Matrix x = extract_features(ilm.graph, true);
    benchmark::DoNotOptimize(x.size());
  }
}
BENCHMARK(BM_FeatureExtraction)->Unit(benchmark::kMillisecond);

void BM_GnnInference(benchmark::State& state) {
  static const IlmResult ilm = extract_ilm(flat_graph());
  static const GnnGraph g = GnnGraph::from_timing_graph(ilm.graph);
  static const Matrix x = extract_features(ilm.graph, true);
  GnnModelConfig cfg;
  cfg.input_dim = kNumFeaturesWithCppr;
  GnnModel model(cfg);
  for (auto _ : state) {
    auto probs = model.predict(g, x);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_nodes));
}
BENCHMARK(BM_GnnInference)->Unit(benchmark::kMillisecond);

void BM_GnnTrainEpoch(benchmark::State& state) {
  static const IlmResult ilm = extract_ilm(flat_graph());
  GraphSample sample;
  sample.graph = GnnGraph::from_timing_graph(ilm.graph);
  sample.features = extract_features(ilm.graph, true);
  sample.labels.assign(ilm.graph.num_nodes(), 0.0f);
  for (std::size_t i = 0; i < sample.labels.size(); i += 7)
    sample.labels[i] = 1.0f;
  sample.mask.assign(ilm.graph.num_nodes(), 1);
  GnnModelConfig cfg;
  cfg.input_dim = kNumFeaturesWithCppr;
  GnnModel model(cfg);
  const std::vector<GraphSample> samples{std::move(sample)};
  TrainConfig tc;
  tc.epochs = 1;
  tc.patience = 0;
  for (auto _ : state) {
    TrainReport rep = train_model(model, samples, tc);
    benchmark::DoNotOptimize(rep.final_loss);
  }
}
BENCHMARK(BM_GnnTrainEpoch)->Unit(benchmark::kMillisecond);

void BM_TsEvalFullVsIncremental(benchmark::State& state) {
  static const IlmResult ilm = extract_ilm(flat_graph());
  const std::vector<bool> cands(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.threads = 1;
  cfg.incremental = state.range(0) != 0;
  for (auto _ : state) {
    TsResult r = evaluate_timing_sensitivity(ilm.graph, cands, cfg);
    benchmark::DoNotOptimize(r.ts.data());
  }
}
BENCHMARK(BM_TsEvalFullVsIncremental)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);  // a single TS sweep is seconds on the full path

// TS labeling loop across worker counts (parallelism is across
// candidate pins; each worker's scratch engine stays serial).
void BM_TsEvalParallel(benchmark::State& state) {
  static const IlmResult ilm = extract_ilm(flat_graph());
  const std::vector<bool> cands(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.incremental = true;
  for (auto _ : state) {
    TsResult r = evaluate_timing_sensitivity(ilm.graph, cands, cfg);
    benchmark::DoNotOptimize(r.ts.data());
  }
}
BENCHMARK(BM_TsEvalParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Direct full-vs-incremental comparison on the bench design, recorded
// in BENCH_micro.json: CI smoke-checks `speedup_incremental`, and the
// loop double-checks the bit-identity contract on the way.
void record_ts_speedup(bench::JsonReport& json) {
  const IlmResult ilm = extract_ilm(flat_graph());
  const std::vector<bool> cands(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.threads = 1;

  Stopwatch sw;
  cfg.incremental = false;
  const TsResult full = evaluate_timing_sensitivity(ilm.graph, cands, cfg);
  const double full_s = sw.seconds();

  sw = Stopwatch();
  cfg.incremental = true;
  const TsResult inc = evaluate_timing_sensitivity(ilm.graph, cands, cfg);
  const double inc_s = sw.seconds();

  std::size_t mismatches = 0;
  for (std::size_t n = 0; n < full.ts.size(); ++n)
    if (std::memcmp(&full.ts[n], &inc.ts[n], sizeof(double)) != 0)
      ++mismatches;

  const double speedup = inc_s > 0.0 ? full_s / inc_s : 0.0;
  std::printf(
      "\nTS eval on %zu pins: full %.3fs, incremental %.3fs -> "
      "speedup_incremental %.2fx (%zu TS mismatches)\n",
      full.evaluated_pins, full_s, inc_s, speedup, mismatches);

  json.set_meta("ts_pins", static_cast<double>(full.evaluated_pins));
  json.add_row("bench", "full",
               {{"ts_eval_seconds", full_s},
                {"pins", static_cast<double>(full.evaluated_pins)}});
  json.add_row("bench", "incremental",
               {{"ts_eval_seconds", inc_s},
                {"pins", static_cast<double>(inc.evaluated_pins)}});
  json.set_summary("speedup_incremental", speedup);
  json.set_summary("ts_bitwise_mismatches", static_cast<double>(mismatches));
}

// Serial vs level-parallel full STA on a design an order of magnitude
// larger than the google-benchmark one (scale with
// TMM_BENCH_PARALLEL_GATES). Every parallel run is compared against
// the serial engine bit-for-bit over all live nodes before its time is
// trusted; CI smoke-checks `speedup_parallel` (the 4-thread row) and
// `parallel_bitwise_mismatches`.
void record_parallel_speedup(bench::JsonReport& json) {
  DesignGenConfig dcfg;
  dcfg.name = "bench_parallel";
  dcfg.seed = 78;
  dcfg.num_data_inputs = 64;
  dcfg.num_outputs = 64;
  dcfg.num_flops = 256;
  dcfg.levels = 12;
  dcfg.gates_per_level = bench::env_scale("TMM_BENCH_PARALLEL_GATES", 700);
  const Design d = generate_design(lib(), dcfg);
  const TimingGraph g = build_timing_graph(d);
  const BoundaryConstraints bc = nominal_constraints(
      g.primary_inputs().size(), g.primary_outputs().size());

  // Best-of-3 wall time per configuration: full runs are long enough
  // for the min to be stable, and the min discards one-off scheduler /
  // page-fault noise that a mean would fold in.
  const auto best_of = [&](Sta& sta) {
    double best = kInf;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      sta.run(bc);
      best = std::min(best, sw.seconds());
    }
    return best;
  };

  Sta serial(g, {.cppr = true});
  const double serial_s = best_of(serial);

  std::size_t mismatches = 0;
  double at4 = 0.0;
  json.set_meta("parallel_nodes", static_cast<double>(g.num_nodes()));
  json.add_row("parallel", "threads=1",
               {{"sta_run_seconds", serial_s}, {"speedup", 1.0}});
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    Sta::Options opt;
    opt.cppr = true;
    opt.threads = threads;
    opt.parallel_min_nodes = 0;
    Sta par(g, opt);
    const double par_s = best_of(par);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (g.node(n).dead) continue;
      const PinTiming a = serial.timing(n);
      const PinTiming b = par.timing(n);
      if (std::memcmp(&a, &b, sizeof(PinTiming)) != 0) ++mismatches;
    }
    const double speedup = par_s > 0.0 ? serial_s / par_s : 0.0;
    if (threads == 4) at4 = speedup;
    char label[32];
    std::snprintf(label, sizeof(label), "threads=%zu", threads);
    json.add_row("parallel", label,
                 {{"sta_run_seconds", par_s}, {"speedup", speedup}});
    std::printf(
        "Parallel STA on %zu nodes: serial %.3fs, %zu threads %.3fs -> "
        "%.2fx (%zu bitwise mismatches so far)\n",
        static_cast<std::size_t>(g.num_nodes()), serial_s, threads, par_s,
        speedup, mismatches);
  }
  json.set_summary("speedup_parallel", at4);
  json.set_summary("parallel_bitwise_mismatches",
                   static_cast<double>(mismatches));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Both recorders feed one report: JsonReport::write replaces the
  // whole BENCH_micro.json, so a second instance would clobber the
  // first one's rows and summaries.
  bench::JsonReport json("micro");
  record_ts_speedup(json);
  record_parallel_speedup(json);
  json.write();
  return 0;
}
