// Reproduces Figure 10: the TS distribution of the training design
// systemcaes split by the insensitive-pins-filter verdict. Filtered
// pins should be overwhelmingly zero-TS; the remained pins carry the
// non-zero TS mass — i.e. the cheap filter is consistent with the
// expensive TS evaluation. Also prints the >88%-filtered / ~10x-speedup
// statistics quoted in Section 4.2.

#include <cstdio>

#include "bench_common.hpp"
#include "macro/ilm.hpp"
#include "sensitivity/training_data.hpp"
#include "util/stats.hpp"
#include "util/instrument.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== Figure 10: TS distributions split by filter verdict "
              "(systemcaes, 1/%zu scale) ==\n",
              train_scale);

  const Library lib = generate_library();
  const auto suite = training_suite(lib, train_scale);
  const Design d = generate_design(lib, suite[1].cfg);  // systemcaes
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);

  const FilterResult fr = filter_insensitive_pins(ilm.graph);

  // TS for *all* pins (so both histograms are exact), timing the two
  // workloads to report the speedup the filter buys.
  std::vector<bool> all(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.num_constraint_sets = 3;
  Stopwatch sw_all;
  const TsResult ts = evaluate_timing_sensitivity(ilm.graph, all, cfg);
  const double t_all = sw_all.seconds();
  Stopwatch sw_filtered;
  const TsResult ts_f =
      evaluate_timing_sensitivity(ilm.graph, fr.remained, cfg);
  const double t_filtered = sw_filtered.seconds();
  (void)ts_f;

  double max_ts = 1e-9;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
    max_ts = std::max(max_ts, ts.ts[n]);
  Histogram filtered_hist(0.0, max_ts, 12);
  Histogram remained_hist(0.0, max_ts, 12);
  std::size_t filtered_zero = 0, filtered_total = 0;
  std::size_t remained_nonzero = 0, remained_total = 0;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead) continue;
    if (fr.remained[n]) {
      remained_hist.add(ts.ts[n]);
      ++remained_total;
      if (ts.ts[n] > 1e-9) ++remained_nonzero;
    } else {
      filtered_hist.add(ts.ts[n]);
      ++filtered_total;
      if (ts.ts[n] <= 1e-9) ++filtered_zero;
    }
  }

  std::printf("filter removed %.1f%% of %zu pins\n",
              fr.filtered_fraction() * 100.0, fr.live_pins);
  std::printf("TS flow runtime: all pins %.2fs, remained only %.2fs "
              "(speedup %.1fx)\n",
              t_all, t_filtered, t_all / std::max(1e-9, t_filtered));
  std::printf("\nfiltered-out pins (%zu, %.1f%% of them zero-TS):\n%s",
              filtered_total,
              100.0 * static_cast<double>(filtered_zero) /
                  static_cast<double>(std::max<std::size_t>(1, filtered_total)),
              filtered_hist.ascii(48).c_str());
  std::printf("\nremained pins (%zu, %zu with non-zero TS):\n%s",
              remained_total, remained_nonzero,
              remained_hist.ascii(48).c_str());
  std::printf("\nPaper shape: filtered pins concentrate at TS = 0; the "
              "non-zero TS mass sits in the remained set; the filter "
              "removes >88%% of pins for a ~10x data-generation speedup "
              "(our fraction depends on the synthetic interface/core "
              "split; see EXPERIMENTS.md).\n");
  return 0;
}
