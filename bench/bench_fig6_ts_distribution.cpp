// Reproduces Figure 6: the timing-sensitivity distribution of the
// training design fft_ispd — an L-shaped histogram where the large
// majority of pins have zero TS and only a few have large TS.

#include <cstdio>

#include "bench_common.hpp"
#include "macro/ilm.hpp"
#include "sensitivity/training_data.hpp"
#include "util/stats.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== Figure 6: TS distribution of fft_ispd (1/%zu scale) ==\n",
              train_scale);

  const Library lib = generate_library();
  const auto suite = training_suite(lib, train_scale);
  const Design d = generate_design(lib, suite[0].cfg);  // fft_ispd
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);

  // Evaluate TS on every ILM pin (no filtering — this is the figure
  // about the raw distribution).
  std::vector<bool> all(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.num_constraint_sets = 3;
  const TsResult ts = evaluate_timing_sensitivity(ilm.graph, all, cfg);

  std::size_t zero = 0;
  std::size_t live = 0;
  double max_ts = 0.0;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead) continue;
    ++live;
    if (ts.ts[n] <= 1e-9)
      ++zero;
    else
      max_ts = std::max(max_ts, ts.ts[n]);
  }
  Histogram hist(0.0, std::max(max_ts, 1e-9), 20);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
    if (!ilm.graph.node(n).dead) hist.add(ts.ts[n]);

  std::printf("design %s: %zu pins, ILM %zu pins, %zu TS-evaluated\n",
              d.name().c_str(), d.num_pins(), live, ts.evaluated_pins);
  std::printf("pins with zero TS: %zu / %zu (%.1f%%)\n", zero, live,
              100.0 * static_cast<double>(zero) / static_cast<double>(live));
  std::printf("\nTS histogram (relative units):\n%s",
              hist.ascii(56).c_str());
  std::printf("\nPaper shape: ~70%% of pins at TS = 0, a long thin tail of "
              "sensitive pins.\n");
  return 0;
}
