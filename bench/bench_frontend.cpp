// Frontend import throughput: parse + elaborate + tech-map synthetic
// BLIF netlists of increasing size and report wall-clock, pins/s and
// synthesized-cell counts. Emits BENCH_frontend.json alongside the
// ASCII table (schema: docs/OBSERVABILITY.md).
//
//   TMM_TEST_SCALE   divisor applied to the node counts (default 1)

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "frontend/blif_parser.hpp"
#include "frontend/elaborate.hpp"
#include "frontend/tech_map.hpp"
#include "util/instrument.hpp"
#include "util/rng.hpp"

using namespace tmm;
using namespace tmm::bench;

namespace {

/// Layered combinational BLIF: `nodes` .names nodes over `inputs` PIs,
/// each drawing 2-4 fanins from earlier nets, plus a tail of latches so
/// the sequential path is exercised too. Deterministic per (seed).
std::string synth_blif(std::size_t inputs, std::size_t nodes,
                       std::size_t latches, std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  os << ".model bench\n.inputs clk";
  std::vector<std::string> nets;
  for (std::size_t i = 0; i < inputs; ++i) {
    os << " i" << i;
    nets.push_back("i" + std::to_string(i));
  }
  os << "\n.outputs";
  for (std::size_t n = nodes < 8 ? 0 : nodes - 8; n < nodes; ++n)
    os << " n" << n;
  for (std::size_t l = 0; l < latches; ++l) os << " q" << l;
  os << "\n";
  for (std::size_t n = 0; n < nodes; ++n) {
    const std::size_t k = 2 + rng.below(3);
    os << ".names";
    for (std::size_t j = 0; j < k; ++j)
      os << " " << nets[rng.below(nets.size())];
    const std::string out = "n" + std::to_string(n);
    os << " " << out << "\n";
    const std::size_t rows = 1 + rng.below(4);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < k; ++j) os << "01-"[rng.below(3)];
      os << " 1\n";
    }
    nets.push_back(out);
  }
  for (std::size_t l = 0; l < latches; ++l) {
    os << ".latch " << nets[nets.size() - 1 - l] << " q" << l
       << " re clk 0\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 1);
  std::printf("== Frontend import throughput (1/%zu scale) ==\n", scale);

  JsonReport report("frontend");
  report.set_meta("scale", static_cast<double>(scale));

  AsciiTable table(
      {"netlist", "prims", "gates", "pins", "parse_ms", "map_ms", "pins_per_s",
       "cells_synth"});

  const struct {
    const char* name;
    std::size_t inputs, nodes, latches;
  } kSizes[] = {
      {"blif_1k", 32, 1'000, 16},
      {"blif_10k", 64, 10'000, 64},
      {"blif_50k", 128, 50'000, 128},
  };

  double total_pins = 0.0, total_s = 0.0;
  for (const auto& size : kSizes) {
    const std::string text = synth_blif(size.inputs, size.nodes / scale,
                                        size.latches, 0xB1BEu);
    Library lib = generate_library();

    Stopwatch sw_parse;
    std::istringstream is(text);
    const frontend::IrNetlist ir = frontend::parse_blif(is, size.name);
    const frontend::FlatNetlist flat = frontend::elaborate(ir, lib);
    const double parse_s = sw_parse.seconds();

    Stopwatch sw_map;
    frontend::ImportStats stats;
    const Design d = frontend::map_netlist(flat, lib, {}, &stats);
    const double map_s = sw_map.seconds();

    const double pins = static_cast<double>(d.num_pins());
    const double pins_per_s = pins / (parse_s + map_s);
    total_pins += pins;
    total_s += parse_s + map_s;

    table.add_row(
        {size.name,
         AsciiTable::integer(static_cast<long long>(flat.prims.size())),
         AsciiTable::integer(static_cast<long long>(stats.gates)),
         AsciiTable::integer(static_cast<long long>(stats.pins)),
         AsciiTable::num(parse_s * 1e3, 2), AsciiTable::num(map_s * 1e3, 2),
         AsciiTable::integer(static_cast<long long>(pins_per_s)),
         AsciiTable::integer(static_cast<long long>(stats.cells_synthesized))});
    report.add_row(
        size.name, "frontend",
        {{"prims", static_cast<double>(flat.prims.size())},
         {"gates", static_cast<double>(stats.gates)},
         {"pins", pins},
         {"parse_s", parse_s},
         {"map_s", map_s},
         {"pins_per_s", pins_per_s},
         {"cells_synthesized", static_cast<double>(stats.cells_synthesized)}});
  }

  std::printf("%s", table.to_string().c_str());
  report.set_summary("pins_per_s", total_pins / total_s);
  report.write();
  return 0;
}
