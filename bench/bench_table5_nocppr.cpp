// Reproduces Table 5: TAU 2017 benchmark **without CPPR**, including
// mgc_matrix_mult. Ours vs iTimerM-like [5] vs the ETM-based ATM-like
// [6] baseline.
//
// Expected shape: ours == iTimerM accuracy with a slightly smaller
// model; ATM's port-to-port models are orders of magnitude smaller but
// an order of magnitude less accurate, with far larger generation
// runtimes (its characterization re-analyzes the ILM hundreds of
// times) and near-zero usage runtimes.

#include <cstdio>

#include "bench_common.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 200);
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== Table 5: TAU 2017 without CPPR (designs at 1/%zu TAU "
              "scale) ==\n",
              scale);

  JsonReport report("table5_nocppr");
  report.set_meta("scale", static_cast<double>(scale));
  report.set_meta("train_scale", static_cast<double>(train_scale));

  FlowConfig cfg;
  cfg.cppr = false;
  cfg.cppr_feature = false;
  Framework fw(cfg);
  report.add_training("gnn", train_framework(fw, train_scale));

  EtmConfig etm_cfg;
  etm_cfg.slew_samples = {2.0, 6.0, 15.0, 35.0, 70.0};
  etm_cfg.load_samples = {1.0, 5.0, 12.0};

  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);

  AsciiTable table({"Design", "Impl", "Avg Err (ps)", "Max Err (ps)",
                    "Size (KB)", "Gen (s)", "Use (s)"});
  std::vector<double> size_itm, size_ours, size_etm;
  std::vector<double> gen_itm, gen_ours, gen_etm;
  std::vector<double> use_itm, use_ours, use_etm;
  double diff1 = 0.0, diff2 = 0.0, avg2 = 0.0;
  std::size_t rows = 0;

  for (std::size_t i = 5; i < suite.size(); ++i) {  // TAU 2017 entries
    const auto& entry = suite[i];
    const Design d = make_design(entry);
    std::fprintf(stderr, "# %s: %zu pins\n", entry.name.c_str(),
                 d.num_pins());
    const DesignResult ours = fw.run_design(d);
    const DesignResult itm = fw.run_itimerm(d);
    const DesignResult etm = fw.run_etm(d, etm_cfg);
    auto add = [&](const char* impl, const DesignResult& r) {
      table.add_row({entry.name, impl, fmt_err(r.acc.avg_err_ps),
                     fmt_err(r.acc.max_err_ps),
                     fmt_size_kb(r.model_file_bytes),
                     fmt_seconds(r.gen.generation_seconds),
                     fmt_seconds(r.acc.usage_seconds)});
    };
    add("Ours", ours);
    add("iTimerM", itm);
    add("ATM", etm);
    report.add_result(entry.name, "ours", ours);
    report.add_result(entry.name, "itimerm", itm);
    report.add_result(entry.name, "etm", etm);
    table.add_separator();
    size_ours.push_back(static_cast<double>(ours.model_file_bytes));
    size_itm.push_back(static_cast<double>(itm.model_file_bytes));
    size_etm.push_back(static_cast<double>(etm.model_file_bytes));
    gen_ours.push_back(ours.gen.generation_seconds);
    gen_itm.push_back(itm.gen.generation_seconds);
    gen_etm.push_back(etm.gen.generation_seconds);
    use_ours.push_back(ours.acc.usage_seconds);
    use_itm.push_back(itm.acc.usage_seconds);
    use_etm.push_back(etm.acc.usage_seconds);
    diff1 = std::max(diff1, itm.acc.max_err_ps - ours.acc.max_err_ps);
    diff2 = std::max(diff2, etm.acc.max_err_ps - ours.acc.max_err_ps);
    avg2 += etm.acc.avg_err_ps - ours.acc.avg_err_ps;
    ++rows;
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nAverages (compared result / our result):\n");
  std::printf("  ratio1 (iTimerM/ours) size %.3f  gen %.3f  usage %.3f  "
              "max-err difference %.4f ps\n",
              mean_ratio(size_itm, size_ours), mean_ratio(gen_itm, gen_ours),
              mean_ratio(use_itm, use_ours), diff1);
  std::printf("  ratio2 (ATM/ours)     size %.3f  gen %.3f  usage %.3f  "
              "max-err difference %.4f ps  avg-err difference %.4f ps\n",
              mean_ratio(size_etm, size_ours), mean_ratio(gen_etm, gen_ours),
              mean_ratio(use_etm, use_ours), diff2,
              avg2 / static_cast<double>(std::max<std::size_t>(1, rows)));
  std::printf("\nPaper shape: ratio1 size ~1.09 with zero max-err "
              "difference; ratio2 size ~0.03 (ATM tiny), gen ~18x slower, "
              "usage ~0.03x, max-err difference ~+0.27 ps.\n");
  report.set_summary("size_ratio_itimerm", mean_ratio(size_itm, size_ours));
  report.set_summary("gen_ratio_itimerm", mean_ratio(gen_itm, gen_ours));
  report.set_summary("usage_ratio_itimerm", mean_ratio(use_itm, use_ours));
  report.set_summary("max_err_gap_itimerm_ps", diff1);
  report.set_summary("size_ratio_etm", mean_ratio(size_etm, size_ours));
  report.set_summary("gen_ratio_etm", mean_ratio(gen_etm, gen_ours));
  report.set_summary("usage_ratio_etm", mean_ratio(use_etm, use_ours));
  report.set_summary("max_err_gap_etm_ps", diff2);
  report.set_summary(
      "avg_err_gap_etm_ps",
      avg2 / static_cast<double>(std::max<std::size_t>(1, rows)));
  report.write();
  return 0;
}
