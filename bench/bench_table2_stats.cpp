// Reproduces Table 2: testing-data statistics (#pins / #cells / #nets)
// for the TAU 2016/2017 suites. The paper's absolute counts are listed
// alongside our scaled synthetic instances so the scaling is explicit.

#include <cstdio>

#include "bench_common.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 100);
  std::printf("== Table 2: testing data statistics (designs at 1/%zu TAU "
              "scale) ==\n",
              scale);

  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);

  JsonReport report("table2_stats");
  report.set_meta("scale", static_cast<double>(scale));

  AsciiTable table({"Design", "TAU #Pins", "#Pins", "#Cells", "#Nets",
                    "#PIs", "#POs", "#FFs"});
  for (const auto& entry : suite) {
    const Design d = make_design(entry);
    std::size_t ffs = 0;
    for (GateId g = 0; g < d.num_gates(); ++g)
      if (d.library().cell(d.gate(g).cell).is_sequential) ++ffs;
    table.add_row({entry.name, AsciiTable::integer(
                                   static_cast<long long>(entry.tau_pins)),
                   AsciiTable::integer(static_cast<long long>(d.num_pins())),
                   AsciiTable::integer(static_cast<long long>(d.num_gates())),
                   AsciiTable::integer(static_cast<long long>(d.num_nets())),
                   AsciiTable::integer(
                       static_cast<long long>(d.primary_inputs().size())),
                   AsciiTable::integer(
                       static_cast<long long>(d.primary_outputs().size())),
                   AsciiTable::integer(static_cast<long long>(ffs))});
    report.add_row(
        entry.name, "design",
        {{"tau_pins", static_cast<double>(entry.tau_pins)},
         {"pins", static_cast<double>(d.num_pins())},
         {"cells", static_cast<double>(d.num_gates())},
         {"nets", static_cast<double>(d.num_nets())},
         {"primary_inputs", static_cast<double>(d.primary_inputs().size())},
         {"primary_outputs", static_cast<double>(d.primary_outputs().size())},
         {"flip_flops", static_cast<double>(ffs)}});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nPaper shape: 0.45M-5.2M pins; ours are the same designs "
              "scaled 1/%zu with the same relative ordering.\n", scale);
  report.write();
  return 0;
}
