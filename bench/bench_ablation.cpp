// Ablation bench for the design choices behind the macro generator
// (not a paper table — this justifies the knobs DESIGN.md documents):
//
//   A. merge legality: single-fanin-only (slew-exact) vs unrestricted
//      cross-product merging;
//   B. LUT index selection: error-driven greedy vs fixed grids, at
//      several point budgets;
//   C. insensitive-pins filter threshold: the paper's claim that the
//      threshold "is not required to be precise".
//
// Each row reports boundary accuracy and model size on the same design
// under the label-all-remained keep-set (so the GNN is not a variable).

#include <cstdio>

#include "bench_common.hpp"
#include "macro/ilm.hpp"
#include "macro/model_io.hpp"
#include "sensitivity/training_data.hpp"

using namespace tmm;
using namespace tmm::bench;

namespace {

struct Outcome {
  double max_err = 0.0;
  double avg_err = 0.0;
  std::size_t pins = 0;
  std::size_t bytes = 0;
};

Outcome run_variant(const Design& d, const TimingGraph& flat,
                    const MergeConfig& merge, double z_threshold) {
  IlmResult ilm = extract_ilm(flat);
  FilterConfig fcfg;
  fcfg.z_threshold = z_threshold;
  const FilterResult fr = filter_insensitive_pins(ilm.graph, fcfg);
  std::vector<bool> keep(fr.remained.begin(), fr.remained.end());
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
    if (is_cppr_crucial(ilm.graph, n)) keep[n] = true;
  merge_insensitive_pins(ilm.graph, keep, merge);

  Rng rng(0xAB1A);
  std::vector<BoundaryConstraints> sets;
  for (int i = 0; i < 3; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  const AccuracyReport rep = evaluate_accuracy(flat, ilm.graph, sets, true);
  MacroModel model;
  model.design_name = d.name();
  model.graph = std::move(ilm.graph);
  return {rep.max_err_ps, rep.avg_err_ps, model.graph.num_live_nodes(),
          macro_model_size_bytes(model)};
}

}  // namespace

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 100);
  std::printf("== Ablations: merge legality, index selection, filter "
              "threshold (vga_lcd at 1/%zu TAU scale) ==\n",
              scale);
  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);
  const Design d = make_design(suite[1]);  // vga_lcd_iccad_eval
  const TimingGraph flat = build_timing_graph(d);
  std::printf("design %s: %zu pins\n", d.name().c_str(), d.num_pins());

  AsciiTable table({"Variant", "Max Err (ps)", "Avg Err (ps)", "Pins",
                    "Size (KB)"});
  auto row = [&](const std::string& name, const Outcome& o) {
    table.add_row({name, AsciiTable::num(o.max_err, 4),
                   AsciiTable::num(o.avg_err, 4),
                   AsciiTable::integer(static_cast<long long>(o.pins)),
                   fmt_size_kb(o.bytes)});
  };

  // A. merge legality.
  {
    MergeConfig base;
    row("merge: single-fanin only (default)",
        run_variant(d, flat, base, FilterConfig{}.z_threshold));
    MergeConfig cross;
    cross.single_fanin_only = false;
    cross.max_fan_product = 8;
    row("merge: cross-product allowed",
        run_variant(d, flat, cross, FilterConfig{}.z_threshold));
  }
  table.add_separator();

  // B. index selection.
  for (const std::size_t points : {4u, 5u, 7u, 9u}) {
    for (const bool greedy : {true, false}) {
      MergeConfig m;
      m.index.max_points = points;
      m.index.error_driven = greedy;
      char name[96];
      std::snprintf(name, sizeof(name), "index: %zu points, %s",
                    static_cast<std::size_t>(points),
                    greedy ? "error-driven" : "fixed grid");
      row(name, run_variant(d, flat, m, FilterConfig{}.z_threshold));
    }
  }
  table.add_separator();

  // C. filter threshold sweep.
  for (const double z : {-1.0, -0.5, -0.25, 0.0, 0.5}) {
    char name[64];
    std::snprintf(name, sizeof(name), "filter: z-threshold %+.2f", z);
    row(name, run_variant(d, flat, MergeConfig{}, z));
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nExpected: cross-product merging loses accuracy for little "
              "size benefit; error-driven selection dominates fixed grids "
              "at equal budgets; the filter threshold moves size slightly "
              "but never accuracy (the paper's 'threshold is not required "
              "to be precise').\n");
  return 0;
}
