// Reproduces Table 3: TAU 2016 + TAU 2017 benchmarks **with CPPR**.
// Ours (GNN framework) vs iTimerM-like [5] vs LibAbs-like [4]
// (the latter only on the TAU 2016 designs, as in the paper).
//
// Shapes to expect (see EXPERIMENTS.md): max error — ours == iTimerM,
// several times better than [4]; model size — ours ~10% smaller than
// iTimerM and much smaller than [4].

#include <cstdio>

#include "bench_common.hpp"
#include "util/instrument.hpp"

using namespace tmm;
using namespace tmm::bench;

int main() {
  const std::size_t scale = env_scale("TMM_TEST_SCALE", 100);
  const std::size_t train_scale = env_scale("TMM_TRAIN_SCALE", 10);
  std::printf("== Table 3: TAU 2016/2017 with CPPR (designs at 1/%zu TAU "
              "scale) ==\n",
              scale);

  JsonReport report("table3_cppr");
  report.set_meta("scale", static_cast<double>(scale));
  report.set_meta("train_scale", static_cast<double>(train_scale));

  FlowConfig cfg;
  cfg.cppr = true;
  cfg.cppr_feature = true;
  Framework fw(cfg);
  report.add_training("gnn", train_framework(fw, train_scale));

  const Library lib = generate_library();
  const auto suite = tau_testing_suite(lib, scale);

  AsciiTable table({"Design", "Impl", "Avg Err (ps)", "Max Err (ps)",
                    "Size (KB)", "Gen (s)", "Gen Mem (MB)", "Use (s)",
                    "Use Mem (MB)"});
  std::vector<double> size_ours16, size_itm16, size_lib16;
  std::vector<double> size_ours17, size_itm17;
  std::vector<double> gen_ours16, gen_itm16, gen_lib16;
  std::vector<double> gen_ours17, gen_itm17;
  std::vector<double> use_ours16, use_itm16, use_lib16;
  std::vector<double> use_ours17, use_itm17;
  double max_err_gap16 = 0.0, max_err_gap17 = 0.0, max_err_gap_lib = 0.0;

  for (std::size_t i = 0; i < 10; ++i) {  // matrix_mult is Table-5 only
    const auto& entry = suite[i];
    const bool tau16 = entry.name.find("_eval") != std::string::npos;
    const Design d = make_design(entry);
    std::fprintf(stderr, "# %s: %zu pins\n", entry.name.c_str(),
                 d.num_pins());

    const DesignResult ours = fw.run_design(d);
    const DesignResult itm = fw.run_itimerm(d);
    auto add = [&](const char* impl, const DesignResult& r) {
      table.add_row({entry.name, impl, fmt_err(r.acc.avg_err_ps),
                     fmt_err(r.acc.max_err_ps),
                     fmt_size_kb(r.model_file_bytes),
                     fmt_seconds(r.gen.generation_seconds),
                     fmt_mb(r.gen.generation_peak_rss),
                     fmt_seconds(r.acc.usage_seconds),
                     fmt_mb(r.model_memory_bytes)});
    };
    add("Ours", ours);
    add("iTimerM", itm);
    report.add_result(entry.name, "ours", ours);
    report.add_result(entry.name, "itimerm", itm);
    auto& size_ours = tau16 ? size_ours16 : size_ours17;
    auto& size_itm = tau16 ? size_itm16 : size_itm17;
    auto& gen_ours = tau16 ? gen_ours16 : gen_ours17;
    auto& gen_itm = tau16 ? gen_itm16 : gen_itm17;
    auto& use_ours = tau16 ? use_ours16 : use_ours17;
    auto& use_itm = tau16 ? use_itm16 : use_itm17;
    size_ours.push_back(static_cast<double>(ours.model_file_bytes));
    size_itm.push_back(static_cast<double>(itm.model_file_bytes));
    gen_ours.push_back(ours.gen.generation_seconds);
    gen_itm.push_back(itm.gen.generation_seconds);
    use_ours.push_back(ours.acc.usage_seconds);
    use_itm.push_back(itm.acc.usage_seconds);
    auto& gap = tau16 ? max_err_gap16 : max_err_gap17;
    gap = std::max(gap, itm.acc.max_err_ps - ours.acc.max_err_ps);

    if (tau16) {
      const DesignResult lb = fw.run_libabs(d);
      add("[4]", lb);
      report.add_result(entry.name, "libabs", lb);
      size_lib16.push_back(static_cast<double>(lb.model_file_bytes));
      gen_lib16.push_back(lb.gen.generation_seconds);
      use_lib16.push_back(lb.acc.usage_seconds);
      max_err_gap_lib = std::max(max_err_gap_lib,
                                 lb.acc.max_err_ps - ours.acc.max_err_ps);
    }
    table.add_separator();
  }

  std::printf("%s", table.to_string().c_str());

  std::printf("\nTAU 2016 averages (compared result / our result):\n");
  std::printf("  ratio1 (iTimerM/ours)  size %.3f  gen %.3f  usage %.3f  "
              "max-err difference %.4f ps\n",
              mean_ratio(size_itm16, size_ours16),
              mean_ratio(gen_itm16, gen_ours16),
              mean_ratio(use_itm16, use_ours16), max_err_gap16);
  std::printf("  ratio2 ([4]/ours)      size %.3f  gen %.3f  usage %.3f  "
              "max-err difference %.4f ps\n",
              mean_ratio(size_lib16, size_ours16),
              mean_ratio(gen_lib16, gen_ours16),
              mean_ratio(use_lib16, use_ours16), max_err_gap_lib);
  std::printf("TAU 2017 averages:\n");
  std::printf("  ratio  (iTimerM/ours)  size %.3f  gen %.3f  usage %.3f  "
              "max-err difference %.4f ps\n",
              mean_ratio(size_itm17, size_ours17),
              mean_ratio(gen_itm17, gen_ours17),
              mean_ratio(use_itm17, use_ours17), max_err_gap17);
  std::printf("\nPaper shape: ours matches iTimerM max error; size ratio ~1.1 "
              "(ours ~10%% smaller); [4] size ratio ~1.8 and ~0.2 ps worse "
              "max error.\n");
  report.set_summary("tau16_size_ratio_itimerm",
                     mean_ratio(size_itm16, size_ours16));
  report.set_summary("tau16_gen_ratio_itimerm",
                     mean_ratio(gen_itm16, gen_ours16));
  report.set_summary("tau16_usage_ratio_itimerm",
                     mean_ratio(use_itm16, use_ours16));
  report.set_summary("tau16_max_err_gap_ps", max_err_gap16);
  report.set_summary("tau16_size_ratio_libabs",
                     mean_ratio(size_lib16, size_ours16));
  report.set_summary("tau16_gen_ratio_libabs",
                     mean_ratio(gen_lib16, gen_ours16));
  report.set_summary("tau16_usage_ratio_libabs",
                     mean_ratio(use_lib16, use_ours16));
  report.set_summary("tau16_max_err_gap_libabs_ps", max_err_gap_lib);
  report.set_summary("tau17_size_ratio_itimerm",
                     mean_ratio(size_itm17, size_ours17));
  report.set_summary("tau17_gen_ratio_itimerm",
                     mean_ratio(gen_itm17, gen_ours17));
  report.set_summary("tau17_usage_ratio_itimerm",
                     mean_ratio(use_itm17, use_ours17));
  report.set_summary("tau17_max_err_gap_ps", max_err_gap17);
  report.write();
  return 0;
}
