// Serving engine (src/serve): .tmb binary format round-trip and
// corruption rejection, registry isolation, result-cache LRU semantics,
// evaluator caching/quantization, wire-protocol round-trip, concurrent
// end-to-end server tests (the TSan targets) asserting served responses
// are bit-identical to the offline evaluation path, generational
// hot-reload (swap, rollback, fault-site isolation, a reload-vs-
// evaluate hammer), and deterministic overload admission.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "macro/baselines.hpp"
#include "macro/model_io.hpp"
#include "serve/evaluator.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/reload.hpp"
#include "serve/server.hpp"
#include "serve/tmb.hpp"
#include "sta/timing_graph.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "tmm_serve_XXXXXX").string();
    char* p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str(const char* leaf = nullptr) const {
    return leaf ? (path / leaf).string() : path.string();
  }
};

MacroModel make_model(const char* name, std::uint64_t seed = 21) {
  const Design d = test::make_tiny_design(name, seed);
  const TimingGraph flat = build_timing_graph(d);
  MacroModel m = generate_itimerm_model(flat);
  m.design_name = name;
  return m;
}

BoundarySnapshot snapshot_of(const TimingGraph& g,
                             const BoundaryConstraints& bc) {
  Sta sta(g);
  sta.run(bc);
  BoundarySnapshot snap;
  sta.snapshot_into(snap);
  return snap;
}

bool bit_identical(const BoundarySnapshot& a, const BoundarySnapshot& b) {
  const auto eq = [](const std::vector<double>& x,
                     const std::vector<double>& y) {
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  return a.num_ports == b.num_ports && eq(a.slew, b.slew) &&
         eq(a.at, b.at) && eq(a.rat, b.rat) && eq(a.slack, b.slack);
}

BoundaryConstraints constraints_for(const MacroModel& m, std::uint64_t seed) {
  Rng rng(seed);
  return random_constraints(m.graph.primary_inputs().size(),
                            m.graph.primary_outputs().size(), {}, rng);
}

fault::ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const fault::FlowError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected FlowError";
  return fault::ErrorCode::kOk;
}

// ------------------------------------------------------------------ tmb

TEST(Tmb, RoundTripPreservesEvaluationBitExactly) {
  const MacroModel m = make_model("rt");
  const std::string image = serve::pack_model(m);
  const MacroModel back = serve::unpack_model(image, "rt.tmb");
  EXPECT_EQ(back.design_name, m.design_name);
  EXPECT_EQ(back.graph.num_live_nodes(), m.graph.num_live_nodes());
  EXPECT_EQ(back.graph.num_live_arcs(), m.graph.num_live_arcs());
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const BoundaryConstraints bc = constraints_for(m, seed);
    EXPECT_TRUE(bit_identical(snapshot_of(m.graph, bc),
                              snapshot_of(back.graph, bc)))
        << "seed " << seed;
  }
}

TEST(Tmb, PackUnpackPackIsByteIdentical) {
  // The binary format is idempotent: unpacking and re-packing
  // reproduces the image byte for byte (record order, flags, and every
  // double's bit pattern survive).
  const MacroModel m = make_model("idem");
  const std::string image = serve::pack_model(m);
  EXPECT_EQ(serve::pack_model(serve::unpack_model(image, "idem.tmb")), image);
}

TEST(Tmb, PackOfTextRereadPreservesStructure) {
  // The text format rounds doubles to 9 significant digits, so a .macro
  // round trip is not bit-exact — but the record structure the binary
  // writer compacts must match, and timing must agree to text precision.
  const MacroModel m = make_model("txt");
  std::stringstream text;
  write_macro_model(m, text);
  const MacroModel reread = read_macro_model(text, "txt.macro");
  const MacroModel packed =
      serve::unpack_model(serve::pack_model(reread), "txt.tmb");
  EXPECT_EQ(packed.graph.num_live_nodes(), m.graph.num_live_nodes());
  EXPECT_EQ(packed.graph.num_live_arcs(), m.graph.num_live_arcs());
  const BoundaryConstraints bc = constraints_for(m, 4);
  // Bit-identical to the *reread* model (same doubles), close to the
  // original (9-digit rounding).
  EXPECT_TRUE(bit_identical(snapshot_of(packed.graph, bc),
                            snapshot_of(reread.graph, bc)));
}

TEST(Tmb, RejectsCorruptImages) {
  using fault::ErrorCode;
  const std::string good = serve::pack_model(make_model("corrupt"));
  ASSERT_GT(good.size(), serve::kTmbHeaderBytes);

  const auto parse_code = [](std::string image) {
    return code_of([&] {
      static_cast<void>(serve::unpack_model(image, "<corrupt>"));
    });
  };

  EXPECT_EQ(parse_code(""), ErrorCode::kParse);
  EXPECT_EQ(parse_code(good.substr(0, 10)), ErrorCode::kParse);  // short header

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(parse_code(bad_magic), ErrorCode::kParse);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0x7f);
  EXPECT_EQ(parse_code(bad_version), ErrorCode::kParse);

  std::string truncated = good;
  truncated.resize(truncated.size() - 1);  // payload shorter than header says
  EXPECT_EQ(parse_code(truncated), ErrorCode::kParse);

  std::string extended = good + "x";  // payload longer than header says
  EXPECT_EQ(parse_code(extended), ErrorCode::kParse);

  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;  // CRC catches a payload bit flip
  EXPECT_EQ(parse_code(flipped), ErrorCode::kParse);
}

TEST(Tmb, FileRoundTripAndIoError) {
  const TempDir dir;
  const MacroModel m = make_model("file");
  const std::size_t bytes = serve::write_tmb_file(m, dir.str("file.tmb"));
  EXPECT_GT(bytes, serve::kTmbHeaderBytes);
  const MacroModel back = serve::read_tmb_file(dir.str("file.tmb"));
  EXPECT_EQ(back.design_name, "file");
  EXPECT_EQ(code_of([&] {
              static_cast<void>(serve::read_tmb_file(dir.str("missing.tmb")));
            }),
            fault::ErrorCode::kIo);
}

// ------------------------------------------------------------- registry

TEST(Registry, LoadsDirectoryAndIsolatesCorruptFiles) {
  const TempDir dir;
  serve::write_tmb_file(make_model("alpha", 21), dir.str("alpha.tmb"));
  serve::write_tmb_file(make_model("beta", 22), dir.str("beta.tmb"));
  std::ofstream(dir.str("broken.tmb")) << "not a tmb image";

  serve::ModelRegistry reg;
  EXPECT_EQ(reg.load_directory(dir.str()), 2u);
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_EQ(reg.failures().size(), 1u);
  EXPECT_NE(reg.failures()[0].path.find("broken.tmb"), std::string::npos);
  ASSERT_NE(reg.find("alpha"), nullptr);
  EXPECT_EQ(reg.find("alpha")->num_pis,
            reg.find("alpha")->model.graph.primary_inputs().size());
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Registry, DuplicateDesignNameIsConfigError) {
  const TempDir dir;
  const MacroModel m = make_model("dup");
  serve::write_tmb_file(m, dir.str("a.tmb"));
  serve::write_tmb_file(m, dir.str("b.tmb"));
  serve::ModelRegistry reg;
  reg.load_file(dir.str("a.tmb"));
  EXPECT_EQ(code_of([&] { reg.load_file(dir.str("b.tmb")); }),
            fault::ErrorCode::kConfig);
}

TEST(Registry, AllCorruptIsUnavailableEmptyDirIsNot) {
  const TempDir dir;
  std::ofstream(dir.str("junk.tmb")) << "junk";
  serve::ModelRegistry reg;
  EXPECT_EQ(code_of([&] { reg.load_directory(dir.str()); }),
            fault::ErrorCode::kUnavailable);

  const TempDir empty;
  serve::ModelRegistry reg2;
  EXPECT_EQ(reg2.load_directory(empty.str()), 0u);
  EXPECT_EQ(code_of([] {
              serve::ModelRegistry r;
              static_cast<void>(r.load_directory("/nonexistent/dir"));
            }),
            fault::ErrorCode::kIo);
}

// ---------------------------------------------------------- result cache

BoundarySnapshot tagged_snapshot(double tag) {
  BoundarySnapshot s;
  s.num_ports = 1;
  s.slew = {tag, tag, tag, tag};
  s.at = s.rat = s.slack = s.slew;
  return s;
}

TEST(ResultCache, LruEvictsLeastRecentAndPromotesOnHit) {
  serve::ResultCache cache(2, /*num_shards=*/1);
  cache.insert("a", tagged_snapshot(1));
  cache.insert("b", tagged_snapshot(2));
  BoundarySnapshot out;
  EXPECT_TRUE(cache.lookup("a", out));  // promotes "a" over "b"
  EXPECT_DOUBLE_EQ(out.slew[0], 1.0);
  cache.insert("c", tagged_snapshot(3));  // evicts "b", the LRU entry
  EXPECT_FALSE(cache.lookup("b", out));
  EXPECT_TRUE(cache.lookup("a", out));
  EXPECT_TRUE(cache.lookup("c", out));
  const serve::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_NEAR(st.hit_rate(), 0.75, 1e-12);
}

TEST(ResultCache, RefreshingAKeyDoesNotGrowTheShard) {
  serve::ResultCache cache(2, 1);
  cache.insert("a", tagged_snapshot(1));
  cache.insert("a", tagged_snapshot(9));
  BoundarySnapshot out;
  EXPECT_TRUE(cache.lookup("a", out));
  EXPECT_DOUBLE_EQ(out.slew[0], 9.0);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  serve::ResultCache cache(0);
  cache.insert("a", tagged_snapshot(1));
  BoundarySnapshot out;
  EXPECT_FALSE(cache.lookup("a", out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ------------------------------------------------------------ evaluator

struct ServeFixture {
  TempDir dir;
  serve::ModelRegistry reg;
  ServeFixture() {
    serve::write_tmb_file(make_model("blk", 31), dir.str("blk.tmb"));
    reg.load_directory(dir.str());
  }
  const MacroModel& model() const { return reg.find("blk")->model; }
};

TEST(Evaluator, UnknownModelAndArityMismatchAreTypedErrors) {
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::Evaluator::Scratch scratch;
  BoundarySnapshot out;
  const BoundaryConstraints bc = constraints_for(fx.model(), 1);
  EXPECT_EQ(code_of([&] { eval.evaluate("ghost", bc, out, scratch); }),
            fault::ErrorCode::kUnavailable);
  BoundaryConstraints wrong = bc;
  wrong.pi.pop_back();
  EXPECT_EQ(code_of([&] { eval.evaluate("blk", wrong, out, scratch); }),
            fault::ErrorCode::kConfig);
}

TEST(Evaluator, CacheHitReturnsBitIdenticalSnapshot) {
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::Evaluator::Scratch scratch;
  const BoundaryConstraints bc = constraints_for(fx.model(), 2);
  const BoundarySnapshot expected = snapshot_of(fx.model().graph, bc);

  BoundarySnapshot out;
  EXPECT_FALSE(eval.evaluate("blk", bc, out, scratch).cache_hit);
  EXPECT_TRUE(bit_identical(out, expected));
  BoundarySnapshot again;
  EXPECT_TRUE(eval.evaluate("blk", bc, again, scratch).cache_hit);
  EXPECT_TRUE(bit_identical(again, expected));
  // Bypass recomputes (still identical) without touching hit counts.
  const std::uint64_t hits_before = eval.cache_stats().hits;
  BoundarySnapshot fresh;
  EXPECT_FALSE(eval.evaluate("blk", bc, fresh, scratch, true).cache_hit);
  EXPECT_TRUE(bit_identical(fresh, expected));
  EXPECT_EQ(eval.cache_stats().hits, hits_before);
}

TEST(Evaluator, QuantizationSnapsNearbyQueriesToOneKey) {
  const ServeFixture fx;
  serve::Evaluator::Options opt;
  opt.quantum_ps = 1.0;
  serve::Evaluator eval(fx.reg, opt);
  serve::Evaluator::Scratch scratch;

  BoundaryConstraints bc = constraints_for(fx.model(), 3);
  BoundaryConstraints nearby = bc;
  nearby.pi[0].slew(kLate, kRise) += 0.2;  // same 1.0ps grid point
  nearby.clock_period_ps += 0.3;

  BoundarySnapshot a, b;
  EXPECT_FALSE(eval.evaluate("blk", bc, a, scratch).cache_hit);
  EXPECT_TRUE(eval.evaluate("blk", nearby, b, scratch).cache_hit);
  EXPECT_TRUE(bit_identical(a, b));

  // The response is the exact STA answer for the *quantized* constraints.
  BoundaryConstraints q = bc;
  q.clock_period_ps = std::round(q.clock_period_ps);
  for (auto& pi : q.pi)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        pi.at(el, rf) = std::round(pi.at(el, rf));
        pi.slew(el, rf) = std::round(pi.slew(el, rf));
      }
  for (auto& po : q.po) {
    po.load_ff = std::round(po.load_ff);
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        po.rat(el, rf) = std::round(po.rat(el, rf));
  }
  EXPECT_TRUE(bit_identical(a, snapshot_of(fx.model().graph, q)));
}

// ------------------------------------------------------------- protocol

TEST(Protocol, RequestRoundTrip) {
  serve::Request req;
  req.request_id = 0xDEADBEEFu;
  req.deadline_ms = 250;
  req.no_cache = true;
  req.model = "blk";
  Rng rng(4);
  req.bc = random_constraints(3, 2, {}, rng);
  const serve::Request back = serve::decode_request(serve::encode_request(req));
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_TRUE(back.no_cache);
  EXPECT_EQ(back.model, "blk");
  ASSERT_EQ(back.bc.pi.size(), 3u);
  ASSERT_EQ(back.bc.po.size(), 2u);
  EXPECT_EQ(back.bc.clock_period_ps, req.bc.clock_period_ps);
  for (std::size_t i = 0; i < 3; ++i)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        EXPECT_EQ(back.bc.pi[i].at(el, rf), req.bc.pi[i].at(el, rf));
        EXPECT_EQ(back.bc.pi[i].slew(el, rf), req.bc.pi[i].slew(el, rf));
      }
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.bc.po[i].load_ff, req.bc.po[i].load_ff);
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        EXPECT_EQ(back.bc.po[i].rat(el, rf), req.bc.po[i].rat(el, rf));
  }
}

TEST(Protocol, ResponseRoundTripOkAndError) {
  serve::Response ok;
  ok.request_id = 7;
  ok.cache_hit = true;
  ok.snap = tagged_snapshot(42.5);
  const serve::Response ok_back =
      serve::decode_response(serve::encode_response(ok));
  EXPECT_EQ(ok_back.request_id, 7u);
  EXPECT_EQ(ok_back.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(ok_back.cache_hit);
  EXPECT_TRUE(bit_identical(ok_back.snap, ok.snap));

  serve::Response err;
  err.request_id = 8;
  err.status = serve::ResponseStatus::kUnknownModel;
  err.error = "no such model 'ghost'";
  const serve::Response err_back =
      serve::decode_response(serve::encode_response(err));
  EXPECT_EQ(err_back.status, serve::ResponseStatus::kUnknownModel);
  EXPECT_EQ(err_back.error, err.error);
}

TEST(Protocol, RejectsMalformedRequests) {
  serve::Request req;
  req.model = "m";
  Rng rng(5);
  req.bc = random_constraints(1, 1, {}, rng);
  const std::string good = serve::encode_request(req);

  const auto parse_code = [](std::string payload) {
    return code_of(
        [&] { static_cast<void>(serve::decode_request(payload)); });
  };
  EXPECT_EQ(parse_code(""), fault::ErrorCode::kParse);
  std::string bad_magic = good;
  bad_magic[0] = 'Z';
  EXPECT_EQ(parse_code(bad_magic), fault::ErrorCode::kParse);
  EXPECT_EQ(parse_code(good.substr(0, good.size() / 2)),
            fault::ErrorCode::kParse);
  EXPECT_EQ(parse_code(good + "trailing"), fault::ErrorCode::kParse);
}

// --------------------------------------------------------------- server

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

// The TSan target: 8 client threads against a 4-worker server sharing
// one Evaluator/cache/registry; every response must be bit-identical to
// the offline Sta answer computed up front.
TEST(Server, ConcurrentClientsGetBitIdenticalResponses) {
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::Server server(eval, {.tcp_port = 0, .num_threads = 4,
                              .batch_max = 8});
  server.start();
  std::thread serving([&] { server.serve(); });

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 24;
  constexpr int kKeys = 4;  // shared keys -> guaranteed cache hits
  std::vector<BoundaryConstraints> key_bc(kKeys);
  std::vector<BoundarySnapshot> expected(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    key_bc[k] = constraints_for(fx.model(), 100 + k);
    expected[k] = snapshot_of(fx.model().graph, key_bc[k]);
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_loopback(server.bound_port());
      std::string frame;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        serve::Request req;
        req.request_id =
            static_cast<std::uint64_t>(c) * kRequestsPerClient + i;
        const int key = (c + i) % kKeys;
        req.model = "blk";
        req.bc = key_bc[key];
        serve::write_frame(fd, serve::encode_request(req));
        ASSERT_TRUE(serve::read_frame(fd, frame));
        const serve::Response resp = serve::decode_response(frame);
        EXPECT_EQ(resp.request_id, req.request_id);
        if (resp.status != serve::ResponseStatus::kOk)
          errors.fetch_add(1);
        else if (!bit_identical(resp.snap, expected[key]))
          mismatches.fetch_add(1);
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  server.stop();
  serving.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const serve::Server::Stats st = server.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(kClients) *
                             kRequestsPerClient);
  EXPECT_EQ(st.responses_ok, st.requests);
  EXPECT_EQ(st.conn_aborts, 0u);
  EXPECT_EQ(st.connections, static_cast<std::uint64_t>(kClients));
  EXPECT_GT(eval.cache_stats().hits, 0u);
}

TEST(Server, BadFramesGetErrorResponsesOnALiveConnection) {
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::Server server(eval, {.tcp_port = 0, .num_threads = 1});
  server.start();
  std::thread serving([&] { server.serve(); });

  const int fd = connect_loopback(server.bound_port());
  std::string frame;

  // Unknown model: typed error, connection stays up.
  serve::Request req;
  req.request_id = 1;
  req.model = "ghost";
  Rng rng(6);
  req.bc = random_constraints(1, 1, {}, rng);
  serve::write_frame(fd, serve::encode_request(req));
  ASSERT_TRUE(serve::read_frame(fd, frame));
  EXPECT_EQ(serve::decode_response(frame).status,
            serve::ResponseStatus::kUnknownModel);

  // Garbage frame: kBadRequest, connection still stays up.
  serve::write_frame(fd, "this is not a TMRQ frame");
  ASSERT_TRUE(serve::read_frame(fd, frame));
  EXPECT_EQ(serve::decode_response(frame).status,
            serve::ResponseStatus::kBadRequest);

  // And a valid request after both errors still succeeds.
  const MacroModel& m = fx.model();
  serve::Request good;
  good.request_id = 2;
  good.model = "blk";
  good.bc = constraints_for(m, 9);
  serve::write_frame(fd, serve::encode_request(good));
  ASSERT_TRUE(serve::read_frame(fd, frame));
  const serve::Response resp = serve::decode_response(frame);
  EXPECT_EQ(resp.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(bit_identical(resp.snap, snapshot_of(m.graph, good.bc)));

  ::close(fd);
  server.stop();
  serving.join();
  EXPECT_EQ(server.stats().request_errors, 2u);
}

TEST(Server, UnixSocketServesAndUnlinksOnShutdown) {
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  const std::string sock = fx.dir.str("srv.sock");
  {
    serve::ServerOptions opt;
    opt.unix_path = sock;
    opt.num_threads = 2;
    serve::Server server(eval, opt);
    server.start();
    std::thread serving([&] { server.serve(); });
    ASSERT_TRUE(fs::exists(sock));

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    serve::Request req;
    req.model = "blk";
    req.bc = constraints_for(fx.model(), 11);
    serve::write_frame(fd, serve::encode_request(req));
    std::string frame;
    ASSERT_TRUE(serve::read_frame(fd, frame));
    EXPECT_EQ(serve::decode_response(frame).status,
              serve::ResponseStatus::kOk);
    ::close(fd);

    server.stop();
    serving.join();
  }
  // Destroying the server removes the socket file: stale socket files
  // would break the next server's bind.
  EXPECT_FALSE(fs::exists(sock));
}

// --------------------------------------------------------------- reload

/// Two same-name models with identical 2-PI/2-PO boundary shape but
/// different internal timing: a reload can swap between them without
/// changing what requests look like, and their snapshots tell the
/// generations apart bit-exactly.
struct ReloadFixture {
  TempDir dir;
  BoundaryConstraints bc;
  BoundarySnapshot snap_a, snap_b;
  ReloadFixture() {
    const MacroModel a = make_model("blk", 31);
    const MacroModel b = make_model("blk", 37);
    bc = constraints_for(a, 5);
    snap_a = snapshot_of(a.graph, bc);
    snap_b = snapshot_of(b.graph, bc);
    EXPECT_FALSE(bit_identical(snap_a, snap_b));
    serve::write_tmb_file(a, dir.str("blk.tmb"));
  }
  void install(std::uint64_t seed) {
    serve::write_tmb_file(make_model("blk", seed), dir.str("blk.tmb"));
  }
};

BoundarySnapshot served_by(const serve::ModelRegistry& reg,
                           const BoundaryConstraints& bc) {
  const serve::RegistryEntry* entry = reg.find("blk");
  EXPECT_NE(entry, nullptr);
  return snapshot_of(entry->model.graph, bc);
}

TEST(Reload, SwapPublishesNewGenerationWhileOldPinsSurvive) {
  ReloadFixture fx;
  serve::RegistryManager mgr(fx.dir.str());
  EXPECT_EQ(mgr.load_initial(), 1u);
  const std::shared_ptr<const serve::ModelRegistry> pinned = mgr.current();
  EXPECT_EQ(pinned->generation(), 1u);
  EXPECT_TRUE(bit_identical(served_by(*pinned, fx.bc), fx.snap_a));

  fx.install(37);
  const serve::ReloadResult r = mgr.reload();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.generation, 2u);
  EXPECT_EQ(r.models_loaded, 1u);
  EXPECT_EQ(r.load_failures, 0u);
  EXPECT_GE(r.reload_us, r.swap_us);  // swap is inside the reload

  // An in-flight request that pinned generation 1 keeps answering from
  // it; the published generation is already the new one.
  EXPECT_TRUE(bit_identical(served_by(*pinned, fx.bc), fx.snap_a));
  const std::shared_ptr<const serve::ModelRegistry> cur = mgr.current();
  EXPECT_EQ(cur->generation(), 2u);
  EXPECT_TRUE(bit_identical(served_by(*cur, fx.bc), fx.snap_b));

  const serve::RegistryManager::Counters c = mgr.counters();
  EXPECT_EQ(c.generation, 2u);
  EXPECT_EQ(c.reloads_ok, 1u);
  EXPECT_EQ(c.reload_failures, 0u);
  EXPECT_TRUE(c.last_error.empty());
}

TEST(Reload, FailedLoadRollsBackToServingGeneration) {
  ReloadFixture fx;
  serve::RegistryManager mgr(fx.dir.str());
  mgr.load_initial();

  // Reload is strict where startup is lax: one corrupt pack in an
  // otherwise-good directory vetoes the whole swap.
  std::ofstream(fx.dir.str("junk.tmb")) << "not a tmb image";
  const serve::ReloadResult r = mgr.reload();
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  const std::shared_ptr<const serve::ModelRegistry> cur = mgr.current();
  EXPECT_EQ(cur->generation(), 1u);
  EXPECT_TRUE(bit_identical(served_by(*cur, fx.bc), fx.snap_a));
  EXPECT_EQ(mgr.counters().reload_failures, 1u);
  EXPECT_FALSE(mgr.counters().last_error.empty());

  // Repairing the directory makes the next reload succeed and clears
  // the sticky error.
  fs::remove(fx.dir.str("junk.tmb"));
  fx.install(37);
  const serve::ReloadResult r2 = mgr.reload();
  EXPECT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r2.generation, 2u);
  EXPECT_TRUE(bit_identical(served_by(*mgr.current(), fx.bc), fx.snap_b));
  EXPECT_TRUE(mgr.counters().last_error.empty());
}

TEST(Reload, ValidatorVetoKeepsOldGeneration) {
  ReloadFixture fx;
  serve::RegistryManager mgr(
      fx.dir.str(), [](const std::string&) { return std::string("S999 veto"); });
  mgr.load_initial();  // startup does not consult the validator
  fx.install(37);
  const serve::ReloadResult r = mgr.reload();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("S999 veto"), std::string::npos);
  EXPECT_EQ(mgr.current()->generation(), 1u);
  EXPECT_TRUE(bit_identical(served_by(*mgr.current(), fx.bc), fx.snap_a));
}

TEST(Reload, FaultSitesRollBackAndKeepServing) {
  // Each serve.reload_* site fires once mid-reload; the old generation
  // must keep serving bit-identically and the next reload must succeed.
  for (const char* site :
       {"serve.reload_open", "serve.reload_swap", "serve.reload_validate"}) {
    ReloadFixture fx;
    serve::RegistryManager mgr(fx.dir.str());
    mgr.load_initial();
    fx.install(37);

    ASSERT_TRUE(fault::arm(site, 1).ok()) << site;
    const serve::ReloadResult r = mgr.reload();
    fault::disarm();
    EXPECT_FALSE(r.ok) << site;
    EXPECT_NE(r.error.find("injected"), std::string::npos) << site;
    EXPECT_EQ(mgr.current()->generation(), 1u) << site;
    EXPECT_TRUE(bit_identical(served_by(*mgr.current(), fx.bc), fx.snap_a))
        << site;

    const serve::ReloadResult retry = mgr.reload();
    EXPECT_TRUE(retry.ok) << site << ": " << retry.error;
    EXPECT_TRUE(bit_identical(served_by(*mgr.current(), fx.bc), fx.snap_b))
        << site;
  }
}

// A TSan target: clients hammer a managed Evaluator while the main
// thread swaps generations in a loop. Every answer must be bit-identical
// to the offline snapshot of the generation the scratch had pinned —
// a stale cross-generation cache hit or a use-after-free of a retired
// registry would both trip this (the cache key's generation prefix and
// the shared_ptr pinning are what keep it honest).
TEST(Reload, ConcurrentEvaluationDuringSwapsIsSafe) {
  ReloadFixture fx;
  serve::RegistryManager mgr(fx.dir.str());
  mgr.load_initial();
  serve::Evaluator eval(mgr, {});

  // Generation 1 is seed 31; reload r installs seed 37/31 alternately,
  // so odd generations serve snap_a and even ones snap_b.
  constexpr int kThreads = 4;
  constexpr int kReloads = 20;
  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      serve::Evaluator::Scratch scratch;
      BoundarySnapshot out;
      while (!stop.load(std::memory_order_relaxed)) {
        eval.evaluate("blk", fx.bc, out, scratch);
        const std::uint64_t gen = scratch.pinned->generation();
        const BoundarySnapshot& expected =
            gen % 2 == 1 ? fx.snap_a : fx.snap_b;
        if (!bit_identical(out, expected)) wrong.fetch_add(1);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < kReloads; ++r) {
    fx.install(r % 2 == 0 ? 37 : 31);
    const serve::ReloadResult res = mgr.reload();
    EXPECT_TRUE(res.ok) << res.error;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(mgr.counters().generation,
            static_cast<std::uint64_t>(kReloads) + 1);
  EXPECT_EQ(mgr.counters().reloads_ok, static_cast<std::uint64_t>(kReloads));
}

TEST(Server, ReloadOverWireSwapsGenerationLive) {
  ReloadFixture fx;
  serve::RegistryManager mgr(fx.dir.str());
  mgr.load_initial();
  serve::Evaluator eval(mgr, {});
  serve::Server server(eval, {.tcp_port = 0, .num_threads = 2});
  server.start();
  std::thread serving([&] { server.serve(); });

  const int fd = connect_loopback(server.bound_port());
  std::string frame;
  const auto ask = [&](std::uint64_t id) {
    serve::Request req;
    req.request_id = id;
    req.model = "blk";
    req.bc = fx.bc;
    serve::write_frame(fd, serve::encode_request(req));
    EXPECT_TRUE(serve::read_frame(fd, frame));
    return serve::decode_response(frame);
  };

  const serve::Response before = ask(1);
  EXPECT_EQ(before.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(bit_identical(before.snap, fx.snap_a));

  // Admin reload on the same connection; the JSON answer carries the
  // new generation and the swap timing.
  fx.install(37);
  serve::Request reload;
  reload.request_id = 2;
  reload.kind = serve::RequestKind::kReload;
  serve::write_frame(fd, serve::encode_request(reload));
  ASSERT_TRUE(serve::read_frame(fd, frame));
  const serve::Response rr = serve::decode_response(frame);
  EXPECT_EQ(rr.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(rr.admin);
  EXPECT_NE(rr.text.find("\"ok\": true"), std::string::npos) << rr.text;
  EXPECT_NE(rr.text.find("\"generation\": 2"), std::string::npos) << rr.text;
  EXPECT_NE(rr.text.find("\"swap_us\": "), std::string::npos) << rr.text;

  // The same constraints now answer from the new generation — a result
  // cache not keyed by generation would hand back snap_a here.
  const serve::Response after = ask(3);
  EXPECT_EQ(after.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(bit_identical(after.snap, fx.snap_b));

  // Health reports the generation and reload counters.
  serve::Request health;
  health.request_id = 4;
  health.kind = serve::RequestKind::kHealth;
  serve::write_frame(fd, serve::encode_request(health));
  ASSERT_TRUE(serve::read_frame(fd, frame));
  const serve::Response hr = serve::decode_response(frame);
  EXPECT_NE(hr.text.find("\"generation\": 2"), std::string::npos) << hr.text;
  EXPECT_NE(hr.text.find("\"reloads_ok\": 1"), std::string::npos) << hr.text;

  ::close(fd);
  server.stop();
  serving.join();
}

// ------------------------------------------------------------ admission

TEST(Server, OverloadShedsBeyondInflightBudgetDeterministically) {
  // One worker, batch_max 16, budget 2, and one pipelined burst of 16
  // frames delivered in a single write: the adaptive drain picks up the
  // whole burst before answering, so exactly 2 requests are admitted
  // and 14 are shed with kOverloaded at admission.
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  opt.num_threads = 1;
  opt.batch_max = 16;
  opt.max_inflight = 2;
  serve::Server server(eval, opt);
  server.start();
  std::thread serving([&] { server.serve(); });

  const int fd = connect_loopback(server.bound_port());
  constexpr int kBurst = 16;
  std::string wire;
  for (int i = 0; i < kBurst; ++i) {
    serve::Request req;
    req.request_id = static_cast<std::uint64_t>(i);
    req.model = "blk";
    req.bc = constraints_for(fx.model(), 50 + i);
    const std::string payload = serve::encode_request(req);
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    wire.append(reinterpret_cast<const char*>(&len), sizeof len);
    wire += payload;
  }
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));

  int ok = 0, overloaded = 0, other = 0;
  std::string frame;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(serve::read_frame(fd, frame));
    const serve::Response resp = serve::decode_response(frame);
    EXPECT_EQ(resp.request_id, static_cast<std::uint64_t>(i));
    if (resp.status == serve::ResponseStatus::kOk)
      ++ok;
    else if (resp.status == serve::ResponseStatus::kOverloaded)
      ++overloaded;
    else
      ++other;
  }
  ::close(fd);
  server.stop();
  serving.join();

  EXPECT_EQ(ok, 2);
  EXPECT_EQ(overloaded, 14);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(server.stats().shed_overload, 14u);
  EXPECT_EQ(server.stats().responses_ok, 2u);
}

}  // namespace
}  // namespace tmm
