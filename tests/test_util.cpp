#include <gtest/gtest.h>

#include <cmath>

#include "util/instrument.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tmm {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 9.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 9.5);
  }
}

TEST(Rng, BelowStaysBelow) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng r(10);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng r(12);
  Rng f = r.fork(1);
  Rng g = r.fork(2);
  EXPECT_NE(f(), g());
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  Rng r(13);
  for (int i = 0; i < 500; ++i) {
    const double v = r.uniform(-3, 7);
    (i % 2 ? a : b).add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(-4.0);   // clamps into first bin
  h.add(99.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Standardize, ZeroMeanUnitVariance) {
  std::vector<double> v{1, 2, 3, 4, 5};
  standardize(v);
  double mean = 0;
  for (double x : v) mean += x;
  EXPECT_NEAR(mean / 5.0, 0.0, 1e-12);
  double var = 0;
  for (double x : v) var += x * x;
  EXPECT_NEAR(var / 5.0, 1.0, 1e-12);
}

TEST(Standardize, ConstantInputBecomesZero) {
  std::vector<double> v{3, 3, 3};
  standardize(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(AsciiTable, FormatsRows) {
  AsciiTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(AsciiTable::integer(-42), "-42");
}

TEST(Instrument, RssReadable) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(Instrument, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * 1024 * 1024), "2.00 MB");
}

TEST(Instrument, StopwatchAdvances) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i)
    sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace tmm
