#include <gtest/gtest.h>

#include <cmath>

#include "macro/ilm.hpp"
#include "sensitivity/training_data.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(Filter, SlewDifferenceDecaysWithDepth) {
  // Shielding effect (Fig. 7): SD at the chain head exceeds SD at the
  // tail.
  const Design d = test::make_buffer_chain(8);
  const TimingGraph g = build_timing_graph(d);
  const FilterResult fr = filter_insensitive_pins(g);
  const NodeId head = g.arc(g.fanout(d.primary_inputs()[0])[0]).to;
  // Walk to a deep pin.
  NodeId deep = head;
  for (int i = 0; i < 10 && !g.fanout(deep).empty(); ++i)
    deep = g.arc(g.fanout(deep)[0]).to;
  EXPECT_GT(fr.sd[head], fr.sd[deep]);
}

TEST(Filter, RemainsLastStageAndOutputNetPins) {
  const Design d = test::make_small_design();
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const FilterResult fr = filter_insensitive_pins(ilm.graph);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead) continue;
    if (is_last_stage(ilm.graph, n)) {
      EXPECT_TRUE(fr.remained[n]) << ilm.graph.node(n).name;
    }
  }
}

TEST(Filter, FiltersAMajorityOfPins) {
  const Design d = test::make_small_design("filt", 21);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const FilterResult fr = filter_insensitive_pins(ilm.graph);
  EXPECT_GT(fr.live_pins, 0u);
  EXPECT_GT(fr.num_remained, 0u);
  // The paper reports >88% filtered on TAU designs; structure varies, so
  // assert the qualitative claim: most pins are filtered out.
  EXPECT_GT(fr.filtered_fraction(), 0.5);
}

TEST(Filter, ThresholdIsNotCritical) {
  // Moving the loose threshold changes the candidate count but never
  // drops protected pins.
  const Design d = test::make_small_design("filt2", 31);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  FilterConfig strict;
  strict.z_threshold = 1.0;
  FilterConfig loose;
  loose.z_threshold = -1.0;
  const FilterResult a = filter_insensitive_pins(ilm.graph, strict);
  const FilterResult b = filter_insensitive_pins(ilm.graph, loose);
  EXPECT_LE(a.num_remained, b.num_remained);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (!ilm.graph.node(n).dead && is_last_stage(ilm.graph, n)) {
      EXPECT_TRUE(a.remained[n]);
    }
  }
}

TEST(MeanRelativeDiff, Definition) {
  const std::vector<double> before{10.0, 20.0};
  const std::vector<double> after{11.0, 20.0};
  // (|11-10|/10 + 0) / 2 = 0.05
  EXPECT_NEAR(mean_relative_diff(after, before), 0.05, 1e-12);
}

TEST(MeanRelativeDiff, StructuralChangesPenalized) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> before{10.0, inf};
  const std::vector<double> after{10.0, 5.0};
  EXPECT_NEAR(mean_relative_diff(after, before), 0.5, 1e-12);
}

TEST(MeanRelativeDiff, BothInfiniteIgnored) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> before{inf, 2.0};
  const std::vector<double> after{inf, 2.0};
  EXPECT_DOUBLE_EQ(mean_relative_diff(after, before), 0.0);
}

class TsOnDesign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TsOnDesign, TsIsNonNegativeAndMostlyZero) {
  const Design d = test::make_tiny_design("ts", GetParam());
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const FilterResult fr = filter_insensitive_pins(ilm.graph);
  TsConfig cfg;
  cfg.num_constraint_sets = 2;
  const TsResult ts = evaluate_timing_sensitivity(ilm.graph, fr.remained, cfg);
  EXPECT_GT(ts.evaluated_pins, 0u);
  std::size_t zero = 0;
  std::size_t evaluated = 0;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    EXPECT_GE(ts.ts[n], 0.0);
    if (n < fr.remained.size() && fr.remained[n] &&
        !ilm.graph.node(n).dead) {
      ++evaluated;
      if (ts.ts[n] <= 1e-9) ++zero;
    }
  }
  // The L-shaped TS distribution: many evaluated pins still have TS 0.
  EXPECT_GT(evaluated, 0u);
}

TEST_P(TsOnDesign, UnfilteredPinsKeepZeroTs) {
  const Design d = test::make_tiny_design("ts", GetParam());
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  std::vector<bool> nobody(ilm.graph.num_nodes(), false);
  TsConfig cfg;
  cfg.num_constraint_sets = 1;
  const TsResult ts = evaluate_timing_sensitivity(ilm.graph, nobody, cfg);
  EXPECT_EQ(ts.evaluated_pins, 0u);
  for (double v : ts.ts) EXPECT_DOUBLE_EQ(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsOnDesign, ::testing::Values(3, 9));

TEST(TrainingData, LabelsFollowTsAndCpprRule) {
  const Design d = test::make_tiny_design("td", 17);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  TrainingDataConfig cfg;
  cfg.ts.num_constraint_sets = 2;
  cfg.cppr_labels = true;
  const SensitivityData data = generate_training_data(ilm.graph, cfg);
  ASSERT_EQ(data.labels.size(), ilm.graph.num_nodes());
  std::size_t positives = 0;
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead) {
      EXPECT_EQ(data.labels[n], 0.0f);
      continue;
    }
    if (data.labels[n] >= 0.5f) ++positives;
    if (data.ts.ts[n] > 1e-9) {
      EXPECT_EQ(data.labels[n], 1.0f) << ilm.graph.node(n).name;
    }
    if (is_cppr_crucial(ilm.graph, n)) {
      EXPECT_EQ(data.labels[n], 1.0f) << ilm.graph.node(n).name;
    }
  }
  EXPECT_EQ(positives, data.positives);
}

TEST(TsParallel, ThreadCountDoesNotChangeResults) {
  const Design d = test::make_tiny_design("tsp", 19);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const FilterResult fr = filter_insensitive_pins(ilm.graph);
  TsConfig one;
  one.num_constraint_sets = 2;
  one.threads = 1;
  TsConfig four = one;
  four.threads = 4;
  const TsResult a = evaluate_timing_sensitivity(ilm.graph, fr.remained, one);
  const TsResult b = evaluate_timing_sensitivity(ilm.graph, fr.remained, four);
  EXPECT_EQ(a.evaluated_pins, b.evaluated_pins);
  ASSERT_EQ(a.ts.size(), b.ts.size());
  for (std::size_t i = 0; i < a.ts.size(); ++i)
    EXPECT_DOUBLE_EQ(a.ts[i], b.ts[i]);
}

TEST(TrainingData, CpprRuleOffDropsClockBranchLabels) {
  const Design d = test::make_tiny_design("td", 17);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  TrainingDataConfig with;
  with.ts.num_constraint_sets = 1;
  with.cppr_labels = true;
  TrainingDataConfig without = with;
  without.cppr_labels = false;
  without.ts.cppr = false;
  const SensitivityData a = generate_training_data(ilm.graph, with);
  const SensitivityData b = generate_training_data(ilm.graph, without);
  EXPECT_GE(a.positives, b.positives);
}

}  // namespace
}  // namespace tmm
