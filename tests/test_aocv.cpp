#include <gtest/gtest.h>

#include "flow/framework.hpp"
#include "macro/model_io.hpp"
#include "test_helpers.hpp"

#include <sstream>

namespace tmm {
namespace {

AocvConfig demo_aocv() {
  AocvConfig cfg;
  cfg.enabled = true;
  cfg.late_derate = 1.10;
  cfg.early_derate = 0.90;
  cfg.depth_constant = 5.0;
  return cfg;
}

TEST(Aocv, DerateDecaysTowardOneWithDepth) {
  const AocvConfig cfg = demo_aocv();
  EXPECT_DOUBLE_EQ(cfg.derate(kLate, 0), 1.10);
  EXPECT_DOUBLE_EQ(cfg.derate(kEarly, 0), 0.90);
  EXPECT_GT(cfg.derate(kLate, 5), cfg.derate(kLate, 20));
  EXPECT_LT(cfg.derate(kEarly, 5), cfg.derate(kEarly, 20));
  EXPECT_NEAR(cfg.derate(kLate, 100000), 1.0, 1e-3);
  AocvConfig off;
  EXPECT_DOUBLE_EQ(off.derate(kLate, 0), 1.0);
}

TEST(Aocv, DepthsRestartAtLaunchPoints) {
  const Design d = test::make_tiny_design("aocv", 1);
  const TimingGraph g = build_timing_graph(d);
  for (NodeId p : g.primary_inputs())
    EXPECT_EQ(g.node(p).aocv_depth, 0u);
  for (const auto& c : g.checks())
    EXPECT_EQ(g.node(c.clock).aocv_depth, 0u);  // CK pins restart
  // Somewhere in the data logic the depth must exceed 1.
  std::uint32_t max_depth = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    max_depth = std::max(max_depth, g.node(n).aocv_depth);
  EXPECT_GT(max_depth, 1u);

  // On a pure buffer chain the depth equals the stage count.
  const Design chain = test::make_buffer_chain(4);
  const TimingGraph cg = build_timing_graph(chain);
  EXPECT_EQ(cg.node(chain.primary_outputs()[0]).aocv_depth, 4u);
}

TEST(Aocv, WidensEarlyLateSpread) {
  const Design d = test::make_buffer_chain(5);
  const TimingGraph g = build_timing_graph(d);
  const BoundaryConstraints bc = nominal_constraints(1, 1);
  Sta plain(g);
  plain.run(bc);
  Sta aocv(g, {.aocv = demo_aocv()});
  aocv.run(bc);
  const NodeId out = d.primary_outputs()[0];
  const double plain_spread = plain.timing(out).at(kLate, kRise) -
                              plain.timing(out).at(kEarly, kRise);
  const double aocv_spread = aocv.timing(out).at(kLate, kRise) -
                             aocv.timing(out).at(kEarly, kRise);
  EXPECT_GT(aocv_spread, plain_spread);
  EXPECT_GT(aocv.timing(out).at(kLate, kRise),
            plain.timing(out).at(kLate, kRise));
  EXPECT_LT(aocv.timing(out).at(kEarly, kRise),
            plain.timing(out).at(kEarly, kRise));
}

TEST(Aocv, ShallowStagesDeratedMoreThanDeepOnes) {
  // Two chains of different length: the per-stage late inflation at the
  // front of the chain must exceed the inflation near its end.
  const Design d = test::make_buffer_chain(10);
  const TimingGraph g = build_timing_graph(d);
  const BoundaryConstraints bc = nominal_constraints(1, 1);
  Sta plain(g);
  plain.run(bc);
  Sta aocv(g, {.aocv = demo_aocv()});
  aocv.run(bc);
  // Inflation ratio of the first gate stage vs the whole chain.
  NodeId first_out = kInvalidId;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (g.node(n).name == "b0/Y") first_out = n;
  ASSERT_NE(first_out, kInvalidId);
  const NodeId out = d.primary_outputs()[0];
  const double at0 = bc.pi[0].at(kLate, kRise);
  const double infl_first = (aocv.timing(first_out).at(kLate, kRise) - at0) /
                            (plain.timing(first_out).at(kLate, kRise) - at0);
  const double infl_total = (aocv.timing(out).at(kLate, kRise) - at0) /
                            (plain.timing(out).at(kLate, kRise) - at0);
  EXPECT_GT(infl_first, infl_total);
  EXPECT_GT(infl_total, 1.0);
}

TEST(Aocv, IlmStaysBoundaryExactUnderAocv) {
  const Design d = test::make_small_design("aocv", 2);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  Rng rng(3);
  std::vector<BoundaryConstraints> sets{random_constraints(
      d.primary_inputs().size(), d.primary_outputs().size(), {}, rng)};
  Sta::Options opt;
  opt.aocv = demo_aocv();
  const AccuracyReport rep =
      evaluate_accuracy(flat, ilm.graph, sets, opt);
  EXPECT_LT(rep.max_err_ps, 1e-6);
  EXPECT_EQ(rep.structural_mismatches, 0u);
}

TEST(Aocv, MergedModelBakesDeratesCorrectly) {
  const Design d = test::make_small_design("aocv", 4);
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
    if (is_cppr_crucial(ilm.graph, n)) keep[n] = true;
  MergeConfig merge;
  merge.aocv = demo_aocv();
  merge_insensitive_pins(ilm.graph, keep, merge);

  Rng rng(9);
  std::vector<BoundaryConstraints> sets;
  for (int i = 0; i < 2; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  Sta::Options opt;
  opt.aocv = demo_aocv();
  const AccuracyReport rep = evaluate_accuracy(flat, ilm.graph, sets, opt);
  EXPECT_EQ(rep.structural_mismatches, 0u);
  EXPECT_LT(rep.max_err_ps, 0.5);
}

TEST(Aocv, ModeMismatchedModelIsVisiblyWrong) {
  // A model generated for plain NLDM, analyzed under AOCV, must show a
  // clear error against the AOCV flat reference (the reason mode-aware
  // generation exists).
  const Design d = test::make_small_design("aocv", 5);
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  merge_insensitive_pins(ilm.graph, keep, MergeConfig{});  // NLDM tables

  Rng rng(11);
  std::vector<BoundaryConstraints> sets{random_constraints(
      d.primary_inputs().size(), d.primary_outputs().size(), {}, rng)};
  Sta::Options opt;
  opt.aocv = demo_aocv();
  const AccuracyReport rep = evaluate_accuracy(flat, ilm.graph, sets, opt);
  EXPECT_GT(rep.max_err_ps, 1.0);
}

TEST(Aocv, ModelIoPreservesBakedFlagAndDepth) {
  const Design d = test::make_tiny_design("aocv", 6);
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  MergeConfig merge;
  merge.aocv = demo_aocv();
  merge_insensitive_pins(ilm.graph, keep, merge);

  MacroModel model;
  model.design_name = "aocv";
  model.graph = std::move(ilm.graph);
  std::stringstream ss;
  write_macro_model(model, ss);
  const MacroModel back = read_macro_model(ss);

  Rng rng(13);
  std::vector<BoundaryConstraints> sets{random_constraints(
      d.primary_inputs().size(), d.primary_outputs().size(), {}, rng)};
  Sta::Options opt;
  opt.aocv = demo_aocv();
  const AccuracyReport rep =
      evaluate_accuracy(model.graph, back.graph, sets, opt);
  EXPECT_LT(rep.max_err_ps, 1e-5);
}

TEST(Aocv, EndToEndFlowUnderAocv) {
  FlowConfig cfg;
  cfg.cppr = true;
  cfg.aocv = demo_aocv();
  cfg.data.ts.num_constraint_sets = 2;
  cfg.train.epochs = 80;
  Framework fw(cfg);
  std::vector<Design> training;
  training.push_back(test::make_tiny_design("aocv_t", 7));
  fw.train(training);
  const Design d = test::make_small_design("aocv_e", 8);
  const DesignResult r = fw.run_design(d);
  EXPECT_EQ(r.acc.structural_mismatches, 0u);
  EXPECT_LT(r.acc.max_err_ps, 0.5);
  EXPECT_LT(r.gen.model_pins, r.gen.ilm_pins);
}

}  // namespace
}  // namespace tmm
