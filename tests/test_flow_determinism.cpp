// Reproducibility: identical configs and seeds must give bit-identical
// training outcomes and models — the property every experiment harness
// in bench/ relies on.

#include <gtest/gtest.h>

#include <sstream>

#include "flow/framework.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(FlowDeterminism, TrainingIsBitReproducible) {
  auto run_once = [](std::string* weights) {
    FlowConfig cfg;
    cfg.data.ts.num_constraint_sets = 2;
    cfg.train.epochs = 40;
    Framework fw(cfg);
    std::vector<Design> training;
    training.push_back(test::make_tiny_design("det", 123));
    const TrainingSummary sum = fw.train(training);
    std::stringstream ss;
    fw.model().save(ss);
    *weights = ss.str();
    return sum;
  };
  std::string w1, w2;
  const TrainingSummary a = run_once(&w1);
  const TrainingSummary b = run_once(&w2);
  EXPECT_EQ(a.positives, b.positives);
  EXPECT_EQ(a.labeled_pins, b.labeled_pins);
  EXPECT_DOUBLE_EQ(a.report.final_loss, b.report.final_loss);
  EXPECT_EQ(w1, w2);
}

TEST(FlowDeterminism, GeneratedModelsAreIdenticalAcrossRuns) {
  FlowConfig cfg;
  cfg.label_all_remained = true;
  Framework fw(cfg);
  const Design d = test::make_tiny_design("det2", 124);
  const DesignResult r1 = fw.run_design(d);
  const DesignResult r2 = fw.run_design(d);
  EXPECT_EQ(r1.model_file_bytes, r2.model_file_bytes);
  EXPECT_DOUBLE_EQ(r1.acc.max_err_ps, r2.acc.max_err_ps);
  std::stringstream s1, s2;
  write_macro_model(r1.model, s1);
  write_macro_model(r2.model, s2);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(FlowDeterminism, EvalSetsDependOnlyOnSeedAndArity) {
  FlowConfig cfg;
  cfg.label_all_remained = true;
  cfg.eval_seed = 555;
  Framework a(cfg);
  Framework b(cfg);
  const Design d = test::make_tiny_design("det3", 125);
  EXPECT_DOUBLE_EQ(a.run_design(d).acc.max_err_ps,
                   b.run_design(d).acc.max_err_ps);
}

}  // namespace
}  // namespace tmm
