// Targeted equivalence test for the sense-split chain materialization:
// a hand-built chain through a non-unate gate (XOR) is merged away and
// the macro must reproduce the engine's per-transition timing even when
// rise and fall boundary conditions differ strongly.

#include <gtest/gtest.h>

#include "macro/evaluate.hpp"
#include "macro/merge.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

/// in0 -> INV -> XOR(A) ; in1 -> XOR(B) ; XOR -> BUF -> out0
Design make_nonunate_design() {
  const Library& lib = test::shared_library();
  Design d("nonunate", &lib);
  const CellId inv = lib.cell_id("INV_X1");
  const CellId xr = lib.cell_id("XOR2_X1");
  const CellId buf = lib.cell_id("BUF_X1");
  d.add_port("in0", TopPortDir::kPrimaryInput);
  d.add_port("in1", TopPortDir::kPrimaryInput);
  d.add_port("out0", TopPortDir::kPrimaryOutput);
  const PinId in0 = d.port(0).pin;
  const PinId in1 = d.port(1).pin;
  const PinId out0 = d.port(2).pin;

  const GateId g_inv = d.add_gate("u_inv", inv);
  const GateId g_xor = d.add_gate("u_xor", xr);
  const GateId g_buf = d.add_gate("u_buf", buf);
  auto pin = [&](GateId g, const char* p) {
    return d.gate(g).pins[lib.cell(d.gate(g).cell).port_index(p)];
  };

  const NetId n0 = d.add_net("n0", in0);
  d.connect_sink(n0, pin(g_inv, "A"), 0.1);
  const NetId n1 = d.add_net("n1", pin(g_inv, "Y"));
  d.connect_sink(n1, pin(g_xor, "A"), 0.1);
  const NetId n2 = d.add_net("n2", in1);
  d.connect_sink(n2, pin(g_xor, "B"), 0.1);
  const NetId n3 = d.add_net("n3", pin(g_xor, "Y"));
  d.connect_sink(n3, pin(g_buf, "A"), 0.1);
  const NetId n4 = d.add_net("n4", pin(g_buf, "Y"));
  d.connect_sink(n4, out0, 0.1);
  for (NetId n = 0; n < d.num_nets(); ++n) d.set_wire_cap(n, 0.4);
  d.validate();
  return d;
}

/// Boundary constraints with strongly asymmetric rise/fall values.
BoundaryConstraints asymmetric_constraints() {
  BoundaryConstraints bc = nominal_constraints(2, 1);
  bc.pi[0].at(kLate, kRise) = 40.0;
  bc.pi[0].at(kLate, kFall) = 5.0;
  bc.pi[0].slew(kLate, kRise) = 45.0;
  bc.pi[0].slew(kLate, kFall) = 4.0;
  bc.pi[0].at(kEarly, kRise) = 35.0;
  bc.pi[0].at(kEarly, kFall) = 2.0;
  bc.pi[0].slew(kEarly, kRise) = 30.0;
  bc.pi[0].slew(kEarly, kFall) = 3.0;
  bc.pi[1].at(kLate, kRise) = 12.0;
  bc.pi[1].at(kLate, kFall) = 60.0;
  bc.pi[1].slew(kLate, kRise) = 8.0;
  bc.pi[1].slew(kLate, kFall) = 55.0;
  return bc;
}

TEST(NonUnateMerge, SenseSplitReproducesPerTransitionTiming) {
  const Design d = make_nonunate_design();
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph merged = build_timing_graph(d);
  std::vector<bool> keep(merged.num_nodes(), false);
  const MergeStats stats = merge_insensitive_pins(merged, keep);
  EXPECT_GT(stats.pins_removed, 0u);

  // A merged chain through the XOR must exist as a pos/neg arc pair.
  std::size_t pos_arcs = 0;
  std::size_t neg_arcs = 0;
  for (ArcId a = 0; a < merged.num_arcs(); ++a) {
    const auto& arc = merged.arc(a);
    if (arc.dead || arc.kind != GraphArcKind::kCell) continue;
    if (arc.sense == ArcSense::kPositiveUnate) ++pos_arcs;
    if (arc.sense == ArcSense::kNegativeUnate) ++neg_arcs;
  }
  EXPECT_GT(pos_arcs, 0u);
  EXPECT_GT(neg_arcs, 0u);

  const BoundaryConstraints bc = asymmetric_constraints();
  Sta fs(flat, Sta::Options{});
  Sta ms(merged, Sta::Options{});
  fs.run(bc);
  ms.run(bc);
  const NodeId out = d.primary_outputs()[0];
  for (unsigned el = 0; el < kNumEl; ++el) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      EXPECT_NEAR(ms.timing(out).at(el, rf), fs.timing(out).at(el, rf), 0.2)
          << "el=" << el << " rf=" << rf;
    }
  }
  // Sanity: the asymmetric inputs really produce different rise/fall
  // arrivals at the output (otherwise this test would prove nothing).
  EXPECT_GT(std::abs(fs.timing(out).at(kLate, kRise) -
                     fs.timing(out).at(kLate, kFall)),
            1.0);
}

TEST(NonUnateMerge, UnateChainsStaySingleArc) {
  // A pure buffer chain (positive-unate end to end) must merge into a
  // single positive-unate arc — the sense split only triggers for
  // genuinely non-unate chains.
  const Design d = test::make_buffer_chain(4);
  TimingGraph merged = build_timing_graph(d);
  std::vector<bool> keep(merged.num_nodes(), false);
  merge_insensitive_pins(merged, keep);
  for (ArcId a = 0; a < merged.num_arcs(); ++a) {
    const auto& arc = merged.arc(a);
    if (arc.dead || arc.kind != GraphArcKind::kCell) continue;
    EXPECT_EQ(arc.sense, ArcSense::kPositiveUnate);
  }
}

}  // namespace
}  // namespace tmm
