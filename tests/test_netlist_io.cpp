#include <gtest/gtest.h>

#include <sstream>

#include "macro/evaluate.hpp"
#include "netlist/netlist_io.hpp"
#include "sta/propagation.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(NetlistIo, RoundTripPreservesStructure) {
  const Design d = test::make_small_design("io", 42);
  std::stringstream ss;
  const std::size_t bytes = write_design(d, ss);
  EXPECT_GT(bytes, 1000u);
  const Design back = read_design(ss, test::shared_library());
  EXPECT_EQ(back.name(), d.name());
  ASSERT_EQ(back.num_pins(), d.num_pins());
  ASSERT_EQ(back.num_gates(), d.num_gates());
  ASSERT_EQ(back.num_nets(), d.num_nets());
  ASSERT_EQ(back.num_ports(), d.num_ports());
  for (NetId n = 0; n < d.num_nets(); ++n) {
    EXPECT_EQ(back.net(n).driver, d.net(n).driver);
    EXPECT_EQ(back.net(n).sinks, d.net(n).sinks);
    EXPECT_DOUBLE_EQ(back.net(n).wire_cap_ff, d.net(n).wire_cap_ff);
    for (std::size_t k = 0; k < d.net(n).sinks.size(); ++k)
      EXPECT_DOUBLE_EQ(back.net(n).sink_res_kohm[k],
                       d.net(n).sink_res_kohm[k]);
  }
  EXPECT_EQ(back.clock_root(), d.clock_root());
}

TEST(NetlistIo, RoundTripPreservesTiming) {
  const Design d = test::make_small_design("iot", 43);
  std::stringstream ss;
  write_design(d, ss);
  const Design back = read_design(ss, test::shared_library());

  const TimingGraph ga = build_timing_graph(d);
  const TimingGraph gb = build_timing_graph(back);
  Rng rng(77);
  const BoundaryConstraints bc = random_constraints(
      d.primary_inputs().size(), d.primary_outputs().size(), {}, rng);
  Sta sa(ga, {.cppr = true});
  Sta sb(gb, {.cppr = true});
  sa.run(bc);
  sb.run(bc);
  const SnapshotDiff diff =
      diff_snapshots(sa.boundary_snapshot(), sb.boundary_snapshot());
  EXPECT_LT(diff.max_abs, 1e-6);
  EXPECT_EQ(diff.mismatched, 0u);
}

TEST(NetlistIo, RejectsWrongLibrary) {
  const Design d = test::make_tiny_design();
  std::stringstream ss;
  write_design(d, ss);
  const Library other("some_other_lib");
  EXPECT_THROW(read_design(ss, other), std::runtime_error);
}

TEST(NetlistIo, RejectsGarbage) {
  std::stringstream ss("not a design at all");
  EXPECT_THROW(read_design(ss, test::shared_library()), std::runtime_error);
}

TEST(NetlistIo, RejectsTruncated) {
  const Design d = test::make_tiny_design();
  std::stringstream ss;
  write_design(d, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_design(cut, test::shared_library()), std::exception);
}

}  // namespace
}  // namespace tmm
