module t(input a, output y);
  /* this comment never ends
  NAND2_X1 g0 (.A(a), .B(a), .Y(y));
endmodule
