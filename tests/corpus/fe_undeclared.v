module t(input a, output y);
  NAND2_X1 g0 (.A(a), .B(ghost), .Y(y));
endmodule
