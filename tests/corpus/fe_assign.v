module t(input a, output y);
  assign y = a;
endmodule
