#include <gtest/gtest.h>

#include "liberty/library_gen.hpp"
#include "liberty/lut.hpp"
#include "util/rng.hpp"

namespace tmm {
namespace {

TEST(Lut, ScalarAlwaysReturnsValue) {
  const Lut l = Lut::scalar(3.5);
  EXPECT_TRUE(l.is_scalar());
  EXPECT_DOUBLE_EQ(l.lookup(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(l.lookup(100, -5), 3.5);
}

TEST(Lut, Table1dExactAtGridPoints) {
  const Lut l = Lut::table1d({1, 2, 4}, {10, 20, 40});
  EXPECT_DOUBLE_EQ(l.lookup(1, 0), 10);
  EXPECT_DOUBLE_EQ(l.lookup(2, 99), 20);
  EXPECT_DOUBLE_EQ(l.lookup(4, 0), 40);
}

TEST(Lut, Table1dInterpolates) {
  const Lut l = Lut::table1d({0, 10}, {0, 100});
  EXPECT_DOUBLE_EQ(l.lookup(2.5, 0), 25.0);
  EXPECT_DOUBLE_EQ(l.lookup(7.5, 0), 75.0);
}

TEST(Lut, Table1dExtrapolatesLinearly) {
  const Lut l = Lut::table1d({0, 10}, {0, 100});
  EXPECT_DOUBLE_EQ(l.lookup(-5, 0), -50.0);
  EXPECT_DOUBLE_EQ(l.lookup(20, 0), 200.0);
}

TEST(Lut, Table2dExactAtGridPoints) {
  const Lut l = Lut::table2d({1, 2}, {10, 20}, {100, 200, 300, 400});
  EXPECT_DOUBLE_EQ(l.lookup(1, 10), 100);
  EXPECT_DOUBLE_EQ(l.lookup(1, 20), 200);
  EXPECT_DOUBLE_EQ(l.lookup(2, 10), 300);
  EXPECT_DOUBLE_EQ(l.lookup(2, 20), 400);
}

TEST(Lut, Table2dBilinearCenter) {
  const Lut l = Lut::table2d({0, 2}, {0, 2}, {0, 2, 2, 4});  // f = x + y
  EXPECT_DOUBLE_EQ(l.lookup(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(l.lookup(0.5, 1.5), 2.0);
}

TEST(Lut, Table2dCornerExtrapolation) {
  const Lut l = Lut::table2d({0, 1}, {0, 1}, {0, 1, 1, 2});  // f = x + y
  EXPECT_DOUBLE_EQ(l.lookup(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(l.lookup(-1, 0), -1.0);
}

// --- corner interpolation ---------------------------------------------
//
// Pins down the exact behavior at and beyond grid corners: bilinear in
// the interior, and *linear* extrapolation outside the grid using the
// clamped end segment's slope (Liberty lu_table semantics). These are
// the cases the serving engine's quantized cache keys exercise hardest,
// since quantization can push constraints right onto grid edges.

TEST(Lut, Table1dEndSegmentSlopeGovernsExtrapolation) {
  // Slopes differ per segment: [0,10]→10/unit, [10,30]→5/unit.
  const Lut l = Lut::table1d({0, 10, 30}, {0, 100, 200});
  // Below range: first segment's slope extends leftward.
  EXPECT_DOUBLE_EQ(l.lookup(-2, 0), -20.0);
  // Above range: last segment's slope extends rightward.
  EXPECT_DOUBLE_EQ(l.lookup(40, 0), 250.0);
  // Exactly at the corners: grid values, no interpolation error.
  EXPECT_DOUBLE_EQ(l.lookup(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(l.lookup(30, 0), 200.0);
}

TEST(Lut, Table2dExactAtAllFourCorners) {
  const Lut l = Lut::table2d({1, 2, 4}, {10, 20, 40},
                             {1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(l.lookup(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(l.lookup(1, 40), 3.0);
  EXPECT_DOUBLE_EQ(l.lookup(4, 10), 7.0);
  EXPECT_DOUBLE_EQ(l.lookup(4, 40), 9.0);
}

TEST(Lut, Table2dEdgeExtrapolationOneAxisOutside) {
  // f = x + y on a 2x2 grid; one coordinate inside, the other outside.
  const Lut l = Lut::table2d({0, 1}, {0, 1}, {0, 1, 1, 2});
  EXPECT_DOUBLE_EQ(l.lookup(0.5, 3), 3.5);   // load beyond range
  EXPECT_DOUBLE_EQ(l.lookup(3, 0.5), 3.5);   // slew beyond range
  EXPECT_DOUBLE_EQ(l.lookup(0.5, -2), -1.5); // load below range
  EXPECT_DOUBLE_EQ(l.lookup(-2, 0.5), -1.5); // slew below range
}

TEST(Lut, Table2dCornerExtrapolationUsesEndSegmentPlane) {
  // 3x3 grid whose end segments have different slopes than the interior:
  // f(x,y) selected so the last x-segment [2,4] and last y-segment
  // [20,40] define the plane used past the (4,40) corner.
  const Lut l = Lut::table2d({0, 2, 4}, {0, 20, 40},
                             {0, 0, 0, 0, 0, 0, 0, 0, 8});
  // Inside the last cell: bilinear toward the lone nonzero corner.
  EXPECT_DOUBLE_EQ(l.lookup(3, 30), 2.0);  // (0.5)*(0.5)*8
  // Past the corner on both axes: same bilinear form extended,
  // frac_x = (6-2)/(4-2) = 2, frac_y = (60-20)/(40-20) = 2 → 2*2*8.
  EXPECT_DOUBLE_EQ(l.lookup(6, 60), 32.0);
}

TEST(Lut, Table2dOnGridLineInterpolatesAlongOtherAxis) {
  const Lut l = Lut::table2d({1, 3}, {10, 30}, {0, 20, 40, 60});
  // Exactly on slew grid line x=3: pure 1-D interpolation in load.
  EXPECT_DOUBLE_EQ(l.lookup(3, 20), 50.0);
  // Exactly on load grid line y=10: pure 1-D interpolation in slew.
  EXPECT_DOUBLE_EQ(l.lookup(2, 10), 20.0);
}

TEST(InterpLinear, MatchesSegmentEndpointsAndExtends) {
  const std::vector<double> axis{0, 10, 30};
  const std::vector<double> y{0, 100, 200};
  EXPECT_DOUBLE_EQ(interp::linear(axis, y, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(interp::linear(axis, y, 20.0), 150.0);
  EXPECT_DOUBLE_EQ(interp::linear(axis, y, 50.0), 300.0);
  EXPECT_DOUBLE_EQ(interp::linear(axis, y, -1.0), -10.0);
}

TEST(Lut, RejectsMalformedInputs) {
  EXPECT_THROW(Lut::table1d({1}, {2}), std::invalid_argument);
  EXPECT_THROW(Lut::table1d({2, 1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(Lut::table1d({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(Lut::table2d({1, 2}, {1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(Lut::table2d({1, 2}, {2, 1}, {1, 2, 3, 4}),
               std::invalid_argument);
}

TEST(Lut, StorageDoublesCounts) {
  EXPECT_EQ(Lut::scalar(1).storage_doubles(), 1u);
  EXPECT_EQ(Lut::table1d({1, 2}, {1, 2}).storage_doubles(), 4u);
  EXPECT_EQ(Lut::table2d({1, 2}, {1, 2, 3}, std::vector<double>(6, 0.0))
                .storage_doubles(),
            11u);
}

TEST(InterpSegment, FindsEnclosingSegment) {
  const std::vector<double> axis{1, 2, 4, 8};
  EXPECT_EQ(interp::segment(axis, 0.5), 0u);
  EXPECT_EQ(interp::segment(axis, 1.5), 0u);
  EXPECT_EQ(interp::segment(axis, 3.0), 1u);
  EXPECT_EQ(interp::segment(axis, 5.0), 2u);
  EXPECT_EQ(interp::segment(axis, 100.0), 2u);
}

// --- generated surfaces ----------------------------------------------

class GeneratedSurface : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedSurface, LutApproximatesAnalyticModelBetweenGridPoints) {
  LibraryGenConfig cfg;
  DriveModel model;
  model.intrinsic_ps = 8.0 + GetParam();
  model.res_kohm = 1.5 + 0.3 * GetParam();
  ElRf<Lut> delay;
  ElRf<Lut> slew;
  characterize(model, cfg, delay, slew);
  Rng rng(100 + GetParam());
  for (int i = 0; i < 200; ++i) {
    const double s = rng.uniform(1.0, 120.0);
    const double c = rng.uniform(0.5, 32.0);
    const double exact = model.delay(s, c);
    const double approx = delay(kLate, kRise).lookup(s, c);
    EXPECT_NEAR(approx, exact, 0.05 * exact + 0.2)
        << "slew=" << s << " load=" << c;
  }
}

TEST_P(GeneratedSurface, MonotoneInSlewAndLoad) {
  LibraryGenConfig cfg;
  DriveModel model;
  model.slew_coef = 0.1 + 0.02 * GetParam();
  ElRf<Lut> delay;
  ElRf<Lut> slew;
  characterize(model, cfg, delay, slew);
  const auto& lut = delay(kLate, kFall);
  for (double s = 1; s < 110; s += 7)
    for (double c = 0.5; c < 30; c += 3) {
      EXPECT_LE(lut.lookup(s, c), lut.lookup(s + 5, c) + 1e-9);
      EXPECT_LE(lut.lookup(s, c), lut.lookup(s, c + 2) + 1e-9);
    }
}

TEST_P(GeneratedSurface, EarlyBelowLate) {
  LibraryGenConfig cfg;
  DriveModel model;
  ElRf<Lut> delay;
  ElRf<Lut> slew;
  model.intrinsic_ps += GetParam();
  characterize(model, cfg, delay, slew);
  Rng rng(7 + GetParam());
  for (int i = 0; i < 100; ++i) {
    const double s = rng.uniform(1.0, 120.0);
    const double c = rng.uniform(0.5, 32.0);
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      EXPECT_LT(delay(kEarly, rf).lookup(s, c), delay(kLate, rf).lookup(s, c));
      EXPECT_LT(slew(kEarly, rf).lookup(s, c), slew(kLate, rf).lookup(s, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratedSurface, ::testing::Range(0, 5));

}  // namespace
}  // namespace tmm
