// Live serving telemetry (docs/OBSERVABILITY.md): sliding-window
// aggregation driven by a fake clock, the lock-free request flight
// recorder (including the TSan target with concurrent writers and
// drains), protocol-v2 admin round-trips, the ServeStats slow-request
// log, and end-to-end kStats/kHealth/kFlightDump against a live server
// plus the dump-on-fault hook.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "macro/baselines.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sliding_window.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "serve/tmb.hpp"
#include "sta/timing_graph.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kSec = 1'000'000;  // fake-clock microseconds

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "tmm_stats_XXXXXX").string();
    char* p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str(const char* leaf = nullptr) const {
    return leaf ? (path / leaf).string() : path.string();
  }
};

/// Anchor-scan a rendered stats JSON for `"key": <number>` after the
/// given sequence of section anchors (e.g. {"global", "10s"}). The
/// renderer's key order is fixed, so plain forward scanning is exact.
double json_value_after(const std::string& json,
                        std::initializer_list<const char*> anchors,
                        const char* key) {
  std::size_t pos = 0;
  for (const char* a : anchors) {
    const std::string quoted = std::string("\"") + a + "\"";
    pos = json.find(quoted, pos);
    EXPECT_NE(pos, std::string::npos) << "missing anchor " << a;
    if (pos == std::string::npos) return -1.0;
    pos += quoted.size();
  }
  const std::string quoted_key = std::string("\"") + key + "\":";
  pos = json.find(quoted_key, pos);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + quoted_key.size(), nullptr);
}

fault::ErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const fault::FlowError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected FlowError";
  return fault::ErrorCode::kOk;
}

// ------------------------------------------------------ latency buckets

TEST(LatencyBuckets, LogSpacedBoundsCoverTheRangePerDecade) {
  const std::vector<double> b = obs::log_spaced_bounds(1.0, 1e7, 5);
  ASSERT_GE(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_GE(b.back(), 1e7);
  const double step = std::pow(10.0, 1.0 / 5);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]);  // strictly ascending
    EXPECT_NEAR(b[i] / b[i - 1], step, 1e-9);
  }
  // The serve default is exactly this shape.
  EXPECT_EQ(serve::default_latency_bounds(), b);
}

TEST(LatencyBuckets, HistogramJsonSnapshotEmitsP999) {
  static const double kBounds[] = {1.0, 10.0, 100.0, 1000.0};
  obs::Histogram& h = obs::histogram("test.serve_stats_p999", kBounds);
  for (int i = 0; i < 990; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(500.0);  // the 1% tail
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string json = os.str();
  const double p99 = json_value_after(json, {"test.serve_stats_p999"}, "p99");
  const double p999 =
      json_value_after(json, {"test.serve_stats_p999"}, "p999");
  EXPECT_LE(p99, 10.0);    // bulk bucket (rank lands on its upper edge)
  EXPECT_GT(p999, 100.0);  // only p99.9 sees the tail
}

// ------------------------------------------------------- sliding window

TEST(SlidingWindow, CounterDecaysOutOfShortWindowButNotLongOne) {
  obs::WindowedCounter c;
  const std::uint64_t t0 = 1000 * kSec;
  c.add(t0, 5);
  c.add(t0 + kSec / 2, 3);
  EXPECT_EQ(c.sum(t0 + kSec / 2, 10.0), 8u);
  // 60 s later: outside the 10 s window, inside the 300 s one.
  const std::uint64_t t1 = t0 + 60 * kSec;
  EXPECT_EQ(c.sum(t1, 10.0), 0u);
  EXPECT_EQ(c.sum(t1, 300.0), 8u);
  EXPECT_NEAR(c.rate(t1, 300.0), 8.0 / 300.0, 1e-12);
  // Past the ring's retention (330 slots): gone from every window.
  const std::uint64_t t2 = t0 + 400 * kSec;
  EXPECT_EQ(c.sum(t2, 300.0), 0u);
}

TEST(SlidingWindow, CounterSlotRecyclingDropsLateWrites) {
  obs::WindowedCounter c(4);  // tiny ring: epoch e and e+4 share a slot
  const std::uint64_t t0 = 100 * kSec;
  c.add(t0, 7);
  c.add(t0 + 4 * kSec, 2);  // recycles t0's slot
  EXPECT_EQ(c.sum(t0 + 4 * kSec, 1.0), 2u);
  // A straggler stamping the recycled second is dropped, not merged
  // into the wrong window.
  c.add(t0, 100);
  EXPECT_EQ(c.sum(t0 + 4 * kSec, 4.0), 2u);
}

TEST(SlidingWindow, HistogramWindowedQuantilesTrackRecentTrafficOnly) {
  static const double kBounds[] = {10.0, 100.0, 1000.0, 10000.0};
  obs::WindowedHistogram h(kBounds);
  const std::uint64_t t0 = 2000 * kSec;
  for (int i = 0; i < 100; ++i) h.observe(t0, 5000.0);  // slow era
  const std::uint64_t t1 = t0 + 120 * kSec;
  for (int i = 0; i < 100; ++i) h.observe(t1, 50.0);  // fast era
  // The 10 s view sees only the fast era; the 300 s view merges both.
  EXPECT_LT(h.quantile(t1, 10.0, 0.99), 100.0);
  EXPECT_GT(h.quantile(t1, 300.0, 0.99), 1000.0);
  const obs::WindowedHistogram::Snapshot recent = h.snapshot(t1, 10.0);
  EXPECT_EQ(recent.count, 100u);
  EXPECT_NEAR(recent.mean(), 50.0, 1e-9);
  const obs::WindowedHistogram::Snapshot both = h.snapshot(t1, 300.0);
  EXPECT_EQ(both.count, 200u);
  // An empty window is empty, not an average of history.
  EXPECT_EQ(h.snapshot(t1 + 30 * kSec, 10.0).count, 0u);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorder, DisabledRecordIsANoop) {
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
  obs::FlightRecord rec;
  rec.request_id = 1;
  obs::flight_record(rec);
  EXPECT_FALSE(obs::flight_recorder_enabled());
  EXPECT_EQ(obs::flight_total_recorded(), 0u);
  EXPECT_TRUE(obs::flight_snapshot().empty());
}

TEST(FlightRecorder, WraparoundKeepsTheLastNInSequenceOrder) {
  obs::set_flight_recorder_enabled(true, 8);
  obs::reset_flight_recorder();
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::FlightRecord rec;
    rec.request_id = i;
    rec.total_us = static_cast<float>(i);
    rec.set_model("blk");
    rec.set_status("ok");
    obs::flight_record(rec);
  }
  EXPECT_EQ(obs::flight_total_recorded(), 20u);
  const std::vector<obs::FlightRecord> snap = obs::flight_snapshot();
  ASSERT_EQ(snap.size(), 8u);  // ring capacity, not total
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].request_id, 12 + i);  // the last 8, oldest first
    if (i > 0) {
      EXPECT_GT(snap[i].seq, snap[i - 1].seq);
    }
  }
  // A quiesced recorder drains deterministically.
  const std::vector<obs::FlightRecord> again = obs::flight_snapshot();
  ASSERT_EQ(again.size(), snap.size());
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(again[i].seq, snap[i].seq);
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
}

TEST(FlightRecorder, TextFieldsTruncatePreservingThePrefix) {
  obs::FlightRecord rec;
  rec.set_model("a_model_name_well_past_sixteen_chars");
  rec.set_status("deadline_exceeded");
  EXPECT_EQ(rec.model_str(), "a_model_name_we");  // 15 chars + NUL
  EXPECT_EQ(rec.status_str(), "deadline_ex");     // 11 chars + NUL
  rec.set_model(nullptr);
  EXPECT_EQ(rec.model_str(), "");
}

TEST(FlightRecorder, DumpJsonAndAtomicFileWrite) {
  obs::set_flight_recorder_enabled(true, 4);
  obs::reset_flight_recorder();
  obs::FlightRecord rec;
  rec.request_id = 42;
  rec.set_model("blk");
  rec.set_status("ok");
  rec.flags = obs::kFlightCacheHit;
  obs::flight_record(rec);
  std::ostringstream os;
  obs::write_flight_dump_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"records_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"model\": \"blk\""), std::string::npos);

  TempDir dir;
  EXPECT_TRUE(obs::write_flight_dump_file(dir.str("dump.json")));
  std::ifstream in(dir.str("dump.json"));
  std::stringstream file_body;
  file_body << in.rdbuf();
  EXPECT_EQ(file_body.str(), json);
  // I/O failure reports false instead of throwing: the dump-on-fault
  // hook must never turn a fault into a second failure.
  EXPECT_FALSE(
      obs::write_flight_dump_file(dir.str("no/such/subdir/dump.json")));
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
}

// The TSan target: writers on their own rings, a drainer copying them
// through the per-slot seqlocks, and a reset racing both. Every
// snapshotted record must be internally consistent (never torn).
TEST(FlightRecorder, ConcurrentWritersAndDrainsNeverTearRecords) {
  obs::set_flight_recorder_enabled(true, 64);
  obs::reset_flight_recorder();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> draining{true};
  std::atomic<std::uint64_t> torn{0};

  std::thread drainer([&] {
    while (draining.load(std::memory_order_relaxed)) {
      for (const obs::FlightRecord& rec : obs::flight_snapshot()) {
        // request_id encodes (writer, i); total_us mirrors i. A torn
        // copy would mix words from two writes of the same slot.
        const std::uint64_t w = rec.request_id / 1'000'000;
        const std::uint64_t i = rec.request_id % 1'000'000;
        const std::string model = "t" + std::to_string(w);
        if (rec.model_str() != model ||
            rec.total_us != static_cast<float>(i))
          torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      const std::string model = "t" + std::to_string(w);
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        obs::FlightRecord rec;
        rec.request_id = static_cast<std::uint64_t>(w) * 1'000'000 + i;
        rec.total_us = static_cast<float>(i);
        rec.set_model(model.c_str());
        rec.set_status("ok");
        obs::flight_record(rec);
      }
    });
  }
  for (auto& t : writers) t.join();
  draining.store(false, std::memory_order_relaxed);
  drainer.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(obs::flight_total_recorded(), kWriters * kPerWriter);
  const std::vector<obs::FlightRecord> snap = obs::flight_snapshot();
  EXPECT_EQ(snap.size(), static_cast<std::size_t>(kWriters) * 64);
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
}

// ---------------------------------------------------------- protocol v2

TEST(ProtocolV2, AdminRequestKindsRoundTrip) {
  for (const serve::RequestKind kind :
       {serve::RequestKind::kStats, serve::RequestKind::kHealth,
        serve::RequestKind::kFlightDump}) {
    serve::Request req;
    req.request_id = 99;
    req.kind = kind;  // admin kinds carry no model and zero ports
    const serve::Request back =
        serve::decode_request(serve::encode_request(req));
    EXPECT_EQ(back.kind, kind);
    EXPECT_EQ(back.request_id, 99u);
    EXPECT_TRUE(back.model.empty());
    EXPECT_TRUE(back.bc.pi.empty());
  }
  EXPECT_STREQ(serve::request_kind_name(serve::RequestKind::kStats),
               "stats");
  EXPECT_STREQ(serve::request_kind_name(serve::RequestKind::kFlightDump),
               "flight_dump");
}

TEST(ProtocolV2, AdminTextResponseRoundTrips) {
  serve::Response resp;
  resp.request_id = 7;
  resp.admin = true;
  resp.text = "{\"global\": {\"10s\": {\"qps\": 12.5}}}";
  const serve::Response back =
      serve::decode_response(serve::encode_response(resp));
  EXPECT_EQ(back.request_id, 7u);
  EXPECT_EQ(back.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(back.admin);
  EXPECT_EQ(back.text, resp.text);
  EXPECT_EQ(back.snap.num_ports, 0u);
}

TEST(ProtocolV2, RejectsUnknownRequestKind) {
  serve::Request req;
  req.kind = serve::RequestKind::kStats;
  std::string payload = serve::encode_request(req);
  // The kind word sits after magic(4) + version(2) + flags(2).
  payload[8] = 0x07;
  EXPECT_EQ(code_of([&] {
              static_cast<void>(serve::decode_request(payload));
            }),
            fault::ErrorCode::kParse);
}

// ----------------------------------------------------------- ServeStats

serve::RequestTimings timings_us(double total) {
  serve::RequestTimings t;
  t.parse_us = 1.0;
  t.eval_us = total / 2;
  t.write_us = 1.0;
  t.total_us = total;
  return t;
}

TEST(ServeStats, WindowedViewsDecayWhileLifetimeTotalsPersist) {
  serve::ServeStats st({"a", "b"}, /*start_us=*/0);
  const std::uint64_t t0 = 50 * kSec;
  for (int i = 0; i < 20; ++i)
    st.record(t0, "a", serve::ResponseStatus::kOk, /*cache_hit=*/i % 2 == 0,
              serve::ShedKind::kNone, timings_us(100.0), i);
  for (int i = 0; i < 5; ++i)
    st.record(t0, "b", serve::ResponseStatus::kInternalError, false,
              serve::ShedKind::kNone, timings_us(9000.0), 100 + i);

  const std::string fresh = st.stats_json(t0);
  EXPECT_EQ(json_value_after(fresh, {"global", "10s"}, "count"), 25.0);
  EXPECT_NEAR(json_value_after(fresh, {"global", "10s"}, "qps"), 2.5, 1e-9);
  EXPECT_NEAR(json_value_after(fresh, {"global", "10s"}, "error_rate"),
              5.0 / 25.0, 1e-9);
  // Hit-rate is over requests that consulted the cache (the ok ones):
  // 10 hits / 20 ok, not 10 / 25.
  EXPECT_NEAR(json_value_after(fresh, {"global", "10s"}, "cache_hit_rate"),
              0.5, 1e-9);
  // Per-model split: "a" is clean and fast, "b" is all errors and slow.
  EXPECT_EQ(json_value_after(fresh, {"models", "a", "10s"}, "count"), 20.0);
  EXPECT_EQ(json_value_after(fresh, {"models", "a", "10s"}, "error_rate"),
            0.0);
  EXPECT_EQ(json_value_after(fresh, {"models", "b", "10s"}, "error_rate"),
            1.0);
  EXPECT_GT(json_value_after(fresh, {"models", "b", "10s"}, "p50_us"),
            json_value_after(fresh, {"models", "a", "10s"}, "p99_us"));

  // 60 s later the 10 s view is empty, the 300 s view still sees it.
  const std::string later = st.stats_json(t0 + 60 * kSec);
  EXPECT_EQ(json_value_after(later, {"global", "10s"}, "count"), 0.0);
  EXPECT_EQ(json_value_after(later, {"global", "300s"}, "count"), 25.0);
  // 400 s later every window is empty but lifetime totals persist —
  // windowed stats, not lifetime averages in disguise.
  const std::string stale = st.stats_json(t0 + 400 * kSec);
  EXPECT_EQ(json_value_after(stale, {"global", "300s"}, "count"), 0.0);
  EXPECT_EQ(json_value_after(stale, {"lifetime"}, "requests"), 25.0);
  EXPECT_EQ(json_value_after(stale, {"lifetime"}, "errors"), 5.0);
  EXPECT_EQ(json_value_after(stale, {"lifetime"}, "cache_hits"), 10.0);
}

TEST(ServeStats, ShedRequestsCountInShedAndErrorRates) {
  serve::ServeStats st({"a"}, 0);
  const std::uint64_t t0 = 10 * kSec;
  st.record(t0, "a", serve::ResponseStatus::kOk, false,
            serve::ShedKind::kNone, timings_us(50.0), 1);
  st.record(t0, "a", serve::ResponseStatus::kShuttingDown, false,
            serve::ShedKind::kDraining, timings_us(5.0), 2);
  st.record(t0, "a", serve::ResponseStatus::kOverloaded, false,
            serve::ShedKind::kOverload, timings_us(5.0), 3);
  st.record(t0, "a", serve::ResponseStatus::kOverloaded, false,
            serve::ShedKind::kOverload, timings_us(5.0), 4);
  const std::string json = st.stats_json(t0);
  EXPECT_NEAR(json_value_after(json, {"global", "10s"}, "shed_rate"), 0.75,
              1e-9);
  EXPECT_NEAR(json_value_after(json, {"global", "10s"}, "error_rate"), 0.75,
              1e-9);
  // The split windows tell draining and overload shedding apart.
  EXPECT_NEAR(
      json_value_after(json, {"global", "10s"}, "shed_draining_rate"), 0.25,
      1e-9);
  EXPECT_NEAR(
      json_value_after(json, {"global", "10s"}, "shed_overload_rate"), 0.5,
      1e-9);
  EXPECT_EQ(json_value_after(json, {"lifetime"}, "shed_overload"), 2.0);
  EXPECT_EQ(json_value_after(json, {"lifetime"}, "shed_draining"), 1.0);
  EXPECT_EQ(json_value_after(json, {"lifetime"}, "shed"), 3.0);
}

TEST(ServeStats, SlowLogHonorsThresholdAndBoundedRing) {
  serve::ServeStatsOptions opt;
  opt.slow_threshold_us = 100;
  opt.slow_sample = 1u << 30;  // retain in the ring, never log_warn
  opt.slow_keep = 4;
  serve::ServeStats st({"a"}, 0, opt);
  const std::uint64_t t0 = 20 * kSec;
  for (int i = 0; i < 10; ++i)  // under threshold: not slow
    st.record(t0, "a", serve::ResponseStatus::kOk, false,
              serve::ShedKind::kNone, timings_us(50.0), i);
  EXPECT_EQ(st.slow_total(), 0u);
  for (int i = 0; i < 6; ++i)  // over threshold: slow, ring keeps last 4
    st.record(t0, "a", serve::ResponseStatus::kOk, false,
              serve::ShedKind::kNone, timings_us(200.0 + i), 100 + i);
  EXPECT_EQ(st.slow_total(), 6u);
  const std::string json = st.stats_json(t0);
  EXPECT_EQ(json_value_after(json, {"slow"}, "threshold_us"), 100.0);
  EXPECT_EQ(json_value_after(json, {"slow"}, "total"), 6.0);
  for (int id : {102, 103, 104, 105})
    EXPECT_NE(json.find("\"request_id\": " + std::to_string(id)),
              std::string::npos);
  EXPECT_EQ(json.find("\"request_id\": 100"), std::string::npos);
  EXPECT_EQ(json.find("\"request_id\": 101"), std::string::npos);
}

TEST(ServeStats, HealthJsonReportsDrainingAndModelCounts) {
  serve::ServeStats st({"a"}, /*start_us=*/kSec);
  const std::string ok = st.health_json(3 * kSec, /*draining=*/false,
                                        /*models_loaded=*/2,
                                        /*models_failed=*/1);
  EXPECT_NE(ok.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_EQ(json_value_after(ok, {}, "models_loaded"), 2.0);
  EXPECT_EQ(json_value_after(ok, {}, "models_failed"), 1.0);
  EXPECT_NEAR(json_value_after(ok, {}, "uptime_s"), 2.0, 1e-9);
  const std::string draining = st.health_json(3 * kSec, true, 2, 0);
  EXPECT_NE(draining.find("\"status\": \"draining\""), std::string::npos);
}

// ------------------------------------------------- live admin channel

MacroModel make_model(const char* name, std::uint64_t seed = 21) {
  const Design d = test::make_tiny_design(name, seed);
  const TimingGraph flat = build_timing_graph(d);
  MacroModel m = generate_itimerm_model(flat);
  m.design_name = name;
  return m;
}

BoundaryConstraints constraints_for(const MacroModel& m, std::uint64_t seed) {
  Rng rng(seed);
  return random_constraints(m.graph.primary_inputs().size(),
                            m.graph.primary_outputs().size(), {}, rng);
}

struct ServeFixture {
  TempDir dir;
  serve::ModelRegistry reg;
  ServeFixture() {
    serve::write_tmb_file(make_model("blk", 31), dir.str("blk.tmb"));
    reg.load_directory(dir.str());
  }
  const MacroModel& model() const { return reg.find("blk")->model; }
};

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

serve::Response ask(int fd, const serve::Request& req) {
  serve::write_frame(fd, serve::encode_request(req));
  std::string frame;
  EXPECT_TRUE(serve::read_frame(fd, frame));
  return serve::decode_response(frame);
}

TEST(ServeAdmin, StatsHealthAndFlightDumpAnswerOverTheWire) {
  obs::reset_flight_recorder();
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  opt.num_threads = 2;
  opt.flight_capacity = 32;
  serve::Server server(eval, opt);
  server.start();
  std::thread serving([&] { server.serve(); });

  const int fd = connect_loopback(server.bound_port());
  for (int i = 0; i < 5; ++i) {
    serve::Request req;
    req.request_id = i;
    req.model = "blk";
    req.bc = constraints_for(fx.model(), 7);  // same key: hits after cold
    EXPECT_EQ(ask(fd, req).status, serve::ResponseStatus::kOk);
  }

  serve::Request stats;
  stats.request_id = 100;
  stats.kind = serve::RequestKind::kStats;
  const serve::Response stats_resp = ask(fd, stats);
  EXPECT_EQ(stats_resp.status, serve::ResponseStatus::kOk);
  EXPECT_TRUE(stats_resp.admin);
  EXPECT_EQ(json_value_after(stats_resp.text, {"global", "10s"}, "count"),
            5.0);
  EXPECT_NEAR(
      json_value_after(stats_resp.text, {"global", "10s"}, "cache_hit_rate"),
      4.0 / 5.0, 1e-9);
  EXPECT_EQ(json_value_after(stats_resp.text, {"models", "blk", "10s"},
                             "count"),
            5.0);

  serve::Request health;
  health.kind = serve::RequestKind::kHealth;
  const serve::Response health_resp = ask(fd, health);
  EXPECT_TRUE(health_resp.admin);
  EXPECT_NE(health_resp.text.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_EQ(json_value_after(health_resp.text, {}, "models_loaded"), 1.0);

  serve::Request flight;
  flight.kind = serve::RequestKind::kFlightDump;
  const serve::Response flight_resp = ask(fd, flight);
  EXPECT_TRUE(flight_resp.admin);
  EXPECT_NE(flight_resp.text.find("\"model\": \"blk\""), std::string::npos);
  EXPECT_GE(json_value_after(flight_resp.text, {}, "records_total"), 5.0);

  // Admin traffic stays out of the evaluate statistics.
  const serve::Response stats2 = ask(fd, stats);
  EXPECT_EQ(json_value_after(stats2.text, {"lifetime"}, "requests"), 5.0);

  ::close(fd);
  server.stop();
  serving.join();
  ASSERT_NE(server.serve_stats(), nullptr);
  EXPECT_EQ(server.serve_stats()->slow_total(), 0u);
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
}

TEST(ServeAdmin, FaultFiringDumpsAParseableFlightRecord) {
  obs::reset_flight_recorder();
  const ServeFixture fx;
  serve::Evaluator eval(fx.reg, {});
  serve::ServerOptions opt;
  opt.tcp_port = 0;
  opt.num_threads = 1;
  opt.flight_capacity = 16;
  opt.dump_dir = fx.dir.str();
  serve::Server server(eval, opt);
  server.start();
  std::thread serving([&] { server.serve(); });

  const int fd = connect_loopback(server.bound_port());
  serve::Request req;
  req.request_id = 1;
  req.model = "blk";
  req.bc = constraints_for(fx.model(), 3);
  EXPECT_EQ(ask(fd, req).status, serve::ResponseStatus::kOk);

  // Arm the parse-request site: the next frame throws inside decode
  // (an injected fault surfaces as kInternalError, not kBadRequest),
  // and the fire hook drops a flight dump next to the models before
  // the error surfaces.
  ASSERT_TRUE(fault::arm("serve.parse_request", 1).ok());
  req.request_id = 2;
  EXPECT_EQ(ask(fd, req).status, serve::ResponseStatus::kInternalError);
  EXPECT_TRUE(fault::fired());
  fault::disarm();

  const std::string dump = fx.dir.str("flight.serve_parse_request.json");
  ASSERT_TRUE(fs::exists(dump));
  std::ifstream in(dump);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"records_total\""), std::string::npos);
  EXPECT_NE(body.str().find("\"request_id\": 1"), std::string::npos);

  ::close(fd);
  server.stop();
  serving.join();
  obs::set_flight_recorder_enabled(false);
  obs::reset_flight_recorder();
}

}  // namespace
}  // namespace tmm
