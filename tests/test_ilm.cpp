#include <gtest/gtest.h>

#include "macro/evaluate.hpp"
#include "macro/ilm.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

class IlmOnDesign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlmOnDesign, BoundaryTimingIsExact) {
  const Design d = test::make_small_design("ilm", GetParam());
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);

  Rng rng(GetParam() * 31 + 7);
  std::vector<BoundaryConstraints> sets;
  for (int i = 0; i < 3; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  for (bool cppr : {false, true}) {
    const AccuracyReport rep =
        evaluate_accuracy(flat, ilm.graph, sets, cppr);
    EXPECT_LT(rep.max_err_ps, 1e-6) << "cppr=" << cppr;
    EXPECT_EQ(rep.structural_mismatches, 0u);
  }
}

TEST_P(IlmOnDesign, DropsRegisterToRegisterLogic) {
  const Design d = test::make_small_design("ilm", GetParam());
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  EXPECT_LT(ilm.graph.num_live_nodes(), flat.num_live_nodes());
  EXPECT_GT(ilm.graph.num_live_nodes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlmOnDesign, ::testing::Values(1, 2, 3, 4));

TEST(Ilm, PreservesPortOrdinals) {
  const Design d = test::make_small_design();
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  ASSERT_EQ(ilm.graph.primary_inputs().size(),
            flat.primary_inputs().size());
  ASSERT_EQ(ilm.graph.primary_outputs().size(),
            flat.primary_outputs().size());
  for (std::uint32_t i = 0; i < flat.primary_inputs().size(); ++i) {
    const NodeId fp = flat.primary_inputs()[i];
    const NodeId ip = ilm.graph.primary_inputs()[i];
    ASSERT_NE(ip, kInvalidId);
    EXPECT_EQ(flat.node(fp).name, ilm.graph.node(ip).name);
  }
}

TEST(Ilm, KeepsCheckedFlopsAndTheirClockPaths) {
  const Design d = test::make_small_design();
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  // Every surviving check's clock pin must trace back to the clock root.
  ASSERT_NE(ilm.graph.clock_root(), kInvalidId);
  for (const auto& c : ilm.graph.checks()) {
    if (c.dead) continue;
    NodeId u = c.clock;
    std::size_t guard = 0;
    while (u != ilm.graph.clock_root() && guard++ < ilm.graph.num_nodes()) {
      const auto& fin = ilm.graph.fanin(u);
      ASSERT_FALSE(fin.empty())
          << "clock pin " << ilm.graph.node(c.clock).name
          << " lost its clock path";
      u = ilm.graph.arc(fin[0]).from;
    }
    EXPECT_EQ(u, ilm.graph.clock_root());
  }
}

TEST(Ilm, KeepSetContainsAllPorts) {
  const Design d = test::make_tiny_design();
  const TimingGraph flat = build_timing_graph(d);
  const auto keep = ilm_keep_set(flat);
  for (NodeId p : flat.primary_inputs()) EXPECT_TRUE(keep[p]);
  for (NodeId p : flat.primary_outputs()) EXPECT_TRUE(keep[p]);
}

TEST(Ilm, PureCombinationalDesignIsKeptWhole) {
  const Design d = test::make_buffer_chain(5);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  // No registers: the interface logic is the whole design.
  EXPECT_EQ(ilm.graph.num_live_nodes(), flat.num_live_nodes());
  EXPECT_EQ(ilm.graph.num_live_arcs(), flat.num_live_arcs());
}

}  // namespace
}  // namespace tmm
