// Serving-artifact lint rules (src/analysis/serve_lint.hpp): S001
// image corruption, S002 arena-bounds violations (reported per record,
// not throw-on-first), S003 duplicate design names across a registry
// directory.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "analysis/serve_lint.hpp"
#include "macro/baselines.hpp"
#include "serve/tmb.hpp"
#include "sta/timing_graph.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "tmm_slint_XXXXXX").string();
    char* p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str(const char* leaf = nullptr) const {
    return leaf ? (path / leaf).string() : path.string();
  }
};

MacroModel make_model(const char* name, std::uint64_t seed = 21) {
  const Design d = test::make_tiny_design(name, seed);
  const TimingGraph flat = build_timing_graph(d);
  MacroModel m = generate_itimerm_model(flat);
  m.design_name = name;
  return m;
}

std::uint32_t read_u32(const std::string& image, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, image.data() + off, sizeof v);
  return v;
}

/// Re-stamp the header CRC after mutating payload bytes, so the image
/// reaches the record checks instead of dying at the checksum gate.
void restamp_crc(std::string& image) {
  const std::uint32_t crc =
      serve::crc32(image.data() + serve::kTmbHeaderBytes,
                   image.size() - serve::kTmbHeaderBytes);
  std::memcpy(image.data() + 16, &crc, sizeof crc);
}

/// Byte offset of LUT record `i` in the table section (format v1).
std::size_t tab_offset(const std::string& image, std::size_t i) {
  std::size_t off = serve::kTmbHeaderBytes;
  const std::uint32_t name_len = read_u32(image, off);
  off += 4 + name_len;
  const std::uint32_t nn = read_u32(image, off);
  const std::uint32_t na = read_u32(image, off + 4);
  const std::uint32_t nc = read_u32(image, off + 8);
  const std::uint32_t npo = read_u32(image, off + 12);
  off += 28;                  // six u32 counts + u64 arena length
  off += nn * 40ull;          // node records
  off += npo * 4ull;          // attached-PO ordinals
  off += na * 36ull;          // arc records
  off += nc * 16ull;          // check records
  return off + i * 16ull;     // LutRec = u32 + u32 + u64
}

TEST(ServeLint, CleanImagePasses) {
  const std::string image = serve::pack_model(make_model("clean"));
  const analysis::LintReport report =
      analysis::lint_tmb_image(image, "clean.tmb");
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 0u);
  EXPECT_EQ(report.count(analysis::rule::kTmbArena), 0u);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(ServeLint, BadMagicIsS001) {
  std::string image = serve::pack_model(make_model("magic"));
  image[0] = 'X';
  const analysis::LintReport report =
      analysis::lint_tmb_image(image, "magic.tmb");
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 1u);
  EXPECT_FALSE(report.clean());
}

TEST(ServeLint, ChecksumMismatchIsS001) {
  std::string image = serve::pack_model(make_model("crc"));
  image[image.size() - 1] ^= 0x5a;  // payload flip, stale CRC
  const analysis::LintReport report =
      analysis::lint_tmb_image(image, "crc.tmb");
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 1u);
}

TEST(ServeLint, TruncatedFileIsS001) {
  std::string image = serve::pack_model(make_model("trunc"));
  image.resize(image.size() / 2);
  const analysis::LintReport report =
      analysis::lint_tmb_image(image, "trunc.tmb");
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 1u);
}

TEST(ServeLint, ArenaEscapeIsS002PerRecord) {
  std::string image = serve::pack_model(make_model("arena"));
  // Point two LUT records past the arena end; the linter must report
  // both (the loader would throw on the first).
  for (const std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    const std::size_t rec = tab_offset(image, i);
    const std::uint64_t bad_off = 1u << 30;
    std::memcpy(image.data() + rec + 8, &bad_off, sizeof bad_off);
  }
  restamp_crc(image);
  const analysis::LintReport report =
      analysis::lint_tmb_image(image, "arena.tmb");
  EXPECT_EQ(report.count(analysis::rule::kTmbArena), 2u)
      << report.to_string();
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 0u);
  EXPECT_FALSE(report.clean());
}

TEST(ServeLint, UnreadableFileIsS001) {
  const analysis::LintReport report =
      analysis::lint_tmb_file("/nonexistent/model.tmb");
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 1u);
}

TEST(ServeLint, RegistryDirFlagsDuplicateNames) {
  TempDir dir;
  serve::write_tmb_file(make_model("alpha"), dir.str("a.tmb"));
  serve::write_tmb_file(make_model("alpha", 22), dir.str("b.tmb"));
  serve::write_tmb_file(make_model("beta"), dir.str("c.tmb"));
  const analysis::LintReport report = analysis::lint_registry_dir(dir.str());
  EXPECT_EQ(report.count(analysis::rule::kRegistryDupName), 1u)
      << report.to_string();
  // The duplicate report names both files.
  bool found = false;
  for (const auto& d : report.diagnostics())
    if (d.rule == analysis::rule::kRegistryDupName) {
      found = true;
      EXPECT_NE(d.location.find("b.tmb"), std::string::npos);
      EXPECT_NE(d.message.find("a.tmb"), std::string::npos);
    }
  EXPECT_TRUE(found);
}

TEST(ServeLint, RegistryDirCleanAndCorruptMix) {
  TempDir dir;
  serve::write_tmb_file(make_model("good"), dir.str("good.tmb"));
  {
    std::ofstream os(dir.str("bad.tmb"), std::ios::binary);
    os << "not a tmb";
  }
  const analysis::LintReport report = analysis::lint_registry_dir(dir.str());
  EXPECT_EQ(report.count(analysis::rule::kTmbImage), 1u);
  EXPECT_EQ(report.count(analysis::rule::kRegistryDupName), 0u);
}

}  // namespace
}  // namespace tmm
