// Lock-order analyzer tests (src/util/lockorder.hpp).
//
// The analyzer's on_acquire/on_release hooks are public API compiled
// into every build, so the inversion/nesting scenarios below run even
// in Release where util::Mutex itself does not call them; the
// Mutex-integration test is gated on TMM_LOCK_ORDER_ENABLED.
//
// Each test uses its own lock-class names: classes register globally
// and survive reset_observations() by design (same-name classes share
// one id, so reuse across tests would couple their graphs).

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/evaluator.hpp"
#include "util/lockorder.hpp"
#include "util/mutex.hpp"

namespace tmm {
namespace {

using util::lockorder::cycle_detected;
using util::lockorder::cycles;
using util::lockorder::observed_edges;
using util::lockorder::on_acquire;
using util::lockorder::on_release;
using util::lockorder::reset_observations;

TEST(LockOrder, AcquisitionEdgesAreRecorded) {
  reset_observations();
  const util::lockorder::LockClass outer("lo.edge.outer");
  const util::lockorder::LockClass inner("lo.edge.inner");
  on_acquire(outer);
  on_acquire(inner);
  on_release(inner);
  on_release(outer);

  const auto edges = observed_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "lo.edge.outer");
  EXPECT_EQ(edges[0].to, "lo.edge.inner");
  EXPECT_EQ(edges[0].count, 1u);
  // Sites point at this file (basename:line of the on_acquire calls).
  EXPECT_NE(edges[0].from_site.find("test_lockorder.cpp"), std::string::npos);
  EXPECT_FALSE(cycle_detected());
  reset_observations();
}

TEST(LockOrder, DeliberateInversionIsReported) {
  reset_observations();
  const util::lockorder::LockClass a("lo.inv.A");
  const util::lockorder::LockClass b("lo.inv.B");
  // Thread 1 order: A then B.
  on_acquire(a);
  on_acquire(b);
  on_release(b);
  on_release(a);
  EXPECT_FALSE(cycle_detected());
  // Thread 2 order: B then A — closes the cycle.
  on_acquire(b);
  on_acquire(a);
  on_release(a);
  on_release(b);
  ASSERT_TRUE(cycle_detected());

  const auto found = cycles();
  ASSERT_EQ(found.size(), 1u);
  const std::string report = found[0].to_string();
  // The report names both classes and both acquisition sites.
  EXPECT_NE(report.find("lo.inv.A"), std::string::npos);
  EXPECT_NE(report.find("lo.inv.B"), std::string::npos);
  EXPECT_NE(report.find("test_lockorder.cpp"), std::string::npos);

  // write_report mirrors the verdict: non-empty cycle list -> false.
  std::ostringstream os;
  EXPECT_FALSE(util::lockorder::write_report(os));
  EXPECT_NE(os.str().find("potential deadlock"), std::string::npos);
  reset_observations();
}

TEST(LockOrder, InversionAcrossRealThreadsIsReported) {
  reset_observations();
  const util::lockorder::LockClass a("lo.thr.A");
  const util::lockorder::LockClass b("lo.thr.B");
  // The acquisition stack is thread-local: prove two threads with
  // opposite orders feed one global graph. Sequential execution (join
  // between them) keeps the test deterministic — a real deadlock needs
  // overlap, but the *order violation* does not.
  std::thread t1([&] {
    on_acquire(a);
    on_acquire(b);
    on_release(b);
    on_release(a);
  });
  t1.join();
  std::thread t2([&] {
    on_acquire(b);
    on_acquire(a);
    on_release(a);
    on_release(b);
  });
  t2.join();
  EXPECT_TRUE(cycle_detected());
  reset_observations();
}

TEST(LockOrder, NestedSameClassIsALengthOneCycle) {
  reset_observations();
  const util::lockorder::LockClass c("lo.nest.C");
  // Two shards of one class held together — e.g. locking two cache
  // shards at once — is self-deadlock-prone (std::mutex is
  // non-recursive) and must be flagged without a second thread.
  on_acquire(c);
  on_acquire(c);
  on_release(c);
  on_release(c);
  ASSERT_TRUE(cycle_detected());
  const auto found = cycles();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].closing.from, "lo.nest.C");
  EXPECT_EQ(found[0].closing.to, "lo.nest.C");
  reset_observations();
}

TEST(LockOrder, DuplicateCyclesReportedOnce) {
  reset_observations();
  const util::lockorder::LockClass a("lo.dup.A");
  const util::lockorder::LockClass b("lo.dup.B");
  for (int i = 0; i < 3; ++i) {
    on_acquire(a);
    on_acquire(b);
    on_release(b);
    on_release(a);
    on_acquire(b);
    on_acquire(a);
    on_release(a);
    on_release(b);
  }
  // Same closing edge every iteration -> one deduplicated report.
  EXPECT_EQ(cycles().size(), 1u);
  reset_observations();
}

TEST(LockOrder, OutOfOrderReleaseKeepsStackConsistent) {
  reset_observations();
  const util::lockorder::LockClass a("lo.ooo.A");
  const util::lockorder::LockClass b("lo.ooo.B");
  // Release the outer lock first (std::scoped_lock teardown order is
  // unspecified); the stack must drop the right entry, so a subsequent
  // same-order acquisition adds no reverse edge.
  on_acquire(a);
  on_acquire(b);
  on_release(a);
  on_release(b);
  on_acquire(a);
  on_acquire(b);
  on_release(b);
  on_release(a);
  EXPECT_FALSE(cycle_detected());
  EXPECT_EQ(observed_edges().size(), 1u);
  reset_observations();
}

TEST(LockOrder, ResetObservationsClearsEdgesAndCycles) {
  reset_observations();
  const util::lockorder::LockClass a("lo.reset.A");
  const util::lockorder::LockClass b("lo.reset.B");
  on_acquire(a);
  on_acquire(b);
  on_release(b);
  on_release(a);
  on_acquire(b);
  on_acquire(a);
  on_release(a);
  on_release(b);
  ASSERT_TRUE(cycle_detected());
  reset_observations();
  EXPECT_FALSE(cycle_detected());
  EXPECT_TRUE(observed_edges().empty());
  // Classes survive the reset (registration is permanent).
  const auto classes = util::lockorder::registered_classes();
  EXPECT_NE(std::find(classes.begin(), classes.end(), "lo.reset.A"),
            classes.end());
}

// Clean-hierarchy pass over the real concurrent subsystems: hammer the
// serve evaluator cache shards (the lock class with the most
// instances) plus the obs registries from several threads and assert
// no ordering violation is observed. In builds without acquisition
// tracking this still asserts the no-cycle verdict (trivially, over an
// empty edge set) — the CI lockorder job runs it in Debug where the
// util::Mutex hooks are live.
TEST(LockOrder, CleanHierarchyAcrossServeCacheShards) {
  reset_observations();
  constexpr int kThreads = 4;
  constexpr int kOps = 200;
  serve::ResultCache cache(/*capacity=*/64, /*num_shards=*/8);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      BoundarySnapshot snap;
      snap.num_ports = 1;
      snap.slew.assign(2, 0.5);
      snap.at.assign(2, 1.0);
      snap.rat.assign(2, 2.0);
      snap.slack.assign(2, 1.0);
      for (int i = 0; i < kOps; ++i) {
        const std::string key =
            "k" + std::to_string((t * kOps + i * 7) % 97);
        BoundarySnapshot out;
        if (!cache.lookup(key, out)) cache.insert(key, snap);
        if (i % 16 == 0) {
          cache.stats();
          obs::counter("lockorder.test.ops").add();
        }
        if (i % 64 == 0) obs::trace_event_count();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_FALSE(cycle_detected()) << [] {
    std::ostringstream os;
    util::lockorder::write_report(os);
    return os.str();
  }();
  std::ostringstream os;
  EXPECT_TRUE(util::lockorder::write_report(os));
  EXPECT_NE(os.str().find("acyclic"), std::string::npos);
  if (util::lockorder::tracking_compiled_in()) {
    // The sweep above takes shard locks with nothing held: no edges
    // out of serve.cache.shard may appear.
    for (const auto& e : observed_edges())
      EXPECT_NE(e.from, "serve.cache.shard") << e.from << " -> " << e.to;
  }
  reset_observations();
}

#if TMM_LOCK_ORDER_ENABLED
// End-to-end through util::Mutex: the scoped lock types must feed the
// analyzer without explicit on_acquire calls.
TEST(LockOrder, MutexIntegrationDetectsInversion) {
  reset_observations();
  const util::lockorder::LockClass ca("lo.mutex.A");
  const util::lockorder::LockClass cb("lo.mutex.B");
  util::Mutex ma(ca);
  util::Mutex mb(cb);
  {
    util::MutexLock la(ma);
    util::MutexLock lb(mb);
  }
  EXPECT_FALSE(cycle_detected());
  {
    util::MutexLock lb(mb);
    util::MutexLock la(ma);
  }
  EXPECT_TRUE(cycle_detected());
  reset_observations();
}
#endif  // TMM_LOCK_ORDER_ENABLED

}  // namespace
}  // namespace tmm
