#include <gtest/gtest.h>

#include <cmath>

#include "sta/propagation.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

/// Hand-built CPPR scenario:
///   clk -> ckroot(BUF) -> {bufA -> ff1.CK, bufB -> ff2.CK}
///   in0 -> ff1.D ;  ff1.Q -> INV -> ff2.D ;  ff2.Q -> out0
Design make_cppr_design() {
  const Library& lib = test::shared_library();
  Design d("cppr", &lib);
  const CellId buf = lib.cell_id("CLKBUF_X2");
  const CellId inv = lib.cell_id("INV_X1");
  const CellId dff = lib.cell_id("DFF_X1");
  const auto& bufc = lib.cell(buf);
  const auto& invc = lib.cell(inv);
  const auto& dffc = lib.cell(dff);
  const auto ba = bufc.port_index("A");
  const auto by = bufc.port_index("Y");

  d.add_port("clk", TopPortDir::kPrimaryInput, true);
  d.add_port("in0", TopPortDir::kPrimaryInput);
  d.add_port("out0", TopPortDir::kPrimaryOutput);
  const PinId clk = d.port(0).pin;
  const PinId in0 = d.port(1).pin;
  const PinId out0 = d.port(2).pin;

  const GateId root = d.add_gate("ckroot", buf);
  const GateId ba1 = d.add_gate("bufA", buf);
  const GateId bb1 = d.add_gate("bufB", buf);
  const GateId ff1 = d.add_gate("ff1", dff);
  const GateId ff2 = d.add_gate("ff2", dff);
  const GateId g1 = d.add_gate("g1", inv);

  const NetId nclk = d.add_net("nclk", clk);
  d.connect_sink(nclk, d.gate(root).pins[ba], 0.1);
  const NetId nroot = d.add_net("nroot", d.gate(root).pins[by]);
  d.connect_sink(nroot, d.gate(ba1).pins[ba], 0.1);
  d.connect_sink(nroot, d.gate(bb1).pins[ba], 0.3);
  const NetId na = d.add_net("na", d.gate(ba1).pins[by]);
  d.connect_sink(na, d.gate(ff1).pins[dffc.port_index("CK")], 0.1);
  const NetId nb = d.add_net("nb", d.gate(bb1).pins[by]);
  d.connect_sink(nb, d.gate(ff2).pins[dffc.port_index("CK")], 0.1);

  const NetId nin = d.add_net("nin", in0);
  d.connect_sink(nin, d.gate(ff1).pins[dffc.port_index("D")], 0.1);
  const NetId nq1 = d.add_net("nq1", d.gate(ff1).pins[dffc.port_index("Q")]);
  d.connect_sink(nq1, d.gate(g1).pins[invc.port_index("A")], 0.1);
  const NetId ninv = d.add_net("ninv", d.gate(g1).pins[invc.port_index("Y")]);
  d.connect_sink(ninv, d.gate(ff2).pins[dffc.port_index("D")], 0.1);
  const NetId nq2 = d.add_net("nq2", d.gate(ff2).pins[dffc.port_index("Q")]);
  d.connect_sink(nq2, out0, 0.1);
  for (NetId n = 0; n < d.num_nets(); ++n) d.set_wire_cap(n, 0.5);
  d.validate();
  return d;
}

PinId ff_pin(const Design& d, const std::string& gate, const char* port) {
  for (GateId g = 0; g < d.num_gates(); ++g) {
    if (d.gate(g).name != gate) continue;
    const Cell& c = d.library().cell(d.gate(g).cell);
    return d.gate(g).pins[c.port_index(port)];
  }
  return kInvalidId;
}

TEST(Sta, BufferChainArrivalMatchesManualWalk) {
  const Design d = test::make_buffer_chain(4);
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  const BoundaryConstraints bc =
      nominal_constraints(d.primary_inputs().size(),
                          d.primary_outputs().size());
  sta.run(bc);

  // Manual forward walk over the unique path.
  double at = bc.pi[0].at(kLate, kRise);
  double slew = bc.pi[0].slew(kLate, kRise);
  NodeId u = d.primary_inputs()[0];
  const NodeId out = d.primary_outputs()[0];
  while (u != out) {
    ASSERT_EQ(g.fanout(u).size(), 1u);
    const GraphArc& a = g.arc(g.fanout(u)[0]);
    if (a.kind == GraphArcKind::kWire) {
      at += a.wire_delay_ps;
      slew = wire_slew(slew, a.wire_delay_ps);
    } else {
      double load = g.node(a.to).static_load_ff;
      for (auto po : g.node(a.to).attached_po_loads)
        load += bc.po[po].load_ff;
      at += (*a.delay)(kLate, kRise).lookup(slew, load);
      slew = (*a.out_slew)(kLate, kRise).lookup(slew, load);
    }
    u = a.to;
  }
  EXPECT_NEAR(sta.timing(out).at(kLate, kRise), at, 1e-9);
  EXPECT_NEAR(sta.timing(out).slew(kLate, kRise), slew, 1e-9);
}

TEST(Sta, PoSlackIsRatMinusAt) {
  const Design d = test::make_buffer_chain(2);
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  const BoundaryConstraints bc = nominal_constraints(1, 1);
  sta.run(bc);
  const NodeId out = d.primary_outputs()[0];
  const auto& t = sta.timing(out);
  EXPECT_DOUBLE_EQ(t.rat(kLate, kRise), bc.po[0].rat(kLate, kRise));
  EXPECT_NEAR(sta.slack(out, kLate, kRise),
              t.rat(kLate, kRise) - t.at(kLate, kRise), 1e-12);
  EXPECT_NEAR(sta.slack(out, kEarly, kFall),
              t.at(kEarly, kFall) - t.rat(kEarly, kFall), 1e-12);
}

TEST(Sta, PiRatBackPropagatesFromPoConstraint) {
  const Design d = test::make_buffer_chain(2);
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  const BoundaryConstraints bc = nominal_constraints(1, 1);
  sta.run(bc);
  const NodeId in = d.primary_inputs()[0];
  const NodeId out = d.primary_outputs()[0];
  // Slack is conserved along a single path: slack(in) == slack(out).
  EXPECT_NEAR(sta.slack(in, kLate, kRise), sta.slack(out, kLate, kRise), 1e-9);
}

TEST(Sta, EarlyNeverExceedsLate) {
  const Design d = test::make_small_design();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  Rng rng(3);
  const BoundaryConstraints bc =
      random_constraints(d.primary_inputs().size(),
                         d.primary_outputs().size(), {}, rng);
  sta.run(bc);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      const auto& t = sta.timing(n);
      if (std::isfinite(t.at(kEarly, rf)) &&
          std::isfinite(t.at(kLate, rf))) {
        EXPECT_LE(t.at(kEarly, rf), t.at(kLate, rf) + 1e-9) << g.node(n).name;
      }
      if (std::isfinite(t.slew(kEarly, rf)) &&
          std::isfinite(t.slew(kLate, rf))) {
        EXPECT_LE(t.slew(kEarly, rf), t.slew(kLate, rf) + 1e-9);
      }
    }
  }
}

TEST(Sta, ClockNetworkMarkedAndRatFree) {
  const Design d = test::make_tiny_design();
  const TimingGraph g = build_timing_graph(d);
  EXPECT_TRUE(g.node(g.clock_root()).in_clock_network);
  Sta sta(g);
  sta.run(nominal_constraints(d.primary_inputs().size(),
                              d.primary_outputs().size()));
  // Boundary-RAT convention: the clock port carries no required time.
  EXPECT_FALSE(std::isfinite(sta.timing(g.clock_root()).rat(kLate, kRise)));
}

TEST(Sta, SetupCheckConstrainsDataPin) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  const BoundaryConstraints bc = nominal_constraints(2, 1, 800.0);
  sta.run(bc);
  const PinId d1 = ff_pin(d, "ff1", "D");
  const auto& t = sta.timing(d1);
  ASSERT_TRUE(std::isfinite(t.rat(kLate, kRise)));
  // rat_late(D) = T + at_early(CK) - setup + credit; must be < T + at(CK).
  const PinId ck1 = ff_pin(d, "ff1", "CK");
  EXPECT_LT(t.rat(kLate, kRise),
            bc.clock_period_ps + sta.timing(ck1).at(kEarly, kRise));
  // Hold: rat_early(D) > at_late(CK) (guard positive, credit small).
  ASSERT_TRUE(std::isfinite(t.rat(kEarly, kRise)));
}

TEST(Sta, CpprCreditEqualsCommonPathPessimism) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g, {.cppr = true});
  const BoundaryConstraints bc = nominal_constraints(2, 1, 800.0);
  sta.run(bc);

  const PinId d2 = ff_pin(d, "ff2", "D");
  // Launch ff1 and capture ff2 share the path clk -> ckroot/Y.
  PinId branch = kInvalidId;
  for (GateId gi = 0; gi < d.num_gates(); ++gi)
    if (d.gate(gi).name == "ckroot")
      branch = d.gate(gi).pins[d.library()
                                   .cell(d.gate(gi).cell)
                                   .port_index("Y")];
  ASSERT_NE(branch, kInvalidId);
  const double expected = sta.timing(branch).at(kLate, kRise) -
                          sta.timing(branch).at(kEarly, kRise);
  EXPECT_GT(expected, 0.0);
  EXPECT_NEAR(sta.endpoint_credit(d2, kLate, kRise), expected, 1e-9);
  EXPECT_NEAR(sta.endpoint_credit(d2, kLate, kFall), expected, 1e-9);
}

TEST(Sta, CpprImprovesSetupSlack) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  const BoundaryConstraints bc = nominal_constraints(2, 1, 800.0);
  Sta with(g, {.cppr = true});
  with.run(bc);
  Sta without(g, {.cppr = false});
  without.run(bc);
  const PinId d2 = ff_pin(d, "ff2", "D");
  EXPECT_GT(with.slack(d2, kLate, kRise), without.slack(d2, kLate, kRise));
  // PI-launched endpoint has no common path: identical slack.
  const PinId d1 = ff_pin(d, "ff1", "D");
  EXPECT_NEAR(with.slack(d1, kLate, kRise), without.slack(d1, kLate, kRise),
              1e-9);
  EXPECT_DOUBLE_EQ(without.endpoint_credit(d2, kLate, kRise), 0.0);
}

TEST(Sta, SnapshotDiffOfIdenticalRunsIsZero) {
  const Design d = test::make_small_design();
  const TimingGraph g = build_timing_graph(d);
  Sta a(g);
  Sta b(g);
  const BoundaryConstraints bc = nominal_constraints(
      d.primary_inputs().size(), d.primary_outputs().size());
  a.run(bc);
  b.run(bc);
  const SnapshotDiff diff =
      diff_snapshots(a.boundary_snapshot(), b.boundary_snapshot());
  EXPECT_DOUBLE_EQ(diff.max_abs, 0.0);
  EXPECT_EQ(diff.mismatched, 0u);
  EXPECT_GT(diff.compared, 0u);
}

TEST(Sta, WorstSlackIsMinOverEndpoints) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  sta.run(nominal_constraints(2, 1, 800.0));
  double manual = kInf;
  for (const auto& c : g.checks())
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      manual = std::min(manual, sta.slack(c.data, kLate, rf));
  for (NodeId po : g.primary_outputs())
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      manual = std::min(manual, sta.slack(po, kLate, rf));
  EXPECT_DOUBLE_EQ(sta.worst_slack(kLate), manual);
}

TEST(Sta, SlewOnlyPropagationIsMonotone) {
  const Design d = test::make_small_design();
  const TimingGraph g = build_timing_graph(d);
  const auto lo = propagate_slew_only(g, 2.0);
  const auto hi = propagate_slew_only(g, 50.0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!std::isfinite(lo[n]) || !std::isfinite(hi[n])) continue;
    EXPECT_LE(lo[n], hi[n] + 1e-9) << g.node(n).name;
  }
}

TEST(Sta, WorstPathTracesBackToStartPoint) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  sta.run(nominal_constraints(2, 1, 800.0));

  unsigned rf = kRise;
  const NodeId endpoint = sta.worst_endpoint(kLate, &rf);
  ASSERT_NE(endpoint, kInvalidId);
  const auto path = sta.worst_path(endpoint, kLate, rf);
  ASSERT_GE(path.size(), 2u);
  // Path starts at a seed (no incoming arc) and ends at the endpoint.
  EXPECT_EQ(path.front().via, kInvalidId);
  EXPECT_EQ(path.back().node, endpoint);
  EXPECT_EQ(path.back().rf, rf);
  // Arrival times are consistent hop by hop and non-decreasing (late).
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_NE(path[i].via, kInvalidId);
    EXPECT_EQ(g.arc(path[i].via).to, path[i].node);
    EXPECT_EQ(g.arc(path[i].via).from, path[i - 1].node);
    EXPECT_GE(path[i].at, path[i - 1].at - 1e-9);
    EXPECT_DOUBLE_EQ(path[i].at, sta.timing(path[i].node).at(kLate, path[i].rf));
  }
}

TEST(Sta, WorstPathOfUnreachedNodeIsEmpty) {
  const Design d = test::make_buffer_chain(2);
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  BoundaryConstraints bc = nominal_constraints(1, 1);
  bc.pi[0].at(kLate, kRise) = -kInf;  // deactivate the rise track
  bc.pi[0].slew(kLate, kRise) = -kInf;
  sta.run(bc);
  // The chain is positive-unate: no rise seed => no rise path anywhere.
  EXPECT_TRUE(sta.worst_path(d.primary_outputs()[0], kLate, kRise).empty());
  EXPECT_FALSE(sta.worst_path(d.primary_outputs()[0], kLate, kFall).empty());
}

TEST(Sta, ClockRatOptionRestoresClockSideRequirements) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  const BoundaryConstraints bc = nominal_constraints(2, 1, 800.0);
  Sta off(g);
  off.run(bc);
  Sta on(g, {.clock_rat = true});
  on.run(bc);
  // With the option on, capture-side requirements reach the clock port.
  EXPECT_FALSE(std::isfinite(off.timing(g.clock_root()).rat(kEarly, kRise)));
  EXPECT_TRUE(std::isfinite(on.timing(g.clock_root()).rat(kEarly, kRise)));
  // Data-side boundary values are unaffected by the clock-RAT convention.
  const NodeId in0 = d.primary_inputs()[1];
  EXPECT_DOUBLE_EQ(on.timing(in0).rat(kLate, kRise),
                   off.timing(in0).rat(kLate, kRise));
}

TEST(Sta, ReusedEngineMatchesFreshEngine) {
  const Design d = test::make_small_design("reuse", 44);
  const TimingGraph g = build_timing_graph(d);
  Rng rng(4);
  const BoundaryConstraints bc1 = random_constraints(
      d.primary_inputs().size(), d.primary_outputs().size(), {}, rng);
  const BoundaryConstraints bc2 = random_constraints(
      d.primary_inputs().size(), d.primary_outputs().size(), {}, rng);
  Sta reused(g);
  reused.run(bc1);
  reused.run(bc2);  // second run must not leak state from the first
  Sta fresh(g);
  fresh.run(bc2);
  const SnapshotDiff diff =
      diff_snapshots(reused.boundary_snapshot(), fresh.boundary_snapshot());
  EXPECT_DOUBLE_EQ(diff.max_abs, 0.0);
  EXPECT_EQ(diff.mismatched, 0u);
}

TEST(Sta, TighterClockPeriodReducesSlack) {
  const Design d = make_cppr_design();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  sta.run(nominal_constraints(2, 1, 1000.0));
  const double loose = sta.worst_slack(kLate);
  sta.run(nominal_constraints(2, 1, 500.0));
  const double tight = sta.worst_slack(kLate);
  EXPECT_LT(tight, loose);
}

}  // namespace
}  // namespace tmm
