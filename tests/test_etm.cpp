#include <gtest/gtest.h>

#include "macro/baselines.hpp"
#include "macro/model_io.hpp"
#include "macro/evaluate.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

EtmConfig fast_etm() {
  EtmConfig cfg;
  cfg.slew_samples = {2.0, 10.0, 40.0};
  cfg.load_samples = {1.0, 8.0};
  return cfg;
}

TEST(Etm, ModelContainsOnlyPortsAndEndpoints) {
  const Design d = test::make_tiny_design("etm", 70);
  const TimingGraph flat = build_timing_graph(d);
  GenerationStats gen;
  const MacroModel model = generate_etm_model(flat, fast_etm(), &gen);
  // Ports + at most one virtual endpoint per data PI.
  const std::size_t ports =
      d.primary_inputs().size() + d.primary_outputs().size();
  EXPECT_LE(model.graph.num_live_nodes(),
            ports + d.primary_inputs().size());
  EXPECT_GE(model.graph.num_live_nodes(), ports);
  EXPECT_GT(gen.generation_seconds, 0.0);
  EXPECT_LT(model.graph.num_live_nodes(), flat.num_live_nodes() / 4);
}

TEST(Etm, PreservesPortOrdinals) {
  const Design d = test::make_tiny_design("etm", 71);
  const TimingGraph flat = build_timing_graph(d);
  const MacroModel model = generate_etm_model(flat, fast_etm());
  ASSERT_EQ(model.graph.primary_inputs().size(),
            flat.primary_inputs().size());
  ASSERT_EQ(model.graph.primary_outputs().size(),
            flat.primary_outputs().size());
  EXPECT_NE(model.graph.clock_root(), kInvalidId);
}

TEST(Etm, ApproximatesBoundaryTimingWithoutStructuralLoss) {
  const Design d = test::make_small_design("etm", 72);
  const TimingGraph flat = build_timing_graph(d);
  const MacroModel model = generate_etm_model(flat, fast_etm());
  Rng rng(5);
  std::vector<BoundaryConstraints> sets;
  for (int i = 0; i < 2; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  const AccuracyReport rep =
      evaluate_accuracy(flat, model.graph, sets, /*cppr=*/false);
  EXPECT_EQ(rep.structural_mismatches, 0u);
  // Port-to-port models carry real context error, but must stay within
  // the same timescale as the paths themselves.
  EXPECT_LT(rep.max_err_ps, 150.0);
  EXPECT_GT(rep.compared_values, 0u);
}

TEST(Etm, MuchSmallerThanIlmBasedModel) {
  const Design d = test::make_small_design("etm", 73);
  const TimingGraph flat = build_timing_graph(d);
  GenerationStats etm_gen, itm_gen;
  MacroModel etm = generate_etm_model(flat, fast_etm(), &etm_gen);
  MacroModel itm = generate_itimerm_model(flat, {}, &itm_gen);
  EXPECT_LT(macro_model_size_bytes(etm), macro_model_size_bytes(itm) / 2);
  // ETM generation re-analyzes the ILM many times.
  EXPECT_GT(etm_gen.generation_seconds, itm_gen.generation_seconds);
}

TEST(Etm, SenseSplitArcsAreUnate) {
  const Design d = test::make_tiny_design("etm", 74);
  const TimingGraph flat = build_timing_graph(d);
  const MacroModel model = generate_etm_model(flat, fast_etm());
  std::size_t arcs = 0;
  for (ArcId a = 0; a < model.graph.num_arcs(); ++a) {
    const auto& arc = model.graph.arc(a);
    if (arc.dead || arc.kind != GraphArcKind::kCell) continue;
    EXPECT_NE(arc.sense, ArcSense::kNonUnate);
    ++arcs;
  }
  EXPECT_GT(arcs, 0u);
}

}  // namespace
}  // namespace tmm
