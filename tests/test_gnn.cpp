#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gnn/features.hpp"
#include "gnn/metrics.hpp"
#include "gnn/trainer.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

GnnGraph ring_graph(std::size_t n) {
  GnnGraph g;
  g.num_nodes = n;
  g.offsets.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) g.offsets[v + 1] = (v + 1) * 2;
  g.neighbors.resize(2 * n);
  for (std::size_t v = 0; v < n; ++v) {
    g.neighbors[2 * v] = static_cast<std::uint32_t>((v + n - 1) % n);
    g.neighbors[2 * v + 1] = static_cast<std::uint32_t>((v + 1) % n);
  }
  return g;
}

TEST(Tensor, MatmulAgainstManual) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int k = 1;
  for (auto& v : a.data()) v = static_cast<float>(k++);
  for (auto& v : b.data()) v = static_cast<float>(k++);
  Matrix c;
  matmul(a, b, c);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_FLOAT_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_FLOAT_EQ(c(0, 1), 1 * 8 + 2 * 10 + 3 * 12);
  EXPECT_FLOAT_EQ(c(1, 0), 4 * 7 + 5 * 9 + 6 * 11);
  EXPECT_FLOAT_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(Tensor, TransposedMatmulsConsistent) {
  Rng rng(1);
  Matrix a(4, 3);
  Matrix b(4, 5);
  for (auto& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b.data()) v = static_cast<float>(rng.uniform(-1, 1));
  Matrix atb;
  matmul_at_b(a, b, atb);  // 3 x 5
  // Compare against explicit transpose.
  Matrix at(3, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  Matrix ref;
  matmul(at, b, ref);
  for (std::size_t i = 0; i < atb.size(); ++i)
    EXPECT_NEAR(atb.data()[i], ref.data()[i], 1e-5);
}

TEST(Tensor, SigmoidStable) {
  EXPECT_NEAR(sigmoidf(0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(sigmoidf(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(sigmoidf(-100.0f), 0.0f, 1e-6);
  EXPECT_GT(sigmoidf(-100.0f), 0.0f - 1e-12);
}

TEST(Tensor, ReluForwardBackward) {
  Matrix x(1, 4);
  x(0, 0) = -1;
  x(0, 1) = 2;
  x(0, 2) = 0;
  x(0, 3) = 5;
  Matrix mask;
  relu_forward(x, mask);
  EXPECT_FLOAT_EQ(x(0, 0), 0);
  EXPECT_FLOAT_EQ(x(0, 1), 2);
  EXPECT_FLOAT_EQ(x(0, 3), 5);
  Matrix g(1, 4, 1.0f);
  relu_backward(g, mask);
  EXPECT_FLOAT_EQ(g(0, 0), 0);
  EXPECT_FLOAT_EQ(g(0, 1), 1);
  EXPECT_FLOAT_EQ(g(0, 2), 0);
  EXPECT_FLOAT_EQ(g(0, 3), 1);
}

TEST(Aggregate, MeanOverNeighbors) {
  const GnnGraph g = ring_graph(4);
  Matrix x(4, 1);
  for (std::size_t v = 0; v < 4; ++v) x(v, 0) = static_cast<float>(v);
  Matrix out;
  mean_aggregate(g, x, out);
  EXPECT_FLOAT_EQ(out(0, 0), (3 + 1) / 2.0f);
  EXPECT_FLOAT_EQ(out(1, 0), (0 + 2) / 2.0f);
  EXPECT_FLOAT_EQ(out(2, 0), (1 + 3) / 2.0f);
  EXPECT_FLOAT_EQ(out(3, 0), (2 + 0) / 2.0f);
}

/// Numerical gradient check of the whole model (SAGE and GCN).
class GradCheck : public ::testing::TestWithParam<int> {};

TEST_P(GradCheck, ModelGradientsMatchFiniteDifferences) {
  GnnModelConfig cfg;
  cfg.input_dim = 3;
  cfg.hidden_dim = 4;
  cfg.num_layers = 2;
  cfg.engine = static_cast<GnnEngine>(GetParam());
  cfg.seed = 12345;
  GnnModel model(cfg);
  const GnnGraph g = ring_graph(6);
  Rng rng(3);
  Matrix x(6, 3);
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> labels{1, 0, 1, 0, 0, 1};
  std::vector<unsigned char> mask(6, 1);

  auto loss_fn = [&]() {
    Matrix logits = model.forward(g, x);
    Matrix dl;
    return bce_with_logits(logits, labels, mask, 2.0f, dl);
  };

  // Analytic gradients.
  {
    Matrix logits = model.forward(g, x);
    Matrix dl;
    bce_with_logits(logits, labels, mask, 2.0f, dl);
    for (Param* p : model.params()) p->zero_grad();
    model.backward(g, dl);
  }

  // Finite differences cross ReLU kinks at finite epsilon, so individual
  // elements may disagree; a real backprop bug breaks nearly all of
  // them. Require a large majority to match tightly.
  int checked = 0;
  int matched = 0;
  for (Param* p : model.params()) {
    const std::size_t stride = std::max<std::size_t>(1, p->value.size() / 5);
    for (std::size_t i = 0; i < p->value.size(); i += stride) {
      const float orig = p->value.data()[i];
      const float analytic = p->grad.data()[i];
      const float eps = 1e-3f;
      p->value.data()[i] = orig + eps;
      const double lp = loss_fn();
      p->value.data()[i] = orig - eps;
      const double lm = loss_fn();
      p->value.data()[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      if (std::fabs(analytic - numeric) <=
          2e-3 + 0.05 * std::fabs(numeric))
        ++matched;
      ++checked;
    }
  }
  EXPECT_GE(checked, 15);
  EXPECT_GE(matched, checked * 8 / 10)
      << matched << " of " << checked << " gradient elements matched";
}

INSTANTIATE_TEST_SUITE_P(Engines, GradCheck, ::testing::Values(0, 1, 2));

TEST(SagePool, MaxAggregatorPicksLargestMessage) {
  // 3-node path graph 0-1-2; check the pooled neighborhood of node 1.
  GnnGraph g;
  g.num_nodes = 3;
  g.offsets = {0, 1, 3, 4};
  g.neighbors = {1, 0, 2, 1};
  Rng rng(4);
  SagePoolLayer layer(1, 2, /*relu=*/false, rng);
  Matrix x(3, 1);
  x(0, 0) = -5.0f;
  x(1, 0) = 0.5f;
  x(2, 0) = 7.0f;
  const Matrix out = layer.forward(g, x);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 2u);
  // Gradients flow (smoke): backward returns the input shape.
  Matrix dout(3, 2, 1.0f);
  const Matrix dx = layer.backward(g, dout);
  EXPECT_EQ(dx.rows(), 3u);
  EXPECT_EQ(dx.cols(), 1u);
}

TEST(SagePool, TrainsSeparableLabels) {
  const GnnGraph g = ring_graph(30);
  Rng rng(14);
  GraphSample s;
  s.graph = g;
  s.features = Matrix(30, 2);
  s.labels.resize(30);
  s.mask.assign(30, 1);
  for (std::size_t v = 0; v < 30; ++v) {
    const double f = rng.uniform(-1, 1);
    s.features(v, 0) = static_cast<float>(f);
    s.features(v, 1) = 0.3f;
    s.labels[v] = f > 0 ? 1.0f : 0.0f;
  }
  GnnModelConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  cfg.engine = GnnEngine::kGraphSagePool;
  GnnModel model(cfg);
  TrainConfig tc;
  tc.epochs = 400;
  tc.patience = 0;
  const std::vector<GraphSample> samples{s};
  const TrainReport rep = train_model(model, samples, tc);
  EXPECT_GT(rep.train_confusion.accuracy(), 0.8);
}

TEST(Trainer, LearnsSeparableNodeLabels) {
  // Label = (feature0 > 0): trivially separable; training must push
  // accuracy near 1.
  const GnnGraph g = ring_graph(40);
  Rng rng(9);
  GraphSample s;
  s.graph = g;
  s.features = Matrix(40, 2);
  s.labels.resize(40);
  s.mask.assign(40, 1);
  for (std::size_t v = 0; v < 40; ++v) {
    const double f = rng.uniform(-1, 1);
    s.features(v, 0) = static_cast<float>(f);
    s.features(v, 1) = static_cast<float>(rng.uniform(-1, 1));
    s.labels[v] = f > 0 ? 1.0f : 0.0f;
  }
  GnnModelConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  GnnModel model(cfg);
  TrainConfig tc;
  tc.epochs = 400;
  tc.patience = 0;
  const std::vector<GraphSample> samples{s};
  const TrainReport rep = train_model(model, samples, tc);
  EXPECT_LT(rep.final_loss, 0.4);
  EXPECT_GT(rep.train_confusion.accuracy(), 0.85);
}

TEST(Trainer, PosWeightBalancesRareClass) {
  // 1 positive among 20: with auto pos_weight the positive must not be
  // drowned (recall > 0 after training).
  const GnnGraph g = ring_graph(20);
  GraphSample s;
  s.graph = g;
  s.features = Matrix(20, 2);
  s.labels.assign(20, 0.0f);
  s.mask.assign(20, 1);
  for (std::size_t v = 0; v < 20; ++v)
    s.features(v, 0) = v == 7 ? 1.0f : -1.0f;
  s.labels[7] = 1.0f;
  GnnModelConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden_dim = 6;
  cfg.num_layers = 1;
  GnnModel model(cfg);
  TrainConfig tc;
  tc.epochs = 300;
  tc.patience = 0;
  const std::vector<GraphSample> samples{s};
  const TrainReport rep = train_model(model, samples, tc);
  EXPECT_EQ(rep.train_confusion.fn, 0u);
}

TEST(Adam, ReducesQuadraticLoss) {
  Param p;
  p.init_zero(1, 1);
  p.value(0, 0) = 5.0f;
  Adam opt({&p}, {.lr = 0.1f});
  for (int i = 0; i < 300; ++i) {
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 1.0f);  // d/dx (x-1)^2
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 1.0f, 0.05f);
  EXPECT_EQ(opt.steps(), 300u);
}

TEST(Metrics, ConfusionAndScores) {
  const std::vector<float> probs{0.9f, 0.2f, 0.8f, 0.4f};
  const std::vector<float> labels{1, 0, 0, 1};
  const Confusion c = confusion_matrix(probs, labels);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
  EXPECT_DOUBLE_EQ(c.f1(), 0.5);
}

TEST(Metrics, MaskExcludesEntries) {
  const std::vector<float> probs{0.9f, 0.9f};
  const std::vector<float> labels{1, 0};
  const std::vector<unsigned char> mask{1, 0};
  const Confusion c = confusion_matrix(probs, labels, mask);
  EXPECT_EQ(c.total(), 1u);
  EXPECT_EQ(c.tp, 1u);
}

TEST(GnnModel, SaveLoadRoundTripPredictsIdentically) {
  GnnModelConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden_dim = 5;
  cfg.num_layers = 2;
  GnnModel model(cfg);
  const GnnGraph g = ring_graph(7);
  Rng rng(2);
  Matrix x(7, 4);
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
  const auto before = model.predict(g, x);
  std::stringstream ss;
  model.save(ss);
  GnnModel loaded = GnnModel::load(ss);
  const auto after = loaded.predict(g, x);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(before[i], after[i], 1e-5);
}

TEST(GnnGraph, FromTimingGraphIsUndirected) {
  const Design d = test::make_buffer_chain(2);
  const TimingGraph tg = build_timing_graph(d);
  const GnnGraph g = GnnGraph::from_timing_graph(tg);
  ASSERT_EQ(g.num_nodes, tg.num_nodes());
  // Each delay arc contributes one neighbor entry on each side.
  EXPECT_EQ(g.neighbors.size(), 2 * tg.num_live_arcs());
  // in0 has exactly one neighbor (the first buffer input).
  EXPECT_EQ(g.degree(d.primary_inputs()[0]), 1u);
}

// -------------------------------------------------------------- features

TEST(Features, NamesMatchTable1) {
  const auto basic = feature_names(false);
  ASSERT_EQ(basic.size(), kNumBasicFeatures);
  EXPECT_EQ(basic[0], "level_from_PI");
  EXPECT_EQ(basic[7], "is_ff_clock");
  const auto cppr = feature_names(true);
  ASSERT_EQ(cppr.size(), kNumFeaturesWithCppr);
  EXPECT_EQ(cppr.back(), "is_CPPR");
}

TEST(Features, ChainLevelsAndFlags) {
  const Design d = test::make_buffer_chain(3);
  const TimingGraph g = build_timing_graph(d);
  const Matrix x = extract_features(g, true);
  const NodeId in = d.primary_inputs()[0];
  const NodeId out = d.primary_outputs()[0];
  EXPECT_FLOAT_EQ(x(in, 0), 0.0f);                    // level_from_PI
  EXPECT_FLOAT_EQ(x(out, 1), 0.0f);                   // level_to_PO
  EXPECT_FLOAT_EQ(x(in, 4), 1.0f);                    // is_first_stage
  EXPECT_FLOAT_EQ(x(in, 6), 0.0f);                    // no clock network
  const auto lp = levels_from_pi(g);
  EXPECT_EQ(lp[in], 0);
  EXPECT_GT(lp[out], 3);
  const auto lo = levels_to_po(g);
  EXPECT_EQ(lo[out], 0);
  EXPECT_EQ(lo[in], lp[out]);
}

TEST(Features, ClockAndCpprFlags) {
  const Design d = test::make_small_design();
  const TimingGraph g = build_timing_graph(d);
  const Matrix x = extract_features(g, true);
  std::size_t clock_pins = 0;
  std::size_t cppr_pins = 0;
  std::size_t ff_clock_pins = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (x(n, 6) > 0.5f) ++clock_pins;
    if (x(n, 8) > 0.5f) ++cppr_pins;
    if (x(n, 7) > 0.5f) {
      ++ff_clock_pins;
      EXPECT_TRUE(g.node(n).is_ff_clock);
    }
  }
  EXPECT_GT(clock_pins, 0u);
  EXPECT_GT(cppr_pins, 0u);
  EXPECT_GT(ff_clock_pins, 0u);
  EXPECT_LT(cppr_pins, clock_pins);
}

TEST(Features, LastStageMarksPoDrivers) {
  const Design d = test::make_buffer_chain(2);
  const TimingGraph g = build_timing_graph(d);
  const Matrix x = extract_features(g, false);
  // The last buffer's output pin drives the PO net.
  const NodeId out = d.primary_outputs()[0];
  const NodeId driver = g.arc(g.fanin(out)[0]).from;
  EXPECT_FLOAT_EQ(x(driver, 3), 1.0f);
  EXPECT_FLOAT_EQ(x(out, 2), 1.0f);  // PO is fanout of a last-stage pin
}

TEST(Features, ValuesAreNormalized) {
  const Design d = test::make_small_design();
  const TimingGraph g = build_timing_graph(d);
  const Matrix x = extract_features(g, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x.data()[i], 0.0f);
    EXPECT_LE(x.data()[i], 1.0f);
  }
}

}  // namespace
}  // namespace tmm
