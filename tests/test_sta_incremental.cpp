#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "macro/ilm.hpp"
#include "macro/merge.hpp"
#include "sensitivity/ts_eval.hpp"
#include "sta/propagation.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace tmm {
namespace {

AocvConfig test_aocv() {
  AocvConfig a;
  a.enabled = true;
  return a;
}

// Exact (bitwise) equality of two snapshots: the incremental TS path
// feeds GNN training labels, so "close" is not good enough.
void expect_snapshot_bits_equal(const BoundarySnapshot& got,
                                const BoundarySnapshot& want) {
  ASSERT_EQ(got.num_ports, want.num_ports);
  auto eq = [](const std::vector<double>& x, const std::vector<double>& y,
               const char* what) {
    ASSERT_EQ(x.size(), y.size()) << what;
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(std::memcmp(&x[i], &y[i], sizeof(double)), 0)
          << what << "[" << i << "]: " << x[i] << " vs " << y[i];
  };
  eq(got.slew, want.slew, "slew");
  eq(got.at, want.at, "at");
  eq(got.rat, want.rat, "rat");
  eq(got.slack, want.slack, "slack");
}

// Field-by-field equality of two graphs, including the lazily cached
// adjacency and topological order (the delta contract keeps them valid
// across apply/undo instead of invalidating).
void expect_graph_equal(const TimingGraph& a, const TimingGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  ASSERT_EQ(a.num_checks(), b.num_checks());
  EXPECT_EQ(a.num_owned_tables(), b.num_owned_tables());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.node(n).dead, b.node(n).dead) << "node " << n;
    EXPECT_EQ(a.fanin(n), b.fanin(n)) << "fanin of " << n;
    EXPECT_EQ(a.fanout(n), b.fanout(n)) << "fanout of " << n;
    EXPECT_EQ(a.checks_of(n), b.checks_of(n)) << "checks of " << n;
  }
  for (ArcId i = 0; i < a.num_arcs(); ++i) {
    const GraphArc& x = a.arc(i);
    const GraphArc& y = b.arc(i);
    EXPECT_EQ(x.from, y.from) << "arc " << i;
    EXPECT_EQ(x.to, y.to) << "arc " << i;
    EXPECT_EQ(x.kind, y.kind) << "arc " << i;
    EXPECT_EQ(x.sense, y.sense) << "arc " << i;
    EXPECT_EQ(x.is_launch, y.is_launch) << "arc " << i;
    EXPECT_EQ(x.dead, y.dead) << "arc " << i;
    EXPECT_EQ(x.baked_derate, y.baked_derate) << "arc " << i;
    EXPECT_EQ(x.wire_delay_ps, y.wire_delay_ps) << "arc " << i;
    EXPECT_EQ(x.delay, y.delay) << "arc " << i;
    EXPECT_EQ(x.out_slew, y.out_slew) << "arc " << i;
  }
  EXPECT_EQ(a.topo_order(), b.topo_order());
}

// From-scratch what-if result for removing `pin`: graph copy + full
// merge + full propagation — the path the incremental engine must
// reproduce bit for bit.
BoundarySnapshot full_path_snapshot(const TimingGraph& ilm, NodeId pin,
                                    const MergeConfig& mcfg,
                                    const Sta::Options& opt,
                                    const BoundaryConstraints& bc) {
  TimingGraph scratch = ilm;
  std::vector<bool> keep(ilm.num_nodes(), true);
  keep[pin] = false;
  merge_insensitive_pins(scratch, keep, mcfg);
  Sta sta(scratch, opt);
  sta.run(bc);
  return sta.boundary_snapshot();
}

/// Randomized equivalence harness: random graphs x random single-pin
/// removals x random constraint sets; run_incremental snapshots must
/// exactly equal from-scratch runs, and undo must restore the graph
/// byte-equivalently each round.
void run_equivalence(const Design& d, bool use_ilm, bool cppr, bool aocv,
                     std::uint64_t seed, std::size_t num_pins,
                     std::size_t num_sets) {
  SCOPED_TRACE(testing::Message() << "cppr=" << cppr << " aocv=" << aocv
                                  << " ilm=" << use_ilm << " seed=" << seed);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph g = use_ilm ? extract_ilm(flat).graph : flat;
  ASSERT_FALSE(has_parallel_duplicate_arcs(g));
  Sta::Options opt;
  opt.cppr = cppr;
  if (aocv) opt.aocv = test_aocv();
  MergeConfig mcfg;
  mcfg.aocv = opt.aocv;

  Rng rng(seed);
  std::vector<BoundaryConstraints> sets;
  for (std::size_t c = 0; c < num_sets; ++c)
    sets.push_back(random_constraints(g.primary_inputs().size(),
                                      g.primary_outputs().size(), {}, rng));
  std::vector<NodeId> cands;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (mergeable(g, n, mcfg)) cands.push_back(n);
  ASSERT_FALSE(cands.empty());

  g.topo_order();  // materialize caches before the pristine copy
  const TimingGraph pristine = g;
  MergeDelta delta(g);
  ASSERT_TRUE(delta.applicable());
  std::vector<Sta> engines;
  engines.reserve(sets.size());
  for (std::size_t c = 0; c < sets.size(); ++c) {
    engines.emplace_back(g, opt);
    engines.back().run(sets[c]);
    engines.back().set_reference();
  }

  BoundarySnapshot snap;
  std::size_t removed_count = 0;
  for (std::size_t k = 0; k < num_pins; ++k) {
    const NodeId pin = cands[rng() % cands.size()];
    SCOPED_TRACE(testing::Message() << "pin " << pin);
    const bool removed = delta.apply(pin, mcfg);
    removed_count += removed ? 1 : 0;
    for (std::size_t c = 0; c < sets.size(); ++c) {
      engines[c].run_incremental(sets[c], delta.touched());
      engines[c].snapshot_into(snap);
      expect_snapshot_bits_equal(
          snap, full_path_snapshot(pristine, pin, mcfg, opt, sets[c]));
    }
    delta.undo();
    expect_graph_equal(g, pristine);
  }
  // The harness must actually exercise removals, not only refusals.
  EXPECT_GT(removed_count, 0u);
}

TEST(StaIncremental, EquivalentOnTinyDesignAllModes) {
  const Design d = test::make_tiny_design("inc_tiny", 101);
  for (const bool cppr : {false, true})
    for (const bool aocv : {false, true})
      run_equivalence(d, /*use_ilm=*/false, cppr, aocv, 0x11 + cppr + 2 * aocv,
                      /*num_pins=*/8, /*num_sets=*/2);
}

TEST(StaIncremental, EquivalentOnTinyIlm) {
  const Design d = test::make_tiny_design("inc_tiny_ilm", 102);
  for (const bool cppr : {false, true})
    run_equivalence(d, /*use_ilm=*/true, cppr, /*aocv=*/false, 0x21 + cppr,
                    /*num_pins=*/8, /*num_sets=*/2);
}

TEST(StaIncremental, EquivalentOnSmallIlmCppr) {
  const Design d = test::make_small_design("inc_small", 103);
  run_equivalence(d, /*use_ilm=*/true, /*cppr=*/true, /*aocv=*/false, 0x31,
                  /*num_pins=*/6, /*num_sets=*/2);
}

TEST(StaIncremental, EquivalentOnSmallIlmAocv) {
  const Design d = test::make_small_design("inc_small_aocv", 104);
  run_equivalence(d, /*use_ilm=*/true, /*cppr=*/true, /*aocv=*/true, 0x41,
                  /*num_pins=*/6, /*num_sets=*/2);
}

TEST(StaIncremental, EquivalentOnBufferChain) {
  const Design d = test::make_buffer_chain(12);
  run_equivalence(d, /*use_ilm=*/false, /*cppr=*/true, /*aocv=*/false, 0x51,
                  /*num_pins=*/10, /*num_sets=*/2);
}

TEST(StaIncremental, RunIncrementalRequiresReference) {
  const Design d = test::make_tiny_design("inc_guard", 105);
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g, Sta::Options{});
  const std::vector<NodeId> none;
  EXPECT_THROW(sta.run_incremental({}, none), std::logic_error);
}

TEST(StaIncremental, EmptyDirtySetReproducesReference) {
  const Design d = test::make_tiny_design("inc_empty", 106);
  const TimingGraph g = build_timing_graph(d);
  Rng rng(7);
  const BoundaryConstraints bc = random_constraints(
      g.primary_inputs().size(), g.primary_outputs().size(), {}, rng);
  Sta sta(g, Sta::Options{});
  sta.run(bc);
  const BoundarySnapshot ref = sta.boundary_snapshot();
  sta.set_reference();
  const std::vector<NodeId> none;
  const StaIncrementalStats st = sta.run_incremental(bc, none);
  EXPECT_EQ(st.fwd_recomputed, 0u);
  EXPECT_EQ(st.bwd_recomputed, 0u);
  expect_snapshot_bits_equal(sta.boundary_snapshot(), ref);
}

TEST(MergeDelta, ApplyUndoRoundTripIsByteEquivalent) {
  const Design d = test::make_small_design("delta_rt", 107);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph g = extract_ilm(flat).graph;
  MergeConfig mcfg;
  std::vector<NodeId> cands;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (mergeable(g, n, mcfg)) cands.push_back(n);
  ASSERT_FALSE(cands.empty());
  g.topo_order();
  const TimingGraph pristine = g;
  MergeDelta delta(g);
  ASSERT_TRUE(delta.applicable());
  std::size_t applied = 0;
  for (const NodeId pin : cands) {
    if (delta.apply(pin, mcfg)) {
      ++applied;
      EXPECT_FALSE(delta.touched().empty());
      EXPECT_TRUE(g.node(pin).dead);
    }
    delta.undo();
    expect_graph_equal(g, pristine);
  }
  EXPECT_GT(applied, 0u);
}

TEST(MergeDelta, RefusedPinLeavesGraphUntouched) {
  const Design d = test::make_tiny_design("delta_refuse", 108);
  TimingGraph g = build_timing_graph(d);
  g.topo_order();
  const std::size_t arcs = g.num_arcs();
  MergeDelta delta(g);
  // A primary input is never mergeable.
  const NodeId pi = g.primary_inputs()[0];
  MergeConfig mcfg;
  EXPECT_FALSE(delta.apply(pi, mcfg));
  EXPECT_FALSE(delta.applied());
  EXPECT_TRUE(delta.touched().empty());
  EXPECT_EQ(g.num_arcs(), arcs);
  delta.undo();  // no-op
  EXPECT_EQ(g.num_arcs(), arcs);
}

TEST(MergeDelta, ApplyTwiceWithoutUndoThrows) {
  const Design d = test::make_small_design("delta_twice", 109);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph g = extract_ilm(flat).graph;
  MergeConfig mcfg;
  NodeId pin = kInvalidId;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (mergeable(g, n, mcfg) && !g.fanin(n).empty() && !g.fanout(n).empty()) {
      pin = n;
      break;
    }
  ASSERT_NE(pin, kInvalidId);
  g.topo_order();
  MergeDelta delta(g);
  ASSERT_TRUE(delta.apply(pin, mcfg));
  EXPECT_THROW(delta.apply(pin, mcfg), std::logic_error);
  delta.undo();
}

TEST(TsIncremental, EvaluateTimingSensitivityBitIdentical) {
  for (const bool cppr : {false, true}) {
    SCOPED_TRACE(testing::Message() << "cppr=" << cppr);
    const Design d = test::make_small_design("ts_inc", 110);
    const TimingGraph flat = build_timing_graph(d);
    const IlmResult ilm = extract_ilm(flat);
    std::vector<bool> cands(ilm.graph.num_nodes(), true);
    TsConfig cfg;
    cfg.num_constraint_sets = 2;
    cfg.cppr = cppr;
    cfg.threads = 2;
    cfg.incremental = true;
    const TsResult inc = evaluate_timing_sensitivity(ilm.graph, cands, cfg);
    cfg.incremental = false;
    const TsResult full = evaluate_timing_sensitivity(ilm.graph, cands, cfg);
    ASSERT_EQ(inc.ts.size(), full.ts.size());
    ASSERT_EQ(inc.evaluated_pins, full.evaluated_pins);
    std::size_t nonzero = 0;
    for (std::size_t n = 0; n < inc.ts.size(); ++n) {
      EXPECT_EQ(std::memcmp(&inc.ts[n], &full.ts[n], sizeof(double)), 0)
          << "ts[" << n << "]: " << inc.ts[n] << " vs " << full.ts[n];
      nonzero += inc.ts[n] != 0.0 ? 1 : 0;
    }
    // The comparison must be about real sensitivities, not all zeros.
    EXPECT_GT(nonzero, 0u);
  }
}

TEST(TsEval, MeanRelativeDiffSizeMismatchIsMaxPenalty) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_EQ(mean_relative_diff(a, b), 1.0);
  EXPECT_EQ(mean_relative_diff(b, a), 1.0);
  EXPECT_EQ(mean_relative_diff(a, a), 0.0);
}

}  // namespace
}  // namespace tmm
