#include <gtest/gtest.h>

#include <sstream>

#include "liberty/liberty_writer.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(LibertyWriter, EmitsWellFormedGroups) {
  const Library& lib = test::shared_library();
  std::stringstream ss;
  const std::size_t bytes = write_liberty(lib, ss);
  EXPECT_GT(bytes, 10000u);
  const std::string s = ss.str();

  // Balanced braces.
  long depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);

  // Header and the expected group kinds.
  EXPECT_NE(s.find("library (tmm_nldm45_late)"), std::string::npos);
  EXPECT_NE(s.find("delay_model : table_lookup;"), std::string::npos);
  EXPECT_NE(s.find("lu_table_template ("), std::string::npos);
  EXPECT_NE(s.find("cell (INV_X1)"), std::string::npos);
  EXPECT_NE(s.find("cell (DFF_X1)"), std::string::npos);
  EXPECT_NE(s.find("timing_type : rising_edge;"), std::string::npos);
  EXPECT_NE(s.find("timing_type : setup_rising;"), std::string::npos);
  EXPECT_NE(s.find("timing_sense : negative_unate;"), std::string::npos);
  EXPECT_NE(s.find("rise_constraint"), std::string::npos);
  EXPECT_NE(s.find("cell_rise"), std::string::npos);
  EXPECT_NE(s.find("fall_transition"), std::string::npos);
}

TEST(LibertyWriter, OneCellGroupPerCell) {
  const Library& lib = test::shared_library();
  std::stringstream ss;
  write_liberty(lib, ss);
  const std::string s = ss.str();
  std::size_t count = 0;
  for (std::size_t pos = s.find("\n  cell ("); pos != std::string::npos;
       pos = s.find("\n  cell (", pos + 1))
    ++count;
  EXPECT_EQ(count, lib.num_cells());
}

TEST(LibertyWriter, EarlyCornerDiffers) {
  const Library& lib = test::shared_library();
  std::stringstream late_ss, early_ss;
  write_liberty(lib, late_ss, {.el = kLate});
  write_liberty(lib, early_ss, {.el = kEarly});
  EXPECT_NE(late_ss.str(), early_ss.str());
  EXPECT_NE(early_ss.str().find("library (tmm_nldm45_early)"),
            std::string::npos);
}

}  // namespace
}  // namespace tmm
