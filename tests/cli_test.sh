#!/bin/sh
# End-to-end CLI smoke test: generate designs, train, build a macro,
# evaluate it. Run by ctest with the tmm binary path as $1 and the
# serve_loadgen binary path as $2.
set -e
TMM="$1"
LOADGEN="$2"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$TMM" gen-design "$DIR/block.dsn" --pins 2500 --seed 5 --name cli_block
"$TMM" stats "$DIR/block.dsn"
"$TMM" sta "$DIR/block.dsn" --period 900
"$TMM" gen-design "$DIR/t1.dsn" --pins 1000 --seed 6 --name t1
"$TMM" gen-design "$DIR/t2.dsn" --pins 1200 --seed 7 --name t2
"$TMM" train "$DIR/m.gnn" "$DIR/t1.dsn" "$DIR/t2.dsn"
"$TMM" generate "$DIR/m.gnn" "$DIR/block.dsn" "$DIR/block.macro"
"$TMM" evaluate "$DIR/block.dsn" "$DIR/block.macro"

# Invariant checker: every design and the generated macro model must be
# free of error-severity diagnostics.
"$TMM" lint "$DIR/block.dsn" "$DIR/t1.dsn" "$DIR/t2.dsn"
"$TMM" lint "$DIR/block.macro"

# Regression-mode variant and CPPR-off variant must also work.
"$TMM" train "$DIR/mr.gnn" "$DIR/t1.dsn" --regression
"$TMM" generate "$DIR/mr.gnn" "$DIR/block.dsn" "$DIR/block2.macro" --regression
"$TMM" evaluate "$DIR/block.dsn" "$DIR/block2.macro" --no-cppr
"$TMM" export-lib "$DIR/cells.lib"
"$TMM" export-lib "$DIR/cells_early.lib" --early
test -s "$DIR/cells.lib"

# Observability: --trace/--metrics must produce non-empty files on any
# subcommand, parseable as JSON when python3 is around.
"$TMM" --trace "$DIR/trace.json" --metrics "$DIR/metrics.json" \
  sta "$DIR/block.dsn"
test -s "$DIR/trace.json"
test -s "$DIR/metrics.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$DIR/trace.json" > /dev/null
  python3 -m json.tool "$DIR/metrics.json" > /dev/null
fi
grep -q '"ph"' "$DIR/trace.json"
grep -q 'sta.runs' "$DIR/metrics.json"

# Unknown or out-of-place options must be rejected with exit code 2.
set +e
"$TMM" lint --pins 5 "$DIR/block.dsn" 2> "$DIR/err1.txt"
rc1=$?
"$TMM" sta "$DIR/block.dsn" --bogus 2> "$DIR/err2.txt"
rc2=$?
set -e
[ "$rc1" -eq 2 ]
[ "$rc2" -eq 2 ]
grep -q "not valid for subcommand" "$DIR/err1.txt"
grep -q "unknown option" "$DIR/err2.txt"

# TMM_LOG controls the startup threshold; info lines carry the
# "[tmm INFO" prefix.
TMM_LOG=info "$TMM" sta "$DIR/block.dsn" 2> "$DIR/log.txt"
grep -q "\[tmm INFO" "$DIR/log.txt"

# --- Parallel STA: --threads / TMM_THREADS (docs/PERFORMANCE.md) ------------

# Multi-threaded analysis must print byte-identical reports.
"$TMM" sta "$DIR/block.dsn" --threads 1 > "$DIR/sta_t1.txt"
"$TMM" sta "$DIR/block.dsn" --threads 4 > "$DIR/sta_t4.txt"
cmp "$DIR/sta_t1.txt" "$DIR/sta_t4.txt"
TMM_THREADS=3 "$TMM" sta "$DIR/block.dsn" > "$DIR/sta_env.txt"
cmp "$DIR/sta_t1.txt" "$DIR/sta_env.txt"

# --threads 0 and a malformed TMM_THREADS are configuration errors.
set +e
"$TMM" sta "$DIR/block.dsn" --threads 0 2> "$DIR/errt1.txt"
rct1=$?
TMM_THREADS="4x" "$TMM" stats "$DIR/block.dsn" 2> "$DIR/errt2.txt"
rct2=$?
"$TMM" lint --threads 2 "$DIR/block.dsn" 2> "$DIR/errt3.txt"
rct3=$?
set -e
[ "$rct1" -eq 2 ]
grep -q "positive integer" "$DIR/errt1.txt"
[ "$rct2" -eq 2 ]
grep -q "invalid TMM_THREADS" "$DIR/errt2.txt"
[ "$rct3" -eq 2 ]
grep -q "not valid for subcommand" "$DIR/errt3.txt"

# --- Robustness: fault injection, checkpoint/resume, exit codes -------------

# The fault-site registry must be non-empty and include the flow hooks.
"$TMM" fault-sites > "$DIR/sites.txt"
grep -q "flow.train_design" "$DIR/sites.txt"
grep -q "util.atomic_write" "$DIR/sites.txt"

# A malformed TMM_FAULT spec is a configuration error: exit code 2.
set +e
TMM_FAULT="no.such.site:1" "$TMM" stats "$DIR/block.dsn" 2> "$DIR/err3.txt"
rc3=$?
set -e
[ "$rc3" -eq 2 ]
grep -q "unregistered site" "$DIR/err3.txt"

# End-to-end checkpointed flow; rerunning against the same directory
# must resume from the per-design results rather than recompute.
"$TMM" flow "$DIR/run" "$DIR/t1.dsn" "$DIR/t2.dsn" > "$DIR/flow1.txt"
test -s "$DIR/run/model.gnn"
test -s "$DIR/run/out/t1.macro"
test -s "$DIR/run/results/t2.res"
"$TMM" --resume "$DIR/run" flow "$DIR/t1.dsn" "$DIR/t2.dsn" > "$DIR/flow2.txt"
grep -q "(resumed)" "$DIR/flow2.txt"
# No torn temp files may survive a completed run.
[ "$(find "$DIR/run" -name '*.tmp.*' | wc -l)" -eq 0 ]

# A design failure mid-flow degrades the run: exit code 3, with the
# failed design named in the summary and counted in the metrics JSON.
set +e
TMM_FAULT="flow.train_design:1" "$TMM" --metrics "$DIR/m3.json" \
  flow "$DIR/run3" "$DIR/t1.dsn" "$DIR/t2.dsn" > "$DIR/flow3.txt"
rc4=$?
set -e
[ "$rc4" -eq 3 ]
grep -q "FAILED" "$DIR/flow3.txt"
grep -q '"flow.designs_failed": 1' "$DIR/m3.json"

# --- Serving: pack, serve, loadgen (docs/SERVING.md) ------------------------

# pack: .macro -> .tmb (explicit --out and default extension swap).
mkdir -p "$DIR/models"
"$TMM" pack "$DIR/run/out/t1.macro" --out "$DIR/models/t1.tmb"
"$TMM" pack "$DIR/run/out/t2.macro" --out "$DIR/models/t2.tmb"
test -s "$DIR/models/t1.tmb"
"$TMM" pack "$DIR/block.macro"
test -s "$DIR/block.tmb"

# Serving-artifact lint: packed images and the model directory are
# clean; a truncated image is a finding (exit 3, S001); the concurrency
# self-audit dumps the lock hierarchy and must report it acyclic.
"$TMM" lint "$DIR/models/t1.tmb"
"$TMM" lint "$DIR/models"
head -c 40 "$DIR/models/t1.tmb" > "$DIR/trunc.tmb"
set +e
"$TMM" lint "$DIR/trunc.tmb" > "$DIR/lint_trunc.txt"
rc_lint=$?
set -e
[ "$rc_lint" -eq 3 ]
grep -q "S001" "$DIR/lint_trunc.txt"
"$TMM" lint --concurrency > "$DIR/lint_conc.txt"
grep -q "acyclic" "$DIR/lint_conc.txt"

# An injected pack fault is a runtime failure: exit code 1.
set +e
TMM_FAULT="serve.pack:1" "$TMM" pack "$DIR/block.macro" 2> "$DIR/err4.txt"
rc5=$?
set -e
[ "$rc5" -eq 1 ]
grep -q "serve.pack" "$DIR/err4.txt"

# A corrupt .tmb fails to load: serving a directory holding only that
# file is a runtime failure (exit 1), and a missing directory is too.
mkdir -p "$DIR/badmodels"
printf 'not a tmb image' > "$DIR/badmodels/bad.tmb"
set +e
"$TMM" serve "$DIR/badmodels" --socket "$DIR/bad.sock" 2> /dev/null
rc6=$?
"$TMM" serve "$DIR/no_such_dir" --socket "$DIR/bad.sock" 2> /dev/null
rc7=$?
set -e
[ "$rc6" -eq 1 ]
[ "$rc7" -eq 1 ]

# Full serving loop: server on a unix socket, loadgen verifying every
# response bit-identical against the offline evaluator, SIGTERM drain.
"$TMM" serve "$DIR/models" --socket "$DIR/tmm.sock" --threads 2 \
  > "$DIR/serve.txt" 2>&1 &
SRV=$!
i=0
while [ ! -S "$DIR/tmm.sock" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
[ -S "$DIR/tmm.sock" ]
TMM_BENCH_JSON_DIR="$DIR" "$LOADGEN" --socket "$DIR/tmm.sock" \
  --model-dir "$DIR/models" --threads 4 --seconds 1 --warm-keys 4 \
  > "$DIR/loadgen.txt"

# Live introspection channel while the server is still up: one-shot
# stats/health/flight snapshots must be valid JSON with windowed fields
# (docs/OBSERVABILITY.md, "Live serving telemetry").
"$TMM" stat "$DIR/tmm.sock" > "$DIR/stat.json"
grep -q '"global"' "$DIR/stat.json"
grep -q '"10s"' "$DIR/stat.json"
grep -q '"300s"' "$DIR/stat.json"
grep -q '"p999_us"' "$DIR/stat.json"
grep -q '"cache_hit_rate"' "$DIR/stat.json"
"$TMM" stat --health "$DIR/tmm.sock" > "$DIR/health.json"
grep -q '"status": "ok"' "$DIR/health.json"
"$TMM" stat --flight "$DIR/tmm.sock" > "$DIR/flight.json"
grep -q '"records_total"' "$DIR/flight.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$DIR/stat.json" > /dev/null
  python3 -m json.tool "$DIR/health.json" > /dev/null
  python3 -m json.tool "$DIR/flight.json" > /dev/null
fi
# --health and --flight are mutually exclusive: usage error (exit 2).
set +e
"$TMM" stat --health --flight "$DIR/tmm.sock" 2> /dev/null
rc_stat=$?
set -e
[ "$rc_stat" -eq 2 ]

kill -TERM "$SRV"
set +e
wait "$SRV"
rc8=$?
set -e
[ "$rc8" -eq 0 ]                      # clean drain
grep -q "drained" "$DIR/serve.txt"
[ ! -S "$DIR/tmm.sock" ]              # socket unlinked on shutdown
test -s "$DIR/BENCH_serve.json"
grep -q '"total_bit_mismatches": 0' "$DIR/BENCH_serve.json"
grep -q '"total_errors": 0' "$DIR/BENCH_serve.json"
grep -q '"git_sha"' "$DIR/BENCH_serve.json"

# In-server fault sites need a live client: an injected request-parse
# fault becomes an error response the loadgen reports (exit 1); an
# injected response-write fault aborts one connection, which the
# loadgen now rides out by reconnecting and retrying (exit 0, with the
# retry counted in its report). Either way the server survives to a
# clean exit-0 drain.
for SITE in serve.parse_request serve.write_response; do
  SOCK="$DIR/$SITE.sock"
  TMM_FAULT="$SITE:1" "$TMM" serve "$DIR/models" --socket "$SOCK" \
    --threads 1 > "$DIR/$SITE.txt" 2>&1 &
  SRVF=$!
  i=0
  while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
  set +e
  TMM_BENCH_JSON_DIR="$DIR" "$LOADGEN" --socket "$SOCK" \
    --model-dir "$DIR/models" --threads 2 --seconds 1 --warm-keys 2 \
    > "$DIR/$SITE.loadgen.txt"
  rcf=$?
  kill -TERM "$SRVF"
  wait "$SRVF"
  rcs=$?
  set -e
  if [ "$SITE" = serve.parse_request ]; then
    [ "$rcf" -eq 1 ]   # error response surfaced to the client
  else
    [ "$rcf" -eq 0 ]   # connection abort absorbed by reconnect + retry
    grep -q '"response_retries": [1-9]' "$DIR/BENCH_serve.json"
  fi
  [ "$rcs" -eq 0 ]   # server survived it and drained cleanly
  # Dump-on-fault: the fire hook froze the flight recorder next to the
  # models (serve defaults --dump-dir to the model directory).
  DUMP="$DIR/models/flight.$(echo "$SITE" | tr '.' '_').json"
  test -s "$DUMP"
  grep -q '"records_total"' "$DUMP"
done

# --- Hot reload: tmm stat --reload against a live server --------------------

# A reload over the admin channel bumps the generation without a
# restart; pointing the reload at a directory holding a corrupt pack
# rolls back (reload is strict where startup is lax) and the failure is
# visible in stats while the old generation keeps serving.
mkdir -p "$DIR/rmodels"
cp "$DIR/models/t1.tmb" "$DIR/rmodels/t1.tmb"
"$TMM" serve "$DIR/rmodels" --socket "$DIR/reload.sock" --threads 2 \
  > "$DIR/serve_reload.txt" 2>&1 &
SRVR=$!
i=0
while [ ! -S "$DIR/reload.sock" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
"$TMM" stat --health "$DIR/reload.sock" > "$DIR/rhealth1.json"
grep -q '"generation": 1' "$DIR/rhealth1.json"
"$TMM" stat --reload "$DIR/reload.sock" > "$DIR/reload1.json"
grep -q '"ok": true' "$DIR/reload1.json"
grep -q '"generation": 2' "$DIR/reload1.json"
grep -q '"swap_us"' "$DIR/reload1.json"
# Corrupt pack in the directory: reload refuses the swap...
cp "$DIR/badmodels/bad.tmb" "$DIR/rmodels/bad.tmb"
"$TMM" stat --reload "$DIR/reload.sock" > "$DIR/reload2.json"
grep -q '"ok": false' "$DIR/reload2.json"
# ...the old generation keeps serving bit-identically...
TMM_BENCH_JSON_DIR="$DIR" "$LOADGEN" --socket "$DIR/reload.sock" \
  --model-dir "$DIR/rmodels" --threads 2 --seconds 1 --warm-keys 2 \
  > "$DIR/reload.loadgen.txt"
# ...and the failure is reported on the stats channel.
"$TMM" stat "$DIR/reload.sock" > "$DIR/rstat.json"
grep -q '"reload_failures": 1' "$DIR/rstat.json"
grep -q '"max_inflight"' "$DIR/rstat.json"
# --reload is one-shot admin traffic: not combinable with --watch.
set +e
"$TMM" stat --reload --watch "$DIR/reload.sock" 2> /dev/null
rc_rw=$?
set -e
[ "$rc_rw" -eq 2 ]
kill -TERM "$SRVR"
set +e
wait "$SRVR"
rc10=$?
set -e
[ "$rc10" -eq 0 ]
grep -q "1 failed" "$DIR/serve_reload.txt"

# Degraded startup: one corrupt model among good ones still serves, but
# the drain exits 3 so orchestrators notice.
cp "$DIR/badmodels/bad.tmb" "$DIR/models/bad.tmb"
"$TMM" serve "$DIR/models" --socket "$DIR/tmm2.sock" --threads 1 \
  > "$DIR/serve2.txt" 2>&1 &
SRV2=$!
i=0
while [ ! -S "$DIR/tmm2.sock" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
kill -TERM "$SRV2"
set +e
wait "$SRV2"
rc9=$?
set -e
[ "$rc9" -eq 3 ]

# --- Real-circuit frontend: BLIF / structural-Verilog import ----------------
# Import an MCNC-style BLIF twice (byte-identical .dsn), lint the
# source directly, time the imported design, import a Verilog netlist,
# and run the checkpointed flow straight over the .blif.
cat > "$DIR/maj.blif" <<'EOF'
.model cli_majority
.inputs a b c
.outputs y
.names a b ab
11 1
.names a c ac
11 1
.names b c bc
11 1
.names ab ac bc y
1-- 1
-1- 1
--1 1
.end
EOF
"$TMM" import "$DIR/maj.blif" --out "$DIR/maj.dsn"
"$TMM" import "$DIR/maj.blif" --out "$DIR/maj2.dsn"
cmp "$DIR/maj.dsn" "$DIR/maj2.dsn"
"$TMM" lint "$DIR/maj.blif"
"$TMM" stats "$DIR/maj.dsn"
"$TMM" sta "$DIR/maj.dsn"
cat > "$DIR/mux.v" <<'EOF'
module cli_mux(input d0, input d1, input sel, output y);
  wire nsel, a0, b0;
  INV_X1 u0 (.A(sel), .Y(nsel));
  NAND2_X1 u1 (.A(d0), .B(nsel), .Y(a0));
  NAND2_X1 u2 (.A(d1), .B(sel), .Y(b0));
  NAND2_X1 u3 (.A(a0), .B(b0), .Y(y));
endmodule
EOF
"$TMM" import "$DIR/mux.v" --out "$DIR/mux.dsn"
"$TMM" sta "$DIR/mux.dsn"
"$TMM" flow "$DIR/fe-flow" "$DIR/maj.blif" "$DIR/t1.dsn"
test -s "$DIR/fe-flow/out/cli_majority.macro"

# Malformed BLIF: structured parse diagnostic with file:line, exit 1.
printf '.model bad\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n' \
  > "$DIR/bad.blif"
set +e
"$TMM" import "$DIR/bad.blif" --out "$DIR/bad.dsn" 2> "$DIR/fe-err.txt"
rcfe=$?
set -e
[ "$rcfe" -eq 1 ]
grep -q "bad.blif:5" "$DIR/fe-err.txt"

echo "CLI_OK"
