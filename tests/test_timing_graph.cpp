#include <gtest/gtest.h>

#include "sta/timing_graph.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(TimingGraph, BuildMapsPinsOneToOne) {
  const Design d = test::make_tiny_design();
  const TimingGraph g = build_timing_graph(d);
  EXPECT_EQ(g.num_nodes(), d.num_pins());
  for (PinId p = 0; p < d.num_pins(); ++p)
    EXPECT_EQ(g.node(p).name, d.pin_name(p));
}

TEST(TimingGraph, WireArcsCarryElmoreDelay) {
  const Design d = test::make_buffer_chain(1, /*wire_res=*/0.2,
                                           /*wire_cap=*/0.5);
  const TimingGraph g = build_timing_graph(d);
  // in0 -> b0/A: delay = res * cap(b0/A).
  const auto& arcs = g.fanout(d.primary_inputs()[0]);
  ASSERT_EQ(arcs.size(), 1u);
  const GraphArc& a = g.arc(arcs[0]);
  EXPECT_EQ(a.kind, GraphArcKind::kWire);
  EXPECT_NEAR(a.wire_delay_ps, 0.2 * d.pin_cap_ff(a.to), 1e-9);
}

TEST(TimingGraph, DriverLoadsAccumulateWireAndPins) {
  const Design d = test::make_tiny_design();
  const TimingGraph g = build_timing_graph(d);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    EXPECT_NEAR(g.node(net.driver).static_load_ff, d.net_load_ff(n), 1e-9);
  }
}

TEST(TimingGraph, PoAttachmentRecorded) {
  const Design d = test::make_buffer_chain(2);
  const TimingGraph g = build_timing_graph(d);
  const NodeId po = d.primary_outputs()[0];
  const NodeId driver = g.arc(g.fanin(po)[0]).from;
  ASSERT_EQ(g.node(driver).attached_po_loads.size(), 1u);
  EXPECT_EQ(g.node(driver).attached_po_loads[0],
            g.node(po).port_ordinal);
}

TEST(TimingGraph, KillNodeRemovesIncidentArcs) {
  const Design d = test::make_buffer_chain(3);
  TimingGraph g = build_timing_graph(d);
  const std::size_t arcs_before = g.num_live_arcs();
  const NodeId victim = g.arc(g.fanout(d.primary_inputs()[0])[0]).to;
  g.kill_node(victim);
  EXPECT_TRUE(g.node(victim).dead);
  EXPECT_LT(g.num_live_arcs(), arcs_before);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (!arc.dead) {
      EXPECT_NE(arc.from, victim);
      EXPECT_NE(arc.to, victim);
    }
  }
  EXPECT_NO_THROW(g.topo_order());
}

TEST(TimingGraph, TopoOrderDetectsCycles) {
  TimingGraph g;
  GraphNode n;
  n.name = "a";
  const NodeId a = g.add_node(n);
  n.name = "b";
  const NodeId b = g.add_node(n);
  g.add_wire_arc(a, b, 1.0);
  g.add_wire_arc(b, a, 1.0);
  EXPECT_THROW(g.topo_order(), std::runtime_error);
}

TEST(TimingGraph, OwnedTablesStableAcrossGrowthAndMove) {
  TimingGraph g;
  GraphNode n;
  n.name = "x";
  g.add_node(n);
  std::vector<const ElRf<Lut>*> ptrs;
  for (int i = 0; i < 100; ++i) {
    ElRf<Lut> t;
    t.fill(Lut::scalar(static_cast<double>(i)));
    ptrs.push_back(g.own_tables(std::move(t)));
  }
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ((*ptrs[i])(kLate, kRise).lookup(0, 0),
                     static_cast<double>(i));
  TimingGraph moved = std::move(g);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ((*ptrs[i])(kLate, kRise).lookup(0, 0),
                     static_cast<double>(i));
  EXPECT_GT(moved.owned_table_doubles(), 0u);
}

TEST(TimingGraph, ChecksIndexedByDataPin) {
  const Design d = test::make_tiny_design();
  const TimingGraph g = build_timing_graph(d);
  std::size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (std::uint32_t c : g.checks_of(u)) {
      EXPECT_EQ(g.check(c).data, u);
      ++total;
    }
  }
  EXPECT_EQ(total, g.num_checks());
  EXPECT_GT(total, 0u);
}

TEST(TimingGraph, ClockNetworkBoundedByFlops) {
  const Design d = test::make_tiny_design();
  const TimingGraph g = build_timing_graph(d);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!g.node(u).in_clock_network || g.node(u).is_ff_clock) continue;
    // Clock-network interior must not be a flop data pin or a PO.
    EXPECT_FALSE(g.node(u).is_ff_data);
    EXPECT_NE(g.node(u).role, NodeRole::kPrimaryOutput);
  }
  // Every flop clock pin is in the network.
  for (const auto& c : g.checks())
    EXPECT_TRUE(g.node(c.clock).in_clock_network);
}

TEST(TimingGraph, WireSlewDegradationIsMonotone) {
  EXPECT_DOUBLE_EQ(wire_slew(10.0, 0.0), 10.0);
  EXPECT_GT(wire_slew(10.0, 5.0), 10.0);
  EXPECT_GT(wire_slew(10.0, 8.0), wire_slew(10.0, 5.0));
  EXPECT_GT(wire_slew(20.0, 5.0), wire_slew(10.0, 5.0));
}

TEST(TimingGraph, LiveCountsTrackKills) {
  const Design d = test::make_buffer_chain(4);
  TimingGraph g = build_timing_graph(d);
  const std::size_t n0 = g.num_live_nodes();
  const std::size_t a0 = g.num_live_arcs();
  g.kill_arc(0);
  EXPECT_EQ(g.num_live_arcs(), a0 - 1);
  EXPECT_EQ(g.num_live_nodes(), n0);
}

}  // namespace
}  // namespace tmm
