#include <gtest/gtest.h>

#include "macro/evaluate.hpp"
#include "macro/ilm.hpp"
#include "macro/merge.hpp"
#include "macro/model_io.hpp"
#include "test_helpers.hpp"

#include <sstream>

namespace tmm {
namespace {

std::vector<BoundaryConstraints> eval_sets(const Design& d, std::uint64_t seed,
                                           int n = 3) {
  Rng rng(seed);
  std::vector<BoundaryConstraints> sets;
  for (int i = 0; i < n; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  return sets;
}

TEST(Merge, ChainCollapsesToFewNodes) {
  const Design d = test::make_buffer_chain(6);
  TimingGraph g = build_timing_graph(d);
  const std::size_t before = g.num_live_nodes();
  std::vector<bool> keep(g.num_nodes(), false);  // merge everything legal
  const MergeStats stats = merge_insensitive_pins(g, keep);
  EXPECT_GT(stats.pins_removed, 0u);
  EXPECT_LT(g.num_live_nodes(), before);
  // The PO-net driver is load-variant and must survive, as must ports.
  EXPECT_GE(g.num_live_nodes(), 3u);
  EXPECT_NO_THROW(g.topo_order());
}

TEST(Merge, FullMergeKeepsChainTimingTight) {
  const Design d = test::make_buffer_chain(6);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph merged = build_timing_graph(d);
  std::vector<bool> keep(merged.num_nodes(), false);
  merge_insensitive_pins(merged, keep);
  const auto sets = eval_sets(d, 9);
  const AccuracyReport rep = evaluate_accuracy(flat, merged, sets, false);
  EXPECT_EQ(rep.structural_mismatches, 0u);
  EXPECT_LT(rep.max_err_ps, 0.6);  // re-sampling error only
}

TEST(Merge, ProtectedPinsSurvive) {
  const Design d = test::make_small_design();
  TimingGraph g = build_timing_graph(d);
  std::vector<bool> keep(g.num_nodes(), false);
  merge_insensitive_pins(g, keep);
  for (NodeId p : g.primary_inputs()) EXPECT_FALSE(g.node(p).dead);
  for (NodeId p : g.primary_outputs()) EXPECT_FALSE(g.node(p).dead);
  for (const auto& c : g.checks()) {
    if (c.dead) continue;
    EXPECT_FALSE(g.node(c.clock).dead);
    EXPECT_FALSE(g.node(c.data).dead);
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.node(n).dead) continue;
    if (!g.node(n).attached_po_loads.empty()) {
      EXPECT_FALSE(g.node(n).dead);
    }
  }
}

TEST(Merge, KeepFlagIsHonored) {
  const Design d = test::make_buffer_chain(4);
  TimingGraph g = build_timing_graph(d);
  // Keep one interior gate-input pin explicitly.
  NodeId kept_interior = kInvalidId;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto& node = g.node(n);
    if (node.role == NodeRole::kInternal && node.attached_po_loads.empty() &&
        !g.fanin(n).empty() && !g.fanout(n).empty()) {
      kept_interior = n;
      break;
    }
  }
  ASSERT_NE(kept_interior, kInvalidId);
  std::vector<bool> keep(g.num_nodes(), false);
  keep[kept_interior] = true;
  merge_insensitive_pins(g, keep);
  EXPECT_FALSE(g.node(kept_interior).dead);
}

class MergeOnDesign : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeOnDesign, IlmThenFullMergeStaysAccurate) {
  const Design d = test::make_small_design("m", GetParam());
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  const std::size_t ilm_nodes = ilm.graph.num_live_nodes();
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  const MergeStats stats = merge_insensitive_pins(ilm.graph, keep);
  EXPECT_GT(stats.pins_removed, 0u);
  EXPECT_LT(ilm.graph.num_live_nodes(), ilm_nodes);

  // Merging *everything* legal is the worst case the TS metric guards
  // against (per-path slews replace worst-slew merging at removed
  // multi-fanin pins); the structure must stay sound and the error
  // bounded, but tight accuracy is the job of the TS/GNN keep-set,
  // which the flow tests cover.
  const auto sets = eval_sets(d, GetParam() * 13 + 1);
  for (bool cppr : {false, true}) {
    const AccuracyReport rep =
        evaluate_accuracy(flat, ilm.graph, sets, cppr);
    EXPECT_EQ(rep.structural_mismatches, 0u) << "cppr=" << cppr;
    EXPECT_LT(rep.max_err_ps, 100.0) << "cppr=" << cppr;
  }
}

TEST_P(MergeOnDesign, MergedGraphRemainsAcyclicAndConsistent) {
  const Design d = test::make_small_design("m", GetParam());
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  merge_insensitive_pins(ilm.graph, keep);
  EXPECT_NO_THROW(ilm.graph.topo_order());
  for (ArcId a = 0; a < ilm.graph.num_arcs(); ++a) {
    const auto& arc = ilm.graph.arc(a);
    if (arc.dead) continue;
    EXPECT_FALSE(ilm.graph.node(arc.from).dead);
    EXPECT_FALSE(ilm.graph.node(arc.to).dead);
    if (arc.kind == GraphArcKind::kCell) {
      ASSERT_NE(arc.delay, nullptr);
      ASSERT_NE(arc.out_slew, nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeOnDesign, ::testing::Values(1, 2, 3));

TEST(MergeParallel, EnvelopesDuplicateArcs) {
  const Library& lib = test::shared_library();
  const ArcSpec& fast = lib.cell(lib.cell_id("BUF_X4")).arcs[0];
  const ArcSpec& slow = lib.cell(lib.cell_id("BUF_X1")).arcs[0];
  TimingGraph g;
  GraphNode a;
  a.name = "a";
  GraphNode b;
  b.name = "b";
  const NodeId na = g.add_node(a);
  const NodeId nb = g.add_node(b);
  g.add_cell_arc(na, nb, fast.sense, &fast.delay, &fast.out_slew);
  g.add_cell_arc(na, nb, slow.sense, &slow.delay, &slow.out_slew);
  const std::size_t merged = merge_parallel_arcs(g);
  EXPECT_EQ(merged, 1u);
  EXPECT_EQ(g.num_live_arcs(), 1u);
}

TEST(Merge, ModelIoRoundTripPreservesTiming) {
  const Design d = test::make_small_design("io", 5);
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  merge_insensitive_pins(ilm.graph, keep);

  MacroModel model;
  model.design_name = "io";
  model.graph = std::move(ilm.graph);

  std::stringstream ss;
  const std::size_t bytes = write_macro_model(model, ss);
  EXPECT_GT(bytes, 100u);
  EXPECT_EQ(bytes, macro_model_size_bytes(model));
  const MacroModel back = read_macro_model(ss);
  EXPECT_EQ(back.design_name, "io");
  EXPECT_EQ(back.graph.num_live_nodes(), model.graph.num_live_nodes());
  EXPECT_EQ(back.graph.num_live_arcs(), model.graph.num_live_arcs());

  const auto sets = eval_sets(d, 55);
  const AccuracyReport rep =
      evaluate_accuracy(model.graph, back.graph, sets, true);
  EXPECT_EQ(rep.structural_mismatches, 0u);
  EXPECT_LT(rep.max_err_ps, 1e-5);  // text precision only
}

TEST(Merge, RefusesHighFanProductPins) {
  const Design d = test::make_small_design("fp", 8);
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  MergeConfig tight;
  tight.max_fan_product = 1;
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  const MergeStats s1 = merge_insensitive_pins(ilm.graph, keep, tight);

  IlmResult ilm2 = extract_ilm(flat);
  MergeConfig loose;
  loose.max_fan_product = 16;
  std::vector<bool> keep2(ilm2.graph.num_nodes(), false);
  const MergeStats s2 = merge_insensitive_pins(ilm2.graph, keep2, loose);
  EXPECT_GT(s2.pins_removed, s1.pins_removed);
}

}  // namespace
}  // namespace tmm
