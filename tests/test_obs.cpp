// Tests for the observability subsystem (src/obs): span pairing and
// nesting in the exported Chrome trace, counter events, metrics
// registry behavior under concurrency, JSON snapshot well-formedness
// and the TMM_LOG level parser.
//
// The trace/metrics JSON is validated with a minimal recursive-descent
// JSON parser below — if the export ever emits NaN, trailing commas or
// unescaped strings, these tests fail rather than chrome://tracing.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tmm {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, bools, null).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", {JsonValue::kBool, true});
      case 'f': return literal("false", {JsonValue::kBool, false});
      case 'n': return literal("null", {});
      default: return number_value();
    }
  }
  JsonValue literal(const char* word, JsonValue v) {
    if (s_.compare(pos_, std::string::traits_type::length(word), word) != 0)
      throw std::runtime_error("bad literal");
    pos_ += std::string::traits_type::length(word);
    return v;
  }
  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace(key.str, value());
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }
  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }
  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::kString;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) throw std::runtime_error("bad escape");
        switch (s_[pos_]) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'u': pos_ += 4; v.str += '?'; break;
          default: v.str += s_[pos_];
        }
      } else {
        v.str += s_[pos_];
      }
      ++pos_;
    }
    expect('"');
    return v;
  }
  JsonValue number_value() {
    skip_ws();
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E'))
      ++end;
    if (end == pos_) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonValue export_trace() {
  std::ostringstream os;
  obs::write_chrome_trace(os);
  return JsonParser(os.str()).parse();
}

/// Trace state is process-global; serialize and reset around each test.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::reset_trace();
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::reset_trace();
  }
};

TEST_F(ObsTraceTest, DisabledSpanLeavesNoEvents) {
  {
    obs::Span span("test.disabled");
    span.set_arg("x", 1.0);
    obs::trace_counter("test.counter", 42.0);
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
  const JsonValue root = export_trace();
  EXPECT_TRUE(root.at("traceEvents").array.empty());
}

TEST_F(ObsTraceTest, SpanNestingAndPairing) {
  obs::set_tracing_enabled(true);
  {
    obs::Span outer("test.outer");
    {
      obs::Span inner("test.inner");
      inner.set_arg("pins", 7.0);
    }
    {
      obs::Span inner2("test.inner2");
    }
  }
  obs::set_tracing_enabled(false);
  ASSERT_EQ(obs::trace_event_count(), 3u);

  const JsonValue root = export_trace();
  EXPECT_EQ(root.at("displayTimeUnit").str, "ms");
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* inner2 = nullptr;
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_EQ(e.at("cat").str, "tmm");
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GE(e.at("tid").number, 1.0);
    EXPECT_GE(e.at("ts").number, 0.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    const std::string& name = e.at("name").str;
    if (name == "test.outer") outer = &e;
    if (name == "test.inner") inner = &e;
    if (name == "test.inner2") inner2 = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(inner2, nullptr);

  // All on the same thread track; the inner spans' [ts, ts+dur] windows
  // must be contained in the outer's — that containment is exactly what
  // makes the viewer render them nested.
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  EXPECT_EQ(outer->at("tid").number, inner2->at("tid").number);
  const double o_start = outer->at("ts").number;
  const double o_end = o_start + outer->at("dur").number;
  for (const JsonValue* e : {inner, inner2}) {
    const double start = e->at("ts").number;
    const double end = start + e->at("dur").number;
    EXPECT_GE(start, o_start);
    EXPECT_LE(end, o_end);
  }
  // inner2 begins after inner ended (sequential siblings).
  EXPECT_GE(inner2->at("ts").number,
            inner->at("ts").number + inner->at("dur").number);
  // The span argument survives the export.
  EXPECT_DOUBLE_EQ(inner->at("args").at("pins").number, 7.0);
}

TEST_F(ObsTraceTest, CounterEventsAndRssSample) {
  obs::set_tracing_enabled(true);
  obs::trace_counter("test.level", 3.5);
  obs::trace_rss_sample();
  obs::set_tracing_enabled(false);

  const JsonValue root = export_trace();
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  bool saw_level = false, saw_rss = false;
  for (const JsonValue& e : events) {
    EXPECT_EQ(e.at("ph").str, "C");
    if (e.at("name").str == "test.level") {
      EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 3.5);
      saw_level = true;
    }
    if (e.at("name").str == "rss_mb") {
      EXPECT_GT(e.at("args").at("value").number, 0.0);
      saw_rss = true;
    }
  }
  EXPECT_TRUE(saw_level);
  EXPECT_TRUE(saw_rss);
}

TEST_F(ObsTraceTest, MultiThreadedSpansGetDistinctTracks) {
  obs::set_tracing_enabled(true);
  std::thread t([] { obs::Span span("test.worker"); });
  t.join();
  {
    obs::Span span("test.main");
  }
  obs::set_tracing_enabled(false);

  const JsonValue root = export_trace();
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].at("tid").number, events[1].at("tid").number);
}

TEST_F(ObsTraceTest, ResetDropsBufferedEvents) {
  obs::set_tracing_enabled(true);
  { obs::Span span("test.reset"); }
  EXPECT_EQ(obs::trace_event_count(), 1u);
  obs::reset_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsMetricsTest, CounterGaugeBasics) {
  obs::Counter& c = obs::counter("test.basic_counter");
  const std::uint64_t before = c.value();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), before + 5);
  // Same name -> same object.
  EXPECT_EQ(&obs::counter("test.basic_counter"), &c);

  obs::Gauge& g = obs::gauge("test.basic_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(ObsMetricsTest, HistogramBuckets) {
  static const double kBounds[] = {1.0, 10.0, 100.0};
  obs::Histogram& h = obs::histogram("test.hist_buckets", kBounds);
  h.reset();
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(5.0);    // bucket 1 (<= 10)
  h.observe(10.0);   // bucket 1 (inclusive upper bound)
  h.observe(50.0);   // bucket 2 (<= 100)
  h.observe(1e6);    // overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 0.5 + 5.0 + 10.0 + 50.0 + 1e6, 1e-9);
}

TEST(ObsMetricsTest, HistogramQuantiles) {
  static const double kBounds[] = {10.0, 20.0, 40.0};
  obs::Histogram& h = obs::histogram("test.hist_quantiles", kBounds);
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> 0

  // 10 observations per bucket, none in overflow: quantiles lerp within
  // the bucket covering the requested rank.
  for (int i = 0; i < 10; ++i) {
    h.observe(5.0);
    h.observe(15.0);
    h.observe(30.0);
  }
  // Rank 15 of 30 lands mid-way through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  // Rank 3 of 30: 3/10 through the [0, 10] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.1), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);

  // Overflow observations report the last bound — the histogram cannot
  // resolve beyond its range.
  h.reset();
  for (int i = 0; i < 10; ++i) h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 40.0);
}

TEST(ObsMetricsTest, JsonSnapshotReportsQuantiles) {
  static const double kBounds[] = {10.0, 20.0};
  obs::Histogram& h = obs::histogram("test.hist_json_quantiles", kBounds);
  h.reset();
  for (int i = 0; i < 10; ++i) h.observe(15.0);

  std::ostringstream os;
  obs::write_metrics_json(os);
  const JsonValue root = JsonParser(os.str()).parse();
  const JsonValue& hist =
      root.at("histograms").at("test.hist_json_quantiles");
  EXPECT_DOUBLE_EQ(hist.at("p50").number, 15.0);
  EXPECT_DOUBLE_EQ(hist.at("p95").number, 19.5);
  EXPECT_DOUBLE_EQ(hist.at("p99").number, 19.9);
}

TEST(ObsMetricsTest, ConcurrentIncrementsAreLossless) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  static const double kBounds[] = {100.0, 1000.0};
  obs::Histogram& h = obs::histogram("test.concurrent_hist", kBounds);
  c.reset();
  h.reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(t * kPerThread + i));
      }
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsMetricsTest, JsonSnapshotParsesAndContainsMetrics) {
  obs::counter("test.snapshot_counter").add(3);
  obs::gauge("test.snapshot_gauge").set(1.25);
  static const double kBounds[] = {1.0, 2.0};
  obs::histogram("test.snapshot_hist", kBounds).observe(1.5);

  std::ostringstream os;
  obs::write_metrics_json(os);
  const JsonValue root = JsonParser(os.str()).parse();

  EXPECT_GE(root.at("counters").at("test.snapshot_counter").number, 3.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.snapshot_gauge").number, 1.25);
  const JsonValue& hist = root.at("histograms").at("test.snapshot_hist");
  EXPECT_EQ(hist.at("bounds").array.size(), 2u);
  EXPECT_EQ(hist.at("buckets").array.size(), 3u);
  EXPECT_GE(hist.at("count").number, 1.0);
  EXPECT_GT(root.at("process").at("current_rss_bytes").number, 0.0);
  EXPECT_GT(root.at("process").at("peak_rss_bytes").number, 0.0);
}

TEST(LogLevelTest, ParseLogLevelNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(parse_log_level("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(parse_log_level("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);

  level = LogLevel::kWarn;
  EXPECT_FALSE(parse_log_level("bogus", &level));
  EXPECT_EQ(level, LogLevel::kWarn);  // untouched on failure
  EXPECT_FALSE(parse_log_level(nullptr, &level));
  EXPECT_FALSE(parse_log_level("", &level));
}

}  // namespace
}  // namespace tmm
