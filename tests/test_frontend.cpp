// Real-circuit frontend (docs/FRONTEND.md): BLIF/Verilog parsing,
// elaboration, import lint (F001-F004), deterministic tech mapping,
// the malformed-input corpus, and .dsn round-trip fidelity.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/design_lint.hpp"
#include "analysis/graph_lint.hpp"
#include "fault/fault.hpp"
#include "frontend/blif_parser.hpp"
#include "frontend/elaborate.hpp"
#include "frontend/frontend.hpp"
#include "frontend/frontend_lint.hpp"
#include "frontend/tech_map.hpp"
#include "frontend/verilog_parser.hpp"
#include "netlist/netlist_io.hpp"
#include "sta/timing_graph.hpp"
#include "util/rng.hpp"

#ifndef TMM_TEST_CORPUS_DIR
#define TMM_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace tmm {
namespace {

namespace fs = std::filesystem;
using frontend::FlatKind;
using frontend::FlatNetlist;
using frontend::FrontendConfig;
using frontend::IrNetlist;

/// Fresh mutable library per process run; NK cells accumulate across
/// tests like they do in the frontend registry.
Library& test_lib() {
  static Library lib = generate_library();
  return lib;
}

IrNetlist blif(const std::string& text) {
  std::istringstream is(text);
  return frontend::parse_blif(is, "<test.blif>");
}

IrNetlist verilog(const std::string& text) {
  std::istringstream is(text);
  return frontend::parse_verilog(is, "<test.v>");
}

/// Full in-memory import: parse -> elaborate -> lint -> map against a
/// fresh library generated with the default seed.
Design import_blif(const std::string& text, Library& lib,
                   const FrontendConfig& cfg = {}) {
  const IrNetlist ir = blif(text);
  analysis::LintReport report;
  const FlatNetlist flat = frontend::elaborate(ir, lib, cfg.top, &report);
  report.merge(frontend::lint_flat(flat, lib));
  EXPECT_EQ(report.errors(), 0u) << report.to_string();
  return frontend::map_netlist(flat, lib, cfg);
}

const char* kMajority = R"(.model majority
.inputs a b c
.outputs y
.names a b ab
11 1
.names a c ac
11 1
.names b c bc
11 1
.names ab ac bc y
1-- 1
-1- 1
--1 1
.end
)";

// --- BLIF parsing ---------------------------------------------------

TEST(BlifParser, ParsesModelPortsNamesLatchSubckt) {
  const IrNetlist ir = blif(
      ".model m\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b t\n"
      "11 1\n"
      ".latch t q re clk 2\n"
      ".subckt sub p=q o=y\n"
      ".end\n"
      ".model sub\n.inputs p\n.outputs o\n.names p o\n1 1\n.end\n");
  ASSERT_EQ(ir.models.size(), 2u);
  const auto& m = ir.models[0];
  EXPECT_EQ(m.name, "m");
  EXPECT_EQ(m.inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m.outputs, (std::vector<std::string>{"y"}));
  ASSERT_EQ(m.names.size(), 1u);
  EXPECT_EQ(m.names[0].inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m.names[0].output, "t");
  ASSERT_EQ(m.names[0].cover.rows.size(), 1u);
  EXPECT_EQ(m.names[0].cover.rows[0], "11");
  EXPECT_EQ(m.names[0].cover.output_value, '1');
  ASSERT_EQ(m.latches.size(), 1u);
  EXPECT_EQ(m.latches[0].input, "t");
  EXPECT_EQ(m.latches[0].output, "q");
  EXPECT_EQ(m.latches[0].control, "clk");
  EXPECT_EQ(m.latches[0].init, 2);
  ASSERT_EQ(m.instances.size(), 1u);
  EXPECT_EQ(m.instances[0].model, "sub");
  ASSERT_EQ(m.instances[0].conns.size(), 2u);
  EXPECT_EQ(m.instances[0].conns[0].first, "p");
  EXPECT_EQ(m.instances[0].conns[0].second, "q");
}

TEST(BlifParser, JoinsContinuationLinesAndStripsComments) {
  const IrNetlist ir = blif(
      "# leading comment\n"
      ".model m\n"
      ".inputs a \\\n   b # trailing comment\n"
      ".outputs y\n"
      ".names a \\\nb y\n11 1\n.end\n");
  EXPECT_EQ(ir.models[0].inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ir.models[0].names[0].inputs,
            (std::vector<std::string>{"a", "b"}));
}

TEST(BlifParser, OffSetCoverAndConstants) {
  const IrNetlist ir = blif(
      ".model m\n.inputs a b\n.outputs y one\n"
      ".names a b y\n00 0\n"  // off-set cover
      ".names one\n1\n"       // constant 1
      ".end\n");
  EXPECT_EQ(ir.models[0].names[0].cover.output_value, '0');
  EXPECT_TRUE(ir.models[0].names[1].inputs.empty());
  EXPECT_EQ(ir.models[0].names[1].cover.output_value, '1');
}

TEST(BlifParser, ErrorsCarrySourceAndLine) {
  try {
    blif(".model m\n.inputs a\n.outputs y\n.names a y\n3 1\n.end\n");
    FAIL() << "expected kParse";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kParse);
    EXPECT_NE(std::string(e.what()).find("<test.blif>:5"), std::string::npos)
        << e.what();
  }
}

TEST(BlifParser, RejectsDirectiveOutsideModel) {
  EXPECT_THROW(blif(".inputs a\n"), fault::FlowError);
  EXPECT_THROW(blif("11 1\n"), fault::FlowError);
  EXPECT_THROW(blif("# only comments\n"), fault::FlowError);
}

// --- Verilog parsing ------------------------------------------------

TEST(VerilogParser, AnsiHeaderNamedConnections) {
  const IrNetlist ir = verilog(
      "// comment\n"
      "module m(input a, input b, output y);\n"
      "  wire t; /* block\n comment */\n"
      "  NAND2_X1 g0 (.A(a), .B(b), .Y(t));\n"
      "  INV_X1 g1 (.A(t), .Y(y));\n"
      "endmodule\n");
  const auto& m = ir.models[0];
  EXPECT_EQ(m.inputs, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(m.outputs, (std::vector<std::string>{"y"}));
  EXPECT_EQ(m.port_order, (std::vector<std::string>{"a", "b", "y"}));
  ASSERT_EQ(m.instances.size(), 2u);
  EXPECT_EQ(m.instances[0].name, "g0");
  EXPECT_EQ(m.instances[0].conns[0].first, "A");
  EXPECT_EQ(m.instances[0].conns[0].second, "a");
}

TEST(VerilogParser, NonAnsiHeaderPositionalConnections) {
  const IrNetlist ir = verilog(
      "module m(a, y);\n"
      "  input a;\n  output y;\n"
      "  INV_X1 g0 (a, y);\n"  // positional: A then Y
      "endmodule\n");
  const auto& m = ir.models[0];
  EXPECT_EQ(m.inputs, (std::vector<std::string>{"a"}));
  ASSERT_EQ(m.instances[0].conns.size(), 2u);
  EXPECT_TRUE(m.instances[0].conns[0].first.empty());
  EXPECT_EQ(m.instances[0].conns[0].second, "a");
}

TEST(VerilogParser, RejectsUndeclaredSignalsAndVectors) {
  EXPECT_THROW(verilog("module m(input a, output y);\n"
                       "  INV_X1 g0 (.A(ghost), .Y(y));\nendmodule\n"),
               fault::FlowError);
  EXPECT_THROW(verilog("module m(input [3:0] a, output y);\nendmodule\n"),
               fault::FlowError);
  EXPECT_THROW(verilog("module m(input a, output y);\n"
                       "  assign y = a;\nendmodule\n"),
               fault::FlowError);
}

// --- elaboration ----------------------------------------------------

TEST(Elaborate, FlattensHierarchyWithPrefixedNets) {
  const IrNetlist ir = blif(
      ".model top\n.inputs a b\n.outputs y\n"
      ".subckt leaf p=a o=t\n"
      ".subckt leaf p=t o=y\n"
      ".end\n"
      ".model leaf\n.inputs p\n.outputs o\n"
      ".names p mid\n1 1\n.names mid o\n1 1\n.end\n");
  const FlatNetlist flat = frontend::elaborate(ir, test_lib());
  EXPECT_EQ(flat.name, "top");
  ASSERT_EQ(flat.prims.size(), 4u);
  // Internal leaf nets get the instance prefix; bound ports do not.
  EXPECT_EQ(flat.prims[0].name, "s0/nm0");
  EXPECT_EQ(flat.prims[0].inputs[0], "a");
  EXPECT_EQ(flat.prims[0].output, "s0/mid");
  EXPECT_EQ(flat.prims[1].output, "t");
  EXPECT_EQ(flat.prims[2].inputs[0], "t");
  EXPECT_EQ(flat.prims[3].output, "y");
}

TEST(Elaborate, DetectsRecursionAndUnknownModels) {
  const IrNetlist rec = blif(
      ".model a\n.inputs x\n.outputs y\n.subckt b x=x y=y\n.end\n"
      ".model b\n.inputs x\n.outputs y\n.subckt a x=x y=y\n.end\n");
  EXPECT_THROW(frontend::elaborate(rec, test_lib()), fault::FlowError);
  const IrNetlist unknown =
      blif(".model t\n.inputs a\n.outputs y\n.subckt nope p=a q=y\n.end\n");
  EXPECT_THROW(frontend::elaborate(unknown, test_lib()), fault::FlowError);
}

TEST(Elaborate, DanglingInstancePinIsF003) {
  const IrNetlist ir = blif(
      ".model t\n.inputs a b\n.outputs y\n"
      ".subckt sub p=a nosuchpin=b q=y\n.end\n"
      ".model sub\n.inputs p\n.outputs q\n.names p q\n1 1\n.end\n");
  analysis::LintReport report;
  frontend::elaborate(ir, test_lib(), "", &report);
  EXPECT_EQ(report.count(analysis::rule::kIrDanglingPin), 1u)
      << report.to_string();
}

// --- flat lint ------------------------------------------------------

TEST(FrontendLint, UndrivenMultiDrivenUnusedUnconnected) {
  Library& lib = test_lib();
  const auto lint = [&lib](const std::string& text) {
    const IrNetlist ir = blif(text);
    return frontend::lint_flat(frontend::elaborate(ir, lib), lib);
  };
  const auto undriven = lint(
      ".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n");
  EXPECT_EQ(undriven.count(analysis::rule::kIrUndrivenNet), 1u);
  const auto multi = lint(
      ".model t\n.inputs a b\n.outputs y\n"
      ".names a y\n1 1\n.names b y\n1 1\n.end\n");
  EXPECT_EQ(multi.count(analysis::rule::kIrMultiDriven), 1u);
  const auto unused = lint(
      ".model t\n.inputs a\n.outputs y\n"
      ".names a y\n1 1\n.names a dead\n1 1\n.end\n");
  EXPECT_EQ(unused.count(analysis::rule::kIrUnusedNet), 1u);
  EXPECT_EQ(unused.errors(), 0u);  // F004 is a warning
  const auto dangling = lint(
      ".model t\n.inputs a\n.outputs y\n"
      ".subckt NAND2_X1 A=a Y=y\n.end\n");  // B unconnected
  EXPECT_EQ(dangling.count(analysis::rule::kIrDanglingPin), 1u);
}

// --- tech mapping ---------------------------------------------------

TEST(TechMap, SensesFollowCoverUnateness) {
  Library& lib = test_lib();
  const Design and2 = import_blif(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n", lib);
  const Cell& cand = lib.cell(and2.gate(0).cell);
  ASSERT_EQ(cand.ports.size(), 3u);  // I0, I1, Y
  ASSERT_EQ(cand.arcs.size(), 2u);
  EXPECT_EQ(cand.arcs[0].sense, ArcSense::kPositiveUnate);
  EXPECT_EQ(cand.arcs[1].sense, ArcSense::kPositiveUnate);

  const Design inv = import_blif(
      ".model t\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n", lib);
  const Cell& cinv = lib.cell(inv.gate(0).cell);
  EXPECT_EQ(cinv.arcs[0].sense, ArcSense::kNegativeUnate);

  const Design xo = import_blif(
      ".model t\n.inputs a b\n.outputs y\n.names a b y\n01 1\n10 1\n.end\n",
      lib);
  const Cell& cxor = lib.cell(xo.gate(0).cell);
  EXPECT_EQ(cxor.arcs[0].sense, ArcSense::kNonUnate);
  EXPECT_EQ(cxor.arcs[1].sense, ArcSense::kNonUnate);
}

TEST(TechMap, EquivalentCoversShareOneCell) {
  Library& lib = test_lib();
  // Same cover, different row order and a duplicated row.
  const Design d = import_blif(
      ".model t\n.inputs a b\n.outputs y\n"
      ".names a b y\n01 1\n10 1\n.end\n", lib);
  const Design d2 = import_blif(
      ".model t\n.inputs a b\n.outputs y\n"
      ".names a b y\n10 1\n01 1\n10 1\n.end\n", lib);
  EXPECT_EQ(lib.cell(d.gate(0).cell).name, lib.cell(d2.gate(0).cell).name);
}

TEST(TechMap, NamesCellNameRoundTripsAndResynthesizes) {
  Library& lib = test_lib();
  const Design d = import_blif(
      ".model t\n.inputs a b c\n.outputs y\n"
      ".names a b c y\n1-0 1\n01- 1\n.end\n", lib);
  const Cell& cell = lib.cell(d.gate(0).cell);
  NamesCellSpec spec;
  ASSERT_TRUE(parse_names_cell_name(cell.name, &spec));
  EXPECT_EQ(spec.num_inputs, 3u);
  LibraryGenConfig gen;
  const Cell again = synthesize_names_cell(spec, gen);
  // Byte-identical re-synthesis from the name alone: same ports/arcs
  // and identical first delay table.
  ASSERT_EQ(again.ports.size(), cell.ports.size());
  ASSERT_EQ(again.arcs.size(), cell.arcs.size());
  for (std::size_t i = 0; i < cell.arcs.size(); ++i) {
    EXPECT_EQ(again.arcs[i].sense, cell.arcs[i].sense);
    const auto va = again.arcs[i].delay(kLate, kRise).values();
    const auto vb = cell.arcs[i].delay(kLate, kRise).values();
    EXPECT_EQ(std::vector<double>(va.begin(), va.end()),
              std::vector<double>(vb.begin(), vb.end()));
  }
}

TEST(TechMap, LatchMapsToDffAndLintsClean) {
  Library& lib = test_lib();
  const Design d = import_blif(
      ".model seq\n.inputs clk d\n.outputs q\n"
      ".names d q0 x\n10 1\n01 1\n"
      ".latch x q0 re clk 0\n"
      ".names q0 q\n1 1\n.end\n", lib);
  // One DFF gate, clock port marked, setup/hold arcs in the graph.
  std::size_t ffs = 0;
  for (GateId g = 0; g < d.num_gates(); ++g)
    if (lib.cell(d.gate(g).cell).is_sequential) ++ffs;
  EXPECT_EQ(ffs, 1u);
  ASSERT_NE(d.clock_root(), kInvalidId);
  EXPECT_TRUE(d.port(d.pin(d.clock_root()).port).is_clock);
  const analysis::LintReport dl = analysis::lint_design(d);
  EXPECT_EQ(dl.errors(), 0u) << dl.to_string();
  const TimingGraph g = build_timing_graph(d);
  const analysis::LintReport gl = analysis::lint_graph(g);
  EXPECT_EQ(gl.errors(), 0u) << gl.to_string();
  EXPECT_GT(g.num_checks(), 0u);  // setup/hold arcs reached the graph
}

TEST(TechMap, UnclockedLatchesSynthesizeClockInput) {
  Library& lib = test_lib();
  frontend::ImportStats st;
  const IrNetlist ir = blif(
      ".model seq\n.inputs d\n.outputs q\n.latch d q 0\n.end\n");
  const FlatNetlist flat = frontend::elaborate(ir, lib);
  const Design d = frontend::map_netlist(flat, lib, {}, &st);
  EXPECT_EQ(st.clock, "clk");
  ASSERT_NE(d.clock_root(), kInvalidId);
}

TEST(TechMap, AmbiguousClockRequiresOverride) {
  Library& lib = test_lib();
  const IrNetlist ir = blif(
      ".model seq\n.inputs c1 c2 d\n.outputs q r\n"
      ".latch d q re c1 0\n.latch d r re c2 0\n.end\n");
  const FlatNetlist flat = frontend::elaborate(ir, lib);
  EXPECT_THROW(frontend::map_netlist(flat, lib, {}), fault::FlowError);
}

TEST(TechMap, ImportTwiceIsByteIdentical) {
  // Two independent libraries, two imports: serialized designs match
  // byte for byte (the acceptance bar for `tmm import` determinism).
  Library lib1 = generate_library();
  Library lib2 = generate_library();
  const Design d1 = import_blif(kMajority, lib1);
  const Design d2 = import_blif(kMajority, lib2);
  std::ostringstream o1, o2;
  write_design(d1, o1);
  write_design(d2, o2);
  EXPECT_EQ(o1.str(), o2.str());
}

// --- .dsn round-trip fidelity ---------------------------------------

std::string serialized(const Design& d) {
  std::ostringstream os;
  write_design(d, os);
  return os.str();
}

TEST(FrontendRoundTrip, ImportedDesignSurvivesWriteRead) {
  Library& lib = test_lib();
  const Design d = import_blif(kMajority, lib);
  const std::string once = serialized(d);
  std::istringstream is(once);
  const Design back = read_design(is, lib, "<roundtrip>");
  EXPECT_EQ(serialized(back), once);
  EXPECT_EQ(back.name(), d.name());
  EXPECT_EQ(back.num_pins(), d.num_pins());
}

/// Seeded random BLIF generator: layered combinational netlists with
/// random covers — broad structural coverage for the round-trip bar.
std::string random_blif(Rng& rng) {
  std::ostringstream os;
  const std::size_t num_in = 2 + rng.below(4);
  os << ".model rnd\n.inputs";
  std::vector<std::string> nets;
  for (std::size_t i = 0; i < num_in; ++i) {
    os << " i" << i;
    nets.push_back("i" + std::to_string(i));
  }
  os << "\n.outputs y\n";
  const std::size_t num_nodes = 1 + rng.below(8);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const std::size_t k = 1 + rng.below(3);
    std::vector<std::string> ins;
    for (std::size_t j = 0; j < k; ++j)
      ins.push_back(nets[rng.below(nets.size())]);
    const std::string out =
        n + 1 == num_nodes ? "y" : "n" + std::to_string(n);
    os << ".names";
    for (const auto& in : ins) os << " " << in;
    os << " " << out << "\n";
    const std::size_t rows = 1 + rng.below(3);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < k; ++j)
        os << "01-"[rng.below(3)];
      os << " 1\n";
    }
    nets.push_back(out);
  }
  os << ".end\n";
  return os.str();
}

TEST(FrontendRoundTrip, RandomizedImportsRoundTrip) {
  Library& lib = test_lib();
  Rng rng(0xF00D);
  for (int trial = 0; trial < 20; ++trial) {
    const std::string text = random_blif(rng);
    const IrNetlist ir = blif(text);
    const FlatNetlist flat = frontend::elaborate(ir, lib);
    const analysis::LintReport report = frontend::lint_flat(flat, lib);
    if (report.errors() > 0) continue;  // e.g. y multiply-driven draw
    const Design d = frontend::map_netlist(flat, lib, {});
    const std::string once = serialized(d);
    std::istringstream is(once);
    const Design back = read_design(is, lib, "<roundtrip>");
    EXPECT_EQ(serialized(back), once) << text;
  }
}

// --- corpus + fault injection ---------------------------------------

TEST(FrontendCorpus, EveryMalformedFileRaisesStructuredParseError) {
  const fs::path corpus(TMM_TEST_CORPUS_DIR);
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator(corpus)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("fe_", 0) != 0) continue;
    ++checked;
    try {
      (void)frontend::import_file(entry.path().string());
      FAIL() << name << ": expected fault::FlowError";
    } catch (const fault::FlowError& e) {
      EXPECT_EQ(e.code(), fault::ErrorCode::kParse) << name;
      // Every diagnostic names its source; parse-stage ones its line.
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << name << ": " << e.what();
    }
  }
  EXPECT_GE(checked, 12u);
}

TEST(FrontendFault, ParseAndMapSitesInject) {
  struct Disarm {
    ~Disarm() { fault::disarm(); }
  } disarm;
  ASSERT_TRUE(fault::arm("frontend.parse", 1).ok());
  EXPECT_THROW(blif(kMajority), fault::FlowError);
  fault::disarm();
  ASSERT_TRUE(fault::arm("frontend.map", 1).ok());
  Library lib = generate_library();
  const IrNetlist ir = blif(kMajority);
  const FlatNetlist flat = frontend::elaborate(ir, lib);
  EXPECT_THROW(frontend::map_netlist(flat, lib, {}), fault::FlowError);
}

// --- registry + load_design_any -------------------------------------

TEST(FrontendRegistry, SeedAndNameResolveToSameLibrary) {
  Library& a = frontend::library_for_seed(7);
  Library& b = frontend::library_for_seed(7);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "tmm_nldm45_s7");
  EXPECT_EQ(frontend::library_for_name("tmm_nldm45_s7"), &a);
  EXPECT_EQ(frontend::library_for_name("not_a_generated_lib"), nullptr);
}

TEST(FrontendRegistry, ImportedDsnReloadsViaRegistry) {
  // Write a BLIF to disk, import via the public API, write the .dsn,
  // then reload it with no preferred library: NK cells resolve through
  // the registry.
  std::string dir = (fs::temp_directory_path() / "tmm_fe_XXXXXX").string();
  ASSERT_NE(::mkdtemp(dir.data()), nullptr);
  const std::string blif_path = dir + "/maj.blif";
  const std::string dsn_path = dir + "/maj.dsn";
  {
    std::ofstream os(blif_path);
    os << kMajority;
  }
  const Design d = frontend::import_file(blif_path);
  write_design_file(d, dsn_path);
  const Design back = frontend::load_design_any(dsn_path);
  EXPECT_EQ(serialized(back), serialized(d));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tmm
