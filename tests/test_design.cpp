#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(Design, BufferChainStructure) {
  const Design d = test::make_buffer_chain(3);
  EXPECT_EQ(d.num_gates(), 3u);
  EXPECT_EQ(d.num_nets(), 4u);
  EXPECT_EQ(d.num_pins(), 2u + 3u * 2u);
  EXPECT_EQ(d.primary_inputs().size(), 1u);
  EXPECT_EQ(d.primary_outputs().size(), 1u);
  EXPECT_EQ(d.clock_root(), kInvalidId);
}

TEST(Design, PinNamesAndCaps) {
  const Design d = test::make_buffer_chain(1);
  EXPECT_EQ(d.pin_name(d.primary_inputs()[0]), "in0");
  const Gate& g = d.gate(0);
  EXPECT_EQ(d.pin_name(g.pins[0]), "b0/A");
  EXPECT_GT(d.pin_cap_ff(g.pins[0]), 0.0);
  EXPECT_DOUBLE_EQ(d.pin_cap_ff(g.pins[1]), 0.0);  // output pin
}

TEST(Design, NetLoadIncludesWireAndSinks) {
  const Design d = test::make_buffer_chain(2, 0.1, 0.5);
  const Net& n0 = d.net(0);  // in0 -> b0/A
  const double load = d.net_load_ff(0);
  EXPECT_NEAR(load, 0.5 + d.pin_cap_ff(n0.sinks[0]), 1e-12);
}

TEST(Design, BuilderRejectsBadConnections) {
  const Library& lib = test::shared_library();
  Design d("bad", &lib);
  d.add_port("i", TopPortDir::kPrimaryInput);
  d.add_port("o", TopPortDir::kPrimaryOutput);
  const PinId in = d.port(0).pin;
  const PinId out = d.port(1).pin;
  EXPECT_THROW(d.add_net("n", out), std::invalid_argument);  // PO not driver
  const NetId n = d.add_net("n", in);
  EXPECT_THROW(d.add_net("n2", in), std::invalid_argument);  // already on net
  d.connect_sink(n, out);
  EXPECT_THROW(d.connect_sink(n, out), std::invalid_argument);  // again
  EXPECT_THROW(d.connect_sink(n, in), std::invalid_argument);   // driver
}

TEST(Design, ValidateCatchesDanglingInput) {
  const Library& lib = test::shared_library();
  Design d("dangle", &lib);
  d.add_gate("g", lib.cell_id("INV_X1"));
  EXPECT_THROW(d.validate(), std::runtime_error);
}

TEST(DesignGen, GeneratesValidConnectedDesign) {
  const Design d = test::make_small_design();
  EXPECT_NO_THROW(d.validate());
  EXPECT_GT(d.num_gates(), 100u);
  EXPECT_NE(d.clock_root(), kInvalidId);
  // Every FF clock pin must be connected.
  const Library& lib = d.library();
  for (GateId g = 0; g < d.num_gates(); ++g) {
    const Cell& cell = lib.cell(d.gate(g).cell);
    if (!cell.is_sequential) continue;
    const PinId ck = d.gate(g).pins[cell.port_index("CK")];
    EXPECT_NE(d.pin(ck).net, kInvalidId);
  }
}

TEST(DesignGen, DeterministicForSameSeed) {
  const Design a = test::make_small_design("x", 77);
  const Design b = test::make_small_design("x", 77);
  ASSERT_EQ(a.num_pins(), b.num_pins());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (NetId n = 0; n < a.num_nets(); ++n) {
    EXPECT_EQ(a.net(n).driver, b.net(n).driver);
    EXPECT_EQ(a.net(n).sinks, b.net(n).sinks);
    EXPECT_DOUBLE_EQ(a.net(n).wire_cap_ff, b.net(n).wire_cap_ff);
  }
}

TEST(DesignGen, DifferentSeedsDiffer) {
  const Design a = test::make_small_design("x", 1);
  const Design b = test::make_small_design("x", 2);
  bool differs = a.num_pins() != b.num_pins();
  if (!differs) {
    for (NetId n = 0; n < a.num_nets() && !differs; ++n)
      differs = a.net(n).sinks != b.net(n).sinks;
  }
  EXPECT_TRUE(differs);
}

TEST(DesignGen, RespectsFanoutCapApproximately) {
  const Design d = test::make_small_design();
  std::size_t over = 0;
  for (NetId n = 0; n < d.num_nets(); ++n)
    if (d.net(n).sinks.size() > 12) ++over;
  // The cap is soft (retry-based); violations must be rare.
  EXPECT_LT(over, d.num_nets() / 20 + 2);
}

TEST(DesignGen, SuitesHaveExpectedEntries) {
  const Library& lib = test::shared_library();
  const auto testing_suite = tau_testing_suite(lib, 400);
  ASSERT_EQ(testing_suite.size(), 11u);
  EXPECT_EQ(testing_suite[0].name, "mgc_edit_dist_iccad_eval");
  EXPECT_EQ(testing_suite[10].name, "mgc_matrix_mult_iccad");
  const auto train = training_suite(lib, 40);
  ASSERT_EQ(train.size(), 6u);
  EXPECT_EQ(train[0].name, "fft_ispd");
}

TEST(DesignGen, ScaledSizesTrackTauPins) {
  const Library& lib = test::shared_library();
  const auto suite = tau_testing_suite(lib, 400);
  const Design small = generate_design(lib, suite[0].cfg);   // ~1.5k
  const Design large = generate_design(lib, suite[4].cfg);   // ~13k
  EXPECT_GT(large.num_pins(), 2 * small.num_pins());
  // Generated sizes within a factor ~2.5 of the scaled target.
  const double target0 = static_cast<double>(suite[0].tau_pins) / 400.0;
  EXPECT_GT(static_cast<double>(small.num_pins()), target0 / 2.5);
  EXPECT_LT(static_cast<double>(small.num_pins()), target0 * 2.5);
}

TEST(DesignGen, StatsMatchAccessors) {
  const Design d = test::make_tiny_design();
  const DesignStats s = design_stats(d);
  EXPECT_EQ(s.pins, d.num_pins());
  EXPECT_EQ(s.cells, d.num_gates());
  EXPECT_EQ(s.nets, d.num_nets());
}

}  // namespace
}  // namespace tmm
