// Invariant-checker tests: each corrupted-graph fixture must fire
// exactly its rule, and the clean end-to-end flow must produce zero
// diagnostics (the `validate_stages` gate would throw otherwise).

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/design_lint.hpp"
#include "fault/fault.hpp"
#include "analysis/graph_lint.hpp"
#include "analysis/model_lint.hpp"
#include "flow/framework.hpp"
#include "macro/ilm.hpp"
#include "macro/merge.hpp"
#include "sta/timing_graph.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

using analysis::LintReport;
using analysis::Severity;
namespace rule = analysis::rule;

NodeId add_named(TimingGraph& g, const std::string& name) {
  GraphNode node;
  node.name = name;
  return g.add_node(std::move(node));
}

/// At least one diagnostic fired and every diagnostic carries `id`.
void expect_only_rule(const LintReport& r, const char* id) {
  ASSERT_FALSE(r.empty()) << "expected rule " << id << " to fire";
  EXPECT_EQ(r.count(id), r.size()) << r.to_string();
}

ElRf<Lut> uniform_tables(double value) {
  ElRf<Lut> t;
  t.fill(Lut::table2d({1.0, 10.0}, {1.0, 20.0},
                      {value, value, value, value}));
  return t;
}

TEST(AnalysisGraphLint, CleanFlatGraphHasZeroDiagnostics) {
  const Design d = test::make_small_design();
  const TimingGraph g = build_timing_graph(d);
  const LintReport r = analysis::lint_graph(g);
  EXPECT_TRUE(r.empty()) << r.to_string();
  EXPECT_NO_THROW(analysis::expect_clean(g));
  EXPECT_TRUE(analysis::lint_design(d).empty());
}

TEST(AnalysisGraphLint, InjectedCycleFiresG001WithPinByPinPath) {
  TimingGraph g;
  const NodeId a = add_named(g, "u1/Y");
  const NodeId b = add_named(g, "u2/Y");
  const NodeId c = add_named(g, "u3/Y");
  g.add_wire_arc(a, b, 1.0);
  g.add_wire_arc(b, c, 1.0);
  g.add_wire_arc(c, a, 1.0);  // closes the loop
  const LintReport r = analysis::lint_graph(g);
  expect_only_rule(r, rule::kCycle);
  const std::string msg = r.diagnostics().front().message;
  EXPECT_NE(msg.find("u1/Y"), std::string::npos) << msg;
  EXPECT_NE(msg.find("u2/Y"), std::string::npos) << msg;
  EXPECT_NE(msg.find("u3/Y"), std::string::npos) << msg;
  EXPECT_NE(msg.find(" -> "), std::string::npos) << msg;
  EXPECT_THROW(analysis::expect_clean(g), std::runtime_error);
}

TEST(AnalysisGraphLint, LiveArcIntoDeadNodeFiresG002) {
  TimingGraph g;
  const NodeId a = add_named(g, "a");
  const NodeId b = add_named(g, "b");
  const NodeId c = add_named(g, "c");
  g.add_wire_arc(a, b, 1.0);
  g.kill_node(c);
  g.add_wire_arc(b, c, 1.0);  // live arc into a dead node
  expect_only_rule(analysis::lint_graph(g), rule::kDanglingArc);
}

TEST(AnalysisGraphLint, LiveCheckOnDeadPinFiresG003) {
  TimingGraph g;
  const NodeId ck = add_named(g, "ff/CK");
  const NodeId d = add_named(g, "ff/D");
  const ElRf<Lut>* guard = g.own_tables([] {
    ElRf<Lut> t;
    t.fill(Lut::scalar(5.0));
    return t;
  }());
  g.kill_node(d);
  g.add_check(ck, d, /*is_setup=*/true, guard);  // references a dead pin
  expect_only_rule(analysis::lint_graph(g), rule::kDanglingCheck);
}

TEST(AnalysisGraphLint, NanLutFiresL001) {
  // L001's trigger is now unrepresentable through the public API: the
  // Lut factories reject non-finite surfaces with a structured numeric
  // error before a graph can ever own such a table, so the lint rule is
  // pure defense in depth (e.g. against post-construction corruption).
  try {
    uniform_tables(std::nan(""));
    FAIL() << "expected fault::FlowError for a NaN lookup-table surface";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kNumeric);
  }
}

TEST(AnalysisGraphLint, DuplicatePortOrdinalFiresB001) {
  TimingGraph g;
  const NodeId a = add_named(g, "in0");
  const NodeId b = add_named(g, "in1");
  g.set_primary_input(a, 0, /*is_clock=*/false);
  g.set_primary_input(b, 0, /*is_clock=*/false);  // ordinal collision
  expect_only_rule(analysis::lint_graph(g), rule::kBoundaryOrdinal);
}

TEST(AnalysisGraphLint, GappedPortOrdinalFiresB001) {
  TimingGraph g;
  const NodeId a = add_named(g, "out1");
  g.set_primary_output(a, 1);  // ordinal 0 never registered
  expect_only_rule(analysis::lint_graph(g), rule::kBoundaryOrdinal);
}

TEST(AnalysisGraphLint, UnreachableFfClockFiresB002) {
  TimingGraph g;
  const NodeId root = add_named(g, "clk");
  const NodeId ck = add_named(g, "ff/CK");
  g.set_primary_input(root, 0, /*is_clock=*/true);
  g.node(ck).is_ff_clock = true;  // no arc from the clock root
  expect_only_rule(analysis::lint_graph(g), rule::kClockReach);
}

TEST(AnalysisGraphLint, AttachedPoLoadOutOfRangeFiresG004) {
  TimingGraph g;
  const NodeId a = add_named(g, "drv/Y");
  const NodeId po = add_named(g, "out0");
  g.set_primary_output(po, 0);
  g.add_wire_arc(a, po, 1.0);
  g.node(a).attached_po_loads.push_back(7);  // only ordinal 0 exists
  expect_only_rule(analysis::lint_graph(g), rule::kPoLoadRange);
}

TEST(AnalysisGraphLint, NullTablesOnLiveCellArcFiresG005) {
  TimingGraph g;
  const NodeId a = add_named(g, "a");
  const NodeId b = add_named(g, "b");
  g.add_cell_arc(a, b, ArcSense::kPositiveUnate, nullptr, nullptr);
  expect_only_rule(analysis::lint_graph(g), rule::kNullTables);
}

TEST(AnalysisGraphLint, GrossNonMonotoneOwnedDelayWarnsL003) {
  TimingGraph g;
  const NodeId a = add_named(g, "a");
  const NodeId b = add_named(g, "b");
  // Owned (re-characterized) delay that gets 40 ps *faster* with load.
  ElRf<Lut> t;
  t.fill(Lut::table2d({1.0, 10.0}, {1.0, 20.0}, {50.0, 10.0, 50.0, 10.0}));
  const ElRf<Lut>* delay = g.own_tables(std::move(t));
  const ElRf<Lut>* slew = g.own_tables(uniform_tables(20.0));
  g.add_cell_arc(a, b, ArcSense::kPositiveUnate, delay, slew);
  const LintReport r = analysis::lint_graph(g);
  expect_only_rule(r, rule::kLutNonMonotone);
  EXPECT_EQ(r.errors(), 0u);  // warning severity: does not fail the gate
  EXPECT_TRUE(r.clean());
  EXPECT_NO_THROW(analysis::expect_clean(g));
  // Library-shared (non-owned) tables are exempt from L003.
  TimingGraph g2;
  const NodeId a2 = add_named(g2, "a");
  const NodeId b2 = add_named(g2, "b");
  g2.add_cell_arc(a2, b2, ArcSense::kPositiveUnate, delay, slew);
  EXPECT_TRUE(analysis::lint_graph(g2).empty());
}

TEST(AnalysisGraphLint, TopoOrderCycleErrorNamesAPin) {
  TimingGraph g;
  const NodeId a = add_named(g, "cyc/A");
  const NodeId b = add_named(g, "cyc/B");
  g.add_wire_arc(a, b, 1.0);
  g.add_wire_arc(b, a, 1.0);
  try {
    g.topo_order();
    FAIL() << "topo_order did not throw on a cyclic graph";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cyc/A"), std::string::npos) << msg;
    EXPECT_NE(msg.find(" -> "), std::string::npos) << msg;
  }
}

TEST(AnalysisDesignLint, UnconnectedGateInputFiresD001) {
  const Library& lib = test::shared_library();
  Design d("corrupt", &lib);
  d.add_gate("g0", lib.cell_id("BUF_X1"));  // inputs left dangling
  const LintReport r = analysis::lint_design(d);
  expect_only_rule(r, rule::kUnconnectedInput);
}

TEST(AnalysisModelLint, IlmAndMergedGraphsStayClean) {
  const Design d = test::make_small_design();
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  EXPECT_NO_THROW(analysis::expect_clean(ilm.graph));
  // Merge everything the rules allow: the invariants must survive the
  // most aggressive reduction.
  merge_insensitive_pins(ilm.graph,
                         std::vector<bool>(ilm.graph.num_nodes(), false));
  const LintReport r = analysis::lint_graph(ilm.graph);
  EXPECT_EQ(r.errors(), 0u) << r.to_string();

  MacroModel model;
  model.design_name = d.name();
  model.graph = std::move(ilm.graph);
  const LintReport mr = analysis::lint_model_against(model, d);
  EXPECT_EQ(mr.errors(), 0u) << mr.to_string();
}

TEST(AnalysisModelLint, LostBoundaryPinFiresM001) {
  const Design d = test::make_tiny_design();
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  MacroModel model;
  model.design_name = d.name();
  model.graph = std::move(ilm.graph);
  // Corrupt: kill a primary output after generation.
  model.graph.node(model.graph.primary_outputs().front()).dead = true;
  const LintReport r = analysis::lint_model_against(model, d);
  EXPECT_GT(r.count(rule::kBoundaryLost), 0u) << r.to_string();
  EXPECT_FALSE(r.clean());
}

TEST(AnalysisModelLint, UnbakedMergedArcFiresM002) {
  TimingGraph g;
  const NodeId a = add_named(g, "a");
  const NodeId b = add_named(g, "b");
  // 1-D surface = re-characterized shape, but baked_derate left false.
  ElRf<Lut> t;
  t.fill(Lut::table1d({1.0, 10.0}, {5.0, 9.0}));
  const ElRf<Lut>* tables = g.own_tables(std::move(t));
  g.add_cell_arc(a, b, ArcSense::kPositiveUnate, tables, tables);
  MacroModel model;
  model.graph = std::move(g);
  const LintReport r = analysis::lint_model(model);
  expect_only_rule(r, rule::kBakedDerate);
  // Setting the flag resolves it.
  model.graph.arc(0).baked_derate = true;
  EXPECT_TRUE(analysis::lint_model(model).empty());
}

TEST(AnalysisFlow, ValidatedFlowRunsCleanEndToEnd) {
  FlowConfig cfg;
  cfg.validate_stages = true;
  cfg.train.epochs = 10;
  Framework fw(cfg);
  std::vector<Design> training;
  training.push_back(test::make_tiny_design("t1", 5));
  training.push_back(test::make_tiny_design("t2", 6));
  fw.train(training);
  const Design d = test::make_small_design();
  // Every stage gate (ILM -> merge/index selection -> model) would
  // throw on a dirty graph; reaching the result is the assertion.
  const DesignResult r = fw.run_design(d);
  const LintReport report = analysis::lint_model_against(r.model, d);
  EXPECT_EQ(report.errors(), 0u) << report.to_string();
}

}  // namespace
}  // namespace tmm
