#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/fault.hpp"
#include "fault/token_reader.hpp"
#include "flow/checkpoint.hpp"
#include "flow/framework.hpp"
#include "gnn/graphsage.hpp"
#include "liberty/lut.hpp"
#include "macro/ilm.hpp"
#include "macro/model_io.hpp"
#include "netlist/netlist_io.hpp"
#include "sensitivity/ts_eval.hpp"
#include "test_helpers.hpp"
#include "util/atomic_io.hpp"

#ifndef TMM_TEST_CORPUS_DIR
#define TMM_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace tmm {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "tmm_fault_XXXXXX").string();
    char* p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str(const char* leaf = nullptr) const {
    return leaf ? (path / leaf).string() : path.string();
  }
};

/// Every test leaves the process disarmed regardless of outcome.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

// ---------------------------------------------------------------- errors

TEST(FlowError, RendersFullContext) {
  const fault::FlowError e(fault::ErrorCode::kNumeric, "sta.run",
                           "NaN timing value", "blk_a", "u1/Y");
  const std::string what = e.what();
  EXPECT_NE(what.find("[numeric]"), std::string::npos) << what;
  EXPECT_NE(what.find("sta.run"), std::string::npos) << what;
  EXPECT_NE(what.find("blk_a"), std::string::npos) << what;
  EXPECT_NE(what.find("u1/Y"), std::string::npos) << what;
  EXPECT_EQ(e.code(), fault::ErrorCode::kNumeric);
  EXPECT_EQ(e.message(), "NaN timing value");
  const fault::FlowError with = e.with_design("blk_b");
  EXPECT_EQ(with.design(), "blk_b");
}

TEST(FlowStatus, OrThrowConvertsToFlowError) {
  const fault::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_NO_THROW(ok.or_throw("stage"));
  const auto bad = fault::Status::failure(fault::ErrorCode::kIo, "disk full");
  EXPECT_FALSE(bad.ok());
  try {
    bad.or_throw("checkpoint.save_sens", "blk_a");
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kIo);
    EXPECT_EQ(e.stage(), "checkpoint.save_sens");
    EXPECT_EQ(e.design(), "blk_a");
  }
}

// ----------------------------------------------------------- TokenReader

TEST(TokenReader, ReportsLineAndOffendingToken) {
  std::istringstream is("alpha\nbeta\ngamma oops");
  io::TokenReader tr(is, "mem.txt");
  tr.expect("alpha");
  tr.expect("beta");
  tr.expect("gamma");
  try {
    tr.expect("delta");
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kParse);
    const std::string what = e.what();
    EXPECT_NE(what.find("mem.txt:3"), std::string::npos) << what;
    EXPECT_NE(what.find("oops"), std::string::npos) << what;
  }
}

TEST(TokenReader, RejectsNonFiniteAndParsesHexfloat) {
  std::istringstream is("0x1.8p+1 nan");
  io::TokenReader tr(is, "mem.txt");
  EXPECT_DOUBLE_EQ(tr.number("x"), 3.0);
  EXPECT_THROW(tr.number("y"), fault::FlowError);
}

TEST(TokenReader, CapsCountFields) {
  std::istringstream is("999999999 7");
  io::TokenReader tr(is, "mem.txt");
  EXPECT_THROW(tr.size_at_most("count", 1000), fault::FlowError);
}

TEST(TokenReader, EndOfInputNamesTheMissingField) {
  std::istringstream is("just-one");
  io::TokenReader tr(is, "mem.txt");
  tr.token("first");
  try {
    tr.token("wire capacitance");
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_NE(std::string(e.what()).find("wire capacitance"),
              std::string::npos);
  }
}

// --------------------------------------------------------- atomic writes

TEST(AtomicWrite, WritesAndOverwrites) {
  const TempDir dir;
  const std::string path = dir.str("out.txt");
  EXPECT_TRUE(util::atomic_write_file(path, "first").ok());
  EXPECT_TRUE(util::atomic_write_file(path, "second").ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second");
  // No tmp debris next to the final file.
  for (const auto& e : fs::directory_iterator(dir.path))
    EXPECT_EQ(e.path().filename().string().find(".tmp."), std::string::npos);
}

TEST(AtomicWrite, FailureIsStatusNotThrow) {
  const fault::Status s = util::atomic_write_file(
      "/nonexistent-dir-tmm/deep/out.txt", "data");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), fault::ErrorCode::kIo);
}

TEST(AtomicWrite, InjectedRenameFaultLeavesNoTmpFile) {
  const DisarmGuard guard;
  const TempDir dir;
  ASSERT_TRUE(fault::arm("util.atomic_rename", 1).ok());
  EXPECT_THROW(
      static_cast<void>(util::atomic_write_file(dir.str("x.txt"), "data")),
      fault::FlowError);
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path))
    ++files;
  EXPECT_EQ(files, 0u);  // neither final file nor tmp debris
}

// ------------------------------------------------------- fault injection

TEST(FaultInjection, FiresExactlyOnceOnNthHit) {
  const DisarmGuard guard;
  ASSERT_TRUE(fault::arm("gnn.train_epoch", 3).ok());
  EXPECT_NO_THROW(fault::inject("gnn.train_epoch"));
  EXPECT_NO_THROW(fault::inject("gnn.train_epoch"));
  EXPECT_FALSE(fault::fired());
  try {
    fault::inject("gnn.train_epoch");
    FAIL() << "expected FlowError on 3rd hit";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kInjected);
  }
  EXPECT_TRUE(fault::fired());
  // Single-shot: further hits pass through.
  EXPECT_NO_THROW(fault::inject("gnn.train_epoch"));
  EXPECT_EQ(fault::hits(), 4u);
  // Other sites are never affected.
  EXPECT_NO_THROW(fault::inject("sta.run"));
}

TEST(FaultInjection, RejectsUnregisteredSitesAndBadSpecs) {
  const DisarmGuard guard;
  EXPECT_FALSE(fault::arm("no.such.site", 1).ok());
  EXPECT_FALSE(fault::arm("sta.run", 0).ok());

  ::setenv("TMM_FAULT", "sta.run:2:throw", 1);
  EXPECT_TRUE(fault::arm_from_env().ok());
  fault::disarm();
  ::setenv("TMM_FAULT", "sta.run:zero", 1);
  EXPECT_EQ(fault::arm_from_env().code(), fault::ErrorCode::kConfig);
  ::setenv("TMM_FAULT", "bogus:1", 1);
  EXPECT_EQ(fault::arm_from_env().code(), fault::ErrorCode::kConfig);
  ::unsetenv("TMM_FAULT");
  EXPECT_TRUE(fault::arm_from_env().ok());  // unset = disarmed, ok
}

TEST(FaultInjection, SiteRegistryIsSortedAndNonEmpty) {
  const auto sites = fault::registered_sites();
  ASSERT_GT(sites.size(), 10u);
  for (std::size_t i = 1; i < sites.size(); ++i)
    EXPECT_LT(sites[i - 1], sites[i]);
}

// --------------------------------------------------------- numeric guards

TEST(NumericGuards, LutRejectsNonFiniteSurfaces) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Lut::scalar(nan), fault::FlowError);
  EXPECT_THROW(Lut::table1d({0.0, 1.0}, {1.0, nan}), fault::FlowError);
  EXPECT_THROW(Lut::table2d({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, nan, 4.0}),
               fault::FlowError);
}

// ------------------------------------------------------ malformed corpus

TEST(Corpus, DesignsFailWithStructuredParseErrors) {
  const fs::path corpus(TMM_TEST_CORPUS_DIR);
  const char* files[] = {"truncated.dsn",    "bad_header.dsn",
                         "nan_fields.dsn",   "dangling_pin.dsn",
                         "unknown_cell.dsn", "bad_count.dsn"};
  for (const char* f : files) {
    const std::string path = (corpus / f).string();
    try {
      static_cast<void>(read_design_file(path, test::shared_library()));
      FAIL() << f << ": expected FlowError";
    } catch (const fault::FlowError& e) {
      EXPECT_EQ(e.code(), fault::ErrorCode::kParse) << f << ": " << e.what();
      // Diagnostics carry the source file and a line number.
      EXPECT_NE(std::string(e.what()).find(f), std::string::npos)
          << f << ": " << e.what();
    }
  }
}

TEST(Corpus, MacrosFailWithStructuredParseErrors) {
  const fs::path corpus(TMM_TEST_CORPUS_DIR);
  for (const char* f :
       {"truncated.macro", "bad_header.macro", "nan.macro",
        "bad_role.macro"}) {
    const std::string path = (corpus / f).string();
    try {
      static_cast<void>(read_macro_model_file(path));
      FAIL() << f << ": expected FlowError";
    } catch (const fault::FlowError& e) {
      EXPECT_EQ(e.code(), fault::ErrorCode::kParse) << f << ": " << e.what();
      EXPECT_NE(std::string(e.what()).find(f), std::string::npos)
          << f << ": " << e.what();
    }
  }
}

TEST(Corpus, GnnModelsFailWithStructuredParseErrors) {
  const fs::path corpus(TMM_TEST_CORPUS_DIR);
  for (const char* f : {"nan_weight.gnn", "truncated.gnn"}) {
    const std::string path = (corpus / f).string();
    try {
      static_cast<void>(load_gnn_file(path));
      FAIL() << f << ": expected FlowError";
    } catch (const fault::FlowError& e) {
      EXPECT_EQ(e.code(), fault::ErrorCode::kParse) << f << ": " << e.what();
    }
  }
}

TEST(Corpus, MissingFileIsIoNotParse) {
  try {
    static_cast<void>(read_design_file("/no/such/file.dsn",
                                       test::shared_library()));
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kIo);
  }
}

// ----------------------------------------------------- per-pin isolation

TEST(TsIsolation, FailedPinIsConservativelyKept) {
  const DisarmGuard guard;
  const Design d = test::make_tiny_design("iso", 17);
  const IlmResult ilm = extract_ilm(build_timing_graph(d));
  const std::vector<bool> candidates(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.threads = 1;

  const TsResult clean = evaluate_timing_sensitivity(ilm.graph, candidates,
                                                     cfg);
  ASSERT_EQ(clean.failed_pins, 0u);
  ASSERT_GT(clean.evaluated_pins, 2u);

  ASSERT_TRUE(fault::arm("ts.eval_pin", 2).ok());
  const TsResult faulty = evaluate_timing_sensitivity(ilm.graph, candidates,
                                                      cfg);
  EXPECT_EQ(faulty.failed_pins, 1u);
  EXPECT_FALSE(faulty.first_failure.empty());
  // Exactly one pin differs from the clean run, and it reads 1.0 (fully
  // sensitive = kept in the model).
  std::size_t diffs = 0;
  for (std::size_t n = 0; n < clean.ts.size(); ++n) {
    if (clean.ts[n] != faulty.ts[n]) {
      ++diffs;
      EXPECT_EQ(faulty.ts[n], 1.0);
    }
  }
  EXPECT_LE(diffs, 1u);
}

TEST(TsIsolation, SkippedConstraintSetDegradesNotAborts) {
  const DisarmGuard guard;
  const Design d = test::make_tiny_design("iso2", 19);
  const IlmResult ilm = extract_ilm(build_timing_graph(d));
  const std::vector<bool> candidates(ilm.graph.num_nodes(), true);
  TsConfig cfg;
  cfg.threads = 1;
  cfg.num_constraint_sets = 3;
  ASSERT_TRUE(fault::arm("ts.constraint_set", 1).ok());
  const TsResult r = evaluate_timing_sensitivity(ilm.graph, candidates, cfg);
  EXPECT_EQ(r.skipped_sets, 1u);
  EXPECT_GT(r.evaluated_pins, 0u);
}

// ------------------------------------------------------------ checkpoint

TEST(Checkpoint, SensRoundTripIsBitExact) {
  const TempDir dir;
  const FlowConfig cfg;
  const auto ckpt = flow::Checkpoint::open(dir.str(), cfg);
  flow::SensCheckpoint s;
  s.nodes = 4;
  s.positives = 2;
  s.filtered_fraction = 0.123456789123456789;
  s.failed_pins = 1;
  s.skipped_sets = 2;
  s.labels = {0.0f, 1.0f, 0.0f, 1.0f};
  s.ts = {0.0, 1e-300, 0.3333333333333333, 1.0};
  ckpt.save_sens("blk", s);
  const auto back = ckpt.load_sens("blk");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nodes, s.nodes);
  EXPECT_EQ(back->positives, s.positives);
  EXPECT_EQ(back->failed_pins, s.failed_pins);
  EXPECT_EQ(back->skipped_sets, s.skipped_sets);
  EXPECT_EQ(back->labels, s.labels);  // exact, not approximate
  EXPECT_EQ(back->ts, s.ts);
  EXPECT_EQ(back->filtered_fraction, s.filtered_fraction);
}

TEST(Checkpoint, CorruptSensIsACacheMiss) {
  const TempDir dir;
  const FlowConfig cfg;
  const auto ckpt = flow::Checkpoint::open(dir.str(), cfg);
  std::ofstream(ckpt.sens_path("blk")) << "tmm-sens 1 design blk nodes "
                                          "garbage";
  EXPECT_FALSE(ckpt.load_sens("blk").has_value());
  EXPECT_FALSE(ckpt.load_sens("never_saved").has_value());
}

TEST(Checkpoint, FingerprintMismatchIsAConfigError) {
  const TempDir dir;
  FlowConfig cfg;
  static_cast<void>(flow::Checkpoint::open(dir.str(), cfg));
  cfg.cppr = !cfg.cppr;
  EXPECT_NE(flow::flow_fingerprint(cfg), flow::flow_fingerprint(FlowConfig{}));
  try {
    static_cast<void>(flow::Checkpoint::open(dir.str(), cfg));
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kConfig);
  }
}

TEST(Checkpoint, SwappedLibraryInvalidatesFingerprint) {
  // A checkpoint written against one liberty library must not resume
  // against another: TS labels depend on cell timing.
  const std::uint64_t base =
      flow::library_fingerprint(test::shared_library());
  // Stable for the same library.
  EXPECT_EQ(base, flow::library_fingerprint(test::shared_library()));
  LibraryGenConfig gen;
  gen.seed += 1;
  EXPECT_NE(base, flow::library_fingerprint(generate_library(gen)));

  const TempDir dir;
  FlowConfig cfg;
  cfg.library_fingerprint = base;
  static_cast<void>(flow::Checkpoint::open(dir.str(), cfg));
  cfg.library_fingerprint = base + 1;  // different library hash
  try {
    static_cast<void>(flow::Checkpoint::open(dir.str(), cfg));
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kConfig);
  }
}

TEST(Checkpoint, OpenCleansStaleTmpDebris) {
  const TempDir dir;
  const FlowConfig cfg;
  static_cast<void>(flow::Checkpoint::open(dir.str(), cfg));
  const std::string stale = dir.str("model.gnn.tmp.12345");
  std::ofstream(stale) << "torn";
  ASSERT_TRUE(fs::exists(stale));
  static_cast<void>(flow::Checkpoint::open(dir.str(), cfg));
  EXPECT_FALSE(fs::exists(stale));
}

// -------------------------------------------------- train-level recovery

FlowConfig tiny_train_config() {
  FlowConfig cfg;
  cfg.train.epochs = 4;
  cfg.train.patience = 0;
  cfg.data.ts.threads = 1;
  return cfg;
}

std::string model_bytes(Framework& fw) {
  std::ostringstream os;
  fw.model().save(os);
  return os.str();
}

TEST(TrainIsolation, FailingDesignIsSkippedNotFatal) {
  const DisarmGuard guard;
  const std::vector<Design> designs = {test::make_tiny_design("ta", 23),
                                       test::make_tiny_design("tb", 29)};
  ASSERT_TRUE(fault::arm("flow.train_design", 1).ok());
  Framework fw(tiny_train_config());
  const TrainingSummary sum = fw.train(designs);
  EXPECT_EQ(sum.designs, 1u);
  ASSERT_EQ(sum.failed.size(), 1u);
  EXPECT_EQ(sum.failed[0].design, "ta");
  EXPECT_NE(sum.failed[0].error.find("injected"), std::string::npos);
  EXPECT_TRUE(fw.trained());
}

TEST(TrainIsolation, AllDesignsFailingThrowsUnavailable) {
  const DisarmGuard guard;
  const std::vector<Design> designs = {test::make_tiny_design("tc", 31)};
  ASSERT_TRUE(fault::arm("flow.train_design", 1).ok());
  Framework fw(tiny_train_config());
  try {
    static_cast<void>(fw.train(designs));
    FAIL() << "expected FlowError";
  } catch (const fault::FlowError& e) {
    EXPECT_EQ(e.code(), fault::ErrorCode::kUnavailable);
  }
}

TEST(Resume, InterruptedTrainResumesBitIdentically) {
  const DisarmGuard guard;
  const std::vector<Design> designs = {test::make_tiny_design("ra", 37),
                                       test::make_tiny_design("rb", 41)};
  const FlowConfig cfg = tiny_train_config();

  // Reference: uninterrupted, no checkpointing.
  Framework ref(cfg);
  static_cast<void>(ref.train(designs));
  const std::string ref_bytes = model_bytes(ref);

  // Interrupted: the model save dies after sensitivity data for both
  // designs was checkpointed.
  const TempDir dir;
  FlowConfig ck_cfg = cfg;
  ck_cfg.checkpoint_dir = dir.str();
  {
    Framework broken(ck_cfg);
    ASSERT_TRUE(fault::arm("checkpoint.save_model", 1).ok());
    EXPECT_THROW(static_cast<void>(broken.train(designs)),
                 fault::FlowError);
    fault::disarm();
  }
  ASSERT_TRUE(fs::exists(dir.path / "ts"));
  ASSERT_FALSE(fs::exists(dir.path / "model.gnn"));

  // Resume: sensitivity data restored, model retrained, bit-identical.
  Framework resumed(ck_cfg);
  const TrainingSummary sum = resumed.train(designs);
  EXPECT_EQ(sum.designs_from_checkpoint, 2u);
  EXPECT_FALSE(sum.model_from_checkpoint);
  EXPECT_EQ(model_bytes(resumed), ref_bytes);
  ASSERT_TRUE(fs::exists(dir.path / "model.gnn"));

  // Second resume: the model itself is restored, still bit-identical.
  Framework again(ck_cfg);
  const TrainingSummary sum2 = again.train(designs);
  EXPECT_TRUE(sum2.model_from_checkpoint);
  EXPECT_EQ(model_bytes(again), ref_bytes);
}

TEST(Resume, RegressionModeResumesBitIdentically) {
  // The regression transform rescales labels from raw TS values; resume
  // must reproduce ts_scale exactly from the hexfloat checkpoints.
  const DisarmGuard guard;
  const std::vector<Design> designs = {test::make_tiny_design("rr", 43)};
  FlowConfig cfg = tiny_train_config();
  cfg.regression = true;

  Framework ref(cfg);
  static_cast<void>(ref.train(designs));

  const TempDir dir;
  cfg.checkpoint_dir = dir.str();
  {
    Framework first(cfg);
    ASSERT_TRUE(fault::arm("checkpoint.save_model", 1).ok());
    EXPECT_THROW(static_cast<void>(first.train(designs)), fault::FlowError);
    fault::disarm();
  }
  Framework resumed(cfg);
  static_cast<void>(resumed.train(designs));
  EXPECT_EQ(resumed.ts_scale(), ref.ts_scale());
  EXPECT_EQ(model_bytes(resumed), model_bytes(ref));
}

}  // namespace
}  // namespace tmm
