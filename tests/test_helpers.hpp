#pragma once
// Shared fixtures: a process-wide generated library and small
// hand-sized designs with known structure.

#include <memory>

#include "liberty/library_gen.hpp"
#include "netlist/design.hpp"
#include "netlist/design_gen.hpp"

namespace tmm::test {

/// One generated library shared by all tests (cells are immutable).
inline const Library& shared_library() {
  static const Library lib = generate_library();
  return lib;
}

/// clk + 2 data PIs -> small comb cloud -> 2 FFs -> comb -> 2 POs,
/// with a 2-level clock tree. Small enough to reason about by hand.
inline Design make_tiny_design(const std::string& name = "tiny",
                               std::uint64_t seed = 5) {
  DesignGenConfig cfg;
  cfg.name = name;
  cfg.seed = seed;
  cfg.num_data_inputs = 2;
  cfg.num_outputs = 2;
  cfg.num_flops = 4;
  cfg.levels = 3;
  cfg.gates_per_level = 4;
  return generate_design(shared_library(), cfg);
}

/// Mid-size random design for integration tests.
inline Design make_small_design(const std::string& name = "small",
                                std::uint64_t seed = 11) {
  DesignGenConfig cfg;
  cfg.name = name;
  cfg.seed = seed;
  cfg.num_data_inputs = 8;
  cfg.num_outputs = 8;
  cfg.num_flops = 24;
  cfg.levels = 6;
  cfg.gates_per_level = 20;
  return generate_design(shared_library(), cfg);
}

/// A pure buffer chain: in -> BUF x n -> out. Deterministic timing.
inline Design make_buffer_chain(std::size_t n, double wire_res = 0.1,
                                double wire_cap = 0.5) {
  static const Library& lib = shared_library();
  Design d("chain", &lib);
  const CellId buf = lib.cell_id("BUF_X1");
  const auto& cell = lib.cell(buf);
  const auto a = cell.port_index("A");
  const auto y = cell.port_index("Y");

  d.add_port("in0", TopPortDir::kPrimaryInput);
  d.add_port("out0", TopPortDir::kPrimaryOutput);
  const PinId in_pin = d.port(0).pin;
  const PinId out_pin = d.port(1).pin;

  PinId prev = in_pin;
  NetId net = d.add_net("n_in", prev);
  for (std::size_t i = 0; i < n; ++i) {
    std::string gate_name = "b";
    gate_name += std::to_string(i);
    const GateId g = d.add_gate(gate_name, buf);
    d.connect_sink(net, d.gate(g).pins[a], wire_res);
    d.set_wire_cap(net, wire_cap);
    prev = d.gate(g).pins[y];
    std::string net_name = "n";
    net_name += std::to_string(i);
    net = d.add_net(net_name, prev);
  }
  d.connect_sink(net, out_pin, wire_res);
  d.set_wire_cap(net, wire_cap);
  d.validate();
  return d;
}

}  // namespace tmm::test
