#include <gtest/gtest.h>

#include "sta/constraints.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(Constraints, RandomWithinConfiguredRanges) {
  Rng rng(1);
  ConstraintGenConfig cfg;
  const BoundaryConstraints bc = random_constraints(20, 15, cfg, rng);
  ASSERT_EQ(bc.pi.size(), 20u);
  ASSERT_EQ(bc.po.size(), 15u);
  for (const auto& p : bc.pi) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      EXPECT_GE(p.at(kLate, rf), cfg.pi_at_min);
      EXPECT_LE(p.at(kLate, rf), cfg.pi_at_max);
      EXPECT_GE(p.slew(kLate, rf), cfg.pi_slew_min);
      EXPECT_LE(p.slew(kLate, rf), cfg.pi_slew_max);
    }
  }
  for (const auto& p : bc.po) {
    EXPECT_GE(p.load_ff, cfg.po_load_min);
    EXPECT_LE(p.load_ff, cfg.po_load_max);
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      EXPECT_GE(p.rat(kLate, rf), cfg.clock_period_ps * cfg.po_rat_frac_min);
      EXPECT_LE(p.rat(kLate, rf), cfg.clock_period_ps * cfg.po_rat_frac_max);
    }
  }
}

TEST(Constraints, EarlyNeverExceedsLate) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const BoundaryConstraints bc = random_constraints(8, 8, {}, rng);
    for (const auto& p : bc.pi)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        EXPECT_LE(p.at(kEarly, rf), p.at(kLate, rf));
        EXPECT_LE(p.slew(kEarly, rf), p.slew(kLate, rf));
      }
    for (const auto& p : bc.po)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        EXPECT_LE(p.rat(kEarly, rf), p.rat(kLate, rf));
  }
}

TEST(Constraints, DeterministicGivenRng) {
  Rng a(77);
  Rng b(77);
  const BoundaryConstraints x = random_constraints(5, 5, {}, a);
  const BoundaryConstraints y = random_constraints(5, 5, {}, b);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(x.pi[i].at(kLate, kRise), y.pi[i].at(kLate, kRise));
    EXPECT_DOUBLE_EQ(x.po[i].load_ff, y.po[i].load_ff);
  }
}

TEST(Constraints, NominalIsFixedAndConsistent) {
  const BoundaryConstraints bc = nominal_constraints(3, 2, 750.0);
  EXPECT_DOUBLE_EQ(bc.clock_period_ps, 750.0);
  ASSERT_EQ(bc.pi.size(), 3u);
  ASSERT_EQ(bc.po.size(), 2u);
  EXPECT_DOUBLE_EQ(bc.pi[0].slew(kLate, kRise), 10.0);
  EXPECT_DOUBLE_EQ(bc.po[1].rat(kLate, kFall), 750.0 * 0.9);
}

TEST(LibraryGen, Deterministic) {
  const Library a = generate_library();
  const Library b = generate_library();
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (CellId c = 0; c < a.num_cells(); ++c) {
    EXPECT_EQ(a.cell(c).name, b.cell(c).name);
    if (!a.cell(c).arcs.empty()) {
      EXPECT_DOUBLE_EQ(
          a.cell(c).arcs[0].delay(kLate, kRise).lookup(10, 5),
          b.cell(c).arcs[0].delay(kLate, kRise).lookup(10, 5));
    }
  }
}

}  // namespace
}  // namespace tmm
