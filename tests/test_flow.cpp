#include <gtest/gtest.h>

#include "flow/framework.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

/// Shared trained framework (training is the expensive part).
class FlowTest : public ::testing::Test {
 protected:
  static Framework& trained() {
    static Framework* fw = [] {
      FlowConfig cfg;
      cfg.cppr = true;
      cfg.data.ts.num_constraint_sets = 2;
      cfg.train.epochs = 80;
      auto* f = new Framework(cfg);
      std::vector<Design> designs;
      designs.push_back(test::make_tiny_design("t0", 40));
      designs.push_back(test::make_tiny_design("t1", 41));
      designs.push_back(test::make_small_design("t2", 42));
      f->train(designs);
      return f;
    }();
    return *fw;
  }
};

TEST_F(FlowTest, TrainingProducesModelAndData) {
  Framework& fw = trained();
  EXPECT_TRUE(fw.trained());
  // Re-train summary sanity on a fresh framework with one design.
  FlowConfig cfg;
  cfg.data.ts.num_constraint_sets = 1;
  cfg.train.epochs = 10;
  Framework small(cfg);
  std::vector<Design> designs;
  designs.push_back(test::make_tiny_design("s", 50));
  const TrainingSummary sum = small.train(designs);
  EXPECT_EQ(sum.designs, 1u);
  EXPECT_GT(sum.labeled_pins, 0u);
  EXPECT_GT(sum.positives, 0u);
  EXPECT_LT(sum.positives, sum.labeled_pins);
  EXPECT_GT(sum.mean_filtered_fraction, 0.0);
  EXPECT_GT(sum.report.epochs_run, 0u);
}

TEST_F(FlowTest, GeneratedMacroIsAccurateAndSmaller) {
  Framework& fw = trained();
  const Design d = test::make_small_design("eval", 99);
  const DesignResult r = fw.run_design(d);
  EXPECT_EQ(r.acc.structural_mismatches, 0u);
  EXPECT_LT(r.acc.max_err_ps, 5.0);
  EXPECT_GT(r.model_file_bytes, 0u);
  EXPECT_LT(r.gen.model_pins, r.gen.ilm_pins);
  EXPECT_GT(r.gen.pins_kept, 0u);
  EXPECT_GE(r.inference_seconds, 0.0);
  EXPECT_LT(r.inference_seconds, 5.0);  // paper: inference < 5 s
}

TEST_F(FlowTest, LabelAllRemainedModeMatchesReferenceAccuracy) {
  FlowConfig cfg = trained().config();
  cfg.label_all_remained = true;
  Framework fw(cfg);  // no training needed in this mode
  const Design d = test::make_small_design("eval2", 7);
  const DesignResult r = fw.run_design(d);
  EXPECT_EQ(r.acc.structural_mismatches, 0u);
  EXPECT_LT(r.acc.max_err_ps, 5.0);
  EXPECT_LT(r.gen.model_pins, r.gen.ilm_pins);
}

TEST_F(FlowTest, BaselinesRunThroughSameHarness) {
  Framework& fw = trained();
  const Design d = test::make_small_design("base", 3);
  const DesignResult ours = fw.run_design(d);
  const DesignResult itm = fw.run_itimerm(d);
  const DesignResult lib = fw.run_libabs(d);

  EXPECT_EQ(itm.acc.structural_mismatches, 0u);
  EXPECT_EQ(lib.acc.structural_mismatches, 0u);
  EXPECT_GT(itm.model_file_bytes, 0u);
  EXPECT_GT(lib.model_file_bytes, 0u);
  // iTimerM-like keeps accuracy comparable to ours.
  EXPECT_LT(itm.acc.max_err_ps, 10.0);
  // Every ILM-based model shrinks the ILM.
  EXPECT_LT(itm.gen.model_pins, itm.gen.ilm_pins);
  EXPECT_LT(lib.gen.model_pins, lib.gen.ilm_pins);
  (void)ours;
}

TEST_F(FlowTest, EtmIsTinyButLessAccurate) {
  FlowConfig cfg;
  cfg.cppr = false;  // ETM does not support CPPR (as in the paper)
  Framework fw(cfg);
  const Design d = test::make_tiny_design("etm", 4);
  const DesignResult etm = fw.run_etm(d);
  const DesignResult itm = fw.run_itimerm(d);
  EXPECT_GT(etm.model_file_bytes, 0u);
  EXPECT_LT(etm.model_file_bytes, itm.model_file_bytes);
  EXPECT_LT(etm.gen.model_pins, itm.gen.model_pins);
  EXPECT_EQ(etm.acc.structural_mismatches, 0u);
  // Context-independent characterization costs accuracy.
  EXPECT_GE(etm.acc.max_err_ps, itm.acc.max_err_ps);
}

TEST_F(FlowTest, PredictKeepHonorsCpprRule) {
  Framework& fw = trained();
  const Design d = test::make_small_design("cppr", 12);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const auto keep = fw.predict_keep(ilm.graph);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (is_cppr_crucial(ilm.graph, n)) {
      EXPECT_TRUE(keep[n]);
    }
  }
}

TEST_F(FlowTest, ModelSurvivesSaveLoadViaFramework) {
  Framework& fw = trained();
  std::stringstream ss;
  fw.model().save(ss);
  GnnModel loaded = GnnModel::load(ss);
  FlowConfig cfg = fw.config();
  Framework fresh(cfg);
  fresh.set_model(std::move(loaded));
  const Design d = test::make_tiny_design("sl", 13);
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const auto a = fw.predict_keep(ilm.graph);
  const auto b = fresh.predict_keep(ilm.graph);
  EXPECT_EQ(a, b);
}

TEST_F(FlowTest, CpprOffModeWorks) {
  FlowConfig cfg;
  cfg.cppr = false;
  cfg.cppr_feature = false;
  cfg.data.ts.num_constraint_sets = 1;
  cfg.train.epochs = 30;
  Framework fw(cfg);
  std::vector<Design> designs;
  designs.push_back(test::make_tiny_design("nc", 60));
  fw.train(designs);
  const Design d = test::make_tiny_design("nc2", 61);
  const DesignResult r = fw.run_design(d);
  EXPECT_EQ(r.acc.structural_mismatches, 0u);
  EXPECT_LT(r.acc.max_err_ps, 5.0);
}

}  // namespace
}  // namespace tmm
