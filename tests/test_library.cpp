#include <gtest/gtest.h>

#include <sstream>

#include "liberty/library_gen.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(Library, GeneratorProducesExpectedCells) {
  const Library& lib = test::shared_library();
  for (const char* name :
       {"INV_X1", "INV_X2", "INV_X4", "BUF_X1", "NAND2_X1", "NOR2_X2",
        "AND2_X1", "OR2_X4", "XOR2_X1", "AOI21_X1", "MUX2_X1", "CLKBUF_X1",
        "CLKBUF_X2", "CLKBUF_X4", "DFF_X1"})
    EXPECT_TRUE(lib.has_cell(name)) << name;
  EXPECT_GE(lib.num_cells(), 25u);
}

TEST(Library, DffHasChecksAndLaunchArc) {
  const Library& lib = test::shared_library();
  const Cell& dff = lib.cell(lib.cell_id("DFF_X1"));
  EXPECT_TRUE(dff.is_sequential);
  int setup = 0;
  int hold = 0;
  int clk2q = 0;
  for (const auto& arc : dff.arcs) {
    if (arc.kind == ArcKind::kSetup) ++setup;
    if (arc.kind == ArcKind::kHold) ++hold;
    if (arc.kind == ArcKind::kClockToQ) ++clk2q;
  }
  EXPECT_EQ(setup, 1);
  EXPECT_EQ(hold, 1);
  EXPECT_EQ(clk2q, 1);
  EXPECT_TRUE(dff.ports[dff.port_index("CK")].is_clock);
}

TEST(Library, StrongerDriveIsFaster) {
  const Library& lib = test::shared_library();
  const auto& x1 = lib.cell(lib.cell_id("INV_X1")).arcs[0];
  const auto& x4 = lib.cell(lib.cell_id("INV_X4")).arcs[0];
  // At a heavy load the X4 must beat the X1.
  EXPECT_LT(x4.delay(kLate, kRise).lookup(10, 30),
            x1.delay(kLate, kRise).lookup(10, 30));
}

TEST(Library, MultiInputGateArcsDiffer) {
  const Library& lib = test::shared_library();
  const Cell& nand = lib.cell(lib.cell_id("NAND2_X1"));
  ASSERT_EQ(nand.arcs.size(), 2u);
  EXPECT_NE(nand.arcs[0].delay(kLate, kRise).lookup(10, 5),
            nand.arcs[1].delay(kLate, kRise).lookup(10, 5));
}

TEST(Library, PortLookup) {
  const Library& lib = test::shared_library();
  const Cell& c = lib.cell(lib.cell_id("NAND2_X1"));
  EXPECT_NE(c.port_index("A"), kInvalidId);
  EXPECT_NE(c.port_index("B"), kInvalidId);
  EXPECT_NE(c.port_index("Y"), kInvalidId);
  EXPECT_EQ(c.port_index("Z"), kInvalidId);
  EXPECT_EQ(c.num_inputs(), 2u);
}

TEST(Library, DuplicateCellRejected) {
  Library lib("dup");
  Cell c;
  c.name = "X";
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
  EXPECT_THROW(lib.cell_id("nope"), std::out_of_range);
}

TEST(Library, SerializationRoundTrip) {
  const Library& lib = test::shared_library();
  std::stringstream ss;
  const std::size_t bytes = lib.write(ss);
  EXPECT_GT(bytes, 1000u);
  EXPECT_EQ(bytes, lib.serialized_size());
  const Library back = Library::read(ss);
  ASSERT_EQ(back.num_cells(), lib.num_cells());
  for (CellId i = 0; i < lib.num_cells(); ++i) {
    const Cell& a = lib.cell(i);
    const Cell& b = back.cell(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.ports.size(), b.ports.size());
    ASSERT_EQ(a.arcs.size(), b.arcs.size());
    for (std::size_t k = 0; k < a.arcs.size(); ++k) {
      EXPECT_EQ(a.arcs[k].kind, b.arcs[k].kind);
      // Spot-check one surface value survives the round trip.
      EXPECT_NEAR(a.arcs[k].delay(kLate, kRise).lookup(10, 5),
                  b.arcs[k].delay(kLate, kRise).lookup(10, 5), 1e-6);
    }
  }
}

TEST(Library, SenseTransitionHelpers) {
  EXPECT_EQ(output_transitions(ArcSense::kPositiveUnate, kRise), 0b01u);
  EXPECT_EQ(output_transitions(ArcSense::kPositiveUnate, kFall), 0b10u);
  EXPECT_EQ(output_transitions(ArcSense::kNegativeUnate, kRise), 0b10u);
  EXPECT_EQ(output_transitions(ArcSense::kNegativeUnate, kFall), 0b01u);
  EXPECT_EQ(output_transitions(ArcSense::kNonUnate, kRise), 0b11u);
  EXPECT_EQ(input_transitions(ArcSense::kNegativeUnate, kFall), 0b01u);
  EXPECT_EQ(input_transitions(ArcSense::kNonUnate, kFall), 0b11u);
}

TEST(Library, CheckGuardDependsOnSlews) {
  const Library& lib = test::shared_library();
  const Cell& dff = lib.cell(lib.cell_id("DFF_X1"));
  const ArcSpec* setup = nullptr;
  for (const auto& arc : dff.arcs)
    if (arc.kind == ArcKind::kSetup) setup = &arc;
  ASSERT_NE(setup, nullptr);
  const double fast = setup->delay(kLate, kRise).lookup(5, 5);
  const double slow = setup->delay(kLate, kRise).lookup(5, 50);
  EXPECT_GT(slow, fast);  // slower data needs more setup margin
}

}  // namespace
}  // namespace tmm
