#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "macro/ilm.hpp"
#include "macro/merge.hpp"
#include "obs/metrics.hpp"
#include "sta/propagation.hpp"
#include "sta/topology.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace tmm {
namespace {

using util::TaskPool;

// ---------------------------------------------------------------------
// TaskPool

TEST(TaskPool, CoversEveryIndexExactlyOnce) {
  TaskPool pool(4);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{1000}}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{16}, std::size_t{4096}}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.parallel_for(n, grain, /*max_threads=*/0,
                        [&](std::size_t b, std::size_t e) {
                          ASSERT_LE(b, e);
                          ASSERT_LE(e, n);
                          for (std::size_t i = b; i < e; ++i)
                            hits[i].fetch_add(1);
                        });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain
                                     << " index " << i;
    }
  }
}

TEST(TaskPool, SingleThreadCapRunsInlineOnCaller) {
  TaskPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  pool.parallel_for(100, 8, /*max_threads=*/1,
                    [&](std::size_t, std::size_t) {
                      if (std::this_thread::get_id() != caller)
                        off_thread.store(true);
                    });
  EXPECT_FALSE(off_thread.load());
}

TEST(TaskPool, ZeroItemsIsANoOp) {
  TaskPool pool(2);
  bool ran = false;
  pool.parallel_for(0, 8, 0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskPool, ExceptionPropagatesAndPoolStaysUsable) {
  TaskPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1, 0,
                        [&](std::size_t b, std::size_t) {
                          if (b == 42) throw std::runtime_error("chunk 42");
                        }),
      std::runtime_error);
  // Next job on the same pool must run normally (counters were reset).
  std::atomic<int> count{0};
  pool.parallel_for(50, 4, 0,
                    [&](std::size_t b, std::size_t e) {
                      count.fetch_add(static_cast<int>(e - b));
                    });
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskPool, NestedParallelForRunsInlineWithoutDeadlock) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 8);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(64, 1, 0, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o)
      pool.parallel_for(8, 2, 0, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[o * 8 + i].fetch_add(1);
      });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, BackToBackJobsOfVaryingShape) {
  TaskPool pool(8);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round) * 13 % 300;
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(n, 1 + round % 5, 0,
                      [&](std::size_t b, std::size_t e) {
                        std::size_t s = 0;
                        for (std::size_t i = b; i < e; ++i) s += i;
                        sum.fetch_add(s);
                      });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "round " << round;
  }
}

TEST(TaskPool, EnvThreadsParsesAndRejects) {
  // NOLINTBEGIN(concurrency-mt-unsafe): single-threaded test setup.
  ASSERT_EQ(setenv("TMM_THREADS", "6", 1), 0);
  std::string err;
  EXPECT_EQ(TaskPool::env_threads(&err), 6u);
  EXPECT_TRUE(err.empty());

  ASSERT_EQ(setenv("TMM_THREADS", "0", 1), 0);
  EXPECT_EQ(TaskPool::env_threads(&err), 0u);
  EXPECT_FALSE(err.empty());

  ASSERT_EQ(setenv("TMM_THREADS", "4x", 1), 0);
  EXPECT_EQ(TaskPool::env_threads(&err), 0u);
  EXPECT_FALSE(err.empty());

  ASSERT_EQ(unsetenv("TMM_THREADS"), 0);
  EXPECT_EQ(TaskPool::env_threads(&err), 0u);
  EXPECT_TRUE(err.empty());
  // NOLINTEND(concurrency-mt-unsafe)
}

// ---------------------------------------------------------------------
// StaTopology

TEST(StaTopology, MatchesGraphAdjacencyAndLevels) {
  const Design d = test::make_small_design("topo_small", 31);
  const TimingGraph g = build_timing_graph(d);
  const StaTopology t = StaTopology::build(g);
  ASSERT_EQ(t.num_nodes, g.num_nodes());
  EXPECT_EQ(t.graph_version, g.structure_version());

  // CSR spans reproduce the graph's adjacency, content and order.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto fin = t.fanin(n);
    const auto& gin = g.fanin(n);
    ASSERT_EQ(fin.size(), gin.size()) << "fanin of " << n;
    for (std::size_t i = 0; i < fin.size(); ++i)
      EXPECT_EQ(fin[i], gin[i]) << "fanin of " << n << " at " << i;
    const auto fout = t.fanout(n);
    const auto& gout = g.fanout(n);
    ASSERT_EQ(fout.size(), gout.size()) << "fanout of " << n;
    for (std::size_t i = 0; i < fout.size(); ++i)
      EXPECT_EQ(fout[i], gout[i]) << "fanout of " << n << " at " << i;
  }

  // Levels partition the live nodes; each level is ascending by id.
  std::vector<int> level_of(g.num_nodes(), -1);
  std::size_t covered = 0;
  for (std::size_t l = 0; l < t.num_levels(); ++l) {
    const auto nodes = t.level(l);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      ASSERT_EQ(level_of[nodes[i]], -1) << "node in two levels";
      level_of[nodes[i]] = static_cast<int>(l);
      if (i > 0) {
        EXPECT_LT(nodes[i - 1], nodes[i]);
      }
      ++covered;
    }
  }
  EXPECT_EQ(covered, g.num_live_nodes());
  // Every live arc goes strictly up in level — the property that makes
  // level-parallel relaxation read only finalized values.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.arc(a).dead) continue;
    EXPECT_LT(level_of[g.arc(a).from], level_of[g.arc(a).to]) << "arc " << a;
  }

  // Check grouping matches checks_of, per pin, in check-id order.
  std::size_t grouped = 0;
  for (std::size_t i = 0; i < t.check_pins.size(); ++i) {
    const auto ids = t.checks_of_pin(i);
    const auto& want = g.checks_of(t.check_pins[i]);
    ASSERT_EQ(ids.size(), want.size());
    for (std::size_t k = 0; k < ids.size(); ++k) EXPECT_EQ(ids[k], want[k]);
    grouped += ids.size();
  }
  std::size_t live_checks = 0;
  for (std::uint32_t c = 0; c < g.num_checks(); ++c)
    if (!g.check(c).dead) ++live_checks;
  EXPECT_EQ(grouped, live_checks);
}

TEST(StaTopology, StructureVersionBumpsOnMutation) {
  const Design d = test::make_tiny_design("topo_ver", 32);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph g = extract_ilm(flat).graph;
  const std::uint64_t v0 = g.structure_version();
  MergeConfig mcfg;
  MergeDelta delta(g);
  ASSERT_TRUE(delta.applicable());
  // apply() may refuse individual candidates; find one it removes.
  bool applied = false;
  for (NodeId n = 0; n < g.num_nodes() && !applied; ++n)
    if (mergeable(g, n, mcfg)) applied = delta.apply(n, mcfg);
  ASSERT_TRUE(applied);
  const std::uint64_t v1 = g.structure_version();
  EXPECT_NE(v0, v1);
  delta.undo();
  // Undo mutates again — the version keeps moving forward (it keys
  // cache staleness, not structural equality).
  EXPECT_NE(g.structure_version(), v1);
}

// ---------------------------------------------------------------------
// Serial vs parallel bit-identity

AocvConfig test_aocv() {
  AocvConfig a;
  a.enabled = true;
  return a;
}

void expect_snapshot_bits_equal(const BoundarySnapshot& got,
                                const BoundarySnapshot& want) {
  ASSERT_EQ(got.num_ports, want.num_ports);
  auto eq = [](const std::vector<double>& x, const std::vector<double>& y,
               const char* what) {
    ASSERT_EQ(x.size(), y.size()) << what;
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(std::memcmp(&x[i], &y[i], sizeof(double)), 0)
          << what << "[" << i << "]: " << x[i] << " vs " << y[i];
  };
  eq(got.slew, want.slew, "slew");
  eq(got.at, want.at, "at");
  eq(got.rat, want.rat, "rat");
  eq(got.slack, want.slack, "slack");
}

/// Bitwise equality of the full per-node timing state, not just the
/// boundary: the parallel passes must reproduce the serial sweep
/// everywhere, or downstream consumers (path recovery, TS labels)
/// could diverge on interior pins.
void expect_all_nodes_bits_equal(const Sta& got, const Sta& want,
                                 const TimingGraph& g) {
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const PinTiming a = got.timing(n);
    const PinTiming b = want.timing(n);
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const double as = a.slew(el, rf), bs = b.slew(el, rf);
        const double aa = a.at(el, rf), ba = b.at(el, rf);
        const double ar = a.rat(el, rf), br = b.rat(el, rf);
        ASSERT_EQ(std::memcmp(&as, &bs, sizeof(double)), 0)
            << "slew node " << n << " el " << el << " rf " << rf;
        ASSERT_EQ(std::memcmp(&aa, &ba, sizeof(double)), 0)
            << "at node " << n << " el " << el << " rf " << rf;
        ASSERT_EQ(std::memcmp(&ar, &br, sizeof(double)), 0)
            << "rat node " << n << " el " << el << " rf " << rf;
      }
  }
}

void run_parallel_equivalence(const TimingGraph& g, bool cppr, bool aocv,
                              bool clock_rat, std::uint64_t seed,
                              std::size_t num_sets) {
  SCOPED_TRACE(testing::Message() << "cppr=" << cppr << " aocv=" << aocv
                                  << " clock_rat=" << clock_rat
                                  << " seed=" << seed);
  Sta::Options base;
  base.cppr = cppr;
  base.clock_rat = clock_rat;
  if (aocv) base.aocv = test_aocv();

  Sta serial(g, base);
  Rng rng(seed);
  for (std::size_t c = 0; c < num_sets; ++c) {
    const BoundaryConstraints bc = random_constraints(
        g.primary_inputs().size(), g.primary_outputs().size(), {}, rng);
    serial.run(bc);
    const BoundarySnapshot ref = serial.boundary_snapshot();
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                      std::size_t{8}}) {
      SCOPED_TRACE(testing::Message() << "threads=" << threads);
      Sta::Options popt = base;
      popt.threads = threads;
      popt.parallel_min_nodes = 0;  // force the parallel path
      Sta par(g, popt);
      par.run(bc);
      expect_all_nodes_bits_equal(par, serial, g);
      expect_snapshot_bits_equal(par.boundary_snapshot(), ref);
    }
  }
}

TEST(StaParallel, BitIdenticalOnTinyDesignAllModes) {
  const Design d = test::make_tiny_design("par_tiny", 201);
  const TimingGraph g = build_timing_graph(d);
  for (const bool cppr : {false, true})
    for (const bool aocv : {false, true})
      for (const bool clock_rat : {false, true})
        run_parallel_equivalence(g, cppr, aocv, clock_rat,
                                 0x41 + cppr + 2 * aocv + 4 * clock_rat,
                                 /*num_sets=*/2);
}

TEST(StaParallel, BitIdenticalOnSmallDesign) {
  const Design d = test::make_small_design("par_small", 202);
  const TimingGraph g = build_timing_graph(d);
  for (const bool cppr : {false, true})
    run_parallel_equivalence(g, cppr, /*aocv=*/false, /*clock_rat=*/false,
                             0x51 + cppr, /*num_sets=*/2);
  run_parallel_equivalence(g, /*cppr=*/true, /*aocv=*/true,
                           /*clock_rat=*/true, 0x53, /*num_sets=*/1);
}

TEST(StaParallel, BitIdenticalOnIlm) {
  const Design d = test::make_small_design("par_ilm", 203);
  const TimingGraph flat = build_timing_graph(d);
  const TimingGraph g = extract_ilm(flat).graph;
  for (const bool cppr : {false, true})
    run_parallel_equivalence(g, cppr, /*aocv=*/false, /*clock_rat=*/false,
                             0x61 + cppr, /*num_sets=*/2);
}

TEST(StaParallel, BitIdenticalOnBufferChain) {
  // Degenerate schedule: every level has exactly one node, so the
  // parallel path is all barrier and no width.
  const Design d = test::make_buffer_chain(40);
  const TimingGraph g = build_timing_graph(d);
  run_parallel_equivalence(g, /*cppr=*/true, /*aocv=*/false,
                           /*clock_rat=*/false, 0x71, /*num_sets=*/2);
}

TEST(StaParallel, TinyGraphFallsBackToSerial) {
  const Design d = test::make_tiny_design("par_floor", 204);
  const TimingGraph g = build_timing_graph(d);
  Sta::Options opt;
  opt.threads = 8;  // parallel_min_nodes default far exceeds this graph
  Sta sta(g, opt);
  const std::uint64_t before = obs::counter("sta.parallel_runs").value();
  sta.run(nominal_constraints(g.primary_inputs().size(),
                              g.primary_outputs().size(), 1000.0));
  EXPECT_EQ(obs::counter("sta.parallel_runs").value(), before);
}

TEST(StaParallel, AutoThreadsRunsParallelAboveFloor) {
  const Design d = test::make_tiny_design("par_auto", 205);
  const TimingGraph g = build_timing_graph(d);
  Sta::Options opt;
  opt.threads = 0;  // auto
  opt.parallel_min_nodes = 0;
  Sta sta(g, opt);
  const std::uint64_t before = obs::counter("sta.parallel_runs").value();
  sta.run(nominal_constraints(g.primary_inputs().size(),
                              g.primary_outputs().size(), 1000.0));
  // With auto resolution >= 2 threads this counts as a parallel run;
  // on a single-core machine it legitimately stays serial.
  if (TaskPool::default_threads() > 1) {
    EXPECT_EQ(obs::counter("sta.parallel_runs").value(), before + 1);
  } else {
    EXPECT_EQ(obs::counter("sta.parallel_runs").value(), before);
  }
}

// ---------------------------------------------------------------------
// Parallel full runs x incremental interplay

TEST(StaParallel, ParallelReferenceThenIncrementalMatchesSerialFromScratch) {
  const Design d = test::make_tiny_design("par_incr", 206);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph g = extract_ilm(flat).graph;
  ASSERT_FALSE(has_parallel_duplicate_arcs(g));
  Sta::Options popt;
  popt.cppr = true;
  popt.threads = 4;
  popt.parallel_min_nodes = 0;
  MergeConfig mcfg;

  Rng rng(0x81);
  const BoundaryConstraints bc = random_constraints(
      g.primary_inputs().size(), g.primary_outputs().size(), {}, rng);

  g.topo_order();  // materialize caches before the pristine copy
  const TimingGraph pristine = g;
  MergeDelta delta(g);
  ASSERT_TRUE(delta.applicable());

  // The reference is produced by a *parallel* full run; incremental
  // convergence against it must still bit-match serial from-scratch
  // analyses of the mutated graph.
  Sta engine(g, popt);
  engine.run(bc);
  engine.set_reference();

  std::vector<NodeId> cands;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (mergeable(g, n, mcfg)) cands.push_back(n);
  ASSERT_FALSE(cands.empty());

  BoundarySnapshot snap;
  std::size_t removed = 0;
  for (std::size_t k = 0; k < 6; ++k) {
    const NodeId pin = cands[rng() % cands.size()];
    SCOPED_TRACE(testing::Message() << "pin " << pin);
    removed += delta.apply(pin, mcfg) ? 1 : 0;
    engine.run_incremental(bc, delta.touched());
    engine.snapshot_into(snap);

    TimingGraph scratch = pristine;
    std::vector<bool> keep(pristine.num_nodes(), true);
    keep[pin] = false;
    merge_insensitive_pins(scratch, keep, mcfg);
    Sta::Options sopt = popt;
    sopt.threads = 1;
    Sta serial(scratch, sopt);
    serial.run(bc);
    expect_snapshot_bits_equal(snap, serial.boundary_snapshot());

    delta.undo();
    engine.run_incremental(bc, delta.touched());
  }
  EXPECT_GT(removed, 0u);
}

TEST(StaParallel, TopologyCacheRebuildsAfterStructuralChange) {
  // A parallel engine whose graph is mutated between full runs must
  // notice via structure_version and rebuild its level schedule.
  const Design d = test::make_tiny_design("par_rebuild", 207);
  const TimingGraph flat = build_timing_graph(d);
  TimingGraph g = extract_ilm(flat).graph;
  ASSERT_FALSE(has_parallel_duplicate_arcs(g));
  Sta::Options popt;
  popt.threads = 4;
  popt.parallel_min_nodes = 0;
  MergeConfig mcfg;

  Rng rng(0x91);
  const BoundaryConstraints bc = random_constraints(
      g.primary_inputs().size(), g.primary_outputs().size(), {}, rng);

  Sta engine(g, popt);
  engine.run(bc);  // builds the level schedule for the pristine graph

  MergeDelta delta(g);
  ASSERT_TRUE(delta.applicable());
  bool applied = false;
  for (NodeId n = 0; n < g.num_nodes() && !applied; ++n)
    if (mergeable(g, n, mcfg)) applied = delta.apply(n, mcfg);
  ASSERT_TRUE(applied);

  engine.run(bc);  // full parallel run on the mutated structure
  Sta serial(g, {.cppr = popt.cppr});
  serial.run(bc);
  expect_all_nodes_bits_equal(engine, serial, g);
}

}  // namespace
}  // namespace tmm
