#include <gtest/gtest.h>

#include <cmath>

#include "macro/compose.hpp"
#include "macro/index_selection.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

TEST(ComposeSense, Algebra) {
  using S = ArcSense;
  EXPECT_EQ(compose_sense(S::kPositiveUnate, S::kPositiveUnate),
            S::kPositiveUnate);
  EXPECT_EQ(compose_sense(S::kPositiveUnate, S::kNegativeUnate),
            S::kNegativeUnate);
  EXPECT_EQ(compose_sense(S::kNegativeUnate, S::kNegativeUnate),
            S::kPositiveUnate);
  EXPECT_EQ(compose_sense(S::kNonUnate, S::kPositiveUnate), S::kNonUnate);
  EXPECT_EQ(compose_sense(S::kNegativeUnate, S::kNonUnate), S::kNonUnate);
}

TEST(EvalArc, WireArcSemantics) {
  GraphArc a;
  a.kind = GraphArcKind::kWire;
  a.wire_delay_ps = 3.0;
  const ArcEval e = eval_arc(a, kLate, kRise, 10.0, 99.0);
  EXPECT_DOUBLE_EQ(e.delay, 3.0);
  EXPECT_DOUBLE_EQ(e.out_slew, wire_slew(10.0, 3.0));
}

/// Two buffer arcs composed serially must reproduce the exact chained
/// function at the selected index points and be close in between.
TEST(ComposeSerial, MatchesExactChain) {
  const Library& lib = test::shared_library();
  const Cell& buf = lib.cell(lib.cell_id("BUF_X1"));
  const ArcSpec& spec = buf.arcs[0];

  TimingGraph g;
  GraphArc a;
  a.kind = GraphArcKind::kCell;
  a.sense = spec.sense;
  a.delay = &spec.delay;
  a.out_slew = &spec.out_slew;
  GraphArc b = a;
  const double mid_load = 3.0;

  const ComposedTables ct = compose_serial(g, a, b, mid_load, {});
  EXPECT_EQ(ct.sense, ArcSense::kPositiveUnate);
  EXPECT_TRUE(ct.load_dependent);

  Rng rng(4);
  double worst = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double s = rng.uniform(1.0, 110.0);
    const double c = rng.uniform(0.5, 30.0);
    for (unsigned el = 0; el < kNumEl; ++el) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const ArcEval ea = eval_arc(a, el, rf, s, mid_load);
        const ArcEval eb = eval_arc(b, el, rf, ea.out_slew, c);
        const double exact = ea.delay + eb.delay;
        const double approx = ct.delay(el, rf).lookup(s, c);
        worst = std::max(worst, std::fabs(exact - approx));
      }
    }
  }
  // Re-sampled surface must stay tight (interpolation error only).
  EXPECT_LT(worst, 0.75);
}

TEST(ComposeSerial, WireThenCellStaysLoadDependent) {
  const Library& lib = test::shared_library();
  const ArcSpec& spec = lib.cell(lib.cell_id("INV_X1")).arcs[0];
  TimingGraph g;
  GraphArc w;
  w.kind = GraphArcKind::kWire;
  w.wire_delay_ps = 2.0;
  GraphArc c;
  c.kind = GraphArcKind::kCell;
  c.sense = spec.sense;
  c.delay = &spec.delay;
  c.out_slew = &spec.out_slew;
  const ComposedTables ct = compose_serial(g, w, c, 0.0, {});
  EXPECT_TRUE(ct.load_dependent);
  EXPECT_EQ(ct.sense, ArcSense::kNegativeUnate);
  // delay(s, load) == wire + inv_delay(wire_slew(s), load).
  const double s = 12.0;
  const double load = 6.0;
  const double exact =
      2.0 + spec.delay(kLate, kRise).lookup(wire_slew(s, 2.0), load);
  EXPECT_NEAR(ct.delay(kLate, kRise).lookup(s, load), exact, 0.35);
}

TEST(ComposeSerial, CellThenWireBecomesOneDimensional) {
  const Library& lib = test::shared_library();
  const ArcSpec& spec = lib.cell(lib.cell_id("BUF_X1")).arcs[0];
  TimingGraph g;
  GraphArc c;
  c.kind = GraphArcKind::kCell;
  c.sense = spec.sense;
  c.delay = &spec.delay;
  c.out_slew = &spec.out_slew;
  GraphArc w;
  w.kind = GraphArcKind::kWire;
  w.wire_delay_ps = 1.5;
  const double mid_load = 4.0;  // folded statically
  const ComposedTables ct = compose_serial(g, c, w, mid_load, {});
  EXPECT_FALSE(ct.load_dependent);
  EXPECT_TRUE(ct.delay(kLate, kRise).is_1d());
  const double s = 9.0;
  const double exact = spec.delay(kLate, kRise).lookup(s, mid_load) + 1.5;
  EXPECT_NEAR(ct.delay(kLate, kRise).lookup(s, /*ignored*/ 123.0), exact,
              0.35);
}

TEST(ComposeParallel, TakesWorstCaseEnvelope) {
  const Library& lib = test::shared_library();
  const ArcSpec& fast = lib.cell(lib.cell_id("BUF_X4")).arcs[0];
  const ArcSpec& slow = lib.cell(lib.cell_id("BUF_X1")).arcs[0];
  TimingGraph g;
  GraphArc a;
  a.kind = GraphArcKind::kCell;
  a.sense = fast.sense;
  a.delay = &fast.delay;
  a.out_slew = &fast.out_slew;
  GraphArc b = a;
  b.delay = &slow.delay;
  b.out_slew = &slow.out_slew;
  const ComposedTables ct = compose_parallel(g, a, b, 4.0, {});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double s = rng.uniform(1.0, 100.0);
    const double c = rng.uniform(0.5, 30.0);
    const double late_a = fast.delay(kLate, kRise).lookup(s, c);
    const double late_b = slow.delay(kLate, kRise).lookup(s, c);
    EXPECT_NEAR(ct.delay(kLate, kRise).lookup(s, c),
                std::max(late_a, late_b), 0.5);
    const double early_a = fast.delay(kEarly, kRise).lookup(s, c);
    const double early_b = slow.delay(kEarly, kRise).lookup(s, c);
    EXPECT_NEAR(ct.delay(kEarly, kRise).lookup(s, c),
                std::min(early_a, early_b), 0.5);
  }
}

// ---------------------------------------------------------- selection

TEST(IndexSelection, KeepsEndpoints) {
  const std::vector<double> xs{0, 1, 2, 3, 4};
  const std::vector<std::vector<double>> fs{{0, 1, 2, 3, 4}};
  const auto sel = select_indices(xs, fs, {.max_points = 3});
  ASSERT_GE(sel.size(), 2u);
  EXPECT_EQ(sel.front(), 0u);
  EXPECT_EQ(sel.back(), 4u);
}

TEST(IndexSelection, LinearFunctionNeedsOnlyEndpoints) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 1.0);
  }
  const std::vector<std::vector<double>> fs{ys};
  const auto sel = select_indices(xs, fs, {.max_points = 7});
  EXPECT_EQ(sel.size(), 2u);  // tolerance met immediately
}

TEST(IndexSelection, PicksTheKink) {
  // Piecewise-linear with a kink at x=5: the third point must be there.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(i <= 5 ? static_cast<double>(i) : 5.0 + 3.0 * (i - 5));
  }
  const std::vector<std::vector<double>> fs{ys};
  const auto sel = select_indices(xs, fs, {.max_points = 3});
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[1], 5u);
  EXPECT_LT(interpolation_error(xs, ys, sel), 1e-12);
}

TEST(IndexSelection, MorePointsNeverWorse) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 40; ++i) {
    xs.push_back(i * 0.25);
    ys.push_back(std::sqrt(1.0 + xs.back()) * 10.0);
  }
  const std::vector<std::vector<double>> fs{ys};
  double prev = 1e18;
  for (std::size_t k = 2; k <= 8; ++k) {
    const auto sel = select_indices(xs, fs, {.max_points = k, .tolerance_ps = 0});
    const double err = interpolation_error(xs, ys, sel);
    EXPECT_LE(err, prev + 1e-12);
    prev = err;
  }
  EXPECT_LT(prev, 0.25);
}

TEST(IndexSelection, JointSelectionCoversAllFunctions) {
  std::vector<double> xs;
  for (int i = 0; i <= 10; ++i) xs.push_back(i);
  std::vector<double> f1(11), f2(11);
  for (int i = 0; i <= 10; ++i) {
    f1[i] = i <= 3 ? i : 3.0 + 2.0 * (i - 3);   // kink at 3
    f2[i] = i <= 7 ? i : 7.0 + 4.0 * (i - 7);   // kink at 7
  }
  const std::vector<std::vector<double>> fs{f1, f2};
  const auto sel = select_indices(xs, fs, {.max_points = 4, .tolerance_ps = 0});
  EXPECT_LT(interpolation_error(xs, f1, sel), 1e-12);
  EXPECT_LT(interpolation_error(xs, f2, sel), 1e-12);
}

TEST(DensifyAxis, AddsMidpoints) {
  const auto dense = densify_axis(std::vector<double>{1.0, 2.0, 4.0});
  const std::vector<double> expected{1.0, 1.5, 2.0, 3.0, 4.0};
  EXPECT_EQ(dense, expected);
}

}  // namespace
}  // namespace tmm
