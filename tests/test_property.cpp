// Parameterized property sweeps across random designs: the invariants
// every substrate must hold regardless of seed or shape.

#include <gtest/gtest.h>

#include <cmath>

#include "flow/framework.hpp"
#include "test_helpers.hpp"

namespace tmm {
namespace {

struct Shape {
  std::uint64_t seed;
  std::size_t pis;
  std::size_t flops;
  std::size_t levels;
  std::size_t per_level;
};

class DesignSweep : public ::testing::TestWithParam<Shape> {
 protected:
  Design make() const {
    const Shape& s = GetParam();
    DesignGenConfig cfg;
    cfg.name = "p" + std::to_string(s.seed);
    cfg.seed = s.seed;
    cfg.num_data_inputs = s.pis;
    cfg.num_outputs = s.pis;
    cfg.num_flops = s.flops;
    cfg.levels = s.levels;
    cfg.gates_per_level = s.per_level;
    return generate_design(test::shared_library(), cfg);
  }
};

TEST_P(DesignSweep, GraphIsAcyclicAndConsistent) {
  const Design d = make();
  const TimingGraph g = build_timing_graph(d);
  EXPECT_NO_THROW(g.topo_order());
  // Topological order must respect every live arc.
  std::vector<std::size_t> position(g.num_nodes(), 0);
  const auto& order = g.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (arc.dead) continue;
    EXPECT_LT(position[arc.from], position[arc.to]);
  }
}

TEST_P(DesignSweep, AtRespectsArcDelaysPointwise) {
  const Design d = make();
  const TimingGraph g = build_timing_graph(d);
  Sta sta(g);
  Rng rng(GetParam().seed + 1);
  sta.run(random_constraints(d.primary_inputs().size(),
                             d.primary_outputs().size(), {}, rng));
  // Late arrivals satisfy at(to) >= at(from) + delay for every arc and
  // compatible transition (the relaxation is a fixed point).
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (arc.dead) continue;
    const auto& tf = sta.timing(arc.from);
    const auto& tt = sta.timing(arc.to);
    if (arc.kind == GraphArcKind::kWire) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        if (!std::isfinite(tf.at(kLate, rf))) continue;
        EXPECT_GE(tt.at(kLate, rf) + 1e-9,
                  tf.at(kLate, rf) + arc.wire_delay_ps);
      }
    }
  }
}

TEST_P(DesignSweep, IlmIsBoundaryExact) {
  const Design d = make();
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  Rng rng(GetParam().seed + 2);
  std::vector<BoundaryConstraints> sets;
  sets.push_back(random_constraints(d.primary_inputs().size(),
                                    d.primary_outputs().size(), {}, rng));
  const AccuracyReport rep = evaluate_accuracy(flat, ilm.graph, sets, true);
  EXPECT_LT(rep.max_err_ps, 1e-6);
  EXPECT_EQ(rep.structural_mismatches, 0u);
}

TEST_P(DesignSweep, FullMergeStaysInPaperErrorRegime) {
  const Design d = make();
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
    if (is_cppr_crucial(ilm.graph, n)) keep[n] = true;
  merge_insensitive_pins(ilm.graph, keep);
  Rng rng(GetParam().seed + 3);
  std::vector<BoundaryConstraints> sets;
  for (int i = 0; i < 2; ++i)
    sets.push_back(random_constraints(d.primary_inputs().size(),
                                      d.primary_outputs().size(), {}, rng));
  const AccuracyReport rep = evaluate_accuracy(flat, ilm.graph, sets, true);
  EXPECT_EQ(rep.structural_mismatches, 0u);
  // Sense-split chain materialization keeps even the most aggressive
  // merge within a fraction of a picosecond.
  EXPECT_LT(rep.max_err_ps, 0.5) << "seed " << GetParam().seed;
}

TEST_P(DesignSweep, MergePreservesBoundaryPortsAndChecksEndpoints) {
  const Design d = make();
  const TimingGraph flat = build_timing_graph(d);
  IlmResult ilm = extract_ilm(flat);
  const std::size_t checks_before = [&] {
    std::size_t c = 0;
    for (const auto& chk : ilm.graph.checks())
      if (!chk.dead) ++c;
    return c;
  }();
  std::vector<bool> keep(ilm.graph.num_nodes(), false);
  merge_insensitive_pins(ilm.graph, keep);
  std::size_t checks_after = 0;
  for (const auto& chk : ilm.graph.checks())
    if (!chk.dead) ++checks_after;
  EXPECT_EQ(checks_before, checks_after);
  for (NodeId p : ilm.graph.primary_inputs()) {
    if (p != kInvalidId) {
      EXPECT_FALSE(ilm.graph.node(p).dead);
    }
  }
  for (NodeId p : ilm.graph.primary_outputs()) {
    if (p != kInvalidId) {
      EXPECT_FALSE(ilm.graph.node(p).dead);
    }
  }
}

TEST_P(DesignSweep, FilterNeverDropsLastStagePins) {
  const Design d = make();
  const TimingGraph flat = build_timing_graph(d);
  const IlmResult ilm = extract_ilm(flat);
  const FilterResult fr = filter_insensitive_pins(ilm.graph);
  for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n) {
    if (ilm.graph.node(n).dead) continue;
    if (is_last_stage(ilm.graph, n)) {
      EXPECT_TRUE(fr.remained[n]);
    }
  }
}

TEST_P(DesignSweep, SlewOnlyMatchesFullStaLateSlews) {
  const Design d = make();
  const TimingGraph g = build_timing_graph(d);
  const double pi_slew = 10.0;
  const double po_load = 4.0;
  const auto quick = propagate_slew_only(g, pi_slew, po_load);

  BoundaryConstraints bc = nominal_constraints(
      d.primary_inputs().size(), d.primary_outputs().size());
  for (auto& pi : bc.pi)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) pi.slew(el, rf) = pi_slew;
  for (auto& po : bc.po) po.load_ff = po_load;
  Sta sta(g);
  sta.run(bc);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const double full = std::max(sta.timing(n).slew(kLate, kRise),
                                 sta.timing(n).slew(kLate, kFall));
    if (!std::isfinite(full) || !std::isfinite(quick[n])) {
      EXPECT_EQ(std::isfinite(full), std::isfinite(quick[n]));
      continue;
    }
    EXPECT_NEAR(quick[n], full, 1e-9) << g.node(n).name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DesignSweep,
    ::testing::Values(Shape{101, 4, 12, 4, 10}, Shape{102, 8, 24, 5, 18},
                      Shape{103, 12, 40, 6, 30}, Shape{104, 6, 64, 7, 24},
                      Shape{105, 16, 32, 8, 40}, Shape{106, 10, 100, 5, 50}));

// ---- end-to-end invariants over the trained flow ----------------------

TEST(RegressionMode, TrainsAndGeneratesAccurateModels) {
  FlowConfig cfg;
  cfg.cppr = true;
  cfg.regression = true;
  cfg.data.ts.num_constraint_sets = 2;
  cfg.train.epochs = 120;
  Framework fw(cfg);
  std::vector<Design> training;
  training.push_back(test::make_tiny_design("r0", 80));
  training.push_back(test::make_small_design("r1", 81));
  const TrainingSummary sum = fw.train(training);
  EXPECT_GT(sum.positives, 0u);
  EXPECT_GT(fw.ts_scale(), 0.0);

  const Design d = test::make_small_design("r2", 82);
  const DesignResult r = fw.run_design(d);
  EXPECT_EQ(r.acc.structural_mismatches, 0u);
  EXPECT_LT(r.acc.max_err_ps, 1.0);
  EXPECT_LT(r.gen.model_pins, r.gen.ilm_pins);
}

TEST(RegressionMode, MseLossGradientsMatchFiniteDifferences) {
  Matrix logits(4, 1);
  logits(0, 0) = 0.3f;
  logits(1, 0) = -1.2f;
  logits(2, 0) = 2.0f;
  logits(3, 0) = 0.0f;
  const std::vector<float> targets{0.9f, 0.0f, 0.4f, 0.1f};
  const std::vector<unsigned char> mask{1, 1, 1, 1};
  Matrix grad;
  mse_on_sigmoid(logits, targets, mask, 2.0f, grad);
  for (std::size_t i = 0; i < 4; ++i) {
    const float eps = 1e-3f;
    Matrix lp = logits;
    lp(i, 0) += eps;
    Matrix lm = logits;
    lm(i, 0) -= eps;
    Matrix dummy;
    const double up = mse_on_sigmoid(lp, targets, mask, 2.0f, dummy);
    const double dn = mse_on_sigmoid(lm, targets, mask, 2.0f, dummy);
    EXPECT_NEAR(grad(i, 0), (up - dn) / (2 * eps), 1e-4);
  }
}

TEST(FlowHeadline, GnnModelMatchesPaperAccuracyRegime) {
  // The paper's headline: max boundary errors well below 0.1 ps while
  // the model shrinks the ILM substantially.
  FlowConfig cfg;
  cfg.cppr = true;
  cfg.data.ts.num_constraint_sets = 2;
  cfg.train.epochs = 120;
  Framework fw(cfg);
  std::vector<Design> training;
  training.push_back(test::make_tiny_design("h0", 90));
  training.push_back(test::make_small_design("h1", 91));
  fw.train(training);
  const Design d = test::make_small_design("h2", 92);
  const DesignResult r = fw.run_design(d);
  EXPECT_LT(r.acc.max_err_ps, 0.1);
  EXPECT_LT(r.gen.model_pins, r.gen.ilm_pins * 3 / 4);
  EXPECT_EQ(r.acc.structural_mismatches, 0u);
}

}  // namespace
}  // namespace tmm
