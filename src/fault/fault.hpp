#pragma once
// Structured error model and deterministic fault injection for the
// fault-tolerant flow (docs/ROBUSTNESS.md).
//
// Error model: every recoverable failure in the pipeline is reported as
// a FlowError carrying a machine-readable ErrorCode plus the stage,
// design, and pin context in which it fired — the flow layer catches it
// at the per-design (and per-constraint-set) boundary, records the
// design as failed/degraded, and keeps going. Status is the
// non-throwing variant for leaf utilities (atomic file writes).
//
// Fault injection: TMM_FAULT=<site>:<nth>[:throw|:kill] arms exactly
// one of the registered sites below; the nth time that site executes,
// the harness either throws FlowError(kInjected) — exercising the same
// recovery path a real failure would take — or raises SIGKILL, which is
// how the CI matrix proves that interrupted runs never leave torn
// output files and always resume bit-identically. Disarmed, inject() is
// a single relaxed atomic load.

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tmm::fault {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kConfig,       ///< bad invocation or configuration (CLI exit code 2)
  kIo,           ///< filesystem open/write/rename failure
  kParse,        ///< malformed input file (message carries source:line)
  kNumeric,      ///< NaN/Inf detected in STA, LUT, or GNN numerics
  kUnavailable,  ///< nothing succeeded; no partial result exists
  kInjected,     ///< raised by the TMM_FAULT harness
  kInternal,     ///< wrapped foreign exception
};

/// Stable lower-case name ("parse", "numeric", ...) used in diagnostics
/// and in the --metrics JSON.
const char* error_code_name(ErrorCode code) noexcept;

/// The structured exception of the flow: code + stage + design + pin
/// context, rendered into what() as
///   [code] stage 'x' design 'y' pin 'z': message
class FlowError : public std::runtime_error {
 public:
  FlowError(ErrorCode code, std::string stage, std::string message,
            std::string design = {}, std::string pin = {});

  ErrorCode code() const noexcept { return code_; }
  const std::string& stage() const noexcept { return stage_; }
  const std::string& design() const noexcept { return design_; }
  const std::string& pin() const noexcept { return pin_; }
  /// The bare message, without the rendered context prefix.
  const std::string& message() const noexcept { return message_; }

  /// Copy with the design context filled in (the parser rarely knows
  /// which design it is reading; the flow layer does).
  FlowError with_design(std::string design) const;

 private:
  ErrorCode code_;
  std::string stage_;
  std::string design_;
  std::string pin_;
  std::string message_;
};

/// Non-throwing result for leaf utilities. Default-constructed == ok.
class [[nodiscard]] Status {
 public:
  Status() = default;
  static Status failure(ErrorCode code, std::string message) {
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Throw the equivalent FlowError when not ok.
  void or_throw(std::string stage, std::string design = {}) const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// ---------------------------------------------------------------------
// Deterministic fault injection.

enum class FaultAction : std::uint8_t {
  kThrow,  ///< throw FlowError(kInjected) at the site
  kKill,   ///< raise SIGKILL at the site (torn-file / resume testing)
};

namespace detail {
extern std::atomic<bool> g_armed;
void inject_slow(const char* site);
}  // namespace detail

/// Hook point. Disarmed (the default), this is one relaxed atomic load;
/// armed, it counts invocations of `site` and fires the configured
/// action exactly once, on the nth hit.
inline void inject(const char* site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return;
  detail::inject_slow(site);
}

/// Arm one site programmatically (tests). `nth` is 1-based. Fails with
/// kConfig when `site` is not a registered site name or nth == 0.
Status arm(std::string_view site, std::uint64_t nth,
           FaultAction action = FaultAction::kThrow);

/// Disarm and clear counters. Safe to call when already disarmed.
void disarm() noexcept;

/// Parse TMM_FAULT=<site>:<nth>[:throw|:kill] and arm accordingly.
/// Unset/empty env is ok (stays disarmed); a malformed spec or an
/// unregistered site is a kConfig failure so CI typos fail loudly.
Status arm_from_env();

/// Invocation count of the armed site since arm (0 when disarmed).
std::uint64_t hits() noexcept;
/// True once the armed fault has fired.
bool fired() noexcept;

/// Every registered injection site, sorted (the CI matrix iterates
/// this via `tmm fault-sites`).
std::span<const std::string_view> registered_sites() noexcept;

/// Observer called when the armed fault fires, after the fire decision
/// but before the action (throw or SIGKILL) takes effect — the serving
/// layer uses it to dump the request flight recorder next to the
/// failure. The hook runs with no fault-layer locks held, so it may do
/// real work (file I/O, even code containing other inject() sites —
/// the exactly-once contract keeps those from re-firing). It is never
/// invoked re-entrantly. Pass an empty function to clear.
void set_fire_hook(std::function<void(const char* site)> hook);

}  // namespace tmm::fault
