#include "fault/fault.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>

#include "util/mutex.hpp"

namespace tmm::fault {

namespace {

/// Registered injection sites, sorted. Adding a hook point to the code
/// without listing it here makes arm()/TMM_FAULT reject it, so the CI
/// matrix (which iterates `tmm fault-sites`) can never silently miss a
/// recovery path.
constexpr std::string_view kSites[] = {
    "checkpoint.save_model",
    "checkpoint.save_sens",
    "flow.design",
    "flow.train_design",
    "frontend.map",
    "frontend.parse",
    "gnn.load",
    "gnn.save",
    "gnn.train_epoch",
    "macro.read",
    "macro.write",
    "netlist.read",
    "serve.load_model",
    "serve.pack",
    "serve.parse_request",
    "serve.reload_open",
    "serve.reload_swap",
    "serve.reload_validate",
    "serve.write_response",
    "sta.run",
    "ts.constraint_set",
    "ts.eval_pin",
    "util.atomic_rename",
    "util.atomic_write",
};

bool is_registered(std::string_view site) {
  return std::find(std::begin(kSites), std::end(kSites), site) !=
         std::end(kSites);
}

const util::lockorder::LockClass kPlanLockClass("fault.plan");

/// Armed plan. The mutex guards the armed spec (site/nth/action) for
/// both writers (arm/disarm) and the slow-path reader (inject_slow);
/// the hot path reads only g_armed, and count/fired stay atomic so a
/// site hit by many workers still fires exactly once.
struct Plan {
  util::Mutex mu{kPlanLockClass};
  std::string site TMM_GUARDED_BY(mu);
  std::uint64_t nth TMM_GUARDED_BY(mu) = 0;
  FaultAction action TMM_GUARDED_BY(mu) = FaultAction::kThrow;
  // Invariant: count/fired are event tallies with no data published
  // through them (readers are test assertions and the fired() probe
  // after the throw already unwound), so relaxed suffices; exactly-once
  // firing comes from fetch_add returning a unique n per hit.
  std::atomic<std::uint64_t> count{0};
  std::atomic<bool> fired{false};
};

Plan& plan() {
  static Plan* p = new Plan;  // leaked: sites fire from any thread, any time
  return *p;
}

const util::lockorder::LockClass kFireHookLockClass("fault.firehook");

/// Fire observer. The mutex guards only the std::function slot (set
/// and copy-out); the hook itself always runs with no locks held, so
/// it can contain inject() sites of its own. Leaf lock.
struct FireHookSlot {
  util::Mutex mu{kFireHookLockClass};
  std::function<void(const char*)> fn TMM_GUARDED_BY(mu);
};

FireHookSlot& fire_hook() {
  static FireHookSlot* h = new FireHookSlot;  // leaked, as plan()
  return *h;
}

}  // namespace

namespace detail {

// Invariant: g_armed is the disarmed-fast-path gate; a hook racing
// arm()/disarm() may take or skip the slow path one call late, which
// the deterministic-nth contract tolerates (arming happens before the
// workload starts). Relaxed; the plan mutex orders the spec itself.
std::atomic<bool> g_armed{false};

void inject_slow(const char* site) {
  Plan& p = plan();
  std::uint64_t n = 0;
  FaultAction action = FaultAction::kThrow;
  {
    // Lock: the armed spec may be re-armed by a test thread while hook
    // sites run; without it p.site's buffer could be read mid-assign.
    // Scoped so the fire hook below runs with the plan unlocked — the
    // hook may do real work containing inject() sites (a flight-dump
    // write goes through util.atomic_write), which would self-deadlock
    // here otherwise.
    util::MutexLock lock(p.mu);
    // site strings are compile-time literals at the hook points; the
    // armed site was validated against kSites, so a simple compare
    // picks out the one site under test.
    if (p.site != site) return;
    n = p.count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n != p.nth) return;
    p.fired.store(true, std::memory_order_relaxed);
    action = p.action;
  }
  {
    // Copy the hook out under its (leaf) lock, invoke outside it. A
    // site firing *inside* a hook must not recurse into the hook —
    // thread-local guard, not the exactly-once counter, enforces that
    // (the counter alone would allow one nested invocation).
    static thread_local bool in_hook = false;
    std::function<void(const char*)> fn;
    if (!in_hook) {
      FireHookSlot& h = fire_hook();
      util::MutexLock lock(h.mu);
      fn = h.fn;
    }
    if (fn) {
      in_hook = true;
      try {
        fn(site);
      } catch (...) {
        // A failing observer must not mask the injected fault.
      }
      in_hook = false;
    }
  }
  if (action == FaultAction::kKill) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): SIGKILL terminates the
    // process from any thread by design (torn-file / resume testing).
    std::raise(SIGKILL);
    std::abort();  // unreachable; SIGKILL cannot be handled
  }
  throw FlowError(ErrorCode::kInjected, site,
                  "injected fault (TMM_FAULT hit " + std::to_string(n) + ")");
}

}  // namespace detail

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kNumeric: return "numeric";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInjected: return "injected";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

namespace {

std::string render(ErrorCode code, const std::string& stage,
                   const std::string& design, const std::string& pin,
                   const std::string& message) {
  std::string s = "[";
  s += error_code_name(code);
  s += "] ";
  s += stage;
  if (!design.empty()) {
    s += " design '";
    s += design;
    s += '\'';
  }
  if (!pin.empty()) {
    s += " pin '";
    s += pin;
    s += '\'';
  }
  s += ": ";
  s += message;
  return s;
}

}  // namespace

FlowError::FlowError(ErrorCode code, std::string stage, std::string message,
                     std::string design, std::string pin)
    : std::runtime_error(render(code, stage, design, pin, message)),
      code_(code),
      stage_(std::move(stage)),
      design_(std::move(design)),
      pin_(std::move(pin)),
      message_(std::move(message)) {}

FlowError FlowError::with_design(std::string design) const {
  return FlowError(code_, stage_, message_, std::move(design), pin_);
}

void Status::or_throw(std::string stage, std::string design) const {
  if (ok()) return;
  throw FlowError(code_, std::move(stage), message_, std::move(design));
}

Status arm(std::string_view site, std::uint64_t nth, FaultAction action) {
  if (nth == 0)
    return Status::failure(ErrorCode::kConfig,
                           "fault injection: nth must be >= 1");
  if (!is_registered(site))
    return Status::failure(
        ErrorCode::kConfig,
        "fault injection: unregistered site '" + std::string(site) +
            "' (see `tmm fault-sites`)");
  Plan& p = plan();
  util::MutexLock lock(p.mu);
  p.site = std::string(site);
  p.nth = nth;
  p.action = action;
  p.count.store(0, std::memory_order_relaxed);
  p.fired.store(false, std::memory_order_relaxed);
  detail::g_armed.store(true, std::memory_order_relaxed);
  return {};
}

void disarm() noexcept {
  Plan& p = plan();
  util::MutexLock lock(p.mu);
  detail::g_armed.store(false, std::memory_order_relaxed);
  p.site.clear();
  p.nth = 0;
  p.count.store(0, std::memory_order_relaxed);
  p.fired.store(false, std::memory_order_relaxed);
}

Status arm_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup,
  // before any thread that could call setenv exists.
  const char* env = std::getenv("TMM_FAULT");
  if (env == nullptr || *env == '\0') return {};
  const std::string spec(env);
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0)
    return Status::failure(ErrorCode::kConfig,
                           "TMM_FAULT: expected <site>:<nth>[:throw|:kill], "
                           "got '" + spec + "'");
  const std::string site = spec.substr(0, c1);
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::string nth_str =
      spec.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                  : c2 - c1 - 1);
  FaultAction action = FaultAction::kThrow;
  if (c2 != std::string::npos) {
    const std::string action_str = spec.substr(c2 + 1);
    if (action_str == "kill")
      action = FaultAction::kKill;
    else if (action_str != "throw")
      return Status::failure(ErrorCode::kConfig,
                             "TMM_FAULT: unknown action '" + action_str +
                                 "' (expected throw or kill)");
  }
  char* end = nullptr;
  const unsigned long long nth = std::strtoull(nth_str.c_str(), &end, 10);
  if (nth_str.empty() || end == nullptr || *end != '\0' || nth == 0)
    return Status::failure(ErrorCode::kConfig,
                           "TMM_FAULT: bad occurrence count '" + nth_str +
                               "'");
  return arm(site, nth, action);
}

std::uint64_t hits() noexcept {
  return plan().count.load(std::memory_order_relaxed);
}

bool fired() noexcept {
  return plan().fired.load(std::memory_order_relaxed);
}

std::span<const std::string_view> registered_sites() noexcept {
  return kSites;
}

void set_fire_hook(std::function<void(const char*)> hook) {
  FireHookSlot& h = fire_hook();
  util::MutexLock lock(h.mu);
  h.fn = std::move(hook);
}

}  // namespace tmm::fault
