#include "fault/token_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace tmm::io {

std::string TokenReader::token(const char* what) {
  int c = is_.get();
  while (c != std::istream::traits_type::eof() &&
         std::isspace(static_cast<unsigned char>(c))) {
    if (c == '\n') ++line_;
    c = is_.get();
  }
  if (c == std::istream::traits_type::eof())
    fail(std::string("expected ") + what + ", got end of input");
  std::string tok;
  while (c != std::istream::traits_type::eof() &&
         !std::isspace(static_cast<unsigned char>(c))) {
    tok.push_back(static_cast<char>(c));
    c = is_.get();
  }
  // Put the trailing separator back so line counting stays exact for
  // the next token.
  if (c != std::istream::traits_type::eof())
    is_.unget();
  return tok;
}

void TokenReader::expect(const char* tag) {
  const std::string tok = token(tag);
  if (tok != tag)
    fail(std::string("expected '") + tag + "', got '" + tok + "'");
}

double TokenReader::number(const char* what) {
  const std::string tok = token(what);
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0')
    fail(std::string("expected a number for ") + what + ", got '" + tok +
         "'");
  if (!std::isfinite(v))
    fail(std::string("non-finite value '") + tok + "' for " + what);
  return v;
}

float TokenReader::number_f(const char* what) {
  return static_cast<float>(number(what));
}

std::size_t TokenReader::size(const char* what) {
  const std::string tok = token(what);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (tok.empty() || tok[0] == '-' || end == tok.c_str() || *end != '\0')
    fail(std::string("expected a non-negative integer for ") + what +
         ", got '" + tok + "'");
  return static_cast<std::size_t>(v);
}

std::size_t TokenReader::size_at_most(const char* what, std::size_t cap) {
  const std::size_t v = size(what);
  if (v > cap)
    fail(std::string("implausible count ") + std::to_string(v) + " for " +
         what + " (limit " + std::to_string(cap) + ")");
  return v;
}

std::uint32_t TokenReader::u32(const char* what) {
  const std::size_t v = size(what);
  if (v > 0xFFFFFFFFull)
    fail(std::string("value out of range for ") + what);
  return static_cast<std::uint32_t>(v);
}

int TokenReader::integer_in(const char* what, int lo, int hi) {
  const std::string tok = token(what);
  char* end = nullptr;
  const long v = std::strtol(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0')
    fail(std::string("expected an integer for ") + what + ", got '" + tok +
         "'");
  if (v < lo || v > hi)
    fail(std::string("value ") + tok + " for " + what + " outside [" +
         std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return static_cast<int>(v);
}

void TokenReader::fail(const std::string& msg) const {
  throw fault::FlowError(fault::ErrorCode::kParse,
                         source_ + ":" + std::to_string(line_), msg);
}

}  // namespace tmm::io
