#pragma once
// Line-tracking token reader for the text formats (designs, macro
// models, GNN weights, checkpoints). Replaces bare `is >> x` parsing so
// a malformed file reports *where* it is malformed:
//
//   [parse] blk.dsn:17: expected 'sink', got 'snk'
//
// and so non-finite numeric fields (NaN in a LUT, Inf in a weight) are
// rejected at the parse boundary instead of corrupting timing silently.

#include <cstdint>
#include <istream>
#include <string>

#include "fault/fault.hpp"

namespace tmm::io {

class TokenReader {
 public:
  /// `source` names the stream in diagnostics (file path, or a logical
  /// name like "<macro>" when parsing from memory).
  TokenReader(std::istream& is, std::string source)
      : is_(is), source_(std::move(source)) {}

  /// Next whitespace-delimited token; `what` names it in the error
  /// raised at end-of-input.
  std::string token(const char* what);

  /// token() that must equal `tag` exactly.
  void expect(const char* tag);

  /// Finite floating-point field (NaN/Inf is a parse error). Accepts
  /// the hexfloat spelling the checkpoint writer uses.
  double number(const char* what);
  float number_f(const char* what);

  /// Non-negative integer field.
  std::size_t size(const char* what);
  /// size() capped: a corrupt count field must not turn into a
  /// multi-gigabyte allocation before the next token check fires.
  std::size_t size_at_most(const char* what, std::size_t cap);
  std::uint32_t u32(const char* what);
  /// Integer field constrained to [lo, hi] (enum ranges, flags).
  int integer_in(const char* what, int lo, int hi);

  /// 1-based line of the most recently read token.
  std::size_t line() const noexcept { return line_; }
  const std::string& source() const noexcept { return source_; }

  /// Raise a parse error at the current source:line.
  [[noreturn]] void fail(const std::string& msg) const;

 private:
  std::istream& is_;
  std::string source_;
  std::size_t line_ = 1;
};

}  // namespace tmm::io
