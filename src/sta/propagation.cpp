#include "sta/propagation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/task_pool.hpp"

namespace tmm {

namespace {

constexpr std::size_t idx(NodeId n, unsigned el, unsigned rf) {
  return TimingStore::index(n, el, rf);
}

/// True if `cand` is worse (dominates) than `cur` in the el corner:
/// late keeps maxima, early keeps minima.
constexpr bool dominates(unsigned el, double cand, double cur) {
  return el == kLate ? cand > cur : cand < cur;
}

/// Nodes per task-pool chunk in the level-parallel passes. A node's
/// relaxation is a handful of LUT lookups (~a microsecond for typical
/// fanin), so 16 nodes amortize the chunk-claim atomic while leaving
/// wide levels enough chunks to balance.
constexpr std::size_t kLevelGrain = 16;
/// Check-seeding chunks are per data pin (each pin's checks go to one
/// task so all writes stay on that pin); seeds are heavier than node
/// relaxations when CPPR walks clock chains, so chunk fewer of them.
constexpr std::size_t kCheckGrain = 8;

// Metric handles resolved once at namespace scope: the TS loop runs the
// engine once per pin per constraint set, and the registry name lookup
// plus the guard check of a function-local static are measurable there.
// The registry itself is a leaked function-local static, so this is
// safe at static-initialization time.
obs::Counter& g_runs = obs::counter("sta.runs");
obs::Counter& g_parallel_runs = obs::counter("sta.parallel_runs");
obs::Counter& g_nodes_propagated = obs::counter("sta.nodes_propagated");
obs::Counter& g_nan_detected = obs::counter("sta.nan_detected");
obs::Counter& g_incremental_runs = obs::counter("sta.incremental_runs");
obs::Counter& g_slew_only_runs = obs::counter("sta.slew_only_runs");

}  // namespace

SnapshotDiff diff_snapshots(const BoundarySnapshot& a,
                            const BoundarySnapshot& b) {
  SnapshotDiff out;
  double sum_abs = 0.0;
  double sum_rel = 0.0;
  auto scan = [&](const std::vector<double>& x, const std::vector<double>& y) {
    const std::size_t n = std::min(x.size(), y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const bool fx = std::isfinite(x[i]);
      const bool fy = std::isfinite(y[i]);
      if (fx != fy) {
        ++out.mismatched;
        continue;
      }
      if (!fx) continue;  // both unconstrained/unreached: equal by convention
      const double d = std::fabs(x[i] - y[i]);
      out.max_abs = std::max(out.max_abs, d);
      sum_abs += d;
      sum_rel += d / std::max(std::fabs(y[i]), 1e-6);
      ++out.compared;
    }
    if (x.size() != y.size()) out.mismatched += std::max(x.size(), y.size()) - n;
  };
  scan(a.slew, b.slew);
  scan(a.at, b.at);
  scan(a.rat, b.rat);
  scan(a.slack, b.slack);
  if (out.compared > 0) {
    out.avg_abs = sum_abs / static_cast<double>(out.compared);
    out.avg_rel = sum_rel / static_cast<double>(out.compared);
  }
  return out;
}

Sta::Sta(const TimingGraph& graph, Options opt) : graph_(&graph), opt_(opt) {}

std::size_t Sta::resolve_parallelism() const {
  if (opt_.threads == 1) return 1;
  if (graph_->num_nodes() < opt_.parallel_min_nodes) return 1;
  const std::size_t want =
      opt_.threads == 0 ? util::TaskPool::default_threads() : opt_.threads;
  return std::max<std::size_t>(1, want);
}

void Sta::ensure_topology() {
  if (topo_valid_ && topo_.graph_version == graph_->structure_version())
    return;
  topo_ = StaTopology::build(*graph_);
  topo_valid_ = true;
}

void Sta::run(const BoundaryConstraints& bc) {
  obs::Span span("sta.run");
  g_runs.add();
  g_nodes_propagated.add(graph_->num_live_nodes());
  const std::size_t n = graph_->num_nodes();
  store_.assign_nodes(n);
  preds_.assign(n * TimingStore::kLanes, Pred{});
  credits_.assign(n * TimingStore::kLanes, 0.0);
  eff_load_.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto& node = graph_->node(u);
    if (node.dead) continue;
    double load = node.static_load_ff;
    for (std::uint32_t po : node.attached_po_loads)
      if (po < bc.po.size()) load += bc.po[po].load_ff;
    eff_load_[u] = load;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      store_.at[idx(u, kLate, rf)] = -kInf;
      store_.at[idx(u, kEarly, rf)] = kInf;
      store_.slew[idx(u, kLate, rf)] = -kInf;
      store_.slew[idx(u, kEarly, rf)] = kInf;
      store_.rat[idx(u, kLate, rf)] = kInf;
      store_.rat[idx(u, kEarly, rf)] = -kInf;
    }
  }
  const std::size_t par = resolve_parallelism();
  if (par > 1) {
    g_parallel_runs.add();
    span.set_arg("threads", static_cast<double>(par));
    ensure_topology();
    forward_parallel(bc, par);
    seed_backward_parallel(bc, par);
    backward_parallel(par);
  } else {
    forward(bc);
    seed_backward(bc);
    backward();
  }
  check_numeric();
}

void Sta::check_numeric() const {
  if (!opt_.check_numeric) return;
  fault::inject("sta.run");
  // ±Inf is a legitimate "unconstrained" value; NaN is always
  // corruption (a poisoned LUT, a bad derate) and would otherwise leak
  // into labels and macro models silently. Scanning the boundary only
  // keeps this O(ports), negligible next to the propagation itself.
  auto scan = [&](NodeId u) {
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const std::size_t k = idx(u, el, rf);
        if (std::isnan(store_.at[k]) || std::isnan(store_.slew[k]) ||
            std::isnan(store_.rat[k])) {
          g_nan_detected.add();
          throw fault::FlowError(fault::ErrorCode::kNumeric, "sta.run",
                                 "NaN timing value after propagation", {},
                                 graph_->node(u).name);
        }
      }
  };
  for (NodeId u : graph_->primary_inputs()) scan(u);
  for (NodeId u : graph_->primary_outputs()) scan(u);
}

void Sta::forward(const BoundaryConstraints& bc) {
  for (NodeId v : graph_->topo_order()) {
    if (graph_->node(v).dead) continue;
    relax_forward_node(v, bc);
  }
}

void Sta::forward_parallel(const BoundaryConstraints& bc, std::size_t par) {
  // Levels ascend: every fanin of a level-L node lives strictly below
  // L, so all values a relaxation reads are finalized before its level
  // starts. parallel_for is the between-levels barrier.
  util::TaskPool& pool = util::TaskPool::shared();
  for (std::size_t l = 0; l < topo_.num_levels(); ++l) {
    const std::span<const NodeId> nodes = topo_.level(l);
    pool.parallel_for(nodes.size(), kLevelGrain, par,
                      [&](std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i)
                          relax_forward_node(nodes[i], bc,
                                             topo_.fanin(nodes[i]));
                      });
  }
}

void Sta::relax_forward_node(NodeId v, const BoundaryConstraints& bc,
                             std::span<const ArcId> fanin) {
  for (unsigned rf = 0; rf < kNumRf; ++rf) {
    store_.at[idx(v, kLate, rf)] = -kInf;
    store_.at[idx(v, kEarly, rf)] = kInf;
    store_.slew[idx(v, kLate, rf)] = -kInf;
    store_.slew[idx(v, kEarly, rf)] = kInf;
  }
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) preds_[idx(v, el, rf)] = Pred{};
  const GraphNode& node = graph_->node(v);
  if (node.role == NodeRole::kPrimaryInput && node.port_ordinal < bc.pi.size()) {
    const PiConstraint& c = bc.pi[node.port_ordinal];
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        store_.at[idx(v, el, rf)] = c.at(el, rf);
        store_.slew[idx(v, el, rf)] = c.slew(el, rf);
      }
  }
  for (ArcId aid : fanin) {
    const GraphArc& a = graph_->arc(aid);
    const std::size_t ub = a.from * TimingStore::kLanes;
    if (a.kind == GraphArcKind::kWire) {
      for (unsigned el = 0; el < kNumEl; ++el) {
        for (unsigned rf = 0; rf < kNumRf; ++rf) {
          const std::size_t lane = el * kNumRf + rf;
          const double su = store_.slew[ub + lane];
          if (std::isfinite(su)) {
            const double so = wire_slew(su, a.wire_delay_ps);
            if (dominates(el, so, store_.slew[idx(v, el, rf)]))
              store_.slew[idx(v, el, rf)] = so;
          }
          const double atu = store_.at[ub + lane];
          if (std::isfinite(atu)) {
            const double cand = atu + a.wire_delay_ps;
            if (dominates(el, cand, store_.at[idx(v, el, rf)])) {
              store_.at[idx(v, el, rf)] = cand;
              preds_[idx(v, el, rf)] = {aid, static_cast<std::uint8_t>(rf)};
            }
          }
        }
      }
    } else {
      const double load = eff_load_[v];
      for (unsigned el = 0; el < kNumEl; ++el) {
        const double derate =
            a.baked_derate
                ? 1.0
                : opt_.aocv.derate(el, graph_->node(a.from).aocv_depth);
        for (unsigned irf = 0; irf < kNumRf; ++irf) {
          const double su = store_.slew[ub + el * kNumRf + irf];
          if (!std::isfinite(su)) continue;
          const unsigned mask = output_transitions(a.sense, irf);
          for (unsigned orf = 0; orf < kNumRf; ++orf) {
            if (!(mask & (1u << orf))) continue;
            const double d = (*a.delay)(el, orf).lookup(su, load) * derate;
            const double so = (*a.out_slew)(el, orf).lookup(su, load);
            if (dominates(el, so, store_.slew[idx(v, el, orf)]))
              store_.slew[idx(v, el, orf)] = so;
            const double atu = store_.at[ub + el * kNumRf + irf];
            if (std::isfinite(atu)) {
              const double cand = atu + d;
              if (dominates(el, cand, store_.at[idx(v, el, orf)])) {
                store_.at[idx(v, el, orf)] = cand;
                preds_[idx(v, el, orf)] = {aid, static_cast<std::uint8_t>(irf)};
              }
            }
          }
        }
      }
    }
  }
}

NodeId Sta::trace_launch_clock(NodeId data, unsigned el, unsigned rf) const {
  NodeId u = data;
  unsigned crf = rf;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    const Pred p = preds_[idx(u, el, crf)];
    if (p.arc == kInvalidId) return kInvalidId;  // reached a PI seed
    const GraphArc& a = graph_->arc(p.arc);
    if (a.is_launch) return a.from;
    u = a.from;
    crf = p.from_rf;
  }
  return kInvalidId;
}

double Sta::cppr_credit(NodeId launch_ck, NodeId capture_ck) const {
  if (launch_ck == kInvalidId || capture_ck == kInvalidId) return 0.0;
  // Ancestors of the capture clock pin along its (early, rise) worst
  // path up to the clock root (clock networks are trees in practice;
  // the pred chain is exactly the root-to-pin path).
  std::unordered_set<NodeId> capture_chain;
  {
    NodeId u = capture_ck;
    unsigned rf = kRise;
    capture_chain.insert(u);
    for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
      const Pred p = preds_[idx(u, kEarly, rf)];
      if (p.arc == kInvalidId) break;
      u = graph_->arc(p.arc).from;
      rf = p.from_rf;
      capture_chain.insert(u);
    }
  }
  // Walk up from the launch clock pin; the first node also on the
  // capture chain is the branch point (LCA).
  NodeId u = launch_ck;
  unsigned rf = kRise;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    if (capture_chain.count(u)) {
      const double late = store_.at[idx(u, kLate, rf)];
      const double early = store_.at[idx(u, kEarly, rf)];
      if (!std::isfinite(late) || !std::isfinite(early)) return 0.0;
      return std::max(0.0, late - early);
    }
    const Pred p = preds_[idx(u, kLate, rf)];
    if (p.arc == kInvalidId) break;
    u = graph_->arc(p.arc).from;
    rf = p.from_rf;
  }
  return 0.0;
}

void Sta::apply_check_seed(const CheckArc& c, const BoundaryConstraints& bc) {
  const double ck_slew = store_.slew[idx(c.clock, kLate, kRise)];
  const double ck_at_early = store_.at[idx(c.clock, kEarly, kRise)];
  const double ck_at_late = store_.at[idx(c.clock, kLate, kRise)];
  if (!std::isfinite(ck_slew)) return;
  for (unsigned rf = 0; rf < kNumRf; ++rf) {
    if (c.is_setup) {
      const double d_slew = store_.slew[idx(c.data, kLate, rf)];
      if (!std::isfinite(d_slew) || !std::isfinite(ck_at_early)) continue;
      const double guard = (*c.guard)(kLate, rf).lookup(ck_slew, d_slew);
      double credit = 0.0;
      if (opt_.cppr) {
        const NodeId lck = trace_launch_clock(c.data, kLate, rf);
        credit = cppr_credit(lck, c.clock);
      }
      credits_[idx(c.data, kLate, rf)] = credit;
      const double cand = bc.clock_period_ps + ck_at_early - guard + credit;
      if (cand < store_.rat[idx(c.data, kLate, rf)])
        store_.rat[idx(c.data, kLate, rf)] = cand;
      // Capture-side requirement on the clock pin: the capture edge
      // must not arrive so early that the data misses setup. Writes a
      // *clock* pin, which is why clock_rat mode seeds serially.
      if (opt_.clock_rat) {
        const double d_at = store_.at[idx(c.data, kLate, rf)];
        if (std::isfinite(d_at)) {
          const double ck_req = d_at + guard - bc.clock_period_ps - credit;
          if (ck_req > store_.rat[idx(c.clock, kEarly, kRise)])
            store_.rat[idx(c.clock, kEarly, kRise)] = ck_req;
        }
      }
    } else {
      const double d_slew = store_.slew[idx(c.data, kEarly, rf)];
      if (!std::isfinite(d_slew) || !std::isfinite(ck_at_late)) continue;
      const double guard = (*c.guard)(kEarly, rf).lookup(ck_slew, d_slew);
      double credit = 0.0;
      if (opt_.cppr) {
        const NodeId lck = trace_launch_clock(c.data, kEarly, rf);
        credit = cppr_credit(lck, c.clock);
      }
      credits_[idx(c.data, kEarly, rf)] = credit;
      const double cand = ck_at_late + guard - credit;
      if (cand > store_.rat[idx(c.data, kEarly, rf)])
        store_.rat[idx(c.data, kEarly, rf)] = cand;
      if (opt_.clock_rat) {
        const double d_at = store_.at[idx(c.data, kEarly, rf)];
        if (std::isfinite(d_at)) {
          const double ck_req = d_at - guard + credit;
          if (ck_req < store_.rat[idx(c.clock, kLate, kRise)])
            store_.rat[idx(c.clock, kLate, kRise)] = ck_req;
        }
      }
    }
  }
}

void Sta::seed_backward(const BoundaryConstraints& bc) {
  const auto& pos = graph_->primary_outputs();
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    if (pos[i] == kInvalidId || i >= bc.po.size()) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      store_.rat[idx(pos[i], kLate, rf)] = bc.po[i].rat(kLate, rf);
      store_.rat[idx(pos[i], kEarly, rf)] = bc.po[i].rat(kEarly, rf);
    }
  }

  for (const CheckArc& c : graph_->checks()) {
    if (c.dead) continue;
    apply_check_seed(c, bc);
  }
}

void Sta::seed_backward_parallel(const BoundaryConstraints& bc,
                                 std::size_t par) {
  const auto& pos = graph_->primary_outputs();
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    if (pos[i] == kInvalidId || i >= bc.po.size()) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      store_.rat[idx(pos[i], kLate, rf)] = bc.po[i].rat(kLate, rf);
      store_.rat[idx(pos[i], kEarly, rf)] = bc.po[i].rat(kEarly, rf);
    }
  }

  if (opt_.clock_rat) {
    // Capture-side clock requirements write clock pins shared across
    // checks — keep the serial check-id order.
    for (const CheckArc& c : graph_->checks()) {
      if (c.dead) continue;
      apply_check_seed(c, bc);
    }
    return;
  }
  // One task per data pin: a pin's checks are applied by one thread in
  // ascending check-id order (the serial order restricted to that pin),
  // and a check writes only its data pin's rat/credit lanes — so the
  // per-pin update sequences, and therefore the results, match the
  // serial pass exactly. Reads (clock slew/at, pred chains) are
  // finalized forward-pass state.
  util::TaskPool::shared().parallel_for(
      topo_.check_pins.size(), kCheckGrain, par,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          for (std::uint32_t cid : topo_.checks_of_pin(i))
            apply_check_seed(graph_->check(cid), bc);
      });
}

void Sta::relax_backward_arcs(NodeId u, std::span<const ArcId> fanout) {
  for (ArcId aid : fanout) {
    const GraphArc& a = graph_->arc(aid);
    if (a.kind == GraphArcKind::kWire) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const double rl = store_.rat[idx(a.to, kLate, rf)];
        if (std::isfinite(rl) &&
            rl - a.wire_delay_ps < store_.rat[idx(u, kLate, rf)])
          store_.rat[idx(u, kLate, rf)] = rl - a.wire_delay_ps;
        const double re = store_.rat[idx(a.to, kEarly, rf)];
        if (std::isfinite(re) &&
            re - a.wire_delay_ps > store_.rat[idx(u, kEarly, rf)])
          store_.rat[idx(u, kEarly, rf)] = re - a.wire_delay_ps;
      }
    } else {
      const double load = eff_load_[a.to];
      for (unsigned el = 0; el < kNumEl; ++el) {
        const double derate =
            a.baked_derate
                ? 1.0
                : opt_.aocv.derate(el, graph_->node(a.from).aocv_depth);
        for (unsigned irf = 0; irf < kNumRf; ++irf) {
          const double su = store_.slew[idx(u, el, irf)];
          if (!std::isfinite(su)) continue;
          const unsigned mask = output_transitions(a.sense, irf);
          for (unsigned orf = 0; orf < kNumRf; ++orf) {
            if (!(mask & (1u << orf))) continue;
            const double rv = store_.rat[idx(a.to, el, orf)];
            if (!std::isfinite(rv)) continue;
            const double d = (*a.delay)(el, orf).lookup(su, load) * derate;
            const double cand = rv - d;
            if (el == kLate) {
              if (cand < store_.rat[idx(u, kLate, irf)])
                store_.rat[idx(u, kLate, irf)] = cand;
            } else {
              if (cand > store_.rat[idx(u, kEarly, irf)])
                store_.rat[idx(u, kEarly, irf)] = cand;
            }
          }
        }
      }
    }
  }
}

void Sta::backward() {
  const auto& order = graph_->topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (graph_->node(u).dead) continue;
    if (!opt_.clock_rat && graph_->node(u).in_clock_network) continue;
    relax_backward_arcs(u);
  }
}

void Sta::backward_parallel(std::size_t par) {
  // Levels descend: a node's fanout targets live in strictly higher
  // levels, already finalized. relax_backward_arcs writes only u's own
  // rat lanes, so nodes within a level are independent.
  util::TaskPool& pool = util::TaskPool::shared();
  for (std::size_t l = topo_.num_levels(); l-- > 0;) {
    const std::span<const NodeId> nodes = topo_.level(l);
    pool.parallel_for(nodes.size(), kLevelGrain, par,
                      [&](std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) {
                          const NodeId u = nodes[i];
                          if (!opt_.clock_rat &&
                              graph_->node(u).in_clock_network)
                            continue;
                          relax_backward_arcs(u, topo_.fanout(u));
                        }
                      });
  }
}

void Sta::relax_backward_node(NodeId u, const BoundaryConstraints& bc) {
  for (unsigned rf = 0; rf < kNumRf; ++rf) {
    store_.rat[idx(u, kLate, rf)] = kInf;
    store_.rat[idx(u, kEarly, rf)] = -kInf;
  }
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) credits_[idx(u, el, rf)] = 0.0;
  const GraphNode& node = graph_->node(u);
  if (node.role == NodeRole::kPrimaryOutput && node.port_ordinal < bc.po.size()) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      store_.rat[idx(u, kLate, rf)] = bc.po[node.port_ordinal].rat(kLate, rf);
      store_.rat[idx(u, kEarly, rf)] = bc.po[node.port_ordinal].rat(kEarly, rf);
    }
  }
  for (std::uint32_t cid : graph_->checks_of(u))
    apply_check_seed(graph_->check(cid), bc);
  relax_backward_arcs(u);
}

void Sta::set_reference() {
  if (store_.num_nodes() != graph_->num_nodes())
    throw std::logic_error("Sta::set_reference: call run() first");
  ref_store_ = store_;
  ref_preds_ = preds_;
  ref_credits_ = credits_;
  const std::size_t n = graph_->num_nodes();
  topo_pos_.assign(n, 0);
  const auto& order = graph_->topo_order();
  for (std::size_t i = 0; i < order.size(); ++i)
    topo_pos_[order[i]] = static_cast<std::uint32_t>(i);
  is_modified_.assign(n, 0);
  is_changed_.assign(n, 0);
  value_changed_.assign(n, 0);
  fwd_stamp_.assign(n, 0);
  bwd_stamp_.assign(n, 0);
  incr_gen_ = 0;
  modified_.clear();
  changed_.clear();
  has_reference_ = true;
}

void Sta::mark_modified(NodeId v) {
  if (!is_modified_[v]) {
    is_modified_[v] = 1;
    modified_.push_back(v);
  }
}

void Sta::mark_changed(NodeId v) {
  if (!is_changed_[v]) {
    is_changed_[v] = 1;
    changed_.push_back(v);
  }
}

void Sta::restore_reference() {
  constexpr std::size_t stride = TimingStore::kLanes;
  for (NodeId v : modified_) {
    const std::size_t base = static_cast<std::size_t>(v) * stride;
    for (std::size_t k = base; k < base + stride; ++k) {
      store_.slew[k] = ref_store_.slew[k];
      store_.at[k] = ref_store_.at[k];
      store_.rat[k] = ref_store_.rat[k];
      preds_[k] = ref_preds_[k];
      credits_[k] = ref_credits_[k];
    }
    is_modified_[v] = 0;
  }
  modified_.clear();
  for (NodeId v : changed_) {
    is_changed_[v] = 0;
    value_changed_[v] = 0;
  }
  changed_.clear();
}

bool Sta::clock_chain_dirty(NodeId ck, unsigned el) const {
  if (ck == kInvalidId) return false;
  NodeId u = ck;
  unsigned rf = kRise;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    if (is_changed_[u]) return true;
    const Pred p = preds_[idx(u, el, rf)];
    if (p.arc == kInvalidId) break;
    u = graph_->arc(p.arc).from;
    rf = p.from_rf;
  }
  return false;
}

bool Sta::check_dirty(const CheckArc& c) const {
  if (is_changed_[c.data] || is_changed_[c.clock]) return true;
  if (!opt_.cppr) return false;
  // The CPPR credit reads the data pin's worst launch chain, the launch
  // clock's (late, rise) chain and the capture clock's (early, rise)
  // chain. If chains diverged from the reference, the first divergence
  // is a pred change on the current chain's common prefix, so walking
  // the current chains and testing F' membership is exact.
  const unsigned el = c.is_setup ? kLate : kEarly;
  for (unsigned rf = 0; rf < kNumRf; ++rf) {
    NodeId u = c.data;
    unsigned crf = rf;
    NodeId launch = kInvalidId;
    for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
      if (is_changed_[u]) return true;
      const Pred p = preds_[idx(u, el, crf)];
      if (p.arc == kInvalidId) break;
      const GraphArc& a = graph_->arc(p.arc);
      if (a.is_launch) {
        launch = a.from;
        break;
      }
      u = a.from;
      crf = p.from_rf;
    }
    if (clock_chain_dirty(launch, kLate)) return true;
  }
  return clock_chain_dirty(c.clock, kEarly);
}

StaIncrementalStats Sta::run_incremental(const BoundaryConstraints& bc,
                                         std::span<const NodeId> dirty) {
  if (!has_reference_)
    throw std::logic_error("Sta::run_incremental: no reference set");
  if (opt_.clock_rat)
    throw std::logic_error("Sta::run_incremental: clock_rat not supported");
  obs::Span span("sta.run_incremental");
  g_incremental_runs.add();
  StaIncrementalStats stats;
  stats.seeds = dirty.size();
  restore_reference();
  ++incr_gen_;

  constexpr std::size_t stride = TimingStore::kLanes;
  using Entry = std::pair<std::uint32_t, NodeId>;

  // --- forward: min-heap over cached topo positions. Pops are non-
  // decreasing (pushes go strictly downstream), so each node is
  // recomputed at most once, after all its fanins settled.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> fwd;
  auto fwd_push = [&](NodeId v) {
    if (graph_->node(v).dead) return;
    if (fwd_stamp_[v] == incr_gen_) return;
    fwd_stamp_[v] = incr_gen_;
    fwd.push({topo_pos_[v], v});
  };
  for (NodeId v : dirty) fwd_push(v);
  while (!fwd.empty()) {
    const NodeId v = fwd.top().second;
    fwd.pop();
    ++stats.fwd_recomputed;
    mark_modified(v);
    std::array<double, stride> old_at;
    std::array<double, stride> old_slew;
    std::array<Pred, stride> old_preds;
    for (std::size_t k = 0; k < stride; ++k) {
      old_at[k] = store_.at[v * stride + k];
      old_slew[k] = store_.slew[v * stride + k];
      old_preds[k] = preds_[v * stride + k];
    }
    relax_forward_node(v, bc);
    bool value_diff = false;
    bool pred_diff = false;
    for (std::size_t k = 0; k < stride; ++k) {
      if (store_.at[v * stride + k] != old_at[k] ||
          store_.slew[v * stride + k] != old_slew[k])
        value_diff = true;
      const Pred& np = preds_[v * stride + k];
      const Pred& op = old_preds[k];
      if (np.arc != op.arc || np.from_rf != op.from_rf) pred_diff = true;
    }
    if (value_diff) {
      value_changed_[v] = 1;
      ++stats.fwd_changed;
      for (ArcId aid : graph_->fanout(v)) fwd_push(graph_->arc(aid).to);
    }
    if (value_diff || pred_diff) mark_changed(v);
  }

  // --- backward: seeds are nodes with changed arc sets (the delta),
  // nodes whose own slew feeds backward delay lookups (value-changed),
  // and data pins of checks whose seed inputs changed.
  std::priority_queue<Entry> bwd;  // max-heap: highest topo position first
  auto bwd_push = [&](NodeId u) {
    if (graph_->node(u).dead) return;
    if (!opt_.clock_rat && graph_->node(u).in_clock_network) return;
    if (bwd_stamp_[u] == incr_gen_) return;
    bwd_stamp_[u] = incr_gen_;
    bwd.push({topo_pos_[u], u});
  };
  for (NodeId u : dirty) bwd_push(u);
  for (NodeId u : changed_)
    if (value_changed_[u]) bwd_push(u);
  if (!changed_.empty()) {
    for (const CheckArc& c : graph_->checks()) {
      if (c.dead) continue;
      if (check_dirty(c)) {
        ++stats.checks_dirty;
        bwd_push(c.data);
      }
    }
  }
  while (!bwd.empty()) {
    const NodeId u = bwd.top().second;
    bwd.pop();
    ++stats.bwd_recomputed;
    mark_modified(u);
    std::array<double, stride> old_rat;
    for (std::size_t k = 0; k < stride; ++k)
      old_rat[k] = store_.rat[u * stride + k];
    relax_backward_node(u, bc);
    bool rat_diff = false;
    for (std::size_t k = 0; k < stride; ++k)
      if (store_.rat[u * stride + k] != old_rat[k]) rat_diff = true;
    if (rat_diff) {
      ++stats.bwd_changed;
      for (ArcId aid : graph_->fanin(u)) bwd_push(graph_->arc(aid).from);
    }
  }

  g_nodes_propagated.add(stats.fwd_recomputed + stats.bwd_recomputed);
  span.set_arg("seeds", static_cast<double>(stats.seeds));
  span.set_arg("frontier",
               static_cast<double>(stats.fwd_recomputed + stats.bwd_recomputed));
  check_numeric();
  return stats;
}

double Sta::slack(NodeId n, unsigned el, unsigned rf) const {
  const double at = store_.at.at(idx(n, el, rf));
  const double rat = store_.rat[idx(n, el, rf)];
  if (!std::isfinite(at) || !std::isfinite(rat)) return kInf;
  return el == kLate ? rat - at : at - rat;
}

double Sta::worst_slack(unsigned el, bool include_pos) const {
  double worst = kInf;
  for (const auto& c : graph_->checks()) {
    if (c.dead) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      worst = std::min(worst, slack(c.data, el, rf));
  }
  if (include_pos) {
    for (NodeId po : graph_->primary_outputs()) {
      if (po == kInvalidId) continue;
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        worst = std::min(worst, slack(po, el, rf));
    }
  }
  return worst;
}

double Sta::endpoint_credit(NodeId data, unsigned el, unsigned rf) const {
  return credits_.at(idx(data, el, rf));
}

std::vector<Sta::PathStep> Sta::worst_path(NodeId endpoint, unsigned el,
                                           unsigned rf) const {
  std::vector<PathStep> path;
  if (!std::isfinite(store_.at.at(idx(endpoint, el, rf)))) return path;
  NodeId u = endpoint;
  unsigned crf = rf;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    const Pred p = preds_[idx(u, el, crf)];
    path.push_back({u, p.arc, crf, store_.at[idx(u, el, crf)]});
    if (p.arc == kInvalidId) break;
    u = graph_->arc(p.arc).from;
    crf = p.from_rf;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

NodeId Sta::worst_endpoint(unsigned el, unsigned* rf_out) const {
  NodeId worst = kInvalidId;
  unsigned worst_rf = kRise;
  double worst_slack = kInf;
  for (const auto& c : graph_->checks()) {
    if (c.dead) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      const double s = slack(c.data, el, rf);
      if (s < worst_slack) {
        worst_slack = s;
        worst = c.data;
        worst_rf = rf;
      }
    }
  }
  if (rf_out) *rf_out = worst_rf;
  return worst;
}

void Sta::snapshot_into(BoundarySnapshot& out) const {
  const std::size_t stride = TimingStore::kLanes;
  const auto& pis = graph_->primary_inputs();
  const auto& pos = graph_->primary_outputs();
  out.num_ports = pis.size() + pos.size();
  out.slew.assign(out.num_ports * stride, kInf);
  out.at.assign(out.num_ports * stride, kInf);
  out.rat.assign(out.num_ports * stride, kInf);
  out.slack.assign(out.num_ports * stride, kInf);
  auto fill = [&](std::size_t i, NodeId p) {
    if (p == kInvalidId) return;
    const std::size_t base = static_cast<std::size_t>(p) * stride;
    for (std::size_t lane = 0; lane < stride; ++lane) {
      const std::size_t k = i * stride + lane;
      out.slew[k] = store_.slew[base + lane];
      out.at[k] = store_.at[base + lane];
      out.rat[k] = store_.rat[base + lane];
      out.slack[k] = slack(p, static_cast<unsigned>(lane / kNumRf),
                           static_cast<unsigned>(lane % kNumRf));
    }
  };
  std::size_t i = 0;
  for (NodeId p : pis) fill(i++, p);
  for (NodeId p : pos) fill(i++, p);
}

BoundarySnapshot Sta::boundary_snapshot() const {
  BoundarySnapshot snap;
  snapshot_into(snap);
  return snap;
}

std::vector<double> propagate_slew_only(const TimingGraph& graph,
                                        double pi_slew_ps, double po_load_ff) {
  obs::Span span("sta.slew_only");
  g_slew_only_runs.add();
  const std::size_t n = graph.num_nodes();
  // Work in the late corner over both transitions; report the max.
  std::vector<double> slew(n * kNumRf, -kInf);
  for (NodeId p : graph.primary_inputs()) {
    if (p == kInvalidId) continue;
    slew[p * kNumRf + kRise] = pi_slew_ps;
    slew[p * kNumRf + kFall] = pi_slew_ps;
  }
  for (NodeId u : graph.topo_order()) {
    for (ArcId aid : graph.fanout(u)) {
      const GraphArc& a = graph.arc(aid);
      if (a.kind == GraphArcKind::kWire) {
        for (unsigned rf = 0; rf < kNumRf; ++rf) {
          const double su = slew[u * kNumRf + rf];
          if (!std::isfinite(su)) continue;
          const double so = wire_slew(su, a.wire_delay_ps);
          auto& tv = slew[a.to * kNumRf + rf];
          if (so > tv) tv = so;
        }
      } else {
        double load = graph.node(a.to).static_load_ff;
        if (!graph.node(a.to).attached_po_loads.empty())
          load += po_load_ff *
                  static_cast<double>(graph.node(a.to).attached_po_loads.size());
        for (unsigned irf = 0; irf < kNumRf; ++irf) {
          const double su = slew[u * kNumRf + irf];
          if (!std::isfinite(su)) continue;
          const unsigned mask = output_transitions(a.sense, irf);
          for (unsigned orf = 0; orf < kNumRf; ++orf) {
            if (!(mask & (1u << orf))) continue;
            const double so = (*a.out_slew)(kLate, orf).lookup(su, load);
            auto& tv = slew[a.to * kNumRf + orf];
            if (so > tv) tv = so;
          }
        }
      }
    }
  }
  std::vector<double> out(n, -kInf);
  for (NodeId u = 0; u < n; ++u)
    out[u] = std::max(slew[u * kNumRf + kRise], slew[u * kNumRf + kFall]);
  return out;
}

}  // namespace tmm
