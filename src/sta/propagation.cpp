#include "sta/propagation.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm {

namespace {

constexpr std::size_t idx(NodeId n, unsigned el, unsigned rf) {
  return static_cast<std::size_t>(n) * (static_cast<std::size_t>(kNumEl) *
                                      kNumRf) +
         el * kNumRf + rf;
}

/// True if `cand` is worse (dominates) than `cur` in the el corner:
/// late keeps maxima, early keeps minima.
constexpr bool dominates(unsigned el, double cand, double cur) {
  return el == kLate ? cand > cur : cand < cur;
}

}  // namespace

SnapshotDiff diff_snapshots(const BoundarySnapshot& a,
                            const BoundarySnapshot& b) {
  SnapshotDiff out;
  double sum_abs = 0.0;
  double sum_rel = 0.0;
  auto scan = [&](const std::vector<double>& x, const std::vector<double>& y) {
    const std::size_t n = std::min(x.size(), y.size());
    for (std::size_t i = 0; i < n; ++i) {
      const bool fx = std::isfinite(x[i]);
      const bool fy = std::isfinite(y[i]);
      if (fx != fy) {
        ++out.mismatched;
        continue;
      }
      if (!fx) continue;  // both unconstrained/unreached: equal by convention
      const double d = std::fabs(x[i] - y[i]);
      out.max_abs = std::max(out.max_abs, d);
      sum_abs += d;
      sum_rel += d / std::max(std::fabs(y[i]), 1e-6);
      ++out.compared;
    }
    if (x.size() != y.size()) out.mismatched += std::max(x.size(), y.size()) - n;
  };
  scan(a.slew, b.slew);
  scan(a.at, b.at);
  scan(a.rat, b.rat);
  scan(a.slack, b.slack);
  if (out.compared > 0) {
    out.avg_abs = sum_abs / static_cast<double>(out.compared);
    out.avg_rel = sum_rel / static_cast<double>(out.compared);
  }
  return out;
}

Sta::Sta(const TimingGraph& graph, Options opt) : graph_(&graph), opt_(opt) {}

void Sta::run(const BoundaryConstraints& bc) {
  obs::Span span("sta.run");
  static obs::Counter& runs = obs::counter("sta.runs");
  static obs::Counter& nodes = obs::counter("sta.nodes_propagated");
  runs.add();
  nodes.add(graph_->num_live_nodes());
  const std::size_t n = graph_->num_nodes();
  values_.assign(n, PinTiming{});
  preds_.assign(n * kNumEl * kNumRf, Pred{});
  credits_.assign(n * kNumEl * kNumRf, 0.0);
  eff_load_.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto& node = graph_->node(u);
    if (node.dead) continue;
    double load = node.static_load_ff;
    for (std::uint32_t po : node.attached_po_loads)
      if (po < bc.po.size()) load += bc.po[po].load_ff;
    eff_load_[u] = load;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      values_[u].at(kLate, rf) = -kInf;
      values_[u].at(kEarly, rf) = kInf;
      values_[u].slew(kLate, rf) = -kInf;
      values_[u].slew(kEarly, rf) = kInf;
      values_[u].rat(kLate, rf) = kInf;
      values_[u].rat(kEarly, rf) = -kInf;
    }
  }
  seed_forward(bc);
  forward();
  seed_backward(bc);
  backward();
}

void Sta::seed_forward(const BoundaryConstraints& bc) {
  const auto& pis = graph_->primary_inputs();
  for (std::uint32_t i = 0; i < pis.size(); ++i) {
    if (pis[i] == kInvalidId || i >= bc.pi.size()) continue;
    auto& t = values_[pis[i]];
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        t.at(el, rf) = bc.pi[i].at(el, rf);
        t.slew(el, rf) = bc.pi[i].slew(el, rf);
      }
  }
}

void Sta::forward() {
  for (NodeId u : graph_->topo_order()) {
    const PinTiming tu = values_[u];  // copy: u is final here
    for (ArcId aid : graph_->fanout(u)) {
      const GraphArc& a = graph_->arc(aid);
      PinTiming& tv = values_[a.to];
      if (a.kind == GraphArcKind::kWire) {
        for (unsigned el = 0; el < kNumEl; ++el) {
          for (unsigned rf = 0; rf < kNumRf; ++rf) {
            const double su = tu.slew(el, rf);
            if (std::isfinite(su)) {
              const double so = wire_slew(su, a.wire_delay_ps);
              if (dominates(el, so, tv.slew(el, rf))) tv.slew(el, rf) = so;
            }
            const double atu = tu.at(el, rf);
            if (std::isfinite(atu)) {
              const double cand = atu + a.wire_delay_ps;
              if (dominates(el, cand, tv.at(el, rf))) {
                tv.at(el, rf) = cand;
                preds_[idx(a.to, el, rf)] = {aid, static_cast<std::uint8_t>(rf)};
              }
            }
          }
        }
      } else {
        const double load = eff_load_[a.to];
        for (unsigned el = 0; el < kNumEl; ++el) {
          const double derate =
              a.baked_derate
                  ? 1.0
                  : opt_.aocv.derate(el, graph_->node(a.from).aocv_depth);
          for (unsigned irf = 0; irf < kNumRf; ++irf) {
            const double su = tu.slew(el, irf);
            if (!std::isfinite(su)) continue;
            const unsigned mask = output_transitions(a.sense, irf);
            for (unsigned orf = 0; orf < kNumRf; ++orf) {
              if (!(mask & (1u << orf))) continue;
              const double d =
                  (*a.delay)(el, orf).lookup(su, load) * derate;
              const double so = (*a.out_slew)(el, orf).lookup(su, load);
              if (dominates(el, so, tv.slew(el, orf))) tv.slew(el, orf) = so;
              const double atu = tu.at(el, irf);
              if (std::isfinite(atu)) {
                const double cand = atu + d;
                if (dominates(el, cand, tv.at(el, orf))) {
                  tv.at(el, orf) = cand;
                  preds_[idx(a.to, el, orf)] = {aid,
                                                static_cast<std::uint8_t>(irf)};
                }
              }
            }
          }
        }
      }
    }
  }
}

NodeId Sta::trace_launch_clock(NodeId data, unsigned el, unsigned rf) const {
  NodeId u = data;
  unsigned crf = rf;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    const Pred p = preds_[idx(u, el, crf)];
    if (p.arc == kInvalidId) return kInvalidId;  // reached a PI seed
    const GraphArc& a = graph_->arc(p.arc);
    if (a.is_launch) return a.from;
    u = a.from;
    crf = p.from_rf;
  }
  return kInvalidId;
}

double Sta::cppr_credit(NodeId launch_ck, NodeId capture_ck) const {
  if (launch_ck == kInvalidId || capture_ck == kInvalidId) return 0.0;
  // Ancestors of the capture clock pin along its (early, rise) worst
  // path up to the clock root (clock networks are trees in practice;
  // the pred chain is exactly the root-to-pin path).
  std::unordered_set<NodeId> capture_chain;
  {
    NodeId u = capture_ck;
    unsigned rf = kRise;
    capture_chain.insert(u);
    for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
      const Pred p = preds_[idx(u, kEarly, rf)];
      if (p.arc == kInvalidId) break;
      u = graph_->arc(p.arc).from;
      rf = p.from_rf;
      capture_chain.insert(u);
    }
  }
  // Walk up from the launch clock pin; the first node also on the
  // capture chain is the branch point (LCA).
  NodeId u = launch_ck;
  unsigned rf = kRise;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    if (capture_chain.count(u)) {
      const double late = values_[u].at(kLate, rf);
      const double early = values_[u].at(kEarly, rf);
      if (!std::isfinite(late) || !std::isfinite(early)) return 0.0;
      return std::max(0.0, late - early);
    }
    const Pred p = preds_[idx(u, kLate, rf)];
    if (p.arc == kInvalidId) break;
    u = graph_->arc(p.arc).from;
    rf = p.from_rf;
  }
  return 0.0;
}

void Sta::seed_backward(const BoundaryConstraints& bc) {
  const auto& pos = graph_->primary_outputs();
  for (std::uint32_t i = 0; i < pos.size(); ++i) {
    if (pos[i] == kInvalidId || i >= bc.po.size()) continue;
    auto& t = values_[pos[i]];
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      t.rat(kLate, rf) = bc.po[i].rat(kLate, rf);
      t.rat(kEarly, rf) = bc.po[i].rat(kEarly, rf);
    }
  }

  for (const CheckArc& c : graph_->checks()) {
    if (c.dead) continue;
    PinTiming& td = values_[c.data];
    PinTiming& tc = values_[c.clock];
    const double ck_slew = tc.slew(kLate, kRise);
    const double ck_at_early = tc.at(kEarly, kRise);
    const double ck_at_late = tc.at(kLate, kRise);
    if (!std::isfinite(ck_slew)) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      if (c.is_setup) {
        const double d_slew = td.slew(kLate, rf);
        if (!std::isfinite(d_slew) || !std::isfinite(ck_at_early)) continue;
        const double guard = (*c.guard)(kLate, rf).lookup(ck_slew, d_slew);
        double credit = 0.0;
        if (opt_.cppr) {
          const NodeId lck = trace_launch_clock(c.data, kLate, rf);
          credit = cppr_credit(lck, c.clock);
        }
        credits_[idx(c.data, kLate, rf)] = credit;
        const double cand =
            bc.clock_period_ps + ck_at_early - guard + credit;
        if (cand < td.rat(kLate, rf)) td.rat(kLate, rf) = cand;
        // Capture-side requirement on the clock pin: the capture edge
        // must not arrive so early that the data misses setup.
        if (opt_.clock_rat) {
          const double d_at = td.at(kLate, rf);
          if (std::isfinite(d_at)) {
            const double ck_req = d_at + guard - bc.clock_period_ps - credit;
            if (ck_req > tc.rat(kEarly, kRise)) tc.rat(kEarly, kRise) = ck_req;
          }
        }
      } else {
        const double d_slew = td.slew(kEarly, rf);
        if (!std::isfinite(d_slew) || !std::isfinite(ck_at_late)) continue;
        const double guard = (*c.guard)(kEarly, rf).lookup(ck_slew, d_slew);
        double credit = 0.0;
        if (opt_.cppr) {
          const NodeId lck = trace_launch_clock(c.data, kEarly, rf);
          credit = cppr_credit(lck, c.clock);
        }
        credits_[idx(c.data, kEarly, rf)] = credit;
        const double cand = ck_at_late + guard - credit;
        if (cand > td.rat(kEarly, rf)) td.rat(kEarly, rf) = cand;
        if (opt_.clock_rat) {
          const double d_at = td.at(kEarly, rf);
          if (std::isfinite(d_at)) {
            const double ck_req = d_at - guard + credit;
            if (ck_req < tc.rat(kLate, kRise)) tc.rat(kLate, kRise) = ck_req;
          }
        }
      }
    }
  }
}

void Sta::backward() {
  const auto& order = graph_->topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (!opt_.clock_rat && graph_->node(u).in_clock_network) continue;
    PinTiming& tu = values_[u];
    for (ArcId aid : graph_->fanout(u)) {
      const GraphArc& a = graph_->arc(aid);
      const PinTiming& tv = values_[a.to];
      if (a.kind == GraphArcKind::kWire) {
        for (unsigned rf = 0; rf < kNumRf; ++rf) {
          const double rl = tv.rat(kLate, rf);
          if (std::isfinite(rl) && rl - a.wire_delay_ps < tu.rat(kLate, rf))
            tu.rat(kLate, rf) = rl - a.wire_delay_ps;
          const double re = tv.rat(kEarly, rf);
          if (std::isfinite(re) && re - a.wire_delay_ps > tu.rat(kEarly, rf))
            tu.rat(kEarly, rf) = re - a.wire_delay_ps;
        }
      } else {
        const double load = eff_load_[a.to];
        for (unsigned el = 0; el < kNumEl; ++el) {
          const double derate =
              a.baked_derate
                  ? 1.0
                  : opt_.aocv.derate(el, graph_->node(a.from).aocv_depth);
          for (unsigned irf = 0; irf < kNumRf; ++irf) {
            const double su = tu.slew(el, irf);
            if (!std::isfinite(su)) continue;
            const unsigned mask = output_transitions(a.sense, irf);
            for (unsigned orf = 0; orf < kNumRf; ++orf) {
              if (!(mask & (1u << orf))) continue;
              const double rv = tv.rat(el, orf);
              if (!std::isfinite(rv)) continue;
              const double d =
                  (*a.delay)(el, orf).lookup(su, load) * derate;
              const double cand = rv - d;
              if (el == kLate) {
                if (cand < tu.rat(kLate, irf)) tu.rat(kLate, irf) = cand;
              } else {
                if (cand > tu.rat(kEarly, irf)) tu.rat(kEarly, irf) = cand;
              }
            }
          }
        }
      }
    }
  }
}

double Sta::slack(NodeId n, unsigned el, unsigned rf) const {
  const auto& t = values_.at(n);
  const double at = t.at(el, rf);
  const double rat = t.rat(el, rf);
  if (!std::isfinite(at) || !std::isfinite(rat)) return kInf;
  return el == kLate ? rat - at : at - rat;
}

double Sta::worst_slack(unsigned el, bool include_pos) const {
  double worst = kInf;
  for (const auto& c : graph_->checks()) {
    if (c.dead) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      worst = std::min(worst, slack(c.data, el, rf));
  }
  if (include_pos) {
    for (NodeId po : graph_->primary_outputs()) {
      if (po == kInvalidId) continue;
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        worst = std::min(worst, slack(po, el, rf));
    }
  }
  return worst;
}

double Sta::endpoint_credit(NodeId data, unsigned el, unsigned rf) const {
  return credits_.at(idx(data, el, rf));
}

std::vector<Sta::PathStep> Sta::worst_path(NodeId endpoint, unsigned el,
                                           unsigned rf) const {
  std::vector<PathStep> path;
  if (!std::isfinite(values_.at(endpoint).at(el, rf))) return path;
  NodeId u = endpoint;
  unsigned crf = rf;
  for (std::size_t steps = 0; steps <= graph_->num_nodes(); ++steps) {
    const Pred p = preds_[idx(u, el, crf)];
    path.push_back({u, p.arc, crf, values_[u].at(el, crf)});
    if (p.arc == kInvalidId) break;
    u = graph_->arc(p.arc).from;
    crf = p.from_rf;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

NodeId Sta::worst_endpoint(unsigned el, unsigned* rf_out) const {
  NodeId worst = kInvalidId;
  unsigned worst_rf = kRise;
  double worst_slack = kInf;
  for (const auto& c : graph_->checks()) {
    if (c.dead) continue;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      const double s = slack(c.data, el, rf);
      if (s < worst_slack) {
        worst_slack = s;
        worst = c.data;
        worst_rf = rf;
      }
    }
  }
  if (rf_out) *rf_out = worst_rf;
  return worst;
}

BoundarySnapshot Sta::boundary_snapshot() const {
  BoundarySnapshot snap;
  std::vector<NodeId> ports;
  for (NodeId p : graph_->primary_inputs()) ports.push_back(p);
  for (NodeId p : graph_->primary_outputs()) ports.push_back(p);
  snap.num_ports = ports.size();
  const std::size_t stride = static_cast<std::size_t>(kNumEl) * kNumRf;
  snap.slew.assign(snap.num_ports * stride, kInf);
  snap.at.assign(snap.num_ports * stride, kInf);
  snap.rat.assign(snap.num_ports * stride, kInf);
  snap.slack.assign(snap.num_ports * stride, kInf);
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const NodeId p = ports[i];
    if (p == kInvalidId) continue;
    const auto& t = values_[p];
    for (unsigned el = 0; el < kNumEl; ++el) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const std::size_t k = i * stride + el * kNumRf + rf;
        snap.slew[k] = t.slew(el, rf);
        snap.at[k] = t.at(el, rf);
        snap.rat[k] = t.rat(el, rf);
        snap.slack[k] = slack(p, el, rf);
      }
    }
  }
  return snap;
}

std::vector<double> propagate_slew_only(const TimingGraph& graph,
                                        double pi_slew_ps, double po_load_ff) {
  obs::Span span("sta.slew_only");
  static obs::Counter& runs = obs::counter("sta.slew_only_runs");
  runs.add();
  const std::size_t n = graph.num_nodes();
  // Work in the late corner over both transitions; report the max.
  std::vector<double> slew(n * kNumRf, -kInf);
  for (NodeId p : graph.primary_inputs()) {
    if (p == kInvalidId) continue;
    slew[p * kNumRf + kRise] = pi_slew_ps;
    slew[p * kNumRf + kFall] = pi_slew_ps;
  }
  for (NodeId u : graph.topo_order()) {
    for (ArcId aid : graph.fanout(u)) {
      const GraphArc& a = graph.arc(aid);
      if (a.kind == GraphArcKind::kWire) {
        for (unsigned rf = 0; rf < kNumRf; ++rf) {
          const double su = slew[u * kNumRf + rf];
          if (!std::isfinite(su)) continue;
          const double so = wire_slew(su, a.wire_delay_ps);
          auto& tv = slew[a.to * kNumRf + rf];
          if (so > tv) tv = so;
        }
      } else {
        double load = graph.node(a.to).static_load_ff;
        if (!graph.node(a.to).attached_po_loads.empty())
          load += po_load_ff *
                  static_cast<double>(graph.node(a.to).attached_po_loads.size());
        for (unsigned irf = 0; irf < kNumRf; ++irf) {
          const double su = slew[u * kNumRf + irf];
          if (!std::isfinite(su)) continue;
          const unsigned mask = output_transitions(a.sense, irf);
          for (unsigned orf = 0; orf < kNumRf; ++orf) {
            if (!(mask & (1u << orf))) continue;
            const double so = (*a.out_slew)(kLate, orf).lookup(su, load);
            auto& tv = slew[a.to * kNumRf + orf];
            if (so > tv) tv = so;
          }
        }
      }
    }
  }
  std::vector<double> out(n, -kInf);
  for (NodeId u = 0; u < n; ++u)
    out[u] = std::max(slew[u * kNumRf + kRise], slew[u * kNumRf + kFall]);
  return out;
}

}  // namespace tmm
