#include "sta/topology.hpp"

#include <algorithm>

namespace tmm {

StaTopology StaTopology::build(const TimingGraph& g) {
  StaTopology t;
  t.graph_version = g.structure_version();
  const std::size_t n = g.num_nodes();
  t.num_nodes = n;

  // Materializes the graph's adjacency + topological order once, up
  // front, so nothing in the parallel passes ever triggers a lazy
  // (mutable, unsynchronized) cache rebuild.
  const std::vector<NodeId>& topo = g.topo_order();

  // CSR adjacency: count, prefix-sum, fill. Iterating arcs in id order
  // appends each node's arcs in ascending id — the same order
  // TimingGraph::rebuild_adjacency produces.
  t.fanin_offsets.assign(n + 1, 0);
  t.fanout_offsets.assign(n + 1, 0);
  const std::size_t num_arcs = g.num_arcs();
  for (ArcId a = 0; a < num_arcs; ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead) continue;
    ++t.fanin_offsets[arc.to + 1];
    ++t.fanout_offsets[arc.from + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    t.fanin_offsets[i + 1] += t.fanin_offsets[i];
    t.fanout_offsets[i + 1] += t.fanout_offsets[i];
  }
  t.fanin_arcs.resize(t.fanin_offsets[n]);
  t.fanout_arcs.resize(t.fanout_offsets[n]);
  std::vector<std::uint32_t> fi = t.fanin_offsets;
  std::vector<std::uint32_t> fo = t.fanout_offsets;
  for (ArcId a = 0; a < num_arcs; ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead) continue;
    t.fanin_arcs[fi[arc.to]++] = a;
    t.fanout_arcs[fo[arc.from]++] = a;
  }

  // Longest-path levels over the topological order.
  std::vector<std::uint32_t> level(n, 0);
  std::uint32_t max_level = 0;
  for (const NodeId v : topo) {
    std::uint32_t lv = 0;
    for (const ArcId a : t.fanin(v)) {
      const std::uint32_t lu = level[g.arc(a).from];
      lv = std::max(lv, lu + 1);
    }
    level[v] = lv;
    max_level = std::max(max_level, lv);
  }
  const std::size_t num_levels = topo.empty() ? 0 : max_level + 1u;
  t.level_offsets.assign(num_levels + 1, 0);
  for (const NodeId v : topo) ++t.level_offsets[level[v] + 1];
  for (std::size_t l = 0; l < num_levels; ++l)
    t.level_offsets[l + 1] += t.level_offsets[l];
  t.level_nodes.resize(topo.size());
  {
    std::vector<std::uint32_t> cursor(t.level_offsets.begin(),
                                      t.level_offsets.end() - 1);
    // Ascending node-id iteration fills each level in ascending order.
    for (NodeId v = 0; v < n; ++v) {
      if (g.node(v).dead) continue;
      t.level_nodes[cursor[level[v]]++] = v;
    }
  }

  // Live checks grouped by data pin, ascending check id within a pin
  // (check-id-order iteration over a sorted pin list preserves it).
  std::vector<std::uint32_t> per_pin(n, 0);
  const std::size_t num_checks = g.num_checks();
  for (std::uint32_t c = 0; c < num_checks; ++c)
    if (!g.check(c).dead) ++per_pin[g.check(c).data];
  for (NodeId v = 0; v < n; ++v)
    if (per_pin[v] > 0) t.check_pins.push_back(v);
  t.check_offsets.assign(t.check_pins.size() + 1, 0);
  for (std::size_t i = 0; i < t.check_pins.size(); ++i)
    t.check_offsets[i + 1] = t.check_offsets[i] + per_pin[t.check_pins[i]];
  t.check_ids.resize(t.check_offsets.back());
  {
    // Map node id -> dense check_pins slot for the fill pass.
    std::vector<std::uint32_t> slot(n, 0);
    for (std::size_t i = 0; i < t.check_pins.size(); ++i)
      slot[t.check_pins[i]] = static_cast<std::uint32_t>(i);
    std::vector<std::uint32_t> cursor(t.check_offsets.begin(),
                                      t.check_offsets.end() - 1);
    for (std::uint32_t c = 0; c < num_checks; ++c)
      if (!g.check(c).dead) t.check_ids[cursor[slot[g.check(c).data]]++] = c;
  }
  return t;
}

}  // namespace tmm
