#pragma once
// Structure-of-arrays timing state for the STA engine
// (docs/PERFORMANCE.md, "Data-oriented timing store").
//
// One contiguous double array per quantity (slew, arrival, required),
// indexed [node * kLanes + el * kNumRf + rf]: a node's four corner
// lanes (early/late x rise/fall) are adjacent, so per-node relaxation
// updates touch one cache line per quantity and whole-array operations
// (init, reference checkpoint/restore, snapshot) are linear scans the
// compiler vectorizes. The lane order matches the engine's
// preds_/credits_ indexing, so one index expression serves all five
// arrays.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace tmm {

struct TimingStore {
  static constexpr std::size_t kLanes =
      static_cast<std::size_t>(kNumEl) * kNumRf;

  static constexpr std::size_t index(std::size_t node, unsigned el,
                                     unsigned rf) noexcept {
    return node * kLanes + el * kNumRf + rf;
  }

  std::vector<double> slew;
  std::vector<double> at;
  std::vector<double> rat;

  /// Resize to `n` nodes, zero-filled (dead nodes keep 0.0, matching
  /// the old value-initialized AoS store).
  void assign_nodes(std::size_t n) {
    slew.assign(n * kLanes, 0.0);
    at.assign(n * kLanes, 0.0);
    rat.assign(n * kLanes, 0.0);
  }

  std::size_t num_nodes() const noexcept { return at.size() / kLanes; }
};

}  // namespace tmm
