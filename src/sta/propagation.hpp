#pragma once
// Static timing analysis engine over a TimingGraph.
//
// Forward pass: slews and arrival times (early/late x rise/fall) in
// topological order, seeded from the boundary constraints; worst-path
// predecessors are recorded for CPPR path recovery. Backward pass:
// required arrival times seeded from PO constraints and setup/hold
// checks at flip-flop data pins (with the common-path pessimism credit
// folded in when CPPR mode is on), relaxed in reverse topological order.
//
// The same engine analyzes flat designs, ILMs and macro models, which is
// what makes macro accuracy evaluation (Fig. 2) a pure snapshot diff.
//
// Timing state lives in a structure-of-arrays store (sta/timing_store.hpp)
// and full passes can run levelized-parallel over a worker pool
// (Options::threads, sta/topology.hpp): each topological level's nodes
// are relaxed concurrently with a barrier between levels. Because every
// relaxation is gather-form over finalized fanin (resp. fanout) values
// and visits arcs in ascending arc-id order, parallel results are
// bit-identical to the serial reference — no reduction-order tie-break
// exists to document away (docs/PERFORMANCE.md).

#include <limits>
#include <span>
#include <vector>

#include "sta/aocv.hpp"
#include "sta/constraints.hpp"
#include "sta/timing_graph.hpp"
#include "sta/timing_store.hpp"
#include "sta/topology.hpp"

namespace tmm {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

struct PinTiming {
  ElRf<double> slew;
  ElRf<double> at;
  ElRf<double> rat;
};

/// Boundary timing values of one analysis run: slew/at/rat/slack at
/// every PI and PO, flattened per (port, el, rf).
struct BoundarySnapshot {
  std::size_t num_ports = 0;
  std::vector<double> slew, at, rat, slack;  // size num_ports * kNumEl*kNumRf
};

struct SnapshotDiff {
  double max_abs = 0.0;  ///< max |a-b| over finite entries (ps)
  double avg_abs = 0.0;  ///< mean |a-b| over finite entries (ps)
  double avg_rel = 0.0;  ///< mean |a-b| / max(|b|, eps) (Eq. 2 flavour)
  std::size_t compared = 0;
  /// Entries finite in exactly one snapshot (structural mismatch).
  std::size_t mismatched = 0;
};

/// Compare two snapshots (same port arity required).
SnapshotDiff diff_snapshots(const BoundarySnapshot& a,
                            const BoundarySnapshot& b);

/// Work accounting of one Sta::run_incremental call (all counts are
/// nodes unless noted); exposed for obs counters and tests.
struct StaIncrementalStats {
  std::size_t seeds = 0;           ///< dirty nodes handed in
  std::size_t fwd_recomputed = 0;  ///< nodes re-relaxed forward
  std::size_t fwd_changed = 0;     ///< ... whose slew/at actually changed
  std::size_t bwd_recomputed = 0;  ///< nodes re-relaxed backward
  std::size_t bwd_changed = 0;     ///< ... whose rat actually changed
  std::size_t checks_dirty = 0;    ///< check seeds re-evaluated
};

class Sta {
 public:
  struct Options {
    bool cppr = true;  ///< apply common-path pessimism removal
    /// Propagate required times into the clock network (capture-side
    /// clock requirements). Off by default: with an ideal clock port,
    /// internal register-to-register endpoints would otherwise constrain
    /// the clock PI, which interface-logic models intentionally drop —
    /// the TAU evaluation convention (see DESIGN.md).
    bool clock_rat = false;
    /// Advanced on-chip-variation mode: depth-based derating of cell
    /// arc delays (see sta/aocv.hpp).
    AocvConfig aocv;
    /// Scan the boundary for NaN after each analysis and raise
    /// fault::FlowError(kNumeric) with the offending pin instead of
    /// letting corruption (a poisoned LUT, a bad derate) leak into
    /// labels or macro models silently. O(ports) per run.
    bool check_numeric = true;
    /// Threads for the full forward/backward passes of run(): 1 =
    /// serial (default), 0 = auto (TMM_THREADS when set, else hardware
    /// concurrency), N = at most N. Parallel runs are bit-identical to
    /// serial ones; run_incremental is always serial (its worklist is
    /// tiny by construction).
    std::size_t threads = 1;
    /// Graphs with fewer nodes than this always run serially — pool
    /// dispatch costs more than it buys on macro-sized graphs (the
    /// serve::Evaluator scratch engines rely on this fallback).
    std::size_t parallel_min_nodes = 2048;
  };

  explicit Sta(const TimingGraph& graph, Options opt);
  explicit Sta(const TimingGraph& graph) : Sta(graph, Options{}) {}

  /// Run a full forward + backward analysis under the constraints.
  void run(const BoundaryConstraints& bc);

  /// Checkpoint the current analysis state (values, predecessors, CPPR
  /// credits) as the reference that run_incremental restores to and
  /// converges against. Call after a full run(); the graph's cached
  /// topological order is captured as the worklist priority, so the
  /// graph must only be mutated through the delta_* API afterwards.
  void set_reference();
  bool has_reference() const noexcept { return has_reference_; }

  /// Incremental re-analysis after a graph delta, under the SAME
  /// constraints the reference was built with. `dirty` must contain
  /// every node whose fanin or fanout arc set the delta changed
  /// (dead nodes are fine and skipped). State is first restored to the
  /// reference over the previously dirty region only, then a worklist
  /// re-relaxes forward from the seeds in topological order with early
  /// termination where slew/at converge back to the reference, then the
  /// affected checks are re-seeded and the fan-in cone re-relaxed
  /// backward. Results are bit-identical to a from-scratch run() on the
  /// mutated graph. Requires Options::clock_rat == false (capture-side
  /// clock requirements cross-couple endpoints and are not localizable).
  StaIncrementalStats run_incremental(const BoundaryConstraints& bc,
                                      std::span<const NodeId> dirty);

  /// Timing values of one node, gathered from the SoA store (by value;
  /// binding the result to a const reference at call sites is fine —
  /// lifetime extension applies).
  PinTiming timing(NodeId n) const {
    PinTiming t;
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const std::size_t k = TimingStore::index(n, el, rf);
        t.slew(el, rf) = store_.slew.at(k);
        t.at(el, rf) = store_.at.at(k);
        t.rat(el, rf) = store_.rat.at(k);
      }
    return t;
  }

  /// slack: late = rat - at, early = at - rat; +inf when unconstrained.
  double slack(NodeId n, unsigned el, unsigned rf) const;

  /// Worst (minimum) slack over all check endpoints and (optionally)
  /// primary outputs.
  double worst_slack(unsigned el, bool include_pos = true) const;

  BoundarySnapshot boundary_snapshot() const;

  /// Allocation-free variant: fill `out` in place, reusing its storage.
  /// Snapshotting is a per-run cost in the incremental TS loop.
  void snapshot_into(BoundarySnapshot& out) const;

  /// CPPR credit applied at a data endpoint during the last run (0 when
  /// CPPR off or no common path); exposed for tests.
  double endpoint_credit(NodeId data, unsigned el, unsigned rf) const;

  /// One hop of a recovered worst path.
  struct PathStep {
    NodeId node = kInvalidId;
    ArcId via = kInvalidId;  ///< arc into `node`; kInvalidId at the start
    unsigned rf = kRise;     ///< transition at `node`
    double at = 0.0;         ///< arrival at `node` in the chosen corner
  };

  /// Recover the worst arrival path ending at (endpoint, el, rf) by
  /// walking the recorded predecessors back to its timing start point
  /// (a PI seed or a flop launch). Returns start-to-end order; empty if
  /// the endpoint was never reached.
  std::vector<PathStep> worst_path(NodeId endpoint, unsigned el,
                                   unsigned rf) const;

  /// The check endpoint with the worst slack in the corner, or
  /// kInvalidId if there are no constrained endpoints. `rf_out` receives
  /// the critical transition.
  NodeId worst_endpoint(unsigned el, unsigned* rf_out = nullptr) const;

  const TimingGraph& graph() const noexcept { return *graph_; }

 private:
  struct Pred {
    ArcId arc = kInvalidId;
    std::uint8_t from_rf = 0;
  };

  void forward(const BoundaryConstraints& bc);
  /// Boundary NaN scan (Options::check_numeric); throws FlowError.
  void check_numeric() const;
  void seed_backward(const BoundaryConstraints& bc);
  void backward();
  /// Level-parallel counterparts of forward/seed_backward/backward,
  /// executing the same gather-form relaxations over the cached CSR
  /// topology with `par`-way parallelism (bit-identical results).
  void forward_parallel(const BoundaryConstraints& bc, std::size_t par);
  void seed_backward_parallel(const BoundaryConstraints& bc, std::size_t par);
  void backward_parallel(std::size_t par);
  /// Threads the full passes of this run() should use: Options::threads
  /// resolved against TMM_THREADS / hardware and the tiny-graph floor.
  std::size_t resolve_parallelism() const;
  /// Rebuild the cached CSR + level schedule when the graph structure
  /// changed (keyed on TimingGraph::structure_version()).
  void ensure_topology();
  /// Recompute slew/at/preds of `v` from scratch as a pure function of
  /// its PI seed and fanin arcs (gather form). Fanin arcs are visited in
  /// ascending arc-id order, so tie-breaks do not depend on which
  /// topological order drives the sweep — the property that makes
  /// incremental re-relaxation (and level-parallel execution)
  /// bit-identical to a full serial run. The span overload is the one
  /// implementation; serial and incremental callers pass the graph's
  /// adjacency, the parallel pass passes the CSR view (same content,
  /// same order).
  void relax_forward_node(NodeId v, const BoundaryConstraints& bc,
                          std::span<const ArcId> fanin);
  void relax_forward_node(NodeId v, const BoundaryConstraints& bc) {
    relax_forward_node(v, bc, graph_->fanin(v));
  }
  /// Relax u's rat from its (final) fanout targets.
  void relax_backward_arcs(NodeId u, std::span<const ArcId> fanout);
  void relax_backward_arcs(NodeId u) {
    relax_backward_arcs(u, graph_->fanout(u));
  }
  /// Recompute u's rat from scratch: init, PO seed, check seeds at u,
  /// then fanout relaxation (gather form of seed_backward + backward).
  void relax_backward_node(NodeId u, const BoundaryConstraints& bc);
  /// Seed the check's rat/credit contribution at its data pin.
  void apply_check_seed(const CheckArc& c, const BoundaryConstraints& bc);
  /// True if the check's seed could differ from the reference: its data
  /// or clock pin, or any node on the CPPR launch/capture pred chains,
  /// changed value or predecessor this run.
  bool check_dirty(const CheckArc& c) const;
  bool clock_chain_dirty(NodeId ck, unsigned el) const;
  void restore_reference();
  void mark_modified(NodeId v);
  void mark_changed(NodeId v);
  double effective_load(NodeId n) const { return eff_load_[n]; }
  NodeId trace_launch_clock(NodeId data, unsigned el, unsigned rf) const;
  double cppr_credit(NodeId launch_ck, NodeId capture_ck) const;

  const TimingGraph* graph_;
  Options opt_;
  TimingStore store_;        ///< SoA slew/at/rat, [node*kLanes + lane]
  std::vector<Pred> preds_;  ///< [node * kNumEl*kNumRf + el*kNumRf + rf]
  std::vector<double> eff_load_;
  std::vector<double> credits_;  ///< endpoint credits, same indexing as preds_

  // CSR adjacency + level schedule for the parallel passes, cached
  // against the graph's structure version (see ensure_topology).
  StaTopology topo_;
  bool topo_valid_ = false;

  // --- incremental state (see set_reference / run_incremental) --------
  bool has_reference_ = false;
  TimingStore ref_store_;
  std::vector<Pred> ref_preds_;
  std::vector<double> ref_credits_;
  std::vector<std::uint32_t> topo_pos_;  ///< node -> cached topo position
  std::vector<NodeId> modified_;  ///< entries diverged from the reference
  std::vector<char> is_modified_;
  std::vector<NodeId> changed_;  ///< value or pred differs this run (F')
  std::vector<char> is_changed_;
  std::vector<char> value_changed_;  ///< subset of F': slew/at differs
  std::vector<std::uint32_t> fwd_stamp_, bwd_stamp_;  ///< worklist dedup
  std::uint32_t incr_gen_ = 0;
};

/// Slew-only forward propagation used by the insensitive-pin filter and
/// the iTimerM-style baseline: every PI gets the same input slew, POs
/// get `po_load_ff`; returns the worst (late, max-over-rf) slew per node
/// (-inf for unreached nodes).
std::vector<double> propagate_slew_only(const TimingGraph& graph,
                                        double pi_slew_ps,
                                        double po_load_ff = 4.0);

}  // namespace tmm
