#include "sta/constraints.hpp"

#include <algorithm>

namespace tmm {

BoundaryConstraints random_constraints(std::size_t num_pis,
                                       std::size_t num_pos,
                                       const ConstraintGenConfig& cfg,
                                       Rng& rng) {
  BoundaryConstraints bc;
  bc.clock_period_ps = cfg.clock_period_ps;
  bc.pi.resize(num_pis);
  bc.po.resize(num_pos);
  for (auto& p : bc.pi) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      const double at = rng.uniform(cfg.pi_at_min, cfg.pi_at_max);
      const double spread = rng.uniform(0.0, 8.0);
      p.at(kLate, rf) = at;
      p.at(kEarly, rf) = std::max(cfg.pi_at_min, at - spread);
      const double slew = rng.uniform(cfg.pi_slew_min, cfg.pi_slew_max);
      p.slew(kLate, rf) = slew;
      p.slew(kEarly, rf) = std::max(cfg.pi_slew_min * 0.5, slew * 0.8);
    }
  }
  for (auto& p : bc.po) {
    p.load_ff = rng.uniform(cfg.po_load_min, cfg.po_load_max);
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      p.rat(kLate, rf) = cfg.clock_period_ps *
                         rng.uniform(cfg.po_rat_frac_min, cfg.po_rat_frac_max);
      p.rat(kEarly, rf) = rng.uniform(0.0, 30.0);
    }
  }
  return bc;
}

BoundaryConstraints nominal_constraints(std::size_t num_pis,
                                        std::size_t num_pos,
                                        double clock_period_ps) {
  BoundaryConstraints bc;
  bc.clock_period_ps = clock_period_ps;
  bc.pi.resize(num_pis);
  bc.po.resize(num_pos);
  for (auto& p : bc.pi) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      p.at(kLate, rf) = 20.0;
      p.at(kEarly, rf) = 15.0;
      p.slew(kLate, rf) = 10.0;
      p.slew(kEarly, rf) = 8.0;
    }
  }
  for (auto& p : bc.po) {
    p.load_ff = 4.0;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      p.rat(kLate, rf) = clock_period_ps * 0.9;
      p.rat(kEarly, rf) = 10.0;
    }
  }
  return bc;
}

}  // namespace tmm
