#pragma once
// Advanced on-chip-variation (AOCV) timing mode.
//
// AOCV replaces flat early/late derates with *depth-based* derating:
// shallow paths carry the full per-stage variation guard-band, deep
// paths amortize it (random variation averages out over many stages).
// This is one of the "advanced node timing analysis models" the paper's
// framework claims to generalize to (Sections 3.2 and 5.3): the timing
// sensitivity metric simply re-evaluates under the chosen mode, and the
// same GNN pipeline applies unchanged.
//
// The graph-based approximation used here derates each cell arc by the
// launch-side stage depth of its from-pin (stored on the node; copied
// by ILM extraction and baked into merged-arc tables at materialization
// so macro models reproduce the derated timing).

#include <cmath>
#include <cstdint>

namespace tmm {

struct AocvConfig {
  bool enabled = false;
  /// Stage-depth-0 late derate (> 1) and early derate (< 1).
  double late_derate = 1.08;
  double early_derate = 0.92;
  /// Depth constant: derates decay toward 1 as depth grows,
  /// derate(d) = 1 + (derate0 - 1) * k / (k + d).
  double depth_constant = 6.0;

  double derate(unsigned el, std::uint32_t depth) const noexcept {
    if (!enabled) return 1.0;
    const double base = el == 1 /*kLate*/ ? late_derate : early_derate;
    const double k = depth_constant;
    return 1.0 + (base - 1.0) * k / (k + static_cast<double>(depth));
  }
};

}  // namespace tmm
