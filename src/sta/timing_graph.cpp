#include "sta/timing_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tmm {

NodeId TimingGraph::add_node(GraphNode node) {
  invalidate();
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

ArcId TimingGraph::add_cell_arc(NodeId from, NodeId to, ArcSense sense,
                                const ElRf<Lut>* delay,
                                const ElRf<Lut>* out_slew, bool is_launch) {
  invalidate();
  GraphArc a;
  a.from = from;
  a.to = to;
  a.kind = GraphArcKind::kCell;
  a.sense = sense;
  a.is_launch = is_launch;
  a.delay = delay;
  a.out_slew = out_slew;
  arcs_.push_back(a);
  return static_cast<ArcId>(arcs_.size() - 1);
}

ArcId TimingGraph::add_wire_arc(NodeId from, NodeId to, double delay_ps) {
  invalidate();
  GraphArc a;
  a.from = from;
  a.to = to;
  a.kind = GraphArcKind::kWire;
  a.sense = ArcSense::kPositiveUnate;
  a.wire_delay_ps = delay_ps;
  arcs_.push_back(a);
  return static_cast<ArcId>(arcs_.size() - 1);
}

std::uint32_t TimingGraph::add_check(NodeId clock, NodeId data, bool is_setup,
                                     const ElRf<Lut>* guard) {
  invalidate();
  CheckArc c;
  c.clock = clock;
  c.data = data;
  c.is_setup = is_setup;
  c.guard = guard;
  checks_.push_back(c);
  return static_cast<std::uint32_t>(checks_.size() - 1);
}

const ElRf<Lut>* TimingGraph::own_tables(ElRf<Lut> tables) {
  owned_tables_.push_back(std::move(tables));
  return &owned_tables_.back();
}

bool TimingGraph::owns_tables(const ElRf<Lut>* tables) const noexcept {
  if (tables == nullptr) return false;
  for (const auto& t : owned_tables_)
    if (&t == tables) return true;
  return false;
}

void TimingGraph::kill_node(NodeId n) {
  invalidate();
  nodes_.at(n).dead = true;
  for (auto& a : arcs_)
    if (!a.dead && (a.from == n || a.to == n)) a.dead = true;
  for (auto& c : checks_)
    if (!c.dead && (c.clock == n || c.data == n)) c.dead = true;
}

void TimingGraph::kill_arc(ArcId a) {
  invalidate();
  arcs_.at(a).dead = true;
}

namespace {

/// Remove one id from a sorted adjacency list, preserving order.
void adj_erase(std::vector<ArcId>& v, ArcId a) {
  const auto it = std::find(v.begin(), v.end(), a);
  if (it != v.end()) v.erase(it);
}

/// Insert one id into a sorted adjacency list at its ascending position.
void adj_insert(std::vector<ArcId>& v, ArcId a) {
  v.insert(std::lower_bound(v.begin(), v.end(), a), a);
}

}  // namespace

void TimingGraph::delta_kill_arc(ArcId a) {
  ++structure_version_;
  GraphArc& arc = arcs_.at(a);
  arc.dead = true;
  if (adjacency_valid_) {
    adj_erase(fanout_[arc.from], a);
    adj_erase(fanin_[arc.to], a);
  }
}

void TimingGraph::delta_restore_arc(ArcId a) {
  ++structure_version_;
  GraphArc& arc = arcs_.at(a);
  arc.dead = false;
  if (adjacency_valid_) {
    adj_insert(fanout_[arc.from], a);
    adj_insert(fanin_[arc.to], a);
  }
}

ArcId TimingGraph::delta_add_cell_arc(NodeId from, NodeId to, ArcSense sense,
                                      const ElRf<Lut>* delay,
                                      const ElRf<Lut>* out_slew,
                                      bool is_launch) {
  ++structure_version_;
  GraphArc a;
  a.from = from;
  a.to = to;
  a.kind = GraphArcKind::kCell;
  a.sense = sense;
  a.is_launch = is_launch;
  a.delay = delay;
  a.out_slew = out_slew;
  arcs_.push_back(a);
  const ArcId id = static_cast<ArcId>(arcs_.size() - 1);
  if (adjacency_valid_) {
    // New ids are maximal, so push_back keeps the ascending order.
    fanout_[from].push_back(id);
    fanin_[to].push_back(id);
  }
  return id;
}

void TimingGraph::delta_set_node_dead(NodeId n, bool dead) {
  ++structure_version_;
  nodes_.at(n).dead = dead;
}

void TimingGraph::delta_truncate(std::size_t num_arcs,
                                 std::size_t num_tables) {
  ++structure_version_;
  while (arcs_.size() > num_arcs) {
    const GraphArc& a = arcs_.back();
    if (!a.dead && adjacency_valid_) {
      adj_erase(fanout_[a.from], static_cast<ArcId>(arcs_.size() - 1));
      adj_erase(fanin_[a.to], static_cast<ArcId>(arcs_.size() - 1));
    }
    arcs_.pop_back();
  }
  while (owned_tables_.size() > num_tables) owned_tables_.pop_back();
}

std::size_t TimingGraph::num_live_nodes() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (!node.dead) ++n;
  return n;
}

std::size_t TimingGraph::num_live_arcs() const {
  std::size_t n = 0;
  for (const auto& arc : arcs_)
    if (!arc.dead) ++n;
  return n;
}

void TimingGraph::invalidate() const {
  adjacency_valid_ = false;
  topo_valid_ = false;
  ++structure_version_;
}

void TimingGraph::rebuild_adjacency() const {
  fanin_.assign(nodes_.size(), {});
  fanout_.assign(nodes_.size(), {});
  node_checks_.assign(nodes_.size(), {});
  for (ArcId a = 0; a < arcs_.size(); ++a) {
    const auto& arc = arcs_[a];
    if (arc.dead) continue;
    fanout_[arc.from].push_back(a);
    fanin_[arc.to].push_back(a);
  }
  for (std::uint32_t c = 0; c < checks_.size(); ++c) {
    if (checks_[c].dead) continue;
    node_checks_[checks_[c].data].push_back(c);
  }
  adjacency_valid_ = true;
}

const std::vector<ArcId>& TimingGraph::fanin(NodeId n) const {
  if (!adjacency_valid_) rebuild_adjacency();
  return fanin_.at(n);
}

const std::vector<ArcId>& TimingGraph::fanout(NodeId n) const {
  if (!adjacency_valid_) rebuild_adjacency();
  return fanout_.at(n);
}

const std::vector<std::uint32_t>& TimingGraph::checks_of(NodeId n) const {
  if (!adjacency_valid_) rebuild_adjacency();
  return node_checks_.at(n);
}

const std::vector<NodeId>& TimingGraph::topo_order() const {
  if (topo_valid_) return topo_;
  if (!adjacency_valid_) rebuild_adjacency();
  topo_.clear();
  topo_.reserve(nodes_.size());
  std::vector<std::uint32_t> indeg(nodes_.size(), 0);
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].dead) continue;
    indeg[n] = static_cast<std::uint32_t>(fanin_[n].size());
    if (indeg[n] == 0) topo_.push_back(n);
  }
  for (std::size_t head = 0; head < topo_.size(); ++head) {
    const NodeId u = topo_[head];
    for (ArcId a : fanout_[u]) {
      const NodeId v = arcs_[a].to;
      if (--indeg[v] == 0) topo_.push_back(v);
    }
  }
  if (topo_.size() != num_live_nodes()) {
    std::string msg = "TimingGraph::topo_order: graph has a cycle";
    const std::vector<NodeId> cycle = find_cycle(*this);
    if (!cycle.empty()) {
      msg += " through ";
      for (NodeId u : cycle) {
        msg += nodes_[u].name;
        msg += " -> ";
      }
      msg += nodes_[cycle.front()].name;
    }
    throw std::runtime_error(msg);
  }
  topo_valid_ = true;
  return topo_;
}

void TimingGraph::set_primary_input(NodeId n, std::uint32_t ordinal,
                                    bool is_clock) {
  auto& node = nodes_.at(n);
  node.role = NodeRole::kPrimaryInput;
  node.port_ordinal = ordinal;
  if (pis_.size() <= ordinal) pis_.resize(ordinal + 1, kInvalidId);
  pis_[ordinal] = n;
  if (is_clock) {
    node.is_clock_root = true;
    clock_root_ = n;
  }
}

void TimingGraph::set_primary_output(NodeId n, std::uint32_t ordinal) {
  auto& node = nodes_.at(n);
  node.role = NodeRole::kPrimaryOutput;
  node.port_ordinal = ordinal;
  if (pos_.size() <= ordinal) pos_.resize(ordinal + 1, kInvalidId);
  pos_[ordinal] = n;
}

std::size_t TimingGraph::owned_table_doubles() const {
  std::size_t total = 0;
  for (const auto& t : owned_tables_)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        total += t(el, rf).storage_doubles();
  return total;
}

std::size_t TimingGraph::memory_bytes() const {
  std::size_t bytes = nodes_.size() * sizeof(GraphNode) +
                      arcs_.size() * sizeof(GraphArc) +
                      checks_.size() * sizeof(CheckArc);
  for (const auto& n : nodes_) {
    bytes += n.name.capacity();
    bytes += n.attached_po_loads.capacity() * sizeof(std::uint32_t);
  }
  bytes += owned_table_doubles() * sizeof(double);
  return bytes;
}

std::vector<NodeId> find_cycle(const TimingGraph& g) {
  const NodeId n = static_cast<NodeId>(g.num_nodes());
  // 0 = unvisited, 1 = on the current DFS path, 2 = finished.
  std::vector<std::uint8_t> color(n, 0);
  std::vector<NodeId> path;
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, next fanout)
  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != 0 || g.node(root).dead) continue;
    color[root] = 1;
    path.push_back(root);
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      const NodeId u = stack.back().first;
      const std::size_t idx = stack.back().second;
      const auto& fo = g.fanout(u);
      if (idx < fo.size()) {
        ++stack.back().second;
        const NodeId v = g.arc(fo[idx]).to;
        if (color[v] == 1) {
          // Back edge: the cycle is the path suffix starting at v.
          const auto it = std::find(path.begin(), path.end(), v);
          return {it, path.end()};
        }
        if (color[v] == 0 && !g.node(v).dead) {
          color[v] = 1;
          path.push_back(v);
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return {};
}

TimingGraph build_timing_graph(const Design& design) {
  TimingGraph g;
  const Library& lib = design.library();

  // Nodes: one per design pin, same ids.
  for (PinId p = 0; p < design.num_pins(); ++p) {
    GraphNode node;
    node.name = design.pin_name(p);
    g.add_node(std::move(node));
  }

  // Boundary roles (ordinal = index within the design's PI/PO lists).
  for (std::uint32_t i = 0; i < design.primary_inputs().size(); ++i) {
    const PinId p = design.primary_inputs()[i];
    g.set_primary_input(p, i, p == design.clock_root());
  }
  for (std::uint32_t i = 0; i < design.primary_outputs().size(); ++i)
    g.set_primary_output(design.primary_outputs()[i], i);

  // Wire arcs and driver loads.
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    auto& drv = g.node(net.driver);
    drv.static_load_ff = design.net_load_ff(n);
    for (std::size_t k = 0; k < net.sinks.size(); ++k) {
      const PinId s = net.sinks[k];
      const double delay = net.sink_res_kohm[k] * design.pin_cap_ff(s);
      g.add_wire_arc(net.driver, s, delay);
      if (design.is_primary_output(s)) {
        const auto& pin = design.pin(s);
        drv.attached_po_loads.push_back(g.node(s).port_ordinal);
        (void)pin;
      }
    }
  }

  // Cell arcs and checks.
  for (GateId gi = 0; gi < design.num_gates(); ++gi) {
    const Gate& gate = design.gate(gi);
    const Cell& cell = lib.cell(gate.cell);
    for (const auto& spec : cell.arcs) {
      const PinId from = gate.pins[spec.from_port];
      const PinId to = gate.pins[spec.to_port];
      switch (spec.kind) {
        case ArcKind::kCombinational:
          g.add_cell_arc(from, to, spec.sense, &spec.delay, &spec.out_slew);
          break;
        case ArcKind::kClockToQ:
          g.add_cell_arc(from, to, spec.sense, &spec.delay, &spec.out_slew,
                         /*is_launch=*/true);
          break;
        case ArcKind::kSetup:
          g.add_check(from, to, /*is_setup=*/true, &spec.delay);
          break;
        case ArcKind::kHold:
          g.add_check(from, to, /*is_setup=*/false, &spec.delay);
          break;
      }
    }
    if (cell.is_sequential) {
      for (std::uint32_t pi = 0; pi < cell.ports.size(); ++pi) {
        if (cell.ports[pi].is_clock)
          g.node(gate.pins[pi]).is_ff_clock = true;
        else if (cell.ports[pi].dir == PortDir::kInput)
          g.node(gate.pins[pi]).is_ff_data = true;
      }
    }
  }

  // AOCV stage depths: number of cell arcs on the shortest path from a
  // timing start point (PI or flop clock pin).
  {
    std::vector<std::uint32_t> depth(g.num_nodes(), 0xffffffffu);
    for (NodeId p : g.primary_inputs())
      if (p != kInvalidId) depth[p] = 0;
    for (NodeId u : g.topo_order()) {
      if (g.node(u).is_ff_clock) depth[u] = 0;  // launch point restarts
      if (depth[u] == 0xffffffffu) continue;
      for (ArcId a : g.fanout(u)) {
        const auto& arc = g.arc(a);
        const std::uint32_t step =
            arc.kind == GraphArcKind::kCell ? 1u : 0u;
        if (depth[u] + step < depth[arc.to]) depth[arc.to] = depth[u] + step;
      }
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u)
      g.node(u).aocv_depth = depth[u] == 0xffffffffu ? 0 : depth[u];
  }

  // Clock-network marking: forward reachability from the clock root,
  // stopping at flip-flop clock pins (launch arcs leave the network).
  if (g.clock_root() != kInvalidId) {
    std::vector<NodeId> stack{g.clock_root()};
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      auto& nu = g.node(u);
      if (nu.in_clock_network) continue;
      nu.in_clock_network = true;
      if (nu.is_ff_clock) continue;
      for (ArcId a : g.fanout(u)) {
        if (g.arc(a).is_launch) continue;
        stack.push_back(g.arc(a).to);
      }
    }
  }
  return g;
}

}  // namespace tmm
