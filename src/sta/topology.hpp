#pragma once
// Data-oriented view of a TimingGraph for the parallel STA passes
// (docs/PERFORMANCE.md, "Parallel levelized propagation").
//
// StaTopology flattens the graph's per-node adjacency vectors into CSR
// arrays (one offsets array + one contiguous arc-id array per
// direction, ascending arc id within each node — the same visitation
// order as TimingGraph::fanin/fanout, which is what keeps parallel
// relaxation bit-identical to the serial sweep) and groups live nodes
// into topological levels:
//
//   level(v) = 0                          for nodes with no live fanin
//   level(v) = 1 + max over live arcs u->v of level(u)
//
// Longest-path levels guarantee every fanin of a level-L node sits in
// a level < L, so relaxing one level at a time with a barrier between
// levels reads only finalized values — no tie-break is ever exercised.
// Within a level, level_nodes is ascending by node id (deterministic
// chunking; writes are per-node so order within a level is irrelevant
// to results).
//
// check_pins/check_ids group live check arcs by data pin (ascending
// check id per pin, matching TimingGraph::checks_of) so check seeding
// can hand each data pin's checks to one task: all writes of a pin's
// seeds land on that pin alone.
//
// The struct is a pure function of the graph structure; Sta caches one
// instance keyed on TimingGraph::structure_version().

#include <cstdint>
#include <span>
#include <vector>

#include "sta/timing_graph.hpp"
#include "util/types.hpp"

namespace tmm {

struct StaTopology {
  /// structure_version() of the graph this was built from.
  std::uint64_t graph_version = 0;
  std::size_t num_nodes = 0;

  // CSR adjacency over live delay arcs (offsets are indexed by node id;
  // dead nodes have empty ranges).
  std::vector<std::uint32_t> fanin_offsets;   ///< num_nodes + 1
  std::vector<ArcId> fanin_arcs;              ///< ascending id per node
  std::vector<std::uint32_t> fanout_offsets;  ///< num_nodes + 1
  std::vector<ArcId> fanout_arcs;             ///< ascending id per node

  // Levelization over live nodes: level_nodes[level_offsets[l] ..
  // level_offsets[l+1]) is level l, ascending node id.
  std::vector<std::uint32_t> level_offsets;  ///< num_levels + 1
  std::vector<NodeId> level_nodes;

  // Live checks grouped by data pin: check_ids[check_offsets[i] ..
  // check_offsets[i+1]) are the checks of check_pins[i], ascending
  // check id. check_pins is ascending and duplicate-free.
  std::vector<NodeId> check_pins;
  std::vector<std::uint32_t> check_offsets;  ///< check_pins.size() + 1
  std::vector<std::uint32_t> check_ids;

  std::size_t num_levels() const noexcept {
    return level_offsets.empty() ? 0 : level_offsets.size() - 1;
  }
  std::span<const NodeId> level(std::size_t l) const noexcept {
    return {level_nodes.data() + level_offsets[l],
            level_nodes.data() + level_offsets[l + 1]};
  }
  std::span<const ArcId> fanin(NodeId n) const noexcept {
    return {fanin_arcs.data() + fanin_offsets[n],
            fanin_arcs.data() + fanin_offsets[n + 1]};
  }
  std::span<const ArcId> fanout(NodeId n) const noexcept {
    return {fanout_arcs.data() + fanout_offsets[n],
            fanout_arcs.data() + fanout_offsets[n + 1]};
  }
  std::span<const std::uint32_t> checks_of_pin(std::size_t i) const noexcept {
    return {check_ids.data() + check_offsets[i],
            check_ids.data() + check_offsets[i + 1]};
  }

  /// Build from the graph's live structure. Calls g.topo_order()
  /// (throws on a cycle) and leaves the graph's lazy caches
  /// materialized.
  static StaTopology build(const TimingGraph& g);
};

}  // namespace tmm
