#pragma once
// Boundary timing constraints — the analysis-time context of a block:
// slew and arrival time at primary inputs, output load and required
// arrival time at primary outputs (Section 2), plus the clock period.
//
// Constraints are indexed by PI/PO *ordinal*, so one set applies
// unchanged to the flat design, its ILM and any macro model of it —
// which is how model accuracy is validated (Fig. 2).

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace tmm {

struct PiConstraint {
  ElRf<double> at;    ///< arrival time at the PI (ps)
  ElRf<double> slew;  ///< input slew at the PI (ps)
};

struct PoConstraint {
  double load_ff = 2.0;  ///< capacitive load driven by the PO
  ElRf<double> rat;      ///< required arrival time at the PO (ps)
};

struct BoundaryConstraints {
  double clock_period_ps = 1000.0;
  std::vector<PiConstraint> pi;
  std::vector<PoConstraint> po;
};

/// Ranges from which random constraint sets are drawn (Fig. 5's
/// "randomly generate several sets of boundary timing constraints").
struct ConstraintGenConfig {
  double clock_period_ps = 1000.0;
  double pi_at_min = 0.0, pi_at_max = 120.0;
  double pi_slew_min = 2.0, pi_slew_max = 60.0;
  double po_load_min = 1.0, po_load_max = 12.0;
  /// Late RAT at POs drawn from [rat_frac_min, rat_frac_max] * period;
  /// early RAT drawn near 0.
  double po_rat_frac_min = 0.55, po_rat_frac_max = 1.0;
};

/// Draw one random boundary-constraint set for a block with the given
/// port counts. Early values are always <= late values.
BoundaryConstraints random_constraints(std::size_t num_pis,
                                       std::size_t num_pos,
                                       const ConstraintGenConfig& cfg,
                                       Rng& rng);

/// A nominal (non-random) constraint set used by examples and tests.
BoundaryConstraints nominal_constraints(std::size_t num_pis,
                                        std::size_t num_pos,
                                        double clock_period_ps = 1000.0);

}  // namespace tmm
