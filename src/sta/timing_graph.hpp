#pragma once
// Timing graph: the shared representation flat designs, interface-logic
// models (ILMs) and generated macro models are analyzed on.
//
// Nodes are pins. Delay arcs are either cell arcs (NLDM tables shared
// with the library or owned by the graph after merging) or wire arcs
// (constant Elmore delay with PERI-style slew degradation). Setup/hold
// check arcs are kept separately; they constrain required arrival times
// at flip-flop data pins instead of propagating values.
//
// The graph is mutable (macro generation removes pins and splices in
// re-characterized arcs); `compact()` drops dead nodes/arcs and the
// lazily computed topological order is invalidated by any mutation.

#include <cmath>
#include <deque>
#include <string>
#include <vector>

#include "liberty/cell.hpp"
#include "netlist/design.hpp"
#include "util/types.hpp"

namespace tmm {

using NodeId = std::uint32_t;

enum class NodeRole : std::uint8_t { kInternal, kPrimaryInput, kPrimaryOutput };

struct GraphNode {
  std::string name;
  NodeRole role = NodeRole::kInternal;
  /// Ordinal among PIs (resp. POs) when role is a boundary role;
  /// boundary constraints are indexed by this ordinal.
  std::uint32_t port_ordinal = 0;
  bool is_clock_root = false;
  bool in_clock_network = false;
  bool is_ff_clock = false;  ///< CK pin of a flip-flop
  bool is_ff_data = false;   ///< D pin of a flip-flop (check endpoint)
  bool dead = false;         ///< removed by merging
  /// Stage depth (cell arcs traversed from the nearest launch point);
  /// drives AOCV depth-based derating.
  std::uint32_t aocv_depth = 0;
  /// Static capacitive load this node drives (wire + sink pins), fF.
  /// Only meaningful for nodes with load-dependent out-arcs.
  double static_load_ff = 0.0;
  /// PO ordinals electrically on this node's net: their boundary load
  /// constraint adds to static_load_ff at analysis time.
  std::vector<std::uint32_t> attached_po_loads;
};

enum class GraphArcKind : std::uint8_t { kCell, kWire };

struct GraphArc {
  NodeId from = 0;
  NodeId to = 0;
  GraphArcKind kind = GraphArcKind::kCell;
  ArcSense sense = ArcSense::kPositiveUnate;
  bool is_launch = false;  ///< FF clock-to-Q arc
  bool dead = false;
  /// True when AOCV derates are already folded into the tables
  /// (re-characterized merged arcs, ETM arcs, reloaded models); the
  /// engine must not derate such arcs again.
  bool baked_derate = false;
  /// NLDM tables for cell arcs (null for wire arcs). Tables map
  /// (slew at `from`, load at `to`) -> delay / slew at `to`; 1-D tables
  /// ignore load (interior merged arcs with statically folded loads).
  const ElRf<Lut>* delay = nullptr;
  const ElRf<Lut>* out_slew = nullptr;
  /// Elmore wire delay for wire arcs (ps), identical early/late.
  double wire_delay_ps = 0.0;
};

struct CheckArc {
  NodeId clock = 0;  ///< CK pin
  NodeId data = 0;   ///< D pin
  bool is_setup = true;
  bool dead = false;
  /// Guard time table: (clock slew, data slew) -> guard (ps).
  const ElRf<Lut>* guard = nullptr;
};

class TimingGraph {
 public:
  NodeId add_node(GraphNode node);
  ArcId add_cell_arc(NodeId from, NodeId to, ArcSense sense,
                     const ElRf<Lut>* delay, const ElRf<Lut>* out_slew,
                     bool is_launch = false);
  ArcId add_wire_arc(NodeId from, NodeId to, double delay_ps);
  std::uint32_t add_check(NodeId clock, NodeId data, bool is_setup,
                          const ElRf<Lut>* guard);

  /// Take ownership of re-characterized tables; the returned pointer is
  /// stable for the lifetime of the graph.
  const ElRf<Lut>* own_tables(ElRf<Lut> tables);

  /// True if `tables` points into this graph's owned storage (i.e. the
  /// surface was re-characterized rather than shared with a library).
  bool owns_tables(const ElRf<Lut>* tables) const noexcept;
  const std::deque<ElRf<Lut>>& owned_tables() const noexcept {
    return owned_tables_;
  }

  /// Mark a node and all incident arcs/checks dead.
  void kill_node(NodeId n);
  void kill_arc(ArcId a);

  // --- Delta mutation API (incremental re-analysis) -------------------
  //
  // The plain mutators above invalidate the cached adjacency and
  // topological order, which makes per-pin what-if analysis O(V+E) per
  // mutation just to rebuild caches. The delta_* mutators below patch
  // the caches in place instead, under a contract the caller (see
  // macro/merge.hpp MergeDelta) must uphold:
  //   - caches must be materialized first (call topo_order() once);
  //   - an added arc must connect live nodes u -> v with u preceding v
  //     in the cached topological order (true for merge splices, whose
  //     endpoints were already ordered through the removed pin), so the
  //     cached order stays a valid order of the mutated graph;
  //   - a node marked dead via delta_set_node_dead stays in the cached
  //     topological order; consumers must skip dead nodes (Sta does).
  // Adjacency lists keep their ascending-arc-id order across kill /
  // restore / append, which is what makes re-relaxation order (and thus
  // floating-point results and tie-breaks) reproducible.

  /// Mark arc `a` dead and unlink it from the cached adjacency.
  void delta_kill_arc(ArcId a);
  /// Revive a delta-killed arc, re-linking it in ascending-id position.
  void delta_restore_arc(ArcId a);
  /// Append a cell arc without invalidating caches (see contract above).
  ArcId delta_add_cell_arc(NodeId from, NodeId to, ArcSense sense,
                           const ElRf<Lut>* delay, const ElRf<Lut>* out_slew,
                           bool is_launch = false);
  /// Flip a node's dead flag without touching arcs or caches.
  void delta_set_node_dead(NodeId n, bool dead);
  /// Drop every arc with id >= num_arcs and every owned table beyond
  /// num_tables (both appended during a delta), unlinking the dropped
  /// arcs from the cached adjacency. Pointers to surviving owned tables
  /// remain valid.
  void delta_truncate(std::size_t num_arcs, std::size_t num_tables);
  std::size_t num_owned_tables() const noexcept { return owned_tables_.size(); }

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_arcs() const noexcept { return arcs_.size(); }
  std::size_t num_checks() const noexcept { return checks_.size(); }
  std::size_t num_live_nodes() const;
  std::size_t num_live_arcs() const;

  GraphNode& node(NodeId n) { return nodes_.at(n); }
  const GraphNode& node(NodeId n) const { return nodes_.at(n); }
  GraphArc& arc(ArcId a) { return arcs_.at(a); }
  const GraphArc& arc(ArcId a) const { return arcs_.at(a); }
  CheckArc& check(std::uint32_t c) { return checks_.at(c); }
  const CheckArc& check(std::uint32_t c) const { return checks_.at(c); }
  const std::vector<CheckArc>& checks() const noexcept { return checks_; }

  /// Live in/out delay-arc ids of a node (adjacency is rebuilt lazily).
  const std::vector<ArcId>& fanin(NodeId n) const;
  const std::vector<ArcId>& fanout(NodeId n) const;
  /// Live check ids whose data pin is n.
  const std::vector<std::uint32_t>& checks_of(NodeId n) const;

  /// Topological order over live nodes (lazily recomputed after
  /// mutations). Throws std::runtime_error if the graph has a cycle.
  const std::vector<NodeId>& topo_order() const;

  /// Boundary node lists in ordinal order.
  const std::vector<NodeId>& primary_inputs() const noexcept { return pis_; }
  const std::vector<NodeId>& primary_outputs() const noexcept { return pos_; }
  NodeId clock_root() const noexcept { return clock_root_; }

  void set_primary_input(NodeId n, std::uint32_t ordinal, bool is_clock);
  void set_primary_output(NodeId n, std::uint32_t ordinal);

  /// Total owned-table storage in doubles (model-size accounting).
  std::size_t owned_table_doubles() const;

  /// Approximate resident size of the graph in bytes (nodes, arcs,
  /// checks, names, owned tables) — the model-usage-memory metric.
  std::size_t memory_bytes() const;

  /// Monotonic counter bumped by every structural mutation (plain
  /// mutators via invalidate(), delta_* mutators directly). Lets
  /// derived structures (the Sta's CSR + level schedule, sta/topology)
  /// cache against the graph and rebuild only when it actually changed.
  std::uint64_t structure_version() const noexcept {
    return structure_version_;
  }

 private:
  void invalidate() const;
  void rebuild_adjacency() const;

  std::vector<GraphNode> nodes_;
  std::vector<GraphArc> arcs_;
  std::vector<CheckArc> checks_;
  std::deque<ElRf<Lut>> owned_tables_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> pos_;
  NodeId clock_root_ = kInvalidId;

  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<ArcId>> fanin_;
  mutable std::vector<std::vector<ArcId>> fanout_;
  mutable std::vector<std::vector<std::uint32_t>> node_checks_;
  mutable bool topo_valid_ = false;
  mutable std::vector<NodeId> topo_;
  // Mutable: invalidate() is const (called from lazy cache fills'
  // mutation counterparts); the version only ever increases.
  mutable std::uint64_t structure_version_ = 0;
};

/// Build the flat timing graph of a design. Node ids equal pin ids.
TimingGraph build_timing_graph(const Design& design);

/// One cycle through live delay arcs, as node ids in traversal order
/// (cycle[i] feeds cycle[i+1], the last node feeds the first); empty if
/// the live graph is acyclic. Shared by TimingGraph::topo_order's error
/// message and the analysis-layer invariant checker.
std::vector<NodeId> find_cycle(const TimingGraph& g);

/// PERI-style slew degradation through a wire: the output slew of a wire
/// segment with Elmore delay `wire_delay` given input slew `slew_in`.
inline double wire_slew(double slew_in, double wire_delay) noexcept {
  const double d = 2.2 * wire_delay;
  return std::sqrt(slew_in * slew_in + d * d);
}

}  // namespace tmm
