#pragma once
// Boundary-timing query engine for the serving layer: answers
// (model, boundary constraints) -> BoundarySnapshot queries against a
// ModelRegistry, through a sharded LRU result cache.
//
// Concurrency model: the Evaluator itself is shared and thread-safe
// (the cache shards its locks); each worker thread owns a Scratch that
// holds one lazily-built Sta engine per model plus reusable buffers, so
// a steady-state cache miss allocates nothing.
//
// Cache keys are the raw IEEE-754 bit patterns of the constraint tuple
// (plus the model name and registry generation — a result computed
// against one hot-reload generation can never answer a query against
// another). With quantum_ps == 0 (the default) constraints
// are keyed and evaluated exactly, so served results stay bit-identical
// to the offline path; with quantum_ps > 0 constraints are snapped to
// the grid *before both keying and evaluation*, trading boundary
// precision for hit rate — a response is always the exact STA answer
// for the (possibly quantized) constraints it was computed from, never
// a neighbouring query's answer for different effective constraints.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/registry.hpp"
#include "serve/reload.hpp"
#include "sta/propagation.hpp"
#include "util/mutex.hpp"

namespace tmm::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Sharded LRU cache from an opaque key string to a BoundarySnapshot.
/// Shard = hash(key) % num_shards, one mutex + intrusive LRU list per
/// shard; capacity is split evenly across shards.
class ResultCache {
 public:
  ResultCache(std::size_t capacity, std::size_t num_shards = 8);

  /// Copy the cached snapshot into `out` (reusing its storage) and
  /// promote the entry to most-recently-used. False on miss.
  bool lookup(const std::string& key, BoundarySnapshot& out);

  /// Insert (or refresh) the snapshot under `key`, evicting the
  /// least-recently-used entry of the shard when full.
  void insert(const std::string& key, const BoundarySnapshot& snap);

  CacheStats stats() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::string key;
    BoundarySnapshot snap;
  };
  /// All shards share lock class "serve.cache.shard" (leaf lock; a
  /// thread never holds two shards at once — stats() visits them one
  /// at a time).
  struct Shard {
    Shard();  // out of line: binds mu to the shared lock class
    util::Mutex mu;
    std::list<Entry> lru TMM_GUARDED_BY(mu);  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        TMM_GUARDED_BY(mu);
  };

  Shard& shard_of(const std::string& key) noexcept;

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Invariant: hit/miss/eviction tallies are per-event counters only
  // read for reporting; no data is published through them, so relaxed
  // suffices.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

class Evaluator {
 public:
  struct Options {
    /// Constraint quantization grid in ps/fF (0 = exact; see header).
    double quantum_ps = 0.0;
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 8;
    Sta::Options sta;
  };

  /// Static mode: one immutable registry for the evaluator's lifetime
  /// (offline verification, unit tests). The caller keeps `registry`
  /// alive.
  Evaluator(const ModelRegistry& registry, Options opt);
  /// Managed mode: evaluate against whatever generation `manager`
  /// currently publishes. Each Scratch pins the generation it last saw
  /// and re-pins (dropping its per-model engines) when a reload swaps
  /// in a new one, so a worker mid-request keeps its registry alive
  /// even while the swap happens. Non-const: the server reaches the
  /// manager through here to run reloads (kReload / SIGHUP).
  Evaluator(RegistryManager& manager, Options opt);

  /// Per-thread state: one Sta engine per model (built on first use)
  /// plus reusable key/constraint buffers. NOT thread-safe; one Scratch
  /// per worker.
  struct Scratch {
    std::unordered_map<const RegistryEntry*, std::unique_ptr<Sta>> engines;
    /// Managed mode: the generation the engines were built against.
    std::shared_ptr<const ModelRegistry> pinned;
    BoundaryConstraints qbc;
    std::string key;
  };

  struct Result {
    bool cache_hit = false;
  };

  /// Answer one query into `out` (storage reused). Throws FlowError:
  /// kUnavailable for an unknown model, kConfig on boundary-arity
  /// mismatch, kNumeric from the STA numeric scan.
  Result evaluate(const std::string& model_name,
                  const BoundaryConstraints& bc, BoundarySnapshot& out,
                  Scratch& scratch, bool bypass_cache = false);

  CacheStats cache_stats() const noexcept { return cache_.stats(); }
  const Options& options() const noexcept { return opt_; }

  /// Managed mode's registry manager; nullptr in static mode.
  RegistryManager* manager() const noexcept { return manager_; }
  /// The registry queries run against right now: the published
  /// generation (managed) or a non-owning view of the static registry.
  std::shared_ptr<const ModelRegistry> current_registry() const {
    if (manager_ != nullptr) return manager_->current();
    return {std::shared_ptr<const ModelRegistry>{}, static_registry_};
  }

 private:
  /// Exactly one of these is set, for the evaluator's whole life.
  const ModelRegistry* static_registry_ = nullptr;
  RegistryManager* manager_ = nullptr;
  Options opt_;
  ResultCache cache_;
};

}  // namespace tmm::serve
