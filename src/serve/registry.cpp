#include "serve/registry.hpp"

#include <algorithm>
#include <filesystem>

#include "fault/fault.hpp"
#include "util/log.hpp"

namespace tmm::serve {

namespace fs = std::filesystem;
using fault::ErrorCode;
using fault::FlowError;

void ModelRegistry::load_file(const std::string& path) {
  MacroModel model = read_tmb_file(path);
  const std::string name = model.design_name;
  if (models_.count(name) != 0)
    throw FlowError(ErrorCode::kConfig, "serve.registry",
                    path + ": duplicate design name '" + name +
                        "' (already loaded from " + models_.at(name).path +
                        ")");

  RegistryEntry entry;
  entry.path = path;
  entry.num_pis =
      static_cast<std::uint32_t>(model.graph.primary_inputs().size());
  entry.num_pos =
      static_cast<std::uint32_t>(model.graph.primary_outputs().size());
  entry.model = std::move(model);
  RegistryEntry& placed =
      models_.emplace(name, std::move(entry)).first->second;

  // Materialize the graph's lazy caches now, single-threaded, so every
  // later access from concurrent workers is a pure const read. A cyclic
  // graph surfaces here as a parse-class failure rather than deep
  // inside a worker.
  try {
    placed.model.graph.topo_order();
    if (placed.model.graph.num_nodes() > 0) placed.model.graph.fanin(0);
  } catch (const std::exception& e) {
    models_.erase(name);
    throw FlowError(ErrorCode::kParse, "serve.registry",
                    path + ": model graph unusable: " + e.what());
  }
}

std::size_t ModelRegistry::load_directory(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec)
    throw FlowError(ErrorCode::kIo, "serve.registry",
                    "cannot read model directory " + dir + ": " +
                        ec.message());
  std::vector<std::string> paths;
  for (const fs::directory_entry& e : it)
    if (e.path().extension() == ".tmb") paths.push_back(e.path().string());
  // Sorted load order makes duplicate-name resolution (and therefore
  // startup diagnostics) deterministic across filesystems.
  std::sort(paths.begin(), paths.end());

  std::size_t loaded = 0;
  for (const std::string& path : paths) {
    try {
      load_file(path);
      ++loaded;
    } catch (const std::exception& e) {
      failures_.push_back({path, e.what()});
      log_error("serve: cannot load %s, skipped: %s", path.c_str(),
                e.what());
    }
  }
  if (loaded == 0 && !paths.empty())
    throw FlowError(ErrorCode::kUnavailable, "serve.registry",
                    "no loadable model in " + dir + " (first: " +
                        failures_.front().path + ": " +
                        failures_.front().error + ")");
  return loaded;
}

const RegistryEntry* ModelRegistry::find(
    const std::string& name) const noexcept {
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : &it->second;
}

}  // namespace tmm::serve
