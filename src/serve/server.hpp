#pragma once
// `tmm serve`: thread-pool socket server answering boundary-timing
// queries over the length-prefixed protocol (serve/protocol.hpp).
//
// Architecture: one acceptor (the thread calling serve()) feeds
// accepted connections to N worker threads through a queue; a worker
// owns a connection until EOF. Per wakeup a worker drains up to
// batch_max already-queued frames from its connection (adaptive
// batching: one blocking read, then non-blocking drains), answers the
// whole batch, then writes all responses back in order.
//
// Shutdown: stop() is async-signal-safe (one write to a self-pipe);
// the acceptor stops accepting, workers finish and answer their
// current batch, connections are closed (clients observe EOF), and
// serve() returns — the graceful SIGTERM drain the CI smoke job
// asserts on.
//
// Failure policy: a malformed frame gets a kBadRequest response on the
// same connection; a socket-level failure (or an injected
// serve.write_response fault) aborts only that connection and is
// counted in serve.conn_aborts — the server keeps serving.
//
// Admission control: evaluate requests are admitted against a bounded
// in-flight budget at frame receipt — a request over the budget, or
// one whose projected queue wait (EWMA of recent evaluation times)
// already exceeds its deadline, is rejected immediately with
// kOverloaded instead of timing out after consuming an evaluator
// slot. Admin traffic is never shed.
//
// Hot-reload: when the evaluator runs in managed mode
// (serve/reload.hpp), a kReload admin request — or request_reload(),
// the CLI's SIGHUP hook — triggers a RegistryManager::reload() and the
// next evaluate on each worker re-pins the new generation. A reload
// runs on the worker answering the kReload frame (serialized by the
// manager), or on a dedicated thread for the signal path.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/evaluator.hpp"
#include "serve/stats.hpp"
#include "util/mutex.hpp"

namespace tmm::serve {

struct ServerOptions {
  /// Unix-domain socket path; preferred when non-empty.
  std::string unix_path;
  /// TCP port on 127.0.0.1 when unix_path is empty; 0 = ephemeral
  /// (query the bound port with bound_port()).
  int tcp_port = 0;
  int num_threads = 4;
  /// Max requests answered per worker wakeup (adaptive batching).
  int batch_max = 16;
  /// Slow-request log: evaluate requests slower than this (µs) are
  /// retained in the stats slow ring and sampled into log_warn;
  /// 0 disables (`tmm serve --slow-ms`).
  std::uint64_t slow_threshold_us = 0;
  /// log_warn every Nth slow request (`--slow-sample`).
  std::uint32_t slow_sample = 1;
  /// Per-thread flight-recorder ring capacity; 0 leaves the recorder
  /// untouched (`tmm serve --flight`).
  std::size_t flight_capacity = 256;
  /// Directory for automatic flight dumps (dump-on-fault, dump-on-
  /// connection-abort); empty disables both (`--dump-dir`).
  std::string dump_dir;
  /// In-flight evaluate budget for admission control; 0 derives
  /// num_threads * batch_max at start() (`--max-inflight`).
  std::size_t max_inflight = 0;
};

class Server {
 public:
  Server(Evaluator& evaluator, ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen. Throws FlowError(kIo) when the address is
  /// unavailable, kConfig on nonsense options.
  void start();

  /// Accept and serve until stop(); returns after the graceful drain.
  void serve();

  /// Request shutdown. Async-signal-safe; callable from any thread or
  /// a signal handler, repeatedly.
  void stop() noexcept;

  /// Request a hot reload of the models directory. Async-signal-safe
  /// (the CLI's SIGHUP handler); a no-op when the evaluator has no
  /// registry manager. The reload itself runs on the reload thread.
  void request_reload() noexcept;

  /// Port actually bound (TCP mode), valid after start().
  int bound_port() const noexcept { return bound_port_; }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses_ok = 0;
    std::uint64_t request_errors = 0;  ///< non-ok responses sent
    std::uint64_t conn_aborts = 0;     ///< connections dropped on error
    std::uint64_t batches = 0;
    std::uint64_t shed_overload = 0;   ///< kOverloaded rejections
  };
  Stats stats() const noexcept;

  /// Windowed serving statistics (the kStats/kHealth backing store);
  /// non-null after start().
  const ServeStats* serve_stats() const noexcept { return stats_.get(); }

 private:
  void worker_main();
  void handle_connection(int fd, Evaluator::Scratch& scratch);
  /// -1 when stopping and the queue is empty.
  int pop_connection();
  void reload_main();
  /// The raw-JSON reload + admission sections spliced into stats_json.
  std::string stats_extra_json() const;

  Evaluator& eval_;
  ServerOptions opt_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int reload_pipe_[2] = {-1, -1};
  int bound_port_ = -1;
  std::size_t max_inflight_ = 0;  ///< resolved budget (>= 1)
  // Invariant: stopping_ is a latch only ever flipped false -> true;
  // every consumer tolerates reading it one iteration late (workers
  // re-check after the cv wakeup, the acceptor after poll), so all
  // accesses are relaxed — the queue mutex and the self-pipe provide
  // the actual synchronization.
  std::atomic<bool> stopping_{false};
  bool unlink_on_close_ = false;
  bool fire_hook_registered_ = false;
  std::unique_ptr<ServeStats> stats_;

  /// Lock class "serve.server.queue". Guards only the handoff queue;
  /// leaf lock (nothing else is acquired while holding it).
  util::Mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_ TMM_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  std::thread reload_thread_;

  // Invariant: inflight_ is a semaphore-style occupancy count; each
  // admitted request increments exactly once and decrements exactly
  // once (response written or connection abort). The admission check
  // tolerates reading a momentarily stale count, so relaxed suffices.
  std::atomic<std::uint64_t> inflight_{0};
  // Invariant: a racing EWMA store may drop an update — it is a
  // smoothed advisory estimate, never a correctness input.
  std::atomic<double> ewma_eval_us_{0.0};

  // Invariant: the stats counters are monotonic and independent — each
  // is a standalone event count read only after the fact (stats(),
  // serve() epilogue), so relaxed increments and loads suffice; no
  // other data is published through them.
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_ok_{0};
  std::atomic<std::uint64_t> request_errors_{0};
  std::atomic<std::uint64_t> conn_aborts_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> shed_overload_{0};
};

}  // namespace tmm::serve
