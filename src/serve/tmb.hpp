#pragma once
// Compact binary macro-model format (`.tmb`) for the serving engine
// (docs/SERVING.md).
//
// The offline flow writes macro models as self-contained text (`.macro`,
// macro/model_io.hpp), which is the right archival form but costs a full
// tokenize-and-validate pass per load. A serving process loads many
// models at startup and must not pay that: `.tmb` is the same model as
// one versioned, checksummed, little-endian flat image — fixed-size node
// /arc/check records plus a single contiguous double arena holding every
// LUT surface — so loading is one read, one CRC pass and one linear
// record walk with no tokenizing.
//
// Doubles are stored as raw IEEE-754 bit patterns, so a model packed
// from a parsed `.macro` evaluates bit-identically to the text-loaded
// original — the property the serve loadgen asserts against the offline
// `tmm evaluate` path.
//
// Corruption (bad magic, wrong version, CRC mismatch, out-of-range
// record references) raises fault::FlowError(kParse) with the file as
// context; a torn or truncated file can never load as a wrong model.

#include <cstdint>
#include <string>

#include "macro/macro_model.hpp"

namespace tmm::serve {

/// Format constants, exposed for tests and the corruption corpus.
inline constexpr char kTmbMagic[4] = {'T', 'M', 'B', '1'};
inline constexpr std::uint32_t kTmbVersion = 1;
/// Header: magic(4) + version(4) + payload_size(8) + payload_crc(4).
inline constexpr std::size_t kTmbHeaderBytes = 20;

/// CRC-32 (IEEE 802.3, reflected) of `data`; the checksum stamped into
/// every `.tmb` header and validated on load.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// Serialize `model` into the binary image (header + payload). Dead
/// nodes/arcs/checks are compacted out exactly as the text writer does,
/// so pack(read(".macro")) preserves record order and therefore
/// evaluation bit-for-bit.
std::string pack_model(const MacroModel& model);

/// Parse a binary image produced by pack_model. `source` is the error
/// context (file path). Throws fault::FlowError(kParse) on any
/// corruption, kNumeric via Lut validation on non-finite surfaces.
MacroModel unpack_model(const std::string& image,
                        const std::string& source = "<tmb>");

/// Pack to `path` via util::atomic_write_file; returns bytes written.
std::size_t write_tmb_file(const MacroModel& model, const std::string& path);

/// Load a `.tmb` file. Throws fault::FlowError(kIo) when unreadable,
/// kParse/kNumeric on corruption. Fault site: serve.load_model.
MacroModel read_tmb_file(const std::string& path);

}  // namespace tmm::serve
