#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "util/errno_string.hpp"
#include "util/log.hpp"

namespace tmm::serve {

using fault::ErrorCode;
using fault::FlowError;

namespace {

const util::lockorder::LockClass kQueueLockClass("serve.server.queue");

constexpr double kLatencyBoundsUs[] = {50,    100,    200,    500,    1000,
                                       2000,  5000,   10000,  20000,  50000,
                                       100000, 500000, 1000000};
constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64};

obs::Histogram& latency_hist() {
  static obs::Histogram& h = obs::histogram("serve.latency_us", kLatencyBoundsUs);
  return h;
}
obs::Histogram& batch_hist() {
  static obs::Histogram& h = obs::histogram("serve.batch_size", kBatchBounds);
  return h;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw FlowError(ErrorCode::kIo, "serve.server",
                  what + ": " + util::errno_string(errno));
}

/// One decoded (or undecodable) request of a batch, stamped on receipt
/// so deadlines measure queueing + evaluation, not just evaluation.
struct Pending {
  Request req;
  std::chrono::steady_clock::time_point arrival;
  bool parse_failed = false;
  bool parse_injected = false;
  std::string parse_error;
};

}  // namespace

Server::Server(Evaluator& evaluator, ServerOptions opt)
    : eval_(evaluator), opt_(std::move(opt)), mu_(kQueueLockClass) {}

Server::~Server() {
  stop();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (unlink_on_close_) ::unlink(opt_.unix_path.c_str());
  // Workers are joined, but lock anyway: the guarded-by contract has no
  // destructor exemption, and the lock is uncontended here.
  util::MutexLock lock(mu_);
  for (const int fd : pending_) ::close(fd);
}

void Server::start() {
  if (opt_.num_threads < 1)
    throw FlowError(ErrorCode::kConfig, "serve.server",
                    "--threads must be >= 1");
  if (opt_.batch_max < 1)
    throw FlowError(ErrorCode::kConfig, "serve.server",
                    "--batch must be >= 1");
  if (opt_.unix_path.empty() && opt_.tcp_port < 0)
    throw FlowError(ErrorCode::kConfig, "serve.server",
                    "either a unix socket path or a TCP port is required");

  if (::pipe(stop_pipe_) != 0) throw_errno("cannot create stop pipe");
  // A response written into a connection the client already closed
  // must surface as EPIPE (handled per connection), not kill the
  // process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): process-wide disposition,
  // set once in start() before any worker thread exists.
  ::signal(SIGPIPE, SIG_IGN);

  if (!opt_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof(addr.sun_path))
      throw FlowError(ErrorCode::kConfig, "serve.server",
                      "unix socket path too long: " + opt_.unix_path);
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("cannot create unix socket");
    ::unlink(opt_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("cannot bind " + opt_.unix_path);
    unlink_on_close_ = true;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("cannot create TCP socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("cannot bind 127.0.0.1:" + std::to_string(opt_.tcp_port));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0)
      bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) throw_errno("cannot listen");
}

void Server::stop() noexcept {
  // Only async-signal-safe operations here: stop() is called from the
  // CLI's SIGTERM handler. The acceptor wakes on the pipe and does the
  // non-AS-safe part (cv notify, joins) in serve()'s epilogue.
  // Relaxed: the exchange is only an idempotency latch (first caller
  // writes the pipe); ordering comes from the self-pipe write itself.
  if (stopping_.exchange(true, std::memory_order_relaxed)) return;
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

int Server::pop_connection() {
  util::MutexUniqueLock lock(mu_);
  // Explicit wait loop (not the predicate overload) so every access to
  // pending_ is lexically under the scoped capability.
  while (pending_.empty() && !stopping_.load(std::memory_order_relaxed))
    cv_.wait(lock.native());
  if (pending_.empty()) return -1;
  const int fd = pending_.front();
  pending_.pop_front();
  return fd;
}

void Server::serve() {
  static obs::Counter& g_conns = obs::counter("serve.connections");
  const auto t0 = std::chrono::steady_clock::now();

  workers_.reserve(static_cast<std::size_t>(opt_.num_threads));
  for (int i = 0; i < opt_.num_threads; ++i)
    workers_.emplace_back([this] { worker_main(); });

  pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    g_conns.add();
    {
      util::MutexLock lock(mu_);
      pending_.push_back(conn);
    }
    cv_.notify_one();
  }

  stop();
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Connections the workers never picked up: close without answering
  // (the client observes EOF, the protocol's retry signal).
  {
    util::MutexLock lock(mu_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  static obs::Gauge& g_qps = obs::gauge("serve.qps");
  if (secs > 0)
    g_qps.set(static_cast<double>(
                  requests_.load(std::memory_order_relaxed)) /
              secs);
  static obs::Gauge& g_hit_rate = obs::gauge("serve.cache_hit_rate");
  g_hit_rate.set(eval_.cache_stats().hit_rate());
}

void Server::worker_main() {
  Evaluator::Scratch scratch;
  while (true) {
    const int fd = pop_connection();
    if (fd < 0) return;
    handle_connection(fd, scratch);
    ::close(fd);
  }
}

void Server::handle_connection(int fd, Evaluator::Scratch& scratch) {
  static obs::Counter& g_requests = obs::counter("serve.requests");
  static obs::Counter& g_ok = obs::counter("serve.responses_ok");
  static obs::Counter& g_errors = obs::counter("serve.request_errors");
  static obs::Counter& g_hits = obs::counter("serve.cache_hits");
  static obs::Counter& g_misses = obs::counter("serve.cache_misses");
  static obs::Counter& g_aborts = obs::counter("serve.conn_aborts");
  static obs::Counter& g_batches = obs::counter("serve.batches");
  static obs::Counter& g_deadline = obs::counter("serve.deadline_exceeded");

  std::string frame;
  std::vector<Pending> batch;
  bool eof = false;

  auto receive = [&]() -> bool {  // false on EOF
    if (!read_frame(fd, frame)) return false;
    Pending p;
    p.arrival = std::chrono::steady_clock::now();
    try {
      p.req = decode_request(frame);
    } catch (const FlowError& e) {
      // A malformed payload is frame-local — framing stays in sync, so
      // answer kBadRequest and keep the connection.
      p.parse_failed = true;
      p.parse_injected = e.code() == ErrorCode::kInjected;
      p.parse_error = e.what();
    }
    batch.push_back(std::move(p));
    return true;
  };

  try {
    while (!eof) {
      // Blocking wait for the first frame, in 100 ms slices so a drain
      // request is observed even on an idle connection.
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll failed");
      }
      if (stopping_.load(std::memory_order_relaxed) && rc == 0) return;
      if (rc == 0) continue;
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return;

      batch.clear();
      if (!receive()) return;
      // Adaptive drain: answer every frame already queued on the
      // socket (up to batch_max) in one wakeup, amortizing the
      // response writes.
      while (batch.size() < static_cast<std::size_t>(opt_.batch_max)) {
        pollfd more{fd, POLLIN, 0};
        if (::poll(&more, 1, 0) <= 0 || (more.revents & POLLIN) == 0) break;
        if (!receive()) {
          eof = true;
          break;
        }
      }

      batches_.fetch_add(1, std::memory_order_relaxed);
      g_batches.add();
      batch_hist().observe(static_cast<double>(batch.size()));

      for (const Pending& p : batch) {
        Response resp;
        resp.request_id = p.req.request_id;
        if (p.parse_failed) {
          resp.status = p.parse_injected ? ResponseStatus::kInternalError
                                         : ResponseStatus::kBadRequest;
          resp.error = p.parse_error;
        } else if (stopping_.load(std::memory_order_relaxed)) {
          resp.status = ResponseStatus::kShuttingDown;
          resp.error = "server is draining";
        } else if (p.req.deadline_ms > 0 &&
                   std::chrono::steady_clock::now() - p.arrival >=
                       std::chrono::milliseconds(p.req.deadline_ms)) {
          resp.status = ResponseStatus::kDeadlineExceeded;
          resp.error = "deadline of " + std::to_string(p.req.deadline_ms) +
                       " ms elapsed before evaluation";
          g_deadline.add();
        } else {
          try {
            const Evaluator::Result r = eval_.evaluate(
                p.req.model, p.req.bc, resp.snap, scratch, p.req.no_cache);
            resp.cache_hit = r.cache_hit;
            (r.cache_hit ? g_hits : g_misses).add();
          } catch (const FlowError& e) {
            resp.status = e.code() == ErrorCode::kUnavailable
                              ? ResponseStatus::kUnknownModel
                          : e.code() == ErrorCode::kConfig
                              ? ResponseStatus::kBadRequest
                              : ResponseStatus::kInternalError;
            resp.error = e.what();
          } catch (const std::exception& e) {
            resp.status = ResponseStatus::kInternalError;
            resp.error = e.what();
          }
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        g_requests.add();
        if (resp.status == ResponseStatus::kOk) {
          responses_ok_.fetch_add(1, std::memory_order_relaxed);
          g_ok.add();
        } else {
          request_errors_.fetch_add(1, std::memory_order_relaxed);
          g_errors.add();
        }
        fault::inject("serve.write_response");
        write_frame(fd, encode_response(resp));
        latency_hist().observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - p.arrival)
                .count());
      }
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
  } catch (const std::exception& e) {
    // Socket-level failure (peer vanished mid-response, injected
    // serve.write_response fault): drop this connection, keep serving.
    conn_aborts_.fetch_add(1, std::memory_order_relaxed);
    g_aborts.add();
    log_error("serve: connection aborted: %s", e.what());
  }
}

Server::Stats Server::stats() const noexcept {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.request_errors = request_errors_.load(std::memory_order_relaxed);
  s.conn_aborts = conn_aborts_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tmm::serve
