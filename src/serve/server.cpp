#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <sstream>

#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "util/errno_string.hpp"
#include "util/log.hpp"

namespace tmm::serve {

using fault::ErrorCode;
using fault::FlowError;

namespace {

const util::lockorder::LockClass kQueueLockClass("serve.server.queue");

constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32, 64};

obs::Histogram& latency_hist() {
  // Log-spaced: tail percentiles (p99.9) of a long-tailed latency
  // distribution need geometric buckets; the old linear bounds
  // quantized everything past 1 ms into a handful of coarse cells.
  static const std::vector<double> bounds = default_latency_bounds();
  static obs::Histogram& h = obs::histogram("serve.latency_us", bounds);
  return h;
}
obs::Histogram& batch_hist() {
  static obs::Histogram& h = obs::histogram("serve.batch_size", kBatchBounds);
  return h;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw FlowError(ErrorCode::kIo, "serve.server",
                  what + ": " + util::errno_string(errno));
}

/// One decoded (or undecodable) request of a batch, stamped on receipt
/// so deadlines measure queueing + evaluation, not just evaluation.
struct Pending {
  Request req;
  std::chrono::steady_clock::time_point arrival;
  std::uint64_t arrival_us = 0;  ///< same instant on the trace clock
  double parse_us = 0.0;
  bool parse_failed = false;
  bool parse_injected = false;
  bool admitted = false;        ///< holds one in-flight budget slot
  bool shed_overload = false;   ///< rejected at admission
  std::string parse_error;
};

/// JSON string escaping for server-composed fragments (reload errors).
std::string json_escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) noexcept {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

Server::Server(Evaluator& evaluator, ServerOptions opt)
    : eval_(evaluator), opt_(std::move(opt)), mu_(kQueueLockClass) {}

Server::~Server() {
  stop();
  // The dump-on-fault hook captures only the dump path, but clearing
  // it here keeps a dead server from writing dumps for later faults.
  if (fire_hook_registered_) fault::set_fire_hook({});
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  if (reload_thread_.joinable()) reload_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
  if (reload_pipe_[0] >= 0) ::close(reload_pipe_[0]);
  if (reload_pipe_[1] >= 0) ::close(reload_pipe_[1]);
  if (unlink_on_close_) ::unlink(opt_.unix_path.c_str());
  // Workers are joined, but lock anyway: the guarded-by contract has no
  // destructor exemption, and the lock is uncontended here.
  util::MutexLock lock(mu_);
  for (const int fd : pending_) ::close(fd);
}

void Server::start() {
  if (opt_.num_threads < 1)
    throw FlowError(ErrorCode::kConfig, "serve.server",
                    "--threads must be >= 1");
  if (opt_.batch_max < 1)
    throw FlowError(ErrorCode::kConfig, "serve.server",
                    "--batch must be >= 1");
  if (opt_.unix_path.empty() && opt_.tcp_port < 0)
    throw FlowError(ErrorCode::kConfig, "serve.server",
                    "either a unix socket path or a TCP port is required");

  // Resolved admission budget: enough slots to keep every worker's
  // batch full, never fewer than one.
  max_inflight_ = opt_.max_inflight != 0
                      ? opt_.max_inflight
                      : static_cast<std::size_t>(opt_.num_threads) *
                            static_cast<std::size_t>(opt_.batch_max);
  if (max_inflight_ == 0) max_inflight_ = 1;

  // Telemetry before the socket exists: the admin channel must be able
  // to answer kStats/kHealth from the very first connection. The model
  // list is the startup generation's; models introduced by a later
  // reload aggregate into the global section only.
  {
    const std::shared_ptr<const ModelRegistry> reg = eval_.current_registry();
    std::vector<std::string> models;
    models.reserve(reg->entries().size());
    for (const auto& [name, entry] : reg->entries())
      models.push_back(name);
    ServeStats::Options sopt;
    sopt.slow_threshold_us = opt_.slow_threshold_us;
    sopt.slow_sample = opt_.slow_sample;
    stats_ = std::make_unique<ServeStats>(std::move(models),
                                          obs::trace_now_us(), sopt);
  }
  if (opt_.flight_capacity > 0)
    obs::set_flight_recorder_enabled(true, opt_.flight_capacity);
  if (!opt_.dump_dir.empty()) {
    // Dump-on-fault: when any serve.* injection site fires, freeze the
    // last-N-requests picture next to the failure. The hook runs with
    // no fault-layer locks held and must never throw.
    const std::string dir = opt_.dump_dir;
    fault::set_fire_hook([dir](const char* site) {
      const std::string_view sv(site);
      if (!sv.starts_with("serve.")) return;
      std::string name(sv);
      for (char& c : name)
        if (c == '.') c = '_';
      obs::write_flight_dump_file(dir + "/flight." + name + ".json");
    });
    fire_hook_registered_ = true;
  }

  if (::pipe(stop_pipe_) != 0) throw_errno("cannot create stop pipe");
  if (::pipe(reload_pipe_) != 0) throw_errno("cannot create reload pipe");
  // A response written into a connection the client already closed
  // must surface as EPIPE (handled per connection), not kill the
  // process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): process-wide disposition,
  // set once in start() before any worker thread exists.
  ::signal(SIGPIPE, SIG_IGN);

  if (!opt_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt_.unix_path.size() >= sizeof(addr.sun_path))
      throw FlowError(ErrorCode::kConfig, "serve.server",
                      "unix socket path too long: " + opt_.unix_path);
    std::strncpy(addr.sun_path, opt_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("cannot create unix socket");
    ::unlink(opt_.unix_path.c_str());  // stale socket from a dead server
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("cannot bind " + opt_.unix_path);
    unlink_on_close_ = true;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("cannot create TCP socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("cannot bind 127.0.0.1:" + std::to_string(opt_.tcp_port));
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0)
      bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) throw_errno("cannot listen");
}

void Server::stop() noexcept {
  // Only async-signal-safe operations here: stop() is called from the
  // CLI's SIGTERM handler. The acceptor wakes on the pipe and does the
  // non-AS-safe part (cv notify, joins) in serve()'s epilogue.
  // Relaxed: the exchange is only an idempotency latch (first caller
  // writes the pipe); ordering comes from the self-pipe write itself.
  if (stopping_.exchange(true, std::memory_order_relaxed)) return;
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::request_reload() noexcept {
  // AS-safe (the CLI's SIGHUP handler): one pipe write; the reload
  // thread consumes the byte and runs the actual reload.
  if (reload_pipe_[1] >= 0) {
    const char byte = 'r';
    [[maybe_unused]] const ssize_t n = ::write(reload_pipe_[1], &byte, 1);
  }
}

void Server::reload_main() {
  // Waits on the reload pipe; the stop byte is never consumed, so its
  // level-triggered POLLIN also wakes this thread for shutdown.
  pollfd fds[2] = {{reload_pipe_[0], POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
  while (!stopping_.load(std::memory_order_relaxed)) {
    fds[0].revents = fds[1].revents = 0;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    char byte = 0;
    if (::read(reload_pipe_[0], &byte, 1) <= 0) return;
    if (RegistryManager* mgr = eval_.manager()) mgr->reload();
  }
}

std::string Server::stats_extra_json() const {
  std::string out;
  if (const RegistryManager* mgr = eval_.manager()) {
    const RegistryManager::Counters c = mgr->counters();
    out += "\"reload\": {\"generation\": " + std::to_string(c.generation);
    out += ", \"reloads_ok\": " + std::to_string(c.reloads_ok);
    out += ", \"reload_failures\": " + std::to_string(c.reload_failures);
    out += ", \"last_swap_us\": " + std::to_string(c.last_swap_us);
    out += ", \"last_error\": " + json_escaped(c.last_error);
    out += "},\n  ";
  }
  out += "\"admission\": {\"max_inflight\": " + std::to_string(max_inflight_);
  out += ", \"inflight\": " +
         std::to_string(inflight_.load(std::memory_order_relaxed));
  out += ", \"shed_overload\": " +
         std::to_string(shed_overload_.load(std::memory_order_relaxed));
  std::ostringstream ewma;
  ewma << ewma_eval_us_.load(std::memory_order_relaxed);
  out += ", \"ewma_eval_us\": " + ewma.str();
  out += "}";
  return out;
}

int Server::pop_connection() {
  util::MutexUniqueLock lock(mu_);
  // Explicit wait loop (not the predicate overload) so every access to
  // pending_ is lexically under the scoped capability.
  while (pending_.empty() && !stopping_.load(std::memory_order_relaxed))
    cv_.wait(lock.native());
  if (pending_.empty()) return -1;
  const int fd = pending_.front();
  pending_.pop_front();
  return fd;
}

void Server::serve() {
  static obs::Counter& g_conns = obs::counter("serve.connections");
  const auto t0 = std::chrono::steady_clock::now();

  workers_.reserve(static_cast<std::size_t>(opt_.num_threads));
  for (int i = 0; i < opt_.num_threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
  if (eval_.manager() != nullptr)
    reload_thread_ = std::thread([this] { reload_main(); });

  pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    g_conns.add();
    {
      util::MutexLock lock(mu_);
      pending_.push_back(conn);
    }
    cv_.notify_one();
  }

  stop();
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  if (reload_thread_.joinable()) reload_thread_.join();
  // Connections the workers never picked up: close without answering
  // (the client observes EOF, the protocol's retry signal).
  {
    util::MutexLock lock(mu_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  static obs::Gauge& g_qps = obs::gauge("serve.qps");
  if (secs > 0)
    g_qps.set(static_cast<double>(
                  requests_.load(std::memory_order_relaxed)) /
              secs);
  static obs::Gauge& g_hit_rate = obs::gauge("serve.cache_hit_rate");
  g_hit_rate.set(eval_.cache_stats().hit_rate());
}

void Server::worker_main() {
  Evaluator::Scratch scratch;
  while (true) {
    const int fd = pop_connection();
    if (fd < 0) return;
    handle_connection(fd, scratch);
    ::close(fd);
  }
}

void Server::handle_connection(int fd, Evaluator::Scratch& scratch) {
  static obs::Counter& g_requests = obs::counter("serve.requests");
  static obs::Counter& g_ok = obs::counter("serve.responses_ok");
  static obs::Counter& g_errors = obs::counter("serve.request_errors");
  static obs::Counter& g_hits = obs::counter("serve.cache_hits");
  static obs::Counter& g_misses = obs::counter("serve.cache_misses");
  static obs::Counter& g_aborts = obs::counter("serve.conn_aborts");
  static obs::Counter& g_batches = obs::counter("serve.batches");
  static obs::Counter& g_deadline = obs::counter("serve.deadline_exceeded");
  static obs::Counter& g_admin = obs::counter("serve.admin_requests");
  static obs::Counter& g_overload = obs::counter("serve.shed_overload");

  std::string frame;
  std::vector<Pending> batch;
  bool eof = false;

  auto receive = [&]() -> bool {  // false on EOF
    if (!read_frame(fd, frame)) return false;
    Pending p;
    p.arrival = std::chrono::steady_clock::now();
    p.arrival_us = obs::trace_now_us();
    try {
      p.req = decode_request(frame);
    } catch (const FlowError& e) {
      // A malformed payload is frame-local — framing stays in sync, so
      // answer kBadRequest and keep the connection.
      p.parse_failed = true;
      p.parse_injected = e.code() == ErrorCode::kInjected;
      p.parse_error = e.what();
    }
    // Admission control, decided at receipt so an over-budget request
    // is rejected before it queues behind a full batch. The slot is
    // held until the response is written (or the connection aborts).
    if (!p.parse_failed && p.req.kind == RequestKind::kEvaluate) {
      const std::uint64_t in =
          inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
      p.admitted = true;
      bool reject = in > max_inflight_;
      if (!reject && p.req.deadline_ms > 0) {
        // Deadline-aware admission: with `in` requests ahead of
        // num_threads workers, the projected queue wait is the EWMA of
        // recent evaluation times scaled by the backlog depth; a
        // request that cannot make its deadline is shed now instead of
        // timing out after consuming an evaluator slot.
        const double ewma = ewma_eval_us_.load(std::memory_order_relaxed);
        const auto workers = static_cast<std::uint64_t>(opt_.num_threads);
        if (ewma > 0.0 && in > workers) {
          const double wait_us = static_cast<double>(in - workers) * ewma /
                                 static_cast<double>(workers);
          if (wait_us / 1000.0 >= static_cast<double>(p.req.deadline_ms))
            reject = true;
        }
      }
      if (reject) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        p.admitted = false;
        p.shed_overload = true;
      }
    }
    p.parse_us = us_between(p.arrival, std::chrono::steady_clock::now());
    batch.push_back(std::move(p));
    return true;
  };

  // A connection abort mid-batch must not leak budget slots.
  auto release_admitted = [&]() {
    for (Pending& p : batch) {
      if (!p.admitted) continue;
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      p.admitted = false;
    }
  };

  try {
    while (!eof) {
      // Blocking wait for the first frame, in 100 ms slices so a drain
      // request is observed even on an idle connection.
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll failed");
      }
      if (stopping_.load(std::memory_order_relaxed) && rc == 0) return;
      if (rc == 0) continue;
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return;

      batch.clear();
      if (!receive()) return;
      // Adaptive drain: answer every frame already queued on the
      // socket (up to batch_max) in one wakeup, amortizing the
      // response writes.
      while (batch.size() < static_cast<std::size_t>(opt_.batch_max)) {
        pollfd more{fd, POLLIN, 0};
        if (::poll(&more, 1, 0) <= 0 || (more.revents & POLLIN) == 0) break;
        if (!receive()) {
          eof = true;
          break;
        }
      }

      batches_.fetch_add(1, std::memory_order_relaxed);
      g_batches.add();
      batch_hist().observe(static_cast<double>(batch.size()));

      for (Pending& p : batch) {
        Response resp;
        resp.request_id = p.req.request_id;
        const bool is_admin =
            !p.parse_failed && p.req.kind != RequestKind::kEvaluate;
        ShedKind shed = ShedKind::kNone;
        double stage_cache_us = 0.0;
        double stage_eval_us = 0.0;
        if (p.parse_failed) {
          resp.status = p.parse_injected ? ResponseStatus::kInternalError
                                         : ResponseStatus::kBadRequest;
          resp.error = p.parse_error;
        } else if (is_admin) {
          // Admin introspection: answered right here from pre-
          // aggregated state — no STA, no result cache, no interaction
          // with the evaluation hot path beyond this worker's turn in
          // the batch. Health still answers while draining (that IS
          // the signal). kReload runs the whole load + validate + swap
          // on this worker — serialized by the manager, and every
          // other worker keeps answering from its pinned generation
          // meanwhile.
          resp.admin = true;
          const std::uint64_t now_us = obs::trace_now_us();
          if (p.req.kind == RequestKind::kStats) {
            resp.text = stats_->stats_json(now_us, stats_extra_json());
          } else if (p.req.kind == RequestKind::kHealth) {
            const std::shared_ptr<const ModelRegistry> reg =
                eval_.current_registry();
            RegistryManager::Counters rc;
            if (const RegistryManager* mgr = eval_.manager())
              rc = mgr->counters();
            resp.text = stats_->health_json(
                now_us, stopping_.load(std::memory_order_relaxed),
                reg->entries().size(), reg->failures().size(), rc.generation,
                rc.reloads_ok, rc.reload_failures);
          } else if (p.req.kind == RequestKind::kReload) {
            if (RegistryManager* mgr = eval_.manager()) {
              const ReloadResult r = mgr->reload();
              std::string text = "{\"ok\": ";
              text += r.ok ? "true" : "false";
              text += ", \"generation\": " + std::to_string(r.generation);
              text += ", \"models_loaded\": " + std::to_string(r.models_loaded);
              text += ", \"load_failures\": " + std::to_string(r.load_failures);
              std::ostringstream us;
              us << ", \"reload_us\": " << r.reload_us << ", \"swap_us\": "
                 << r.swap_us;
              text += us.str();
              const RegistryManager::Counters c = mgr->counters();
              text += ", \"reloads_ok\": " + std::to_string(c.reloads_ok);
              text +=
                  ", \"reload_failures\": " + std::to_string(c.reload_failures);
              text += ", \"error\": " + json_escaped(r.error);
              text += "}\n";
              resp.text = std::move(text);
            } else {
              resp.text =
                  "{\"ok\": false, \"error\": \"hot-reload unavailable: "
                  "server has no registry manager\"}\n";
            }
          } else {  // kFlightDump
            std::ostringstream os;
            obs::write_flight_dump_json(os);
            resp.text = os.str();
          }
          g_admin.add();
        } else if (stopping_.load(std::memory_order_relaxed)) {
          resp.status = ResponseStatus::kShuttingDown;
          resp.error = "server is draining";
          shed = ShedKind::kDraining;
        } else if (p.shed_overload) {
          resp.status = ResponseStatus::kOverloaded;
          resp.error = "overloaded: in-flight budget of " +
                       std::to_string(max_inflight_) +
                       " exhausted or projected wait exceeds deadline";
          shed = ShedKind::kOverload;
          shed_overload_.fetch_add(1, std::memory_order_relaxed);
          g_overload.add();
        } else if (p.req.deadline_ms > 0 &&
                   std::chrono::steady_clock::now() - p.arrival >=
                       std::chrono::milliseconds(p.req.deadline_ms)) {
          resp.status = ResponseStatus::kDeadlineExceeded;
          resp.error = "deadline of " + std::to_string(p.req.deadline_ms) +
                       " ms elapsed before evaluation";
          shed = ShedKind::kDeadline;
          g_deadline.add();
        } else {
          const auto t_eval0 = std::chrono::steady_clock::now();
          try {
            const Evaluator::Result r = eval_.evaluate(
                p.req.model, p.req.bc, resp.snap, scratch, p.req.no_cache);
            resp.cache_hit = r.cache_hit;
            (r.cache_hit ? g_hits : g_misses).add();
          } catch (const FlowError& e) {
            resp.status = e.code() == ErrorCode::kUnavailable
                              ? ResponseStatus::kUnknownModel
                          : e.code() == ErrorCode::kConfig
                              ? ResponseStatus::kBadRequest
                              : ResponseStatus::kInternalError;
            resp.error = e.what();
          } catch (const std::exception& e) {
            resp.status = ResponseStatus::kInternalError;
            resp.error = e.what();
          }
          const double spent =
              us_between(t_eval0, std::chrono::steady_clock::now());
          // A cache hit spent its time in the lookup; a miss in STA.
          (resp.cache_hit ? stage_cache_us : stage_eval_us) = spent;
          // Feed the admission estimator. A dropped racing store only
          // delays smoothing by one sample.
          const double prev = ewma_eval_us_.load(std::memory_order_relaxed);
          ewma_eval_us_.store(prev == 0.0 ? spent : prev * 0.9 + spent * 0.1,
                              std::memory_order_relaxed);
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        g_requests.add();
        if (resp.status == ResponseStatus::kOk) {
          responses_ok_.fetch_add(1, std::memory_order_relaxed);
          g_ok.add();
        } else {
          request_errors_.fetch_add(1, std::memory_order_relaxed);
          g_errors.add();
        }
        fault::inject("serve.write_response");
        const auto t_write0 = std::chrono::steady_clock::now();
        write_frame(fd, encode_response(resp));
        if (p.admitted) {
          inflight_.fetch_sub(1, std::memory_order_relaxed);
          p.admitted = false;
        }
        const auto t_done = std::chrono::steady_clock::now();
        const double write_us = us_between(t_write0, t_done);
        const double total_us = us_between(p.arrival, t_done);
        // One logical "now" for every structure this request touches:
        // arrival on the trace clock plus the measured duration.
        const std::uint64_t now_us =
            p.arrival_us + static_cast<std::uint64_t>(total_us);
        const bool has_deadline = !p.parse_failed && p.req.deadline_ms > 0;
        const double slack_ms =
            static_cast<double>(p.req.deadline_ms) - total_us / 1000.0;
        if (!is_admin) {
          latency_hist().observe(total_us);
          if (stats_) {
            RequestTimings t;
            t.parse_us = p.parse_us;
            t.cache_us = stage_cache_us;
            t.eval_us = stage_eval_us;
            t.write_us = write_us;
            t.total_us = total_us;
            t.has_deadline = has_deadline;
            if (has_deadline) t.deadline_slack_ms = slack_ms;
            stats_->record(now_us, p.req.model, resp.status, resp.cache_hit,
                           shed, t, p.req.request_id);
          }
        }
        obs::FlightRecord rec;
        rec.request_id = p.req.request_id;
        rec.ts_us = p.arrival_us;
        rec.set_model(p.req.model.c_str());
        rec.set_status(response_status_name(resp.status));
        rec.kind = static_cast<std::uint16_t>(p.req.kind);
        rec.flags = static_cast<std::uint16_t>(
            (resp.cache_hit ? obs::kFlightCacheHit : 0u) |
            (has_deadline ? obs::kFlightHasDeadline : 0u) |
            (shed == ShedKind::kOverload ? obs::kFlightShedOverload : 0u) |
            (shed == ShedKind::kDraining ? obs::kFlightShedDraining : 0u));
        if (has_deadline) rec.deadline_slack_ms = static_cast<float>(slack_ms);
        rec.parse_us = static_cast<float>(p.parse_us);
        rec.cache_us = static_cast<float>(stage_cache_us);
        rec.eval_us = static_cast<float>(stage_eval_us);
        rec.write_us = static_cast<float>(write_us);
        rec.total_us = static_cast<float>(total_us);
        obs::flight_record(rec);
      }
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
  } catch (const std::exception& e) {
    // Socket-level failure (peer vanished mid-response, injected
    // serve.write_response fault): drop this connection, keep serving.
    release_admitted();
    conn_aborts_.fetch_add(1, std::memory_order_relaxed);
    g_aborts.add();
    log_error("serve: connection aborted: %s", e.what());
    // Freeze the black box next to the failure: the last N requests
    // (all threads) as of the abort, best-effort.
    if (!opt_.dump_dir.empty())
      obs::write_flight_dump_file(opt_.dump_dir + "/flight.conn_abort.json");
  }
}

Server::Stats Server::stats() const noexcept {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses_ok = responses_ok_.load(std::memory_order_relaxed);
  s.request_errors = request_errors_.load(std::memory_order_relaxed);
  s.conn_aborts = conn_aborts_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tmm::serve
