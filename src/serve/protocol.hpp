#pragma once
// Length-prefixed wire protocol of `tmm serve` (docs/SERVING.md).
//
// Every frame on the socket is a little-endian u32 payload length
// followed by the payload. Request payloads start with the magic
// "TMRQ", responses with "TMRS"; both carry a protocol version so
// clients and servers can reject mismatches instead of misparsing.
// Doubles travel as raw IEEE-754 bit patterns — the same convention as
// the `.tmb` model format — which is what lets the load generator
// assert bit-identical round trips against the offline evaluate path.
//
// Malformed frames decode to fault::FlowError(kParse); socket-level
// failures surface as kIo. Fault sites: serve.parse_request (decode),
// serve.write_response (server-side frame write).

#include <cstdint>
#include <string>

#include "sta/constraints.hpp"
#include "sta/propagation.hpp"

namespace tmm::serve {

inline constexpr char kRequestMagic[4] = {'T', 'M', 'R', 'Q'};
inline constexpr char kResponseMagic[4] = {'T', 'M', 'R', 'S'};
/// v2 added the request-kind word (admin introspection) and the
/// admin-text response body; v3 added the kReload admin kind and the
/// kOverloaded shed status. Older frames are rejected, not misparsed:
/// the version check precedes any layout assumption.
inline constexpr std::uint16_t kProtocolVersion = 3;
/// Largest accepted frame payload; a corrupt length prefix must not
/// turn into a multi-GiB allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Request flag bits.
inline constexpr std::uint16_t kReqNoCache = 1u;
/// Response flag bits.
inline constexpr std::uint16_t kRespCacheHit = 1u;
inline constexpr std::uint16_t kRespAdminText = 2u;

/// What the client is asking for. Admin kinds (everything except
/// kEvaluate) are answered off the evaluation hot path with a text
/// (JSON) body instead of a boundary snapshot; they carry an empty
/// model name and zero ports.
enum class RequestKind : std::uint16_t {
  kEvaluate = 0,    ///< evaluate boundary constraints against a model
  kStats = 1,       ///< windowed + lifetime serving statistics (JSON)
  kHealth = 2,      ///< liveness/readiness summary (JSON)
  kFlightDump = 3,  ///< drain the request flight recorder (JSON)
  kReload = 4,      ///< reload the models directory as a new generation
};

const char* request_kind_name(RequestKind k) noexcept;

enum class ResponseStatus : std::uint16_t {
  kOk = 0,
  kUnknownModel,      ///< no such model in the registry
  kBadRequest,        ///< malformed frame or boundary-arity mismatch
  kDeadlineExceeded,  ///< deadline_ms elapsed before evaluation started
  kShuttingDown,      ///< server is draining; retry elsewhere
  kInternalError,     ///< evaluation failed (numeric error, injected fault)
  kOverloaded,        ///< shed at admission: in-flight budget or projected
                      ///< queue wait past the deadline; retry with backoff
};

const char* response_status_name(ResponseStatus s) noexcept;

struct Request {
  std::uint64_t request_id = 0;
  RequestKind kind = RequestKind::kEvaluate;
  /// Milliseconds from frame receipt until the response is useless;
  /// 0 = no deadline.
  std::uint32_t deadline_ms = 0;
  bool no_cache = false;
  std::string model;
  BoundaryConstraints bc;
};

struct Response {
  std::uint64_t request_id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  bool cache_hit = false;
  /// Admin-text body: when true (wire flag kRespAdminText) the ok body
  /// is `text` (JSON from the introspection channel), not a snapshot.
  bool admin = false;
  std::string text;
  BoundarySnapshot snap;  ///< filled when status == kOk && !admin
  std::string error;      ///< diagnostic when status != kOk
};

std::string encode_request(const Request& req);
/// Throws FlowError(kParse) on any malformation. Fault site:
/// serve.parse_request.
Request decode_request(const std::string& payload);

std::string encode_response(const Response& resp);
Response decode_response(const std::string& payload);

/// Read one length-prefixed frame payload into `out` (storage reused).
/// Returns false on clean EOF before the first byte; throws
/// FlowError(kIo) on a mid-frame EOF or socket error, kParse on an
/// oversized length prefix.
bool read_frame(int fd, std::string& out);

/// Write `payload` as one length-prefixed frame. Throws FlowError(kIo)
/// on socket failure (e.g. the peer vanished mid-response).
void write_frame(int fd, const std::string& payload);

}  // namespace tmm::serve
