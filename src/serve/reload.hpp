#pragma once
// Generational hot-reload for the serving engine (docs/SERVING.md,
// "Zero-downtime hot-reload").
//
// RegistryManager wraps the immutable ModelRegistry in an RCU-style
// generation: current() hands out a `shared_ptr<const ModelRegistry>`
// that pins one published generation for as long as the caller holds
// it, and reload() builds a *new* registry from the models directory,
// validates it, and atomically swaps the pointer. In-flight requests
// keep evaluating against the generation they pinned; the old
// generation is destroyed when the last pin drops. No request ever
// observes a half-loaded registry — the only shared mutation is the
// pointer assignment under a leaf mutex.
//
// Rollback policy: reload() never throws and never degrades. Any
// failure — unreadable directory, a single corrupt `.tmb`, a validator
// veto, an injected fault — leaves the previous generation serving and
// is reported through the returned ReloadResult and counters() (the
// `tmm stat` reload section). This is stricter than startup
// (load_initial() keeps per-file isolation and may publish a degraded
// registry, exit 3): a deployment that *worsens* the model set must
// not replace one that works.
//
// Fault sites: serve.reload_open (before the directory scan),
// serve.reload_validate (before validation), serve.reload_swap (before
// the pointer swap — deliberately outside the generation lock so the
// fire hook's flight dump cannot add a lock-order edge under it).
//
// Lock hierarchy: serve.registry.reload (serializes whole reload
// passes) -> serve.registry.generation (leaf; guards only the pointer
// and last-result fields, held for an assignment).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/registry.hpp"
#include "util/mutex.hpp"

namespace tmm::serve {

/// Outcome of one reload() pass.
struct ReloadResult {
  bool ok = false;
  std::uint64_t generation = 0;   ///< published generation (ok only)
  std::size_t models_loaded = 0;  ///< models the fresh load picked up
  std::size_t load_failures = 0;  ///< per-file failures in the fresh load
  double reload_us = 0.0;         ///< whole pass: load + validate + swap
  double swap_us = 0.0;           ///< pointer-swap critical section only
  std::string error;              ///< diagnostic when !ok
};

class RegistryManager {
 public:
  /// Pre-swap validation callback, run over the models directory after
  /// a clean load; a non-empty return is a veto with that diagnostic.
  /// The CLI wires this to analysis::lint_registry_dir (S001–S003) —
  /// a std::function because tmm_analysis links tmm_serve, not the
  /// other way around.
  using Validator = std::function<std::string(const std::string& dir)>;

  explicit RegistryManager(std::string dir, Validator validator = {});

  /// Startup load: same semantics as ModelRegistry::load_directory
  /// (per-file isolation, throws kIo/kUnavailable on fatal problems).
  /// Publishes generation 1. Returns the number of models loaded.
  std::size_t load_initial();

  /// The currently-published generation. Never null: before
  /// load_initial() this is an empty generation-0 registry. Holding the
  /// returned pointer pins that generation alive.
  std::shared_ptr<const ModelRegistry> current() const;

  /// Build + validate + swap a fresh generation from the directory.
  /// Never throws; on any failure the previous generation keeps
  /// serving and the result carries the diagnostic. Concurrent calls
  /// serialize.
  ReloadResult reload();

  /// Reload telemetry for the stat channel.
  struct Counters {
    std::uint64_t generation = 0;
    std::uint64_t reloads_ok = 0;
    std::uint64_t reload_failures = 0;
    std::uint64_t last_swap_us = 0;  ///< swap section of the last success
    std::string last_error;          ///< last failure diagnostic ("" = none)
  };
  Counters counters() const;

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::shared_ptr<const ModelRegistry> publish(
      std::shared_ptr<const ModelRegistry> fresh, double* swap_us);

  const std::string dir_;
  const Validator validator_;

  /// Lock class "serve.registry.reload": one reload pass at a time.
  mutable util::Mutex reload_mu_;
  /// Lock class "serve.registry.generation": leaf; pointer + last-result.
  mutable util::Mutex gen_mu_;
  std::shared_ptr<const ModelRegistry> current_ TMM_GUARDED_BY(gen_mu_);
  std::string last_error_ TMM_GUARDED_BY(gen_mu_);

  // Invariant: monotonic event tallies read only for reporting; the
  // generation counter's uniqueness comes from fetch_add, so relaxed
  // suffices throughout.
  std::atomic<std::uint64_t> next_generation_{1};
  std::atomic<std::uint64_t> reloads_ok_{0};
  std::atomic<std::uint64_t> reload_failures_{0};
  std::atomic<std::uint64_t> last_swap_us_{0};
};

}  // namespace tmm::serve
