#include "serve/reload.hpp"

#include <chrono>
#include <utility>

#include "fault/fault.hpp"
#include "util/log.hpp"

namespace tmm::serve {

namespace {

const util::lockorder::LockClass kReloadLockClass("serve.registry.reload");
const util::lockorder::LockClass kGenerationLockClass(
    "serve.registry.generation");

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

RegistryManager::RegistryManager(std::string dir, Validator validator)
    : dir_(std::move(dir)),
      validator_(std::move(validator)),
      reload_mu_(kReloadLockClass),
      gen_mu_(kGenerationLockClass),
      current_(std::make_shared<const ModelRegistry>()) {}

std::size_t RegistryManager::load_initial() {
  util::MutexLock pass(reload_mu_);
  auto fresh = std::make_shared<ModelRegistry>();
  std::size_t loaded = fresh->load_directory(dir_);
  fresh->set_generation(next_generation_.fetch_add(1, std::memory_order_relaxed));
  publish(std::move(fresh), nullptr);
  return loaded;
}

std::shared_ptr<const ModelRegistry> RegistryManager::current() const {
  util::MutexLock lock(gen_mu_);
  return current_;
}

std::shared_ptr<const ModelRegistry> RegistryManager::publish(
    std::shared_ptr<const ModelRegistry> fresh, double* swap_us) {
  std::shared_ptr<const ModelRegistry> old;
  auto t0 = std::chrono::steady_clock::now();
  {
    util::MutexLock lock(gen_mu_);
    old = std::move(current_);
    current_ = std::move(fresh);
    last_error_.clear();
  }
  if (swap_us != nullptr) *swap_us = elapsed_us(t0);
  // `old` is returned (and dropped by the caller outside all locks) so
  // a last-pin registry destruction never runs under gen_mu_.
  return old;
}

ReloadResult RegistryManager::reload() {
  util::MutexLock pass(reload_mu_);
  ReloadResult result;
  auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const ModelRegistry> retired;
  try {
    fault::inject("serve.reload_open");
    auto fresh = std::make_shared<ModelRegistry>();
    result.models_loaded = fresh->load_directory(dir_);
    result.load_failures = fresh->failures().size();
    fault::inject("serve.reload_validate");
    // Stricter than startup: a reload must not shrink the model set.
    if (!fresh->failures().empty()) {
      const auto& first = fresh->failures().front();
      throw fault::FlowError(
          fault::ErrorCode::kUnavailable, "serve.reload",
          "reload rejected: " + std::to_string(fresh->failures().size()) +
              " model(s) failed to load, first: " + first.path + ": " +
              first.error);
    }
    if (validator_) {
      std::string verdict = validator_(dir_);
      if (!verdict.empty()) {
        throw fault::FlowError(fault::ErrorCode::kConfig, "serve.reload",
                               "reload rejected by validator: " + verdict);
      }
    }
    result.generation = next_generation_.fetch_add(1, std::memory_order_relaxed);
    fresh->set_generation(result.generation);
    // Injected before the generation lock: the fire hook may dump the
    // flight recorder (obs locks), which must not nest under gen_mu_.
    fault::inject("serve.reload_swap");
    retired = publish(std::move(fresh), &result.swap_us);
    result.ok = true;
    result.reload_us = elapsed_us(t0);
    reloads_ok_.fetch_add(1, std::memory_order_relaxed);
    last_swap_us_.store(static_cast<std::uint64_t>(result.swap_us),
                        std::memory_order_relaxed);
    log_info("serve: reload ok, generation %llu, %zu model(s), swap %.0f us",
             static_cast<unsigned long long>(result.generation),
             result.models_loaded, result.swap_us);
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
    result.reload_us = elapsed_us(t0);
    reload_failures_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(gen_mu_);
      last_error_ = result.error;
    }
    log_warn("serve: reload failed, keeping current generation: %s",
             result.error.c_str());
  }
  return result;
}

RegistryManager::Counters RegistryManager::counters() const {
  Counters c;
  c.reloads_ok = reloads_ok_.load(std::memory_order_relaxed);
  c.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  c.last_swap_us = last_swap_us_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(gen_mu_);
    c.generation = current_ ? current_->generation() : 0;
    c.last_error = last_error_;
  }
  return c;
}

}  // namespace tmm::serve
