#include "serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "fault/fault.hpp"
#include "util/errno_string.hpp"

namespace tmm::serve {

using fault::ErrorCode;
using fault::FlowError;

const char* response_status_name(ResponseStatus s) noexcept {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kUnknownModel: return "unknown_model";
    case ResponseStatus::kBadRequest: return "bad_request";
    case ResponseStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::kShuttingDown: return "shutting_down";
    case ResponseStatus::kInternalError: return "internal_error";
    case ResponseStatus::kOverloaded: return "overloaded";
  }
  return "unknown";
}

const char* request_kind_name(RequestKind k) noexcept {
  switch (k) {
    case RequestKind::kEvaluate: return "evaluate";
    case RequestKind::kStats: return "stats";
    case RequestKind::kHealth: return "health";
    case RequestKind::kFlightDump: return "flight_dump";
    case RequestKind::kReload: return "reload";
  }
  return "unknown";
}

namespace {

class Writer {
 public:
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void bytes(const void* p, std::size_t n) { raw(p, n); }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class Reader {
 public:
  explicit Reader(const std::string& payload) : s_(payload) {}

  std::uint16_t u16(const char* what) { return get<std::uint16_t>(what); }
  std::uint32_t u32(const char* what) { return get<std::uint32_t>(what); }
  std::uint64_t u64(const char* what) { return get<std::uint64_t>(what); }
  double f64(const char* what) { return get<double>(what); }
  std::string str(std::size_t n, const char* what) {
    if (n > s_.size() - pos_) fail(std::string("truncated ") + what);
    std::string out = s_.substr(pos_, n);
    pos_ += n;
    return out;
  }
  std::size_t remaining() const noexcept { return s_.size() - pos_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw FlowError(ErrorCode::kParse, "serve.protocol",
                    msg + " (offset " + std::to_string(pos_) + " of " +
                        std::to_string(s_.size()) + ")");
  }

 private:
  template <typename T>
  T get(const char* what) {
    if (sizeof(T) > s_.size() - pos_)
      fail(std::string("truncated frame reading ") + what);
    T v;
    std::memcpy(&v, s_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void put_elrf(Writer& w, const ElRf<double>& x) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) w.f64(x(el, rf));
}

ElRf<double> get_elrf(Reader& r, const char* what) {
  ElRf<double> x;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) x(el, rf) = r.f64(what);
  return x;
}

void check_magic(Reader& r, const char (&magic)[4], const char* kind) {
  const std::string got = r.str(4, "magic");
  if (std::memcmp(got.data(), magic, 4) != 0)
    r.fail(std::string("not a ") + kind + " frame (bad magic)");
  const std::uint16_t version = r.u16("protocol version");
  if (version != kProtocolVersion)
    r.fail("unsupported protocol version " + std::to_string(version));
}

/// Bounds ports per request; far above any real macro boundary.
constexpr std::uint32_t kMaxPorts = 10'000'000;

}  // namespace

std::string encode_request(const Request& req) {
  Writer w;
  w.bytes(kRequestMagic, sizeof kRequestMagic);
  w.u16(kProtocolVersion);
  w.u16(req.no_cache ? kReqNoCache : 0);
  w.u16(static_cast<std::uint16_t>(req.kind));
  w.u64(req.request_id);
  w.u32(req.deadline_ms);
  w.u16(static_cast<std::uint16_t>(req.model.size()));
  w.bytes(req.model.data(), req.model.size());
  w.f64(req.bc.clock_period_ps);
  w.u32(static_cast<std::uint32_t>(req.bc.pi.size()));
  w.u32(static_cast<std::uint32_t>(req.bc.po.size()));
  for (const PiConstraint& pi : req.bc.pi) {
    put_elrf(w, pi.at);
    put_elrf(w, pi.slew);
  }
  for (const PoConstraint& po : req.bc.po) {
    w.f64(po.load_ff);
    put_elrf(w, po.rat);
  }
  return w.take();
}

Request decode_request(const std::string& payload) {
  fault::inject("serve.parse_request");
  Reader r(payload);
  check_magic(r, kRequestMagic, "request");
  Request req;
  const std::uint16_t flags = r.u16("flags");
  req.no_cache = (flags & kReqNoCache) != 0;
  const std::uint16_t kind = r.u16("request kind");
  if (kind > static_cast<std::uint16_t>(RequestKind::kReload))
    r.fail("bad request kind " + std::to_string(kind));
  req.kind = static_cast<RequestKind>(kind);
  req.request_id = r.u64("request id");
  req.deadline_ms = r.u32("deadline");
  const std::uint16_t model_len = r.u16("model-name length");
  req.model = r.str(model_len, "model name");
  req.bc.clock_period_ps = r.f64("clock period");
  const std::uint32_t num_pi = r.u32("PI count");
  const std::uint32_t num_po = r.u32("PO count");
  if (num_pi > kMaxPorts || num_po > kMaxPorts)
    r.fail("implausible port count");
  req.bc.pi.resize(num_pi);
  req.bc.po.resize(num_po);
  for (PiConstraint& pi : req.bc.pi) {
    pi.at = get_elrf(r, "PI arrival");
    pi.slew = get_elrf(r, "PI slew");
  }
  for (PoConstraint& po : req.bc.po) {
    po.load_ff = r.f64("PO load");
    po.rat = get_elrf(r, "PO rat");
  }
  if (r.remaining() != 0) r.fail("trailing bytes after request");
  return req;
}

std::string encode_response(const Response& resp) {
  Writer w;
  w.bytes(kResponseMagic, sizeof kResponseMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(resp.status));
  w.u16(static_cast<std::uint16_t>((resp.cache_hit ? kRespCacheHit : 0u) |
                                   (resp.admin ? kRespAdminText : 0u)));
  w.u64(resp.request_id);
  if (resp.status == ResponseStatus::kOk && resp.admin) {
    // Admin-text body: stats/health/flight dumps can exceed 64 KiB, so
    // the length is a u32 (unlike the u16 error path).
    w.u32(static_cast<std::uint32_t>(resp.text.size()));
    w.bytes(resp.text.data(), resp.text.size());
  } else if (resp.status == ResponseStatus::kOk) {
    w.u32(static_cast<std::uint32_t>(resp.snap.num_ports));
    for (const double v : resp.snap.slew) w.f64(v);
    for (const double v : resp.snap.at) w.f64(v);
    for (const double v : resp.snap.rat) w.f64(v);
    for (const double v : resp.snap.slack) w.f64(v);
  } else {
    w.u16(static_cast<std::uint16_t>(resp.error.size()));
    w.bytes(resp.error.data(), resp.error.size());
  }
  return w.take();
}

Response decode_response(const std::string& payload) {
  Reader r(payload);
  check_magic(r, kResponseMagic, "response");
  Response resp;
  const std::uint16_t status = r.u16("status");
  if (status > static_cast<std::uint16_t>(ResponseStatus::kOverloaded))
    r.fail("bad response status " + std::to_string(status));
  resp.status = static_cast<ResponseStatus>(status);
  const std::uint16_t flags = r.u16("flags");
  resp.cache_hit = (flags & kRespCacheHit) != 0;
  resp.admin = (flags & kRespAdminText) != 0;
  resp.request_id = r.u64("request id");
  if (resp.status == ResponseStatus::kOk && resp.admin) {
    const std::uint32_t text_len = r.u32("admin-text length");
    resp.text = r.str(text_len, "admin text");
  } else if (resp.status == ResponseStatus::kOk) {
    const std::uint32_t num_ports = r.u32("port count");
    if (num_ports > kMaxPorts) r.fail("implausible port count");
    resp.snap.num_ports = num_ports;
    const std::size_t n = std::size_t{num_ports} * kNumEl * kNumRf;
    auto read_vec = [&](std::vector<double>& v, const char* what) {
      v.resize(n);
      for (double& x : v) x = r.f64(what);
    };
    read_vec(resp.snap.slew, "slew");
    read_vec(resp.snap.at, "arrival");
    read_vec(resp.snap.rat, "required");
    read_vec(resp.snap.slack, "slack");
  } else {
    const std::uint16_t err_len = r.u16("error length");
    resp.error = r.str(err_len, "error message");
  }
  if (r.remaining() != 0) r.fail("trailing bytes after response");
  return resp;
}

bool read_frame(int fd, std::string& out) {
  auto read_exact = [&](char* buf, std::size_t n, bool allow_eof) -> bool {
    std::size_t done = 0;
    while (done < n) {
      const ssize_t got = ::read(fd, buf + done, n - done);
      if (got > 0) {
        done += static_cast<std::size_t>(got);
        continue;
      }
      if (got == 0) {
        if (allow_eof && done == 0) return false;
        throw FlowError(ErrorCode::kIo, "serve.protocol",
                        "connection closed mid-frame");
      }
      if (errno == EINTR) continue;
      throw FlowError(ErrorCode::kIo, "serve.protocol",
                      std::string("socket read failed: ") +
                          util::errno_string(errno));
    }
    return true;
  };

  std::uint32_t len = 0;
  if (!read_exact(reinterpret_cast<char*>(&len), sizeof len, true))
    return false;
  if (len > kMaxFrameBytes)
    throw FlowError(ErrorCode::kParse, "serve.protocol",
                    "frame length " + std::to_string(len) +
                        " exceeds limit " + std::to_string(kMaxFrameBytes));
  out.resize(len);
  if (len > 0) read_exact(out.data(), len, false);
  return true;
}

void write_frame(int fd, const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  auto write_all = [&](const char* buf, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const ssize_t put = ::write(fd, buf + done, n - done);
      if (put >= 0) {
        done += static_cast<std::size_t>(put);
        continue;
      }
      if (errno == EINTR) continue;
      throw FlowError(ErrorCode::kIo, "serve.protocol",
                      std::string("socket write failed: ") +
                          util::errno_string(errno));
    }
  };
  write_all(reinterpret_cast<const char*>(&len), sizeof len);
  if (!payload.empty()) write_all(payload.data(), payload.size());
}

}  // namespace tmm::serve
