#include "serve/stats.hpp"

#include <algorithm>
#include <cinttypes>
#include <iterator>
#include <sstream>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace tmm::serve {

namespace {

const util::lockorder::LockClass kSlowlogLockClass("serve.stats.slowlog");

/// The two reporting windows every section renders. Order matters: the
/// JSON keys come out in this order and tests grep for "10s" first.
constexpr double kWindows[] = {10.0, 300.0};
constexpr const char* kWindowNames[] = {"10s", "300s"};

void json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void json_number(std::string& out, double v) {
  std::ostringstream os;
  os << v;
  out += os.str();
}

double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

std::vector<double> default_latency_bounds() {
  return obs::log_spaced_bounds(1.0, 1e7, 5);
}

ServeStats::ServeStats(std::vector<std::string> models, std::uint64_t start_us,
                       Options opt)
    : opt_(opt),
      start_us_(start_us),
      global_(default_latency_bounds()),
      slow_mu_(kSlowlogLockClass) {
  const std::vector<double> bounds = default_latency_bounds();
  for (std::string& m : models)
    per_model_.emplace(std::move(m), std::make_unique<Series>(bounds));
}

void ServeStats::record(std::uint64_t now_us, std::string_view model,
                        ResponseStatus status, bool cache_hit, ShedKind shed,
                        const RequestTimings& t, std::uint64_t request_id) {
  const bool ok = status == ResponseStatus::kOk;
  auto update = [&](Series& s) {
    s.latency.observe(now_us, t.total_us);
    s.requests.add(now_us);
    if (!ok) s.errors.add(now_us);
    if (shed != ShedKind::kNone) s.shed.add(now_us);
    if (shed == ShedKind::kOverload) s.shed_overload.add(now_us);
    if (shed == ShedKind::kDraining) s.shed_draining.add(now_us);
    if (ok) (cache_hit ? s.cache_hits : s.cache_misses).add(now_us);
  };
  update(global_);
  if (const auto it = per_model_.find(model); it != per_model_.end())
    update(*it->second);

  total_requests_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) total_errors_.fetch_add(1, std::memory_order_relaxed);
  if (shed != ShedKind::kNone)
    total_shed_.fetch_add(1, std::memory_order_relaxed);
  if (shed == ShedKind::kOverload)
    total_shed_overload_.fetch_add(1, std::memory_order_relaxed);
  if (shed == ShedKind::kDraining)
    total_shed_draining_.fetch_add(1, std::memory_order_relaxed);
  if (ok && cache_hit) total_cache_hits_.fetch_add(1, std::memory_order_relaxed);

  if (opt_.slow_threshold_us == 0 ||
      t.total_us < static_cast<double>(opt_.slow_threshold_us))
    return;
  const std::uint64_t nth =
      slow_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  SlowEntry e;
  e.ts_us = now_us;
  e.request_id = request_id;
  e.model = std::string(model);
  e.status = response_status_name(status);
  e.total_us = t.total_us;
  e.eval_us = t.eval_us;
  {
    util::MutexLock lock(slow_mu_);
    slow_ring_.push_back(std::move(e));
    while (slow_ring_.size() > std::max<std::size_t>(opt_.slow_keep, 1))
      slow_ring_.pop_front();
  }
  const std::uint32_t sample = std::max<std::uint32_t>(opt_.slow_sample, 1);
  if (nth % sample == 0)
    log_warn("serve: slow request id=%" PRIu64 " model=%.*s total=%.0fus "
             "eval=%.0fus (threshold %" PRIu64 "us, %" PRIu64 " slow so far)",
             request_id, static_cast<int>(model.size()), model.data(),
             t.total_us, t.eval_us, opt_.slow_threshold_us, nth);
}

void ServeStats::append_series_json(std::string& out, const Series& s,
                                    std::uint64_t now_us) const {
  out += '{';
  for (std::size_t w = 0; w < std::size(kWindows); ++w) {
    const double win = kWindows[w];
    if (w != 0) out += ", ";
    json_string(out, kWindowNames[w]);
    out += ": {";
    const obs::WindowedHistogram::Snapshot snap = s.latency.snapshot(now_us, win);
    const std::uint64_t requests = s.requests.sum(now_us, win);
    const std::uint64_t errors = s.errors.sum(now_us, win);
    const std::uint64_t shed = s.shed.sum(now_us, win);
    const std::uint64_t shed_over = s.shed_overload.sum(now_us, win);
    const std::uint64_t shed_drain = s.shed_draining.sum(now_us, win);
    const std::uint64_t hits = s.cache_hits.sum(now_us, win);
    const std::uint64_t misses = s.cache_misses.sum(now_us, win);
    out += "\"count\": " + std::to_string(requests);
    out += ", \"qps\": ";
    json_number(out, static_cast<double>(requests) / snap.window_s);
    auto q = [&](const char* name, double quant) {
      out += ", \"";
      out += name;
      out += "\": ";
      json_number(out,
                  obs::quantile_from_buckets(s.latency.bounds(), snap.buckets,
                                             quant));
    };
    q("p50_us", 0.50);
    q("p95_us", 0.95);
    q("p99_us", 0.99);
    q("p999_us", 0.999);
    out += ", \"mean_us\": ";
    json_number(out, snap.mean());
    out += ", \"error_rate\": ";
    json_number(out, ratio(errors, requests));
    out += ", \"shed_rate\": ";
    json_number(out, ratio(shed, requests));
    out += ", \"shed_overload_rate\": ";
    json_number(out, ratio(shed_over, requests));
    out += ", \"shed_draining_rate\": ";
    json_number(out, ratio(shed_drain, requests));
    out += ", \"cache_hit_rate\": ";
    json_number(out, ratio(hits, hits + misses));
    out += '}';
  }
  out += '}';
}

std::string ServeStats::stats_json(std::uint64_t now_us,
                                   std::string_view extra) const {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"now_us\": " + std::to_string(now_us);
  out += ",\n  \"uptime_s\": ";
  json_number(out, now_us >= start_us_
                       ? static_cast<double>(now_us - start_us_) / 1e6
                       : 0.0);
  out += ",\n  \"global\": ";
  append_series_json(out, global_, now_us);
  out += ",\n  \"models\": {";
  bool first = true;
  for (const auto& [name, series] : per_model_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string(out, name);
    out += ": ";
    append_series_json(out, *series, now_us);
  }
  out += "\n  },\n  \"lifetime\": {";
  out += "\"requests\": " +
         std::to_string(total_requests_.load(std::memory_order_relaxed));
  out += ", \"errors\": " +
         std::to_string(total_errors_.load(std::memory_order_relaxed));
  out += ", \"shed\": " +
         std::to_string(total_shed_.load(std::memory_order_relaxed));
  out += ", \"shed_overload\": " +
         std::to_string(total_shed_overload_.load(std::memory_order_relaxed));
  out += ", \"shed_draining\": " +
         std::to_string(total_shed_draining_.load(std::memory_order_relaxed));
  out += ", \"cache_hits\": " +
         std::to_string(total_cache_hits_.load(std::memory_order_relaxed));
  out += "}";
  if (!extra.empty()) {
    out += ",\n  ";
    out += extra;
  }
  out += ",\n  \"slow\": {";
  out += "\"threshold_us\": " + std::to_string(opt_.slow_threshold_us);
  out += ", \"total\": " +
         std::to_string(slow_total_.load(std::memory_order_relaxed));
  out += ", \"recent\": [";
  {
    util::MutexLock lock(slow_mu_);
    bool first_slow = true;
    for (const SlowEntry& e : slow_ring_) {
      out += first_slow ? "" : ", ";
      first_slow = false;
      out += "{\"ts_us\": " + std::to_string(e.ts_us);
      out += ", \"request_id\": " + std::to_string(e.request_id);
      out += ", \"model\": ";
      json_string(out, e.model);
      out += ", \"status\": ";
      json_string(out, e.status);
      out += ", \"total_us\": ";
      json_number(out, e.total_us);
      out += ", \"eval_us\": ";
      json_number(out, e.eval_us);
      out += '}';
    }
  }
  out += "]}\n}\n";
  return out;
}

std::string ServeStats::health_json(std::uint64_t now_us, bool draining,
                                    std::size_t models_loaded,
                                    std::size_t models_failed,
                                    std::uint64_t generation,
                                    std::uint64_t reloads_ok,
                                    std::uint64_t reload_failures) const {
  std::string out;
  out += "{\"status\": ";
  json_string(out, draining ? "draining" : "ok");
  out += ", \"uptime_s\": ";
  json_number(out, now_us >= start_us_
                       ? static_cast<double>(now_us - start_us_) / 1e6
                       : 0.0);
  out += ", \"models_loaded\": " + std::to_string(models_loaded);
  out += ", \"models_failed\": " + std::to_string(models_failed);
  out += ", \"generation\": " + std::to_string(generation);
  out += ", \"reloads_ok\": " + std::to_string(reloads_ok);
  out += ", \"reload_failures\": " + std::to_string(reload_failures);
  out += ", \"requests\": " +
         std::to_string(total_requests_.load(std::memory_order_relaxed));
  out += ", \"flight_recorder\": {\"enabled\": ";
  out += obs::flight_recorder_enabled() ? "true" : "false";
  out += ", \"records_total\": " +
         std::to_string(obs::flight_total_recorded());
  out += "}}\n";
  return out;
}

std::uint64_t ServeStats::slow_total() const noexcept {
  return slow_total_.load(std::memory_order_relaxed);
}

}  // namespace tmm::serve
