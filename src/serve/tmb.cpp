#include "serve/tmb.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "fault/fault.hpp"
#include "util/atomic_io.hpp"

namespace tmm::serve {

namespace {

using fault::ErrorCode;
using fault::FlowError;

/// Node flag bits, identical to the text format (macro/model_io.cpp).
constexpr std::uint32_t kFlagClockRoot = 1u;
constexpr std::uint32_t kFlagInClockNetwork = 2u;
constexpr std::uint32_t kFlagFfClock = 4u;
constexpr std::uint32_t kFlagFfData = 8u;
/// Arc flag bits.
constexpr std::uint32_t kFlagLaunch = 1u;
constexpr std::uint32_t kFlagBakedDerate = 2u;
/// "No table group" sentinel for wire arcs.
constexpr std::uint32_t kNoTables = 0xffffffffu;
/// Luts per ElRf group (el x rf).
constexpr std::uint32_t kGroup =
    static_cast<std::uint32_t>(kNumEl) * static_cast<std::uint32_t>(kNumRf);

std::uint32_t crc_table_entry(std::uint32_t i) {
  std::uint32_t c = i;
  for (int k = 0; k < 8; ++k)
    c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
  return c;
}

struct CrcTable {
  std::uint32_t t[256];
  CrcTable() {
    for (std::uint32_t i = 0; i < 256; ++i) t[i] = crc_table_entry(i);
  }
};

class ByteWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void bytes(const void* p, std::size_t n) { raw(p, n); }
  std::string take() { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size, const std::string& source)
      : data_(data), size_(size), source_(source) {}

  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  double f64(const char* what) {
    double v;
    raw(&v, sizeof v, what);
    return v;
  }
  void bytes(void* out, std::size_t n, const char* what) {
    raw(out, n, what);
  }
  std::size_t remaining() const noexcept { return size_ - pos_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw FlowError(ErrorCode::kParse, "serve.tmb",
                    source_ + ": " + msg + " (offset " +
                        std::to_string(pos_) + ")");
  }

 private:
  void raw(void* out, std::size_t n, const char* what) {
    if (n > size_ - pos_)
      fail(std::string("truncated image reading ") + what);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string& source_;
};

/// One LUT surface: index sizes plus its offset in the double arena.
struct LutRec {
  std::uint32_t ni = 0;
  std::uint32_t nj = 0;
  std::uint64_t off = 0;
};

std::uint64_t lut_doubles(const Lut& lut) {
  return lut.slew_index().size() + lut.load_index().size() +
         lut.values().size();
}

void append_lut(const Lut& lut, std::vector<LutRec>& tabs,
                std::vector<double>& arena) {
  LutRec rec;
  rec.ni = static_cast<std::uint32_t>(lut.slew_index().size());
  rec.nj = static_cast<std::uint32_t>(lut.load_index().size());
  rec.off = arena.size();
  arena.insert(arena.end(), lut.slew_index().begin(), lut.slew_index().end());
  arena.insert(arena.end(), lut.load_index().begin(), lut.load_index().end());
  arena.insert(arena.end(), lut.values().begin(), lut.values().end());
  tabs.push_back(rec);
}

std::uint32_t append_group(const ElRf<Lut>& group, std::vector<LutRec>& tabs,
                           std::vector<double>& arena) {
  const std::uint32_t first = static_cast<std::uint32_t>(tabs.size());
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      append_lut(group(el, rf), tabs, arena);
  return first;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  static const CrcTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    c = table.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::string pack_model(const MacroModel& model) {
  const TimingGraph& g = model.graph;

  // Compact live ids exactly like the text writer, so a model that
  // round-trips .macro -> pack keeps record order (and therefore STA
  // relaxation order and floating-point results) bit-for-bit.
  std::vector<NodeId> to_compact(g.num_nodes(), kInvalidId);
  std::vector<NodeId> live_nodes;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (!g.node(n).dead) {
      to_compact[n] = static_cast<NodeId>(live_nodes.size());
      live_nodes.push_back(n);
    }

  std::string strtab;
  std::vector<std::uint32_t> po_loads;
  std::vector<LutRec> tabs;
  std::vector<double> arena;
  // Size the arena up front: one pass over live surfaces.
  std::uint64_t arena_doubles = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead || arc.kind != GraphArcKind::kCell) continue;
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        arena_doubles += lut_doubles((*arc.delay)(el, rf)) +
                         lut_doubles((*arc.out_slew)(el, rf));
  }
  for (const CheckArc& c : g.checks()) {
    if (c.dead) continue;
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        arena_doubles += lut_doubles((*c.guard)(el, rf));
  }
  arena.reserve(arena_doubles);

  ByteWriter nodes_w;
  for (const NodeId n : live_nodes) {
    const GraphNode& node = g.node(n);
    std::uint32_t flags = 0;
    if (node.is_clock_root) flags |= kFlagClockRoot;
    if (node.in_clock_network) flags |= kFlagInClockNetwork;
    if (node.is_ff_clock) flags |= kFlagFfClock;
    if (node.is_ff_data) flags |= kFlagFfData;
    nodes_w.u32(static_cast<std::uint32_t>(strtab.size()));
    nodes_w.u32(static_cast<std::uint32_t>(node.name.size()));
    strtab += node.name;
    nodes_w.u32(static_cast<std::uint32_t>(node.role));
    nodes_w.u32(flags);
    nodes_w.u32(node.port_ordinal);
    nodes_w.u32(node.aocv_depth);
    nodes_w.u32(static_cast<std::uint32_t>(po_loads.size()));
    nodes_w.u32(static_cast<std::uint32_t>(node.attached_po_loads.size()));
    nodes_w.f64(node.static_load_ff);
    po_loads.insert(po_loads.end(), node.attached_po_loads.begin(),
                    node.attached_po_loads.end());
  }

  ByteWriter arcs_w;
  std::uint32_t live_arcs = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead) continue;
    ++live_arcs;
    std::uint32_t flags = 0;
    if (arc.is_launch) flags |= kFlagLaunch;
    if (arc.baked_derate) flags |= kFlagBakedDerate;
    arcs_w.u32(to_compact[arc.from]);
    arcs_w.u32(to_compact[arc.to]);
    arcs_w.u32(static_cast<std::uint32_t>(arc.kind));
    arcs_w.u32(static_cast<std::uint32_t>(arc.sense));
    arcs_w.u32(flags);
    if (arc.kind == GraphArcKind::kCell) {
      arcs_w.u32(append_group(*arc.delay, tabs, arena));
      arcs_w.u32(append_group(*arc.out_slew, tabs, arena));
    } else {
      arcs_w.u32(kNoTables);
      arcs_w.u32(kNoTables);
    }
    arcs_w.f64(arc.wire_delay_ps);
  }

  ByteWriter checks_w;
  std::uint32_t live_checks = 0;
  for (const CheckArc& c : g.checks()) {
    if (c.dead) continue;
    ++live_checks;
    checks_w.u32(to_compact[c.clock]);
    checks_w.u32(to_compact[c.data]);
    checks_w.u32(c.is_setup ? 1u : 0u);
    checks_w.u32(append_group(*c.guard, tabs, arena));
  }

  ByteWriter payload;
  payload.u32(static_cast<std::uint32_t>(model.design_name.size()));
  payload.bytes(model.design_name.data(), model.design_name.size());
  payload.u32(static_cast<std::uint32_t>(live_nodes.size()));
  payload.u32(live_arcs);
  payload.u32(live_checks);
  payload.u32(static_cast<std::uint32_t>(po_loads.size()));
  payload.u32(static_cast<std::uint32_t>(strtab.size()));
  payload.u32(static_cast<std::uint32_t>(tabs.size()));
  payload.u64(arena.size());
  {
    const std::string nodes = nodes_w.take();
    payload.bytes(nodes.data(), nodes.size());
  }
  for (const std::uint32_t po : po_loads) payload.u32(po);
  {
    const std::string arcs = arcs_w.take();
    payload.bytes(arcs.data(), arcs.size());
    const std::string checks = checks_w.take();
    payload.bytes(checks.data(), checks.size());
  }
  for (const LutRec& t : tabs) {
    payload.u32(t.ni);
    payload.u32(t.nj);
    payload.u64(t.off);
  }
  payload.bytes(strtab.data(), strtab.size());
  if (!arena.empty())
    payload.bytes(arena.data(), arena.size() * sizeof(double));

  const std::string body = payload.take();
  ByteWriter image;
  image.bytes(kTmbMagic, sizeof kTmbMagic);
  image.u32(kTmbVersion);
  image.u64(body.size());
  image.u32(crc32(body.data(), body.size()));
  std::string out = image.take();
  out += body;
  return out;
}

namespace {

/// Bounded counts: a corrupt header must not turn into a huge
/// allocation before validation catches it.
constexpr std::uint64_t kMaxRecords = 100'000'000;

Lut build_lut(const LutRec& rec, const std::vector<double>& arena,
              ByteReader& r) {
  const std::uint64_t nvals =
      rec.ni == 0 ? 1
                  : static_cast<std::uint64_t>(rec.ni) *
                        std::max<std::uint64_t>(rec.nj, 1);
  const std::uint64_t need = rec.ni + rec.nj + nvals;
  if (rec.off > arena.size() || need > arena.size() - rec.off)
    r.fail("lut record points outside the double arena");
  const double* base = arena.data() + rec.off;
  try {
    if (rec.ni == 0) return Lut::scalar(base[0]);
    std::vector<double> idx1(base, base + rec.ni);
    if (rec.nj == 0)
      return Lut::table1d(std::move(idx1),
                          {base + rec.ni, base + rec.ni + nvals});
    std::vector<double> idx2(base + rec.ni, base + rec.ni + rec.nj);
    return Lut::table2d(std::move(idx1), std::move(idx2),
                        {base + rec.ni + rec.nj, base + need});
  } catch (const std::invalid_argument& e) {
    r.fail(std::string("malformed lut: ") + e.what());
  }
}

ElRf<Lut> build_group(std::uint32_t first, const std::vector<LutRec>& tabs,
                      const std::vector<double>& arena, ByteReader& r) {
  if (first > tabs.size() || kGroup > tabs.size() - first)
    r.fail("table-group reference outside the table section");
  ElRf<Lut> out;
  std::uint32_t i = first;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      out(el, rf) = build_lut(tabs[i++], arena, r);
  return out;
}

}  // namespace

MacroModel unpack_model(const std::string& image, const std::string& source) {
  ByteReader header(image.data(), image.size(), source);
  char magic[4];
  header.bytes(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kTmbMagic, sizeof magic) != 0)
    header.fail("not a tmb model (bad magic)");
  const std::uint32_t version = header.u32("version");
  if (version != kTmbVersion)
    header.fail("unsupported tmb version " + std::to_string(version) +
                " (expected " + std::to_string(kTmbVersion) + ")");
  const std::uint64_t payload_size = header.u64("payload size");
  const std::uint32_t want_crc = header.u32("payload crc");
  if (payload_size != image.size() - kTmbHeaderBytes)
    header.fail("payload size mismatch (header says " +
                std::to_string(payload_size) + ", file has " +
                std::to_string(image.size() - kTmbHeaderBytes) + ")");
  const char* body = image.data() + kTmbHeaderBytes;
  const std::uint32_t have_crc = crc32(body, payload_size);
  if (have_crc != want_crc)
    header.fail("payload checksum mismatch (corrupt or torn file)");

  ByteReader r(body, payload_size, source);
  MacroModel model;
  const std::uint32_t name_len = r.u32("design-name length");
  if (name_len > r.remaining()) r.fail("truncated design name");
  model.design_name.resize(name_len);
  if (name_len > 0) r.bytes(model.design_name.data(), name_len, "design name");

  const std::uint64_t nn = r.u32("node count");
  const std::uint64_t na = r.u32("arc count");
  const std::uint64_t nc = r.u32("check count");
  const std::uint64_t npo = r.u32("attached-PO count");
  const std::uint64_t strtab_len = r.u32("string-table length");
  const std::uint64_t ntab = r.u32("table count");
  const std::uint64_t narena = r.u64("arena length");
  if (nn > kMaxRecords || na > kMaxRecords || nc > kMaxRecords ||
      npo > kMaxRecords || ntab > kMaxRecords || narena > kMaxRecords)
    r.fail("implausible record count in header");

  TimingGraph& g = model.graph;

  struct NodeRec {
    std::uint32_t name_off, name_len, role, flags, ordinal, depth, po_off,
        po_cnt;
    double static_load;
  };
  std::vector<NodeRec> node_recs(nn);
  for (auto& rec : node_recs) {
    rec.name_off = r.u32("node name offset");
    rec.name_len = r.u32("node name length");
    rec.role = r.u32("node role");
    rec.flags = r.u32("node flags");
    rec.ordinal = r.u32("port ordinal");
    rec.depth = r.u32("aocv depth");
    rec.po_off = r.u32("attached-PO offset");
    rec.po_cnt = r.u32("attached-PO count");
    rec.static_load = r.f64("static load");
    if (rec.role > static_cast<std::uint32_t>(NodeRole::kPrimaryOutput))
      r.fail("bad node role " + std::to_string(rec.role));
    if (rec.flags > 15u) r.fail("bad node flags");
  }

  std::vector<std::uint32_t> po_loads(npo);
  for (auto& po : po_loads) po = r.u32("attached PO ordinal");

  struct ArcRec {
    std::uint32_t from, to, kind, sense, flags, delay_tab, slew_tab;
    double wire_delay;
  };
  std::vector<ArcRec> arc_recs(na);
  for (auto& rec : arc_recs) {
    rec.from = r.u32("arc source");
    rec.to = r.u32("arc sink");
    rec.kind = r.u32("arc kind");
    rec.sense = r.u32("arc sense");
    rec.flags = r.u32("arc flags");
    rec.delay_tab = r.u32("delay table ref");
    rec.slew_tab = r.u32("slew table ref");
    rec.wire_delay = r.f64("wire delay");
    if (rec.from >= nn || rec.to >= nn)
      r.fail("dangling arc node reference");
    if (rec.kind > static_cast<std::uint32_t>(GraphArcKind::kWire))
      r.fail("bad arc kind");
    if (rec.sense > static_cast<std::uint32_t>(ArcSense::kNonUnate))
      r.fail("bad arc sense");
  }

  struct CheckRec {
    std::uint32_t clock, data, is_setup, guard_tab;
  };
  std::vector<CheckRec> check_recs(nc);
  for (auto& rec : check_recs) {
    rec.clock = r.u32("check clock");
    rec.data = r.u32("check data");
    rec.is_setup = r.u32("setup flag");
    rec.guard_tab = r.u32("guard table ref");
    if (rec.clock >= nn || rec.data >= nn)
      r.fail("dangling check node reference");
    if (rec.is_setup > 1u) r.fail("bad setup flag");
  }

  std::vector<LutRec> tabs(ntab);
  for (auto& t : tabs) {
    t.ni = r.u32("lut slew-axis size");
    t.nj = r.u32("lut load-axis size");
    t.off = r.u64("lut arena offset");
  }

  std::string strtab(strtab_len, '\0');
  if (strtab_len > 0) r.bytes(strtab.data(), strtab_len, "string table");
  std::vector<double> arena(narena);
  if (narena > 0)
    r.bytes(arena.data(), narena * sizeof(double), "double arena");
  if (r.remaining() != 0) r.fail("trailing bytes after the double arena");

  for (const NodeRec& rec : node_recs) {
    if (rec.name_off > strtab.size() ||
        rec.name_len > strtab.size() - rec.name_off)
      r.fail("node name outside the string table");
    if (rec.po_off > po_loads.size() ||
        rec.po_cnt > po_loads.size() - rec.po_off)
      r.fail("attached-PO slice outside the PO section");
    GraphNode node;
    node.name = strtab.substr(rec.name_off, rec.name_len);
    node.role = static_cast<NodeRole>(rec.role);
    node.port_ordinal = rec.ordinal;
    node.aocv_depth = rec.depth;
    node.static_load_ff = rec.static_load;
    node.is_clock_root = (rec.flags & kFlagClockRoot) != 0;
    node.in_clock_network = (rec.flags & kFlagInClockNetwork) != 0;
    node.is_ff_clock = (rec.flags & kFlagFfClock) != 0;
    node.is_ff_data = (rec.flags & kFlagFfData) != 0;
    node.attached_po_loads.assign(po_loads.begin() + rec.po_off,
                                  po_loads.begin() + rec.po_off + rec.po_cnt);
    const NodeRole role = node.role;
    const bool clock_root = node.is_clock_root;
    const std::uint32_t ordinal = node.port_ordinal;
    const NodeId id = g.add_node(std::move(node));
    if (role == NodeRole::kPrimaryInput)
      g.set_primary_input(id, ordinal, clock_root);
    else if (role == NodeRole::kPrimaryOutput)
      g.set_primary_output(id, ordinal);
  }

  for (const ArcRec& rec : arc_recs) {
    if (static_cast<GraphArcKind>(rec.kind) == GraphArcKind::kWire) {
      g.add_wire_arc(rec.from, rec.to, rec.wire_delay);
      continue;
    }
    const ElRf<Lut>* dt = g.own_tables(build_group(rec.delay_tab, tabs, arena, r));
    const ElRf<Lut>* st = g.own_tables(build_group(rec.slew_tab, tabs, arena, r));
    const ArcId id =
        g.add_cell_arc(rec.from, rec.to, static_cast<ArcSense>(rec.sense), dt,
                       st, (rec.flags & kFlagLaunch) != 0);
    g.arc(id).baked_derate = (rec.flags & kFlagBakedDerate) != 0;
  }

  for (const CheckRec& rec : check_recs) {
    const ElRf<Lut>* guard = g.own_tables(build_group(rec.guard_tab, tabs, arena, r));
    g.add_check(rec.clock, rec.data, rec.is_setup != 0, guard);
  }

  model.file_size_bytes = image.size();
  return model;
}

std::size_t write_tmb_file(const MacroModel& model, const std::string& path) {
  fault::inject("serve.pack");
  const std::string image = pack_model(model);
  util::atomic_write_file(path, image).or_throw("serve.pack",
                                                model.design_name);
  return image.size();
}

MacroModel read_tmb_file(const std::string& path) {
  fault::inject("serve.load_model");
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw FlowError(ErrorCode::kIo, "serve.load_model", "cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return unpack_model(buf.str(), path);
}

}  // namespace tmm::serve
