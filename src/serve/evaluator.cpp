#include "serve/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "fault/fault.hpp"

namespace tmm::serve {

using fault::ErrorCode;
using fault::FlowError;

// ---------------------------------------------------------------------
// ResultCache

namespace {
const util::lockorder::LockClass kShardLockClass("serve.cache.shard");
}  // namespace

ResultCache::Shard::Shard() : mu(kShardLockClass) {}

ResultCache::ResultCache(std::size_t capacity, std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  if (num_shards > capacity && capacity > 0) num_shards = capacity;
  capacity_ = capacity;
  per_shard_ = capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / num_shards);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard& ResultCache::shard_of(const std::string& key) noexcept {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ResultCache::lookup(const std::string& key, BoundarySnapshot& out) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& s = shard_of(key);
  util::MutexLock lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  const BoundarySnapshot& snap = it->second->snap;
  out.num_ports = snap.num_ports;
  out.slew.assign(snap.slew.begin(), snap.slew.end());
  out.at.assign(snap.at.begin(), snap.at.end());
  out.rat.assign(snap.rat.begin(), snap.rat.end());
  out.slack.assign(snap.slack.begin(), snap.slack.end());
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::insert(const std::string& key,
                         const BoundarySnapshot& snap) {
  if (capacity_ == 0) return;
  Shard& s = shard_of(key);
  util::MutexLock lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Concurrent miss on the same key: refresh in place.
    it->second->snap = snap;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= per_shard_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  s.lru.push_front(Entry{key, snap});
  s.index.emplace(key, s.lru.begin());
}

CacheStats ResultCache::stats() const noexcept {
  CacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& s : shards_) {
    util::MutexLock lock(s->mu);
    st.entries += s->lru.size();
  }
  return st;
}

// ---------------------------------------------------------------------
// Evaluator

namespace {

double quantize(double v, double quantum) noexcept {
  if (quantum <= 0.0 || !std::isfinite(v)) return v;
  return std::round(v / quantum) * quantum;
}

void quantize_elrf(ElRf<double>& x, double quantum) noexcept {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      x(el, rf) = quantize(x(el, rf), quantum);
}

void append_bits(std::string& key, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  key.append(reinterpret_cast<const char*>(&bits), sizeof bits);
}

void append_elrf(std::string& key, const ElRf<double>& x) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) append_bits(key, x(el, rf));
}

}  // namespace

Evaluator::Evaluator(const ModelRegistry& registry, Options opt)
    : static_registry_(&registry),
      opt_(opt),
      cache_(opt.cache_capacity, opt.cache_shards) {}

Evaluator::Evaluator(RegistryManager& manager, Options opt)
    : manager_(&manager),
      opt_(opt),
      cache_(opt.cache_capacity, opt.cache_shards) {}

Evaluator::Result Evaluator::evaluate(const std::string& model_name,
                                      const BoundaryConstraints& bc,
                                      BoundarySnapshot& out,
                                      Scratch& scratch, bool bypass_cache) {
  const ModelRegistry* registry = static_registry_;
  if (manager_ != nullptr) {
    // Pin the published generation for the whole request. On a swap the
    // per-model engines point into the old generation — drop them; the
    // old registry itself stays alive until every scratch re-pins.
    std::shared_ptr<const ModelRegistry> cur = manager_->current();
    if (scratch.pinned != cur) {
      scratch.engines.clear();
      scratch.pinned = std::move(cur);
    }
    registry = scratch.pinned.get();
  }
  const RegistryEntry* entry = registry->find(model_name);
  if (entry == nullptr)
    throw FlowError(ErrorCode::kUnavailable, "serve.evaluate",
                    "unknown model '" + model_name + "'");
  if (bc.pi.size() != entry->num_pis || bc.po.size() != entry->num_pos)
    throw FlowError(
        ErrorCode::kConfig, "serve.evaluate",
        "boundary arity mismatch for '" + model_name + "': request has " +
            std::to_string(bc.pi.size()) + " PIs / " +
            std::to_string(bc.po.size()) + " POs, model has " +
            std::to_string(entry->num_pis) + " / " +
            std::to_string(entry->num_pos),
        model_name);

  // Quantize once; the same values drive the cache key AND the
  // analysis, so a hit and a miss always agree on the answer.
  const BoundaryConstraints* eff = &bc;
  if (opt_.quantum_ps > 0.0) {
    scratch.qbc = bc;
    scratch.qbc.clock_period_ps =
        quantize(scratch.qbc.clock_period_ps, opt_.quantum_ps);
    for (PiConstraint& pi : scratch.qbc.pi) {
      quantize_elrf(pi.at, opt_.quantum_ps);
      quantize_elrf(pi.slew, opt_.quantum_ps);
    }
    for (PoConstraint& po : scratch.qbc.po) {
      po.load_ff = quantize(po.load_ff, opt_.quantum_ps);
      quantize_elrf(po.rat, opt_.quantum_ps);
    }
    eff = &scratch.qbc;
  }

  std::string& key = scratch.key;
  key.clear();
  // Generation prefix: a cached result can only ever answer queries
  // against the exact registry generation that produced it.
  {
    const std::uint64_t gen = registry->generation();
    key.append(reinterpret_cast<const char*>(&gen), sizeof gen);
  }
  key.append(model_name);
  key.push_back('\0');
  append_bits(key, eff->clock_period_ps);
  for (const PiConstraint& pi : eff->pi) {
    append_elrf(key, pi.at);
    append_elrf(key, pi.slew);
  }
  for (const PoConstraint& po : eff->po) {
    append_bits(key, po.load_ff);
    append_elrf(key, po.rat);
  }

  Result res;
  if (!bypass_cache && cache_.lookup(key, out)) {
    res.cache_hit = true;
    return res;
  }

  std::unique_ptr<Sta>& engine = scratch.engines[entry];
  if (!engine)
    engine = std::make_unique<Sta>(entry->model.graph, opt_.sta);
  engine->run(*eff);
  engine->snapshot_into(out);
  if (!bypass_cache) cache_.insert(key, out);
  return res;
}

}  // namespace tmm::serve
