#pragma once
// Live serving statistics for `tmm serve` (docs/OBSERVABILITY.md,
// "Live serving telemetry").
//
// ServeStats aggregates every answered request into sliding-window
// structures (obs/sliding_window.hpp) so the admin channel can report
// what the server is doing *now* — last-10 s and last-5 min QPS, tail
// latency, cache hit-rate and error/shed rate, globally and per model —
// alongside the process-lifetime totals. Recording is lock-free and
// per-request cheap; the JSON renderers are only ever called from the
// admin path (kStats/kHealth requests), off the evaluation hot path.
//
// The slow-request log is the one mutex-protected piece: requests
// slower than `slow_threshold_us` are kept in a small bounded ring
// (newest win) and every `slow_sample`-th one is also emitted through
// log_warn, so a misbehaving tail is visible in stderr without
// drowning it. Lock class "serve.stats.slowlog" — a leaf lock.
//
// Time is an explicit `now_us` (obs::trace_now_us() clock) so tests
// drive the windows deterministically with a fake clock.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sliding_window.hpp"
#include "serve/protocol.hpp"
#include "util/mutex.hpp"

namespace tmm::serve {

/// Per-stage wall-time breakdown of one served request, microseconds.
struct RequestTimings {
  double parse_us = 0.0;
  double cache_us = 0.0;  ///< result-cache lookup (cache-hit requests)
  double eval_us = 0.0;   ///< STA evaluation (cache-miss requests)
  double write_us = 0.0;
  double total_us = 0.0;  ///< arrival to response written
  bool has_deadline = false;
  double deadline_slack_ms = 0.0;  ///< deadline minus elapsed at response
};

/// Why a request was rejected without evaluation. Draining (shutdown)
/// and overload (admission control) are tracked in separate windows so
/// `tmm stat` can distinguish "deploy in progress" from "saturated";
/// deadline-expired shedding counts with the draining bucket's
/// aggregate shed rate but carries no flight flag of its own.
enum class ShedKind : std::uint8_t {
  kNone = 0,      ///< request was evaluated (or is admin traffic)
  kDraining,      ///< kShuttingDown during drain
  kOverload,      ///< kOverloaded at admission
  kDeadline,      ///< deadline elapsed before evaluation started
};

/// Slow-request-log controls (namespace-scope so `= {}` default
/// arguments see the member initializers — nested-class NSDMIs are not
/// parsed until the enclosing class is complete).
struct ServeStatsOptions {
  /// Requests with total_us above this land in the slow log;
  /// 0 disables the slow log entirely.
  std::uint64_t slow_threshold_us = 0;
  /// Emit a log_warn line for every Nth slow request (1 = all);
  /// the bounded ring retains every slow request regardless.
  std::uint32_t slow_sample = 1;
  /// Slow-log ring capacity (newest retained).
  std::size_t slow_keep = 32;
};

class ServeStats {
 public:
  using Options = ServeStatsOptions;

  /// `models` fixes the per-model breakdown up front (the registry is
  /// immutable after load); requests for names outside it aggregate
  /// into the global section only.
  ServeStats(std::vector<std::string> models, std::uint64_t start_us,
             Options opt = {});

  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  /// Record one answered request. `shed` != kNone marks requests
  /// rejected without evaluation — they count in shed_rate as well as
  /// error_rate, with overload and draining split into their own
  /// windows. Lock-free except when the request is slower than the
  /// slow threshold.
  void record(std::uint64_t now_us, std::string_view model,
              ResponseStatus status, bool cache_hit, ShedKind shed,
              const RequestTimings& t, std::uint64_t request_id);

  /// The kStats response body: windowed ("10s", "300s") QPS and
  /// latency percentiles plus rates, globally and per model, lifetime
  /// totals, and the slow-log section. `extra` is a raw JSON fragment
  /// (already quoted/escaped, e.g. `"reload": {...}, "admission":
  /// {...}`) spliced in at top level — how the server contributes its
  /// reload and admission sections without stats knowing about them.
  std::string stats_json(std::uint64_t now_us,
                         std::string_view extra = {}) const;

  /// The kHealth response body: a small liveness/readiness summary.
  /// The reload trio reports the hot-reload state (generation 0 =
  /// manager-less server, e.g. unit tests).
  std::string health_json(std::uint64_t now_us, bool draining,
                          std::size_t models_loaded,
                          std::size_t models_failed,
                          std::uint64_t generation = 0,
                          std::uint64_t reloads_ok = 0,
                          std::uint64_t reload_failures = 0) const;

  /// Lifetime count of requests that crossed the slow threshold.
  std::uint64_t slow_total() const noexcept;

  const Options& options() const noexcept { return opt_; }

 private:
  /// One aggregation target (the global one, or one model's).
  struct Series {
    explicit Series(std::span<const double> latency_bounds)
        : latency(latency_bounds) {}
    obs::WindowedHistogram latency;  ///< total_us
    obs::WindowedCounter requests;
    obs::WindowedCounter errors;
    obs::WindowedCounter shed;           ///< all shed kinds combined
    obs::WindowedCounter shed_overload;  ///< admission-control rejects
    obs::WindowedCounter shed_draining;  ///< shutdown-drain rejects
    obs::WindowedCounter cache_hits;
    obs::WindowedCounter cache_misses;
  };

  struct SlowEntry {
    std::uint64_t ts_us = 0;
    std::uint64_t request_id = 0;
    std::string model;
    std::string status;
    double total_us = 0.0;
    double eval_us = 0.0;
  };

  void append_series_json(std::string& out, const Series& s,
                          std::uint64_t now_us) const;

  const Options opt_;
  const std::uint64_t start_us_;
  Series global_;
  /// Name -> series, immutable after construction (no lock needed).
  std::map<std::string, std::unique_ptr<Series>, std::less<>> per_model_;

  // Lifetime totals (relaxed: independent monotonic event counts).
  std::atomic<std::uint64_t> total_requests_{0};
  std::atomic<std::uint64_t> total_errors_{0};
  std::atomic<std::uint64_t> total_shed_{0};
  std::atomic<std::uint64_t> total_shed_overload_{0};
  std::atomic<std::uint64_t> total_shed_draining_{0};
  std::atomic<std::uint64_t> total_cache_hits_{0};
  std::atomic<std::uint64_t> slow_total_{0};

  /// Lock class "serve.stats.slowlog"; guards only the slow ring.
  mutable util::Mutex slow_mu_;
  std::deque<SlowEntry> slow_ring_ TMM_GUARDED_BY(slow_mu_);
};

/// Default serving-latency bucket bounds: log-spaced 1 µs .. 10 s,
/// 5 per decade — resolves p99.9 of a long-tailed distribution where
/// the old linear buckets quantized it into one overflow bucket.
std::vector<double> default_latency_bounds();

}  // namespace tmm::serve
