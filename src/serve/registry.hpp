#pragma once
// Model registry for the serving engine: loads a directory of packed
// `.tmb` models once at startup and hands out shared read-only views.
//
// Loading materializes the graph's lazy caches (topological order,
// adjacency) so that worker threads can analyze the same const graph
// concurrently without racing on cache construction — the property the
// TSan build of tests/test_serve.cpp checks.
//
// Per-file failures are isolated: one corrupt model never prevents the
// others from serving (the server reports degraded startup, exit 3).
//
// Concurrency invariant: the registry is immutable after load_dir()
// returns — load runs single-threaded before workers start, lookups
// return const pointers into storage that is never resized afterwards.
// That is why this class carries no mutex and no thread-safety
// annotations. Hot-reload (serve/reload.hpp) keeps the invariant by
// mutating nothing: a reload builds a *new* registry single-threaded
// and publishes it as a fresh generation behind RegistryManager's
// shared_ptr swap; each generation stays frozen for its whole life.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/tmb.hpp"

namespace tmm::serve {

struct RegistryEntry {
  MacroModel model;
  std::string path;            ///< file the model was loaded from
  std::uint32_t num_pis = 0;   ///< boundary arity, cached for validation
  std::uint32_t num_pos = 0;
};

class ModelRegistry {
 public:
  struct LoadFailure {
    std::string path;
    std::string error;
  };

  /// Load one `.tmb` file and key it by its design name. Throws
  /// FlowError: kIo/kParse from the loader, kConfig on a duplicate
  /// design name (two files would silently shadow each other).
  void load_file(const std::string& path);

  /// Load every `*.tmb` directly under `dir` in sorted-name order.
  /// Per-file failures land in failures() instead of aborting the scan.
  /// Throws kIo when the directory is unreadable and kUnavailable when
  /// it contains .tmb files but none loads.
  /// Returns the number of models loaded by this call.
  std::size_t load_directory(const std::string& dir);

  /// nullptr when no model with this design name is loaded.
  const RegistryEntry* find(const std::string& name) const noexcept;

  std::size_t size() const noexcept { return models_.size(); }
  const std::map<std::string, RegistryEntry>& entries() const noexcept {
    return models_;
  }
  const std::vector<LoadFailure>& failures() const noexcept {
    return failures_;
  }

  /// Monotonic generation stamp assigned by RegistryManager when this
  /// registry is published (0 = never published / standalone use). The
  /// evaluator prefixes cache keys with it so a result computed against
  /// one generation can never answer a query against another.
  std::uint64_t generation() const noexcept { return generation_; }
  /// Set once, before publication, while the registry is still private
  /// to the loading thread.
  void set_generation(std::uint64_t gen) noexcept { generation_ = gen; }

 private:
  std::map<std::string, RegistryEntry> models_;
  std::vector<LoadFailure> failures_;
  std::uint64_t generation_ = 0;
};

}  // namespace tmm::serve
