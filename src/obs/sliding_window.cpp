#include "obs/sliding_window.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"

namespace tmm::obs {

namespace {

constexpr std::int64_t kSlotUs = 1'000'000;  ///< 1 s slot granularity
constexpr std::int64_t kRecycling = std::numeric_limits<std::int64_t>::min();

std::int64_t epoch_of(std::uint64_t now_us) noexcept {
  return static_cast<std::int64_t>(now_us / kSlotUs);
}

/// Move `slot_epoch` to epoch `e`, zeroing the slot's payload through
/// `zero` when this thread wins the recycle race. Returns false when
/// the caller's clock is behind the slot (another thread already
/// recycled it for a later second) — the observation is dropped rather
/// than written into the wrong window.
template <typename ZeroFn>
bool claim_slot(std::atomic<std::int64_t>& slot_epoch, std::int64_t e,
                ZeroFn zero) noexcept {
  for (;;) {
    std::int64_t cur = slot_epoch.load(std::memory_order_acquire);
    if (cur == e) return true;
    if (cur > e && cur != kRecycling) return false;
    if (cur == kRecycling) continue;  // claimant is zeroing; brief spin
    if (slot_epoch.compare_exchange_weak(cur, kRecycling,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      zero();
      slot_epoch.store(e, std::memory_order_release);
      return true;
    }
  }
}

/// Number of whole slots a `window_s` query merges, clamped to the
/// ring (at least the current slot).
std::int64_t slots_in_window(double window_s, std::size_t num_slots) noexcept {
  const double capped = std::clamp(window_s, 1.0, static_cast<double>(num_slots));
  return static_cast<std::int64_t>(capped + 0.5);
}

}  // namespace

// ------------------------------------------------------- WindowedCounter

WindowedCounter::WindowedCounter(std::size_t num_slots)
    : slots_(std::max<std::size_t>(num_slots, 2)) {}

WindowedCounter::Slot* WindowedCounter::slot_for(std::int64_t epoch) noexcept {
  return &slots_[static_cast<std::size_t>(epoch) % slots_.size()];
}

void WindowedCounter::add(std::uint64_t now_us, std::uint64_t delta) noexcept {
  const std::int64_t e = epoch_of(now_us);
  Slot* s = slot_for(e);
  if (!claim_slot(s->epoch, e,
                  [&] { s->count.store(0, std::memory_order_relaxed); }))
    return;
  s->count.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t WindowedCounter::sum(std::uint64_t now_us,
                                   double window_s) const noexcept {
  const std::int64_t e_now = epoch_of(now_us);
  const std::int64_t n = slots_in_window(window_s, slots_.size());
  std::uint64_t total = 0;
  for (std::int64_t e = e_now - n + 1; e <= e_now; ++e) {
    if (e < 0) continue;
    const Slot& s = slots_[static_cast<std::size_t>(e) % slots_.size()];
    if (s.epoch.load(std::memory_order_acquire) != e) continue;
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double WindowedCounter::rate(std::uint64_t now_us,
                             double window_s) const noexcept {
  const std::int64_t n = slots_in_window(window_s, slots_.size());
  return static_cast<double>(sum(now_us, window_s)) /
         static_cast<double>(n);
}

// ----------------------------------------------------- WindowedHistogram

WindowedHistogram::WindowedHistogram(std::span<const double> bounds,
                                     std::size_t num_slots)
    : bounds_(bounds.begin(), bounds.end()) {
  std::sort(bounds_.begin(), bounds_.end());
  const std::size_t n = std::max<std::size_t>(num_slots, 2);
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    slots_.push_back(std::make_unique<Slot>(bounds_.size() + 1));
}

WindowedHistogram::Slot* WindowedHistogram::slot_for(
    std::int64_t epoch) noexcept {
  return slots_[static_cast<std::size_t>(epoch) % slots_.size()].get();
}

void WindowedHistogram::observe(std::uint64_t now_us, double v) noexcept {
  const std::int64_t e = epoch_of(now_us);
  Slot* s = slot_for(e);
  const bool claimed = claim_slot(s->epoch, e, [&] {
    for (auto& b : s->buckets) b.store(0, std::memory_order_relaxed);
    s->count.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
  });
  if (!claimed) return;
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  s->buckets[i].fetch_add(1, std::memory_order_relaxed);
  s->count.fetch_add(1, std::memory_order_relaxed);
  double cur = s->sum.load(std::memory_order_relaxed);
  while (!s->sum.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

WindowedHistogram::Snapshot WindowedHistogram::snapshot(
    std::uint64_t now_us, double window_s) const {
  const std::int64_t e_now = epoch_of(now_us);
  const std::int64_t n = slots_in_window(window_s, slots_.size());
  Snapshot snap;
  snap.buckets.assign(bounds_.size() + 1, 0);
  snap.window_s = static_cast<double>(n);
  std::vector<std::uint64_t> tmp(snap.buckets.size());
  for (std::int64_t e = e_now - n + 1; e <= e_now; ++e) {
    if (e < 0) continue;
    const Slot& s = *slots_[static_cast<std::size_t>(e) % slots_.size()];
    if (s.epoch.load(std::memory_order_acquire) != e) continue;
    for (std::size_t b = 0; b < tmp.size(); ++b)
      tmp[b] = s.buckets[b].load(std::memory_order_relaxed);
    const std::uint64_t count = s.count.load(std::memory_order_relaxed);
    const double sum = s.sum.load(std::memory_order_relaxed);
    // A slot recycled for a later second mid-read would mix windows:
    // merge only after re-validating the epoch (dropping a racing slot
    // loses at most one second of a 300 s window).
    if (s.epoch.load(std::memory_order_acquire) != e) continue;
    for (std::size_t b = 0; b < tmp.size(); ++b) snap.buckets[b] += tmp[b];
    snap.count += count;
    snap.sum += sum;
  }
  return snap;
}

double WindowedHistogram::quantile(std::uint64_t now_us, double window_s,
                                   double q) const {
  const Snapshot snap = snapshot(now_us, window_s);
  return quantile_from_buckets(bounds_, snap.buckets, q);
}

}  // namespace tmm::obs
