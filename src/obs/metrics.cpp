#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "util/atomic_io.hpp"
#include "util/instrument.hpp"
#include "util/mutex.hpp"

namespace tmm::obs {

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) noexcept {
  // lower_bound: bounds are *inclusive* upper bounds, so a value equal
  // to a bound counts in that bound's bucket, and only values above the
  // last bound reach the overflow bucket.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS add: std::atomic<double>::fetch_add is C++20 but spotty on
  // older toolchains; the loop is equivalent and relaxed-safe.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, bucket_counts(), q);
}

double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> buckets,
                             double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based; walk buckets until the
  // cumulative count reaches it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= bounds.size())  // overflow bucket: no upper edge to lerp to
      return bounds.empty() ? 0.0 : bounds.back();
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> log_spaced_bounds(double lo, double hi, int per_decade) {
  std::vector<double> bounds;
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) return bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  for (double b = lo; b < hi * step; b *= step) bounds.push_back(b);
  return bounds;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

const util::lockorder::LockClass kRegistryLockClass("obs.metrics.registry");

/// Name -> metric maps. The mutex guards only registration/lookup and
/// snapshotting; mutation goes through the atomics inside each metric
/// (metric references escape the lock by design — they are immortal
/// and internally lock-free).
struct RegistryImpl {
  util::Mutex mu{kRegistryLockClass};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      TMM_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      TMM_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      TMM_GUARDED_BY(mu);
};

RegistryImpl& registry() {
  static RegistryImpl* r = new RegistryImpl();  // leaked: see trace.cpp
  return *r;
}

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Counter& counter(std::string_view name) {
  RegistryImpl& r = registry();
  util::MutexLock lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  RegistryImpl& r = registry();
  util::MutexLock lock(r.mu);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    it = r.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& histogram(std::string_view name, std::span<const double> bounds) {
  RegistryImpl& r = registry();
  util::MutexLock lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end())
    it = r.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

void write_metrics_json(std::ostream& os) {
  RegistryImpl& r = registry();
  util::MutexLock lock(r.mu);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << c->value();
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << g->value();
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h->bounds().size(); ++i)
      os << (i ? "," : "") << h->bounds()[i];
    os << "], \"buckets\": [";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i)
      os << (i ? "," : "") << counts[i];
    os << "], \"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"p50\": " << h->quantile(0.50)
       << ", \"p95\": " << h->quantile(0.95)
       << ", \"p99\": " << h->quantile(0.99)
       << ", \"p999\": " << h->quantile(0.999) << "}";
  }
  os << "\n  },\n  \"process\": {\n    \"current_rss_bytes\": "
     << current_rss_bytes()
     << ",\n    \"peak_rss_bytes\": " << peak_rss_bytes() << "\n  }\n}\n";
}

bool write_metrics_json_file(const std::string& path) {
  // Atomic write; never throws (CLI epilogue contract) — injected
  // faults degrade to a false return.
  try {
    std::ostringstream buf;
    write_metrics_json(buf);
    return util::atomic_write_file(path, buf.str()).ok();
  } catch (const std::exception&) {
    return false;
  }
}

void reset_metrics() {
  RegistryImpl& r = registry();
  util::MutexLock lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

}  // namespace tmm::obs
