#pragma once
// Sliding-window aggregation for long-running servers
// (docs/OBSERVABILITY.md, "Live serving telemetry").
//
// The process-lifetime metrics in obs/metrics.hpp answer "what happened
// since start"; a server that has been up for a week needs "what is
// happening *now*". WindowedCounter and WindowedHistogram keep a ring
// of per-second slots and lazily recycle slots as time advances, so a
// query merges only the slots inside the requested window — "last 10 s"
// and "last 5 min" views from one structure, with stale traffic decayed
// out instead of averaged in forever.
//
// Concurrency: mutators are lock-free (relaxed atomic adds into the
// current slot; slot recycling is a small epoch-CAS protocol), safe
// from every server worker concurrently, and queries from the admin
// channel never block them. A query may observe a slot mid-update —
// windowed statistics are approximate by nature and the error is
// bounded by one in-flight observation per mutator thread.
//
// Time is an explicit `now_us` argument (microseconds on the
// obs::trace_now_us() clock) rather than an internal clock read, so
// tests drive the windows with a fake clock and the server stamps one
// clock read per request across every structure it updates.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace tmm::obs {

/// Windowed event counter: add() lands in the current 1 s slot,
/// sum()/rate() merge the slots covering the trailing window.
class WindowedCounter {
 public:
  /// Retains `num_slots` seconds of history; windows longer than the
  /// retention are clamped to it.
  explicit WindowedCounter(std::size_t num_slots = 330);

  void add(std::uint64_t now_us, std::uint64_t delta = 1) noexcept;

  /// Total events in the trailing `window_s` seconds (the current
  /// partial second counts in full).
  std::uint64_t sum(std::uint64_t now_us, double window_s) const noexcept;

  /// sum() divided by the window length, events per second.
  double rate(std::uint64_t now_us, double window_s) const noexcept;

 private:
  struct Slot {
    /// Second-granularity epoch this slot currently holds, or
    /// kRecycling while a claimant zeroes it; -1 = never used.
    std::atomic<std::int64_t> epoch{-1};
    std::atomic<std::uint64_t> count{0};
  };
  Slot* slot_for(std::int64_t epoch) noexcept;

  std::vector<Slot> slots_;
};

/// Windowed histogram over fixed bucket bounds (ascending upper bounds
/// plus an implicit overflow bucket, as obs::Histogram).
class WindowedHistogram {
 public:
  explicit WindowedHistogram(std::span<const double> bounds,
                             std::size_t num_slots = 330);

  void observe(std::uint64_t now_us, double v) noexcept;

  /// Merged view of the trailing window.
  struct Snapshot {
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double window_s = 0.0;

    double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  Snapshot snapshot(std::uint64_t now_us, double window_s) const;

  /// Estimated q-quantile of the trailing window (bucket
  /// interpolation, as obs::Histogram::quantile).
  double quantile(std::uint64_t now_us, double window_s, double q) const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  struct Slot {
    explicit Slot(std::size_t num_buckets) : buckets(num_buckets) {}
    std::atomic<std::int64_t> epoch{-1};
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  Slot* slot_for(std::int64_t epoch) noexcept;

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace tmm::obs
