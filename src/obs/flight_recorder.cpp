#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "util/atomic_io.hpp"
#include "util/mutex.hpp"

namespace tmm::obs {

namespace {

constexpr std::size_t kWordsPerRecord =
    sizeof(FlightRecord) / sizeof(std::uint64_t);

const util::lockorder::LockClass kFlightRegistryClass("obs.flightrec.registry");

/// One ring per thread. The owning thread is the only writer; drains
/// read concurrently through the per-slot seqlock:
///   writer:  slot_seq += 1 (odd)  -> store words -> slot_seq += 1 (even)
///   reader:  s1 = slot_seq (acquire); copy words; fence; s2 = slot_seq
///            — keep the copy only when s1 == s2 and s1 is even.
/// slot_seq is monotonic per slot, so a wrap-around overwrite between
/// the reader's two loads always changes the value and the torn copy is
/// discarded. All word accesses are relaxed atomics: TSan-clean without
/// any lock on the record path.
struct Ring {
  explicit Ring(std::size_t capacity)
      : cap(capacity), words(capacity * kWordsPerRecord), seqs(capacity) {}

  const std::size_t cap;
  std::vector<std::atomic<std::uint64_t>> words;
  std::vector<std::atomic<std::uint64_t>> seqs;  ///< per-slot seqlock
  /// Records ever written by this ring; slot = head % cap. Published
  /// with release so a drain that reads it (acquire) sees every fully
  /// written slot below it.
  std::atomic<std::uint64_t> head{0};

  void write(const FlightRecord& rec) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    const std::size_t slot = static_cast<std::size_t>(h % cap);
    std::atomic<std::uint64_t>& sq = seqs[slot];
    sq.store(sq.load(std::memory_order_relaxed) + 1,
             std::memory_order_release);  // odd: write in progress
    std::uint64_t tmp[kWordsPerRecord];
    std::memcpy(tmp, &rec, sizeof rec);
    std::atomic<std::uint64_t>* w = words.data() + slot * kWordsPerRecord;
    for (std::size_t i = 0; i < kWordsPerRecord; ++i)
      w[i].store(tmp[i], std::memory_order_relaxed);
    sq.store(sq.load(std::memory_order_relaxed) + 1,
             std::memory_order_release);  // even: slot consistent
    head.store(h + 1, std::memory_order_release);
  }

  /// Copy slot `slot` into `out`; false when the slot is mid-write or
  /// overwritten during the copy (caller retries or skips).
  bool read(std::size_t slot, FlightRecord& out) const noexcept {
    const std::atomic<std::uint64_t>& sq = seqs[slot];
    const std::uint64_t s1 = sq.load(std::memory_order_acquire);
    if (s1 % 2 != 0) return false;
    std::uint64_t tmp[kWordsPerRecord];
    const std::atomic<std::uint64_t>* w =
        words.data() + slot * kWordsPerRecord;
    // Acquire word loads pin the seq re-check after every data load
    // (an acquire fence would be tidier, but GCC's TSan rejects
    // atomic_thread_fence); this is the drain path, never the hot one.
    for (std::size_t i = 0; i < kWordsPerRecord; ++i)
      tmp[i] = w[i].load(std::memory_order_acquire);
    if (sq.load(std::memory_order_relaxed) != s1) return false;
    std::memcpy(&out, tmp, sizeof out);
    return true;
  }
};

struct Recorder {
  util::Mutex mu{kFlightRegistryClass};
  std::vector<std::shared_ptr<Ring>> rings TMM_GUARDED_BY(mu);
  std::size_t capacity TMM_GUARDED_BY(mu) = 256;
  /// Generation bump on reset: threads re-register their ring lazily
  /// so reset_flight_recorder() from one thread empties every ring
  /// without racing other threads' writes.
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> next_seq{1};
  std::atomic<std::uint64_t> total{0};
};

Recorder& recorder() {
  static Recorder* r = new Recorder();  // leaked: threads may outlive main
  return *r;
}

Ring& local_ring() {
  struct Handle {
    std::shared_ptr<Ring> ring;
    std::uint64_t generation = 0;
  };
  thread_local Handle h;
  Recorder& r = recorder();
  const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
  if (h.ring == nullptr || h.generation != gen) {
    util::MutexLock lock(r.mu);
    h.ring = std::make_shared<Ring>(r.capacity);
    h.generation = gen;
    r.rings.push_back(h.ring);
  }
  return *h.ring;
}

void json_text(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) >= 0x20) os << c;
  }
  os << '"';
}

}  // namespace

namespace detail {

// Invariant: g_flight_enabled is a pure on/off gate; a record racing a
// toggle merely lands on one side of it. The ring seqlocks order the
// record data itself, so relaxed suffices.
std::atomic<bool> g_flight_enabled{false};

void flight_record_slow(const FlightRecord& rec) {
  Recorder& r = recorder();
  FlightRecord stamped = rec;
  stamped.seq = r.next_seq.fetch_add(1, std::memory_order_relaxed);
  r.total.fetch_add(1, std::memory_order_relaxed);
  local_ring().write(stamped);
}

}  // namespace detail

void set_flight_recorder_enabled(bool on, std::size_t per_thread_capacity) {
  Recorder& r = recorder();
  {
    util::MutexLock lock(r.mu);
    if (per_thread_capacity > 0) r.capacity = per_thread_capacity;
  }
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

bool flight_recorder_enabled() noexcept {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

std::vector<FlightRecord> flight_snapshot() {
  Recorder& r = recorder();
  std::vector<std::shared_ptr<Ring>> rings;
  {
    util::MutexLock lock(r.mu);
    rings = r.rings;  // shared_ptr copies: read outside the lock
  }
  std::vector<FlightRecord> out;
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(head, ring->cap));
    for (std::size_t i = 0; i < n; ++i) {
      FlightRecord rec;
      if (ring->read(i, rec) && rec.seq != 0) out.push_back(rec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t flight_total_recorded() noexcept {
  return recorder().total.load(std::memory_order_relaxed);
}

void reset_flight_recorder() {
  Recorder& r = recorder();
  util::MutexLock lock(r.mu);
  r.rings.clear();
  r.generation.fetch_add(1, std::memory_order_acq_rel);
  r.next_seq.store(1, std::memory_order_relaxed);
  r.total.store(0, std::memory_order_relaxed);
}

void write_flight_dump_json(std::ostream& os) {
  const std::vector<FlightRecord> records = flight_snapshot();
  os << "{\n  \"records_total\": " << flight_total_recorded()
     << ",\n  \"records_retained\": " << records.size()
     << ",\n  \"records\": [";
  bool first = true;
  for (const FlightRecord& rec : records) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"seq\": " << rec.seq << ", \"request_id\": " << rec.request_id
       << ", \"ts_us\": " << rec.ts_us << ", \"model\": ";
    json_text(os, rec.model_str());
    os << ", \"status\": ";
    json_text(os, rec.status_str());
    os << ", \"kind\": " << rec.kind
       << ", \"cache_hit\": " << ((rec.flags & kFlightCacheHit) != 0 ? 1 : 0);
    if ((rec.flags & kFlightHasDeadline) != 0)
      os << ", \"deadline_slack_ms\": " << rec.deadline_slack_ms;
    os << ", \"parse_us\": " << rec.parse_us
       << ", \"cache_us\": " << rec.cache_us
       << ", \"eval_us\": " << rec.eval_us
       << ", \"write_us\": " << rec.write_us
       << ", \"total_us\": " << rec.total_us << "}";
  }
  os << "\n  ]\n}\n";
}

bool write_flight_dump_file(const std::string& path) {
  try {
    std::ostringstream buf;
    write_flight_dump_json(buf);
    return util::atomic_write_file(path, buf.str()).ok();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace tmm::obs
