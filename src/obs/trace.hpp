#pragma once
// Flow-wide tracing: RAII scoped spans collected into per-thread
// buffers and exported as Chrome trace-event JSON, loadable by
// chrome://tracing and https://ui.perfetto.dev.
//
// Tracing is off by default. A disabled Span costs exactly one relaxed
// atomic load and a branch — no clock read, no allocation — so the
// pipeline stays permanently instrumented (see BM_ObsSpanDisabled in
// bench/bench_micro.cpp for the measured cost). Span names follow the
// `layer.operation` convention documented in docs/OBSERVABILITY.md.

#include <cstdint>
#include <ostream>
#include <string>

namespace tmm::obs {

/// Global tracing switch; read with one relaxed atomic load.
bool tracing_enabled() noexcept;
void set_tracing_enabled(bool on) noexcept;

/// Drop every buffered event (tests and repeated CLI runs).
void reset_trace();

/// Number of buffered events across all threads.
std::size_t trace_event_count();

/// Microseconds since the process-wide trace epoch (steady clock).
std::uint64_t trace_now_us() noexcept;

namespace detail {
// Records one complete ("X") event; called from ~Span with the start
// timestamp captured at construction.
void span_end(const char* name, std::uint64_t start_us, const char* arg_name,
              double arg_value, bool has_arg);
void counter_event(const char* name, double value);
}  // namespace detail

/// RAII scoped span. Nesting is expressed by lifetime: a span that
/// begins and ends inside another renders nested in the trace viewer
/// (Chrome "X" complete events on the same thread track).
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_us_ = trace_now_us();
    }
  }
  ~Span() {
    if (name_ != nullptr)
      detail::span_end(name_, start_us_, arg_name_, arg_value_, has_arg_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach one numeric argument shown under the span in the viewer
  /// (e.g. a loss value or a pin count). Last call wins.
  void set_arg(const char* key, double value) noexcept {
    if (name_ == nullptr) return;
    arg_name_ = key;
    arg_value_ = value;
    has_arg_ = true;
  }

 private:
  const char* name_ = nullptr;  ///< nullptr == span disabled at entry
  const char* arg_name_ = nullptr;
  std::uint64_t start_us_ = 0;
  double arg_value_ = 0.0;
  bool has_arg_ = false;
};

/// Record a Chrome "C" counter sample (rendered as a stacked chart).
inline void trace_counter(const char* name, double value) {
  if (tracing_enabled()) detail::counter_event(name, value);
}

/// Sample the current resident set size as a "rss_mb" counter event.
void trace_rss_sample();

/// Serialize every buffered event as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& os);

/// Convenience: write_chrome_trace to `path`; returns false on I/O error.
bool write_chrome_trace_file(const std::string& path);

}  // namespace tmm::obs
