#pragma once
// Global metrics registry: named counters, gauges and fixed-bucket
// histograms, dumped as one JSON snapshot (`tmm --metrics out.json`,
// Framework stage accounting, bench harnesses).
//
// All mutators are lock-free atomics, safe under concurrent use from
// the TS-evaluation worker pool (ThreadSanitizer-clean). Call sites
// cache the returned reference in a function-local static so the hot
// path is a single relaxed atomic operation:
//
//   static obs::Counter& runs = obs::counter("sta.runs");
//   runs.add();
//
// Metric names follow the `layer.quantity` convention documented in
// docs/OBSERVABILITY.md.

#include <atomic>
#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tmm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. "pins remained by the latest filter run").
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; one
/// implicit overflow bucket collects everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside
  /// the bucket the rank falls into; observations in the overflow
  /// bucket report the last bound (a lower bound on the true value).
  /// 0 when empty. The JSON snapshot emits p50/p95/p99/p999 from this.
  double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Estimate the q-quantile of a bucketed distribution: `buckets` has
/// bounds.size() + 1 entries (the last is the overflow bucket), with
/// linear interpolation inside the bucket the rank falls into. Shared
/// by Histogram::quantile and obs::WindowedHistogram so lifetime and
/// windowed percentiles agree on semantics.
double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> buckets,
                             double q);

/// Log-spaced histogram bounds: `per_decade` bounds per power of ten
/// from `lo` up to and including (at least) `hi`. Tail percentiles of a
/// long-tailed latency distribution need log spacing — linear buckets
/// quantize p99.9 into one coarse overflow bucket.
std::vector<double> log_spaced_bounds(double lo, double hi, int per_decade);

/// Look up (or register on first use) a metric by name. References stay
/// valid for the process lifetime; repeated calls with the same name
/// return the same object. A histogram's bucket bounds are fixed by the
/// first registration; later `bounds` arguments are ignored.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::span<const double> bounds);

/// Snapshot every registered metric as JSON, plus a `process` section
/// with the current/peak RSS sampled at dump time (instrument.hpp).
void write_metrics_json(std::ostream& os);

/// Convenience: write_metrics_json to `path`; returns false on I/O error.
bool write_metrics_json_file(const std::string& path);

/// Zero every registered metric (bench and test isolation). Registered
/// references remain valid.
void reset_metrics();

}  // namespace tmm::obs
