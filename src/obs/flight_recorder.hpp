#pragma once
// Request flight recorder: a lock-free black box for the serving layer
// (docs/OBSERVABILITY.md, "Live serving telemetry").
//
// Each worker thread owns a fixed-capacity ring of fixed-size
// FlightRecords; record() overwrites the oldest slot, so the recorder
// always holds the last N requests per thread. Writes never take a
// lock: the owning thread is the sole writer, and every slot is
// protected by a per-slot sequence counter (a seqlock) over 8-byte
// atomic words, so a concurrent drain (flight_snapshot(), the
// `kFlightDump` admin request, the dump-on-fault hook) copies only
// consistent records and simply skips a slot it races with. Disabled
// (the default), record() is one relaxed atomic load — the same
// permanently-instrumented contract as obs::Span; the enabled hot-path
// cost is measured by BM_FlightRecord* in bench/bench_micro.cpp
// (budget: < 100 ns/request).
//
// Dumps are deterministic: records carry a process-wide monotonic
// sequence stamp assigned at record() time, and every drain sorts by
// it, so a quiesced recorder always dumps the same JSON.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <vector>

namespace tmm::obs {

/// Flag bits for FlightRecord::flags.
inline constexpr std::uint16_t kFlightCacheHit = 1u;
inline constexpr std::uint16_t kFlightHasDeadline = 2u;
inline constexpr std::uint16_t kFlightShedOverload = 4u;
inline constexpr std::uint16_t kFlightShedDraining = 8u;

/// One served request, fixed size so ring slots never allocate. The
/// text fields are truncating copies (set_model/set_status) — long
/// model names keep their prefix.
struct FlightRecord {
  std::uint64_t seq = 0;         ///< process-wide order stamp (drain sort key)
  std::uint64_t request_id = 0;
  std::uint64_t ts_us = 0;       ///< arrival, microseconds since trace epoch
  char model[16] = {};           ///< NUL-padded, possibly truncated
  char status[12] = {};          ///< response status label ("ok", ...)
  std::uint16_t flags = 0;       ///< kFlight* bits (cache hit, deadline, shed)
  std::uint16_t kind = 0;        ///< protocol request kind (0 = evaluate)
  /// Deadline slack at response time: deadline minus elapsed,
  /// milliseconds (negative = answered late). Meaningful only with
  /// kFlightHasDeadline.
  float deadline_slack_ms = 0.0F;
  // Per-stage timing breakdown, microseconds.
  float parse_us = 0.0F;
  float cache_us = 0.0F;  ///< result-cache lookup (cache-hit requests)
  float eval_us = 0.0F;   ///< STA evaluation (cache-miss requests)
  float write_us = 0.0F;
  float total_us = 0.0F;  ///< arrival to response written

  void set_model(const char* name) { copy_text(model, sizeof model, name); }
  void set_status(const char* name) { copy_text(status, sizeof status, name); }
  std::string model_str() const { return text_str(model, sizeof model); }
  std::string status_str() const { return text_str(status, sizeof status); }

 private:
  static void copy_text(char* dst, std::size_t cap, const char* src) {
    std::memset(dst, 0, cap);
    if (src == nullptr) return;
    const std::size_t n = std::strlen(src);
    std::memcpy(dst, src, n < cap - 1 ? n : cap - 1);
  }
  static std::string text_str(const char* src, std::size_t cap) {
    return {src, ::strnlen(src, cap)};
  }
};
static_assert(sizeof(FlightRecord) % sizeof(std::uint64_t) == 0,
              "records are copied through 8-byte atomic words");

/// Turn the recorder on with the given per-thread ring capacity, or
/// off. Capacity applies to rings created after the call (a thread's
/// ring is sized on its first record()); re-enabling with a different
/// capacity does not resize existing rings.
void set_flight_recorder_enabled(bool on, std::size_t per_thread_capacity = 256);
bool flight_recorder_enabled() noexcept;

namespace detail {
extern std::atomic<bool> g_flight_enabled;
void flight_record_slow(const FlightRecord& rec);
}  // namespace detail

/// Hot path: append one record to the calling thread's ring. Disabled,
/// this is a single relaxed load and a branch. `rec.seq` is assigned
/// here; the caller's value is ignored.
inline void flight_record(const FlightRecord& rec) noexcept {
  if (!detail::g_flight_enabled.load(std::memory_order_relaxed)) return;
  detail::flight_record_slow(rec);
}

/// Consistent copy of every retained record across all threads, sorted
/// by sequence stamp (oldest first). Slots mid-write are skipped, never
/// torn.
std::vector<FlightRecord> flight_snapshot();

/// Number of records ever recorded (not just retained).
std::uint64_t flight_total_recorded() noexcept;

/// Drop every ring and reset the sequence stamp (test isolation).
/// Leaves the enabled flag and capacity unchanged.
void reset_flight_recorder();

/// Serialize flight_snapshot() as a JSON object:
///   {"records_total": N, "records": [{...}, ...]}
void write_flight_dump_json(std::ostream& os);

/// Atomic-write the dump to `path`; false on I/O failure (the dump-on-
/// fault hook must never turn a fault into a second failure).
bool write_flight_dump_file(const std::string& path);

}  // namespace tmm::obs
