#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "util/atomic_io.hpp"
#include "util/instrument.hpp"
#include "util/mutex.hpp"

namespace tmm::obs {

namespace {

// Invariant: g_tracing is a pure on/off flag; the per-thread buffer
// mutexes order the event data itself, so relaxed loads/stores suffice
// (a span racing a toggle merely lands on one side of it).
std::atomic<bool> g_tracing{false};

const util::lockorder::LockClass kTraceRegistryClass("obs.trace.registry");
const util::lockorder::LockClass kTraceBufferClass("obs.trace.buffer");

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  char phase = 'X';  // 'X' complete span, 'C' counter sample
  bool has_arg = false;
  std::string arg_name;
  double arg_value = 0.0;
};

/// One buffer per thread. Appends come only from the owning thread;
/// the mutex makes export/reset from another thread race-free without
/// contending the hot path (the owner's lock is almost always
/// uncontended).
/// Lock order: obs.trace.registry before obs.trace.buffer (export and
/// reset hold the registry lock while visiting each buffer); `tid` is
/// written once at registration, then read-only.
struct ThreadBuffer {
  util::Mutex mu{kTraceBufferClass};
  std::vector<TraceEvent> events TMM_GUARDED_BY(mu);
  std::uint32_t tid = 0;
};

struct Registry {
  util::Mutex mu{kTraceRegistryClass};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers TMM_GUARDED_BY(mu);
  std::uint32_t next_tid TMM_GUARDED_BY(mu) = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may outlive main
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    util::MutexLock lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void append(TraceEvent ev) {
  ThreadBuffer& buf = local_buffer();
  util::MutexLock lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          os << hex;
        } else {
          os << c;
        }
    }
  }
}

void write_event(std::ostream& os, const TraceEvent& ev, std::uint32_t tid) {
  os << "{\"name\":\"";
  json_escape(os, ev.name);
  os << "\",\"cat\":\"tmm\",\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":"
     << tid << ",\"ts\":" << ev.ts_us;
  if (ev.phase == 'X') os << ",\"dur\":" << ev.dur_us;
  if (ev.phase == 'C') {
    os << ",\"args\":{\"value\":" << ev.arg_value << "}";
  } else if (ev.has_arg) {
    os << ",\"args\":{\"";
    json_escape(os, ev.arg_name);
    os << "\":" << ev.arg_value << "}";
  }
  os << "}";
}

}  // namespace

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept {
  if (on) trace_epoch();  // pin the epoch before the first span
  g_tracing.store(on, std::memory_order_relaxed);
}

void reset_trace() {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  for (auto& buf : r.buffers) {
    util::MutexLock buf_lock(buf->mu);
    buf->events.clear();
  }
}

std::size_t trace_event_count() {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  std::size_t n = 0;
  for (auto& buf : r.buffers) {
    util::MutexLock buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::uint64_t trace_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

namespace detail {

void span_end(const char* name, std::uint64_t start_us, const char* arg_name,
              double arg_value, bool has_arg) {
  TraceEvent ev;
  ev.name = name;
  ev.ts_us = start_us;
  const std::uint64_t now = trace_now_us();
  ev.dur_us = now > start_us ? now - start_us : 0;
  ev.phase = 'X';
  if (has_arg) {
    ev.has_arg = true;
    ev.arg_name = arg_name;
    ev.arg_value = arg_value;
  }
  append(std::move(ev));
}

void counter_event(const char* name, double value) {
  TraceEvent ev;
  ev.name = name;
  ev.ts_us = trace_now_us();
  ev.phase = 'C';
  ev.arg_value = value;
  append(std::move(ev));
}

}  // namespace detail

void trace_rss_sample() {
  if (!tracing_enabled()) return;
  detail::counter_event(
      "rss_mb", static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0));
}

void write_chrome_trace(std::ostream& os) {
  Registry& r = registry();
  util::MutexLock lock(r.mu);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (auto& buf : r.buffers) {
    util::MutexLock buf_lock(buf->mu);
    for (const TraceEvent& ev : buf->events) {
      if (!first) os << ",\n";
      first = false;
      write_event(os, ev, buf->tid);
    }
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  // Atomic write: a run killed while flushing its trace must not leave
  // a truncated JSON at the final path. This writer is on the never-
  // throws contract of the CLI epilogue, so injected faults degrade to
  // a false return instead of propagating.
  try {
    std::ostringstream buf;
    write_chrome_trace(buf);
    return util::atomic_write_file(path, buf.str()).ok();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace tmm::obs
