#pragma once
// The pin-classification GNN (Section 5.1): a stack of GraphSAGE (or
// GCN) message-passing layers followed by a dense head producing one
// logit per pin; sigmoid(logit) is the predicted probability that the
// pin is timing-variant.

#include <iosfwd>
#include <optional>
#include <string>

#include "gnn/layers.hpp"

namespace tmm {

enum class GnnEngine : std::uint8_t {
  kGraphSage = 0,      ///< mean aggregator (the paper's default)
  kGcn = 1,            ///< symmetric-normalized GCN
  kGraphSagePool = 2,  ///< max-pooling aggregator
};

struct GnnModelConfig {
  std::size_t input_dim = 8;   ///< 8 basic features, 9 with is_CPPR
  std::size_t hidden_dim = 32;
  std::size_t num_layers = 2;  ///< message-passing layers
  GnnEngine engine = GnnEngine::kGraphSage;
  std::uint64_t seed = 99;
};

class GnnModel {
 public:
  explicit GnnModel(GnnModelConfig cfg);

  const GnnModelConfig& config() const noexcept { return cfg_; }

  /// Forward pass producing one logit per node (n x 1).
  Matrix forward(const GnnGraph& g, const Matrix& x);
  /// Backprop from dL/dlogits; accumulates parameter gradients.
  void backward(const GnnGraph& g, const Matrix& dlogits);

  std::vector<Param*> params();

  /// Per-node probabilities sigmoid(logit).
  std::vector<float> predict(const GnnGraph& g, const Matrix& x);

  void save(std::ostream& os) const;
  /// Malformed or non-finite weight files raise fault::FlowError
  /// (kParse) with `source`:line context.
  static GnnModel load(std::istream& is, std::string source = "<gnn>");

 private:
  GnnModelConfig cfg_;
  std::vector<SageLayer> sage_;
  std::vector<GcnLayer> gcn_;
  std::vector<SagePoolLayer> pool_;
  std::optional<DenseLayer> head_;
};

/// GnnModel::load from a file, with the path as error context.
GnnModel load_gnn_file(const std::string& path);

/// Atomic save to `path` (util::atomic_write_file): interrupted runs
/// never leave torn weight files.
void save_gnn_file(const GnnModel& model, const std::string& path);

}  // namespace tmm
