#include "gnn/trainer.hpp"

#include <cmath>
#include <limits>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/instrument.hpp"
#include "util/log.hpp"

namespace tmm {

namespace {

// Metric handles resolved at namespace scope (the registry is a leaked
// function-local static, so this is static-init safe) — keeps the init
// guard out of the per-epoch loop.
constexpr double kEpochBounds[] = {0.001, 0.01, 0.1, 1.0, 10.0};
obs::Counter& g_epochs_total = obs::counter("gnn.epochs");
obs::Histogram& g_epoch_hist =
    obs::histogram("gnn.epoch_seconds", kEpochBounds);

}  // namespace

double bce_with_logits(const Matrix& logits, std::span<const float> labels,
                       std::span<const unsigned char> mask, float pos_weight,
                       Matrix& dlogits) {
  dlogits = Matrix(logits.rows(), logits.cols());
  double loss = 0.0;
  double weight_sum = 0.0;
  const std::size_t n = logits.rows();
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const float y = labels[i];
    const float z = logits(i, 0);
    const float w = y >= 0.5f ? pos_weight : 1.0f;
    // Stable BCE-with-logits: max(z,0) - z*y + log(1 + exp(-|z|)).
    const float zabs = std::fabs(z);
    loss += w * (std::max(z, 0.0f) - z * y + std::log1p(std::exp(-zabs)));
    dlogits(i, 0) = w * (sigmoidf(z) - y);
    weight_sum += w;
  }
  if (weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / weight_sum);
    for (float& v : dlogits.data()) v *= inv;
    loss /= weight_sum;
  }
  return loss;
}

double mse_on_sigmoid(const Matrix& logits, std::span<const float> targets,
                      std::span<const unsigned char> mask, float pos_weight,
                      Matrix& dlogits) {
  dlogits = Matrix(logits.rows(), logits.cols());
  double loss = 0.0;
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const float y = targets[i];
    const float p = sigmoidf(logits(i, 0));
    const float w = y > 0.0f ? pos_weight : 1.0f;
    const float e = p - y;
    loss += w * e * e;
    // d/dz (p - y)^2 = 2 (p - y) p (1 - p)
    dlogits(i, 0) = w * 2.0f * e * p * (1.0f - p);
    weight_sum += w;
  }
  if (weight_sum > 0.0) {
    const float inv = static_cast<float>(1.0 / weight_sum);
    for (float& v : dlogits.data()) v *= inv;
    loss /= weight_sum;
  }
  return loss;
}

TrainReport train_model(GnnModel& model, std::span<const GraphSample> samples,
                        const TrainConfig& cfg) {
  TrainReport report;
  Stopwatch sw;

  float pos_weight = cfg.pos_weight;
  if (pos_weight <= 0.0f) {
    std::size_t pos = 0;
    std::size_t neg = 0;
    for (const auto& s : samples) {
      for (std::size_t i = 0; i < s.labels.size(); ++i) {
        if (!s.mask.empty() && !s.mask[i]) continue;
        (s.labels[i] >= 0.5f ? pos : neg)++;
      }
    }
    pos_weight = pos > 0 ? static_cast<float>(neg) / static_cast<float>(pos)
                         : 1.0f;
    pos_weight = std::min(pos_weight, 50.0f);
  }

  obs::Span train_span("gnn.train");

  Adam opt(model.params(), cfg.adam);
  double best_loss = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::Span epoch_span("gnn.epoch");
    Stopwatch epoch_sw;
    double epoch_loss = 0.0;
    for (const auto& s : samples) {
      Matrix logits = model.forward(s.graph, s.features);
      Matrix dlogits;
      epoch_loss +=
          cfg.loss == LossKind::kBinaryCrossEntropy
              ? bce_with_logits(logits, s.labels, s.mask, pos_weight, dlogits)
              : mse_on_sigmoid(logits, s.labels, s.mask, pos_weight, dlogits);
      model.backward(s.graph, dlogits);
    }
    opt.step();
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, samples.size()));
    fault::inject("gnn.train_epoch");
    // Numeric guard: a diverged loss (NaN/Inf from an exploded update
    // or poisoned features) would silently optimize garbage for the
    // remaining epochs and produce a model that predicts NaN-shaped
    // keep-sets. Abort the stage with a structured error instead; the
    // flow layer records the failure and keeps the run alive.
    if (!std::isfinite(epoch_loss))
      throw fault::FlowError(
          fault::ErrorCode::kNumeric, "gnn.train",
          "non-finite loss at epoch " + std::to_string(epoch + 1) +
              " (diverged or poisoned inputs)");
    report.final_loss = epoch_loss;
    report.epochs_run = epoch + 1;
    g_epochs_total.add();
    g_epoch_hist.observe(epoch_sw.seconds());
    epoch_span.set_arg("loss", epoch_loss);
    if (epoch % 25 == 0)
      log_debug("gnn epoch %zu loss %.6f", epoch, epoch_loss);
    if (cfg.patience > 0) {
      if (epoch_loss < best_loss - cfg.min_delta) {
        best_loss = epoch_loss;
        stall = 0;
      } else if (++stall >= cfg.patience) {
        break;
      }
    }
  }

  // Aggregate training confusion at threshold 0.5.
  for (const auto& s : samples) {
    const auto probs = model.predict(s.graph, s.features);
    const Confusion c = confusion_matrix(probs, s.labels, s.mask);
    report.train_confusion.tp += c.tp;
    report.train_confusion.fp += c.fp;
    report.train_confusion.tn += c.tn;
    report.train_confusion.fn += c.fn;
  }
  report.seconds = sw.seconds();
  obs::gauge("gnn.final_loss").set(report.final_loss);
  obs::gauge("gnn.epochs_run").set(static_cast<double>(report.epochs_run));
  train_span.set_arg("epochs", static_cast<double>(report.epochs_run));
  return report;
}

}  // namespace tmm
