#pragma once
// Full-graph training over a set of design graphs with class-weighted
// binary cross-entropy (positives — timing-variant pins — are rare).

#include <span>

#include "gnn/adam.hpp"
#include "gnn/graphsage.hpp"
#include "gnn/metrics.hpp"

namespace tmm {

/// One training design: graph structure, per-node features and labels,
/// and a mask selecting the nodes that contribute to the loss.
struct GraphSample {
  GnnGraph graph;
  Matrix features;            // n x F
  std::vector<float> labels;  // n, in {0,1}
  std::vector<unsigned char> mask;
};

enum class LossKind : std::uint8_t {
  kBinaryCrossEntropy,  ///< classification: label = (TS > 0)
  kMeanSquaredError,    ///< regression on sigmoid output (Section 5.3)
};

struct TrainConfig {
  std::size_t epochs = 150;
  AdamConfig adam{.lr = 0.01f};
  LossKind loss = LossKind::kBinaryCrossEntropy;
  /// Weight applied to positive examples; 0 = auto (#neg / #pos).
  float pos_weight = 0.0f;
  /// Stop early when the loss improves by less than `min_delta` for
  /// `patience` consecutive epochs (0 = disabled).
  std::size_t patience = 25;
  double min_delta = 1e-5;
};

struct TrainReport {
  double final_loss = 0.0;
  std::size_t epochs_run = 0;
  Confusion train_confusion;
  double seconds = 0.0;
};

/// Masked, class-weighted BCE-with-logits; fills `dlogits` with the
/// gradient (same shape as logits). Returns the mean loss.
double bce_with_logits(const Matrix& logits, std::span<const float> labels,
                       std::span<const unsigned char> mask, float pos_weight,
                       Matrix& dlogits);

/// Masked, weighted MSE on sigmoid(logits) against targets in [0, 1]
/// (the regression formulation of Section 5.3: targets are normalized
/// timing sensitivities, so the model learns relative criticality).
double mse_on_sigmoid(const Matrix& logits, std::span<const float> targets,
                      std::span<const unsigned char> mask, float pos_weight,
                      Matrix& dlogits);

TrainReport train_model(GnnModel& model, std::span<const GraphSample> samples,
                        const TrainConfig& cfg = {});

}  // namespace tmm
