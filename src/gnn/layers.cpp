#include "gnn/layers.hpp"

#include <cmath>

#include "sta/timing_graph.hpp"

namespace tmm {

GnnGraph GnnGraph::from_timing_graph(const TimingGraph& g) {
  GnnGraph out;
  out.num_nodes = g.num_nodes();
  std::vector<std::uint32_t> deg(out.num_nodes, 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (arc.dead) continue;
    ++deg[arc.from];
    ++deg[arc.to];
  }
  out.offsets.assign(out.num_nodes + 1, 0);
  for (std::size_t v = 0; v < out.num_nodes; ++v)
    out.offsets[v + 1] = out.offsets[v] + deg[v];
  out.neighbors.resize(out.offsets.back());
  std::vector<std::uint32_t> cursor(out.offsets.begin(),
                                    out.offsets.end() - 1);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (arc.dead) continue;
    out.neighbors[cursor[arc.from]++] = arc.to;
    out.neighbors[cursor[arc.to]++] = arc.from;
  }
  return out;
}

void mean_aggregate(const GnnGraph& g, const Matrix& x, Matrix& out) {
  out = Matrix(x.rows(), x.cols());
  for (std::size_t v = 0; v < g.num_nodes; ++v) {
    const std::size_t d = g.degree(v);
    if (d == 0) continue;
    auto orow = out.row(v);
    for (std::size_t k = g.offsets[v]; k < g.offsets[v + 1]; ++k) {
      const auto urow = x.row(g.neighbors[k]);
      for (std::size_t c = 0; c < urow.size(); ++c) orow[c] += urow[c];
    }
    const float inv = 1.0f / static_cast<float>(d);
    for (float& v2 : orow) v2 *= inv;
  }
}

void mean_aggregate_backward(const GnnGraph& g, const Matrix& dout,
                             Matrix& dx) {
  if (dx.rows() != dout.rows() || dx.cols() != dout.cols())
    dx = Matrix(dout.rows(), dout.cols());
  for (std::size_t v = 0; v < g.num_nodes; ++v) {
    const std::size_t d = g.degree(v);
    if (d == 0) continue;
    const float inv = 1.0f / static_cast<float>(d);
    const auto drow = dout.row(v);
    for (std::size_t k = g.offsets[v]; k < g.offsets[v + 1]; ++k) {
      auto urow = dx.row(g.neighbors[k]);
      for (std::size_t c = 0; c < urow.size(); ++c) urow[c] += inv * drow[c];
    }
  }
}

// ------------------------------------------------------------- SageLayer

SageLayer::SageLayer(std::size_t in_dim, std::size_t out_dim, bool relu,
                     Rng& rng)
    : relu_(relu) {
  w_self_.init_glorot(in_dim, out_dim, rng);
  w_neigh_.init_glorot(in_dim, out_dim, rng);
  bias_.init_zero(1, out_dim);
}

Matrix SageLayer::forward(const GnnGraph& g, const Matrix& x) {
  x_cache_ = x;
  mean_aggregate(g, x, hn_cache_);
  Matrix z;
  matmul(x, w_self_.value, z);
  Matrix zn;
  matmul(hn_cache_, w_neigh_.value, zn);
  add_inplace(z, zn);
  add_bias(z, bias_.value.data());
  if (relu_) relu_forward(z, relu_mask_);
  return z;
}

Matrix SageLayer::backward(const GnnGraph& g, const Matrix& dout) {
  Matrix dz = dout;
  if (relu_) relu_backward(dz, relu_mask_);

  Matrix gw;
  matmul_at_b(x_cache_, dz, gw);
  add_inplace(w_self_.grad, gw);
  matmul_at_b(hn_cache_, dz, gw);
  add_inplace(w_neigh_.grad, gw);
  for (std::size_t r = 0; r < dz.rows(); ++r) {
    auto row = dz.row(r);
    auto brow = bias_.grad.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) brow[c] += row[c];
  }

  Matrix dx;
  matmul_a_bt(dz, w_self_.value, dx);
  Matrix dhn;
  matmul_a_bt(dz, w_neigh_.value, dhn);
  mean_aggregate_backward(g, dhn, dx);
  return dx;
}

// --------------------------------------------------------- SagePoolLayer

SagePoolLayer::SagePoolLayer(std::size_t in_dim, std::size_t out_dim,
                             bool relu, Rng& rng)
    : relu_(relu) {
  w_pool_.init_glorot(in_dim, out_dim, rng);
  b_pool_.init_zero(1, out_dim);
  w_self_.init_glorot(in_dim, out_dim, rng);
  w_neigh_.init_glorot(out_dim, out_dim, rng);
  bias_.init_zero(1, out_dim);
}

Matrix SagePoolLayer::forward(const GnnGraph& g, const Matrix& x) {
  x_cache_ = x;
  // Per-node messages m_u = relu(W_pool x_u + b_pool).
  matmul(x, w_pool_.value, pooled_);
  add_bias(pooled_, b_pool_.value.data());
  relu_forward(pooled_, pool_mask_);
  // Elementwise max over neighbors, remembering the winner.
  const std::size_t k = pooled_.cols();
  hn_cache_ = Matrix(x.rows(), k);
  argmax_.assign(x.rows() * k, kInvalidId);
  for (std::size_t v = 0; v < g.num_nodes; ++v) {
    auto orow = hn_cache_.row(v);
    for (std::size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const auto u = g.neighbors[e];
      const auto urow = pooled_.row(u);
      for (std::size_t c = 0; c < k; ++c) {
        if (argmax_[v * k + c] == kInvalidId || urow[c] > orow[c]) {
          orow[c] = urow[c];
          argmax_[v * k + c] = u;
        }
      }
    }
  }
  Matrix z;
  matmul(x, w_self_.value, z);
  Matrix zn;
  matmul(hn_cache_, w_neigh_.value, zn);
  add_inplace(z, zn);
  add_bias(z, bias_.value.data());
  if (relu_) relu_forward(z, relu_mask_);
  return z;
}

Matrix SagePoolLayer::backward(const GnnGraph& g, const Matrix& dout) {
  Matrix dz = dout;
  if (relu_) relu_backward(dz, relu_mask_);

  Matrix gw;
  matmul_at_b(x_cache_, dz, gw);
  add_inplace(w_self_.grad, gw);
  matmul_at_b(hn_cache_, dz, gw);
  add_inplace(w_neigh_.grad, gw);
  for (std::size_t r = 0; r < dz.rows(); ++r) {
    auto row = dz.row(r);
    auto brow = bias_.grad.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) brow[c] += row[c];
  }

  // Through the max: route dhn to the winning neighbor's message.
  Matrix dhn;
  matmul_a_bt(dz, w_neigh_.value, dhn);
  Matrix dpooled(pooled_.rows(), pooled_.cols());
  const std::size_t k = pooled_.cols();
  for (std::size_t v = 0; v < g.num_nodes; ++v) {
    const auto drow = dhn.row(v);
    for (std::size_t c = 0; c < k; ++c) {
      const auto u = argmax_[v * k + c];
      if (u != kInvalidId) dpooled(u, c) += drow[c];
    }
  }
  relu_backward(dpooled, pool_mask_);
  matmul_at_b(x_cache_, dpooled, gw);
  add_inplace(w_pool_.grad, gw);
  for (std::size_t r = 0; r < dpooled.rows(); ++r) {
    auto row = dpooled.row(r);
    auto brow = b_pool_.grad.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) brow[c] += row[c];
  }

  Matrix dx;
  matmul_a_bt(dz, w_self_.value, dx);
  Matrix dx_pool;
  matmul_a_bt(dpooled, w_pool_.value, dx_pool);
  add_inplace(dx, dx_pool);
  return dx;
}

// -------------------------------------------------------------- GcnLayer

void gcn_propagate(const GnnGraph& g, const Matrix& x, Matrix& out) {
  out = Matrix(x.rows(), x.cols());
  // Ahat = D^-1/2 (A + I) D^-1/2 with degrees counted incl. self loops.
  auto norm = [&](std::size_t v) {
    return 1.0f / std::sqrt(static_cast<float>(g.degree(v) + 1));
  };
  for (std::size_t v = 0; v < g.num_nodes; ++v) {
    const float nv = norm(v);
    auto orow = out.row(v);
    const auto xrow = x.row(v);
    for (std::size_t c = 0; c < orow.size(); ++c)
      orow[c] += nv * nv * xrow[c];  // self loop
    for (std::size_t k = g.offsets[v]; k < g.offsets[v + 1]; ++k) {
      const auto u = g.neighbors[k];
      const float w = nv * norm(u);
      const auto urow = x.row(u);
      for (std::size_t c = 0; c < orow.size(); ++c) orow[c] += w * urow[c];
    }
  }
}

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, bool relu,
                   Rng& rng)
    : relu_(relu) {
  w_.init_glorot(in_dim, out_dim, rng);
  bias_.init_zero(1, out_dim);
}

Matrix GcnLayer::forward(const GnnGraph& g, const Matrix& x) {
  x_cache_ = x;
  Matrix xw;
  matmul(x, w_.value, xw);
  Matrix z;
  gcn_propagate(g, xw, z);
  add_bias(z, bias_.value.data());
  if (relu_) relu_forward(z, relu_mask_);
  return z;
}

Matrix GcnLayer::backward(const GnnGraph& g, const Matrix& dout) {
  Matrix dz = dout;
  if (relu_) relu_backward(dz, relu_mask_);
  for (std::size_t r = 0; r < dz.rows(); ++r) {
    auto row = dz.row(r);
    auto brow = bias_.grad.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) brow[c] += row[c];
  }
  // Z = Ahat (X W);  Ahat is symmetric.
  Matrix dxw;
  gcn_propagate(g, dz, dxw);
  Matrix gw;
  matmul_at_b(x_cache_, dxw, gw);
  add_inplace(w_.grad, gw);
  Matrix dx;
  matmul_a_bt(dxw, w_.value, dx);
  return dx;
}

// ------------------------------------------------------------ DenseLayer

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng) {
  w_.init_glorot(in_dim, out_dim, rng);
  bias_.init_zero(1, out_dim);
}

Matrix DenseLayer::forward(const Matrix& x) {
  x_cache_ = x;
  Matrix z;
  matmul(x, w_.value, z);
  add_bias(z, bias_.value.data());
  return z;
}

Matrix DenseLayer::backward(const Matrix& dout) {
  Matrix gw;
  matmul_at_b(x_cache_, dout, gw);
  add_inplace(w_.grad, gw);
  for (std::size_t r = 0; r < dout.rows(); ++r) {
    auto row = dout.row(r);
    auto brow = bias_.grad.row(0);
    for (std::size_t c = 0; c < row.size(); ++c) brow[c] += row[c];
  }
  Matrix dx;
  matmul_a_bt(dout, w_.value, dx);
  return dx;
}

}  // namespace tmm
