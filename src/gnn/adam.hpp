#pragma once
// Adam optimizer over a flat list of parameters.

#include <vector>

#include "gnn/layers.hpp"

namespace tmm {

struct AdamConfig {
  float lr = 0.01f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(std::vector<Param*> params, AdamConfig cfg = {});

  /// Apply one update from the accumulated gradients, then zero them.
  void step();
  void zero_grad();
  std::size_t steps() const noexcept { return t_; }

 private:
  std::vector<Param*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  AdamConfig cfg_;
  std::size_t t_ = 0;
};

}  // namespace tmm
