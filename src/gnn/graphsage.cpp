#include "gnn/graphsage.hpp"

namespace tmm {

GnnModel::GnnModel(GnnModelConfig cfg) : cfg_(cfg) {
  Rng rng(cfg.seed);
  std::size_t in = cfg.input_dim;
  for (std::size_t l = 0; l < cfg.num_layers; ++l) {
    switch (cfg.engine) {
      case GnnEngine::kGraphSage:
        sage_.emplace_back(in, cfg.hidden_dim, /*relu=*/true, rng);
        break;
      case GnnEngine::kGcn:
        gcn_.emplace_back(in, cfg.hidden_dim, /*relu=*/true, rng);
        break;
      case GnnEngine::kGraphSagePool:
        pool_.emplace_back(in, cfg.hidden_dim, /*relu=*/true, rng);
        break;
    }
    in = cfg.hidden_dim;
  }
  head_.emplace(in, 1, rng);
}

Matrix GnnModel::forward(const GnnGraph& g, const Matrix& x) {
  Matrix h = x;
  for (auto& layer : sage_) h = layer.forward(g, h);
  for (auto& layer : gcn_) h = layer.forward(g, h);
  for (auto& layer : pool_) h = layer.forward(g, h);
  return head_->forward(h);
}

void GnnModel::backward(const GnnGraph& g, const Matrix& dlogits) {
  Matrix grad = head_->backward(dlogits);
  for (auto it = pool_.rbegin(); it != pool_.rend(); ++it)
    grad = it->backward(g, grad);
  for (auto it = gcn_.rbegin(); it != gcn_.rend(); ++it)
    grad = it->backward(g, grad);
  for (auto it = sage_.rbegin(); it != sage_.rend(); ++it)
    grad = it->backward(g, grad);
}

std::vector<Param*> GnnModel::params() {
  std::vector<Param*> out;
  for (auto& l : sage_)
    for (Param* p : l.params()) out.push_back(p);
  for (auto& l : gcn_)
    for (Param* p : l.params()) out.push_back(p);
  for (auto& l : pool_)
    for (Param* p : l.params()) out.push_back(p);
  for (Param* p : head_->params()) out.push_back(p);
  return out;
}

std::vector<float> GnnModel::predict(const GnnGraph& g, const Matrix& x) {
  Matrix logits = forward(g, x);
  std::vector<float> probs(logits.rows());
  for (std::size_t i = 0; i < probs.size(); ++i)
    probs[i] = sigmoidf(logits(i, 0));
  return probs;
}

}  // namespace tmm
