// GnnModel save/load: a small text format holding the config and every
// parameter matrix in params() order (construction is deterministic, so
// shapes always line up). Malformed or non-finite weight files raise
// fault::FlowError(kParse) with source:line context; file-level helpers
// write atomically so interrupted runs never leave torn weights.

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fault/token_reader.hpp"
#include "gnn/graphsage.hpp"
#include "util/atomic_io.hpp"

namespace tmm {

void GnnModel::save(std::ostream& os) const {
  os << "gnn " << cfg_.input_dim << ' ' << cfg_.hidden_dim << ' '
     << cfg_.num_layers << ' ' << static_cast<int>(cfg_.engine) << ' '
     << cfg_.seed << '\n';
  os.precision(9);
  auto& self = const_cast<GnnModel&>(*this);
  for (Param* p : self.params()) {
    os << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (float v : p->value.data()) os << v << ' ';
    os << '\n';
  }
}

GnnModel GnnModel::load(std::istream& is, std::string source) {
  fault::inject("gnn.load");
  io::TokenReader tr(is, std::move(source));
  GnnModelConfig cfg;
  tr.expect("gnn");
  constexpr std::size_t kMaxDim = 1'000'000;
  cfg.input_dim = tr.size_at_most("input dim", kMaxDim);
  cfg.hidden_dim = tr.size_at_most("hidden dim", kMaxDim);
  cfg.num_layers = tr.size_at_most("layer count", 1'000);
  cfg.engine = static_cast<GnnEngine>(tr.integer_in(
      "engine kind", 0, static_cast<int>(GnnEngine::kGraphSagePool)));
  cfg.seed = tr.size("seed");
  GnnModel model(cfg);
  for (Param* p : model.params()) {
    const std::size_t rows = tr.size("parameter rows");
    const std::size_t cols = tr.size("parameter cols");
    if (rows != p->value.rows() || cols != p->value.cols())
      tr.fail("parameter shape mismatch: file has " + std::to_string(rows) +
              "x" + std::to_string(cols) + ", model expects " +
              std::to_string(p->value.rows()) + "x" +
              std::to_string(p->value.cols()));
    for (float& v : p->value.data()) v = tr.number_f("parameter value");
  }
  return model;
}

GnnModel load_gnn_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw fault::FlowError(fault::ErrorCode::kIo, "gnn.load",
                           "cannot open " + path);
  return GnnModel::load(is, path);
}

void save_gnn_file(const GnnModel& model, const std::string& path) {
  fault::inject("gnn.save");
  std::ostringstream buf;
  model.save(buf);
  util::atomic_write_file(path, buf.str()).or_throw("gnn.save");
}

}  // namespace tmm
