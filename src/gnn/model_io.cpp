// GnnModel save/load: a small text format holding the config and every
// parameter matrix in params() order (construction is deterministic, so
// shapes always line up).

#include <istream>
#include <ostream>
#include <stdexcept>

#include "gnn/graphsage.hpp"

namespace tmm {

void GnnModel::save(std::ostream& os) const {
  os << "gnn " << cfg_.input_dim << ' ' << cfg_.hidden_dim << ' '
     << cfg_.num_layers << ' ' << static_cast<int>(cfg_.engine) << ' '
     << cfg_.seed << '\n';
  os.precision(9);
  auto& self = const_cast<GnnModel&>(*this);
  for (Param* p : self.params()) {
    os << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (float v : p->value.data()) os << v << ' ';
    os << '\n';
  }
}

GnnModel GnnModel::load(std::istream& is) {
  std::string tag;
  GnnModelConfig cfg;
  int engine = 0;
  is >> tag >> cfg.input_dim >> cfg.hidden_dim >> cfg.num_layers >> engine >>
      cfg.seed;
  if (tag != "gnn") throw std::runtime_error("GnnModel::load: bad header");
  cfg.engine = static_cast<GnnEngine>(engine);
  GnnModel model(cfg);
  for (Param* p : model.params()) {
    std::size_t rows = 0;
    std::size_t cols = 0;
    is >> rows >> cols;
    if (rows != p->value.rows() || cols != p->value.cols())
      throw std::runtime_error("GnnModel::load: shape mismatch");
    for (float& v : p->value.data()) is >> v;
  }
  if (!is) throw std::runtime_error("GnnModel::load: truncated stream");
  return model;
}

}  // namespace tmm
