#include "gnn/metrics.hpp"

namespace tmm {

Confusion confusion_matrix(std::span<const float> probs,
                           std::span<const float> labels,
                           std::span<const unsigned char> mask,
                           float threshold) {
  Confusion c;
  const std::size_t n = std::min(probs.size(), labels.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const bool pred = probs[i] >= threshold;
    const bool truth = labels[i] >= 0.5f;
    if (pred && truth)
      ++c.tp;
    else if (pred && !truth)
      ++c.fp;
    else if (!pred && truth)
      ++c.fn;
    else
      ++c.tn;
  }
  return c;
}

}  // namespace tmm
