#pragma once
// Minimal dense row-major float matrix for the GNN engine. The paper
// trained with PyTorch; reimplementing the handful of kernels GraphSAGE
// needs (matmul, bias, activations, scatter-mean) keeps the whole
// framework a single dependency-free C++ library.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace tmm {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::span<float> row(std::size_t r) { return {&data_[r * cols_], cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {&data_[r * cols_], cols_};
  }
  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Glorot/Xavier-uniform initialization.
  static Matrix glorot(std::size_t rows, std::size_t cols, Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b   (a: m x k, b: k x n, out: m x n)
void matmul(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a^T * b (a: k x m, b: k x n, out: m x n)
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a * b^T (a: m x k, b: n x k, out: m x n)
void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// y += x (same shape).
void add_inplace(Matrix& y, const Matrix& x);
/// Add a row vector (bias) to every row.
void add_bias(Matrix& y, std::span<const float> bias);

/// Elementwise ReLU forward; `mask` records activation for backward.
void relu_forward(Matrix& x, Matrix& mask);
/// grad *= mask.
void relu_backward(Matrix& grad, const Matrix& mask);

/// Numerically stable logistic sigmoid.
float sigmoidf(float x);

}  // namespace tmm
