#pragma once
// Binary-classification metrics for GNN evaluation.

#include <cstddef>
#include <span>

namespace tmm {

struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  double accuracy() const {
    return total() ? static_cast<double>(tp + tn) / static_cast<double>(total())
                   : 0.0;
  }
  double precision() const {
    return (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                     : 0.0;
  }
  double recall() const {
    return (tp + fn) ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                     : 0.0;
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

/// Compare probabilities against {0,1} labels at the given threshold.
/// `mask` (optional, may be empty) selects which entries count.
Confusion confusion_matrix(std::span<const float> probs,
                           std::span<const float> labels,
                           std::span<const unsigned char> mask = {},
                           float threshold = 0.5f);

}  // namespace tmm
