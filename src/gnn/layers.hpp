#pragma once
// GNN building blocks with manual backpropagation: the mean-aggregator
// GraphSAGE layer of Eq. 3-4, a GCN layer (the alternative engine the
// paper mentions), and a dense output head.

#include <cstdint>
#include <vector>

#include "gnn/tensor.hpp"

namespace tmm {

class TimingGraph;

/// Undirected neighbor structure in CSR form.
struct GnnGraph {
  std::size_t num_nodes = 0;
  std::vector<std::uint32_t> offsets;    ///< size num_nodes + 1
  std::vector<std::uint32_t> neighbors;  ///< concatenated adjacency

  std::size_t degree(std::size_t v) const {
    return offsets[v + 1] - offsets[v];
  }

  /// Build from a timing graph: delay arcs, both directions (timing
  /// influence flows forward with values and backward with required
  /// times, mirroring Fig. 3's propagation analogy). Dead nodes keep an
  /// empty neighborhood.
  static GnnGraph from_timing_graph(const TimingGraph& g);
};

/// Mean aggregation: out[v] = mean_{u in N(v)} x[u] (zero if isolated).
void mean_aggregate(const GnnGraph& g, const Matrix& x, Matrix& out);
/// Backward of mean aggregation: dx[u] += sum_{v: u in N(v)} dout[v]/deg(v).
void mean_aggregate_backward(const GnnGraph& g, const Matrix& dout,
                             Matrix& dx);

/// A trainable parameter with its gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;

  void init_glorot(std::size_t rows, std::size_t cols, Rng& rng) {
    value = Matrix::glorot(rows, cols, rng);
    grad = Matrix(rows, cols);
  }
  void init_zero(std::size_t rows, std::size_t cols) {
    value = Matrix(rows, cols);
    grad = Matrix(rows, cols);
  }
  void zero_grad() { grad.fill(0.0f); }
};

/// GraphSAGE layer (mean aggregator):
///   h_v = relu(W_self * x_v + W_neigh * mean(x_u) + b)   (Eq. 3-4 with
/// CONCAT expressed as two weight blocks). `relu` optional (off for the
/// last hidden layer feeding the head if desired).
class SageLayer {
 public:
  SageLayer(std::size_t in_dim, std::size_t out_dim, bool relu, Rng& rng);

  Matrix forward(const GnnGraph& g, const Matrix& x);
  /// Returns gradient w.r.t. the layer input; accumulates param grads.
  Matrix backward(const GnnGraph& g, const Matrix& dout);

  std::vector<Param*> params() { return {&w_self_, &w_neigh_, &bias_}; }
  const Param& w_self() const { return w_self_; }
  const Param& w_neigh() const { return w_neigh_; }
  const Param& bias() const { return bias_; }

 private:
  Param w_self_;   // in x out
  Param w_neigh_;  // in x out
  Param bias_;     // 1 x out
  bool relu_;
  // forward caches
  Matrix x_cache_;
  Matrix hn_cache_;
  Matrix relu_mask_;
};

/// GraphSAGE max-pooling aggregator (the pool variant of [14]):
///   h_N(v) = max_{u in N(v)} relu(W_pool x_u + b_pool)
///   h_v    = relu(W_self x_v + W_neigh h_N(v) + b)
/// The elementwise max routes gradients to the winning neighbor.
class SagePoolLayer {
 public:
  SagePoolLayer(std::size_t in_dim, std::size_t out_dim, bool relu, Rng& rng);

  Matrix forward(const GnnGraph& g, const Matrix& x);
  Matrix backward(const GnnGraph& g, const Matrix& dout);

  std::vector<Param*> params() {
    return {&w_pool_, &b_pool_, &w_self_, &w_neigh_, &bias_};
  }

 private:
  Param w_pool_;   // in x pool (pool == out for simplicity)
  Param b_pool_;   // 1 x pool
  Param w_self_;   // in x out
  Param w_neigh_;  // pool x out
  Param bias_;     // 1 x out
  bool relu_;
  // caches
  Matrix x_cache_;
  Matrix pooled_;       // n x pool (post-relu per-node messages)
  Matrix pool_mask_;    // relu mask of the message transform
  Matrix hn_cache_;     // n x pool (max-aggregated)
  std::vector<std::uint32_t> argmax_;  // n * pool winner node ids
  Matrix relu_mask_;
};

/// GCN layer: h = relu(Ahat * x * W + b) with the symmetric-normalized
/// adjacency Ahat = D^-1/2 (A + I) D^-1/2.
class GcnLayer {
 public:
  GcnLayer(std::size_t in_dim, std::size_t out_dim, bool relu, Rng& rng);

  Matrix forward(const GnnGraph& g, const Matrix& x);
  Matrix backward(const GnnGraph& g, const Matrix& dout);

  std::vector<Param*> params() { return {&w_, &bias_}; }

 private:
  Param w_;     // in x out
  Param bias_;  // 1 x out
  bool relu_;
  Matrix x_cache_;
  Matrix relu_mask_;
};

/// Normalized propagation z[v] = sum_u coef(u,v) x[u] with self loops.
void gcn_propagate(const GnnGraph& g, const Matrix& x, Matrix& out);

/// Dense head: logits = x * W + b.
class DenseLayer {
 public:
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  Matrix forward(const Matrix& x);
  Matrix backward(const Matrix& dout);

  std::vector<Param*> params() { return {&w_, &bias_}; }

 private:
  Param w_;
  Param bias_;
  Matrix x_cache_;
};

}  // namespace tmm
