#include "gnn/features.hpp"

#include <algorithm>

namespace tmm {

std::vector<std::string> feature_names(bool include_cppr) {
  std::vector<std::string> names{
      "level_from_PI",  "level_to_PO",      "is_last_stage_fanout",
      "is_last_stage",  "is_first_stage",   "out_degree",
      "is_clock_network", "is_ff_clock",
  };
  if (include_cppr) names.push_back("is_CPPR");
  return names;
}

std::vector<int> levels_from_pi(const TimingGraph& g) {
  std::vector<int> level(g.num_nodes(), -1);
  for (NodeId p : g.primary_inputs())
    if (p != kInvalidId) level[p] = 0;
  for (NodeId u : g.topo_order()) {
    if (level[u] < 0) continue;
    for (ArcId a : g.fanout(u)) {
      const NodeId v = g.arc(a).to;
      if (level[v] < 0 || level[u] + 1 < level[v]) level[v] = level[u] + 1;
    }
  }
  return level;
}

std::vector<int> levels_to_po(const TimingGraph& g) {
  std::vector<int> level(g.num_nodes(), -1);
  for (NodeId p : g.primary_outputs())
    if (p != kInvalidId) level[p] = 0;
  const auto& order = g.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    for (ArcId a : g.fanout(u)) {
      const NodeId v = g.arc(a).to;
      if (level[v] < 0) continue;
      if (level[u] < 0 || level[v] + 1 < level[u]) level[u] = level[v] + 1;
    }
  }
  return level;
}

Matrix extract_features(const TimingGraph& g, bool include_cppr) {
  const std::size_t n = g.num_nodes();
  const std::size_t f =
      include_cppr ? kNumFeaturesWithCppr : kNumBasicFeatures;
  Matrix x(n, f);

  const auto from_pi = levels_from_pi(g);
  const auto to_po = levels_to_po(g);
  int max_from = 1;
  int max_to = 1;
  std::size_t max_deg = 1;
  for (NodeId u = 0; u < n; ++u) {
    if (g.node(u).dead) continue;
    max_from = std::max(max_from, from_pi[u]);
    max_to = std::max(max_to, to_po[u]);
    max_deg = std::max(max_deg, g.fanout(u).size());
  }

  // last-stage flags first (needed for the fanout-of-last-stage flag).
  std::vector<unsigned char> last_stage(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (g.node(u).dead) continue;
    if (!g.node(u).attached_po_loads.empty()) {
      last_stage[u] = 1;
      continue;
    }
    for (ArcId a : g.fanout(u)) {
      if (g.node(g.arc(a).to).role == NodeRole::kPrimaryOutput) {
        last_stage[u] = 1;
        break;
      }
    }
  }

  for (NodeId u = 0; u < n; ++u) {
    const auto& node = g.node(u);
    if (node.dead) continue;
    auto row = x.row(u);
    row[0] = from_pi[u] < 0
                 ? 1.0f
                 : static_cast<float>(from_pi[u]) / static_cast<float>(max_from);
    row[1] = to_po[u] < 0
                 ? 1.0f
                 : static_cast<float>(to_po[u]) / static_cast<float>(max_to);
    bool last_stage_fanout = false;
    for (ArcId a : g.fanin(u)) {
      if (last_stage[g.arc(a).from]) {
        last_stage_fanout = true;
        break;
      }
    }
    row[2] = last_stage_fanout ? 1.0f : 0.0f;
    row[3] = last_stage[u] ? 1.0f : 0.0f;
    bool first_stage = node.role == NodeRole::kPrimaryInput;
    for (ArcId a : g.fanin(u)) {
      if (g.node(g.arc(a).from).role == NodeRole::kPrimaryInput) {
        first_stage = true;
        break;
      }
    }
    row[4] = first_stage ? 1.0f : 0.0f;
    row[5] = static_cast<float>(g.fanout(u).size()) /
             static_cast<float>(max_deg);
    row[6] = node.in_clock_network ? 1.0f : 0.0f;
    row[7] = node.is_ff_clock ? 1.0f : 0.0f;
    if (include_cppr)
      row[8] =
          (node.in_clock_network && g.fanout(u).size() > 1) ? 1.0f : 0.0f;
  }
  return x;
}

}  // namespace tmm
