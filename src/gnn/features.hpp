#pragma once
// Training features (Table 1). All are basic circuit properties
// extractable in linear time from the timing graph; the level and
// degree features are normalized to [0, 1] so every feature has the
// same level of influence.

#include <string>
#include <vector>

#include "gnn/tensor.hpp"
#include "sta/timing_graph.hpp"

namespace tmm {

inline constexpr std::size_t kNumBasicFeatures = 8;
inline constexpr std::size_t kNumFeaturesWithCppr = 9;

/// Feature column order (matching Table 1):
///   0 level_from_PI         min levels from a PI to the pin
///   1 level_to_PO           min levels from the pin to a PO
///   2 is_last_stage_fanout  fanout of a last-stage pin
///   3 is_last_stage         directly drives a PO / on an output net
///   4 is_first_stage        directly driven by a PI (or is one)
///   5 out_degree            number of delay out-arcs
///   6 is_clock_network      pin belongs to the clock network
///   7 is_ff_clock           clock pin of a flip-flop
///   8 is_CPPR               multi-fan-out clock-network pin (optional)
std::vector<std::string> feature_names(bool include_cppr);

/// Extract the n x F feature matrix (F = 8 or 9). Dead nodes get zeros.
Matrix extract_features(const TimingGraph& g, bool include_cppr);

/// Minimum DAG level from any PI per node (-1 if unreachable); exposed
/// for tests.
std::vector<int> levels_from_pi(const TimingGraph& g);
std::vector<int> levels_to_po(const TimingGraph& g);

}  // namespace tmm
