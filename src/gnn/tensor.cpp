#include "gnn/tensor.hpp"

#include <cassert>
#include <cmath>

namespace tmm {

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) v = static_cast<float>(rng.uniform(-limit, limit));
  return m;
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  out = Matrix(a.rows(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a(i, p);
      if (av == 0.0f) continue;
      const auto brow = b.row(p);
      auto orow = out.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  out = Matrix(a.cols(), b.cols());
  for (std::size_t p = 0; p < a.rows(); ++p) {
    const auto arow = a.row(p);
    const auto brow = b.row(p);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      auto orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  out = Matrix(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const auto brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p) acc += arow[p] * brow[p];
      out(i, j) = acc;
    }
  }
}

void add_inplace(Matrix& y, const Matrix& x) {
  assert(y.size() == x.size());
  auto yd = y.data();
  auto xd = x.data();
  for (std::size_t i = 0; i < yd.size(); ++i) yd[i] += xd[i];
}

void add_bias(Matrix& y, std::span<const float> bias) {
  assert(y.cols() == bias.size());
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias[c];
  }
}

void relu_forward(Matrix& x, Matrix& mask) {
  mask = Matrix(x.rows(), x.cols());
  auto xd = x.data();
  auto md = mask.data();
  for (std::size_t i = 0; i < xd.size(); ++i) {
    if (xd[i] > 0.0f) {
      md[i] = 1.0f;
    } else {
      xd[i] = 0.0f;
    }
  }
}

void relu_backward(Matrix& grad, const Matrix& mask) {
  auto gd = grad.data();
  auto md = mask.data();
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= md[i];
}

float sigmoidf(float x) {
  if (x >= 0.0f) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

}  // namespace tmm
