#include "gnn/adam.hpp"

#include <cmath>

namespace tmm {

Adam::Adam(std::vector<Param*> params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto w = params_[i]->value.data();
    auto g = params_[i]->grad.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t k = 0; k < w.size(); ++k) {
      float grad = g[k] + cfg_.weight_decay * w[k];
      m[k] = cfg_.beta1 * m[k] + (1.0f - cfg_.beta1) * grad;
      v[k] = cfg_.beta2 * v[k] + (1.0f - cfg_.beta2) * grad * grad;
      const float mh = m[k] / bc1;
      const float vh = v[k] / bc2;
      w[k] -= cfg_.lr * mh / (std::sqrt(vh) + cfg_.eps);
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace tmm
