#pragma once
// Flow checkpoint/resume (docs/ROBUSTNESS.md).
//
// A checkpoint directory makes the expensive stages of the flow
// restartable after a crash or kill: per-design sensitivity data (the
// TS evaluation dominates training time), the trained GNN model, and
// per-design run results persist incrementally, each written atomically
// (util::atomic_write_file), so an interrupted run never leaves a torn
// file — only missing ones, which are recomputed.
//
// Resume is bit-identical: sensitivity checkpoints store the *raw*
// {0,1} labels and TS values in hexfloat, before the regression-mode
// transform, and everything derived from them (regression targets,
// ts_scale, GNN initialization) is recomputed deterministically, so a
// resumed `Framework::train` produces byte-identical model files.
//
// Layout:
//   <dir>/MANIFEST             format version + config fingerprint
//   <dir>/ts/<design>.sens     per-design sensitivity data
//   <dir>/model.gnn            trained GNN weights
//   <dir>/results/<design>.res per-design flow-run result summary
//
// Opening a directory whose MANIFEST fingerprint does not match the
// current FlowConfig raises fault::FlowError(kConfig): silently mixing
// data generated under different configs would poison the model.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flow/framework.hpp"

namespace tmm::flow {

/// Per-design stage-1 output persisted by Framework::train. `labels`
/// and `ts` are the raw per-node values (pre-regression-transform).
struct SensCheckpoint {
  std::size_t nodes = 0;  ///< ILM node count (consistency check on load)
  std::size_t positives = 0;
  double filtered_fraction = 0.0;
  /// Degradation accounting carried through resume so a resumed run
  /// reports the same degraded designs as the original.
  std::size_t failed_pins = 0;
  std::size_t skipped_sets = 0;
  std::vector<float> labels;
  std::vector<double> ts;
};

/// Fingerprint of every FlowConfig field that affects generated data or
/// the trained model (FNV-1a over a canonical serialization), including
/// FlowConfig::library_fingerprint.
std::uint64_t flow_fingerprint(const FlowConfig& cfg);

/// FNV-1a hash of the library's canonical serialization (Library::
/// write); the value Framework::train stores in
/// FlowConfig::library_fingerprint.
std::uint64_t library_fingerprint(const Library& lib);

/// Design name reduced to a safe filename component ([A-Za-z0-9._-],
/// no leading dot); used for every per-design checkpoint/output file.
std::string sanitize_design_name(const std::string& name);

class Checkpoint {
 public:
  /// Disabled checkpoint: every query misses, every save is a no-op.
  Checkpoint() = default;

  /// Open (creating directories as needed) and validate the MANIFEST
  /// against the config fingerprint; stale `*.tmp.*` debris from killed
  /// runs is removed. Throws fault::FlowError(kConfig) on fingerprint
  /// mismatch, kIo when the directory cannot be created.
  static Checkpoint open(const std::string& dir, const FlowConfig& cfg);

  bool enabled() const noexcept { return !dir_.empty(); }
  const std::string& dir() const noexcept { return dir_; }

  /// Load a design's sensitivity checkpoint. Returns nullopt when
  /// missing — and also when corrupt (logged + recomputed, never
  /// trusted), so a torn or truncated file degrades to a cache miss.
  std::optional<SensCheckpoint> load_sens(const std::string& design) const;
  void save_sens(const std::string& design, const SensCheckpoint& s) const;

  bool has_model() const;
  GnnModel load_model() const;
  void save_model(const GnnModel& model) const;

  /// Per-design flow-run results (opaque text, composed by the flow
  /// runner): presence marks the design completed for resume.
  bool has_result(const std::string& design) const;
  std::optional<std::string> load_result(const std::string& design) const;
  void save_result(const std::string& design, const std::string& text) const;

  /// Path helpers (exposed for tests and the fault matrix).
  std::string sens_path(const std::string& design) const;
  std::string model_path() const;
  std::string result_path(const std::string& design) const;

 private:
  std::string dir_;
};

}  // namespace tmm::flow
