#include "flow/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "fault/token_reader.hpp"
#include "util/atomic_io.hpp"
#include "util/log.hpp"

namespace tmm::flow {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Exact round-trip serialization: %a for doubles (strtod parses
/// hexfloat), so resumed runs see bit-identical values.
void put_hex(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf;
}

void write_atomic_or_throw(const std::string& path, const std::string& data,
                           const char* stage, const std::string& design) {
  util::atomic_write_file(path, data).or_throw(stage, design);
}

constexpr int kManifestVersion = 1;
constexpr int kSensVersion = 1;

}  // namespace

// Design names are identifiers in practice, but never trust them as
// path components.
std::string sanitize_design_name(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  if (out[0] == '.') out[0] = '_';
  return out;
}

std::uint64_t library_fingerprint(const Library& lib) {
  std::ostringstream os;
  lib.write(os);
  return fnv1a(os.str());
}

std::uint64_t flow_fingerprint(const FlowConfig& cfg) {
  // Canonical serialization of every field that changes the generated
  // sensitivity data or the trained model. Fields that only change
  // performance (threads, incremental, collect_stage_timings) or the
  // evaluation stage (eval_*) are deliberately excluded. v2 added the
  // liberty-library hash: TS labels depend on cell timing, so a
  // swapped library must invalidate --resume.
  std::ostringstream os;
  os << "v2|" << cfg.library_fingerprint << '|' << cfg.cppr << '|'
     << cfg.cppr_feature << '|'
     << cfg.label_all_remained << '|' << cfg.regression << '|';
  os << cfg.aocv.enabled << '|';
  put_hex(os, cfg.aocv.late_derate);
  os << '|';
  put_hex(os, cfg.aocv.early_derate);
  os << '|';
  put_hex(os, cfg.aocv.depth_constant);
  os << '|' << cfg.data.cppr_labels << '|';
  put_hex(os, cfg.data.ts_zero_epsilon);
  const auto& f = cfg.data.filter;
  os << '|';
  put_hex(os, f.slew_min_ps);
  os << '|';
  put_hex(os, f.slew_max_ps);
  os << '|';
  put_hex(os, f.po_load_ff);
  os << '|';
  put_hex(os, f.z_threshold);
  const auto& ts = cfg.data.ts;
  os << '|' << ts.num_constraint_sets << '|' << ts.seed << '|' << ts.cppr
     << '|';
  const auto& cg = ts.constraint_gen;
  for (double v : {cg.clock_period_ps, cg.pi_at_min, cg.pi_at_max,
                   cg.pi_slew_min, cg.pi_slew_max, cg.po_load_min,
                   cg.po_load_max, cg.po_rat_frac_min, cg.po_rat_frac_max}) {
    put_hex(os, v);
    os << '|';
  }
  const auto& m = ts.merge;
  os << m.max_fan_product << '|' << m.single_fanin_only << '|'
     << m.index.max_points << '|' << m.index.error_driven << '|';
  put_hex(os, m.index.tolerance_ps);
  os << '|' << cfg.gnn.input_dim << '|' << cfg.gnn.hidden_dim << '|'
     << cfg.gnn.num_layers << '|' << static_cast<int>(cfg.gnn.engine) << '|'
     << cfg.gnn.seed << '|';
  os << cfg.train.epochs << '|' << static_cast<int>(cfg.train.loss) << '|';
  put_hex(os, cfg.train.adam.lr);
  os << '|';
  put_hex(os, cfg.train.adam.weight_decay);
  os << '|';
  put_hex(os, cfg.train.pos_weight);
  os << '|' << cfg.train.patience << '|';
  put_hex(os, cfg.train.min_delta);
  return fnv1a(os.str());
}

Checkpoint Checkpoint::open(const std::string& dir, const FlowConfig& cfg) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "ts", ec);
  if (!ec) fs::create_directories(fs::path(dir) / "results", ec);
  if (ec)
    throw fault::FlowError(fault::ErrorCode::kIo, "checkpoint.open",
                           "cannot create checkpoint directory '" + dir +
                               "': " + ec.message());

  // Remove atomic-write debris from a killed run: a `<name>.tmp.<pid>`
  // file was never renamed into place, so its contents are untrusted.
  std::size_t stale = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().filename().string().find(".tmp.") == std::string::npos)
      continue;
    fs::remove(entry.path(), ec);
    ++stale;
  }
  if (stale > 0)
    log_warn("checkpoint: removed %zu stale tmp file(s) from an "
             "interrupted run in %s",
             stale, dir.c_str());

  const std::uint64_t want = flow_fingerprint(cfg);
  const std::string manifest = (fs::path(dir) / "MANIFEST").string();
  std::ifstream in(manifest);
  if (in) {
    io::TokenReader tr(in, manifest);
    tr.expect("tmm-checkpoint");
    tr.integer_in("manifest version", kManifestVersion, kManifestVersion);
    tr.expect("fingerprint");
    const std::string tok = tr.token("fingerprint value");
    std::uint64_t have = 0;
    if (std::sscanf(tok.c_str(), "%" SCNx64, &have) != 1)
      tr.fail("malformed fingerprint '" + tok + "'");
    if (have != want)
      throw fault::FlowError(
          fault::ErrorCode::kConfig, "checkpoint.open",
          "checkpoint '" + dir +
              "' was written under a different flow configuration "
              "(fingerprint mismatch) — resuming would mix incompatible "
              "data; use a fresh directory or the original config");
  } else {
    char buf[96];
    std::snprintf(buf, sizeof buf, "tmm-checkpoint %d\nfingerprint %016" PRIx64 "\n",
                  kManifestVersion, want);
    write_atomic_or_throw(manifest, buf, "checkpoint.open", {});
  }

  Checkpoint c;
  c.dir_ = dir;
  return c;
}

std::string Checkpoint::sens_path(const std::string& design) const {
  return (fs::path(dir_) / "ts" / (sanitize_design_name(design) + ".sens")).string();
}

std::string Checkpoint::model_path() const {
  return (fs::path(dir_) / "model.gnn").string();
}

std::string Checkpoint::result_path(const std::string& design) const {
  return (fs::path(dir_) / "results" / (sanitize_design_name(design) + ".res")).string();
}

std::optional<SensCheckpoint> Checkpoint::load_sens(
    const std::string& design) const {
  if (!enabled()) return std::nullopt;
  const std::string path = sens_path(design);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  try {
    io::TokenReader tr(in, path);
    tr.expect("tmm-sens");
    tr.integer_in("sens version", kSensVersion, kSensVersion);
    tr.expect("design");
    tr.token("design name");
    SensCheckpoint s;
    tr.expect("nodes");
    s.nodes = tr.size_at_most("node count", 100'000'000);
    tr.expect("positives");
    s.positives = tr.size_at_most("positive count", s.nodes);
    tr.expect("filtered_fraction");
    s.filtered_fraction = tr.number("filtered fraction");
    tr.expect("failed_pins");
    s.failed_pins = tr.size_at_most("failed pin count", s.nodes);
    tr.expect("skipped_sets");
    s.skipped_sets = tr.size_at_most("skipped set count", 1'000'000);
    tr.expect("labels");
    s.labels.reserve(s.nodes);
    for (std::size_t i = 0; i < s.nodes; ++i)
      s.labels.push_back(tr.number_f("label"));
    tr.expect("ts");
    s.ts.reserve(s.nodes);
    for (std::size_t i = 0; i < s.nodes; ++i)
      s.ts.push_back(tr.number("ts value"));
    tr.expect("end");
    return s;
  } catch (const std::exception& e) {
    // A corrupt checkpoint is a cache miss, not a fatal error: warn and
    // recompute. (Torn files cannot happen — writes are atomic — so
    // this is manual editing or media corruption.)
    log_warn("checkpoint: ignoring corrupt sensitivity file %s (%s)",
             path.c_str(), e.what());
    return std::nullopt;
  }
}

void Checkpoint::save_sens(const std::string& design,
                           const SensCheckpoint& s) const {
  if (!enabled()) return;
  fault::inject("checkpoint.save_sens");
  std::ostringstream os;
  os << "tmm-sens " << kSensVersion << "\ndesign " << sanitize_design_name(design)
     << "\nnodes " << s.nodes << "\npositives " << s.positives
     << "\nfiltered_fraction ";
  put_hex(os, s.filtered_fraction);
  os << "\nfailed_pins " << s.failed_pins << "\nskipped_sets "
     << s.skipped_sets << "\nlabels\n";
  for (std::size_t i = 0; i < s.labels.size(); ++i) {
    put_hex(os, static_cast<double>(s.labels[i]));
    os << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  os << "\nts\n";
  for (std::size_t i = 0; i < s.ts.size(); ++i) {
    put_hex(os, s.ts[i]);
    os << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  os << "\nend\n";
  write_atomic_or_throw(sens_path(design), os.str(), "checkpoint.save_sens",
                        design);
}

bool Checkpoint::has_model() const {
  return enabled() && fs::exists(model_path());
}

GnnModel Checkpoint::load_model() const {
  return load_gnn_file(model_path());
}

void Checkpoint::save_model(const GnnModel& model) const {
  if (!enabled()) return;
  fault::inject("checkpoint.save_model");
  save_gnn_file(model, model_path());
}

bool Checkpoint::has_result(const std::string& design) const {
  return enabled() && fs::exists(result_path(design));
}

std::optional<std::string> Checkpoint::load_result(
    const std::string& design) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(result_path(design));
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void Checkpoint::save_result(const std::string& design,
                             const std::string& text) const {
  if (!enabled()) return;
  write_atomic_or_throw(result_path(design), text, "checkpoint.save_result",
                        design);
}

}  // namespace tmm::flow
