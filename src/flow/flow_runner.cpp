#include "flow/flow_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fault/fault.hpp"
#include "flow/checkpoint.hpp"
#include "macro/model_io.hpp"
#include "netlist/netlist_io.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace tmm::flow {

namespace fs = std::filesystem;

namespace {

// Same registry entry Framework::train uses for its failures; the two
// stages never count the same design twice (a design that failed to
// load never reaches training or modeling).
obs::Counter& g_designs_failed = obs::counter("flow.designs_failed");

std::string macro_out_path(const std::string& dir, const std::string& design) {
  return (fs::path(dir) / "out" / (sanitize_design_name(design) + ".macro"))
      .string();
}

/// Key-value completion record persisted as <dir>/results/<design>.res.
std::string compose_result(const DesignResult& r) {
  char buf[256];
  std::ostringstream os;
  os << "design " << r.design << "\nilm_pins " << r.gen.ilm_pins
     << "\nmodel_pins " << r.gen.model_pins << "\nmodel_bytes "
     << r.model_file_bytes << '\n';
  std::snprintf(buf, sizeof buf, "max_err_ps %.6g\navg_err_ps %.6g\n",
                r.acc.max_err_ps, r.acc.avg_err_ps);
  os << buf << "structural_mismatches " << r.acc.structural_mismatches
     << '\n';
  return os.str();
}

}  // namespace

FlowRunReport run_flow(const std::vector<std::string>& design_paths,
                       const std::string& dir, FlowConfig cfg,
                       const Library& lib,
                       const frontend::FrontendConfig& fcfg) {
  cfg.checkpoint_dir = dir;
  FlowRunReport report;

  // Stage 0: load every design, isolating parse/IO failures — one
  // malformed file must not discard the whole batch. The frontend
  // dispatches on extension: .blif/.v are imported, .dsn read directly
  // (against `lib` when its name matches, keeping baseline runs
  // bit-identical).
  std::vector<Design> designs;
  for (const std::string& path : design_paths) {
    try {
      designs.push_back(frontend::load_design_any(path, fcfg, &lib));
    } catch (const std::exception& e) {
      report.failed.push_back({path, e.what()});
      g_designs_failed.add();
      log_error("flow: cannot load %s, skipped: %s", path.c_str(), e.what());
    }
  }
  if (designs.empty())
    throw fault::FlowError(
        fault::ErrorCode::kUnavailable, "flow.run",
        design_paths.empty()
            ? std::string("no design files given")
            : "no loadable designs (first: " + report.failed.front().design +
                  ": " + report.failed.front().error + ")");

  // Checkpoint entries and macro outputs are keyed by sanitized design
  // name; duplicates would silently alias each other's files.
  {
    std::vector<std::string> keys;
    keys.reserve(designs.size());
    for (const Design& d : designs)
      keys.push_back(sanitize_design_name(d.name()));
    std::sort(keys.begin(), keys.end());
    const auto dup = std::adjacent_find(keys.begin(), keys.end());
    if (dup != keys.end())
      throw fault::FlowError(
          fault::ErrorCode::kConfig, "flow.run",
          "duplicate design name '" + *dup +
              "' — checkpoint and output files would alias (rename with "
              "gen-design --name)");
  }

  // Stages 1+2 with per-design isolation and checkpoint/resume inside
  // Framework::train; throws only when every design fails.
  Framework fw(cfg);
  report.training = fw.train(designs);

  // Framework's constructor normalizes cfg (AOCV propagation into the
  // sub-configs), so reopen with the *effective* config — the same
  // fingerprint train() stamped into MANIFEST.
  const Checkpoint ckpt = Checkpoint::open(dir, fw.config());
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "out", ec);
  if (ec)
    throw fault::FlowError(fault::ErrorCode::kIo, "flow.run",
                           "cannot create output directory: " + ec.message());

  // Stage 3 per design: failures are skipped with a diagnostic;
  // completed designs persist a result record, so a re-run resumes
  // past them without recomputation.
  for (const Design& d : designs) {
    const bool trained_ok = [&] {
      for (const DesignFailure& f : report.training.failed)
        if (f.design == d.name()) return false;
      return true;
    }();
    if (!trained_ok) continue;  // already reported by training
    if (ckpt.has_result(d.name())) {
      DesignOutcome o;
      o.design = d.name();
      o.from_checkpoint = true;
      o.macro_path = macro_out_path(dir, d.name());
      o.record = ckpt.load_result(d.name()).value_or("");
      report.completed.push_back(std::move(o));
      log_info("flow: design %s already completed, skipped (resume)",
               d.name().c_str());
      continue;
    }
    try {
      DesignResult r = fw.run_design(d);
      DesignOutcome o;
      o.design = d.name();
      o.macro_path = macro_out_path(dir, d.name());
      write_macro_model_file(r.model, o.macro_path);
      o.record = compose_result(r);
      ckpt.save_result(d.name(), o.record);
      report.completed.push_back(std::move(o));
    } catch (const std::exception& e) {
      report.failed.push_back({d.name(), e.what()});
      g_designs_failed.add();
      log_error("flow: design %s failed, skipped: %s", d.name().c_str(),
                e.what());
    }
  }

  if (report.completed.empty())
    throw fault::FlowError(
        fault::ErrorCode::kUnavailable, "flow.run",
        "every design failed modeling (first: " +
            report.failed.front().design + ": " +
            report.failed.front().error + ")");
  return report;
}

}  // namespace tmm::flow
