#include "flow/framework.hpp"

#include <stdexcept>

#include "analysis/graph_lint.hpp"
#include "analysis/model_lint.hpp"
#include "fault/fault.hpp"
#include "flow/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sta/propagation.hpp"
#include "util/instrument.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace tmm {

namespace {

// Degradation counters surfaced in --metrics JSON (docs/ROBUSTNESS.md):
// failed = design skipped entirely, degraded = ingested with
// conservative fallbacks (failed pins / skipped constraint sets).
obs::Counter& g_designs_failed = obs::counter("flow.designs_failed");
obs::Counter& g_designs_degraded = obs::counter("flow.designs_degraded");

/// Stage-boundary invariant gate (FlowConfig::validate_stages): a
/// corrupt graph must stop the pipeline where the corruption appeared,
/// not surface as silently wrong boundary timing three stages later.
void validate_stage(bool enabled, const char* stage, const TimingGraph& g) {
  if (!enabled) return;
  const analysis::LintReport report = analysis::lint_graph(g);
  if (!report.clean())
    throw std::runtime_error(std::string("flow: invariant check failed "
                                         "after stage '") +
                             stage + "':\n" + report.to_string());
}

}  // namespace

Framework::Framework(FlowConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.data.ts.cppr = cfg_.cppr;
  cfg_.data.cppr_labels = cfg_.cppr;
  cfg_.data.ts.aocv = cfg_.aocv;
  cfg_.data.ts.merge.aocv = cfg_.aocv;
  cfg_.merge.aocv = cfg_.aocv;
  cfg_.data.ts.threads = cfg_.threads;
}

TrainingSummary Framework::train(std::span<const Design> designs) {
  obs::Span train_span("flow.train");
  obs::trace_rss_sample();
  // Stamp the library hash into the config before the checkpoint
  // fingerprint is computed: TS labels depend on cell timing, so a
  // resume against a different library must be rejected, not silently
  // reused.
  if (!designs.empty())
    cfg_.library_fingerprint =
        flow::library_fingerprint(designs.front().library());
  flow::Checkpoint ckpt;
  if (!cfg_.checkpoint_dir.empty())
    ckpt = flow::Checkpoint::open(cfg_.checkpoint_dir, cfg_);
  TrainingSummary summary;
  Stopwatch data_sw;
  std::vector<GraphSample> samples;
  std::vector<std::vector<double>> per_design_ts;
  samples.reserve(designs.size());
  double filtered_sum = 0.0;

  for (const Design& d : designs) {
    const std::string design_span_name = "flow.train.design:" + d.name();
    obs::Span design_span(design_span_name.c_str());
    Stopwatch design_sw;
    // Per-design isolation: one failing training design (corrupt
    // netlist, numeric corruption, injected fault) is skipped with a
    // diagnostic instead of aborting training; its data simply does not
    // contribute. Work already banked for earlier designs is kept.
    try {
      fault::inject("flow.train_design");
      const TimingGraph flat = build_timing_graph(d);
      const IlmResult ilm = extract_ilm(flat);
      validate_stage(cfg_.validate_stages, "ilm (train)", ilm.graph);

      flow::SensCheckpoint sens;
      bool from_ckpt = false;
      if (ckpt.enabled()) {
        if (auto loaded = ckpt.load_sens(d.name());
            loaded && loaded->nodes == ilm.graph.num_nodes()) {
          sens = std::move(*loaded);
          from_ckpt = true;
          ++summary.designs_from_checkpoint;
          log_info("train design %s: sensitivity data restored from %s",
                   d.name().c_str(), ckpt.sens_path(d.name()).c_str());
        }
      }
      if (!from_ckpt) {
        const SensitivityData data =
            generate_training_data(ilm.graph, cfg_.data);
        sens.nodes = ilm.graph.num_nodes();
        sens.positives = data.positives;
        sens.filtered_fraction = data.filter.filtered_fraction();
        sens.failed_pins = data.ts.failed_pins;
        sens.skipped_sets = data.ts.skipped_sets;
        sens.labels = data.labels;
        sens.ts = data.ts.ts;
        ckpt.save_sens(d.name(), sens);
      }
      if (sens.failed_pins > 0 || sens.skipped_sets > 0) {
        summary.degraded.push_back(d.name());
        g_designs_degraded.add();
        log_warn("train design %s: degraded (%zu failed pins, %zu skipped "
                 "constraint sets; conservative fallbacks applied)",
                 d.name().c_str(), sens.failed_pins, sens.skipped_sets);
      }

      GraphSample sample;
      sample.graph = GnnGraph::from_timing_graph(ilm.graph);
      sample.features = extract_features(ilm.graph, cfg_.cppr_feature);
      sample.labels = sens.labels;
      sample.mask.assign(ilm.graph.num_nodes(), 1);
      for (NodeId n = 0; n < ilm.graph.num_nodes(); ++n)
        if (ilm.graph.node(n).dead) sample.mask[n] = 0;

      summary.labeled_pins += ilm.graph.num_live_nodes();
      summary.positives += sens.positives;
      filtered_sum += sens.filtered_fraction;
      ++summary.designs;
      log_info("train design %s: ilm pins %zu, positives %zu, filtered %.1f%%",
               d.name().c_str(), ilm.graph.num_live_nodes(), sens.positives,
               sens.filtered_fraction * 100.0);
      per_design_ts.push_back(std::move(sens.ts));
      samples.push_back(std::move(sample));
    } catch (const std::exception& e) {
      summary.failed.push_back({d.name(), e.what()});
      g_designs_failed.add();
      log_error("train design %s failed, skipped: %s", d.name().c_str(),
                e.what());
    }
    if (cfg_.collect_stage_timings)
      summary.stage_timings.push_back(
          {"data_generation:" + d.name(), design_sw.seconds()});
  }
  if (summary.designs == 0 && !designs.empty())
    throw fault::FlowError(
        fault::ErrorCode::kUnavailable, "flow.train",
        "every training design failed (first: " + summary.failed.front().design +
            ": " + summary.failed.front().error + ")");
  summary.data_generation_seconds = data_sw.seconds();
  if (cfg_.collect_stage_timings)
    summary.stage_timings.push_back(
        {"data_generation", summary.data_generation_seconds});
  if (summary.designs > 0)
    summary.mean_filtered_fraction =
        filtered_sum / static_cast<double>(summary.designs);

  // Regression targets (Section 5.3): normalized TS magnitudes so the
  // model also captures the *relative* criticality between pins. The
  // normalization scale is shared across the training set; CPPR-rule
  // labels stay saturated at 1.
  if (cfg_.regression) {
    std::vector<double> positive_ts;
    for (const auto& ts : per_design_ts)
      for (double v : ts)
        if (v > cfg_.data.ts_zero_epsilon) positive_ts.push_back(v);
    ts_scale_ = positive_ts.empty() ? 1.0 : percentile(positive_ts, 95.0);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      for (std::size_t n = 0; n < samples[s].labels.size(); ++n) {
        if (samples[s].labels[n] < 0.5f) continue;  // zero-TS stays 0
        const double ts = per_design_ts[s][n];
        const double y =
            ts > cfg_.data.ts_zero_epsilon
                ? std::min(1.0, ts / ts_scale_)
                : 1.0;  // CPPR-rule label without TS: fully critical
        samples[s].labels[n] = static_cast<float>(
            std::max(y, static_cast<double>(cfg_.regression_keep_threshold) *
                            2.0));
      }
    }
  }

  if (ckpt.has_model()) {
    // Bit-identical resume: ts_scale_ above was recomputed from the
    // checkpointed raw TS vectors, and the model weights are restored
    // verbatim, so downstream predictions match the uninterrupted run.
    gnn_ = ckpt.load_model();
    summary.model_from_checkpoint = true;
    log_info("flow: GNN model restored from %s", ckpt.model_path().c_str());
  } else {
    GnnModelConfig gcfg = cfg_.gnn;
    gcfg.input_dim =
        cfg_.cppr_feature ? kNumFeaturesWithCppr : kNumBasicFeatures;
    gnn_.emplace(gcfg);
    TrainConfig tcfg = cfg_.train;
    if (cfg_.regression) tcfg.loss = LossKind::kMeanSquaredError;
    summary.report = train_model(*gnn_, samples, tcfg);
    ckpt.save_model(*gnn_);
    if (cfg_.collect_stage_timings)
      summary.stage_timings.push_back({"gnn_training", summary.report.seconds});
  }
  obs::trace_rss_sample();
  return summary;
}

std::vector<bool> Framework::predict_keep(const TimingGraph& ilm,
                                          double* inference_seconds) {
  Stopwatch sw;
  std::vector<bool> keep(ilm.num_nodes(), true);
  if (cfg_.label_all_remained) {
    const FilterResult fr = filter_insensitive_pins(ilm, cfg_.data.filter);
    for (NodeId n = 0; n < ilm.num_nodes(); ++n) keep[n] = fr.remained[n];
  } else {
    if (!gnn_) throw std::logic_error("Framework: model not trained");
    const GnnGraph graph = GnnGraph::from_timing_graph(ilm);
    const Matrix features = extract_features(ilm, cfg_.cppr_feature);
    const auto probs = gnn_->predict(graph, features);
    const float threshold =
        cfg_.regression ? cfg_.regression_keep_threshold : cfg_.keep_threshold;
    for (NodeId n = 0; n < ilm.num_nodes(); ++n)
      keep[n] = probs[n] >= threshold;
    // CPPR mode: clock-network branch points are kept regardless of the
    // classifier (the Section 5.1 labeling rule applied at inference).
    if (cfg_.cppr) {
      for (NodeId n = 0; n < ilm.num_nodes(); ++n)
        if (is_cppr_crucial(ilm, n)) keep[n] = true;
    }
  }
  if (inference_seconds) *inference_seconds = sw.seconds();
  return keep;
}

std::vector<BoundaryConstraints> Framework::eval_sets(
    const Design& design) const {
  Rng rng(cfg_.eval_seed ^ (design.primary_inputs().size() * 0x9e3779b9ULL));
  std::vector<BoundaryConstraints> sets;
  for (std::size_t i = 0; i < cfg_.eval_constraint_sets; ++i)
    sets.push_back(random_constraints(design.primary_inputs().size(),
                                      design.primary_outputs().size(),
                                      cfg_.eval_constraint_gen, rng));
  return sets;
}

DesignResult Framework::evaluate(const Design& design, const TimingGraph& flat,
                                 MacroModel model, GenerationStats gen) const {
  DesignResult result;
  result.design = design.name();
  result.model_file_bytes = macro_model_size_bytes(model);
  model.file_size_bytes = result.model_file_bytes;
  const auto sets = eval_sets(design);
  Sta::Options opt;
  opt.cppr = cfg_.cppr;
  opt.aocv = cfg_.aocv;
  // Full-design reference runs dominate evaluation; macro-model runs
  // fall under parallel_min_nodes and stay serial automatically.
  opt.threads = cfg_.threads;
  result.acc = evaluate_accuracy(flat, model.graph, sets, opt);
  result.usage_peak_rss = peak_rss_bytes();
  result.model_memory_bytes = model.graph.memory_bytes();
  result.gen = gen;
  result.model = std::move(model);
  return result;
}

DesignResult Framework::run_design(const Design& design) {
  const std::string span_name = "flow.run_design:" + design.name();
  obs::Span run_span(span_name.c_str());
  obs::trace_rss_sample();
  fault::inject("flow.design");
  std::vector<StageTiming> stages;
  Stopwatch stage_sw;
  auto mark = [&](const char* stage) {
    if (cfg_.collect_stage_timings)
      stages.push_back({stage, stage_sw.seconds()});
    stage_sw.reset();
  };

  const TimingGraph flat = build_timing_graph(design);
  mark("build_flat_graph");
  Stopwatch gen_sw;
  IlmResult ilm = extract_ilm(flat);
  validate_stage(cfg_.validate_stages, "ilm", ilm.graph);
  mark("ilm");
  GenerationStats gen;
  gen.ilm_pins = ilm.graph.num_live_nodes();

  double inference_seconds = 0.0;
  const auto keep = predict_keep(ilm.graph, &inference_seconds);
  for (bool k : keep)
    if (k) ++gen.pins_kept;
  mark("inference");

  merge_insensitive_pins(ilm.graph, keep, cfg_.merge);
  validate_stage(cfg_.validate_stages, "merge/index-selection", ilm.graph);
  mark("merge");
  gen.model_pins = ilm.graph.num_live_nodes();
  gen.generation_seconds = gen_sw.seconds();
  gen.generation_peak_rss = peak_rss_bytes();
  obs::trace_rss_sample();

  MacroModel model;
  model.design_name = design.name();
  model.graph = std::move(ilm.graph);
  if (cfg_.validate_stages) {
    const analysis::LintReport report =
        analysis::lint_model_against(model, design);
    if (!report.clean())
      throw std::runtime_error(
          "flow: invariant check failed on the generated model:\n" +
          report.to_string());
    mark("validate");
  }
  DesignResult result = evaluate(design, flat, std::move(model), gen);
  result.inference_seconds = inference_seconds;
  mark("evaluate");
  result.stage_timings = std::move(stages);
  return result;
}

DesignResult Framework::run_itimerm(const Design& design,
                                    const ITimerMConfig& cfg) {
  obs::Span span("flow.run_itimerm");
  Stopwatch stage_sw;
  const TimingGraph flat = build_timing_graph(design);
  GenerationStats gen;
  ITimerMConfig effective = cfg;
  effective.protect_cppr = cfg_.cppr;
  effective.merge.aocv = cfg_.aocv;
  MacroModel model = generate_itimerm_model(flat, effective, &gen);
  model.design_name = design.name();
  const double gen_seconds = stage_sw.seconds();
  DesignResult result = evaluate(design, flat, std::move(model), gen);
  if (cfg_.collect_stage_timings) {
    result.stage_timings.push_back({"generate", gen_seconds});
    result.stage_timings.push_back(
        {"evaluate", stage_sw.seconds() - gen_seconds});
  }
  return result;
}

DesignResult Framework::run_libabs(const Design& design,
                                   const LibAbsConfig& cfg) {
  obs::Span span("flow.run_libabs");
  Stopwatch stage_sw;
  const TimingGraph flat = build_timing_graph(design);
  GenerationStats gen;
  MacroModel model = generate_libabs_model(flat, cfg, &gen);
  model.design_name = design.name();
  const double gen_seconds = stage_sw.seconds();
  DesignResult result = evaluate(design, flat, std::move(model), gen);
  if (cfg_.collect_stage_timings) {
    result.stage_timings.push_back({"generate", gen_seconds});
    result.stage_timings.push_back(
        {"evaluate", stage_sw.seconds() - gen_seconds});
  }
  return result;
}

DesignResult Framework::run_etm(const Design& design, const EtmConfig& cfg) {
  obs::Span span("flow.run_etm");
  Stopwatch stage_sw;
  const TimingGraph flat = build_timing_graph(design);
  GenerationStats gen;
  MacroModel model = generate_etm_model(flat, cfg, &gen);
  model.design_name = design.name();
  const double gen_seconds = stage_sw.seconds();
  DesignResult result = evaluate(design, flat, std::move(model), gen);
  if (cfg_.collect_stage_timings) {
    result.stage_timings.push_back({"generate", gen_seconds});
    result.stage_timings.push_back(
        {"evaluate", stage_sw.seconds() - gen_seconds});
  }
  return result;
}

}  // namespace tmm
