#pragma once
// Fault-tolerant end-to-end flow runner (docs/ROBUSTNESS.md).
//
// `run_flow` drives the whole Fig. 4 pipeline over a set of design
// files — load, train (stage 1+2), then model + evaluate each design
// (stage 3) — with per-design isolation and checkpoint/resume rooted in
// one run directory:
//
//   <dir>/MANIFEST, ts/, model.gnn   training checkpoints (Checkpoint)
//   <dir>/out/<design>.macro         generated macro models (atomic)
//   <dir>/results/<design>.res       per-design completion records
//
// A design that fails at any stage is skipped with a structured
// diagnostic and reported in FlowRunReport — it never takes the run
// down (unless *every* design fails, which raises
// fault::FlowError(kUnavailable)). Re-running with the same directory
// resumes: completed designs are skipped, and the final artifacts are
// bit-identical to an uninterrupted run.

#include <string>
#include <vector>

#include "flow/framework.hpp"
#include "frontend/frontend.hpp"
#include "netlist/design.hpp"

namespace tmm::flow {

struct DesignOutcome {
  std::string design;
  /// Restored from a previous run's result record (resume) instead of
  /// recomputed.
  bool from_checkpoint = false;
  std::string macro_path;
  /// The persisted result record (key-value lines; see compose_result).
  std::string record;
};

struct FlowRunReport {
  TrainingSummary training;
  std::vector<DesignOutcome> completed;
  /// Designs that failed to load or failed during modeling/evaluation.
  std::vector<DesignFailure> failed;

  /// Partial/degraded success: some output is missing or was produced
  /// through conservative fallbacks — the CLI maps this to exit code 3.
  bool degraded() const {
    return !failed.empty() || !training.failed.empty() ||
           !training.degraded.empty();
  }
};

/// Run the full flow over `design_paths` with checkpoint/resume in
/// `dir`. `cfg.checkpoint_dir` is overwritten with `dir`. Paths are
/// loaded through the real-circuit frontend (frontend::load_design_any):
/// `.blif`/`.v` inputs are imported under `fcfg`, `.dsn` files read as
/// before (`lib` is preferred when its name matches the file header, so
/// baseline runs stay bit-identical). Throws fault::FlowError when
/// nothing at all could be produced (no loadable design, all designs
/// failed) and on checkpoint-config mismatch.
FlowRunReport run_flow(const std::vector<std::string>& design_paths,
                       const std::string& dir, FlowConfig cfg,
                       const Library& lib,
                       const frontend::FrontendConfig& fcfg = {});

}  // namespace tmm::flow
