#pragma once
// The end-to-end GNN-based timing macro modeling framework (Fig. 4):
//
//   stage 1  timing-sensitivity data generation on small training
//            designs (filter + TS evaluation, Fig. 8);
//   stage 2  GNN training (GraphSAGE by default) and prediction of
//            timing-variant pins on unseen designs;
//   stage 3  macro model generation (ILM -> merging -> index selection,
//            Fig. 9) and accuracy evaluation against the flat design.
//
// The same class also drives the baselines and the Table 4/6 ablations
// (is_CPPR feature on/off; label-all-remained-pins).

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gnn/features.hpp"
#include "gnn/trainer.hpp"
#include "macro/baselines.hpp"
#include "macro/evaluate.hpp"
#include "macro/model_io.hpp"
#include "netlist/design.hpp"
#include "sensitivity/training_data.hpp"

namespace tmm {

struct FlowConfig {
  /// Timing mode: CPPR on (Tables 3-4) or off (Table 5).
  bool cppr = true;
  /// Advanced timing mode (AOCV depth-based derating); the whole
  /// pipeline — TS data generation, merging, evaluation — follows it.
  AocvConfig aocv;
  /// Include the dedicated is_CPPR feature (Table 4 ablation).
  bool cppr_feature = true;
  /// Bypass the GNN and keep every pin the filter remained (Table 6).
  bool label_all_remained = false;

  /// Treat the prediction as a regression problem (Section 5.3): train
  /// on normalized TS magnitudes instead of {0,1} labels, so the model
  /// also captures relative criticality between pins.
  bool regression = false;

  TrainingDataConfig data;
  GnnModelConfig gnn;
  TrainConfig train;
  MergeConfig merge;
  /// Probability threshold above which a pin is kept (classification).
  float keep_threshold = 0.5f;
  /// Predicted-criticality threshold above which a pin is kept
  /// (regression mode).
  float regression_keep_threshold = 0.05f;

  std::size_t eval_constraint_sets = 4;
  ConstraintGenConfig eval_constraint_gen;
  std::uint64_t eval_seed = 0xE7A1;

  /// FNV-1a hash of the liberty library's canonical serialization,
  /// folded into the checkpoint fingerprint so resuming against a
  /// swapped library invalidates the checkpoint instead of silently
  /// reusing TS labels computed under different cell timing.
  /// Framework::train fills it from the training designs' library;
  /// 0 = not yet known.
  std::uint64_t library_fingerprint = 0;

  /// Checkpoint/resume directory (docs/ROBUSTNESS.md): when non-empty,
  /// per-design sensitivity data and the trained model persist there
  /// incrementally (atomic writes), and train() resumes from whatever
  /// is already present — bit-identically. Empty = disabled.
  std::string checkpoint_dir;

  /// Run the static invariant checker (src/analysis) after each macro
  /// generation stage — ILM capture, merging/index selection, final
  /// model — and throw std::runtime_error with the full diagnostic
  /// report when any error-severity rule fires. Off by default: it adds
  /// one full graph sweep per stage.
  bool validate_stages = false;

  /// Worker threads for the compute-heavy stages: the TS labeling loop
  /// (per-pin re-analyses fanned over workers) and the full-design STA
  /// runs of accuracy evaluation (levelized parallel passes,
  /// bit-identical to serial — see docs/PERFORMANCE.md). 0 = auto
  /// (TMM_THREADS when set, else hardware concurrency), 1 = serial,
  /// N = at most N. Plumbed from the tmm CLI's --threads flag.
  std::size_t threads = 0;

  /// Observability hook: record a per-stage wall-clock breakdown into
  /// TrainingSummary::stage_timings / DesignResult::stage_timings (one
  /// Stopwatch read per stage; see docs/OBSERVABILITY.md for the stage
  /// names). Trace spans are emitted regardless — they are free unless
  /// obs::set_tracing_enabled(true) was called.
  bool collect_stage_timings = true;
};

/// One named flow stage and its wall-clock cost.
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Everything the experiment tables report about one design.
struct DesignResult {
  std::string design;
  MacroModel model;
  GenerationStats gen;
  AccuracyReport acc;
  std::size_t model_file_bytes = 0;
  double inference_seconds = 0.0;  ///< GNN prediction time (0 for baselines)
  std::size_t usage_peak_rss = 0;
  /// In-memory footprint of the loaded model graph ("Usage Memory").
  std::size_t model_memory_bytes = 0;
  /// Wall-clock breakdown of the run (ilm / inference / merge /
  /// evaluate, plus validate when FlowConfig::validate_stages is on);
  /// empty when FlowConfig::collect_stage_timings is off or for
  /// baseline runs.
  std::vector<StageTiming> stage_timings;
};

/// One skipped design and why (per-design isolation: a failing design
/// must not take the rest of the flow down with it).
struct DesignFailure {
  std::string design;
  std::string error;
};

struct TrainingSummary {
  TrainReport report;
  std::size_t designs = 0;  ///< designs successfully ingested
  std::size_t labeled_pins = 0;
  std::size_t positives = 0;
  double data_generation_seconds = 0.0;
  double mean_filtered_fraction = 0.0;
  /// Degradation accounting (docs/ROBUSTNESS.md). `failed`: designs
  /// skipped entirely (their data contributed nothing). `degraded`:
  /// designs ingested with failed pins / skipped constraint sets
  /// (conservative fallbacks applied). Training throws
  /// fault::FlowError(kUnavailable) only when *every* design failed.
  std::vector<DesignFailure> failed;
  std::vector<std::string> degraded;
  /// Resume accounting: stages restored from FlowConfig::checkpoint_dir
  /// instead of recomputed.
  std::size_t designs_from_checkpoint = 0;
  bool model_from_checkpoint = false;
  /// Wall-clock breakdown (data_generation / gnn_training, plus one
  /// data_generation:<design> entry per training design); empty when
  /// FlowConfig::collect_stage_timings is off.
  std::vector<StageTiming> stage_timings;
};

class Framework {
 public:
  explicit Framework(FlowConfig cfg = {});

  const FlowConfig& config() const noexcept { return cfg_; }

  /// Stage 1 + 2: generate sensitivity data for each training design
  /// and fit the GNN.
  TrainingSummary train(std::span<const Design> designs);

  /// True once a model has been trained or loaded.
  bool trained() const noexcept { return gnn_.has_value(); }
  GnnModel& model() { return *gnn_; }
  void set_model(GnnModel model) { gnn_ = std::move(model); }

  /// Predict the keep-set for an ILM graph (stage 2 inference).
  std::vector<bool> predict_keep(const TimingGraph& ilm,
                                 double* inference_seconds = nullptr);

  /// Stage 3 on a test design: generate the macro model and evaluate it
  /// against the flat design.
  DesignResult run_design(const Design& design);

  /// Baseline runs through the identical evaluation harness.
  DesignResult run_itimerm(const Design& design,
                           const ITimerMConfig& cfg = {});
  DesignResult run_libabs(const Design& design, const LibAbsConfig& cfg = {});
  DesignResult run_etm(const Design& design, const EtmConfig& cfg = {});

  /// Normalization scale for regression targets (p95 of positive TS
  /// over the training set); 1.0 until trained in regression mode.
  double ts_scale() const noexcept { return ts_scale_; }

 private:
  std::vector<BoundaryConstraints> eval_sets(const Design& design) const;
  DesignResult evaluate(const Design& design, const TimingGraph& flat,
                        MacroModel model, GenerationStats gen) const;

  FlowConfig cfg_;
  std::optional<GnnModel> gnn_;
  double ts_scale_ = 1.0;
};

}  // namespace tmm
