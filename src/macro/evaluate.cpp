#include "macro/evaluate.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/instrument.hpp"

namespace tmm {

namespace {

// Metric handle resolved at namespace scope (the registry is a leaked
// function-local static, so this is static-init safe).
obs::Counter& g_evals = obs::counter("evaluate.runs");

}  // namespace

AccuracyReport evaluate_accuracy(const TimingGraph& reference,
                                 const TimingGraph& model,
                                 std::span<const BoundaryConstraints> sets,
                                 bool cppr) {
  Sta::Options options;
  options.cppr = cppr;
  return evaluate_accuracy(reference, model, sets, options);
}

AccuracyReport evaluate_accuracy(const TimingGraph& reference,
                                 const TimingGraph& model,
                                 std::span<const BoundaryConstraints> sets,
                                 const Sta::Options& options) {
  obs::Span span("evaluate.accuracy");
  AccuracyReport report;
  Sta ref_sta(reference, options);
  Sta model_sta(model, options);
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& bc : sets) {
    ref_sta.run(bc);
    const BoundarySnapshot ref_snap = ref_sta.boundary_snapshot();
    Stopwatch usage;
    model_sta.run(bc);
    const BoundarySnapshot model_snap = model_sta.boundary_snapshot();
    report.usage_seconds += usage.seconds();
    const SnapshotDiff d = diff_snapshots(model_snap, ref_snap);
    report.max_err_ps = std::max(report.max_err_ps, d.max_abs);
    sum += d.avg_abs * static_cast<double>(d.compared);
    count += d.compared;
    report.structural_mismatches += d.mismatched;
    ++report.constraint_sets;
  }
  report.compared_values = count;
  if (count > 0) report.avg_err_ps = sum / static_cast<double>(count);
  g_evals.add();
  obs::gauge("evaluate.max_err_ps").set(report.max_err_ps);
  span.set_arg("max_err_ps", report.max_err_ps);
  return report;
}

}  // namespace tmm
