#pragma once
// The generated timing macro model: a reduced timing graph that
// encapsulates the boundary timing behaviour of a design (Section 2),
// plus bookkeeping used by the experiment harnesses.

#include <string>

#include "sta/timing_graph.hpp"

namespace tmm {

struct MacroModel {
  std::string design_name;
  TimingGraph graph;
  /// Size of the serialized model in bytes (the "model file size"
  /// column of Tables 3-5); 0 until measured.
  std::size_t file_size_bytes = 0;

  std::size_t num_pins() const { return graph.num_live_nodes(); }
  std::size_t num_arcs() const { return graph.num_live_arcs(); }
};

/// Statistics reported next to a generated model.
struct GenerationStats {
  std::size_t ilm_pins = 0;      ///< pins after ILM capture
  std::size_t model_pins = 0;    ///< pins after merging
  std::size_t pins_kept = 0;     ///< pins predicted timing-variant
  double generation_seconds = 0.0;
  std::size_t generation_peak_rss = 0;
};

}  // namespace tmm
