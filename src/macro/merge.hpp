#pragma once
// Serial and parallel merging (Fig. 9): remove pins predicted timing-
// insensitive from an ILM graph, splicing in re-characterized composite
// arcs, then collapse parallel duplicate arcs into worst-case envelopes.
//
// Merging a pin is refused (the pin is kept regardless of prediction)
// when removal could change boundary timing structurally:
//   - boundary ports, flip-flop data/clock pins, check endpoints;
//   - pins electrically tied to a primary-output net (their downstream
//     load is a boundary constraint, not a constant — the paper's
//     "pins connected to some output net are also remained");
//   - pins with more than one fanin: the analysis engine merges the
//     worst slew over fanins at such pins, and per-path composition
//     cannot reproduce that coupling, so removal would not be
//     timing-safe (single-fanin pins compose exactly);
//   - high-fanout pins whose removal would blow up the arc count.

#include <unordered_map>
#include <vector>

#include "macro/compose.hpp"
#include "sta/aocv.hpp"
#include "sta/timing_graph.hpp"

namespace tmm {

struct MergeConfig {
  IndexSelectionConfig index;
  /// Refuse to merge a pin when fanin * fanout exceeds this.
  std::size_t max_fan_product = 8;
  /// Only merge pins with a single fanin (slew-exact composition);
  /// disabling this trades accuracy for size (exposed for ablation).
  bool single_fanin_only = true;
  /// Timing mode the model is generated for: when AOCV is enabled, the
  /// per-stage depth derates are baked into the re-characterized
  /// tables (merged arcs are marked `baked_derate`, so the analysis
  /// engine never derates them twice).
  AocvConfig aocv;
};

struct MergeStats {
  std::size_t pins_removed = 0;
  std::size_t serial_arcs_created = 0;
  std::size_t parallel_arcs_merged = 0;
  std::size_t refused = 0;  ///< predicted-removable pins kept for safety
};

/// True if the node may legally be merged away.
bool mergeable(const TimingGraph& g, NodeId n, const MergeConfig& cfg);

/// Remove every node with keep[n] == false that is legally mergeable.
/// `keep` is indexed by node id of `g`.
MergeStats merge_insensitive_pins(TimingGraph& g, const std::vector<bool>& keep,
                                  const MergeConfig& cfg = {});

/// Collapse parallel duplicate delay arcs (same from/to) into envelopes.
std::size_t merge_parallel_arcs(TimingGraph& g, const MergeConfig& cfg = {});

/// True if the live graph has two non-launch delay arcs with the same
/// (from, to, sense) key — i.e. merge_parallel_arcs would fold
/// something even before any pin is removed. MergeDelta requires this
/// to be false (see below).
bool has_parallel_duplicate_arcs(const TimingGraph& g);

/// Single-pin merge with undo, for the what-if loop of timing-
/// sensitivity evaluation: removes one pin in place via the graph's
/// delta_* mutators — replicating merge_insensitive_pins({pin}) arc for
/// arc, including refusal rules, splice order, chain materialization
/// and parallel-duplicate folding — and restores the graph byte-
/// equivalently afterwards, keeping the cached adjacency and
/// topological order valid throughout. One MergeDelta per scratch graph
/// amortizes the pristine duplicate-key index across pins.
///
/// Not applicable (applicable() == false, apply() refuses) when the
/// pristine graph already has parallel duplicate arcs: a full merge
/// would fold those independently of the removed pin, so the delta
/// could not match it; callers fall back to the copy + full-merge path.
class MergeDelta {
 public:
  explicit MergeDelta(TimingGraph& g);

  bool applicable() const noexcept { return !graph_has_duplicates_; }

  /// Remove `pin`. Returns false (graph untouched) when the pin is
  /// refused by the merge legality/size rules or the delta is not
  /// applicable. Must not be called while a delta is applied.
  bool apply(NodeId pin, const MergeConfig& cfg);

  /// Restore the graph to its pre-apply state (no-op when nothing is
  /// applied).
  void undo();

  bool applied() const noexcept { return applied_; }

  /// Nodes whose fanin or fanout arc set the last apply() changed (the
  /// removed pin plus its former neighbors); empty when refused. Feed
  /// this to Sta::run_incremental.
  const std::vector<NodeId>& touched() const noexcept { return touched_; }

 private:
  TimingGraph* g_;
  bool graph_has_duplicates_ = false;
  /// (from, to, sense) key -> the unique live pristine non-launch arc.
  std::unordered_map<std::uint64_t, ArcId> pristine_keys_;
  NodeId pin_ = kInvalidId;
  bool applied_ = false;
  std::size_t base_arcs_ = 0;
  std::size_t base_tables_ = 0;
  std::vector<ArcId> killed_;  ///< pre-existing arcs killed by the delta
  std::vector<NodeId> touched_;
};

}  // namespace tmm
