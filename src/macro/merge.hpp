#pragma once
// Serial and parallel merging (Fig. 9): remove pins predicted timing-
// insensitive from an ILM graph, splicing in re-characterized composite
// arcs, then collapse parallel duplicate arcs into worst-case envelopes.
//
// Merging a pin is refused (the pin is kept regardless of prediction)
// when removal could change boundary timing structurally:
//   - boundary ports, flip-flop data/clock pins, check endpoints;
//   - pins electrically tied to a primary-output net (their downstream
//     load is a boundary constraint, not a constant — the paper's
//     "pins connected to some output net are also remained");
//   - pins with more than one fanin: the analysis engine merges the
//     worst slew over fanins at such pins, and per-path composition
//     cannot reproduce that coupling, so removal would not be
//     timing-safe (single-fanin pins compose exactly);
//   - high-fanout pins whose removal would blow up the arc count.

#include "macro/compose.hpp"
#include "sta/aocv.hpp"
#include "sta/timing_graph.hpp"

namespace tmm {

struct MergeConfig {
  IndexSelectionConfig index;
  /// Refuse to merge a pin when fanin * fanout exceeds this.
  std::size_t max_fan_product = 8;
  /// Only merge pins with a single fanin (slew-exact composition);
  /// disabling this trades accuracy for size (exposed for ablation).
  bool single_fanin_only = true;
  /// Timing mode the model is generated for: when AOCV is enabled, the
  /// per-stage depth derates are baked into the re-characterized
  /// tables (merged arcs are marked `baked_derate`, so the analysis
  /// engine never derates them twice).
  AocvConfig aocv;
};

struct MergeStats {
  std::size_t pins_removed = 0;
  std::size_t serial_arcs_created = 0;
  std::size_t parallel_arcs_merged = 0;
  std::size_t refused = 0;  ///< predicted-removable pins kept for safety
};

/// True if the node may legally be merged away.
bool mergeable(const TimingGraph& g, NodeId n, const MergeConfig& cfg);

/// Remove every node with keep[n] == false that is legally mergeable.
/// `keep` is indexed by node id of `g`.
MergeStats merge_insensitive_pins(TimingGraph& g, const std::vector<bool>& keep,
                                  const MergeConfig& cfg = {});

/// Collapse parallel duplicate delay arcs (same from/to) into envelopes.
std::size_t merge_parallel_arcs(TimingGraph& g, const MergeConfig& cfg = {});

}  // namespace tmm
