#include "macro/baselines.hpp"

#include "util/instrument.hpp"

namespace tmm {

std::vector<bool> libabs_keep_set(const TimingGraph& ilm) {
  // Tree-based reduction: the roots and leaves of maximal in-/out-trees
  // are exactly the pins with fanin > 1 or fanout > 1; chain interiors
  // (degree-1 pins) are merged. Boundary/FF/load-variant pins are
  // protected by merge legality regardless of this vote.
  std::vector<bool> keep(ilm.num_nodes(), false);
  for (NodeId n = 0; n < ilm.num_nodes(); ++n) {
    if (ilm.node(n).dead) continue;
    if (ilm.fanin(n).size() > 1 || ilm.fanout(n).size() > 1) keep[n] = true;
  }
  return keep;
}

MacroModel generate_libabs_model(const TimingGraph& flat,
                                 const LibAbsConfig& cfg,
                                 GenerationStats* stats) {
  Stopwatch sw;
  IlmResult ilm = extract_ilm(flat);
  const std::size_t ilm_pins = ilm.graph.num_live_nodes();
  const auto keep = libabs_keep_set(ilm.graph);
  std::size_t kept = 0;
  for (bool k : keep)
    if (k) ++kept;
  // Fixed coarse grids, no error-driven index selection: model the
  // original algorithm's form-based reduction (its accuracy gap in
  // Table 3 comes from exactly this).
  MergeConfig merge;
  merge.index.max_points = cfg.grid_points;
  merge.index.tolerance_ps = 0.0;
  merge.index.error_driven = false;
  merge_insensitive_pins(ilm.graph, keep, merge);

  MacroModel model;
  model.design_name = "libabs";
  model.graph = std::move(ilm.graph);
  if (stats) {
    stats->ilm_pins = ilm_pins;
    stats->model_pins = model.graph.num_live_nodes();
    stats->pins_kept = kept;
    stats->generation_seconds = sw.seconds();
    stats->generation_peak_rss = peak_rss_bytes();
  }
  return model;
}

}  // namespace tmm
