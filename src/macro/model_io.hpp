#pragma once
// Macro-model text serialization. The written form is self-contained
// (every NLDM surface is embedded, whether it originated in the cell
// library or in re-characterization), so a consumer needs no library to
// use the model — mirroring how extracted .lib models ship. The byte
// count of this form is the model-file-size metric of Tables 3-5.

#include <iosfwd>
#include <string>

#include "macro/macro_model.hpp"

namespace tmm {

/// Serialize; returns bytes written.
std::size_t write_macro_model(const MacroModel& model, std::ostream& os);

/// Measure the serialized size without keeping the bytes.
std::size_t macro_model_size_bytes(const MacroModel& model);

/// Parse a model previously produced by write_macro_model. Malformed
/// input raises fault::FlowError(kParse) with `source`:line and the
/// offending token (dangling node refs, NaN LUT entries, bad counts);
/// no input crashes the parser.
MacroModel read_macro_model(std::istream& is, std::string source = "<macro>");

/// read_macro_model from a file, with the path as error context.
MacroModel read_macro_model_file(const std::string& path);

/// Atomic write to `path` (util::atomic_write_file): interrupted runs
/// never leave a torn model file. Returns bytes written.
std::size_t write_macro_model_file(const MacroModel& model,
                                   const std::string& path);

}  // namespace tmm
