#include "macro/index_selection.hpp"

#include <algorithm>
#include <cmath>

#include "liberty/lut.hpp"
#include "obs/metrics.hpp"

namespace tmm {

namespace {

// Metric handles resolved at namespace scope (the registry is a leaked
// function-local static, so this is static-init safe) — avoids the
// per-call lookup and init guard in hot code.
constexpr double kPointBounds[] = {2, 4, 8, 16, 32};
constexpr double kErrBounds[] = {0.01, 0.1, 0.5, 1.0, 5.0};
obs::Counter& g_selections = obs::counter("index.selections");
obs::Histogram& g_points = obs::histogram("index.points", kPointBounds);
obs::Histogram& g_residual =
    obs::histogram("index.residual_err_ps", kErrBounds);

/// Metrics shared by both selection strategies: grid points kept and
/// the residual (worst remaining) interpolation error of the chosen
/// grid — the quantity the error-driven loop minimizes and the fixed
/// grid ignores. One extra error sweep is ~1/budget of the selection
/// cost itself.
void record_selection(std::span<const double> xs,
                      std::span<const std::vector<double>> funcs,
                      std::span<const std::size_t> sel) {
  g_selections.add();
  g_points.observe(static_cast<double>(sel.size()));
  double worst = 0.0;
  for (const auto& f : funcs)
    worst = std::max(worst, interpolation_error(xs, f, sel));
  g_residual.observe(worst);
}

/// Error at candidate position `i` of `func` under the selected grid.
double point_error(std::span<const double> xs, std::span<const double> func,
                   std::span<const std::size_t> selected, std::size_t i) {
  // Find enclosing selected segment (selected is ascending, includes ends).
  auto it = std::upper_bound(selected.begin(), selected.end(), i);
  if (it == selected.begin() || it == selected.end()) return 0.0;
  const std::size_t hi = *it;
  const std::size_t lo = *(it - 1);
  if (lo == i || hi == i) return 0.0;
  const double t = (xs[i] - xs[lo]) / (xs[hi] - xs[lo]);
  const double approx = func[lo] + t * (func[hi] - func[lo]);
  return std::fabs(approx - func[i]);
}

}  // namespace

double interpolation_error(std::span<const double> xs,
                           std::span<const double> func,
                           std::span<const std::size_t> selected) {
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    worst = std::max(worst, point_error(xs, func, selected, i));
  return worst;
}

std::vector<std::size_t> select_indices(
    std::span<const double> xs, std::span<const std::vector<double>> funcs,
    const IndexSelectionConfig& cfg) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> sel;
  if (n == 0) return sel;
  sel.push_back(0);
  if (n == 1) return sel;
  sel.push_back(n - 1);
  const std::size_t budget = std::max<std::size_t>(2, cfg.max_points);

  if (!cfg.error_driven) {
    // Fixed grid: k points spaced evenly in sqrt-space (a generic
    // denser-at-the-low-end template), snapped to the nearest
    // candidates — no knowledge of where the surfaces actually bend.
    sel.clear();
    const std::size_t k = std::min(budget, n);
    const double lo = std::sqrt(std::max(0.0, xs.front()));
    const double hi = std::sqrt(std::max(0.0, xs.back()));
    for (std::size_t i = 0; i < k; ++i) {
      const double root =
          lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(k - 1);
      const double target = root * root;
      std::size_t best = 0;
      for (std::size_t j = 1; j < n; ++j)
        if (std::fabs(xs[j] - target) < std::fabs(xs[best] - target))
          best = j;
      sel.push_back(best);
    }
    std::sort(sel.begin(), sel.end());
    sel.erase(std::unique(sel.begin(), sel.end()), sel.end());
    record_selection(xs, funcs, sel);
    return sel;
  }

  while (sel.size() < std::min(budget, n)) {
    // Find the candidate with the largest error over all functions.
    double worst_err = 0.0;
    std::size_t worst_pos = 0;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      if (std::binary_search(sel.begin(), sel.end(), i)) continue;
      double err = 0.0;
      for (const auto& f : funcs)
        err = std::max(err, point_error(xs, f, sel, i));
      if (err > worst_err) {
        worst_err = err;
        worst_pos = i;
      }
    }
    if (worst_err <= cfg.tolerance_ps) break;
    sel.insert(std::upper_bound(sel.begin(), sel.end(), worst_pos), worst_pos);
  }
  record_selection(xs, funcs, sel);
  return sel;
}

std::vector<double> densify_axis(std::span<const double> base) {
  std::vector<double> out;
  if (base.empty()) return out;
  out.reserve(base.size() * 2);
  for (std::size_t i = 0; i < base.size(); ++i) {
    out.push_back(base[i]);
    if (i + 1 < base.size()) out.push_back(0.5 * (base[i] + base[i + 1]));
  }
  out.erase(std::unique(out.begin(), out.end(),
                        [](double a, double b) { return a == b; }),
            out.end());
  return out;
}

}  // namespace tmm
