#pragma once
// Model accuracy evaluation (Fig. 2): analyze the reference (flat)
// design and the macro model under the same boundary-constraint sets
// and compare boundary slew/at/rat/slack.

#include <span>

#include "sta/propagation.hpp"

namespace tmm {

struct AccuracyReport {
  double max_err_ps = 0.0;  ///< "Max Error" column
  double avg_err_ps = 0.0;  ///< "Avg. Error" column
  std::size_t constraint_sets = 0;
  std::size_t compared_values = 0;
  std::size_t structural_mismatches = 0;  ///< finite-vs-infinite entries
  double usage_seconds = 0.0;  ///< model analysis time ("Usage Runtime")
};

/// Analyze both graphs under every constraint set and report the max and
/// mean absolute boundary differences in ps. `cppr` selects the timing
/// mode (Tables 3 vs 5).
AccuracyReport evaluate_accuracy(const TimingGraph& reference,
                                 const TimingGraph& model,
                                 std::span<const BoundaryConstraints> sets,
                                 bool cppr);

/// Full-options variant (CPPR and/or AOCV modes).
AccuracyReport evaluate_accuracy(const TimingGraph& reference,
                                 const TimingGraph& model,
                                 std::span<const BoundaryConstraints> sets,
                                 const Sta::Options& options);

}  // namespace tmm
