#include "macro/model_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "fault/token_reader.hpp"
#include "util/atomic_io.hpp"

namespace tmm {

namespace {

using fault::ErrorCode;
using fault::FlowError;
using io::TokenReader;

/// Caps on count fields so a corrupt header cannot become a huge
/// allocation before the next tag check fires.
constexpr std::size_t kMaxRecords = 100'000'000;
constexpr std::size_t kMaxLutAxis = 10'000;

void write_lut(std::ostream& os, const Lut& lut) {
  os << lut.slew_index().size() << ' ' << lut.load_index().size() << '\n';
  for (double v : lut.slew_index()) os << v << ' ';
  os << '\n';
  for (double v : lut.load_index()) os << v << ' ';
  os << '\n';
  for (double v : lut.values()) os << v << ' ';
  os << '\n';
}

Lut read_lut(TokenReader& tr) {
  const std::size_t ni = tr.size_at_most("lut slew-axis size", kMaxLutAxis);
  const std::size_t nj = tr.size_at_most("lut load-axis size", kMaxLutAxis);
  std::vector<double> i1(ni);
  std::vector<double> i2(nj);
  for (auto& v : i1) v = tr.number("lut slew index");
  for (auto& v : i2) v = tr.number("lut load index");
  const std::size_t nvals = ni == 0 ? 1 : ni * std::max<std::size_t>(nj, 1);
  std::vector<double> vals(nvals);
  for (auto& v : vals) v = tr.number("lut value");
  try {
    if (ni == 0) return Lut::scalar(vals[0]);
    if (nj == 0) return Lut::table1d(std::move(i1), std::move(vals));
    return Lut::table2d(std::move(i1), std::move(i2), std::move(vals));
  } catch (const std::invalid_argument& e) {
    tr.fail(e.what());
  }
}

void write_tables(std::ostream& os, const ElRf<Lut>& t) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) write_lut(os, t(el, rf));
}

ElRf<Lut> read_tables(TokenReader& tr) {
  ElRf<Lut> t;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) t(el, rf) = read_lut(tr);
  return t;
}

}  // namespace

std::size_t write_macro_model(const MacroModel& model, std::ostream& os) {
  const TimingGraph& g = model.graph;
  std::ostringstream buf;
  buf.precision(9);

  // Compact live node ids.
  std::vector<NodeId> to_compact(g.num_nodes(), kInvalidId);
  std::size_t live = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (!g.node(n).dead) to_compact[n] = static_cast<NodeId>(live++);

  std::size_t live_arcs = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a)
    if (!g.arc(a).dead) ++live_arcs;
  std::size_t live_checks = 0;
  for (const auto& c : g.checks())
    if (!c.dead) ++live_checks;

  buf << "macro " << model.design_name << ' ' << live << ' ' << live_arcs
      << ' ' << live_checks << '\n';

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto& node = g.node(n);
    if (node.dead) continue;
    unsigned flags = 0;
    if (node.is_clock_root) flags |= 1u;
    if (node.in_clock_network) flags |= 2u;
    if (node.is_ff_clock) flags |= 4u;
    if (node.is_ff_data) flags |= 8u;
    buf << "node " << node.name << ' ' << static_cast<int>(node.role) << ' '
        << node.port_ordinal << ' ' << flags << ' ' << node.static_load_ff
        << ' ' << node.aocv_depth << ' ' << node.attached_po_loads.size();
    for (auto po : node.attached_po_loads) buf << ' ' << po;
    buf << '\n';
  }

  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (arc.dead) continue;
    buf << "arc " << to_compact[arc.from] << ' ' << to_compact[arc.to] << ' '
        << static_cast<int>(arc.kind) << ' ' << static_cast<int>(arc.sense)
        << ' ' << (arc.is_launch ? 1 : 0) << ' ' << (arc.baked_derate ? 1 : 0)
        << ' ' << arc.wire_delay_ps << '\n';
    if (arc.kind == GraphArcKind::kCell) {
      write_tables(buf, *arc.delay);
      write_tables(buf, *arc.out_slew);
    }
  }

  for (const auto& c : g.checks()) {
    if (c.dead) continue;
    buf << "check " << to_compact[c.clock] << ' ' << to_compact[c.data] << ' '
        << (c.is_setup ? 1 : 0) << '\n';
    write_tables(buf, *c.guard);
  }

  const std::string s = buf.str();
  os << s;
  return s.size();
}

std::size_t macro_model_size_bytes(const MacroModel& model) {
  std::ostringstream os;
  return write_macro_model(model, os);
}

MacroModel read_macro_model(std::istream& is, std::string source) {
  fault::inject("macro.read");
  TokenReader tr(is, std::move(source));
  MacroModel model;
  tr.expect("macro");
  model.design_name = tr.token("design name");
  const std::size_t nn = tr.size_at_most("node count", kMaxRecords);
  const std::size_t na = tr.size_at_most("arc count", kMaxRecords);
  const std::size_t nc = tr.size_at_most("check count", kMaxRecords);
  TimingGraph& g = model.graph;

  for (std::size_t i = 0; i < nn; ++i) {
    tr.expect("node");
    GraphNode node;
    node.name = tr.token("node name");
    const int role = tr.integer_in("node role", 0,
                                   static_cast<int>(NodeRole::kPrimaryOutput));
    node.port_ordinal = tr.u32("port ordinal");
    const unsigned flags = static_cast<unsigned>(
        tr.integer_in("node flags", 0, 15));
    node.static_load_ff = tr.number("static load");
    node.aocv_depth = tr.u32("aocv depth");
    const std::size_t npo =
        tr.size_at_most("attached PO load count", kMaxRecords);
    node.role = static_cast<NodeRole>(role);
    node.is_clock_root = (flags & 1u) != 0;
    node.in_clock_network = (flags & 2u) != 0;
    node.is_ff_clock = (flags & 4u) != 0;
    node.is_ff_data = (flags & 8u) != 0;
    node.attached_po_loads.resize(npo);
    for (auto& po : node.attached_po_loads) po = tr.u32("attached PO ordinal");
    const std::uint32_t ordinal = node.port_ordinal;
    const NodeRole r = node.role;
    const bool clock_root = node.is_clock_root;
    const NodeId id = g.add_node(std::move(node));
    if (r == NodeRole::kPrimaryInput)
      g.set_primary_input(id, ordinal, clock_root);
    else if (r == NodeRole::kPrimaryOutput)
      g.set_primary_output(id, ordinal);
  }

  auto node_ref = [&](const char* what) {
    const std::size_t id = tr.size(what);
    if (id >= nn)
      tr.fail("dangling node reference " + std::to_string(id) + " for " +
              what + " (model has " + std::to_string(nn) + " nodes)");
    return static_cast<NodeId>(id);
  };

  for (std::size_t i = 0; i < na; ++i) {
    tr.expect("arc");
    const NodeId from = node_ref("arc source");
    const NodeId to = node_ref("arc sink");
    const int kind = tr.integer_in(
        "arc kind", 0, static_cast<int>(GraphArcKind::kWire));
    const int sense = tr.integer_in(
        "arc sense", 0, static_cast<int>(ArcSense::kNonUnate));
    const int launch = tr.integer_in("launch flag", 0, 1);
    const int baked = tr.integer_in("baked-derate flag", 0, 1);
    const double wire_delay = tr.number("wire delay");
    if (static_cast<GraphArcKind>(kind) == GraphArcKind::kWire) {
      g.add_wire_arc(from, to, wire_delay);
    } else {
      const ElRf<Lut>* dt = g.own_tables(read_tables(tr));
      const ElRf<Lut>* st = g.own_tables(read_tables(tr));
      const ArcId id = g.add_cell_arc(from, to, static_cast<ArcSense>(sense),
                                      dt, st, launch != 0);
      g.arc(id).baked_derate = baked != 0;
    }
  }

  for (std::size_t i = 0; i < nc; ++i) {
    tr.expect("check");
    const NodeId ck = node_ref("check clock");
    const NodeId d = node_ref("check data");
    const int setup = tr.integer_in("setup flag", 0, 1);
    const ElRf<Lut>* guard = g.own_tables(read_tables(tr));
    g.add_check(ck, d, setup != 0, guard);
  }
  return model;
}

MacroModel read_macro_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw FlowError(ErrorCode::kIo, "macro.read", "cannot open " + path);
  return read_macro_model(is, path);
}

std::size_t write_macro_model_file(const MacroModel& model,
                                   const std::string& path) {
  fault::inject("macro.write");
  std::ostringstream buf;
  const std::size_t bytes = write_macro_model(model, buf);
  util::atomic_write_file(path, buf.str())
      .or_throw("macro.write", model.design_name);
  return bytes;
}

}  // namespace tmm
