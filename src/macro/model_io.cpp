#include "macro/model_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tmm {

namespace {

void write_lut(std::ostream& os, const Lut& lut) {
  os << lut.slew_index().size() << ' ' << lut.load_index().size() << '\n';
  for (double v : lut.slew_index()) os << v << ' ';
  os << '\n';
  for (double v : lut.load_index()) os << v << ' ';
  os << '\n';
  for (double v : lut.values()) os << v << ' ';
  os << '\n';
}

Lut read_lut(std::istream& is) {
  std::size_t ni = 0;
  std::size_t nj = 0;
  is >> ni >> nj;
  std::vector<double> i1(ni);
  std::vector<double> i2(nj);
  for (auto& v : i1) is >> v;
  for (auto& v : i2) is >> v;
  const std::size_t nvals = ni == 0 ? 1 : ni * std::max<std::size_t>(nj, 1);
  std::vector<double> vals(nvals);
  for (auto& v : vals) is >> v;
  if (!is) throw std::runtime_error("macro model: truncated lut");
  if (ni == 0) return Lut::scalar(vals[0]);
  if (nj == 0) return Lut::table1d(std::move(i1), std::move(vals));
  return Lut::table2d(std::move(i1), std::move(i2), std::move(vals));
}

void write_tables(std::ostream& os, const ElRf<Lut>& t) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) write_lut(os, t(el, rf));
}

ElRf<Lut> read_tables(std::istream& is) {
  ElRf<Lut> t;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) t(el, rf) = read_lut(is);
  return t;
}

}  // namespace

std::size_t write_macro_model(const MacroModel& model, std::ostream& os) {
  const TimingGraph& g = model.graph;
  std::ostringstream buf;
  buf.precision(9);

  // Compact live node ids.
  std::vector<NodeId> to_compact(g.num_nodes(), kInvalidId);
  std::size_t live = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (!g.node(n).dead) to_compact[n] = static_cast<NodeId>(live++);

  std::size_t live_arcs = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a)
    if (!g.arc(a).dead) ++live_arcs;
  std::size_t live_checks = 0;
  for (const auto& c : g.checks())
    if (!c.dead) ++live_checks;

  buf << "macro " << model.design_name << ' ' << live << ' ' << live_arcs
      << ' ' << live_checks << '\n';

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto& node = g.node(n);
    if (node.dead) continue;
    unsigned flags = 0;
    if (node.is_clock_root) flags |= 1u;
    if (node.in_clock_network) flags |= 2u;
    if (node.is_ff_clock) flags |= 4u;
    if (node.is_ff_data) flags |= 8u;
    buf << "node " << node.name << ' ' << static_cast<int>(node.role) << ' '
        << node.port_ordinal << ' ' << flags << ' ' << node.static_load_ff
        << ' ' << node.aocv_depth << ' ' << node.attached_po_loads.size();
    for (auto po : node.attached_po_loads) buf << ' ' << po;
    buf << '\n';
  }

  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    if (arc.dead) continue;
    buf << "arc " << to_compact[arc.from] << ' ' << to_compact[arc.to] << ' '
        << static_cast<int>(arc.kind) << ' ' << static_cast<int>(arc.sense)
        << ' ' << (arc.is_launch ? 1 : 0) << ' ' << (arc.baked_derate ? 1 : 0)
        << ' ' << arc.wire_delay_ps << '\n';
    if (arc.kind == GraphArcKind::kCell) {
      write_tables(buf, *arc.delay);
      write_tables(buf, *arc.out_slew);
    }
  }

  for (const auto& c : g.checks()) {
    if (c.dead) continue;
    buf << "check " << to_compact[c.clock] << ' ' << to_compact[c.data] << ' '
        << (c.is_setup ? 1 : 0) << '\n';
    write_tables(buf, *c.guard);
  }

  const std::string s = buf.str();
  os << s;
  return s.size();
}

std::size_t macro_model_size_bytes(const MacroModel& model) {
  std::ostringstream os;
  return write_macro_model(model, os);
}

MacroModel read_macro_model(std::istream& is) {
  std::string tag;
  MacroModel model;
  std::size_t nn = 0;
  std::size_t na = 0;
  std::size_t nc = 0;
  is >> tag >> model.design_name >> nn >> na >> nc;
  if (tag != "macro") throw std::runtime_error("macro model: bad header");
  TimingGraph& g = model.graph;

  for (std::size_t i = 0; i < nn; ++i) {
    GraphNode node;
    int role = 0;
    unsigned flags = 0;
    std::size_t npo = 0;
    is >> tag >> node.name >> role >> node.port_ordinal >> flags >>
        node.static_load_ff >> node.aocv_depth >> npo;
    if (tag != "node") throw std::runtime_error("macro model: expected node");
    node.role = static_cast<NodeRole>(role);
    node.is_clock_root = (flags & 1u) != 0;
    node.in_clock_network = (flags & 2u) != 0;
    node.is_ff_clock = (flags & 4u) != 0;
    node.is_ff_data = (flags & 8u) != 0;
    node.attached_po_loads.resize(npo);
    for (auto& po : node.attached_po_loads) is >> po;
    const std::uint32_t ordinal = node.port_ordinal;
    const NodeRole r = node.role;
    const bool clock_root = node.is_clock_root;
    const NodeId id = g.add_node(std::move(node));
    if (r == NodeRole::kPrimaryInput)
      g.set_primary_input(id, ordinal, clock_root);
    else if (r == NodeRole::kPrimaryOutput)
      g.set_primary_output(id, ordinal);
  }

  for (std::size_t i = 0; i < na; ++i) {
    NodeId from = 0;
    NodeId to = 0;
    int kind = 0;
    int sense = 0;
    int launch = 0;
    int baked = 0;
    double wire_delay = 0.0;
    is >> tag >> from >> to >> kind >> sense >> launch >> baked >> wire_delay;
    if (tag != "arc") throw std::runtime_error("macro model: expected arc");
    if (static_cast<GraphArcKind>(kind) == GraphArcKind::kWire) {
      g.add_wire_arc(from, to, wire_delay);
    } else {
      const ElRf<Lut>* dt = g.own_tables(read_tables(is));
      const ElRf<Lut>* st = g.own_tables(read_tables(is));
      const ArcId id = g.add_cell_arc(from, to, static_cast<ArcSense>(sense),
                                      dt, st, launch != 0);
      g.arc(id).baked_derate = baked != 0;
    }
  }

  for (std::size_t i = 0; i < nc; ++i) {
    NodeId ck = 0;
    NodeId d = 0;
    int setup = 0;
    is >> tag >> ck >> d >> setup;
    if (tag != "check") throw std::runtime_error("macro model: expected check");
    const ElRf<Lut>* guard = g.own_tables(read_tables(is));
    g.add_check(ck, d, setup != 0, guard);
  }
  if (!is) throw std::runtime_error("macro model: truncated stream");
  return model;
}

}  // namespace tmm
