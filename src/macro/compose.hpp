#pragma once
// Timing-arc composition for serial/parallel merging (Section 5.2).
//
// Serial: two arcs u->m and m->w are replaced by one arc u->w whose
// delay/slew surfaces are the exact chained functions, *resampled* onto
// a small index grid chosen by index selection. The load at the merged
// pin m is statically folded in (which is why pins electrically tied to
// primary-output nets must never be merged — their load is a boundary
// constraint). If the second arc is load-independent (a wire, or an
// already-merged interior arc), the composite becomes a 1-D slew-only
// table — the compact interior form iTimerM-style models use.
//
// Parallel: two arcs with the same endpoints are replaced by their
// worst-case envelope (max for late, min for early).

#include "macro/index_selection.hpp"
#include "sta/aocv.hpp"
#include "sta/timing_graph.hpp"

namespace tmm {

/// Evaluation of one arc at a corner: arc delay and slew at its to-pin.
struct ArcEval {
  double delay = 0.0;
  double out_slew = 0.0;
};

/// Evaluate a primitive (wire or LUT-backed) arc.
ArcEval eval_arc(const GraphArc& arc, unsigned el, unsigned out_rf,
                 double in_slew, double load);

/// Result of composing/enveloping arcs: ready-to-own tables.
struct ComposedTables {
  ArcSense sense = ArcSense::kPositiveUnate;
  bool load_dependent = false;
  ElRf<Lut> delay;
  ElRf<Lut> out_slew;
};

/// Sense algebra for serial chains.
ArcSense compose_sense(ArcSense a, ArcSense b);

/// Compose serial arcs a (u->m) then b (m->w). `mid_load_ff` is the
/// static load at m consumed by arc a's table lookups. The exact chained
/// function is sampled on a densified candidate grid and re-indexed by
/// greedy selection. Worst-case over intermediate transitions when the
/// unateness does not pin them down.
ComposedTables compose_serial(const TimingGraph& g, const GraphArc& a,
                              const GraphArc& b, double mid_load_ff,
                              const IndexSelectionConfig& cfg);

/// Envelope of two parallel arcs (same from/to): max delay/slew in the
/// late corner, min in the early corner, sampled jointly. When AOCV is
/// active, unbaked parents are derated with `from_depth` while sampling
/// (the result is always marked baked by the caller).
ComposedTables compose_parallel(const TimingGraph& g, const GraphArc& a,
                                const GraphArc& b, double sink_load_ff,
                                const IndexSelectionConfig& cfg,
                                const AocvConfig& aocv = {},
                                std::uint32_t from_depth = 0);

/// Default slew candidate axis used when an arc has no LUT grid of its
/// own (pure wire chains).
std::vector<double> default_slew_axis();

}  // namespace tmm
