#include "macro/ilm.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm {

namespace {

// Metric handle resolved at namespace scope (the registry is a leaked
// function-local static, so this is static-init safe).
obs::Counter& g_extractions = obs::counter("ilm.extractions");

}  // namespace

std::vector<bool> ilm_keep_set(const TimingGraph& flat) {
  const std::size_t n = flat.num_nodes();
  std::vector<bool> fwd(n, false);

  // Forward cones from all PIs; never cross a flip-flop (data pins do
  // not expand, launch arcs are not traversed). The clock network is
  // swept up here via the clock PI and pruned below.
  {
    std::vector<NodeId> stack;
    for (NodeId p : flat.primary_inputs())
      if (p != kInvalidId) stack.push_back(p);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      if (fwd[u]) continue;
      fwd[u] = true;
      if (flat.node(u).is_ff_data) continue;
      for (ArcId a : flat.fanout(u)) {
        if (flat.arc(a).is_launch) continue;
        if (!fwd[flat.arc(a).to]) stack.push_back(flat.arc(a).to);
      }
    }
  }

  // Seeds for the support closure: PI-reachable data logic (without the
  // clock network, handled separately) plus the primary outputs.
  std::vector<bool> keep(n, false);
  std::vector<bool> ck_needed(n, false);
  std::vector<NodeId> stack;
  for (NodeId u = 0; u < n; ++u)
    if (fwd[u] && !flat.node(u).in_clock_network) {
      keep[u] = true;
      stack.push_back(u);
    }
  for (NodeId p : flat.primary_outputs())
    if (p != kInvalidId && !keep[p]) {
      keep[p] = true;
      stack.push_back(p);
    }

  // Support closure: every pin feeding a kept pin must itself be kept,
  // or boundary timing (worst slews/arrivals at kept pins) would change.
  // Crossing a launch arc keeps the flop's clock pin and stops — the
  // launching flop joins the interface, its D-side cone does not.
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (ArcId a : flat.fanin(u)) {
      const GraphArc& arc = flat.arc(a);
      if (arc.is_launch) {
        ck_needed[arc.from] = true;
        continue;
      }
      const NodeId v = arc.from;
      if (keep[v] || flat.node(v).in_clock_network) continue;
      keep[v] = true;
      stack.push_back(v);
    }
  }

  // Interface-input flops: D pin reached forward. Their clock pins must
  // be kept for the setup/hold checks.
  for (const auto& c : flat.checks()) {
    if (c.dead) continue;
    if (fwd[c.data]) {
      keep[c.data] = true;
      ck_needed[c.clock] = true;
    }
  }

  // Clock paths: reverse reachability from needed CK pins restricted to
  // the clock network.
  {
    std::vector<bool> visited(n, false);
    std::vector<NodeId> stack;
    for (NodeId u = 0; u < n; ++u)
      if (ck_needed[u]) stack.push_back(u);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      if (visited[u]) continue;
      visited[u] = true;
      keep[u] = true;
      for (ArcId a : flat.fanin(u)) {
        const NodeId v = flat.arc(a).from;
        if (flat.node(v).in_clock_network && !visited[v]) stack.push_back(v);
      }
    }
  }

  // Boundary ports are always kept (ordinals must survive even if a
  // port is combinationally disconnected).
  for (NodeId p : flat.primary_inputs())
    if (p != kInvalidId) keep[p] = true;
  for (NodeId p : flat.primary_outputs())
    if (p != kInvalidId) keep[p] = true;
  return keep;
}

IlmResult extract_ilm(const TimingGraph& flat) {
  obs::Span span("ilm.extract");
  const std::vector<bool> keep = ilm_keep_set(flat);
  const std::size_t n = flat.num_nodes();

  IlmResult out;
  out.flat_to_ilm.assign(n, kInvalidId);
  for (NodeId u = 0; u < n; ++u) {
    if (!keep[u] || flat.node(u).dead) continue;
    GraphNode node = flat.node(u);  // copies flags, name, static load
    const NodeId id = out.graph.add_node(std::move(node));
    out.flat_to_ilm[u] = id;
    out.ilm_to_flat.push_back(u);
  }

  // Boundary roles.
  for (std::uint32_t i = 0; i < flat.primary_inputs().size(); ++i) {
    const NodeId p = flat.primary_inputs()[i];
    if (p == kInvalidId || out.flat_to_ilm[p] == kInvalidId) continue;
    out.graph.set_primary_input(out.flat_to_ilm[p], i,
                                flat.node(p).is_clock_root);
  }
  for (std::uint32_t i = 0; i < flat.primary_outputs().size(); ++i) {
    const NodeId p = flat.primary_outputs()[i];
    if (p == kInvalidId || out.flat_to_ilm[p] == kInvalidId) continue;
    out.graph.set_primary_output(out.flat_to_ilm[p], i);
  }

  // Arcs with both endpoints kept. Library-backed tables are shared by
  // pointer; the library outlives every model derived from it.
  for (ArcId a = 0; a < flat.num_arcs(); ++a) {
    const GraphArc& arc = flat.arc(a);
    if (arc.dead) continue;
    const NodeId f = out.flat_to_ilm[arc.from];
    const NodeId t = out.flat_to_ilm[arc.to];
    if (f == kInvalidId || t == kInvalidId) continue;
    if (arc.kind == GraphArcKind::kWire) {
      out.graph.add_wire_arc(f, t, arc.wire_delay_ps);
    } else {
      out.graph.add_cell_arc(f, t, arc.sense, arc.delay, arc.out_slew,
                             arc.is_launch);
    }
  }
  for (const auto& c : flat.checks()) {
    if (c.dead) continue;
    const NodeId ck = out.flat_to_ilm[c.clock];
    const NodeId d = out.flat_to_ilm[c.data];
    if (ck == kInvalidId || d == kInvalidId) continue;
    out.graph.add_check(ck, d, c.is_setup, c.guard);
  }
  g_extractions.add();
  obs::gauge("ilm.flat_pins").set(static_cast<double>(flat.num_live_nodes()));
  obs::gauge("ilm.pins").set(static_cast<double>(out.graph.num_live_nodes()));
  span.set_arg("pins", static_cast<double>(out.graph.num_live_nodes()));
  return out;
}

}  // namespace tmm
