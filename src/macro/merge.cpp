#include "macro/merge.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm {

namespace {

// Metric handles resolved once at namespace scope instead of per call
// (the registry is a leaked function-local static, so this is safe at
// static-initialization time).
obs::Counter& g_pins_removed = obs::counter("merge.pins_removed");
obs::Counter& g_serial_arcs = obs::counter("merge.serial_arcs_created");
obs::Counter& g_parallel_arcs = obs::counter("merge.parallel_arcs_merged");
obs::Counter& g_refused = obs::counter("merge.refused");

/// Parallel-duplicate identity of a delay arc: same endpoints *and the
/// same unateness* (enveloping arcs of different senses would conflate
/// per-transition surfaces).
std::uint64_t parallel_key(const GraphArc& arc) {
  return (static_cast<std::uint64_t>(arc.from) << 33) |
         (static_cast<std::uint64_t>(arc.to) << 2) |
         static_cast<std::uint64_t>(arc.sense);
}

/// Static (degree-independent) legality of merging node n.
bool mergeable_static(const TimingGraph& g, NodeId n) {
  const auto& node = g.node(n);
  if (node.dead) return false;
  if (node.role != NodeRole::kInternal) return false;
  if (node.is_ff_clock || node.is_ff_data || node.is_clock_root) return false;
  if (!node.attached_po_loads.empty()) return false;
  return true;
}

struct LocalAdjacency {
  std::vector<std::vector<ArcId>> fanin;
  std::vector<std::vector<ArcId>> fanout;
  std::vector<bool> has_check;

  explicit LocalAdjacency(const TimingGraph& g)
      : fanin(g.num_nodes()), fanout(g.num_nodes()),
        has_check(g.num_nodes(), false) {
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const auto& arc = g.arc(a);
      if (arc.dead) continue;
      fanout[arc.from].push_back(a);
      fanin[arc.to].push_back(a);
    }
    for (const auto& c : g.checks()) {
      if (c.dead) continue;
      has_check[c.clock] = true;
      has_check[c.data] = true;
    }
  }

  void remove(std::vector<ArcId>& v, ArcId a) {
    for (auto& x : v)
      if (x == a) {
        x = v.back();
        v.pop_back();
        return;
      }
  }
};

/// One primitive segment of a merged chain. `load_ff` is the statically
/// folded load the segment's lookup uses; the *last* load-dependent
/// segment of a chain uses the caller-provided load instead. `depth` is
/// the from-pin's AOCV stage depth (for baking depth derates).
struct ChainSeg {
  GraphArc arc;    // value copy of the primitive arc (tables by pointer)
  double load_ff;  // static load at arc.to, captured at merge time
  std::uint32_t depth = 0;
};

using Chain = std::vector<ChainSeg>;

/// Sentinel for transitions a unate chain cannot produce.
constexpr double kInfChain = 1e290;

bool arc_load_dependent(const GraphArc& arc) {
  return arc.kind == GraphArcKind::kCell && arc.delay != nullptr &&
         (*arc.delay)(kLate, kRise).is_2d();
}

/// Evaluate a whole chain exactly the way the analysis engine evaluates
/// the unmerged pins, with the *input transition pinned to start_rf*:
/// per-transition (delay, slew) tracks propagate through each segment's
/// unateness, worst-casing only where a genuinely non-unate segment
/// merges transitions — which is precisely the engine's recursion on a
/// linear chain. Returns delay/slew at `out_rf` for input slew `s` and
/// final load `load`; unreached transitions return +/-inf.
ArcEval eval_chain(const Chain& chain, unsigned el, unsigned out_rf,
                   unsigned start_rf, double s, double load,
                   const AocvConfig& aocv = {}) {
  const bool late = el == kLate;
  const double worst_init = late ? -1e300 : 1e300;
  double delay[kNumRf] = {worst_init, worst_init};
  double slew[kNumRf] = {worst_init, worst_init};
  bool active[kNumRf] = {false, false};
  delay[start_rf] = 0.0;
  slew[start_rf] = s;
  active[start_rf] = true;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const ChainSeg& seg = chain[i];
    const bool last = i + 1 == chain.size();
    const double seg_load =
        last && arc_load_dependent(seg.arc) ? load : seg.load_ff;
    const double derate = seg.arc.kind == GraphArcKind::kCell &&
                                  !seg.arc.baked_derate
                              ? aocv.derate(el, seg.depth)
                              : 1.0;
    double nd[kNumRf] = {worst_init, worst_init};
    double nsw[kNumRf] = {worst_init, worst_init};
    bool nactive[kNumRf] = {false, false};
    for (unsigned irf = 0; irf < kNumRf; ++irf) {
      if (!active[irf]) continue;
      const unsigned mask = output_transitions(seg.arc.sense, irf);
      for (unsigned orf = 0; orf < kNumRf; ++orf) {
        if (!(mask & (1u << orf))) continue;
        const ArcEval e = eval_arc(seg.arc, el, orf, slew[irf], seg_load);
        const double cand_d = delay[irf] + e.delay * derate;
        if (late ? cand_d > nd[orf] : cand_d < nd[orf]) nd[orf] = cand_d;
        if (late ? e.out_slew > nsw[orf] : e.out_slew < nsw[orf])
          nsw[orf] = e.out_slew;
        nactive[orf] = true;
      }
    }
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      delay[rf] = nd[rf];
      slew[rf] = nsw[rf];
      active[rf] = nactive[rf];
    }
  }
  if (!active[out_rf]) {
    const double inf = late ? -kInfChain : kInfChain;
    return {inf, inf};
  }
  return {delay[out_rf], slew[out_rf]};
}

ArcSense chain_sense(const Chain& chain) {
  ArcSense s = ArcSense::kPositiveUnate;
  for (const auto& seg : chain) s = compose_sense(s, seg.arc.sense);
  return s;
}

/// Slew candidate axis for a chain: the first cell segment's grid.
std::vector<double> chain_slew_axis(const Chain& chain) {
  for (const auto& seg : chain) {
    if (seg.arc.kind == GraphArcKind::kCell && seg.arc.delay != nullptr) {
      auto idx = (*seg.arc.delay)(kLate, kRise).slew_index();
      if (!idx.empty()) return {idx.begin(), idx.end()};
    }
  }
  return default_slew_axis();
}

/// Build tables for one sense variant of a chain. The start transition
/// of each (el, orf) surface is pinned by the variant: positive-unate
/// reads input transition == orf, negative-unate the opposite — so at
/// analysis time the engine applies exactly the per-transition delays
/// the unmerged chain would have produced.
void build_chain_tables(const Chain& chain, ArcSense variant,
                        const IndexSelectionConfig& cfg,
                        const AocvConfig& aocv, ElRf<Lut>& delay,
                        ElRf<Lut>& out_slew) {
  const bool twod = arc_load_dependent(chain.back().arc);
  const std::vector<double> s_cands = densify_axis(chain_slew_axis(chain));
  std::vector<double> l_cands;
  if (twod) {
    auto idx = (*chain.back().arc.delay)(kLate, kRise).load_index();
    l_cands = densify_axis(std::vector<double>(idx.begin(), idx.end()));
  }
  const std::size_t ns = s_cands.size();
  const std::size_t nl = std::max<std::size_t>(1, l_cands.size());

  ElRf<std::vector<double>> dsamp;
  ElRf<std::vector<double>> ssamp;
  for (unsigned el = 0; el < kNumEl; ++el) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      const unsigned start_rf =
          variant == ArcSense::kPositiveUnate ? rf : 1u - rf;
      dsamp(el, rf).resize(ns * nl);
      ssamp(el, rf).resize(ns * nl);
      for (std::size_t i = 0; i < ns; ++i) {
        for (std::size_t j = 0; j < nl; ++j) {
          const double load = l_cands.empty() ? 0.0 : l_cands[j];
          const ArcEval e =
              eval_chain(chain, el, rf, start_rf, s_cands[i], load, aocv);
          dsamp(el, rf)[i * nl + j] = e.delay;
          ssamp(el, rf)[i * nl + j] = e.out_slew;
        }
      }
    }
  }

  // Joint index selection across corners, surfaces and load columns.
  std::vector<std::vector<double>> s_funcs;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      for (std::size_t j = 0; j < nl; ++j) {
        std::vector<double> fd(ns);
        std::vector<double> fs(ns);
        for (std::size_t i = 0; i < ns; ++i) {
          fd[i] = dsamp(el, rf)[i * nl + j];
          fs[i] = ssamp(el, rf)[i * nl + j];
        }
        s_funcs.push_back(std::move(fd));
        s_funcs.push_back(std::move(fs));
      }
  const auto sel_s = select_indices(s_cands, s_funcs, cfg);

  std::vector<std::size_t> sel_l;
  if (twod) {
    std::vector<std::vector<double>> l_funcs;
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        for (std::size_t i : sel_s) {
          std::vector<double> fd(nl);
          std::vector<double> fs(nl);
          for (std::size_t j = 0; j < nl; ++j) {
            fd[j] = dsamp(el, rf)[i * nl + j];
            fs[j] = ssamp(el, rf)[i * nl + j];
          }
          l_funcs.push_back(std::move(fd));
          l_funcs.push_back(std::move(fs));
        }
    sel_l = select_indices(l_cands, l_funcs, cfg);
  }

  std::vector<double> s_idx;
  for (std::size_t i : sel_s) s_idx.push_back(s_cands[i]);
  std::vector<double> l_idx;
  for (std::size_t j : sel_l) l_idx.push_back(l_cands[j]);

  for (unsigned el = 0; el < kNumEl; ++el) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      std::vector<double> dv;
      std::vector<double> sv;
      for (std::size_t i : sel_s) {
        if (twod) {
          for (std::size_t j : sel_l) {
            dv.push_back(dsamp(el, rf)[i * nl + j]);
            sv.push_back(ssamp(el, rf)[i * nl + j]);
          }
        } else {
          dv.push_back(dsamp(el, rf)[i * nl]);
          sv.push_back(ssamp(el, rf)[i * nl]);
        }
      }
      if (twod && s_idx.size() >= 2 && l_idx.size() >= 2) {
        delay(el, rf) = Lut::table2d(s_idx, l_idx, std::move(dv));
        out_slew(el, rf) = Lut::table2d(s_idx, l_idx, std::move(sv));
      } else if (s_idx.size() >= 2) {
        delay(el, rf) = Lut::table1d(s_idx, std::move(dv));
        out_slew(el, rf) = Lut::table1d(s_idx, std::move(sv));
      } else {
        delay(el, rf) = Lut::scalar(dv.empty() ? 0.0 : dv[0]);
        out_slew(el, rf) = Lut::scalar(sv.empty() ? 0.0 : sv[0]);
      }
    }
  }
}

/// Materialize a chain onto graph arc `id`. Unate chains need one arc;
/// non-unate chains split into a positive- and a negative-unate variant
/// so each input transition keeps its own delay surface. With `delta`,
/// the variant arc is appended through the cache-preserving delta API
/// (MergeDelta); the resulting graph is identical either way.
void materialize_chain(TimingGraph& g, ArcId id, const Chain& chain,
                       const IndexSelectionConfig& cfg,
                       const AocvConfig& aocv, bool delta = false) {
  const ArcSense sense = chain_sense(chain);
  const ArcSense first =
      sense == ArcSense::kNegativeUnate ? ArcSense::kNegativeUnate
                                        : ArcSense::kPositiveUnate;
  {
    ElRf<Lut> delay;
    ElRf<Lut> out_slew;
    build_chain_tables(chain, first, cfg, aocv, delay, out_slew);
    GraphArc& arc = g.arc(id);
    arc.delay = g.own_tables(std::move(delay));
    arc.out_slew = g.own_tables(std::move(out_slew));
    arc.kind = GraphArcKind::kCell;
    arc.sense = first;
    arc.baked_derate = true;
  }
  if (sense == ArcSense::kNonUnate) {
    ElRf<Lut> delay;
    ElRf<Lut> out_slew;
    build_chain_tables(chain, ArcSense::kNegativeUnate, cfg, aocv, delay,
                       out_slew);
    const GraphArc arc = g.arc(id);
    const ElRf<Lut>* dt = g.own_tables(std::move(delay));
    const ElRf<Lut>* st = g.own_tables(std::move(out_slew));
    const ArcId neg =
        delta ? g.delta_add_cell_arc(arc.from, arc.to,
                                     ArcSense::kNegativeUnate, dt, st, false)
              : g.add_cell_arc(arc.from, arc.to, ArcSense::kNegativeUnate, dt,
                               st, false);
    g.arc(neg).baked_derate = true;
  }
}

}  // namespace

namespace size_model {

/// Approximate serialized-storage cost of an arc, in doubles.
std::size_t arc_cost(const TimingGraph& g, ArcId a,
                     const std::unordered_map<ArcId, Chain>& chains,
                     std::size_t max_points);

/// Cost a chain will have once materialized.
std::size_t chain_cost(const Chain& chain, std::size_t max_points) {
  const std::size_t mp = std::max<std::size_t>(2, max_points);
  const bool twod = arc_load_dependent(chain.back().arc);
  const std::size_t per_surface = twod ? (mp + mp + mp * mp) : (mp + mp);
  const std::size_t cost = 8 * per_surface;  // delay+slew x el x rf
  // Non-unate chains materialize as two sense-split arcs.
  return chain_sense(chain) == ArcSense::kNonUnate ? 2 * cost : cost;
}

std::size_t arc_cost(const TimingGraph& g, ArcId a,
                     const std::unordered_map<ArcId, Chain>& chains,
                     std::size_t max_points) {
  auto it = chains.find(a);
  if (it != chains.end()) return chain_cost(it->second, max_points);
  const GraphArc& arc = g.arc(a);
  if (arc.kind == GraphArcKind::kWire) return 4;
  std::size_t cost = 0;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      cost += (*arc.delay)(el, rf).storage_doubles() +
              (*arc.out_slew)(el, rf).storage_doubles();
  return cost;
}

}  // namespace size_model

bool mergeable(const TimingGraph& g, NodeId n, const MergeConfig& cfg) {
  if (!mergeable_static(g, n)) return false;
  if (!g.checks_of(n).empty()) return false;
  const auto fi = g.fanin(n).size();
  const auto fo = g.fanout(n).size();
  if (fi == 0 || fo == 0) return true;  // dangling: droppable
  if (cfg.single_fanin_only && fi > 1) return false;
  if (fi * fo > cfg.max_fan_product) return false;
  for (ArcId a : g.fanin(n))
    if (g.arc(a).is_launch) return false;
  for (ArcId a : g.fanout(n))
    if (g.arc(a).is_launch) return false;
  return true;
}

MergeStats merge_insensitive_pins(TimingGraph& g,
                                  const std::vector<bool>& keep,
                                  const MergeConfig& cfg) {
  obs::Span span("merge.insensitive_pins");
  MergeStats stats;
  LocalAdjacency adj(g);
  // Chains backing arcs created during this merge; primitive arcs have
  // no entry. Keyed by arc id.
  std::unordered_map<ArcId, Chain> chains;

  auto chain_of = [&](ArcId a) -> Chain {
    auto it = chains.find(a);
    if (it != chains.end()) return it->second;
    const GraphArc& arc = g.arc(a);
    return Chain{{arc, g.node(arc.to).static_load_ff,
                  g.node(arc.from).aocv_depth}};
  };

  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 10) {
    changed = false;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (n < keep.size() && keep[n]) continue;
      if (!mergeable_static(g, n) || adj.has_check[n]) continue;
      const auto& fin = adj.fanin[n];
      const auto& fout = adj.fanout[n];
      const bool dangling = fin.empty() || fout.empty();
      if (!dangling) {
        if ((cfg.single_fanin_only && fin.size() > 1) ||
            fin.size() * fout.size() > cfg.max_fan_product) {
          ++stats.refused;
          continue;
        }
        bool launch_adjacent = false;
        for (ArcId a : fin)
          if (g.arc(a).is_launch) launch_adjacent = true;
        for (ArcId a : fout)
          if (g.arc(a).is_launch) launch_adjacent = true;
        if (launch_adjacent) {
          ++stats.refused;
          continue;
        }
        // Removing the pin must not grow the model: compare the storage
        // of the incident arcs against the spliced chain arcs (merging a
        // high-fanout pin would duplicate its fanin surface per sink).
        {
          std::size_t before = 24;  // node record itself
          for (ArcId a : fin)
            before += size_model::arc_cost(g, a, chains,
                                           cfg.index.max_points);
          for (ArcId a : fout)
            before +=
                size_model::arc_cost(g, a, chains, cfg.index.max_points);
          std::size_t after = 0;
          for (ArcId ia : fin) {
            for (ArcId oa : fout) {
              Chain probe = chain_of(ia);
              const Chain tail = chain_of(oa);
              probe.insert(probe.end(), tail.begin(), tail.end());
              after += size_model::chain_cost(probe, cfg.index.max_points);
            }
          }
          if (after > before) {
            ++stats.refused;
            continue;
          }
        }
        // Splice chain arcs for every (in, out) pair; tables are
        // materialized once, after all merging settles.
        const std::vector<ArcId> ins(fin);
        const std::vector<ArcId> outs(fout);
        for (ArcId ia : ins) {
          for (ArcId oa : outs) {
            const NodeId from = g.arc(ia).from;
            const NodeId to = g.arc(oa).to;
            Chain merged = chain_of(ia);
            const Chain tail = chain_of(oa);
            merged.insert(merged.end(), tail.begin(), tail.end());
            const ArcId na =
                g.add_cell_arc(from, to, chain_sense(merged), nullptr,
                               nullptr, /*is_launch=*/false);
            chains.emplace(na, std::move(merged));
            adj.fanin.resize(g.num_nodes());
            adj.fanout.resize(g.num_nodes());
            adj.fanout[from].push_back(na);
            adj.fanin[to].push_back(na);
            ++stats.serial_arcs_created;
          }
        }
      }
      const std::vector<ArcId> ins(adj.fanin[n]);
      const std::vector<ArcId> outs(adj.fanout[n]);
      for (ArcId a : ins) {
        adj.remove(adj.fanout[g.arc(a).from], a);
        g.kill_arc(a);
        chains.erase(a);
      }
      for (ArcId a : outs) {
        adj.remove(adj.fanin[g.arc(a).to], a);
        g.kill_arc(a);
        chains.erase(a);
      }
      adj.fanin[n].clear();
      adj.fanout[n].clear();
      g.node(n).dead = true;
      ++stats.pins_removed;
      changed = true;
    }
  }

  // Materialize every surviving chain arc in one end-to-end sampling.
  for (auto& [id, chain] : chains) {
    if (g.arc(id).dead) continue;
    materialize_chain(g, id, chain, cfg.index, cfg.aocv);
  }

  stats.parallel_arcs_merged = merge_parallel_arcs(g, cfg);
  g_pins_removed.add(stats.pins_removed);
  g_serial_arcs.add(stats.serial_arcs_created);
  g_parallel_arcs.add(stats.parallel_arcs_merged);
  g_refused.add(stats.refused);
  span.set_arg("pins_removed", static_cast<double>(stats.pins_removed));
  return stats;
}

std::size_t merge_parallel_arcs(TimingGraph& g, const MergeConfig& cfg) {
  std::unordered_map<std::uint64_t, ArcId> first_arc;
  std::size_t merged = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc arc = g.arc(a);
    if (arc.dead || arc.is_launch) continue;
    const std::uint64_t key = parallel_key(arc);
    auto [it, inserted] = first_arc.emplace(key, a);
    if (inserted || it->second == a) continue;
    // Fold this arc into the representative by worst-case envelope.
    const GraphArc rep = g.arc(it->second);
    ComposedTables ct = compose_parallel(
        g, rep, arc, g.node(arc.to).static_load_ff, cfg.index, cfg.aocv,
        g.node(arc.from).aocv_depth);
    const ElRf<Lut>* dt = g.own_tables(std::move(ct.delay));
    const ElRf<Lut>* st = g.own_tables(std::move(ct.out_slew));
    g.kill_arc(it->second);
    g.kill_arc(a);
    const ArcId na =
        g.add_cell_arc(arc.from, arc.to, ct.sense, dt, st, false);
    g.arc(na).baked_derate =
        cfg.aocv.enabled || rep.baked_derate || arc.baked_derate;
    it->second = na;
    ++merged;
  }
  return merged;
}

bool has_parallel_duplicate_arcs(const TimingGraph& g) {
  std::unordered_set<std::uint64_t> seen;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead || arc.is_launch) continue;
    if (!seen.insert(parallel_key(arc)).second) return true;
  }
  return false;
}

MergeDelta::MergeDelta(TimingGraph& g) : g_(&g) {
  // Materialize the adjacency + topological-order caches the delta_*
  // mutators patch in place.
  g.topo_order();
  graph_has_duplicates_ = has_parallel_duplicate_arcs(g);
  if (graph_has_duplicates_) return;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead || arc.is_launch) continue;
    pristine_keys_.emplace(parallel_key(arc), a);
  }
}

// The body below replays merge_insensitive_pins for a single-pin keep
// mask step by step — same refusal rules, same splice order (and thus
// the same arc-id allocation sequence as on a scratch copy), the same
// unordered_map key/insertion sequence for chain materialization (hence
// the same iteration order and id sequence for non-unate second-variant
// arcs), and a fold-for-fold replay of the merge_parallel_arcs scan.
// That replication is what makes the incremental TS path bit-identical
// to the copy + full-merge path; the equivalence is enforced by the
// randomized harness in tests/test_sta_incremental.cpp.
bool MergeDelta::apply(NodeId pin, const MergeConfig& cfg) {
  if (applied_)
    throw std::logic_error("MergeDelta::apply: previous delta not undone");
  if (!applicable()) return false;
  TimingGraph& g = *g_;
  touched_.clear();
  killed_.clear();
  if (!mergeable_static(g, pin) || !g.checks_of(pin).empty()) return false;
  const std::vector<ArcId> fin(g.fanin(pin));
  const std::vector<ArcId> fout(g.fanout(pin));
  const bool dangling = fin.empty() || fout.empty();
  std::unordered_map<ArcId, Chain> chains;
  auto chain_of = [&](ArcId a) -> Chain {
    auto it = chains.find(a);
    if (it != chains.end()) return it->second;
    const GraphArc& arc = g.arc(a);
    return Chain{{arc, g.node(arc.to).static_load_ff,
                  g.node(arc.from).aocv_depth}};
  };
  if (!dangling) {
    if ((cfg.single_fanin_only && fin.size() > 1) ||
        fin.size() * fout.size() > cfg.max_fan_product)
      return false;
    for (ArcId a : fin)
      if (g.arc(a).is_launch) return false;
    for (ArcId a : fout)
      if (g.arc(a).is_launch) return false;
    std::size_t before = 24;  // node record itself
    for (ArcId a : fin)
      before += size_model::arc_cost(g, a, chains, cfg.index.max_points);
    for (ArcId a : fout)
      before += size_model::arc_cost(g, a, chains, cfg.index.max_points);
    std::size_t after = 0;
    for (ArcId ia : fin) {
      for (ArcId oa : fout) {
        Chain probe = chain_of(ia);
        const Chain tail = chain_of(oa);
        probe.insert(probe.end(), tail.begin(), tail.end());
        after += size_model::chain_cost(probe, cfg.index.max_points);
      }
    }
    if (after > before) return false;
  }
  base_arcs_ = g.num_arcs();
  base_tables_ = g.num_owned_tables();
  pin_ = pin;
  if (!dangling) {
    for (ArcId ia : fin) {
      for (ArcId oa : fout) {
        const NodeId from = g.arc(ia).from;
        const NodeId to = g.arc(oa).to;
        Chain merged = chain_of(ia);
        const Chain tail = chain_of(oa);
        merged.insert(merged.end(), tail.begin(), tail.end());
        const ArcId na = g.delta_add_cell_arc(from, to, chain_sense(merged),
                                              nullptr, nullptr,
                                              /*is_launch=*/false);
        chains.emplace(na, std::move(merged));
      }
    }
  }
  for (ArcId a : fin) {
    g.delta_kill_arc(a);
    killed_.push_back(a);
  }
  for (ArcId a : fout) {
    g.delta_kill_arc(a);
    killed_.push_back(a);
  }
  g.delta_set_node_dead(pin, true);
  for (auto& [id, chain] : chains) {
    if (g.arc(id).dead) continue;
    materialize_chain(g, id, chain, cfg.index, cfg.aocv, /*delta=*/true);
  }
  // Parallel folding restricted to the appended id range: with no
  // duplicate keys among live pristine arcs, a full merge_parallel_arcs
  // scan would only register those, so replaying the scan over the new
  // arcs against the pristine key index reproduces it exactly.
  std::unordered_map<std::uint64_t, ArcId> local;
  auto rep_for = [&](std::uint64_t key) -> ArcId {
    auto it = local.find(key);
    if (it != local.end()) return it->second;
    auto pt = pristine_keys_.find(key);
    if (pt != pristine_keys_.end() && !g.arc(pt->second).dead)
      return pt->second;
    return kInvalidId;
  };
  for (ArcId a = static_cast<ArcId>(base_arcs_); a < g.num_arcs(); ++a) {
    const GraphArc arc = g.arc(a);
    if (arc.dead || arc.is_launch) continue;
    const std::uint64_t key = parallel_key(arc);
    const ArcId repid = rep_for(key);
    if (repid == kInvalidId || repid == a) {
      local.emplace(key, a);
      continue;
    }
    const GraphArc rep = g.arc(repid);
    ComposedTables ct = compose_parallel(
        g, rep, arc, g.node(arc.to).static_load_ff, cfg.index, cfg.aocv,
        g.node(arc.from).aocv_depth);
    const ElRf<Lut>* dt = g.own_tables(std::move(ct.delay));
    const ElRf<Lut>* st = g.own_tables(std::move(ct.out_slew));
    g.delta_kill_arc(repid);
    if (repid < base_arcs_) killed_.push_back(repid);
    g.delta_kill_arc(a);
    const ArcId na =
        g.delta_add_cell_arc(arc.from, arc.to, ct.sense, dt, st, false);
    g.arc(na).baked_derate =
        cfg.aocv.enabled || rep.baked_derate || arc.baked_derate;
    local[key] = na;
  }
  // Every node whose fanin or fanout arc set changed: the removed pin
  // and its former neighbors (fold reps/products share those endpoints).
  touched_.push_back(pin);
  for (ArcId a : fin) touched_.push_back(g.arc(a).from);
  for (ArcId a : fout) touched_.push_back(g.arc(a).to);
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
  applied_ = true;
  return true;
}

void MergeDelta::undo() {
  if (!applied_) return;
  TimingGraph& g = *g_;
  g.delta_truncate(base_arcs_, base_tables_);
  for (ArcId a : killed_) g.delta_restore_arc(a);
  g.delta_set_node_dead(pin_, false);
  applied_ = false;
  pin_ = kInvalidId;
  touched_.clear();
  killed_.clear();
}

}  // namespace tmm
