#include <cmath>

#include "macro/baselines.hpp"
#include "sta/propagation.hpp"
#include "util/instrument.hpp"

namespace tmm {

namespace {

/// Inactive boundary seeds: -inf/late, +inf/early — nothing propagates.
void deactivate_pi(PiConstraint& p) {
  for (unsigned rf = 0; rf < kNumRf; ++rf) {
    p.at(kLate, rf) = -kInf;
    p.at(kEarly, rf) = kInf;
    p.slew(kLate, rf) = -kInf;
    p.slew(kEarly, rf) = kInf;
  }
}

void activate_pi(PiConstraint& p, double slew_ps) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      p.at(el, rf) = 0.0;
      p.slew(el, rf) = slew_ps;
    }
}

/// Seed only one input transition — characterization must keep the
/// rise- and fall-launched surfaces apart (the analysis engine applies
/// per-transition arrivals/slews at usage).
void activate_pi_rf(PiConstraint& p, double slew_ps, unsigned rf) {
  for (unsigned el = 0; el < kNumEl; ++el) {
    p.at(el, rf) = 0.0;
    p.slew(el, rf) = slew_ps;
  }
}

/// Contribute slews (context) without arrivals: slew propagation is
/// independent of arrival propagation, so this leaves single-source
/// arrival additivity intact while internal slew merging sees a
/// realistic environment.
void seed_slew_only(PiConstraint& p, double slew_ps) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf) p.slew(el, rf) = slew_ps;
}

/// Characterization sample cube for one source node: value per
/// (el, rf, slew sample, load sample); NaN marks unreachable.
struct SampleCube {
  std::size_t ns = 0, nl = 0;
  ElRf<std::vector<double>> v;
  void init(std::size_t s, std::size_t l) {
    ns = s;
    nl = l;
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        v(el, rf).assign(ns * nl, std::nan(""));
  }
  bool complete() const {
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        for (double x : v(el, rf))
          if (std::isnan(x)) return false;
    return true;
  }
};

ElRf<Lut> cube_to_tables(const SampleCube& cube,
                         const std::vector<double>& slew_axis,
                         const std::vector<double>& load_axis) {
  ElRf<Lut> t;
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      t(el, rf) = Lut::table2d(slew_axis, load_axis, cube.v(el, rf));
  return t;
}

}  // namespace

MacroModel generate_etm_model(const TimingGraph& flat, const EtmConfig& cfg,
                              GenerationStats* stats) {
  Stopwatch sw;
  IlmResult ilmres = extract_ilm(flat);
  const TimingGraph& ilm = ilmres.graph;
  Sta sta(ilm, {.cppr = false});

  const auto& pis = ilm.primary_inputs();
  const auto& pos = ilm.primary_outputs();
  const std::size_t npi = pis.size();
  const std::size_t npo = pos.size();
  const std::size_t ns = cfg.slew_samples.size();
  const std::size_t nl = cfg.load_samples.size();

  std::uint32_t clk_ordinal = kInvalidId;
  for (std::uint32_t i = 0; i < npi; ++i)
    if (pis[i] != kInvalidId && ilm.node(pis[i]).is_clock_root)
      clk_ordinal = i;

  auto base_constraints = [&]() {
    BoundaryConstraints bc;
    bc.clock_period_ps = cfg.nominal_period_ps;
    bc.pi.resize(npi);
    for (auto& p : bc.pi) deactivate_pi(p);
    bc.po.resize(npo);
    for (auto& p : bc.po) {
      p.load_ff = cfg.nominal_load_ff;
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        p.rat(kLate, rf) = kInf;    // no PO-side constraint during
        p.rat(kEarly, rf) = -kInf;  // characterization
      }
    }
    return bc;
  };

  // --- Class A/B: delay & slew cubes, one source port at a time, one
  // input transition at a time. cube[irf][src][dst] records the arrival
  // and slew surfaces seen at each PO when only `src` launches with
  // transition `irf` — these become the (sense-split) port-to-port arcs.
  std::vector<std::vector<SampleCube>> d_cube[kNumRf], s_cube[kNumRf];
  for (unsigned irf = 0; irf < kNumRf; ++irf) {
    d_cube[irf].resize(npi);
    s_cube[irf].resize(npi);
    for (std::uint32_t p = 0; p < npi; ++p) {
      d_cube[irf][p].resize(npo);
      s_cube[irf][p].resize(npo);
      for (auto& c : d_cube[irf][p]) c.init(ns, nl);
      for (auto& c : s_cube[irf][p]) c.init(ns, nl);
    }
  }
  for (std::uint32_t p = 0; p < npi; ++p) {
    if (pis[p] == kInvalidId) continue;
    for (unsigned irf = 0; irf < kNumRf; ++irf) {
      for (std::size_t si = 0; si < ns; ++si) {
        for (std::size_t li = 0; li < nl; ++li) {
          BoundaryConstraints bc = base_constraints();
          for (std::uint32_t o = 0; o < npi; ++o)
            if (o != p) seed_slew_only(bc.pi[o], cfg.nominal_slew_ps);
          activate_pi_rf(bc.pi[p], cfg.slew_samples[si], irf);
          for (auto& po : bc.po) po.load_ff = cfg.load_samples[li];
          sta.run(bc);
          for (std::uint32_t q = 0; q < npo; ++q) {
            if (pos[q] == kInvalidId) continue;
            const auto& t = sta.timing(pos[q]);
            for (unsigned el = 0; el < kNumEl; ++el)
              for (unsigned rf = 0; rf < kNumRf; ++rf) {
                if (std::isfinite(t.at(el, rf)))
                  d_cube[irf][p][q].v(el, rf)[si * nl + li] = t.at(el, rf);
                if (std::isfinite(t.slew(el, rf)))
                  s_cube[irf][p][q].v(el, rf)[si * nl + li] = t.slew(el, rf);
              }
          }
        }
      }
    }
  }

  // --- Class C: guard characterization, data-slew sweep ---------------
  // All data ports active with the same slew; the clock at nominal.
  // rel_setup[p](rf, si) = rat_late(p) - T0;  rel_hold = rat_early(p).
  std::vector<ElRf<std::vector<double>>> rel_setup(npi), rel_hold(npi);
  for (auto& r : rel_setup)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) r(el, rf).assign(ns, std::nan(""));
  for (auto& r : rel_hold)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) r(el, rf).assign(ns, std::nan(""));

  auto record_rel_for = [&](const BoundaryConstraints& bc, std::size_t si,
                            std::uint32_t only_p,
                            std::vector<ElRf<std::vector<double>>>& setup_dst,
                            std::vector<ElRf<std::vector<double>>>& hold_dst) {
    sta.run(bc);
    for (std::uint32_t p = 0; p < npi; ++p) {
      if (pis[p] == kInvalidId || p == clk_ordinal) continue;
      if (only_p != kInvalidId && p != only_p) continue;
      const auto& t = sta.timing(pis[p]);
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        if (std::isfinite(t.rat(kLate, rf)))
          setup_dst[p](kLate, rf)[si] = t.rat(kLate, rf) - bc.clock_period_ps;
        if (std::isfinite(t.rat(kEarly, rf)))
          hold_dst[p](kEarly, rf)[si] = t.rat(kEarly, rf);
      }
    }
  };

  auto all_nominal = [&]() {
    BoundaryConstraints bc = base_constraints();
    for (std::uint32_t p = 0; p < npi; ++p)
      activate_pi(bc.pi[p], cfg.nominal_slew_ps);
    return bc;
  };

  // Per-port data-slew sweep with every other port pinned at the
  // nominal slew (the context an ETM bakes in).
  for (std::uint32_t p = 0; p < npi; ++p) {
    if (pis[p] == kInvalidId || p == clk_ordinal) continue;
    for (std::size_t si = 0; si < ns; ++si) {
      BoundaryConstraints bc = all_nominal();
      activate_pi(bc.pi[p], cfg.slew_samples[si]);
      record_rel_for(bc, si, p, rel_setup, rel_hold);
    }
  }

  // Exact nominal reference for the separable combination below.
  std::vector<ElRf<std::vector<double>>> rel_nom(npi);
  for (auto& r : rel_nom)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) r(el, rf).assign(1, std::nan(""));
  record_rel_for(all_nominal(), 0, kInvalidId, rel_nom, rel_nom);

  // --- Class D: guard characterization, clock-slew sweep --------------
  std::vector<ElRf<std::vector<double>>> rel_setup_ck(npi), rel_hold_ck(npi);
  for (auto& r : rel_setup_ck)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) r(el, rf).assign(ns, std::nan(""));
  for (auto& r : rel_hold_ck)
    for (unsigned el = 0; el < kNumEl; ++el)
      for (unsigned rf = 0; rf < kNumRf; ++rf) r(el, rf).assign(ns, std::nan(""));
  for (std::size_t si = 0; si < ns; ++si) {
    BoundaryConstraints bc = base_constraints();
    for (std::uint32_t p = 0; p < npi; ++p)
      activate_pi(bc.pi[p],
                  p == clk_ordinal ? cfg.slew_samples[si] : cfg.nominal_slew_ps);
    record_rel_for(bc, si, kInvalidId, rel_setup_ck, rel_hold_ck);
  }


  // --- Assemble the ETM graph -----------------------------------------
  MacroModel model;
  model.design_name = "etm";
  TimingGraph& g = model.graph;
  std::vector<NodeId> pi_nodes(npi, kInvalidId);
  std::vector<NodeId> po_nodes(npo, kInvalidId);
  for (std::uint32_t p = 0; p < npi; ++p) {
    if (pis[p] == kInvalidId) continue;
    GraphNode node;
    node.name = ilm.node(pis[p]).name;
    const bool is_clk = ilm.node(pis[p]).is_clock_root;
    node.in_clock_network = is_clk;
    pi_nodes[p] = g.add_node(std::move(node));
    g.set_primary_input(pi_nodes[p], p, is_clk);
  }
  for (std::uint32_t q = 0; q < npo; ++q) {
    if (pos[q] == kInvalidId) continue;
    GraphNode node;
    node.name = ilm.node(pos[q]).name;
    node.attached_po_loads.push_back(q);
    po_nodes[q] = g.add_node(std::move(node));
    g.set_primary_output(po_nodes[q], q);
  }

  // Sense-split port-to-port arcs: the surfaces measured from a rising
  // launch feed a positive-unate arc (input transition == output
  // transition reads the irf == orf cube) and the fall-launch surfaces a
  // negative-unate one, so per-transition arrivals stay separated.
  for (std::uint32_t p = 0; p < npi; ++p) {
    if (pi_nodes[p] == kInvalidId) continue;
    for (std::uint32_t q = 0; q < npo; ++q) {
      if (po_nodes[q] == kInvalidId) continue;
      for (ArcSense sense :
           {ArcSense::kPositiveUnate, ArcSense::kNegativeUnate}) {
        SampleCube dc, sc;
        dc.init(ns, nl);
        sc.init(ns, nl);
        for (unsigned el = 0; el < kNumEl; ++el)
          for (unsigned orf = 0; orf < kNumRf; ++orf) {
            const unsigned irf =
                sense == ArcSense::kPositiveUnate ? orf : 1u - orf;
            dc.v(el, orf) = d_cube[irf][p][q].v(el, orf);
            sc.v(el, orf) = s_cube[irf][p][q].v(el, orf);
          }
        if (!dc.complete() || !sc.complete()) continue;
        const ElRf<Lut>* dt = g.own_tables(
            cube_to_tables(dc, cfg.slew_samples, cfg.load_samples));
        const ElRf<Lut>* st = g.own_tables(
            cube_to_tables(sc, cfg.slew_samples, cfg.load_samples));
        const ArcId id =
            g.add_cell_arc(pi_nodes[p], po_nodes[q], sense, dt, st,
                           /*is_launch=*/p == clk_ordinal);
        g.arc(id).baked_derate = true;  // ETM bakes one fixed context
      }
    }
  }

  // Virtual check endpoints per constrained data input.
  const NodeId clk_node =
      clk_ordinal == kInvalidId ? kInvalidId : pi_nodes[clk_ordinal];
  for (std::uint32_t p = 0; p < npi; ++p) {
    if (pi_nodes[p] == kInvalidId || p == clk_ordinal || clk_node == kInvalidId)
      continue;
    auto has_any = [&](const ElRf<std::vector<double>>& r, unsigned el) {
      for (unsigned rf = 0; rf < kNumRf; ++rf)
        for (double x : r(el, rf))
          if (!std::isnan(x)) return true;
      return false;
    };
    const bool setup_ok = has_any(rel_setup[p], kLate) &&
                          has_any(rel_setup_ck[p], kLate);
    const bool hold_ok =
        has_any(rel_hold[p], kEarly) && has_any(rel_hold_ck[p], kEarly);
    if (!setup_ok && !hold_ok) continue;

    GraphNode ep;
    ep.name = ilm.node(pis[p]).name + "__endpoint";
    ep.is_ff_data = true;
    const NodeId ep_node = g.add_node(std::move(ep));
    g.add_wire_arc(pi_nodes[p], ep_node, 0.0);

    // Separable guard g(cs, ds) = base(ds) + shift(cs) - nominal.
    auto build_guard = [&](const ElRf<std::vector<double>>& ds_rel,
                           const ElRf<std::vector<double>>& cs_rel,
                           unsigned el, double sign) {
      ElRf<Lut> guard;
      for (unsigned gel = 0; gel < kNumEl; ++gel) {
        for (unsigned rf = 0; rf < kNumRf; ++rf) {
          std::vector<double> vals(ns * ns, 0.0);
          const auto& base = ds_rel(el, rf);
          const auto& shift = cs_rel(el, rf);
          const double nom = rel_nom[p](el, rf).empty() ||
                                     std::isnan(rel_nom[p](el, rf)[0])
                                 ? 0.0
                                 : rel_nom[p](el, rf)[0];
          for (std::size_t j = 0; j < ns; ++j) {    // clock-slew row
            for (std::size_t i = 0; i < ns; ++i) {  // data-slew col
              const double b = std::isnan(base[i]) ? nom : base[i];
              const double s = std::isnan(shift[j]) ? nom : shift[j];
              vals[j * ns + i] = sign * (b + s - nom);
            }
          }
          guard(gel, rf) =
              Lut::table2d(cfg.slew_samples, cfg.slew_samples, std::move(vals));
        }
      }
      return guard;
    };
    if (setup_ok) {
      const ElRf<Lut>* guard = g.own_tables(
          build_guard(rel_setup[p], rel_setup_ck[p], kLate, -1.0));
      g.add_check(clk_node, ep_node, /*is_setup=*/true, guard);
    }
    if (hold_ok) {
      const ElRf<Lut>* guard = g.own_tables(
          build_guard(rel_hold[p], rel_hold_ck[p], kEarly, +1.0));
      g.add_check(clk_node, ep_node, /*is_setup=*/false, guard);
    }
  }

  if (stats) {
    stats->ilm_pins = ilm.num_live_nodes();
    stats->model_pins = g.num_live_nodes();
    stats->pins_kept = g.num_live_nodes();
    stats->generation_seconds = sw.seconds();
    stats->generation_peak_rss = peak_rss_bytes();
  }
  return model;
}

}  // namespace tmm
