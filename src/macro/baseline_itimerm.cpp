#include <cmath>

#include "macro/baselines.hpp"

#include "sta/propagation.hpp"
#include "util/instrument.hpp"

namespace tmm {

std::vector<bool> itimerm_keep_set(const TimingGraph& ilm,
                                   const ITimerMConfig& cfg) {
  const auto slew_lo =
      propagate_slew_only(ilm, cfg.slew_min_ps, cfg.po_load_ff);
  const auto slew_hi =
      propagate_slew_only(ilm, cfg.slew_max_ps, cfg.po_load_ff);
  std::vector<bool> keep(ilm.num_nodes(), false);
  for (NodeId n = 0; n < ilm.num_nodes(); ++n) {
    if (ilm.node(n).dead) continue;
    const double lo = slew_lo[n];
    const double hi = slew_hi[n];
    if (!std::isfinite(lo) || !std::isfinite(hi)) continue;
    if (hi - lo > cfg.tolerance_ps) keep[n] = true;
  }
  if (cfg.protect_cppr) {
    for (NodeId n = 0; n < ilm.num_nodes(); ++n) {
      const auto& node = ilm.node(n);
      if (!node.dead && node.in_clock_network && ilm.fanout(n).size() > 1)
        keep[n] = true;
    }
  }
  return keep;
}

MacroModel generate_itimerm_model(const TimingGraph& flat,
                                  const ITimerMConfig& cfg,
                                  GenerationStats* stats) {
  Stopwatch sw;
  IlmResult ilm = extract_ilm(flat);
  const std::size_t ilm_pins = ilm.graph.num_live_nodes();
  const auto keep = itimerm_keep_set(ilm.graph, cfg);
  std::size_t kept = 0;
  for (bool k : keep)
    if (k) ++kept;
  merge_insensitive_pins(ilm.graph, keep, cfg.merge);

  MacroModel model;
  model.design_name = "itimerm";
  model.graph = std::move(ilm.graph);
  if (stats) {
    stats->ilm_pins = ilm_pins;
    stats->model_pins = model.graph.num_live_nodes();
    stats->pins_kept = kept;
    stats->generation_seconds = sw.seconds();
    stats->generation_peak_rss = peak_rss_bytes();
  }
  return model;
}

}  // namespace tmm
