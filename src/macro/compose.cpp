#include "macro/compose.hpp"

#include <algorithm>

namespace tmm {

namespace {

bool arc_load_dependent(const GraphArc& arc) {
  return arc.kind == GraphArcKind::kCell && arc.delay != nullptr &&
         (*arc.delay)(kLate, kRise).is_2d();
}

/// Slew candidate axis for a chain starting with `a`; prefer the first
/// arc's own grid, fall back to the second, then to the default.
std::vector<double> slew_axis_for(const GraphArc& a, const GraphArc& b) {
  auto grid_of = [](const GraphArc& arc) -> std::vector<double> {
    if (arc.kind != GraphArcKind::kCell || arc.delay == nullptr) return {};
    auto idx = (*arc.delay)(kLate, kRise).slew_index();
    return {idx.begin(), idx.end()};
  };
  auto g = grid_of(a);
  if (g.empty()) g = grid_of(b);
  if (g.empty()) g = default_slew_axis();
  return g;
}

std::vector<double> load_axis_for(const GraphArc& b) {
  if (!arc_load_dependent(b)) return {};
  auto idx = (*b.delay)(kLate, kRise).load_index();
  return {idx.begin(), idx.end()};
}

/// Envelope update: worst-case per component in the given corner.
void envelope(unsigned el, ArcEval cand, ArcEval& acc, bool& first) {
  if (first) {
    acc = cand;
    first = false;
    return;
  }
  if (el == kLate) {
    acc.delay = std::max(acc.delay, cand.delay);
    acc.out_slew = std::max(acc.out_slew, cand.out_slew);
  } else {
    acc.delay = std::min(acc.delay, cand.delay);
    acc.out_slew = std::min(acc.out_slew, cand.out_slew);
  }
}

/// Dense samples of a composite function over (slew x load) candidates
/// for all four corners; nl == 1 when load-independent.
struct DenseSamples {
  std::vector<double> slew_axis;
  std::vector<double> load_axis;  // empty => load-independent
  ElRf<std::vector<double>> delay;
  ElRf<std::vector<double>> slew;
};

template <typename EvalFn>
DenseSamples sample(std::vector<double> slew_axis,
                    std::vector<double> load_axis, EvalFn&& exact) {
  DenseSamples out;
  out.slew_axis = std::move(slew_axis);
  out.load_axis = std::move(load_axis);
  const std::size_t ns = out.slew_axis.size();
  const std::size_t nl = std::max<std::size_t>(1, out.load_axis.size());
  for (unsigned el = 0; el < kNumEl; ++el) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      auto& dv = out.delay(el, rf);
      auto& sv = out.slew(el, rf);
      dv.resize(ns * nl);
      sv.resize(ns * nl);
      for (std::size_t i = 0; i < ns; ++i) {
        for (std::size_t j = 0; j < nl; ++j) {
          const double load = out.load_axis.empty() ? 0.0 : out.load_axis[j];
          const ArcEval e = exact(el, rf, out.slew_axis[i], load);
          dv[i * nl + j] = e.delay;
          sv[i * nl + j] = e.out_slew;
        }
      }
    }
  }
  return out;
}

/// Select joint indices and materialize the final tables.
ComposedTables reindex(const DenseSamples& dense, ArcSense sense,
                       const IndexSelectionConfig& cfg) {
  ComposedTables out;
  out.sense = sense;
  out.load_dependent = !dense.load_axis.empty();
  const std::size_t ns = dense.slew_axis.size();
  const std::size_t nl = std::max<std::size_t>(1, dense.load_axis.size());

  // Joint slew-index selection over every corner, both surfaces, every
  // load column.
  std::vector<std::vector<double>> slew_funcs;
  for (unsigned el = 0; el < kNumEl; ++el) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      for (std::size_t j = 0; j < nl; ++j) {
        std::vector<double> fd(ns);
        std::vector<double> fs(ns);
        for (std::size_t i = 0; i < ns; ++i) {
          fd[i] = dense.delay(el, rf)[i * nl + j];
          fs[i] = dense.slew(el, rf)[i * nl + j];
        }
        slew_funcs.push_back(std::move(fd));
        slew_funcs.push_back(std::move(fs));
      }
    }
  }
  const auto sel_s = select_indices(dense.slew_axis, slew_funcs, cfg);

  std::vector<std::size_t> sel_l;
  if (out.load_dependent) {
    std::vector<std::vector<double>> load_funcs;
    for (unsigned el = 0; el < kNumEl; ++el) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        for (std::size_t i : sel_s) {
          std::vector<double> fd(nl);
          std::vector<double> fs(nl);
          for (std::size_t j = 0; j < nl; ++j) {
            fd[j] = dense.delay(el, rf)[i * nl + j];
            fs[j] = dense.slew(el, rf)[i * nl + j];
          }
          load_funcs.push_back(std::move(fd));
          load_funcs.push_back(std::move(fs));
        }
      }
    }
    sel_l = select_indices(dense.load_axis, load_funcs, cfg);
  }

  std::vector<double> s_idx;
  for (std::size_t i : sel_s) s_idx.push_back(dense.slew_axis[i]);
  std::vector<double> l_idx;
  for (std::size_t j : sel_l) l_idx.push_back(dense.load_axis[j]);

  for (unsigned el = 0; el < kNumEl; ++el) {
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      std::vector<double> dv;
      std::vector<double> sv;
      for (std::size_t i : sel_s) {
        if (out.load_dependent) {
          for (std::size_t j : sel_l) {
            dv.push_back(dense.delay(el, rf)[i * nl + j]);
            sv.push_back(dense.slew(el, rf)[i * nl + j]);
          }
        } else {
          dv.push_back(dense.delay(el, rf)[i * nl]);
          sv.push_back(dense.slew(el, rf)[i * nl]);
        }
      }
      if (out.load_dependent && s_idx.size() >= 2 && l_idx.size() >= 2) {
        out.delay(el, rf) = Lut::table2d(s_idx, l_idx, std::move(dv));
        out.out_slew(el, rf) = Lut::table2d(s_idx, l_idx, std::move(sv));
      } else if (s_idx.size() >= 2) {
        out.delay(el, rf) = Lut::table1d(s_idx, std::move(dv));
        out.out_slew(el, rf) = Lut::table1d(s_idx, std::move(sv));
      } else {
        out.delay(el, rf) = Lut::scalar(dv.empty() ? 0.0 : dv[0]);
        out.out_slew(el, rf) = Lut::scalar(sv.empty() ? 0.0 : sv[0]);
      }
    }
  }
  return out;
}

}  // namespace

ArcEval eval_arc(const GraphArc& arc, unsigned el, unsigned out_rf,
                 double in_slew, double load) {
  if (arc.kind == GraphArcKind::kWire)
    return {arc.wire_delay_ps, wire_slew(in_slew, arc.wire_delay_ps)};
  return {(*arc.delay)(el, out_rf).lookup(in_slew, load),
          (*arc.out_slew)(el, out_rf).lookup(in_slew, load)};
}

ArcSense compose_sense(ArcSense a, ArcSense b) {
  if (a == ArcSense::kNonUnate || b == ArcSense::kNonUnate)
    return ArcSense::kNonUnate;
  return a == b ? ArcSense::kPositiveUnate : ArcSense::kNegativeUnate;
}

std::vector<double> default_slew_axis() {
  return {1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 120.0};
}

ComposedTables compose_serial(const TimingGraph& /*g*/, const GraphArc& a,
                              const GraphArc& b, double mid_load_ff,
                              const IndexSelectionConfig& cfg) {
  const ArcSense sense = compose_sense(a.sense, b.sense);
  auto exact = [&](unsigned el, unsigned orf, double s,
                   double load) -> ArcEval {
    ArcEval best{};
    bool first = true;
    const unsigned mrf_mask = input_transitions(b.sense, orf);
    for (unsigned mrf = 0; mrf < kNumRf; ++mrf) {
      if (!(mrf_mask & (1u << mrf))) continue;
      const ArcEval ea = eval_arc(a, el, mrf, s, mid_load_ff);
      const ArcEval eb = eval_arc(b, el, orf, ea.out_slew, load);
      envelope(el, {ea.delay + eb.delay, eb.out_slew}, best, first);
    }
    return best;
  };
  const auto dense = sample(densify_axis(slew_axis_for(a, b)),
                            densify_axis(load_axis_for(b)), exact);
  return reindex(dense, sense, cfg);
}

ComposedTables compose_parallel(const TimingGraph& /*g*/, const GraphArc& a,
                                const GraphArc& b, double /*sink_load_ff*/,
                                const IndexSelectionConfig& cfg,
                                const AocvConfig& aocv,
                                std::uint32_t from_depth) {
  const ArcSense sense =
      a.sense == b.sense ? a.sense : ArcSense::kNonUnate;
  const bool twod = arc_load_dependent(a) || arc_load_dependent(b);
  auto derated = [&](const GraphArc& arc, unsigned el, unsigned orf, double s,
                     double load) {
    ArcEval e = eval_arc(arc, el, orf, s, load);
    if (arc.kind == GraphArcKind::kCell && !arc.baked_derate)
      e.delay *= aocv.derate(el, from_depth);
    return e;
  };
  auto exact = [&](unsigned el, unsigned orf, double s,
                   double load) -> ArcEval {
    ArcEval best{};
    bool first = true;
    envelope(el, derated(a, el, orf, s, load), best, first);
    envelope(el, derated(b, el, orf, s, load), best, first);
    return best;
  };
  std::vector<double> load_axis;
  if (twod) {
    load_axis = load_axis_for(arc_load_dependent(a) ? a : b);
    if (load_axis.empty()) load_axis = {0.5, 2.0, 8.0, 32.0};
  }
  const auto dense = sample(densify_axis(slew_axis_for(a, b)),
                            densify_axis(load_axis), exact);
  return reindex(dense, sense, cfg);
}

}  // namespace tmm
