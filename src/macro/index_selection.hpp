#pragma once
// Lookup-table index selection (Section 5.2): given a densely sampled
// exact function, pick the small set of index points whose piecewise-
// linear interpolation minimizes the timing error — the method of
// iTimerM [5] that our framework reuses after serial/parallel merging.
//
// Selection is greedy: start from the interval endpoints, repeatedly add
// the candidate point with the largest current interpolation error until
// the budget is exhausted or the worst error drops below tolerance.
// Several functions sharing one axis (delay + slew, all early/late x
// rise/fall corners, every load column) are selected jointly so a merged
// arc needs only one index vector.

#include <cstddef>
#include <span>
#include <vector>

namespace tmm {

struct IndexSelectionConfig {
  /// Maximum number of selected index points per axis.
  std::size_t max_points = 7;
  /// Stop early once the worst interpolation error (ps) is below this.
  double tolerance_ps = 1e-4;
  /// When false, skip the greedy error-driven search and place the
  /// index points evenly over the candidate axis (how form-based
  /// reduction tools without iTimerM's selection step behave).
  bool error_driven = true;
};

/// Select positions (indices into `xs`) such that linearly interpolating
/// each function in `funcs` (each a vector of values parallel to `xs`)
/// through the selected points minimizes the maximum error at the
/// remaining candidates. Always contains the first and last position.
/// `xs` must be ascending with size >= 2.
std::vector<std::size_t> select_indices(
    std::span<const double> xs, std::span<const std::vector<double>> funcs,
    const IndexSelectionConfig& cfg);

/// Worst-case interpolation error of `func` over candidates `xs` when
/// only the points at `selected` (ascending positions) are stored.
double interpolation_error(std::span<const double> xs,
                           std::span<const double> func,
                           std::span<const std::size_t> selected);

/// Build a candidate axis: the union of `base` and the midpoints of its
/// consecutive segments (ascending, deduplicated).
std::vector<double> densify_axis(std::span<const double> base);

}  // namespace tmm
