#pragma once
// Interface logic model (ILM) extraction — the starting point of the
// macro-model generation stage (Fig. 9, "capture interface logic").
//
// Kept logic: (a) the forward cones from all primary inputs up to the
// first rank of flip-flop data pins (with those flops' setup/hold
// checks), (b) the backward cones from all primary outputs down to the
// launching flip-flops (with their clock-to-Q arcs), and (c) the clock
// paths feeding every kept flip-flop clock pin. Register-to-register
// logic between the interface ranks is eliminated — by the boundary-RAT
// convention (see DESIGN.md) it cannot affect boundary timing, so the
// ILM is timing-exact at the boundary.

#include <vector>

#include "sta/timing_graph.hpp"

namespace tmm {

struct IlmResult {
  TimingGraph graph;
  /// flat node id -> ILM node id (kInvalidId if dropped).
  std::vector<NodeId> flat_to_ilm;
  /// ILM node id -> flat node id.
  std::vector<NodeId> ilm_to_flat;
};

IlmResult extract_ilm(const TimingGraph& flat);

/// The keep-set computation only (exposed for tests and for feature
/// extraction): true for every flat node the ILM retains.
std::vector<bool> ilm_keep_set(const TimingGraph& flat);

}  // namespace tmm
