#pragma once
// Reimplementations of the comparison points of Tables 3 and 5, from
// their published descriptions (the original binaries are closed):
//
//  * iTimerM [5]  — ILM-based; propagates min/max slews through the
//    graph and preserves pins whose slew range exceeds a user-defined
//    tolerance; merged arcs use the interpolation-error-minimizing
//    index selection. The most accurate prior work.
//  * LibAbs-like [3,4] — ILM-based tree reduction; preserves the joints
//    (roots/leaves of maximal in-/out-trees, i.e. pins with fanin or
//    fanout > 1) and merges pure chains with fixed, coarse LUT grids
//    (no error-driven index selection) — larger models, larger errors.
//  * ATM-like [6] — ETM-based; characterizes context-independent
//    port-to-port timing arcs plus per-input virtual check endpoints by
//    repeated single-active-port analyses of the ILM. Tiny models, much
//    larger errors and generation times, and no CPPR support.

#include "macro/ilm.hpp"
#include "macro/macro_model.hpp"
#include "macro/merge.hpp"
#include "sta/constraints.hpp"

namespace tmm {

// ---------------------------------------------------------------- iTimerM
struct ITimerMConfig {
  double slew_min_ps = 2.0;   ///< min boundary slew propagated
  double slew_max_ps = 60.0;  ///< max boundary slew propagated
  double tolerance_ps = 0.4;  ///< slew-range threshold for keeping a pin
  double po_load_ff = 4.0;
  /// Keep multi-fanout clock-network pins (iTimerC-style CPPR support);
  /// enabled by the flow when analyzing in CPPR mode.
  bool protect_cppr = true;
  MergeConfig merge;
};

/// Keep-set over the ILM graph: pins whose min/max slew range exceeds
/// the tolerance.
std::vector<bool> itimerm_keep_set(const TimingGraph& ilm,
                                   const ITimerMConfig& cfg);

MacroModel generate_itimerm_model(const TimingGraph& flat,
                                  const ITimerMConfig& cfg = {},
                                  GenerationStats* stats = nullptr);

// ---------------------------------------------------------------- LibAbs
struct LibAbsConfig {
  /// LUT resolution for merged chain arcs; indices are placed evenly
  /// (form-based reduction has no error-driven selection step).
  std::size_t grid_points = 7;
};

std::vector<bool> libabs_keep_set(const TimingGraph& ilm);

MacroModel generate_libabs_model(const TimingGraph& flat,
                                 const LibAbsConfig& cfg = {},
                                 GenerationStats* stats = nullptr);

// ------------------------------------------------------------------- ATM
struct EtmConfig {
  std::vector<double> slew_samples{2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 100.0};
  std::vector<double> load_samples{1.0, 4.0, 8.0, 12.0};
  double nominal_slew_ps = 10.0;
  double nominal_load_ff = 4.0;
  double nominal_period_ps = 1000.0;
};

MacroModel generate_etm_model(const TimingGraph& flat,
                              const EtmConfig& cfg = {},
                              GenerationStats* stats = nullptr);

}  // namespace tmm
