#include "netlist/design.hpp"

#include <stdexcept>

namespace tmm {

std::uint32_t Design::add_port(const std::string& port_name, TopPortDir dir,
                               bool is_clock) {
  const auto port_idx = static_cast<std::uint32_t>(ports_.size());
  const auto pin_id = static_cast<PinId>(pins_.size());
  Pin p;
  p.gate = kInvalidId;
  p.port = port_idx;
  p.is_driver = dir == TopPortDir::kPrimaryInput;
  pins_.push_back(p);
  ports_.push_back({port_name, dir, pin_id, is_clock});
  if (dir == TopPortDir::kPrimaryInput) {
    pis_.push_back(pin_id);
    if (is_clock) clock_root_ = pin_id;
  } else {
    pos_.push_back(pin_id);
  }
  return port_idx;
}

GateId Design::add_gate(const std::string& gate_name, CellId cell) {
  const auto gate_id = static_cast<GateId>(gates_.size());
  Gate g;
  g.name = gate_name;
  g.cell = cell;
  const auto& ports = lib_->cell(cell).ports;
  g.pins.reserve(ports.size());
  for (std::uint32_t i = 0; i < ports.size(); ++i) {
    const auto pin_id = static_cast<PinId>(pins_.size());
    Pin p;
    p.gate = gate_id;
    p.port = i;
    p.is_driver = ports[i].dir == PortDir::kOutput;
    pins_.push_back(p);
    g.pins.push_back(pin_id);
  }
  gates_.push_back(std::move(g));
  return gate_id;
}

NetId Design::add_net(const std::string& net_name, PinId driver_pin) {
  auto& drv = pins_.at(driver_pin);
  if (!drv.is_driver)
    throw std::invalid_argument("Design::add_net: pin is not a driver");
  if (drv.net != kInvalidId)
    throw std::invalid_argument("Design::add_net: driver already on a net");
  const auto net_id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = net_name;
  n.driver = driver_pin;
  nets_.push_back(std::move(n));
  drv.net = net_id;
  return net_id;
}

void Design::connect_sink(NetId net, PinId sink_pin, double res_kohm) {
  auto& pin = pins_.at(sink_pin);
  if (pin.is_driver)
    throw std::invalid_argument("Design::connect_sink: pin is a driver");
  if (pin.net != kInvalidId)
    throw std::invalid_argument("Design::connect_sink: pin already connected");
  auto& n = nets_.at(net);
  n.sinks.push_back(sink_pin);
  n.sink_res_kohm.push_back(res_kohm);
  pin.net = net;
}

void Design::set_wire_cap(NetId net, double cap_ff) {
  nets_.at(net).wire_cap_ff = cap_ff;
}

std::string Design::pin_name(PinId p) const {
  const auto& pin = pins_.at(p);
  if (pin.gate == kInvalidId) return ports_[pin.port].name;
  return gates_[pin.gate].name + "/" +
         lib_->cell(gates_[pin.gate].cell).ports[pin.port].name;
}

double Design::pin_cap_ff(PinId p) const {
  const auto& pin = pins_.at(p);
  if (pin.gate == kInvalidId) return 0.0;  // port loads come from constraints
  const auto& cp = lib_->cell(gates_[pin.gate].cell).ports[pin.port];
  return cp.dir == PortDir::kInput ? cp.cap_ff : 0.0;
}

double Design::net_load_ff(NetId n) const {
  const auto& net = nets_.at(n);
  double load = net.wire_cap_ff;
  for (PinId s : net.sinks) load += pin_cap_ff(s);
  return load;
}

void Design::validate() const {
  for (PinId p = 0; p < pins_.size(); ++p) {
    const auto& pin = pins_[p];
    if (pin.net == kInvalidId) {
      // Dangling gate outputs are tolerated (unused logic); dangling
      // inputs are not — they would make timing undefined.
      if (!pin.is_driver && pin.gate != kInvalidId)
        throw std::runtime_error("Design::validate: unconnected input pin " +
                                 pin_name(p));
      continue;
    }
    const auto& net = nets_.at(pin.net);
    if (pin.is_driver && net.driver != p)
      throw std::runtime_error("Design::validate: driver/net mismatch at " +
                               pin_name(p));
  }
  for (NetId n = 0; n < nets_.size(); ++n) {
    const auto& net = nets_[n];
    if (net.driver == kInvalidId)
      throw std::runtime_error("Design::validate: undriven net " + net.name);
    if (net.sinks.size() != net.sink_res_kohm.size())
      throw std::runtime_error("Design::validate: parasitics arity on " +
                               net.name);
  }
}

}  // namespace tmm
