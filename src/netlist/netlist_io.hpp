#pragma once
// Design (netlist + parasitics) text serialization — a minimal
// structural format playing the role Verilog + SPEF play in the TAU
// contest flow, so designs can be generated once and shipped between
// the CLI tools.

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace tmm {

/// Serialize; returns bytes written.
std::size_t write_design(const Design& design, std::ostream& os);

/// Parse a design previously produced by write_design. The library must
/// contain every referenced cell and outlive the returned design.
/// Malformed input raises fault::FlowError(kParse) with `source`:line
/// and the offending token; no input crashes the parser.
Design read_design(std::istream& is, const Library& lib,
                   std::string source = "<design>");

/// read_design from a file, with the path as error context. Raises
/// fault::FlowError(kIo) when the file cannot be opened.
Design read_design_file(const std::string& path, const Library& lib);

/// Atomic write_design to `path` (util::atomic_write_file): interrupted
/// runs never leave a torn design file. Returns bytes written.
std::size_t write_design_file(const Design& design, const std::string& path);

}  // namespace tmm
