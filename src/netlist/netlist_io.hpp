#pragma once
// Design (netlist + parasitics) text serialization — a minimal
// structural format playing the role Verilog + SPEF play in the TAU
// contest flow, so designs can be generated once and shipped between
// the CLI tools.

#include <iosfwd>

#include "netlist/design.hpp"

namespace tmm {

/// Serialize; returns bytes written.
std::size_t write_design(const Design& design, std::ostream& os);

/// Parse a design previously produced by write_design. The library must
/// contain every referenced cell and outlive the returned design.
Design read_design(std::istream& is, const Library& lib);

}  // namespace tmm
