#include "netlist/netlist_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tmm {

namespace {

/// Pins are addressed as "p <port-index>" (top-level) or
/// "g <gate-index> <cell-port-index>".
void write_pin_ref(std::ostream& os, const Design& d, PinId pin) {
  const Pin& p = d.pin(pin);
  if (p.gate == kInvalidId)
    os << "p " << p.port;
  else
    os << "g " << p.gate << ' ' << p.port;
}

PinId read_pin_ref(std::istream& is, const Design& d) {
  std::string kind;
  is >> kind;
  if (kind == "p") {
    std::uint32_t port = 0;
    is >> port;
    return d.port(port).pin;
  }
  if (kind == "g") {
    GateId gate = 0;
    std::uint32_t port = 0;
    is >> gate >> port;
    return d.gate(gate).pins.at(port);
  }
  throw std::runtime_error("design: bad pin reference '" + kind + "'");
}

}  // namespace

std::size_t write_design(const Design& design, std::ostream& os) {
  std::ostringstream buf;
  buf.precision(17);
  buf << "design " << design.name() << ' ' << design.library().name() << ' '
      << design.num_ports() << ' ' << design.num_gates() << ' '
      << design.num_nets() << '\n';
  for (std::uint32_t i = 0; i < design.num_ports(); ++i) {
    const TopPort& p = design.port(i);
    buf << "port " << p.name << ' '
        << (p.dir == TopPortDir::kPrimaryInput ? "in" : "out") << ' '
        << (p.is_clock ? 1 : 0) << '\n';
  }
  for (GateId g = 0; g < design.num_gates(); ++g) {
    const Gate& gate = design.gate(g);
    buf << "gate " << gate.name << ' '
        << design.library().cell(gate.cell).name << '\n';
  }
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    buf << "net " << net.name << ' ';
    write_pin_ref(buf, design, net.driver);
    buf << ' ' << net.wire_cap_ff << ' ' << net.sinks.size() << '\n';
    for (std::size_t k = 0; k < net.sinks.size(); ++k) {
      buf << "  sink ";
      write_pin_ref(buf, design, net.sinks[k]);
      buf << ' ' << net.sink_res_kohm[k] << '\n';
    }
  }
  const std::string s = buf.str();
  os << s;
  return s.size();
}

Design read_design(std::istream& is, const Library& lib) {
  std::string tag;
  std::string name;
  std::string lib_name;
  std::size_t nports = 0;
  std::size_t ngates = 0;
  std::size_t nnets = 0;
  is >> tag >> name >> lib_name >> nports >> ngates >> nnets;
  if (tag != "design") throw std::runtime_error("design: bad header");
  if (lib_name != lib.name())
    throw std::runtime_error("design: built against library '" + lib_name +
                             "', got '" + lib.name() + "'");
  Design d(name, &lib);
  for (std::size_t i = 0; i < nports; ++i) {
    std::string pname;
    std::string dir;
    int clk = 0;
    is >> tag >> pname >> dir >> clk;
    if (tag != "port") throw std::runtime_error("design: expected port");
    d.add_port(pname, dir == "in" ? TopPortDir::kPrimaryInput
                                  : TopPortDir::kPrimaryOutput,
               clk != 0);
  }
  for (std::size_t i = 0; i < ngates; ++i) {
    std::string gname;
    std::string cname;
    is >> tag >> gname >> cname;
    if (tag != "gate") throw std::runtime_error("design: expected gate");
    d.add_gate(gname, lib.cell_id(cname));
  }
  for (std::size_t i = 0; i < nnets; ++i) {
    std::string nname;
    double wire_cap = 0.0;
    std::size_t nsinks = 0;
    is >> tag >> nname;
    if (tag != "net") throw std::runtime_error("design: expected net");
    const PinId driver = read_pin_ref(is, d);
    is >> wire_cap >> nsinks;
    const NetId net = d.add_net(nname, driver);
    d.set_wire_cap(net, wire_cap);
    for (std::size_t k = 0; k < nsinks; ++k) {
      is >> tag;
      if (tag != "sink") throw std::runtime_error("design: expected sink");
      const PinId sink = read_pin_ref(is, d);
      double res = 0.0;
      is >> res;
      d.connect_sink(net, sink, res);
    }
  }
  if (!is) throw std::runtime_error("design: truncated stream");
  d.validate();
  return d;
}

}  // namespace tmm
