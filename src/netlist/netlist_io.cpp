#include "netlist/netlist_io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fault/token_reader.hpp"
#include "util/atomic_io.hpp"

namespace tmm {

namespace {

using fault::ErrorCode;
using fault::FlowError;
using io::TokenReader;

/// Pins are addressed as "p <port-index>" (top-level) or
/// "g <gate-index> <cell-port-index>".
void write_pin_ref(std::ostream& os, const Design& d, PinId pin) {
  const Pin& p = d.pin(pin);
  if (p.gate == kInvalidId)
    os << "p " << p.port;
  else
    os << "g " << p.gate << ' ' << p.port;
}

/// Bounds-checked pin-reference parse: a dangling index reports the
/// source line and the offending value instead of crashing three
/// layers down in Design::gate().
PinId read_pin_ref(TokenReader& tr, const Design& d) {
  const std::string kind = tr.token("pin reference kind");
  if (kind == "p") {
    const std::uint32_t port = tr.u32("port index");
    if (port >= d.num_ports())
      tr.fail("dangling port reference " + std::to_string(port) + " (design has " +
              std::to_string(d.num_ports()) + " ports)");
    return d.port(port).pin;
  }
  if (kind == "g") {
    const std::size_t gate = tr.size("gate index");
    const std::uint32_t port = tr.u32("gate pin index");
    if (gate >= d.num_gates())
      tr.fail("dangling gate reference " + std::to_string(gate) + " (design has " +
              std::to_string(d.num_gates()) + " gates)");
    const auto& pins = d.gate(static_cast<GateId>(gate)).pins;
    if (port >= pins.size())
      tr.fail("dangling pin index " + std::to_string(port) + " on gate " +
              std::to_string(gate) + " (" + std::to_string(pins.size()) +
              " pins)");
    return pins[port];
  }
  tr.fail("bad pin reference kind '" + kind + "' (expected 'p' or 'g')");
}

/// A corrupt count field must not become a multi-gigabyte reserve
/// before the next per-record tag check would catch it.
constexpr std::size_t kMaxRecords = 100'000'000;

}  // namespace

std::size_t write_design(const Design& design, std::ostream& os) {
  std::ostringstream buf;
  buf.precision(17);
  buf << "design " << design.name() << ' ' << design.library().name() << ' '
      << design.num_ports() << ' ' << design.num_gates() << ' '
      << design.num_nets() << '\n';
  for (std::uint32_t i = 0; i < design.num_ports(); ++i) {
    const TopPort& p = design.port(i);
    buf << "port " << p.name << ' '
        << (p.dir == TopPortDir::kPrimaryInput ? "in" : "out") << ' '
        << (p.is_clock ? 1 : 0) << '\n';
  }
  for (GateId g = 0; g < design.num_gates(); ++g) {
    const Gate& gate = design.gate(g);
    buf << "gate " << gate.name << ' '
        << design.library().cell(gate.cell).name << '\n';
  }
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& net = design.net(n);
    buf << "net " << net.name << ' ';
    write_pin_ref(buf, design, net.driver);
    buf << ' ' << net.wire_cap_ff << ' ' << net.sinks.size() << '\n';
    for (std::size_t k = 0; k < net.sinks.size(); ++k) {
      buf << "  sink ";
      write_pin_ref(buf, design, net.sinks[k]);
      buf << ' ' << net.sink_res_kohm[k] << '\n';
    }
  }
  const std::string s = buf.str();
  os << s;
  return s.size();
}

Design read_design(std::istream& is, const Library& lib, std::string source) {
  fault::inject("netlist.read");
  TokenReader tr(is, std::move(source));
  tr.expect("design");
  const std::string name = tr.token("design name");
  const std::string lib_name = tr.token("library name");
  const std::size_t nports = tr.size_at_most("port count", kMaxRecords);
  const std::size_t ngates = tr.size_at_most("gate count", kMaxRecords);
  const std::size_t nnets = tr.size_at_most("net count", kMaxRecords);
  if (lib_name != lib.name())
    tr.fail("design built against library '" + lib_name + "', got '" +
            lib.name() + "'");
  Design d(name, &lib);
  for (std::size_t i = 0; i < nports; ++i) {
    tr.expect("port");
    const std::string pname = tr.token("port name");
    const std::string dir = tr.token("port direction");
    if (dir != "in" && dir != "out")
      tr.fail("bad port direction '" + dir + "' (expected 'in' or 'out')");
    const int clk = tr.integer_in("clock flag", 0, 1);
    d.add_port(pname, dir == "in" ? TopPortDir::kPrimaryInput
                                  : TopPortDir::kPrimaryOutput,
               clk != 0);
  }
  for (std::size_t i = 0; i < ngates; ++i) {
    tr.expect("gate");
    const std::string gname = tr.token("gate name");
    const std::string cname = tr.token("cell name");
    try {
      d.add_gate(gname, lib.cell_id(cname));
    } catch (const std::out_of_range&) {
      tr.fail("unknown cell '" + cname + "' in library '" + lib.name() + "'");
    }
  }
  for (std::size_t i = 0; i < nnets; ++i) {
    tr.expect("net");
    const std::string nname = tr.token("net name");
    const PinId driver = read_pin_ref(tr, d);
    const double wire_cap = tr.number("wire capacitance");
    const std::size_t nsinks = tr.size_at_most("sink count", kMaxRecords);
    const NetId net = d.add_net(nname, driver);
    d.set_wire_cap(net, wire_cap);
    for (std::size_t k = 0; k < nsinks; ++k) {
      tr.expect("sink");
      const PinId sink = read_pin_ref(tr, d);
      const double res = tr.number("sink resistance");
      d.connect_sink(net, sink, res);
    }
  }
  try {
    d.validate();
  } catch (const std::exception& e) {
    throw FlowError(ErrorCode::kParse, tr.source(), e.what(), name);
  }
  return d;
}

Design read_design_file(const std::string& path, const Library& lib) {
  std::ifstream is(path);
  if (!is)
    throw FlowError(ErrorCode::kIo, "netlist.read", "cannot open " + path);
  return read_design(is, lib, path);
}

std::size_t write_design_file(const Design& design, const std::string& path) {
  std::ostringstream buf;
  const std::size_t bytes = write_design(design, buf);
  util::atomic_write_file(path, buf.str())
      .or_throw("netlist.write", design.name());
  return bytes;
}

}  // namespace tmm
