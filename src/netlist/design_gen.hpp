#pragma once
// Synthetic design generator.
//
// Substitutes the proprietary TAU 2016/2017 contest circuits with
// deterministic, structurally analogous designs: banks of D flip-flops
// fed by a buffered clock tree, random levelized combinational clouds
// between {PIs, FF outputs} and {FF inputs, POs}, and randomized net
// parasitics. The four path classes that matter to interface-logic
// macro modeling (PI->FF, FF->FF, FF->PO, PI->PO) all occur, and the
// clock tree provides the shared prefixes CPPR feeds on.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "util/rng.hpp"

namespace tmm {

struct DesignGenConfig {
  std::string name = "synth";
  std::size_t num_data_inputs = 16;
  std::size_t num_outputs = 16;
  std::size_t num_flops = 32;
  /// Combinational depth (number of gate levels) of each cloud.
  std::size_t levels = 8;
  std::size_t gates_per_level = 40;
  /// Clock-tree branching factor.
  std::size_t clock_fanout = 4;
  /// Fraction of gate inputs wired to sources within the previous
  /// `locality` levels (the rest may reach further back).
  std::size_t locality = 3;
  /// Maximum sink count per net before the generator avoids a driver.
  std::size_t max_fanout = 10;
  /// Fraction of combinational gates placed in the register-bounded
  /// core (reg-to-reg logic that interface-logic models drop).
  double core_fraction = 0.6;
  /// Mean lumped wire capacitance per net (fF); scaled by fanout.
  double wire_cap_mean_ff = 0.8;
  /// Mean per-sink wire resistance (kOhm).
  double wire_res_mean_kohm = 0.15;
  std::uint64_t seed = 1;
};

/// Generate a design. The library must outlive the returned Design.
Design generate_design(const Library& lib, const DesignGenConfig& cfg);

/// Named design suites mirroring the paper's benchmark lists.
/// `scale` divides the TAU pin counts (default keeps runs CI-friendly);
/// the generator targets roughly tau_pins/scale pins per design.
struct SuiteEntry {
  std::string name;
  std::size_t tau_pins;  ///< pin count reported in Table 2
  DesignGenConfig cfg;
};

/// Testing designs of Table 2 (TAU 2016 "_eval" + TAU 2017 suites).
std::vector<SuiteEntry> tau_testing_suite(const Library& lib,
                                          std::size_t scale = 100);

/// Small training designs (the paper trains on 1e4..1e6-pin circuits
/// such as fft_ispd and systemcaes; we use the same names, scaled).
std::vector<SuiteEntry> training_suite(const Library& lib,
                                       std::size_t scale = 10);

}  // namespace tmm
